// Command paperbench regenerates every table and figure of the paper's
// evaluation:
//
//	table1  — flat vs hierarchical run time per helix length (Table 1 / Figure 5)
//	table2  — per-constraint time vs node size × batch dimension (Table 2 / Figure 6)
//	eq1     — the constrained work-estimation regression (Equation 1)
//	table3  — Helix on the DASH model, NP = 1..32 (Table 3 / Figure 7)
//	table4  — ribo30S on the DASH model (Table 4 / Figure 8)
//	table5  — Helix on the Challenge model (Table 5 / Figure 9)
//	table6  — ribo30S on the Challenge model (Table 6 / Figure 10)
//	combine — §4.1 analysis: constraint-partition combination overhead
//	convergence — §5 study: constraint ordering vs cycles to convergence
//	figures — write the Figure 5–10 data series as CSV files (-csv dir)
//	timeline — virtual-time execution chart showing the power-of-two dip
//	memory — §5 memory-behaviour comparison of the two organizations
//	treestats — §3.1 constraint/work distribution over the hierarchy
//	trees   — the Figure 2 / Figure 4 decomposition diagrams (as outlines)
//	bench   — machine-readable benchmark pipeline: Table 1/Table 2 plus the
//	          covariance-kernel micro-benchmarks and the Joseph ablation,
//	          written as JSON (-json path, default BENCH_PR2.json)
//	throughput — elastic solver-team scheduler vs the rigid worker pool on a
//	          many-tiny-jobs service workload, written as JSON
//	          (-throughput-json path, default BENCH_PR7.json)
//	all     — everything above except bench and throughput
//
// Real-kernel experiments (table1, table2, eq1, combine) are scaled down by
// default so the suite completes in about a minute; -full runs them at
// paper scale. The processor-sweep tables run on the calibrated
// virtual-time machine models and are always full scale. Paper values are
// printed alongside for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
)

type config struct {
	full     bool
	seed     int64
	csvDir   string
	jsonPath string
	tpPath   string
}

func main() {
	var cfg config
	flag.BoolVar(&cfg.full, "full", false, "run real-kernel experiments at paper scale")
	flag.Int64Var(&cfg.seed, "seed", 1996, "ribosome generator seed")
	flag.StringVar(&cfg.csvDir, "csv", "figures", "output directory for the figures experiment")
	flag.StringVar(&cfg.jsonPath, "json", "BENCH_PR2.json", "output path for the bench experiment")
	flag.StringVar(&cfg.tpPath, "throughput-json", "BENCH_PR7.json", "output path for the throughput experiment")
	flag.Parse()

	exps := flag.Args()
	if len(exps) == 0 {
		exps = []string{"all"}
	}
	for _, e := range exps {
		if err := run(e, cfg); err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
	}
}

func run(exp string, cfg config) error {
	switch exp {
	case "table1":
		return table1(cfg)
	case "table2":
		return table2(cfg)
	case "eq1":
		return eq1(cfg)
	case "table3":
		return sweep(cfg, "helix", "DASH")
	case "table4":
		return sweep(cfg, "ribo", "DASH")
	case "table5":
		return sweep(cfg, "helix", "Challenge")
	case "table6":
		return sweep(cfg, "ribo", "Challenge")
	case "combine":
		return combine(cfg)
	case "convergence":
		return convergence(cfg)
	case "trees":
		return trees(cfg)
	case "figures":
		return figures(cfg, cfg.csvDir)
	case "timeline":
		return timeline(cfg)
	case "memory":
		return memory(cfg)
	case "treestats":
		return treestats(cfg)
	case "bench":
		return bench(cfg, cfg.jsonPath)
	case "throughput":
		return throughput(cfg, cfg.tpPath)
	case "all":
		for _, e := range []string{
			"table1", "table2", "eq1",
			"table3", "table4", "table5", "table6",
			"combine", "convergence", "trees", "timeline", "memory", "treestats",
		} {
			if err := run(e, cfg); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}

func header(title string) {
	fmt.Println()
	fmt.Println("==============================================================")
	fmt.Println(title)
	fmt.Println("==============================================================")
}
