package main

import (
	"fmt"

	"phmse/internal/workest"
)

// paperTable2 is the published Table 2 (seconds per scalar constraint):
// batch dimension → one column per node size {43, 86, 170, 340, 680}.
var paperTable2 = map[int][5]float64{
	1:   {0.00535, 0.02008, 0.07784, 0.34601, 1.41522},
	2:   {0.00324, 0.01181, 0.04571, 0.19945, 0.80863},
	4:   {0.00204, 0.00712, 0.02670, 0.11354, 0.45738},
	8:   {0.00154, 0.00507, 0.01868, 0.07613, 0.30157},
	16:  {0.00141, 0.00435, 0.01537, 0.06001, 0.23427},
	32:  {0.00176, 0.00514, 0.01689, 0.06301, 0.23850},
	64:  {0.00246, 0.00628, 0.01916, 0.06657, 0.25133},
	128: {0.00387, 0.00899, 0.02429, 0.07583, 0.27472},
	256: {0.00747, 0.01533, 0.03788, 0.11143, 0.38431},
	512: {0.01630, 0.02915, 0.06277, 0.15257, 0.46112},
}

func table2Cells(cfg config) []workest.Measurement {
	sizes := []int{43, 86, 170}
	batches := []int{1, 2, 4, 8, 16, 32, 64, 128}
	scale := 0.25
	if cfg.full {
		sizes = workest.DefaultNodeSizes
		batches = workest.DefaultBatchDims
		scale = 1
	}
	return workest.MeasureTable2(sizes, batches, scale)
}

// table2 reruns the per-constraint cost experiment (Table 2 / Figure 6):
// measured seconds per scalar constraint for each node size and batch
// dimension, with real kernels on this host.
func table2(cfg config) error {
	header("Table 2 / Figure 6 — average execution time per scalar constraint")
	cells := table2Cells(cfg)

	sizes := uniqueSorted(cells, func(m workest.Measurement) int { return m.NodeAtoms })
	batches := uniqueSorted(cells, func(m workest.Measurement) int { return m.BatchDim })

	fmt.Printf("\n[real kernels on this host; seconds per scalar constraint]\n")
	fmt.Printf("%8s |", "batch")
	for _, n := range sizes {
		fmt.Printf(" %9d", n)
	}
	fmt.Println(" (node atoms)")
	lookup := map[[2]int]float64{}
	for _, c := range cells {
		lookup[[2]int{c.NodeAtoms, c.BatchDim}] = c.PerScalar
	}
	for _, b := range batches {
		fmt.Printf("%8d |", b)
		for _, n := range sizes {
			fmt.Printf(" %9.6f", lookup[[2]int{n, b}])
		}
		fmt.Println()
	}

	// The headline finding: the optimal batch dimension per node size.
	fmt.Println("\nbest batch dimension per node size (paper: 16 across all sizes):")
	for _, n := range sizes {
		fmt.Printf("  %4d atoms → batch %d\n", n, workest.BestBatch(cells, n))
	}

	fmt.Println("\npaper Table 2 (DASH, seconds per scalar constraint):")
	fmt.Printf("%8s |  %8d %8d %8d %8d %8d (node atoms)\n", "batch", 43, 86, 170, 340, 680)
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
		r := paperTable2[b]
		fmt.Printf("%8d | %9.5f %8.5f %8.5f %8.5f %8.5f\n", b, r[0], r[1], r[2], r[3], r[4])
	}
	return nil
}

// eq1 fits the constrained work-estimation polynomial (Equation 1) to the
// Table 2 measurements and reports the model and its quality.
func eq1(cfg config) error {
	header("Equation 1 — constrained least-squares work estimation")
	cells := table2Cells(cfg)
	model, err := workest.Fit(cells, 4)
	if err != nil {
		return err
	}
	fmt.Println("\nfitted model (seconds per scalar constraint; n = state dim, m = batch dim):")
	fmt.Println("  ", model)
	fmt.Printf("  R² over batch ≥ 4 measurements: %.4f\n", model.RSquared(cells, 4))
	fmt.Println("  checks: leading coefficient > 0, constant ≥ 0, coefficient sum ≥ 0 — all enforced by the fit")
	fmt.Println("\nsample predictions:")
	for _, n := range []int{43, 170, 680} {
		for _, m := range []int{8, 16, 64} {
			fmt.Printf("  n=%4d atoms m=%3d → %.6f s/constraint\n", n, m, model.PerScalar(3*n, m))
		}
	}
	// For reference, also fit the published Table 2 numbers themselves.
	var paperCells []workest.Measurement
	sizes := []int{43, 86, 170, 340, 680}
	for b, row := range paperTable2 {
		for i, v := range row {
			paperCells = append(paperCells, workest.Measurement{NodeAtoms: sizes[i], BatchDim: b, PerScalar: v})
		}
	}
	pm, err := workest.Fit(paperCells, 4)
	if err != nil {
		return fmt.Errorf("fitting the paper's own Table 2: %w", err)
	}
	fmt.Println("\nfit of the paper's published Table 2 numbers (their Equation 1 equivalent):")
	fmt.Println("  ", pm)
	fmt.Printf("  R²: %.4f\n", pm.RSquared(paperCells, 4))
	return nil
}

func uniqueSorted(cells []workest.Measurement, key func(workest.Measurement) int) []int {
	seen := map[int]bool{}
	var out []int
	for _, c := range cells {
		k := key(c)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
