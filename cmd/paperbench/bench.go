package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"phmse/internal/core"
	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/molecule"
	"phmse/internal/par"
	"phmse/internal/trace"
	"phmse/internal/workest"
)

// The bench experiment runs the repeatable benchmark pipeline and writes a
// machine-readable report (BENCH_PR2.json by default): Table 1 flat-vs-hier
// wall times with per-operation-class breakdowns, Table 2 per-constraint
// cells, the covariance-kernel micro-benchmarks (dense pre-PR2 pipeline vs
// symmetry-aware triangular kernels), and the Joseph-form solver ablation.
// CI runs it non-blocking so the benchmark trajectory accumulates per PR.

type benchReport struct {
	When      string `json:"when"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`

	Table1  []table1Bench         `json:"table1"`
	Table2  []workest.Measurement `json:"table2"`
	Kernels []kernelBench         `json:"kernels"`
	Joseph  []josephBench         `json:"joseph_ablation"`
}

type table1Bench struct {
	BP        int                `json:"bp"`
	Atoms     int                `json:"atoms"`
	Scalar    int                `json:"scalar_constraints"`
	FlatSec   float64            `json:"flat_s"`
	HierSec   float64            `json:"hier_s"`
	Speedup   float64            `json:"speedup"`
	FlatClass map[string]float64 `json:"flat_class_s"`
	HierClass map[string]float64 `json:"hier_class_s"`
}

type kernelBench struct {
	Form    string  `json:"form"` // "simple" or "joseph"
	N       int     `json:"n"`
	M       int     `json:"m"`
	DenseNs float64 `json:"dense_ns_op"`
	SyrkNs  float64 `json:"syrk_ns_op"`
	Speedup float64 `json:"speedup"`
}

type josephBench struct {
	Form    string             `json:"form"` // "simple" or "joseph"
	Seconds float64            `json:"solve_s"`
	Class   map[string]float64 `json:"class_s"`
}

func bench(cfg config, path string) error {
	header("Benchmark pipeline → " + path)
	rep := benchReport{
		When:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	// Table 1: flat vs hierarchical, real kernels, per-class breakdown.
	sizes := []int{1, 2, 4}
	if cfg.full {
		sizes = []int{1, 2, 4, 8, 16}
	}
	fmt.Println("\n[table1: real kernels, per-class m-m accounting]")
	for _, bp := range sizes {
		h := molecule.Helix(bp)
		init := h.TruePositions()
		row := table1Bench{BP: bp, Atoms: len(h.Atoms), Scalar: h.ScalarDim()}
		var err error
		if row.FlatSec, row.FlatClass, err = timedSolveClasses(h, init, core.Flat); err != nil {
			return err
		}
		if row.HierSec, row.HierClass, err = timedSolveClasses(h, init, core.Hierarchical); err != nil {
			return err
		}
		row.Speedup = row.FlatSec / row.HierSec
		rep.Table1 = append(rep.Table1, row)
		fmt.Printf("  %2dbp flat %.3fs (m-m %.3fs)  hier %.3fs (m-m %.3fs)  speedup %.2f\n",
			bp, row.FlatSec, row.FlatClass["m-m"], row.HierSec, row.HierClass["m-m"], row.Speedup)
	}

	// Table 2 cells (scaled down unless -full).
	fmt.Println("\n[table2: per-scalar-constraint cost cells]")
	rep.Table2 = table2Cells(cfg)
	fmt.Printf("  %d cells measured\n", len(rep.Table2))

	// Covariance-kernel micro-benchmarks.
	fmt.Println("\n[kernels: dense pre-PR2 pipeline vs symmetry-aware triangular]")
	for _, n := range []int{129, 516} {
		for _, form := range []string{"simple", "joseph"} {
			kb := kernelBenchRun(form, n, 16)
			rep.Kernels = append(rep.Kernels, kb)
			fmt.Printf("  %-6s n=%3d m=%2d: dense %.0f ns/op  syrk %.0f ns/op  speedup %.2f\n",
				kb.Form, kb.N, kb.M, kb.DenseNs, kb.SyrkNs, kb.Speedup)
		}
	}

	// Joseph-form solver ablation (flat helix, one cycle).
	fmt.Println("\n[joseph ablation: flat helix-2 solve]")
	for _, joseph := range []bool{false, true} {
		h := molecule.Helix(2)
		var rec trace.Collector
		est, err := core.New(h, core.Config{Mode: core.Flat, MaxCycles: 1, BatchSize: 16, Joseph: joseph, Recorder: &rec})
		if err != nil {
			return err
		}
		start := time.Now()
		if _, err := est.Solve(h.TruePositions()); err != nil {
			return err
		}
		jb := josephBench{Form: map[bool]string{false: "simple", true: "joseph"}[joseph],
			Seconds: time.Since(start).Seconds(), Class: rec.Snapshot().Seconds}
		rep.Joseph = append(rep.Joseph, jb)
		fmt.Printf("  %-6s %.3fs (m-m %.3fs)\n", jb.Form, jb.Seconds, jb.Class["m-m"])
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// timedSolveClasses is timedSolve with a per-operation-class breakdown
// from the trace recorder.
func timedSolveClasses(p *molecule.Problem, init []geom.Vec3, mode core.Mode) (float64, map[string]float64, error) {
	var rec trace.Collector
	est, err := core.New(p, core.Config{Mode: mode, MaxCycles: 1, BatchSize: 16, Recorder: &rec})
	if err != nil {
		return 0, nil, err
	}
	start := time.Now()
	if _, err := est.Solve(init); err != nil {
		return 0, nil, err
	}
	return time.Since(start).Seconds(), rec.Snapshot().Seconds, nil
}

// kernelBenchRun times one covariance-update form at state dimension n and
// batch dimension m, dense pipeline vs triangular kernels, via
// testing.Benchmark for stable iteration counts.
func kernelBenchRun(form string, n, m int) kernelBench {
	c := mat.New(n, n)
	k := mat.New(n, m)
	a := mat.New(n, m)
	for i := range c.Data {
		c.Data[i] = float64((i*2654435761)%1000)/1000 - 0.5
	}
	mat.MirrorLower(c)
	for i := range k.Data {
		k.Data[i] = float64((i*40503)%1000)/1000 - 0.5
		a.Data[i] = float64((i*9973)%1000)/1000 - 0.5
	}
	l := mat.Identity(m)
	w := mat.New(n, m)
	team := par.NewTeam(1)

	var dense, syrk testing.BenchmarkResult
	if form == "simple" {
		dense = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.MulSubNTPar(team, c, k, a)
				mat.SymmetrizePar(team, c)
			}
		})
		syrk = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.Syr2kSubPar(team, c, k, a)
			}
		})
	} else {
		dense = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.MulSubNTPar(team, c, k, a)
				mat.MulSubNTPar(team, c, a, k)
				mat.MulPar(team, w, k, l)
				mat.MulAddNTPar(team, c, w, w)
				mat.SymmetrizePar(team, c)
			}
		})
		syrk = testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mat.MulPar(team, w, k, l)
				mat.SyrkAddPar(team, c, w)
				mat.Syr2kPairSubPar(team, c, k, a)
			}
		})
	}
	dn := float64(dense.NsPerOp())
	sn := float64(syrk.NsPerOp())
	return kernelBench{Form: form, N: n, M: m, DenseNs: dn, SyrkNs: sn, Speedup: dn / sn}
}
