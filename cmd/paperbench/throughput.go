package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"time"

	"phmse/internal/client"
	"phmse/internal/encode"
	"phmse/internal/molecule"
	"phmse/internal/pool"
	"phmse/internal/server"
)

// throughput contrasts the elastic solver-team scheduler against the old
// rigid worker pool on a service workload dominated by tiny jobs — the
// regime the scheduler exists for. Both sides run an identical job mix
// through a real in-process daemon over HTTP on the same processor
// budget; the baseline pins every job to a fixed-width team (the old
// Workers × ProcsPerJob shape) with workspace pooling off, the elastic
// side coalesces tiny jobs onto MinTeam-wide teams with pooling on. The
// document written to -throughput-json records jobs/sec, queue-wait
// percentiles, and heap allocations per completed job for each side.
func throughput(cfg config, path string) error {
	header("PR7 — elastic scheduler throughput: many tiny jobs + a few large")

	// Tiny jobs dominate the mix — the many-small-requests regime the
	// scheduler targets — with a couple of mid-size jobs threaded through
	// so wide and narrow grants coexist.
	tiny, large := 48, 2
	largeBP := 2
	if cfg.full {
		tiny, large, largeBP = 128, 4, 4
	}
	const maxProcs = 4

	// The baseline reproduces the replaced design: every job gets a
	// dedicated team of the full per-job width (ProcsPerJob = MaxProcs),
	// so the worker count — MaxProcs/ProcsPerJob = 1 — bounds jobs in
	// flight, and no workspace is reused across solves.
	baseline, err := throughputSide("rigid full-width teams, pooling off", server.Config{
		MaxProcs: maxProcs, MinTeam: maxProcs, MaxTeam: maxProcs, QueueDepth: 1024,
	}, false, tiny, large, largeBP)
	if err != nil {
		return err
	}
	elastic, err := throughputSide("elastic coalescing teams, pooling on", server.Config{
		MaxProcs: maxProcs, MinTeam: 1, MaxTeam: maxProcs, QueueDepth: 1024,
	}, true, tiny, large, largeBP)
	if err != nil {
		return err
	}

	doc := throughputDoc{
		Experiment: "throughput",
		MaxProcs:   maxProcs,
		TinyJobs:   tiny,
		LargeJobs:  large,
		Baseline:   baseline,
		Elastic:    elastic,
	}
	if baseline.JobsPerSec > 0 {
		doc.Speedup = elastic.JobsPerSec / baseline.JobsPerSec
	}
	if baseline.AllocsPerJob > 0 {
		doc.AllocRatio = elastic.AllocsPerJob / baseline.AllocsPerJob
	}

	fmt.Printf("\n%-38s | jobs/sec | p50 wait | p99 wait | allocs/job\n", "configuration")
	for _, s := range []throughputStats{baseline, elastic} {
		fmt.Printf("%-38s | %8.2f | %7.1fms | %7.1fms | %10.0f\n",
			s.Label, s.JobsPerSec, s.QueueWaitP50Ms, s.QueueWaitP99Ms, s.AllocsPerJob)
	}
	fmt.Printf("\nelastic/baseline: %.2fx jobs/sec, %.2fx allocs/job (%d elastic grants coalesced to MinTeam)\n",
		doc.Speedup, doc.AllocRatio, elastic.Coalesced)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

type throughputDoc struct {
	Experiment string          `json:"experiment"`
	MaxProcs   int             `json:"max_procs"`
	TinyJobs   int             `json:"tiny_jobs"`
	LargeJobs  int             `json:"large_jobs"`
	Baseline   throughputStats `json:"baseline"`
	Elastic    throughputStats `json:"elastic"`
	// Speedup is elastic jobs/sec over baseline; AllocRatio is elastic
	// allocs/job over baseline (< 1 means pooling saved allocations).
	Speedup    float64 `json:"speedup_jobs_per_sec"`
	AllocRatio float64 `json:"alloc_ratio"`
}

type throughputStats struct {
	Label          string  `json:"label"`
	WallSeconds    float64 `json:"wall_seconds"`
	JobsPerSec     float64 `json:"jobs_per_sec"`
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	AllocsPerJob   float64 `json:"allocs_per_job"`
	BytesPerJob    float64 `json:"bytes_per_job"`
	Coalesced      int64   `json:"coalesced"`
}

// throughputSide runs the workload through one daemon configuration and
// measures it. Workspace pooling is toggled process-wide for the run and
// restored to on afterwards.
func throughputSide(label string, scfg server.Config, poolOn bool, tiny, large, largeBP int) (throughputStats, error) {
	st := throughputStats{Label: label}
	pool.SetEnabled(poolOn)
	defer pool.SetEnabled(true)

	srv := server.New(scfg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck
	}()
	c := client.New(ts.URL)
	ctx := context.Background()

	tinyP := molecule.WithAnchors(molecule.Helix(1), 4, 0.05)
	largeP := molecule.WithAnchors(molecule.Helix(largeBP), 4, 0.05)
	params := encode.SolveParams{Perturb: 0.4, Seed: 17}

	// Warm the plan cache and the runtime before timing, so both sides
	// measure steady-state serving, not first-touch construction.
	for _, p := range []*molecule.Problem{tinyP, largeP} {
		js, err := c.Submit(ctx, p, params)
		if err != nil {
			return st, err
		}
		if _, err := c.Wait(ctx, js.ID, 5*time.Millisecond, encode.JobDone); err != nil {
			return st, err
		}
	}

	coalescedBefore := srv.Snapshot().Scheduler.Coalesced
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()

	ids := make([]string, 0, tiny+large)
	for i := 0; i < tiny+large; i++ {
		// Interleave the large jobs through the tiny stream.
		p := tinyP
		if large > 0 && i%(1+tiny/large) == tiny/large {
			p = largeP
		}
		js, err := c.Submit(ctx, p, params)
		if err != nil {
			return st, err
		}
		ids = append(ids, js.ID)
	}
	waits := make([]float64, 0, len(ids))
	for _, id := range ids {
		js, err := c.Wait(ctx, id, 5*time.Millisecond, encode.JobDone)
		if err != nil {
			return st, err
		}
		sub, err1 := time.Parse(time.RFC3339Nano, js.SubmittedAt)
		run, err2 := time.Parse(time.RFC3339Nano, js.StartedAt)
		if err1 == nil && err2 == nil {
			waits = append(waits, float64(run.Sub(sub).Microseconds())/1e3)
		}
	}

	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	jobs := len(ids)
	st.WallSeconds = wall.Seconds()
	st.JobsPerSec = float64(jobs) / wall.Seconds()
	st.AllocsPerJob = float64(after.Mallocs-before.Mallocs) / float64(jobs)
	st.BytesPerJob = float64(after.TotalAlloc-before.TotalAlloc) / float64(jobs)
	st.QueueWaitP50Ms = percentile(waits, 0.50)
	st.QueueWaitP99Ms = percentile(waits, 0.99)
	st.Coalesced = srv.Snapshot().Scheduler.Coalesced - coalescedBefore
	return st, nil
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(q*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
