package main

import (
	"fmt"
	"time"

	"phmse/internal/core"
	"phmse/internal/geom"
	"phmse/internal/hier"
	"phmse/internal/machine"
	"phmse/internal/molecule"
	"phmse/internal/vm"
)

// paperTable1 holds the published Table 1 rows for comparison:
// helix length → {flat total s, flat per-constraint, hier total, hier
// per-constraint, speedup}.
var paperTable1 = map[int][5]float64{
	1:  {1.16, 0.00172, 0.65, 0.00096, 1.78},
	2:  {7.78, 0.00494, 2.42, 0.00154, 3.21},
	4:  {54.09, 0.01642, 8.45, 0.00257, 6.40},
	8:  {427.23, 0.06274, 30.98, 0.00455, 13.79},
	16: {3436.18, 0.24857, 114.20, 0.00826, 30.09},
}

// table1 compares the flat and hierarchical organizations over one
// complete cycle of constraint application (Table 1 / Figure 5): first
// with real kernels on this host, then on the DASH virtual-time model for
// the full sweep.
func table1(cfg config) error {
	header("Table 1 / Figure 5 — flat vs hierarchical organization")

	realSizes := []int{1, 2, 4}
	if cfg.full {
		realSizes = []int{1, 2, 4, 8, 16}
	}
	fmt.Println("\n[real kernels on this host; one cycle over all constraints]")
	fmt.Println("  bp  atoms  scalar |  flat(s)  per-cons |  hier(s)  per-cons | speedup")
	for _, bp := range realSizes {
		h := molecule.Helix(bp)
		init := h.TruePositions()
		flatSec, err := timedSolve(h, init, core.Flat)
		if err != nil {
			return err
		}
		hierSec, err := timedSolve(h, init, core.Hierarchical)
		if err != nil {
			return err
		}
		sc := float64(h.ScalarDim())
		fmt.Printf("  %2d  %5d  %6d | %8.3f  %.6f | %8.3f  %.6f | %6.2f\n",
			bp, len(h.Atoms), h.ScalarDim(),
			flatSec, flatSec/sc, hierSec, hierSec/sc, flatSec/hierSec)
	}

	fmt.Println("\n[DASH virtual-time model; full sweep]")
	fmt.Println("  bp  atoms  scalar |  flat(s)  per-cons |  hier(s)  per-cons | speedup | paper speedup")
	mach := machine.DASH()
	for _, bp := range []int{1, 2, 4, 8, 16} {
		h := molecule.Helix(bp)
		root, err := hier.Build(h.Tree, h.Constraints)
		if err != nil {
			return err
		}
		if err := root.Prepare(16); err != nil {
			return err
		}
		hierWall := vm.Run(root, mach, 1, nil).Wall
		flatWall := vm.RunFlat(3*len(h.Atoms), vm.FlatShapes(h.ScalarDim(), 16, 6), mach, 1).Wall
		sc := float64(h.ScalarDim())
		fmt.Printf("  %2d  %5d  %6d | %8.2f  %.6f | %8.2f  %.6f | %6.2f  | %6.2f\n",
			bp, len(h.Atoms), h.ScalarDim(),
			flatWall, flatWall/sc, hierWall, hierWall/sc, flatWall/hierWall, paperTable1[bp][4])
	}
	fmt.Println("\npaper Table 1 (measured on one processor in 1996):")
	for _, bp := range []int{1, 2, 4, 8, 16} {
		r := paperTable1[bp]
		fmt.Printf("  %2d bp: flat %8.2fs (%.5f/cons)  hier %7.2fs (%.5f/cons)  speedup %5.2f\n",
			bp, r[0], r[1], r[2], r[3], r[4])
	}
	return nil
}

// timedSolve runs exactly one cycle of constraint application with real
// kernels and returns the wall-clock seconds (setup excluded, matching the
// paper's exclusion of input and initialization time).
func timedSolve(p *molecule.Problem, init []geom.Vec3, mode core.Mode) (float64, error) {
	est, err := core.New(p, core.Config{Mode: mode, MaxCycles: 1, BatchSize: 16})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := est.Solve(init); err != nil {
		return 0, err
	}
	return time.Since(start).Seconds(), nil
}
