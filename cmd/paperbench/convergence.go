package main

import (
	"fmt"

	"phmse/internal/core"
	"phmse/internal/molecule"
)

// convergence runs the §5 constraint-ordering study the paper leaves as
// future work: the hierarchical organization processes constraints in
// order of interaction locality, while the flat organization is blind to
// it. Both solve the same anchored helix from distorted starts over
// several random seeds; the table reports success rates (weighted residual
// below 0.05 at the equilibrium point) and the mean cycle count of the
// successful runs.
func convergence(cfg config) error {
	header("§5 — effect of constraint ordering on convergence")

	bp := 2
	seeds := []int64{1, 2, 3, 5, 7}
	if cfg.full {
		bp = 4
	}
	p := molecule.WithAnchors(molecule.Helix(bp), 4, 0.05)
	fmt.Printf("\n%s, tolerance 1e-4, max 150 cycles, %d seeds per cell\n", p.Name, len(seeds))
	fmt.Println("perturb |    flat organization    | hierarchical organization")
	fmt.Println("   (Å)  | success  mean cycles    | success  mean cycles")

	type tally struct {
		success int
		cycles  int
	}
	wins := map[core.Mode]int{}
	for _, sigma := range []float64{0.2, 0.4, 0.6} {
		res := map[core.Mode]*tally{core.Flat: {}, core.Hierarchical: {}}
		for _, seed := range seeds {
			init := molecule.Perturbed(p, sigma, seed)
			for _, mode := range []core.Mode{core.Flat, core.Hierarchical} {
				est, err := core.New(p, core.Config{Mode: mode, Tol: 1e-4, MaxCycles: 150})
				if err != nil {
					return err
				}
				sol, err := est.Solve(init)
				if err != nil {
					return err
				}
				if sol.Residual < 0.05 {
					res[mode].success++
					res[mode].cycles += sol.Cycles
				}
			}
		}
		row := fmt.Sprintf("  %4.1f  |", sigma)
		for _, mode := range []core.Mode{core.Flat, core.Hierarchical} {
			t := res[mode]
			mean := 0.0
			if t.success > 0 {
				mean = float64(t.cycles) / float64(t.success)
			}
			row += fmt.Sprintf("   %d/%d    %8.1f      |", t.success, len(seeds), mean)
		}
		fmt.Println(row)
		if res[core.Hierarchical].success > res[core.Flat].success {
			wins[core.Hierarchical]++
		} else if res[core.Flat].success > res[core.Hierarchical].success {
			wins[core.Flat]++
		}
	}
	switch {
	case wins[core.Hierarchical] > wins[core.Flat]:
		fmt.Println("\nLocality-ordered (hierarchical) constraint application succeeded from")
		fmt.Println("more starting points, consistent with the paper's §5 conjecture that")
		fmt.Println("hierarchical ordering should help convergence.")
	case wins[core.Flat] > wins[core.Hierarchical]:
		fmt.Println("\nOn this instance the flat ordering was the more robust of the two —")
		fmt.Println("the ordering effect the paper's §5 conjectures is real but not uniform.")
	default:
		fmt.Println("\nBoth orderings reach the same equilibria on this instance: the §5")
		fmt.Println("ordering effect shows up mainly in cycle counts, not success rates.")
	}
	return nil
}
