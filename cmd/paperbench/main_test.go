package main

import (
	"testing"

	"phmse/internal/workest"
)

func TestUniqueSorted(t *testing.T) {
	cells := []workest.Measurement{
		{NodeAtoms: 170, BatchDim: 4},
		{NodeAtoms: 43, BatchDim: 16},
		{NodeAtoms: 170, BatchDim: 16},
		{NodeAtoms: 43, BatchDim: 4},
	}
	atoms := uniqueSorted(cells, func(m workest.Measurement) int { return m.NodeAtoms })
	if len(atoms) != 2 || atoms[0] != 43 || atoms[1] != 170 {
		t.Fatalf("atoms = %v", atoms)
	}
	batches := uniqueSorted(cells, func(m workest.Measurement) int { return m.BatchDim })
	if len(batches) != 2 || batches[0] != 4 || batches[1] != 16 {
		t.Fatalf("batches = %v", batches)
	}
}

// The embedded reference tables must be internally consistent: NP strictly
// increasing, times decreasing, speedup = time(1)/time(NP) within rounding,
// and positive class entries.
func TestPaperTablesIntegrity(t *testing.T) {
	for key, rows := range paperTables {
		if rows[0].np != 1 || rows[0].spdup != 1 {
			t.Fatalf("%s: first row not NP=1", key)
		}
		base := rows[0].time
		for i, r := range rows {
			if i > 0 {
				if r.np <= rows[i-1].np {
					t.Fatalf("%s: NP not increasing at row %d", key, i)
				}
				if r.time >= rows[i-1].time {
					t.Fatalf("%s: time not decreasing at NP=%d", key, r.np)
				}
			}
			implied := base / r.time
			if implied/r.spdup > 1.02 || implied/r.spdup < 0.98 {
				t.Fatalf("%s NP=%d: speedup %g inconsistent with times (%g)", key, r.np, r.spdup, implied)
			}
			for c, v := range r.cls {
				if v <= 0 {
					t.Fatalf("%s NP=%d: class %d non-positive", key, r.np, c)
				}
			}
		}
	}
	if len(paperTables) != 4 {
		t.Fatalf("expected 4 reference tables, have %d", len(paperTables))
	}
}

func TestPaperTable1Reference(t *testing.T) {
	for bp, row := range paperTable1 {
		if row[0] <= 0 || row[2] <= 0 {
			t.Fatalf("%d bp: non-positive times", bp)
		}
		implied := row[0] / row[2]
		if implied/row[4] > 1.01 || implied/row[4] < 0.99 {
			t.Fatalf("%d bp: speedup %g inconsistent with times (%g)", bp, row[4], implied)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("no-such-experiment", config{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
