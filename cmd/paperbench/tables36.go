package main

import (
	"fmt"

	"phmse/internal/hier"
	"phmse/internal/machine"
	"phmse/internal/molecule"
	"phmse/internal/sched"
	"phmse/internal/trace"
	"phmse/internal/vm"
	"phmse/internal/workest"
)

// paperRow is one published row of Tables 3–6.
type paperRow struct {
	np    int
	time  float64
	spdup float64
	cls   [6]float64 // d-s chol sys m-m m-v vec
}

var paperTables = map[string][]paperRow{
	"helix/DASH": {
		{1, 483.22, 1.00, [6]float64{22.33, 1.95, 55.07, 384.97, 3.14, 0.99}},
		{2, 246.56, 1.96, [6]float64{11.48, 1.07, 27.53, 193.48, 1.37, 0.69}},
		{4, 122.09, 3.96, [6]float64{5.34, 0.58, 13.38, 95.13, 0.54, 0.34}},
		{6, 93.00, 5.20, [6]float64{3.59, 0.53, 9.28, 59.87, 0.47, 0.27}},
		{8, 57.54, 8.40, [6]float64{2.49, 0.38, 6.32, 43.81, 0.20, 0.19}},
		{10, 52.93, 9.13, [6]float64{2.28, 0.36, 5.39, 36.81, 0.17, 0.18}},
		{12, 44.37, 10.80, [6]float64{2.00, 0.33, 4.54, 30.46, 0.13, 0.16}},
		{14, 42.01, 11.50, [6]float64{1.83, 0.30, 3.89, 27.08, 0.11, 0.17}},
		{16, 33.20, 14.55, [6]float64{1.91, 0.28, 3.70, 24.11, 0.11, 0.17}},
		{20, 31.14, 15.52, [6]float64{1.57, 0.31, 3.41, 20.12, 0.10, 0.15}},
		{24, 25.07, 19.27, [6]float64{1.40, 0.27, 2.56, 17.25, 0.09, 0.15}},
		{28, 24.58, 19.66, [6]float64{1.28, 0.30, 2.38, 15.52, 0.08, 0.14}},
		{32, 20.00, 24.16, [6]float64{1.35, 0.28, 2.12, 13.31, 0.07, 0.15}},
	},
	"ribo/DASH": {
		{1, 924.57, 1.00, [6]float64{17.33, 0.83, 33.18, 861.05, 3.01, 0.61}},
		{2, 446.42, 2.07, [6]float64{9.09, 0.50, 16.90, 411.72, 1.26, 0.33}},
		{4, 215.95, 4.28, [6]float64{4.67, 0.29, 8.35, 197.34, 0.29, 0.17}},
		{6, 137.95, 6.70, [6]float64{2.58, 0.22, 5.09, 120.30, 0.21, 0.12}},
		{8, 110.48, 8.37, [6]float64{2.29, 0.34, 4.73, 92.14, 0.16, 0.10}},
		{10, 87.98, 10.51, [6]float64{1.90, 0.17, 3.13, 75.98, 0.09, 0.10}},
		{12, 72.60, 12.74, [6]float64{1.71, 0.17, 3.01, 62.32, 0.12, 0.08}},
		{14, 67.83, 13.63, [6]float64{1.70, 0.16, 2.62, 56.28, 0.07, 0.08}},
		{16, 60.02, 15.40, [6]float64{1.53, 0.18, 2.31, 51.07, 0.07, 0.08}},
		{20, 49.09, 18.83, [6]float64{1.42, 0.16, 1.93, 41.57, 0.06, 0.08}},
		{24, 43.93, 21.05, [6]float64{1.43, 0.33, 1.62, 37.10, 0.05, 0.08}},
		{32, 38.14, 24.24, [6]float64{1.17, 0.16, 1.37, 32.22, 0.04, 0.08}},
	},
	"helix/Challenge": {
		{1, 159.99, 1.00, [6]float64{6.96, 0.69, 19.48, 128.86, 0.49, 0.33}},
		{2, 82.65, 1.94, [6]float64{3.42, 0.35, 9.76, 66.38, 0.25, 0.16}},
		{4, 42.20, 3.79, [6]float64{1.65, 0.19, 4.93, 33.77, 0.13, 0.09}},
		{6, 32.30, 4.95, [6]float64{1.13, 0.15, 3.28, 22.53, 0.09, 0.06}},
		{8, 21.79, 7.34, [6]float64{0.84, 0.12, 2.46, 17.21, 0.06, 0.05}},
		{10, 18.83, 8.50, [6]float64{0.69, 0.11, 1.97, 13.98, 0.05, 0.04}},
		{12, 15.98, 10.01, [6]float64{0.59, 0.10, 1.67, 11.55, 0.04, 0.05}},
		{14, 14.49, 11.04, [6]float64{0.50, 0.10, 1.43, 10.05, 0.04, 0.04}},
		{16, 11.59, 13.80, [6]float64{0.47, 0.10, 1.26, 8.87, 0.03, 0.04}},
	},
	"ribo/Challenge": {
		{1, 272.53, 1.00, [6]float64{5.37, 0.32, 11.55, 253.52, 0.29, 0.15}},
		{2, 145.41, 1.87, [6]float64{2.68, 0.17, 5.73, 134.46, 0.15, 0.08}},
		{4, 72.56, 3.76, [6]float64{1.33, 0.10, 2.88, 66.68, 0.08, 0.05}},
		{6, 50.35, 5.41, [6]float64{0.91, 0.08, 2.06, 45.19, 0.05, 0.03}},
		{8, 37.26, 7.31, [6]float64{0.69, 0.06, 1.45, 33.98, 0.04, 0.03}},
		{10, 29.44, 9.26, [6]float64{0.56, 0.06, 1.17, 26.77, 0.03, 0.03}},
		{12, 24.96, 10.92, [6]float64{0.48, 0.05, 0.96, 22.44, 0.03, 0.03}},
		{14, 21.91, 12.44, [6]float64{0.43, 0.05, 0.84, 19.69, 0.03, 0.03}},
		{16, 18.86, 14.45, [6]float64{0.40, 0.06, 0.74, 16.85, 0.02, 0.03}},
	},
}

var tableNames = map[string]string{
	"helix/DASH":      "Table 3 / Figure 7 — Helix on DASH",
	"ribo/DASH":       "Table 4 / Figure 8 — ribo30S on DASH",
	"helix/Challenge": "Table 5 / Figure 9 — Helix on Challenge",
	"ribo/Challenge":  "Table 6 / Figure 10 — ribo30S on Challenge",
}

// sweep reproduces one of Tables 3–6 on the virtual-time machine model.
func sweep(cfg config, problem, machName string) error {
	key := problem + "/" + machName
	header(tableNames[key])

	var p *molecule.Problem
	if problem == "helix" {
		p = molecule.Helix(16)
	} else {
		p = molecule.Ribo30S(cfg.seed)
	}
	var mach *machine.Machine
	if machName == "DASH" {
		mach = machine.DASH()
	} else {
		mach = machine.Challenge()
	}

	root, err := hier.Build(p.Tree, p.Constraints)
	if err != nil {
		return err
	}
	if err := root.Prepare(16); err != nil {
		return err
	}
	work := sched.EstimateWork(root, workest.FlopModel{}, 16)

	fmt.Printf("\n%s: %d atoms, %d scalar constraints; %s model, one cycle\n",
		p.Name, len(p.Atoms), p.ScalarDim(), mach.Name)
	fmt.Println(" NP    time  spdup |    d-s   chol    sys     m-m    m-v    vec |  paper time spdup")
	var base float64
	for _, row := range paperTables[key] {
		np := row.np
		var plan *hier.ExecPlan
		if np > 1 {
			plan = sched.Assign(root, np, work)
		}
		r := vm.Run(root, mach, np, plan)
		if np == 1 {
			base = r.Wall
		}
		cs := r.ClassSeconds()
		fmt.Printf("%3d %7.2f %6.2f | %6.2f %6.2f %6.2f %7.2f %6.2f %6.2f |  %8.2f %5.2f\n",
			np, r.Wall, base/r.Wall,
			cs[trace.DenseSparse], cs[trace.Chol], cs[trace.Solve],
			cs[trace.MatMat], cs[trace.MatVec], cs[trace.VecOp],
			row.time, row.spdup)
	}
	fmt.Println("\n(columns: wall time of one constraint cycle; per-class busy time / NP)")
	return nil
}
