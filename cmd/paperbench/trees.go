package main

import (
	"fmt"
	"strings"

	"phmse/internal/hier"
	"phmse/internal/molecule"
)

// trees renders the hierarchical decompositions of the two evaluation
// problems (the paper's Figure 2 and Figure 4) as indented outlines, with
// per-node atom and constraint counts.
func trees(cfg config) error {
	header("Figure 2 — hierarchical decomposition of the RNA double helix")
	h := molecule.Helix(4)
	hroot, err := hier.Build(h.Tree, h.Constraints)
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(hroot.Dump())
	fmt.Printf("(%d nodes, depth %d; 16 bp used in the experiments — 4 bp shown for legibility)\n",
		hroot.Count(), hroot.MaxDepth())

	header("Figure 4 — hierarchical decomposition of ribo30S")
	r := molecule.Ribo30S(cfg.seed)
	rroot, err := hier.Build(r.Tree, r.Constraints)
	if err != nil {
		return err
	}
	fmt.Println()
	// The full tree has ~275 nodes; show the top two levels.
	lines := strings.Split(rroot.Dump(), "\n")
	shown := 0
	for _, line := range lines {
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if indent <= 2 && line != "" {
			fmt.Println(line)
			shown++
		}
	}
	fmt.Printf("(... segment and strand nodes elided: %d nodes total, depth %d, root branching %d)\n",
		rroot.Count(), rroot.MaxDepth(), len(rroot.Children))
	return nil
}
