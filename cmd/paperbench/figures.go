package main

import (
	"fmt"
	"os"
	"path/filepath"

	"phmse/internal/hier"
	"phmse/internal/machine"
	"phmse/internal/molecule"
	"phmse/internal/sched"
	"phmse/internal/trace"
	"phmse/internal/vm"
	"phmse/internal/workest"
)

// figures writes the data series behind Figures 5–10 as CSV files in the
// given directory, ready for any plotting tool:
//
//	figure5.csv  — per-constraint time vs helix length, flat and hierarchical
//	figure6.csv  — per-constraint time vs batch dimension per node size
//	figure7.csv … figure10.csv — speedup and per-class time vs NP
func figures(cfg config, dir string) error {
	header("Figures 5–10 — CSV series → " + dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}

	// Figure 5: computational efficiency of hierarchical vs flat, on the
	// DASH model so the 16 bp point is affordable.
	f5, err := os.Create(filepath.Join(dir, "figure5.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f5, "base_pairs,scalar_constraints,flat_s_per_constraint,hier_s_per_constraint")
	mach := machine.DASH()
	for _, bp := range []int{1, 2, 4, 8, 16} {
		h := molecule.Helix(bp)
		root, err := hier.Build(h.Tree, h.Constraints)
		if err != nil {
			return err
		}
		if err := root.Prepare(16); err != nil {
			return err
		}
		hierWall := vm.Run(root, mach, 1, nil).Wall
		flatWall := vm.RunFlat(3*len(h.Atoms), vm.FlatShapes(h.ScalarDim(), 16, 6), mach, 1).Wall
		sc := float64(h.ScalarDim())
		fmt.Fprintf(f5, "%d,%d,%.6f,%.6f\n", bp, h.ScalarDim(), flatWall/sc, hierWall/sc)
	}
	if err := f5.Close(); err != nil {
		return err
	}

	// Figure 6: measured per-constraint time surface.
	f6, err := os.Create(filepath.Join(dir, "figure6.csv"))
	if err != nil {
		return err
	}
	fmt.Fprintln(f6, "node_atoms,batch_dim,s_per_constraint")
	for _, cell := range table2Cells(cfg) {
		fmt.Fprintf(f6, "%d,%d,%.8f\n", cell.NodeAtoms, cell.BatchDim, cell.PerScalar)
	}
	if err := f6.Close(); err != nil {
		return err
	}

	// Figures 7–10: speedup and time-distribution series.
	for _, spec := range []struct {
		file, problem, mach string
	}{
		{"figure7.csv", "helix", "DASH"},
		{"figure8.csv", "ribo", "DASH"},
		{"figure9.csv", "helix", "Challenge"},
		{"figure10.csv", "ribo", "Challenge"},
	} {
		if err := sweepCSV(cfg, spec.problem, spec.mach, filepath.Join(dir, spec.file)); err != nil {
			return err
		}
	}
	fmt.Println("wrote figure5.csv … figure10.csv")
	return nil
}

func sweepCSV(cfg config, problem, machName, path string) error {
	var p *molecule.Problem
	if problem == "helix" {
		p = molecule.Helix(16)
	} else {
		p = molecule.Ribo30S(cfg.seed)
	}
	var mach *machine.Machine
	if machName == "DASH" {
		mach = machine.DASH()
	} else {
		mach = machine.Challenge()
	}
	root, err := hier.Build(p.Tree, p.Constraints)
	if err != nil {
		return err
	}
	if err := root.Prepare(16); err != nil {
		return err
	}
	work := sched.EstimateWork(root, workest.FlopModel{}, 16)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "np,wall_s,speedup,d_s,chol,sys,m_m,m_v,vec")
	var base float64
	for np := 1; np <= mach.MaxProcs; np++ {
		var plan *hier.ExecPlan
		if np > 1 {
			plan = sched.Assign(root, np, work)
		}
		r := vm.Run(root, mach, np, plan)
		if np == 1 {
			base = r.Wall
		}
		cs := r.ClassSeconds()
		fmt.Fprintf(f, "%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			np, r.Wall, base/r.Wall,
			cs[trace.DenseSparse], cs[trace.Chol], cs[trace.Solve],
			cs[trace.MatMat], cs[trace.MatVec], cs[trace.VecOp])
	}
	return nil
}
