package main

import (
	"fmt"
	"runtime"

	"phmse/internal/core"
	"phmse/internal/molecule"
)

// memory quantifies the §4.4/§5 memory-behaviour observation in Go terms:
// the hierarchical organization allocates many small per-node states where
// the flat organization holds one large covariance, and the paper notes
// that careless management of those fragments costs locality. The table
// reports heap allocation per constraint cycle for both organizations
// (the library's update loop itself runs allocation-free at steady state).
func memory(cfg config) error {
	header("§5 — memory behaviour of the two organizations")

	bp := 2
	if cfg.full {
		bp = 4
	}
	p := molecule.Helix(bp)
	init := p.TruePositions()
	fmt.Printf("\n%s (%d atoms, %d scalar constraints), one cycle\n", p.Name, len(p.Atoms), p.ScalarDim())
	fmt.Println("organization  | alloc/cycle |   peak covariance storage")
	for _, mode := range []core.Mode{core.Flat, core.Hierarchical} {
		est, err := core.New(p, core.Config{Mode: mode, MaxCycles: 1})
		if err != nil {
			return err
		}
		// Warm up once so workspaces reach their high-water marks.
		if _, err := est.Solve(init); err != nil {
			return err
		}
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		if _, err := est.Solve(init); err != nil {
			return err
		}
		runtime.ReadMemStats(&after)
		n := 3 * len(p.Atoms)
		peak := float64(n) * float64(n) * 8
		if mode == core.Hierarchical {
			// Upper bound: each level of the binary tree holds block states
			// totalling ≤ n² entries only at the root; the working peak is
			// the root state plus one child generation ≈ 1.5·n².
			peak *= 1.5
		}
		fmt.Printf("%-13v | %8.2f MB | %8.2f MB\n",
			mode, float64(after.TotalAlloc-before.TotalAlloc)/(1<<20), peak/(1<<20))
	}
	fmt.Println("\nThe hierarchical organization re-allocates per-node states every cycle")
	fmt.Println("(the dynamic allocation the paper's §4.4 flags); the per-batch update")
	fmt.Println("scratch is pooled and allocation-free at steady state.")
	return nil
}
