package main

import (
	"fmt"

	"phmse/internal/hier"
	"phmse/internal/machine"
	"phmse/internal/molecule"
	"phmse/internal/sched"
	"phmse/internal/vm"
	"phmse/internal/workest"
)

// timeline renders the virtual-time execution of the helix at NP=6 and
// NP=8 on the DASH model, making the source of the non-power-of-two dip
// visible: with six processors the two equal sub-helices get 3 processors
// each, but each 3-processor group must again split 2/1 one level down, so
// the slower one-processor branch stalls its sibling at every join.
func timeline(cfg config) error {
	header("Execution timeline — the anatomy of the power-of-two dip")

	h := molecule.Helix(8)
	root, err := hier.Build(h.Tree, h.Constraints)
	if err != nil {
		return err
	}
	if err := root.Prepare(16); err != nil {
		return err
	}
	mach := machine.DASH()
	work := sched.EstimateWork(root, workest.FlopModel{}, 16)
	for _, np := range []int{6, 8} {
		plan := sched.Assign(root, np, work)
		res, spans := vm.Trace(root, mach, np, plan)
		fmt.Printf("\n%s, NP=%d (speedup %.2f):\n", h.Name, np,
			vm.Run(root, mach, 1, nil).Wall/res.Wall)
		fmt.Print(vm.FormatTimeline(root, spans, res.Wall, 2))
	}
	fmt.Println("\nAt NP=6 the depth-2 joins wait for their one-processor branches;")
	fmt.Println("at NP=8 every split is even and the joins meet without idling.")
	return nil
}
