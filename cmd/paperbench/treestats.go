package main

import (
	"fmt"

	"phmse/internal/hier"
	"phmse/internal/molecule"
)

// treestats quantifies the §3.1 analysis on the real decompositions: the
// hierarchical speedup depends on how much of the constraint set can be
// pushed toward the leaves. The paper bounds the per-constraint cost
// between O(n) (constraints concentrated at the leaves) and O(n·d)
// (every level carrying as much as the one below); this experiment shows
// where each workload falls.
func treestats(cfg config) error {
	header("§3.1 — constraint and work distribution over the hierarchy")

	problems := []*molecule.Problem{
		molecule.Helix(8),
		molecule.Ribo30S(cfg.seed),
		molecule.Protein(48, cfg.seed),
	}
	for _, p := range problems {
		root, err := hier.Build(p.Tree, p.Constraints)
		if err != nil {
			return err
		}
		st := hier.ComputeStats(root)
		fmt.Printf("\n%s:\n%s", p.Name, st.Format())
	}
	fmt.Println("\nThe helix is the paper's optimistic scenario: nearly all constraints")
	fmt.Println("sit in the bottom half of its tree. The ribosome and protein keep their")
	fmt.Println("long-range contact data at the top levels, and in every workload the")
	fmt.Println("O(n²)-per-constraint factor concentrates the estimated *work* at the")
	fmt.Println("top two levels — which is exactly why the paper needs intra-node matrix")
	fmt.Println("parallelism in addition to the inter-node subtree axis.")
	return nil
}
