package main

import (
	"fmt"
	"time"

	"phmse/internal/filter"
	"phmse/internal/molecule"
)

// combine quantifies the §4.1 analysis: parallelizing a node's computation
// across constraint-set partitions requires combining the independent
// results (Figure 3), and the combination costs about as much as applying a
// constraint vector of the node's dimension — so unless the data volume
// greatly exceeds the state size, the approach loses to parallelism within
// the update procedure.
func combine(cfg config) error {
	header("§4.1 — cost of combining independent constraint-partition updates")

	bp := 1
	if cfg.full {
		bp = 2
	}
	h := molecule.Helix(bp)
	init := h.TruePositions()
	n := 3 * len(h.Atoms)

	ident := func(a int) int { return a }
	batches, err := filter.MakeBatches(h.Constraints, ident, 16)
	if err != nil {
		return err
	}

	// Sequential application of the whole set.
	prior := filter.NewState(init, 100)
	seq := prior.Clone()
	u := &filter.Updater{}
	start := time.Now()
	if _, err := u.ApplyAll(seq, batches); err != nil {
		return err
	}
	seqSec := time.Since(start).Seconds()

	fmt.Printf("\n%s: state dimension %d, %d scalar constraints\n", h.Name, n, h.ScalarDim())
	fmt.Printf("sequential application: %.3fs\n", seqSec)
	fmt.Println("\nparts | apply(s, max over parts) | combine(s) | combine/apply")
	for _, parts := range []int{2, 4} {
		// Split batches round-robin into disjoint subsets and update
		// independent copies of the prior.
		states := make([]*filter.State, parts)
		applySec := 0.0
		for pi := 0; pi < parts; pi++ {
			s := prior.Clone()
			start := time.Now()
			for bi := pi; bi < len(batches); bi += parts {
				if _, err := u.Apply(s, batches[bi]); err != nil {
					return err
				}
			}
			if sec := time.Since(start).Seconds(); sec > applySec {
				applySec = sec
			}
			states[pi] = s
		}
		start := time.Now()
		fused, err := filter.CombineAll(prior, states)
		if err != nil {
			return err
		}
		combineSec := time.Since(start).Seconds()
		_ = fused
		fmt.Printf("%5d | %21.3f | %10.3f | %11.2f\n",
			parts, applySec, combineSec, combineSec/applySec)
	}
	fmt.Println("\nThe combination overhead is why the paper parallelizes inside the")
	fmt.Println("update procedure instead of across constraint partitions.")
	return nil
}
