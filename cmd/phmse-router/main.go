// Command phmse-router is the sharding tier for phmsed: a consistent-hash
// HTTP router that spreads estimation jobs across N daemon instances while
// keeping identical topologies — and warm-start re-solves — on the shard
// whose plan cache and posterior store already hold them.
//
// Usage:
//
//	phmse-router -addr :8090 -shards http://localhost:8081,http://localhost:8082
//
// The router speaks the same v1 API as a single phmsed, so phmsectl and the
// typed client point at it unchanged. Shard health is polled continuously;
// dead shards leave the ring and are readmitted when they answer again.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"phmse/internal/debugserve"
	"phmse/internal/router"
)

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address")
		shards       = flag.String("shards", "", "comma-separated backend phmsed base URLs (required)")
		vnodes       = flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
		probeEvery   = flag.Duration("probe-interval", 2*time.Second, "shard health-poll period")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "timeout for one health probe")
		maxBackoff   = flag.Duration("max-probe-backoff", 30*time.Second, "cap on the probe backoff of an unreachable shard")
		failAfter    = flag.Int("fail-after", 1, "consecutive failed probes before a shard leaves the ring")
		inflight     = flag.Int("shard-inflight", 0, "max concurrent requests forwarded to one shard; saturated shards answer 429 (0 = unlimited)")
		adminToken   = flag.String("admin-token", "", "bearer token required on /admin/v1 and presented to shards during migration (empty leaves the admin plane open)")
		drainDL      = flag.Duration("drain-deadline", 30*time.Second, "default wait for a draining shard's in-flight jobs before migration proceeds")
		migrTimeout  = flag.Duration("migrate-timeout", 10*time.Second, "per-posterior transfer timeout during migration passes")
		repairEvery  = flag.Duration("repair-interval", 30*time.Second, "anti-entropy repair sweep period, jittered ±20% (negative disables the loop)")
		repairConc   = flag.Int("repair-concurrency", 2, "max concurrent posterior transfers per repair sweep")
		brkFailures  = flag.Int("breaker-failures", 3, "consecutive live-forward failures that open a shard's circuit breaker (-1 disables breaking)")
		brkCooldown  = flag.Duration("breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open trial request is admitted")
		flapCount    = flag.Int("breaker-flap-count", 3, "ring readmissions within the flap window that quarantine a shard (-1 disables flap suppression)")
		flapWindow   = flag.Duration("breaker-flap-window", time.Minute, "sliding window for counting ring readmissions")
		auditLog     = flag.String("audit-log", "", "append-only JSONL file recording membership changes and repair sweeps (empty keeps the in-memory tail only)")
		replicaID    = flag.String("replica-id", "", "stable name of this router replica in the replicated membership document (empty mints a random r-<hex> id)")
		peers        = flag.String("peers", "", "comma-separated base URLs of the other router replicas to gossip membership with (empty = single-router control plane)")
		gossipEvery  = flag.Duration("gossip-interval", time.Second, "anti-entropy membership exchange period between router replicas")
		leaseTTL     = flag.Duration("lease-ttl", 0, "repair-sweeper lease duration (0 = 3x the repair interval)")
		pprofAddr    = flag.String("pprof-addr", "", "listen address for net/http/pprof debug endpoints (empty disables)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "phmse-router: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	var bases []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			bases = append(bases, s)
		}
	}
	var peerList []string
	for _, s := range strings.Split(*peers, ",") {
		if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
			peerList = append(peerList, s)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(os.Stderr, "phmse-router: -shards is required")
		flag.Usage()
		os.Exit(2)
	}

	if *inflight < 0 {
		fmt.Fprintln(os.Stderr, "phmse-router: -shard-inflight must be >= 0")
		flag.Usage()
		os.Exit(2)
	}
	debugserve.Start(*pprofAddr)
	rt, err := router.New(router.Config{
		Shards:            bases,
		VNodes:            *vnodes,
		ProbeInterval:     *probeEvery,
		ProbeTimeout:      *probeTimeout,
		MaxProbeBackoff:   *maxBackoff,
		FailAfter:         *failAfter,
		ShardInflight:     *inflight,
		AdminToken:        *adminToken,
		DrainDeadline:     *drainDL,
		MigrateTimeout:    *migrTimeout,
		RepairInterval:    *repairEvery,
		RepairConcurrency: *repairConc,
		BreakerFailures:   *brkFailures,
		BreakerCooldown:   *brkCooldown,
		FlapCount:         *flapCount,
		FlapWindow:        *flapWindow,
		AuditLog:          *auditLog,
		ReplicaID:         *replicaID,
		Peers:             peerList,
		GossipInterval:    *gossipEvery,
		LeaseTTL:          *leaseTTL,
	})
	if err != nil {
		log.Fatalf("phmse-router: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Settle the ring before accepting traffic so a shard that is down at
	// startup never receives the first submissions.
	probeCtx, cancel := context.WithTimeout(ctx, *probeTimeout+time.Second)
	rt.CheckNow(probeCtx)
	cancel()

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("phmse-router: serving on %s over %d shard(s), %d gossip peer(s)", *addr, len(bases), len(peerList))

	select {
	case err := <-errc:
		log.Fatalf("phmse-router: %v", err)
	case <-ctx.Done():
	}
	log.Printf("phmse-router: shutting down...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("phmse-router: http shutdown: %v", err)
	}
	rt.Close()
	log.Printf("phmse-router: stopped")
}
