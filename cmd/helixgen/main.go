// Command helixgen generates structure-estimation problem files: RNA
// double helices of configurable length (the paper's §3.1 workload) or the
// synthetic 30S ribosomal subunit (§4.4), in the JSON interchange format
// consumed by msesolve.
//
// Usage:
//
//	helixgen -bp 16 -o helix16.json
//	helixgen -ribo -seed 1996 -o ribo.json
//	helixgen -bp 4 -anchors 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"phmse/internal/encode"
	"phmse/internal/molecule"
)

func main() {
	var (
		bp       = flag.Int("bp", 4, "helix length in base pairs")
		ribo     = flag.Bool("ribo", false, "generate the synthetic 30S ribosome instead of a helix")
		protein  = flag.Int("protein", 0, "generate a synthetic protein with this many residues instead")
		helices  = flag.Int("helices", 65, "ribosome: number of double-helix segments")
		coils    = flag.Int("coils", 65, "ribosome: number of coil segments")
		proteins = flag.Int("proteins", 21, "ribosome: number of protein reference points")
		seed     = flag.Int64("seed", 1996, "generator seed (ribosome and protein)")
		anchors  = flag.Int("anchors", 0, "anchor the first N atoms at their reference positions")
		sigma    = flag.Float64("anchor-sigma", 0.05, "anchor standard deviation (Å)")
		out      = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	// Reject bad flag values with a usage message instead of generating a
	// degenerate problem from zero-value defaults.
	switch {
	case flag.NArg() > 0:
		usageError(fmt.Sprintf("unexpected arguments: %v", flag.Args()))
	case *bp < 1:
		usageError(fmt.Sprintf("-bp must be >= 1, got %d", *bp))
	case *protein < 0:
		usageError(fmt.Sprintf("-protein must be >= 0, got %d", *protein))
	case *ribo && (*helices < 1 || *coils < 0 || *proteins < 0):
		usageError(fmt.Sprintf("-helices must be >= 1 and -coils/-proteins >= 0, got %d/%d/%d",
			*helices, *coils, *proteins))
	case *anchors < 0:
		usageError(fmt.Sprintf("-anchors must be >= 0, got %d", *anchors))
	case *anchors > 0 && *sigma <= 0:
		usageError(fmt.Sprintf("-anchor-sigma must be positive, got %g", *sigma))
	}

	var p *molecule.Problem
	if *protein > 0 {
		p = molecule.Protein(*protein, *seed)
	} else if *ribo {
		p = molecule.Ribo30SWith(molecule.Ribo30SConfig{
			Helices: *helices, Coils: *coils, Proteins: *proteins, Seed: *seed,
		})
	} else {
		p = molecule.Helix(*bp)
	}
	if *anchors > 0 {
		p = molecule.WithAnchors(p, *anchors, *sigma)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := encode.WriteProblem(w, p); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s: %d atoms, %d constraints (%d scalar)\n",
		p.Name, len(p.Atoms), len(p.Constraints), p.ScalarDim())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "helixgen:", err)
	os.Exit(1)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "helixgen:", msg)
	flag.Usage()
	os.Exit(2)
}
