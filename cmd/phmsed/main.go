// Command phmsed is the structure-estimation daemon: a long-lived HTTP
// server that accepts estimation problems in the JSON interchange format,
// runs them through an elastic solver-team scheduler sized to the machine
// (cheap jobs coalesce onto small teams running concurrently, expensive
// jobs get wide teams), caches decomposition and scheduling artifacts
// across repeated solves of the same topology, and supports per-job
// cancellation, timeouts, and graceful shutdown.
//
// Usage:
//
//	phmsed -addr :8080
//	phmsed -addr :8080 -max-procs 8 -max-team 4 -queue 64
//
// Submit and poll:
//
//	curl -s localhost:8080/v1/solve -d '{"problem": '"$(helixgen -bp 8)"'}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM triggers a graceful drain: new submissions are rejected
// with 503 while accepted jobs run to completion (bounded by
// -drain-timeout, after which they are cancelled).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"phmse/internal/debugserve"
	"phmse/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		workers      = flag.Int("workers", 0, "legacy: concurrent solves; with -procs maps to -max-procs = workers*procs")
		procs        = flag.Int("procs", 0, "legacy: processor team size per solve; maps to -max-team")
		maxProcs     = flag.Int("max-procs", 0, "total processor budget shared by all running solves (default GOMAXPROCS)")
		minTeam      = flag.Int("min-team", 0, "smallest processor team a solve runs on (default 1)")
		maxTeam      = flag.Int("max-team", 0, "widest processor team a single solve may get (default max-procs)")
		queue        = flag.Int("queue", 32, "bounded job-queue depth (full queue rejects with 429)")
		pprofAddr    = flag.String("pprof-addr", "", "listen address for net/http/pprof debug endpoints (empty disables)")
		cacheSize    = flag.Int("plan-cache", 64, "plan cache entries (negative disables)")
		postMB       = flag.Int64("posterior-mb", 256, "posterior store budget in MiB for warm starts (<= 0 disables)")
		maxRetries   = flag.Int("max-retries", 2, "automatic re-solve attempts after a transient job failure (0 disables)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "max wait for in-flight jobs on shutdown")
		instance     = flag.String("instance", "", "stable instance name; qualifies job ids for shard routing (letters, digits, - and _)")
		posteriorDir = flag.String("posterior-dir", "", "directory for posterior snapshots; reloaded on startup for warm starts across restarts")
		adminToken   = flag.String("admin-token", "", "bearer token required on posterior import/delete (PUT/DELETE /v1/posteriors); set to the router's -admin-token")
		transferIn   = flag.Int("transfer-inflight", 0, "max concurrent posterior imports; excess PUTs answer 429 with Retry-After (0 = unlimited)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "phmsed: unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}
	if *workers < 0 || *procs < 0 || *maxProcs < 0 || *minTeam < 0 || *maxTeam < 0 ||
		*queue < 1 || *maxRetries < 0 || *drainTimeout <= 0 || *transferIn < 0 {
		fmt.Fprintln(os.Stderr, "phmsed: processor flags must be >= 0, -queue >= 1, -max-retries >= 0, -drain-timeout > 0, -transfer-inflight >= 0")
		flag.Usage()
		os.Exit(2)
	}
	if !validInstance(*instance) {
		fmt.Fprintf(os.Stderr, "phmsed: -instance %q must use only letters, digits, - and _\n", *instance)
		flag.Usage()
		os.Exit(2)
	}

	posteriorBytes := *postMB << 20
	if *postMB <= 0 {
		posteriorBytes = -1
	}
	retries := *maxRetries
	if retries == 0 {
		retries = -1 // Config: 0 keeps the default, negative disables
	}
	debugserve.Start(*pprofAddr)
	srv := server.New(server.Config{
		Workers:          *workers,
		ProcsPerJob:      *procs,
		MaxProcs:         *maxProcs,
		MinTeam:          *minTeam,
		MaxTeam:          *maxTeam,
		QueueDepth:       *queue,
		CacheSize:        *cacheSize,
		PosteriorBytes:   posteriorBytes,
		MaxRetries:       retries,
		InstanceID:       *instance,
		PosteriorDir:     *posteriorDir,
		AdminToken:       *adminToken,
		TransferInflight: *transferIn,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("phmsed: serving on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("phmsed: %v", err)
	case <-ctx.Done():
	}
	log.Printf("phmsed: draining (up to %v)...", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Printf("phmsed: forced drain: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("phmsed: http shutdown: %v", err)
	}
	log.Printf("phmsed: stopped")
}

// validInstance accepts names safe to embed in job ids and snapshot file
// names. The empty name is valid: it disables shard qualification.
func validInstance(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}
