// Command msesolve estimates a molecular structure from a problem file
// produced by helixgen (or hand-written in the same JSON format), using the
// flat or the parallel hierarchical organization.
//
// Usage:
//
//	msesolve -in helix16.json -mode hier -procs 4
//	msesolve -in ribo.json -conform -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"phmse/internal/analysis"
	"phmse/internal/conform"
	"phmse/internal/core"
	"phmse/internal/encode"
	"phmse/internal/geom"
	"phmse/internal/molecule"
	"phmse/internal/pdb"
	"phmse/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "", "problem file (JSON); required")
		mode    = flag.String("mode", "hier", "organization: flat or hier")
		procs   = flag.Int("procs", 1, "number of logical processors")
		batch   = flag.Int("batch", 16, "constraint batch dimension")
		cycles  = flag.Int("cycles", 100, "maximum constraint-application cycles")
		tol     = flag.Float64("tol", 1e-3, "convergence tolerance (RMS Å per cycle)")
		perturb = flag.Float64("perturb", 0.5, "start from reference positions perturbed by this σ (Å)")
		seed    = flag.Int64("seed", 1, "random seed for the starting estimate")
		useConf = flag.Bool("conform", false, "start from a discrete conformational-space search instead")
		initPDB = flag.String("init", "", "start from coordinates in this PDB file (overrides -perturb/-conform)")
		auto    = flag.Bool("auto", false, "derive the hierarchy automatically by graph partitioning")
		verbose = flag.Bool("v", false, "print the per-operation-class time distribution and tree")
		pdbOut  = flag.String("pdb", "", "write the solved structure (PDB format, σ in the B-factor column)")
		timeout = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
	)
	flag.Parse()
	// Reject bad flag values with a usage message instead of proceeding
	// with nonsensical defaults.
	switch {
	case *in == "":
		usageError("-in is required")
	case flag.NArg() > 0:
		usageError(fmt.Sprintf("unexpected arguments: %v", flag.Args()))
	case *mode != "flat" && *mode != "hier":
		usageError(fmt.Sprintf("-mode must be \"flat\" or \"hier\", got %q", *mode))
	case *procs < 1:
		usageError(fmt.Sprintf("-procs must be >= 1, got %d", *procs))
	case *batch < 1:
		usageError(fmt.Sprintf("-batch must be >= 1, got %d", *batch))
	case *cycles < 1:
		usageError(fmt.Sprintf("-cycles must be >= 1, got %d", *cycles))
	case *tol <= 0 || math.IsNaN(*tol):
		usageError(fmt.Sprintf("-tol must be positive, got %g", *tol))
	case *perturb < 0 || math.IsNaN(*perturb):
		usageError(fmt.Sprintf("-perturb must be >= 0, got %g", *perturb))
	case *timeout < 0:
		usageError(fmt.Sprintf("-timeout must be >= 0, got %v", *timeout))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	p, err := encode.ReadProblem(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("problem %s: %d atoms, %d constraints (%d scalar)\n",
		p.Name, len(p.Atoms), len(p.Constraints), p.ScalarDim())

	m := core.Hierarchical
	if *mode == "flat" {
		m = core.Flat
	}
	var rec trace.Collector
	est, err := core.New(p, core.Config{
		Mode:          m,
		Procs:         *procs,
		BatchSize:     *batch,
		MaxCycles:     *cycles,
		Tol:           *tol,
		Recorder:      &rec,
		AutoDecompose: *auto,
	})
	if err != nil {
		fatal(err)
	}
	if *verbose && est.Root() != nil {
		fmt.Println("hierarchy:")
		fmt.Print(est.Root().Dump())
	}

	var init []geom.Vec3
	switch {
	case *initPDB != "":
		f, err := os.Open(*initPDB)
		if err != nil {
			fatal(err)
		}
		_, pos, err := pdb.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if len(pos) != len(p.Atoms) {
			fatal(fmt.Errorf("%s has %d atoms, problem has %d", *initPDB, len(pos), len(p.Atoms)))
		}
		init = pos
	case *useConf:
		fmt.Println("running discrete conformational-space search for the initial estimate...")
		init = conform.Search(len(p.Atoms), p.Constraints, conform.Options{Seed: *seed})
	default:
		init = molecule.Perturbed(p, *perturb, *seed)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	sol, err := est.SolveContext(ctx, init)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fatal(fmt.Errorf("solve did not finish within -timeout %v", *timeout))
		}
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("mode=%s procs=%d batch=%d: %d cycles in %v (converged=%v, final RMS change %.2e)\n",
		m, *procs, *batch, sol.Cycles, elapsed.Round(time.Millisecond), sol.Converged, sol.RMSChange)
	fmt.Printf("weighted constraint residual: %.4f\n", sol.Residual)
	fmt.Printf("RMSD to reference geometry: %.4f Å\n", molecule.RMSD(sol.Positions, p.TruePositions()))

	// Uncertainty summary: the covariance diagonal tells which parts of
	// the molecule the data defines well.
	vars := append([]float64(nil), sol.Variances...)
	sort.Float64s(vars)
	fmt.Printf("per-atom positional variance (Å²): min %.3g  median %.3g  max %.3g\n",
		vars[0], vars[len(vars)/2], vars[len(vars)-1])
	rms := 0.0
	for _, v := range sol.Variances {
		rms += v
	}
	fmt.Printf("mean positional σ: %.3f Å\n", math.Sqrt(rms/float64(len(vars))))

	if *verbose {
		fmt.Println("time distribution:", rec.Times().Format())
		fmt.Print(sol.UncertaintyReport(3))
		fmt.Println("residuals by constraint type:")
		fmt.Print(analysis.FormatResiduals(analysis.ResidualByType(sol.Positions, p.Constraints)))
	}

	if *pdbOut != "" {
		f, err := os.Create(*pdbOut)
		if err != nil {
			fatal(err)
		}
		sigma := make([]float64, len(sol.Variances))
		for i, v := range sol.Variances {
			sigma[i] = math.Sqrt(v)
		}
		err = pdb.Write(f, p.Name, p.Atoms, sol.Positions, sigma)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *pdbOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msesolve:", err)
	os.Exit(1)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "msesolve:", msg)
	flag.Usage()
	os.Exit(2)
}
