// Command msesolve estimates a molecular structure from a problem file
// produced by helixgen (or hand-written in the same JSON format), using the
// flat or the parallel hierarchical organization.
//
// Usage:
//
//	msesolve -in helix16.json -mode hier -procs 4
//	msesolve -in ribo.json -conform -v
//
// A converged posterior can be saved and later used to warm-start a
// re-solve of the same molecule (typically with additional constraints):
//
//	msesolve -in helix16.json -save-posterior helix16.post.json
//	msesolve -in helix16_more_data.json -resume helix16.post.json
//
// Exit codes distinguish the failure class for scripting:
//
//	0  solved
//	1  unclassified error
//	2  usage error (bad flags)
//	3  bad input (unreadable or invalid problem/posterior/PDB file)
//	4  solve diverged (RMS change grew without bound)
//	5  innovation covariance indefinite through every ridge retry
//	6  solve produced non-finite values in every batch
//	7  cancelled or timed out
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"phmse/internal/analysis"
	"phmse/internal/conform"
	"phmse/internal/core"
	"phmse/internal/encode"
	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/molecule"
	"phmse/internal/pdb"
	"phmse/internal/solvererr"
	"phmse/internal/trace"
)

// Exit codes: the failure classes scripts branch on.
const (
	exitGeneric    = 1
	exitUsage      = 2
	exitBadInput   = 3
	exitDiverged   = 4
	exitIndefinite = 5
	exitNonFinite  = 6
	exitCanceled   = 7
)

func main() {
	var (
		in      = flag.String("in", "", "problem file (JSON); required")
		mode    = flag.String("mode", "hier", "organization: flat or hier")
		procs   = flag.Int("procs", 1, "number of logical processors")
		batch   = flag.Int("batch", 16, "constraint batch dimension")
		cycles  = flag.Int("cycles", 100, "maximum constraint-application cycles")
		tol     = flag.Float64("tol", 1e-3, "convergence tolerance (RMS Å per cycle)")
		perturb = flag.Float64("perturb", 0.5, "start from reference positions perturbed by this σ (Å)")
		seed    = flag.Int64("seed", 1, "random seed for the starting estimate")
		useConf = flag.Bool("conform", false, "start from a discrete conformational-space search instead")
		initPDB = flag.String("init", "", "start from coordinates in this PDB file (overrides -perturb/-conform)")
		auto    = flag.Bool("auto", false, "derive the hierarchy automatically by graph partitioning")
		verbose = flag.Bool("v", false, "print the per-operation-class time distribution and tree")
		pdbOut  = flag.String("pdb", "", "write the solved structure (PDB format, σ in the B-factor column)")
		timeout = flag.Duration("timeout", 0, "abort the solve after this duration (0 = no limit)")
		saveOut = flag.String("save-posterior", "", "write the converged posterior (JSON) for later -resume")
		resume  = flag.String("resume", "", "warm-start from a posterior saved with -save-posterior (overrides -perturb/-conform/-init)")
	)
	flag.Parse()
	// Reject bad flag values with a usage message instead of proceeding
	// with nonsensical defaults.
	switch {
	case *in == "":
		usageError("-in is required")
	case flag.NArg() > 0:
		usageError(fmt.Sprintf("unexpected arguments: %v", flag.Args()))
	case *mode != "flat" && *mode != "hier":
		usageError(fmt.Sprintf("-mode must be \"flat\" or \"hier\", got %q", *mode))
	case *procs < 1:
		usageError(fmt.Sprintf("-procs must be >= 1, got %d", *procs))
	case *batch < 1:
		usageError(fmt.Sprintf("-batch must be >= 1, got %d", *batch))
	case *cycles < 1:
		usageError(fmt.Sprintf("-cycles must be >= 1, got %d", *cycles))
	case *tol <= 0 || math.IsNaN(*tol):
		usageError(fmt.Sprintf("-tol must be positive, got %g", *tol))
	case *perturb < 0 || math.IsNaN(*perturb):
		usageError(fmt.Sprintf("-perturb must be >= 0, got %g", *perturb))
	case *timeout < 0:
		usageError(fmt.Sprintf("-timeout must be >= 0, got %v", *timeout))
	}

	f, err := os.Open(*in)
	if err != nil {
		fatalInput(err)
	}
	p, err := encode.ReadProblem(f)
	f.Close()
	if err != nil {
		fatalInput(err)
	}
	fmt.Printf("problem %s: %d atoms, %d constraints (%d scalar)\n",
		p.Name, len(p.Atoms), len(p.Constraints), p.ScalarDim())

	m := core.Hierarchical
	if *mode == "flat" {
		m = core.Flat
	}
	var rec trace.Collector
	est, err := core.New(p, core.Config{
		Mode:          m,
		Procs:         *procs,
		BatchSize:     *batch,
		MaxCycles:     *cycles,
		Tol:           *tol,
		Recorder:      &rec,
		AutoDecompose: *auto,
	})
	if err != nil {
		fatal(err)
	}
	if *verbose && est.Root() != nil {
		fmt.Println("hierarchy:")
		fmt.Print(est.Root().Dump())
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var post *core.Posterior
	if *resume != "" {
		post, err = readPosterior(*resume, p)
		if err != nil {
			fatalInput(err)
		}
		fmt.Printf("resuming from posterior %s\n", *resume)
	}

	var init []geom.Vec3
	switch {
	case post != nil:
		// Warm start: positions and covariance both come from the posterior.
	case *initPDB != "":
		f, err := os.Open(*initPDB)
		if err != nil {
			fatalInput(err)
		}
		_, pos, err := pdb.Read(f)
		f.Close()
		if err != nil {
			fatalInput(err)
		}
		if len(pos) != len(p.Atoms) {
			fatalInput(fmt.Errorf("%s has %d atoms, problem has %d", *initPDB, len(pos), len(p.Atoms)))
		}
		init = pos
	case *useConf:
		fmt.Println("running discrete conformational-space search for the initial estimate...")
		init = conform.Search(len(p.Atoms), p.Constraints, conform.Options{Seed: *seed})
	default:
		init = molecule.Perturbed(p, *perturb, *seed)
	}

	start := time.Now()
	var sol *core.Solution
	if post != nil {
		sol, err = est.SolveFrom(ctx, post)
	} else {
		sol, err = est.SolveContext(ctx, init)
	}
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			err = fmt.Errorf("solve did not finish within -timeout %v: %w", *timeout, err)
		}
		fmt.Fprintln(os.Stderr, "msesolve:", err)
		os.Exit(solveExitCode(err))
	}
	elapsed := time.Since(start)

	fmt.Printf("mode=%s procs=%d batch=%d: %d cycles in %v (converged=%v, final RMS change %.2e)\n",
		m, *procs, *batch, sol.Cycles, elapsed.Round(time.Millisecond), sol.Converged, sol.RMSChange)
	fmt.Printf("weighted constraint residual: %.4f\n", sol.Residual)
	fmt.Printf("RMSD to reference geometry: %.4f Å\n", molecule.RMSD(sol.Positions, p.TruePositions()))

	// Uncertainty summary: the covariance diagonal tells which parts of
	// the molecule the data defines well.
	vars := append([]float64(nil), sol.Variances...)
	sort.Float64s(vars)
	fmt.Printf("per-atom positional variance (Å²): min %.3g  median %.3g  max %.3g\n",
		vars[0], vars[len(vars)/2], vars[len(vars)-1])
	rms := 0.0
	for _, v := range sol.Variances {
		rms += v
	}
	fmt.Printf("mean positional σ: %.3f Å\n", math.Sqrt(rms/float64(len(vars))))

	if *verbose {
		fmt.Println("time distribution:", rec.Times().Format())
		printDiagnostics(sol.Diagnostics)
		fmt.Print(sol.UncertaintyReport(3))
		fmt.Println("residuals by constraint type:")
		fmt.Print(analysis.FormatResiduals(analysis.ResidualByType(sol.Positions, p.Constraints)))
	}

	if *pdbOut != "" {
		f, err := os.Create(*pdbOut)
		if err != nil {
			fatal(err)
		}
		sigma := make([]float64, len(sol.Variances))
		for i, v := range sol.Variances {
			sigma[i] = math.Sqrt(v)
		}
		err = pdb.Write(f, p.Name, p.Atoms, sol.Positions, sigma)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *pdbOut)
	}

	if *saveOut != "" {
		if err := writePosterior(*saveOut, p, sol); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *saveOut)
	}
}

// writePosterior saves the solution's posterior (with the full covariance)
// in the same wire form the daemon serves, for a later -resume.
func writePosterior(path string, p *molecule.Problem, sol *core.Solution) error {
	post := sol.Posterior()
	doc := encode.NewPosteriorDoc(post.Positions, post.CoordVariances, post.Cov)
	doc.Problem = p.Name
	doc.TopologyHash = encode.TopologyHash(p)
	doc.StructureHash = encode.StructureHash(p)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readPosterior loads a saved posterior and checks it belongs to the same
// molecule as the problem being solved: the structure hash must match when
// the document carries one (constraints may differ freely).
func readPosterior(path string, p *molecule.Problem) (*core.Posterior, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc encode.PosteriorDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.StructureHash != "" && doc.StructureHash != encode.StructureHash(p) {
		return nil, fmt.Errorf("%s was solved for a different molecule than %s (structure hash mismatch)", path, p.Name)
	}
	pos, coordVar, cov, err := doc.Decode()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &core.Posterior{Positions: pos, CoordVariances: coordVar, Cov: cov}, nil
}

// printDiagnostics summarizes the solve's fault-containment activity: how
// hard the numerical guards had to work to deliver the estimate.
func printDiagnostics(d *filter.DiagSnapshot) {
	if d == nil {
		return
	}
	fmt.Printf("containment: %d ridge retries, %d rollbacks, %d quarantined batches, %d cycles traced\n",
		d.RidgeRetries, d.Rollbacks, len(d.Quarantined), len(d.RMSTrajectory))
	for _, q := range d.Quarantined {
		where := fmt.Sprintf("batch %d", q.Batch)
		if q.Node != "" {
			where = fmt.Sprintf("node %q %s", q.Node, where)
		}
		fmt.Printf("  quarantined %s: %s, cycles %d..%d (%d total)\n",
			where, q.Reason, q.FirstCycle, q.LastCycle, q.Cycles)
	}
}

// solveExitCode maps a solve failure onto the documented exit codes.
func solveExitCode(err error) int {
	switch {
	case errors.Is(err, solvererr.ErrDiverged):
		return exitDiverged
	case errors.Is(err, solvererr.ErrIndefinite):
		return exitIndefinite
	case errors.Is(err, solvererr.ErrNonFinite):
		return exitNonFinite
	case errors.Is(err, solvererr.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return exitCanceled
	default:
		return exitGeneric
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msesolve:", err)
	os.Exit(exitGeneric)
}

// fatalInput reports an unreadable or invalid input file.
func fatalInput(err error) {
	fmt.Fprintln(os.Stderr, "msesolve:", err)
	os.Exit(exitBadInput)
}

func usageError(msg string) {
	fmt.Fprintln(os.Stderr, "msesolve:", msg)
	flag.Usage()
	os.Exit(exitUsage)
}
