module phmse

go 1.22
