// Benchmark harness regenerating the shape of every table and figure in the
// paper's evaluation. Real-kernel benchmarks (Tables 1–2) run scaled-down
// workloads so the suite stays fast; the processor-sweep benchmarks
// (Tables 3–6, Figures 7–10) execute the full-size schedules on the
// calibrated virtual-time machine models and report model seconds and
// speedups as custom metrics. cmd/paperbench prints the full tables with
// the paper's values alongside.
package phmse_test

import (
	"fmt"
	"testing"

	"phmse"
)

// ---------------------------------------------------------------- Table 1

// BenchmarkTable1 measures one real constraint cycle for the flat and
// hierarchical organizations across helix lengths (Table 1 / Figure 5).
// The hierarchical advantage (flat ns / hier ns) grows with size.
func BenchmarkTable1(b *testing.B) {
	for _, bp := range []int{1, 2, 4} {
		problem := phmse.Helix(bp)
		init := problem.TruePositions()
		perCons := float64(problem.ScalarDim())
		for _, mode := range []phmse.Mode{phmse.Flat, phmse.Hierarchical} {
			b.Run(fmt.Sprintf("%dbp/%v", bp, mode), func(b *testing.B) {
				est, err := phmse.NewEstimator(problem, phmse.Config{Mode: mode, MaxCycles: 1})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := est.Solve(init); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/perCons, "ns/constraint")
			})
		}
	}
}

// ---------------------------------------------------------------- Table 2

// BenchmarkTable2 measures the per-scalar-constraint cost as a function of
// node size and batch dimension (Table 2 / Figure 6). The figure's shape:
// cost rises for tiny batches (no tiling) and for very large batches (the
// O(m³) and O(m²n) terms), with a flat minimum at moderate m.
func BenchmarkTable2(b *testing.B) {
	for _, atoms := range []int{43, 86, 170} {
		for _, batch := range []int{1, 4, 16, 64, 256} {
			b.Run(fmt.Sprintf("atoms=%d/m=%d", atoms, batch), func(b *testing.B) {
				b.ResetTimer()
				var perScalar float64
				for i := 0; i < b.N; i++ {
					cells := phmse.MeasureTable2([]int{atoms}, []int{batch}, 0.25)
					perScalar = cells[0].PerScalar
				}
				b.ReportMetric(perScalar*1e9, "ns/constraint")
			})
		}
	}
}

// ------------------------------------------------------- Tables 3 through 6

// benchSweep runs the full-size virtual-time processor sweep for one
// problem × machine pair and reports the modeled wall time and speedup.
func benchSweep(b *testing.B, problem *phmse.Problem, mach *phmse.Machine, nps []int) {
	est, err := phmse.NewEstimator(problem, phmse.Config{Mode: phmse.Hierarchical})
	if err != nil {
		b.Fatal(err)
	}
	base := phmse.Simulate(est, mach, 1).Wall
	for _, np := range nps {
		b.Run(fmt.Sprintf("NP=%d", np), func(b *testing.B) {
			var r phmse.SimResult
			for i := 0; i < b.N; i++ {
				r = phmse.Simulate(est, mach, np)
			}
			b.ReportMetric(r.Wall, "model-s")
			b.ReportMetric(base/r.Wall, "speedup")
		})
	}
}

var dashNPs = []int{1, 2, 4, 6, 8, 12, 16, 24, 32}
var challengeNPs = []int{1, 2, 4, 6, 8, 12, 16}

// BenchmarkTable3 reproduces Helix-16bp on the DASH model (Table 3 /
// Figure 7). Expect ≈ 24–27× speedup at NP=32 with dips at NP=6 and 12.
func BenchmarkTable3(b *testing.B) {
	benchSweep(b, phmse.Helix(16), phmse.DASH(), dashNPs)
}

// BenchmarkTable4 reproduces ribo30S on the DASH model (Table 4 / Figure
// 8). The high-branching tree shows no power-of-two dips.
func BenchmarkTable4(b *testing.B) {
	benchSweep(b, phmse.Ribo30S(1996), phmse.DASH(), dashNPs)
}

// BenchmarkTable5 reproduces Helix-16bp on the Challenge model (Table 5 /
// Figure 9). Expect ≈ 14–15× speedup at NP=16.
func BenchmarkTable5(b *testing.B) {
	benchSweep(b, phmse.Helix(16), phmse.Challenge(), challengeNPs)
}

// BenchmarkTable6 reproduces ribo30S on the Challenge model (Table 6 /
// Figure 10).
func BenchmarkTable6(b *testing.B) {
	benchSweep(b, phmse.Ribo30S(1996), phmse.Challenge(), challengeNPs)
}

// ------------------------------------------------------------ §4.1 analysis

// BenchmarkCombination measures the Figure 3 combination procedure against
// sequential constraint application on the same node — the overhead that
// rules out coarse-grained constraint-partition parallelism (§4.1).
func BenchmarkCombination(b *testing.B) {
	problem := phmse.WithAnchors(phmse.Helix(1), 2, 0.1)
	init := problem.TruePositions()

	b.Run("apply-all", func(b *testing.B) {
		est, err := phmse.NewEstimator(problem, phmse.Config{Mode: phmse.Flat, MaxCycles: 1})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := est.Solve(init); err != nil {
				b.Fatal(err)
			}
		}
	})
	// The combination itself is exercised through the filter package in
	// cmd/paperbench (combine experiment); here we benchmark the closest
	// public-API equivalent: solving the two halves independently.
	half := len(problem.Constraints) / 2
	for name, cons := range map[string][]phmse.Constraint{
		"half-a": problem.Constraints[:half],
		"half-b": problem.Constraints[half:],
	} {
		sub := &phmse.Problem{Name: name, Atoms: problem.Atoms, Constraints: cons, Tree: problem.Tree}
		b.Run(name, func(b *testing.B) {
			est, err := phmse.NewEstimator(sub, phmse.Config{Mode: phmse.Flat, MaxCycles: 1})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.Solve(init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ------------------------------------------------------------------ Ablations

// BenchmarkAblationBatchSize isolates the batch-dimension design choice on
// a fixed node (DESIGN.md: why the default is 16).
func BenchmarkAblationBatchSize(b *testing.B) {
	problem := phmse.Helix(2)
	init := problem.TruePositions()
	for _, batch := range []int{1, 8, 16, 64, 512} {
		b.Run(fmt.Sprintf("m=%d", batch), func(b *testing.B) {
			est, err := phmse.NewEstimator(problem, phmse.Config{
				Mode: phmse.Flat, MaxCycles: 1, BatchSize: batch,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.Solve(init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDecomposition compares the domain-knowledge hierarchy
// against automatic graph partitioning and blind bisection (§5).
func BenchmarkAblationDecomposition(b *testing.B) {
	base := phmse.Helix(2)
	trees := map[string]*phmse.Group{
		"domain-knowledge": base.Tree,
		"graph-partition":  phmse.GraphPartition(len(base.Atoms), base.Constraints, 21),
		"index-bisection":  phmse.RecursiveBisection(len(base.Atoms), 21),
	}
	init := base.TruePositions()
	for name, tree := range trees {
		problem := &phmse.Problem{Name: name, Atoms: base.Atoms, Constraints: base.Constraints, Tree: tree}
		b.Run(name, func(b *testing.B) {
			est, err := phmse.NewEstimator(problem, phmse.Config{Mode: phmse.Hierarchical, MaxCycles: 1})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.Solve(init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIntraNodeParallel measures the real goroutine-parallel
// kernels against the sequential path on this host (correctness of the
// parallel plumbing; on a single-CPU host no wall-clock speedup is
// expected — see the virtual-time benches for modeled scaling).
func BenchmarkAblationIntraNodeParallel(b *testing.B) {
	problem := phmse.Helix(2)
	init := problem.TruePositions()
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			est, err := phmse.NewEstimator(problem, phmse.Config{
				Mode: phmse.Hierarchical, MaxCycles: 1, Procs: procs,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.Solve(init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationScheduling compares the paper's static processor
// assignment against the §5 dynamic re-grouping extension on the
// virtual-time DASH model, at the non-power-of-two processor count where
// static scheduling dips.
func BenchmarkAblationScheduling(b *testing.B) {
	problem := phmse.Helix(16)
	est, err := phmse.NewEstimator(problem, phmse.Config{Mode: phmse.Hierarchical})
	if err != nil {
		b.Fatal(err)
	}
	dash := phmse.DASH()
	base := phmse.Simulate(est, dash, 1).Wall
	for _, np := range []int{6, 8, 12} {
		b.Run(fmt.Sprintf("static/NP=%d", np), func(b *testing.B) {
			var r phmse.SimResult
			for i := 0; i < b.N; i++ {
				r = phmse.Simulate(est, dash, np)
			}
			b.ReportMetric(base/r.Wall/float64(np), "efficiency")
		})
		b.Run(fmt.Sprintf("dynamic/NP=%d", np), func(b *testing.B) {
			var r phmse.SimResult
			for i := 0; i < b.N; i++ {
				r = phmse.SimulateDynamic(est, dash, np)
			}
			b.ReportMetric(base/r.Wall/float64(np), "efficiency")
		})
	}
}

// BenchmarkBaselines times the three method families of the related-work
// comparison on the same helix problem (§6; examples/compare prints the
// accuracy side).
func BenchmarkBaselines(b *testing.B) {
	problem := phmse.WithAnchors(phmse.Helix(1), 3, 0.05)
	b.Run("distance-geometry", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := phmse.DistanceGeometry(problem, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("energy-minimization", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pos := phmse.Perturbed(problem, 0.4, int64(i))
			phmse.EnergyMinimize(problem, pos, 200)
		}
	})
	b.Run("probabilistic", func(b *testing.B) {
		est, err := phmse.NewEstimator(problem, phmse.Config{Mode: phmse.Hierarchical, MaxCycles: 20})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, err := est.Solve(phmse.Perturbed(problem, 0.4, int64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationJoseph compares the paper's simple covariance update
// against the numerically robust Joseph form (~3× the m-m work).
func BenchmarkAblationJoseph(b *testing.B) {
	problem := phmse.Helix(2)
	init := problem.TruePositions()
	for name, joseph := range map[string]bool{"simple": false, "joseph": true} {
		b.Run(name, func(b *testing.B) {
			est, err := phmse.NewEstimator(problem, phmse.Config{
				Mode: phmse.Flat, MaxCycles: 1, Joseph: joseph,
			})
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := est.Solve(init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
