// Ribosome: solve a scaled-down synthetic 30S ribosomal subunit the way
// the paper does. The experiment demonstrates why the paper runs a
// discrete conformational-space search before the analytical estimator:
// from a random start the estimator lands in a distant local optimum, while
// from a topologically correct low-resolution model it converges — and then
// the covariance output shows which parts of the assembly the data pins
// down.
package main

import (
	"fmt"
	"log"
	"math"

	"phmse"
)

func main() {
	// A quarter-scale ribosome so the example runs in seconds; drop the
	// sizing overrides for the full ~900-atom problem.
	problem := phmse.Ribo30SWith(phmse.Ribo30SConfig{
		Helices:  16,
		Coils:    16,
		Proteins: 8,
		Seed:     1996,
	})
	fmt.Println(problem)

	// Run 1: cold start from the lattice conformational search. The search
	// satisfies local geometry but rarely recovers the global fold, so the
	// refinement stalls in a locally optimal arrangement — the failure mode
	// the paper's preprocessing exists to mitigate.
	cold := phmse.ConformSearch(len(problem.Atoms), problem.Constraints, 3)
	coldSol := refine(problem, cold)
	fmt.Printf("\ncold start (lattice search, %.1f Å RMSD):\n", rmsd(problem, cold))
	report(problem, coldSol)

	// Run 2: from a low-resolution model with the right topology (a 2.5 Å
	// perturbation of the reference stands in for the discrete search of
	// the paper's reference [3], which used problem-specific move sets).
	warm := phmse.Perturbed(problem, 2.5, 11)
	warmSol := refine(problem, warm)
	fmt.Printf("\nwarm start (low-resolution model, %.1f Å RMSD):\n", rmsd(problem, warm))
	report(problem, warmSol)

	// The uncertainty output is the point of the probabilistic method:
	// protein atoms carry direct position data and end up far more tightly
	// determined than rRNA atoms inferred through chains of distances.
	var protVar, rnaVar []float64
	for i, a := range problem.Atoms {
		if a.Residue < 0 { // proteins are tagged with negative residues
			protVar = append(protVar, warmSol.Variances[i])
		} else {
			rnaVar = append(rnaVar, warmSol.Variances[i])
		}
	}
	fmt.Printf("\nmean positional σ: proteins %.2f Å (%d atoms), rRNA %.2f Å (%d atoms)\n",
		math.Sqrt(mean(protVar)), len(protVar), math.Sqrt(mean(rnaVar)), len(rnaVar))
	fmt.Println("note: the warm-start deviation from the reference is comparable to the")
	fmt.Println("estimate's own reported σ — the covariance honestly brackets the answer,")
	fmt.Println("which is what the probabilistic formulation buys over pure optimization.")
}

func refine(p *phmse.Problem, init []phmse.Vec3) *phmse.Solution {
	est, err := phmse.NewEstimator(p, phmse.Config{
		Mode:      phmse.Hierarchical,
		Procs:     4,
		Tol:       5e-3,
		MaxCycles: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	sol, err := est.Solve(init)
	if err != nil {
		log.Fatal(err)
	}
	return sol
}

func report(p *phmse.Problem, sol *phmse.Solution) {
	fmt.Printf("  %d cycles (converged=%v), residual %.3f, final RMSD %.2f Å\n",
		sol.Cycles, sol.Converged, sol.Residual, phmse.RMSD(sol.Positions, p.TruePositions()))
}

func rmsd(p *phmse.Problem, pos []phmse.Vec3) float64 {
	return phmse.RMSD(pos, p.TruePositions())
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
