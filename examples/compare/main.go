// Compare: a systematic comparison of the three structure-determination
// families the paper's related-work section discusses (in the spirit of its
// reference [15], Liu et al.): distance geometry, energy minimization, and
// the probabilistic estimator — on the same helix data, reporting speed,
// accuracy, and whether the method quantifies its own uncertainty.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"phmse"
)

func main() {
	problem := phmse.WithAnchors(phmse.Helix(2), 4, 0.05)
	truth := problem.TruePositions()
	fmt.Println(problem)
	fmt.Println()
	fmt.Println("method               |  time  | superposed RMSD | energy  | uncertainty")

	// 1. Distance geometry: embed from bounds alone (no initial estimate).
	start := time.Now()
	dgPos, err := phmse.DistanceGeometry(problem, 7)
	if err != nil {
		log.Fatal(err)
	}
	report("distance geometry", start, problem, dgPos, truth, "none")

	// 2. Energy minimization from a perturbed start.
	emPos := phmse.Perturbed(problem, 0.5, 3)
	start = time.Now()
	phmse.EnergyMinimize(problem, emPos, 800)
	report("energy minimization", start, problem, emPos, truth, "none")

	// 3. The probabilistic estimator (hierarchical), same start.
	init := phmse.Perturbed(problem, 0.5, 3)
	est, err := phmse.NewEstimator(problem, phmse.Config{Mode: phmse.Hierarchical, Tol: 1e-4})
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	sol, err := est.Solve(init)
	if err != nil {
		log.Fatal(err)
	}
	meanVar := 0.0
	for _, v := range sol.Variances {
		meanVar += v
	}
	meanVar /= float64(len(sol.Variances))
	report("probabilistic (this)", start, problem, sol.Positions, truth,
		fmt.Sprintf("σ ≈ %.2f Å/atom", math.Sqrt(meanVar)))

	// 4. Pipeline: distance geometry seeds the probabilistic estimator —
	// the hybrid the paper's preprocessing step approximates.
	start = time.Now()
	sol2, err := est.Solve(dgPos)
	if err != nil {
		log.Fatal(err)
	}
	report("DG → probabilistic", start, problem, sol2.Positions, truth, "yes (posterior)")
}

func report(name string, start time.Time, p *phmse.Problem, pos, truth []phmse.Vec3, unc string) {
	elapsed := time.Since(start)
	r, err := phmse.SuperposedRMSD(pos, truth)
	if err != nil {
		log.Fatal(err)
	}
	// Distance data cannot distinguish mirror images; report the better
	// enantiomer like distance-geometry practice does.
	mirror := make([]phmse.Vec3, len(pos))
	for i, q := range pos {
		mirror[i] = phmse.Vec3{q[0], q[1], -q[2]}
	}
	if r2, err := phmse.SuperposedRMSD(mirror, truth); err == nil && r2 < r {
		r = r2
	}
	fmt.Printf("%-20s | %5dms | %12.2f Å  | %7.1f | %s\n",
		name, elapsed.Milliseconds(), r, phmse.ConstraintEnergy(p, pos), unc)
}
