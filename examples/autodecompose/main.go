// Autodecompose: the paper's §5 extension — derive the structure hierarchy
// automatically from a flat problem specification by partitioning the
// constraint graph, and compare it against blind recursive bisection.
package main

import (
	"fmt"
	"log"

	"phmse"
)

func main() {
	// A flat problem with no user-supplied hierarchy: a protein-like chain
	// of residues whose atom numbering deliberately interleaves two
	// domains, so index-based bisection cuts through everything.
	problem := buildInterleavedChain(120)
	fmt.Printf("%s (no hierarchy given)\n", problem)

	naive := phmse.RecursiveBisection(len(problem.Atoms), 12)
	smart := phmse.GraphPartition(len(problem.Atoms), problem.Constraints, 12)
	fmt.Printf("recursive bisection: depth %d, %d leaves\n", naive.Depth(), len(naive.Leaves()))
	fmt.Printf("graph partitioning:  depth %d, %d leaves\n", smart.Depth(), len(smart.Leaves()))

	// Solve with each decomposition; the graph-partitioned tree pushes
	// constraints toward the leaves and runs a full cycle faster.
	for name, tree := range map[string]*phmse.Group{"bisection": naive, "graph": smart} {
		p := &phmse.Problem{
			Name:        problem.Name,
			Atoms:       problem.Atoms,
			Constraints: problem.Constraints,
			Tree:        tree,
		}
		est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Hierarchical, Tol: 1e-4})
		if err != nil {
			log.Fatal(err)
		}
		sol, err := est.Solve(phmse.Perturbed(p, 0.3, 5))
		if err != nil {
			log.Fatal(err)
		}
		atRoot := 0
		for _, c := range est.Root().Cons {
			atRoot += c.Dim()
		}
		fmt.Printf("%-10s: %4d of %d scalar constraints stuck at the root; %d cycles, residual %.3f\n",
			name, atRoot, p.ScalarDim(), sol.Cycles, sol.Residual)
	}
}

// buildInterleavedChain makes a single folded chain whose atom numbering
// has been scrambled by a fixed pseudo-random permutation — the situation
// where blind index bisection destroys locality but the constraint graph
// still encodes it.
func buildInterleavedChain(n int) *phmse.Problem {
	// idOf[c] is the atom index assigned to chain position c.
	idOf := make([]int, n)
	for c := range idOf {
		idOf[c] = c
	}
	rng := uint64(0x9e3779b97f4a7c15)
	for c := n - 1; c > 0; c-- {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		j := int(rng % uint64(c+1))
		idOf[c], idOf[j] = idOf[j], idOf[c]
	}

	p := &phmse.Problem{Name: fmt.Sprintf("scrambled-chain-%d", n)}
	p.Atoms = make([]phmse.Atom, n)
	pos := make([]phmse.Vec3, n) // indexed by atom id
	for c := 0; c < n; c++ {
		id := idOf[c]
		pos[id] = phmse.Vec3{float64(c) * 2.5, 7 * float64(c%4), 0.4 * float64(c%5)}
		p.Atoms[id] = phmse.Atom{Residue: c, Pos: pos[id]}
	}
	dist := func(i, j int) float64 { return pos[i].Sub(pos[j]).Norm() }
	for c := 0; c+1 < n; c++ {
		i, j := idOf[c], idOf[c+1]
		p.Constraints = append(p.Constraints,
			phmse.Distance{I: i, J: j, Target: dist(i, j), Sigma: 0.05})
		if c+2 < n {
			k := idOf[c+2]
			p.Constraints = append(p.Constraints,
				phmse.Distance{I: i, J: k, Target: dist(i, k), Sigma: 0.1})
		}
	}
	p.Constraints = append(p.Constraints,
		phmse.Position{I: idOf[0], Target: pos[idOf[0]], Sigma: 0.02},
		phmse.Position{I: idOf[1], Target: pos[idOf[1]], Sigma: 0.02},
		phmse.Position{I: idOf[n-1], Target: pos[idOf[n-1]], Sigma: 0.02},
	)
	return p
}
