// Machines: reproduce the paper's processor-sweep methodology on the
// calibrated virtual-time models of the Stanford DASH and SGI Challenge —
// including the helix's power-of-two speedup dips and the ribosome's
// smooth curve.
package main

import (
	"fmt"
	"log"

	"phmse"
)

func main() {
	helix := phmse.Helix(16)
	ribo := phmse.Ribo30S(1996)

	for _, mach := range []*phmse.Machine{phmse.DASH(), phmse.Challenge()} {
		fmt.Printf("\n=== %s (%d processors) ===\n", mach.Name, mach.MaxProcs)
		for _, p := range []*phmse.Problem{helix, ribo} {
			est, err := phmse.NewEstimator(p, phmse.Config{Mode: phmse.Hierarchical})
			if err != nil {
				log.Fatal(err)
			}
			base := phmse.Simulate(est, mach, 1).Wall
			fmt.Printf("%-12s one cycle on 1 proc: %7.1f model-seconds\n", p.Name, base)
			fmt.Printf("  NP:      ")
			nps := []int{2, 4, 6, 8, 12, 16, 24, 32}
			for _, np := range nps {
				if np <= mach.MaxProcs {
					fmt.Printf("%6d", np)
				}
			}
			fmt.Printf("\n  speedup: ")
			for _, np := range nps {
				if np <= mach.MaxProcs {
					r := phmse.Simulate(est, mach, np)
					fmt.Printf("%6.2f", base/r.Wall)
				}
			}
			fmt.Println()
		}
	}
	fmt.Println("\nNote the helix dips at NP=6 and 12 (binary tree, uneven processor")
	fmt.Println("splits) that the high-branching ribosome decomposition avoids.")
}
