// Helix: the paper's §3.1 experiment in miniature — compare the flat and
// hierarchical organizations on RNA double helices of growing length and
// watch the hierarchical advantage grow with molecule size.
package main

import (
	"fmt"
	"log"
	"time"

	"phmse"
)

func main() {
	fmt.Println("flat vs hierarchical organization, one constraint cycle each")
	fmt.Println(" bp  atoms  scalar |   flat(ms) |   hier(ms) | speedup")
	for _, bp := range []int{1, 2, 4} {
		problem := phmse.Helix(bp)
		init := problem.TruePositions()

		flat := timeOneCycle(problem, init, phmse.Flat)
		hier := timeOneCycle(problem, init, phmse.Hierarchical)
		fmt.Printf(" %2d  %5d  %6d | %10.1f | %10.1f | %6.2f\n",
			bp, len(problem.Atoms), problem.ScalarDim(),
			flat*1e3, hier*1e3, flat/hier)
	}

	// Within one cycle the two organizations perform the same computation,
	// but across cycles they differ in constraint ordering (locality order
	// vs. specification order), which changes the basin of attraction from
	// distorted starts — the effect the paper's §5 asks about. On this seed
	// the locality ordering converges where the flat ordering stalls;
	// `paperbench convergence` runs the multi-seed version of this study.
	problem := phmse.WithAnchors(phmse.Helix(2), 4, 0.05)
	init := phmse.Perturbed(problem, 0.5, 7)
	fmt.Println("\nconvergence from a 0.5 Å-perturbed start (§5 ordering effect):")
	for _, mode := range []phmse.Mode{phmse.Flat, phmse.Hierarchical} {
		est, err := phmse.NewEstimator(problem, phmse.Config{Mode: mode, Tol: 1e-4})
		if err != nil {
			log.Fatal(err)
		}
		sol, err := est.Solve(init)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12v: %d cycles, residual %.3f, RMSD to truth %.3f Å\n",
			mode, sol.Cycles, sol.Residual, phmse.RMSD(sol.Positions, problem.TruePositions()))
	}
}

func timeOneCycle(p *phmse.Problem, init []phmse.Vec3, mode phmse.Mode) float64 {
	est, err := phmse.NewEstimator(p, phmse.Config{Mode: mode, MaxCycles: 1})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if _, err := est.Solve(init); err != nil {
		log.Fatal(err)
	}
	return time.Since(start).Seconds()
}
