// Quickstart: estimate the structure of a small RNA helix from distance
// data and inspect the result's uncertainty.
package main

import (
	"fmt"
	"log"

	"phmse"
)

func main() {
	// A 2-base-pair RNA helix: 86 pseudo-atoms, ~1500 distance constraints
	// in the paper's five categories. Anchoring four atoms pins the global
	// rigid-body freedom that distance-only data leaves undetermined.
	problem := phmse.WithAnchors(phmse.Helix(2), 4, 0.05)
	fmt.Println(problem)

	est, err := phmse.NewEstimator(problem, phmse.Config{
		Mode:  phmse.Hierarchical,
		Procs: 4,
		Tol:   1e-4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Start from a heavily distorted structure (1 Å RMS noise per
	// coordinate) and iterate constraint-application cycles to convergence.
	initial := phmse.Perturbed(problem, 1.0, 42)
	fmt.Printf("starting estimate: %.2f Å RMSD from the true structure\n",
		phmse.RMSD(initial, problem.TruePositions()))

	sol, err := est.Solve(initial)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged=%v after %d cycles; weighted residual %.3f\n",
		sol.Converged, sol.Cycles, sol.Residual)
	fmt.Printf("final estimate: %.3f Å RMSD from the true structure\n",
		phmse.RMSD(sol.Positions, problem.TruePositions()))

	// The covariance diagonal tells which atoms the data defines well.
	lo, hi := 0, 0
	for i, v := range sol.Variances {
		if v < sol.Variances[lo] {
			lo = i
		}
		if v > sol.Variances[hi] {
			hi = i
		}
	}
	fmt.Printf("best-determined atom %d (σ² %.4f Å²), worst %d (σ² %.4f Å²)\n",
		lo, sol.Variances[lo], hi, sol.Variances[hi])
}
