// Protein: estimate an α-helix-bundle protein from a mixed constraint set
// — covalent distances, bond angles, backbone φ/ψ torsions, hydrogen
// bonds, and tertiary contacts — then write the result as a PDB file with
// the per-atom uncertainty in the B-factor column.
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"phmse"
)

func main() {
	problem := phmse.WithAnchors(phmse.Protein(36, 7), 4, 0.05)
	fmt.Println(problem)

	// Angular observations (torsions, angles) are strongly nonlinear, so
	// the solve uses a modest prior variance and a per-batch trust radius —
	// the damping that keeps the iterated filter inside its linearization
	// range.
	est, err := phmse.NewEstimator(problem, phmse.Config{
		Mode:      phmse.Hierarchical,
		Procs:     4,
		Tol:       2e-4,
		MaxCycles: 200,
		InitVar:   0.25,
		MaxStep:   0.5,
	})
	if err != nil {
		log.Fatal(err)
	}

	init := phmse.Perturbed(problem, 0.6, 3)
	sol, err := est.Solve(init)
	if err != nil {
		log.Fatal(err)
	}
	rmsd, err := phmse.SuperposedRMSD(sol.Positions, problem.TruePositions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cycles (converged=%v): residual %.3f, superposed RMSD %.3f Å\n",
		sol.Cycles, sol.Converged, sol.Residual, rmsd)

	// Backbone atoms carry more data (angles, torsions, H-bonds) than
	// sidechain tips and should be better determined.
	var bb, sc []float64
	for i, a := range problem.Atoms {
		if a.Name == "N" || a.Name == "CA" || a.Name == "C" || a.Name == "O" {
			bb = append(bb, sol.Variances[i])
		} else {
			sc = append(sc, sol.Variances[i])
		}
	}
	fmt.Printf("mean σ: backbone %.3f Å (%d atoms), sidechain %.3f Å (%d atoms)\n",
		math.Sqrt(mean(bb)), len(bb), math.Sqrt(mean(sc)), len(sc))

	out, err := os.Create("protein_estimate.pdb")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := phmse.WritePDB(out, problem, sol); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote protein_estimate.pdb (B-factor column = positional σ)")
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
