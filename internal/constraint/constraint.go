// Package constraint defines the measurement models that relate observed
// data to the unknown atomic coordinates: interatomic distances (the
// prevalent data type in the paper), bond angles, torsion angles, absolute
// position anchors, and one-sided distance bounds (the non-Gaussian
// extension of reference [2] of the paper).
//
// Every constraint exposes its observation z, its noise variance, and an
// Eval method producing the predicted measurement h(x) and the analytic
// Jacobian ∂h/∂(atom coordinates) at the current estimate. The filter
// package assembles batches of constraints into sparse Jacobians over a
// node's local state vector.
package constraint

import (
	"fmt"
	"math"

	"phmse/internal/geom"
)

// Constraint is a (possibly vector-valued) observation of the structure.
type Constraint interface {
	// Atoms returns the distinct global atom indices the measurement
	// depends on, in the order expected by Eval.
	Atoms() []int
	// Dim returns the number of scalar observations.
	Dim() int
	// Observed fills z with the measured values and sigma2 with the
	// per-component noise variances. Both slices have length Dim.
	Observed(z, sigma2 []float64)
	// Eval computes the predicted measurement h and the Jacobian given the
	// current positions of Atoms() (same order). jac has Dim rows of
	// 3·len(Atoms()) columns, laid out (x₀,y₀,z₀, x₁,y₁,z₁, …).
	Eval(pos []geom.Vec3, h []float64, jac [][]float64)
}

// Gated is implemented by constraints that are only active in part of the
// configuration space, such as one-sided distance bounds. Inactive
// constraints are skipped for the current linearization point.
type Gated interface {
	Constraint
	Active(pos []geom.Vec3) bool
}

// Periodic is implemented by constraints whose scalar observations live on
// a circle of circumference 2π (torsion angles). The filter wraps their
// innovations z − h(x) into (−π, π], preventing a spurious 2π jump when
// the observed and predicted angles straddle the branch cut.
type Periodic interface {
	Constraint
	// PeriodicRows reports, per scalar row, whether the observation is
	// 2π-periodic.
	PeriodicRows() []bool
}

// Distance is an observed Euclidean distance between two atoms, the most
// prevalent form of data for molecular structures (NMR NOE distances,
// covalent bond lengths from general chemistry, and so on).
type Distance struct {
	I, J   int     // global atom indices
	Target float64 // observed distance
	Sigma  float64 // measurement standard deviation
}

// Atoms implements Constraint.
func (d Distance) Atoms() []int { return []int{d.I, d.J} }

// Dim implements Constraint.
func (d Distance) Dim() int { return 1 }

// Observed implements Constraint.
func (d Distance) Observed(z, sigma2 []float64) {
	z[0] = d.Target
	sigma2[0] = d.Sigma * d.Sigma
}

// Eval implements Constraint. The gradient of |rᵢ−rⱼ| is ±(rᵢ−rⱼ)/|rᵢ−rⱼ|;
// coincident atoms get a zero Jacobian row (the constraint provides no
// direction until the estimate separates them).
func (d Distance) Eval(pos []geom.Vec3, h []float64, jac [][]float64) {
	diff := pos[0].Sub(pos[1])
	r := diff.Norm()
	h[0] = r
	row := jac[0]
	if r == 0 {
		for k := range row {
			row[k] = 0
		}
		return
	}
	inv := 1 / r
	for c := 0; c < 3; c++ {
		g := diff[c] * inv
		row[c] = g
		row[3+c] = -g
	}
}

func (d Distance) String() string {
	return fmt.Sprintf("dist(%d,%d)=%.3g±%.2g", d.I, d.J, d.Target, d.Sigma)
}

// Angle is an observed bond angle (radians) at vertex J of the path I–J–K.
type Angle struct {
	I, J, K int
	Target  float64 // radians
	Sigma   float64 // radians
}

// Atoms implements Constraint.
func (a Angle) Atoms() []int { return []int{a.I, a.J, a.K} }

// Dim implements Constraint.
func (a Angle) Dim() int { return 1 }

// Observed implements Constraint.
func (a Angle) Observed(z, sigma2 []float64) {
	z[0] = a.Target
	sigma2[0] = a.Sigma * a.Sigma
}

// Eval implements Constraint using the analytic angle gradient
// ∂θ/∂rᵢ = (cosθ·û − v̂)/(|u| sinθ) with u = rᵢ−rⱼ, v = r_k−rⱼ.
func (a Angle) Eval(pos []geom.Vec3, h []float64, jac [][]float64) {
	u := pos[0].Sub(pos[1])
	v := pos[2].Sub(pos[1])
	nu, nv := u.Norm(), v.Norm()
	row := jac[0]
	if nu == 0 || nv == 0 {
		h[0] = 0
		for k := range row {
			row[k] = 0
		}
		return
	}
	uh, vh := u.Scale(1/nu), v.Scale(1/nv)
	cos := uh.Dot(vh)
	sin := uh.Cross(vh).Norm()
	h[0] = math.Atan2(sin, cos)
	if sin < 1e-12 {
		// Degenerate (collinear) configuration: no well-defined gradient.
		for k := range row {
			row[k] = 0
		}
		return
	}
	gi := uh.Scale(cos).Sub(vh).Scale(1 / (nu * sin))
	gk := vh.Scale(cos).Sub(uh).Scale(1 / (nv * sin))
	gj := gi.Add(gk).Scale(-1)
	for c := 0; c < 3; c++ {
		row[c] = gi[c]
		row[3+c] = gj[c]
		row[6+c] = gk[c]
	}
}

// Torsion is an observed dihedral angle (radians) of the chain I–J–K–L
// about the J–K axis.
type Torsion struct {
	I, J, K, L int
	Target     float64 // radians, in (−π, π]
	Sigma      float64
}

// Atoms implements Constraint.
func (t Torsion) Atoms() []int { return []int{t.I, t.J, t.K, t.L} }

// PeriodicRows implements Periodic: the dihedral lives on (−π, π].
func (t Torsion) PeriodicRows() []bool { return []bool{true} }

// Dim implements Constraint.
func (t Torsion) Dim() int { return 1 }

// Observed implements Constraint.
func (t Torsion) Observed(z, sigma2 []float64) {
	z[0] = t.Target
	sigma2[0] = t.Sigma * t.Sigma
}

// Eval implements Constraint with the analytic dihedral gradient: with
// b₁ = rⱼ−rᵢ, b₂ = r_k−rⱼ, b₃ = r_l−r_k and normals n₁ = b₁×b₂, n₂ = b₂×b₃,
//
//	∂φ/∂rᵢ = |b₂|/|n₁|²·n₁,  ∂φ/∂r_l = −|b₂|/|n₂|²·n₂,
//
// and the inner atoms take the translation-balancing combinations
// ∂φ/∂rⱼ = −(1+p)·∂φ/∂rᵢ + q·∂φ/∂r_l, ∂φ/∂r_k = p·∂φ/∂rᵢ − (1+q)·∂φ/∂r_l
// with p = b₁·b₂/|b₂|², q = b₃·b₂/|b₂|² (signs follow geom.Dihedral's
// atan2 convention; verified against central differences in the tests).
func (t Torsion) Eval(pos []geom.Vec3, h []float64, jac [][]float64) {
	b1 := pos[1].Sub(pos[0])
	b2 := pos[2].Sub(pos[1])
	b3 := pos[3].Sub(pos[2])
	n1 := b1.Cross(b2)
	n2 := b2.Cross(b3)
	nb2 := b2.Norm()
	row := jac[0]
	h[0] = geom.Dihedral(pos[0], pos[1], pos[2], pos[3])
	n1sq, n2sq := n1.Norm2(), n2.Norm2()
	if nb2 == 0 || n1sq < 1e-18 || n2sq < 1e-18 {
		for k := range row {
			row[k] = 0
		}
		return
	}
	// Sign follows the atan2 convention used by geom.Dihedral.
	gi := n1.Scale(nb2 / n1sq)
	gl := n2.Scale(-nb2 / n2sq)
	c12 := b1.Dot(b2) / (nb2 * nb2)
	c32 := b3.Dot(b2) / (nb2 * nb2)
	gj := gi.Scale(-(1 + c12)).Add(gl.Scale(c32))
	gk := gi.Scale(c12).Sub(gl.Scale(1 + c32))
	for c := 0; c < 3; c++ {
		row[c] = gi[c]
		row[3+c] = gj[c]
		row[6+c] = gk[c]
		row[9+c] = gl[c]
	}
}

// Position anchors an atom to an externally known location, such as the
// neutron-diffraction protein positions used as reference points in the 30S
// ribosome problem. It is a three-dimensional linear observation.
type Position struct {
	I      int
	Target geom.Vec3
	Sigma  float64 // isotropic standard deviation per coordinate
}

// Atoms implements Constraint.
func (p Position) Atoms() []int { return []int{p.I} }

// Dim implements Constraint.
func (p Position) Dim() int { return 3 }

// Observed implements Constraint.
func (p Position) Observed(z, sigma2 []float64) {
	for c := 0; c < 3; c++ {
		z[c] = p.Target[c]
		sigma2[c] = p.Sigma * p.Sigma
	}
}

// Eval implements Constraint; the model is linear with identity Jacobian.
func (p Position) Eval(pos []geom.Vec3, h []float64, jac [][]float64) {
	for c := 0; c < 3; c++ {
		h[c] = pos[0][c]
		row := jac[c]
		for k := range row {
			row[k] = 0
		}
		row[c] = 1
	}
}

// DistanceBound is a one-sided distance constraint, the simplest of the
// non-Gaussian observation types handled by the extension in reference [2]
// of the paper (e.g. NOE upper bounds, van der Waals lower bounds). While
// the current estimate satisfies the bound the constraint is inactive; when
// violated it acts as a Gaussian distance observation pulled to the nearest
// bound.
type DistanceBound struct {
	I, J  int
	Lower float64 // 0 means no lower bound
	Upper float64 // +Inf or 0 means no upper bound
	Sigma float64
}

// Atoms implements Constraint.
func (b DistanceBound) Atoms() []int { return []int{b.I, b.J} }

// Dim implements Constraint.
func (b DistanceBound) Dim() int { return 1 }

// Active implements Gated: the bound participates only when violated.
func (b DistanceBound) Active(pos []geom.Vec3) bool {
	r := geom.Dist(pos[0], pos[1])
	if b.Lower > 0 && r < b.Lower {
		return true
	}
	if b.Upper > 0 && !math.IsInf(b.Upper, 1) && r > b.Upper {
		return true
	}
	return false
}

// Observed implements Constraint. The observation target depends on which
// bound is violated, so Observed alone is not meaningful for inactive
// bounds; the filter only consults it when Active reports true, and the
// target is refreshed by Eval through the shared positions.
func (b DistanceBound) Observed(z, sigma2 []float64) {
	// Nearest bound as a nominal target; Eval supplies h(x), and the filter
	// pulls toward whichever bound Observed reports. Use the midpoint when
	// both bounds exist so either violation converges into the interval.
	switch {
	case b.Lower > 0 && (b.Upper == 0 || math.IsInf(b.Upper, 1)):
		z[0] = b.Lower
	case b.Lower == 0:
		z[0] = b.Upper
	default:
		z[0] = 0.5 * (b.Lower + b.Upper)
	}
	sigma2[0] = b.Sigma * b.Sigma
}

// Eval implements Constraint with the same geometry as Distance.
func (b DistanceBound) Eval(pos []geom.Vec3, h []float64, jac [][]float64) {
	Distance{I: b.I, J: b.J}.Eval(pos, h, jac)
}

// Span returns the atom-index extent of a constraint; it is used by the
// hierarchy to assign each constraint to the smallest node containing all
// its atoms.
func Span(c Constraint) (lo, hi int) {
	atoms := c.Atoms()
	lo, hi = atoms[0], atoms[0]
	for _, a := range atoms[1:] {
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	return lo, hi
}
