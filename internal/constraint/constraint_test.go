package constraint

import (
	"math"
	"math/rand"
	"testing"

	"phmse/internal/geom"
)

// numericJacobian computes the central-difference Jacobian of a constraint
// at the given positions, for verification of the analytic gradients.
func numericJacobian(c Constraint, pos []geom.Vec3) [][]float64 {
	const eps = 1e-6
	dim := c.Dim()
	n := len(pos)
	jac := make([][]float64, dim)
	for d := range jac {
		jac[d] = make([]float64, 3*n)
	}
	hPlus := make([]float64, dim)
	hMinus := make([]float64, dim)
	scratch := make([][]float64, dim)
	for d := range scratch {
		scratch[d] = make([]float64, 3*n)
	}
	for a := 0; a < n; a++ {
		for cc := 0; cc < 3; cc++ {
			p := make([]geom.Vec3, n)
			copy(p, pos)
			p[a][cc] += eps
			c.Eval(p, hPlus, scratch)
			p[a][cc] -= 2 * eps
			c.Eval(p, hMinus, scratch)
			for d := 0; d < dim; d++ {
				diff := hPlus[d] - hMinus[d]
				// Angles can wrap across ±π.
				if diff > math.Pi {
					diff -= 2 * math.Pi
				} else if diff < -math.Pi {
					diff += 2 * math.Pi
				}
				jac[d][3*a+cc] = diff / (2 * eps)
			}
		}
	}
	return jac
}

func checkJacobian(t *testing.T, c Constraint, pos []geom.Vec3, tol float64) {
	t.Helper()
	dim := c.Dim()
	h := make([]float64, dim)
	analytic := make([][]float64, dim)
	for d := range analytic {
		analytic[d] = make([]float64, 3*len(pos))
	}
	c.Eval(pos, h, analytic)
	numeric := numericJacobian(c, pos)
	for d := 0; d < dim; d++ {
		for k := range analytic[d] {
			if math.Abs(analytic[d][k]-numeric[d][k]) > tol {
				t.Fatalf("row %d col %d: analytic %g numeric %g",
					d, k, analytic[d][k], numeric[d][k])
			}
		}
	}
}

func randPos(rng *rand.Rand, n int) []geom.Vec3 {
	pos := make([]geom.Vec3, n)
	for i := range pos {
		pos[i] = geom.Vec3{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	return pos
}

func TestDistanceBasics(t *testing.T) {
	d := Distance{I: 4, J: 9, Target: 1.5, Sigma: 0.1}
	if got := d.Atoms(); got[0] != 4 || got[1] != 9 {
		t.Fatal("Atoms")
	}
	if d.Dim() != 1 {
		t.Fatal("Dim")
	}
	z := make([]float64, 1)
	s2 := make([]float64, 1)
	d.Observed(z, s2)
	if z[0] != 1.5 || math.Abs(s2[0]-0.01) > 1e-15 {
		t.Fatalf("Observed %v %v", z, s2)
	}
	if d.String() == "" {
		t.Fatal("String")
	}
}

func TestDistanceEvalValue(t *testing.T) {
	d := Distance{}
	h := make([]float64, 1)
	jac := [][]float64{make([]float64, 6)}
	d.Eval([]geom.Vec3{{0, 0, 0}, {3, 4, 0}}, h, jac)
	if h[0] != 5 {
		t.Fatalf("h = %g", h[0])
	}
	// Gradient points from j to i for atom i.
	if math.Abs(jac[0][0]-(-0.6)) > 1e-14 || math.Abs(jac[0][3]-0.6) > 1e-14 {
		t.Fatalf("jac = %v", jac[0])
	}
}

func TestDistanceCoincidentAtoms(t *testing.T) {
	d := Distance{}
	h := make([]float64, 1)
	jac := [][]float64{{1, 1, 1, 1, 1, 1}}
	d.Eval([]geom.Vec3{{1, 1, 1}, {1, 1, 1}}, h, jac)
	if h[0] != 0 {
		t.Fatal("h != 0 for coincident atoms")
	}
	for _, v := range jac[0] {
		if v != 0 {
			t.Fatal("non-zero gradient for coincident atoms")
		}
	}
}

func TestDistanceJacobianNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		pos := randPos(rng, 2)
		if geom.Dist(pos[0], pos[1]) < 0.2 {
			continue
		}
		checkJacobian(t, Distance{I: 0, J: 1, Target: 1, Sigma: 1}, pos, 1e-6)
	}
}

func TestAngleEvalValue(t *testing.T) {
	a := Angle{Target: math.Pi / 2, Sigma: 0.1}
	h := make([]float64, 1)
	jac := [][]float64{make([]float64, 9)}
	a.Eval([]geom.Vec3{{1, 0, 0}, {0, 0, 0}, {0, 1, 0}}, h, jac)
	if math.Abs(h[0]-math.Pi/2) > 1e-14 {
		t.Fatalf("angle = %g", h[0])
	}
}

func TestAngleJacobianNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		pos := randPos(rng, 3)
		// Skip nearly degenerate configurations.
		ang := geom.Angle(pos[0], pos[1], pos[2])
		if ang < 0.3 || ang > math.Pi-0.3 ||
			geom.Dist(pos[0], pos[1]) < 0.3 || geom.Dist(pos[2], pos[1]) < 0.3 {
			continue
		}
		checkJacobian(t, Angle{I: 0, J: 1, K: 2, Target: 1, Sigma: 1}, pos, 1e-5)
	}
}

func TestAngleDegenerateZeroGradient(t *testing.T) {
	a := Angle{}
	h := make([]float64, 1)
	jac := [][]float64{make([]float64, 9)}
	// Collinear points: gradient undefined, must be zeroed.
	a.Eval([]geom.Vec3{{1, 0, 0}, {0, 0, 0}, {2, 0, 0}}, h, jac)
	for _, v := range jac[0] {
		if v != 0 {
			t.Fatal("non-zero gradient at degenerate angle")
		}
	}
	// Coincident vertex.
	a.Eval([]geom.Vec3{{0, 0, 0}, {0, 0, 0}, {1, 0, 0}}, h, jac)
	if h[0] != 0 {
		t.Fatal("degenerate angle value")
	}
}

func TestTorsionEvalValue(t *testing.T) {
	tor := Torsion{}
	h := make([]float64, 1)
	jac := [][]float64{make([]float64, 12)}
	pos := []geom.Vec3{{0, 1, 0}, {0, 0, 0}, {1, 0, 0}, {1, 1, 0}}
	tor.Eval(pos, h, jac)
	if math.Abs(h[0]) > 1e-12 {
		t.Fatalf("cis torsion = %g", h[0])
	}
}

func TestTorsionJacobianNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	checked := 0
	for trial := 0; trial < 60 && checked < 25; trial++ {
		pos := randPos(rng, 4)
		b1 := pos[1].Sub(pos[0])
		b2 := pos[2].Sub(pos[1])
		b3 := pos[3].Sub(pos[2])
		if b1.Cross(b2).Norm() < 0.5 || b2.Cross(b3).Norm() < 0.5 || b2.Norm() < 0.5 {
			continue
		}
		phi := geom.Dihedral(pos[0], pos[1], pos[2], pos[3])
		if math.Abs(math.Abs(phi)-math.Pi) < 0.2 {
			continue // wrap-around makes finite differences unreliable
		}
		checkJacobian(t, Torsion{I: 0, J: 1, K: 2, L: 3, Target: 1, Sigma: 1}, pos, 1e-5)
		checked++
	}
	if checked < 10 {
		t.Fatalf("only %d non-degenerate configurations checked", checked)
	}
}

func TestTorsionDegenerate(t *testing.T) {
	tor := Torsion{}
	h := make([]float64, 1)
	jac := [][]float64{make([]float64, 12)}
	// Collinear chain: zero gradient.
	tor.Eval([]geom.Vec3{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}}, h, jac)
	for _, v := range jac[0] {
		if v != 0 {
			t.Fatal("non-zero gradient at degenerate torsion")
		}
	}
}

func TestPosition(t *testing.T) {
	p := Position{I: 7, Target: geom.Vec3{1, 2, 3}, Sigma: 0.5}
	if p.Dim() != 3 || p.Atoms()[0] != 7 {
		t.Fatal("shape")
	}
	z := make([]float64, 3)
	s2 := make([]float64, 3)
	p.Observed(z, s2)
	if z[2] != 3 || s2[0] != 0.25 {
		t.Fatalf("Observed %v %v", z, s2)
	}
	h := make([]float64, 3)
	jac := [][]float64{make([]float64, 3), make([]float64, 3), make([]float64, 3)}
	p.Eval([]geom.Vec3{{9, 8, 7}}, h, jac)
	if h[0] != 9 || h[1] != 8 || h[2] != 7 {
		t.Fatalf("h = %v", h)
	}
	for d := 0; d < 3; d++ {
		for k := 0; k < 3; k++ {
			want := 0.0
			if d == k {
				want = 1
			}
			if jac[d][k] != want {
				t.Fatalf("jac[%d][%d] = %g", d, k, jac[d][k])
			}
		}
	}
}

func TestDistanceBoundGating(t *testing.T) {
	b := DistanceBound{I: 0, J: 1, Lower: 2, Upper: 5, Sigma: 0.1}
	near := []geom.Vec3{{0, 0, 0}, {1, 0, 0}}   // r=1 < lower
	inside := []geom.Vec3{{0, 0, 0}, {3, 0, 0}} // 2 ≤ 3 ≤ 5
	far := []geom.Vec3{{0, 0, 0}, {7, 0, 0}}    // r=7 > upper
	if !b.Active(near) || b.Active(inside) || !b.Active(far) {
		t.Fatal("gating wrong")
	}
	// Upper-only bound.
	up := DistanceBound{Upper: 5, Sigma: 0.1}
	if up.Active(near) || !up.Active(far) {
		t.Fatal("upper-only gating wrong")
	}
	// Lower-only bound (Upper = 0 means absent).
	lo := DistanceBound{Lower: 2, Sigma: 0.1}
	if !lo.Active(near) || lo.Active(far) {
		t.Fatal("lower-only gating wrong")
	}
}

func TestDistanceBoundObserved(t *testing.T) {
	z := make([]float64, 1)
	s2 := make([]float64, 1)
	DistanceBound{Lower: 2, Sigma: 1}.Observed(z, s2)
	if z[0] != 2 {
		t.Fatalf("lower-only target %g", z[0])
	}
	DistanceBound{Upper: 5, Sigma: 1}.Observed(z, s2)
	if z[0] != 5 {
		t.Fatalf("upper-only target %g", z[0])
	}
	DistanceBound{Lower: 2, Upper: 6, Sigma: 1}.Observed(z, s2)
	if z[0] != 4 {
		t.Fatalf("two-sided target %g", z[0])
	}
	var _ Gated = DistanceBound{} // interface check
}

func TestSpan(t *testing.T) {
	lo, hi := Span(Torsion{I: 9, J: 2, K: 14, L: 7})
	if lo != 2 || hi != 14 {
		t.Fatalf("Span = %d..%d", lo, hi)
	}
	lo, hi = Span(Position{I: 3})
	if lo != 3 || hi != 3 {
		t.Fatalf("Span = %d..%d", lo, hi)
	}
}
