// Package client is the typed Go client of the phmsed v1 API. It wraps
// the HTTP endpoints in context-aware methods over the wire types of
// package encode and maps the structured error envelope onto *APIError
// values, so callers branch on error codes instead of parsing strings:
//
//	c := client.New("http://localhost:8080")
//	st, err := c.Submit(ctx, problem, encode.SolveParams{KeepPosterior: true})
//	if client.HasCode(err, encode.CodeQueueFull) { backoff() }
//	st, err = c.Wait(ctx, st.ID, 0, encode.JobDone, encode.JobFailed)
//	sol, err := c.Result(ctx, st.ID)
//	st2, err := c.WarmStart(ctx, refined, encode.SolveParams{}, st.ID)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"phmse/internal/encode"
	"phmse/internal/molecule"
)

// Client talks to one phmsed instance. The zero value is not usable;
// create with New. A Client is safe for concurrent use.
type Client struct {
	base   string
	hc     *http.Client
	retry  *RetryPolicy // nil: no transport-level retries
	bearer string       // "": no Authorization header
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithBearerToken attaches "Authorization: Bearer <token>" to every
// request — required by the router's /admin/v1 control plane and the
// daemons' mutating posterior-transfer endpoints when they run with
// -admin-token. An empty token leaves requests unauthenticated.
func WithBearerToken(token string) Option {
	return func(c *Client) { c.bearer = token }
}

// RetryPolicy shapes the transport-level retry of WithRetry: jittered
// exponential backoff, floored by any Retry-After the server sent.
type RetryPolicy struct {
	// MaxAttempts bounds the total tries of one request (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; attempt k waits
	// roughly BaseDelay·2ᵏ (default 50 ms).
	BaseDelay time.Duration
	// MaxDelay caps one backoff step before jitter (default 2 s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// Delay computes the backoff before retry number retryIdx (0-based): the
// capped exponential step, jittered over [d/2, 3d/2) so synchronized
// clients spread out, and floored by the server's Retry-After when the
// last rejection carried one. Exported so the routing tier can reuse the
// same backoff shape for forwarded requests.
func (p RetryPolicy) Delay(retryIdx int, last error) time.Duration {
	d := p.BaseDelay << retryIdx
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	var ae *APIError
	if errors.As(last, &ae) && ae.RetryAfter > d {
		d = ae.RetryAfter
	}
	return d
}

// WithRetry enables transport-level retries: backpressure rejections
// (queue_full, draining) are retried for every method — the server rejects
// them before any side effect — while transport errors and 5xx responses
// are retried only for idempotent GETs. Backoff follows the policy; the
// request's context bounds the whole retry loop.
func WithRetry(p RetryPolicy) Option {
	pol := p.withDefaults()
	return func(c *Client) { c.retry = &pol }
}

// New builds a client for the server at base (e.g. "http://host:8080"; a
// trailing slash is tolerated).
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Base returns the base URL the client targets — useful when a test or
// router holds one client per shard and needs to map responses back to
// backends.
func (c *Client) Base() string { return c.base }

// Health fetches /healthz and reports whether the daemon declared itself
// live. The document carries the instance identity when the daemon runs
// as a shard (-instance); a 503 (draining) returns ok=false with the
// decoded document and a nil error — only transport and decoding failures
// error.
func (c *Client) Health(ctx context.Context) (encode.HealthStatus, bool, error) {
	return c.health(ctx, "/healthz")
}

// Ready fetches /readyz, the readiness probe: ok=false when the daemon is
// draining or its job queue is saturated, with queue occupancy in the
// document either way.
func (c *Client) Ready(ctx context.Context) (encode.HealthStatus, bool, error) {
	return c.health(ctx, "/readyz")
}

func (c *Client) health(ctx context.Context, path string) (encode.HealthStatus, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return encode.HealthStatus{}, false, fmt.Errorf("client: building request: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return encode.HealthStatus{}, false, fmt.Errorf("client: GET %s: %w", path, err)
	}
	defer resp.Body.Close()
	var st encode.HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return encode.HealthStatus{}, false, fmt.Errorf("client: decoding %s response: %w", path, err)
	}
	return st, resp.StatusCode == http.StatusOK, nil
}

// APIError is a non-2xx response decoded from the v1 error envelope.
type APIError struct {
	// HTTPStatus is the response status code.
	HTTPStatus int
	// Code is one of the encode.Code* envelope codes ("internal" when the
	// body was not a well-formed envelope).
	Code    string
	Message string
	// State is the job lifecycle state the envelope carried, if any.
	State encode.JobState
	// RetryAfter is the parsed Retry-After delay (zero when absent), set
	// on queue_full rejections.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	msg := fmt.Sprintf("phmsed: %s (http %d): %s", e.Code, e.HTTPStatus, e.Message)
	if e.State != "" {
		msg += fmt.Sprintf(" (state %s)", e.State)
	}
	return msg
}

// Code returns err's envelope code when err is (or wraps) an *APIError,
// and "" otherwise.
func Code(err error) string {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// HasCode reports whether err is an *APIError with the given envelope code.
func HasCode(err error, code string) bool { return Code(err) == code }

// IsNotFound reports whether err is the API's not_found error.
func IsNotFound(err error) bool { return HasCode(err, encode.CodeNotFound) }

// IsQueueFull reports whether err is the API's queue_full backpressure error.
func IsQueueFull(err error) bool { return HasCode(err, encode.CodeQueueFull) }

// IsTopologyMismatch reports whether err is the API's topology_mismatch
// warm-start rejection.
func IsTopologyMismatch(err error) bool { return HasCode(err, encode.CodeTopologyMismatch) }

// do issues a request under the client's retry policy (none by default)
// and decodes a 2xx JSON body into out (skipped when out is nil). Non-2xx
// responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	if c.retry == nil {
		return c.doOnce(ctx, method, path, body, out)
	}
	var last error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(c.retry.Delay(attempt-1, last))
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("client: retrying %s %s: %w (last error: %v)", method, path, ctx.Err(), last)
			}
		}
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil || !retryableRequest(method, err) {
			return err
		}
		last = err
	}
	return last
}

// retryableRequest reports whether a failed request may be reissued:
// backpressure rejections never had side effects, so any method retries;
// transport errors and 5xx responses could have reached a non-idempotent
// handler, so only GETs retry through them.
func retryableRequest(method string, err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Code == encode.CodeQueueFull || ae.Code == encode.CodeDraining {
			return true
		}
		return method == http.MethodGet && ae.HTTPStatus >= 500
	}
	// Not an envelope: the request never produced a response (dial/reset/
	// timeout). Context errors are deliberate and final.
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return method == http.MethodGet
}

// doOnce issues exactly one request.
func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.bearer != "" {
		req.Header.Set("Authorization", "Bearer "+c.bearer)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError maps a non-2xx response onto *APIError, tolerating bodies
// that are not well-formed envelopes (proxies, panics).
func decodeError(resp *http.Response) error {
	ae := &APIError{HTTPStatus: resp.StatusCode, Code: encode.CodeInternal}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			ae.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var env encode.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error.Code != "" {
		ae.Code = env.Error.Code
		ae.Message = env.Error.Message
		ae.State = env.Error.State
	} else {
		ae.Message = strings.TrimSpace(string(raw))
	}
	return ae
}

// submitBody assembles a solve request body.
func submitBody(p *molecule.Problem, params encode.SolveParams, warm *encode.WarmStartRef) ([]byte, error) {
	var buf bytes.Buffer
	if err := encode.WriteProblem(&buf, p); err != nil {
		return nil, fmt.Errorf("client: encoding problem: %w", err)
	}
	return json.Marshal(encode.SolveRequest{
		Problem:   json.RawMessage(buf.Bytes()),
		Params:    params,
		WarmStart: warm,
	})
}

// Submit posts a problem for asynchronous solving and returns the accepted
// job's status snapshot.
func (c *Client) Submit(ctx context.Context, p *molecule.Problem, params encode.SolveParams) (encode.JobStatus, error) {
	return c.submit(ctx, p, params, nil)
}

// WarmStart posts a problem that continues from the retained posterior of
// a prior job (see SolveParams.KeepPosterior). The problem must be over
// the same molecule as the referenced posterior; the server rejects a
// mismatch with the topology_mismatch code.
func (c *Client) WarmStart(ctx context.Context, p *molecule.Problem, params encode.SolveParams, fromJob string) (encode.JobStatus, error) {
	return c.submit(ctx, p, params, &encode.WarmStartRef{Job: fromJob})
}

func (c *Client) submit(ctx context.Context, p *molecule.Problem, params encode.SolveParams, warm *encode.WarmStartRef) (encode.JobStatus, error) {
	body, err := submitBody(p, params, warm)
	if err != nil {
		return encode.JobStatus{}, err
	}
	var st encode.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/solve", body, &st); err != nil {
		return encode.JobStatus{}, err
	}
	return st, nil
}

// Status returns the job's current status snapshot.
func (c *Client) Status(ctx context.Context, id string) (encode.JobStatus, error) {
	var st encode.JobStatus
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &st); err != nil {
		return encode.JobStatus{}, err
	}
	return st, nil
}

// Wait polls Status every poll interval (default 5 ms) until the job
// reaches one of the wanted states (default: any terminal state) or ctx
// ends, and returns the matching snapshot.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, states ...encode.JobState) (encode.JobStatus, error) {
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return encode.JobStatus{}, err
		}
		if len(states) == 0 {
			if st.State.Terminal() {
				return st, nil
			}
		} else {
			for _, want := range states {
				if st.State == want {
					return st, nil
				}
			}
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("client: waiting for job %s (last state %s): %w", id, st.State, ctx.Err())
		case <-t.C:
		}
	}
}

// WaitRetry polls like Wait but rides through transient polling failures —
// transport errors and 5xx responses — with the client's retry backoff
// (the WithRetry policy, or its defaults) instead of returning on the
// first hiccup. It gives up after MaxAttempts consecutive failed polls, on
// a non-transient error (e.g. not_found), or when ctx ends.
func (c *Client) WaitRetry(ctx context.Context, id string, poll time.Duration, states ...encode.JobState) (encode.JobStatus, error) {
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}
	pol := RetryPolicy{}.withDefaults()
	if c.retry != nil {
		pol = *c.retry
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	failures := 0
	var lastErr error
	for {
		st, err := c.Status(ctx, id)
		switch {
		case err == nil:
			failures = 0
			if len(states) == 0 {
				if st.State.Terminal() {
					return st, nil
				}
			} else {
				for _, want := range states {
					if st.State == want {
						return st, nil
					}
				}
			}
		case !retryableRequest(http.MethodGet, err):
			return encode.JobStatus{}, err
		default:
			failures++
			lastErr = err
			if failures >= pol.MaxAttempts {
				return encode.JobStatus{}, fmt.Errorf("client: waiting for job %s: %d consecutive poll failures: %w", id, failures, err)
			}
			bt := time.NewTimer(pol.Delay(failures-1, err))
			select {
			case <-bt.C:
			case <-ctx.Done():
				bt.Stop()
				return encode.JobStatus{}, fmt.Errorf("client: waiting for job %s: %w (last error: %v)", id, ctx.Err(), lastErr)
			}
			continue
		}
		select {
		case <-ctx.Done():
			return st, fmt.Errorf("client: waiting for job %s (last state %s): %w", id, st.State, ctx.Err())
		case <-t.C:
		}
	}
}

// Result fetches the solution of a done job.
func (c *Client) Result(ctx context.Context, id string) (encode.SolutionDoc, error) {
	var doc encode.SolutionDoc
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/result", nil, &doc); err != nil {
		return encode.SolutionDoc{}, err
	}
	return doc, nil
}

// Posterior fetches a job's retained posterior. With full=true the
// response carries the full covariance matrix (8·(3n)² bytes on the
// wire); otherwise only the per-coordinate diagonal.
func (c *Client) Posterior(ctx context.Context, id string, full bool) (encode.PosteriorDoc, error) {
	path := "/v1/jobs/" + url.PathEscape(id) + "/posterior"
	if full {
		path += "?cov=full"
	}
	var doc encode.PosteriorDoc
	if err := c.do(ctx, http.MethodGet, path, nil, &doc); err != nil {
		return encode.PosteriorDoc{}, err
	}
	return doc, nil
}

// Cancel cancels a queued or running job and returns its status snapshot.
func (c *Client) Cancel(ctx context.Context, id string) (encode.JobStatus, error) {
	var st encode.JobStatus
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+url.PathEscape(id)+"/cancel", nil, &st); err != nil {
		return encode.JobStatus{}, err
	}
	return st, nil
}

// ListOptions filter and paginate the job listing.
type ListOptions struct {
	// State restricts the listing to one lifecycle state ("" = all).
	State encode.JobState
	// Limit caps the page size (0 = server default of 50).
	Limit int
	// After resumes a listing strictly after this job id (the NextAfter
	// cursor of the previous page).
	After string
}

// List returns submission-ordered job status summaries. The server prunes
// old terminal records beyond its retention bound, so the listing is a
// window over recent jobs.
func (c *Client) List(ctx context.Context, opts ListOptions) (encode.JobList, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", string(opts.State))
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.After != "" {
		q.Set("after", opts.After)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var list encode.JobList
	if err := c.do(ctx, http.MethodGet, path, nil, &list); err != nil {
		return encode.JobList{}, err
	}
	return list, nil
}
