package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"phmse/internal/encode"
	"phmse/internal/molecule"
)

// retryStub serves h with transport retries enabled at test-friendly
// delays, and returns the client plus a pointer to the request counter.
func retryStub(t *testing.T, h func(n int64, w http.ResponseWriter, r *http.Request)) (*Client, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		h(calls.Add(1), w, r)
	})
	WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond})(c)
	return c, &calls
}

func writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error": {"code": %q, "message": %q}}`, code, msg)
}

// Backpressure rejections have no side effects, so even a POST submission
// rides through them under the retry policy.
func TestSubmitRetriesThroughBackpressure(t *testing.T) {
	c, calls := retryStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n <= 2 {
			w.Header().Set("Retry-After", "0")
			writeEnvelope(w, http.StatusTooManyRequests, encode.CodeQueueFull, "queue is full")
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(encode.JobStatus{ID: "job-000001", State: encode.JobQueued})
	})
	st, err := c.Submit(context.Background(), molecule.Helix(1), encode.SolveParams{})
	if err != nil {
		t.Fatalf("submit through backpressure: %v", err)
	}
	if st.ID != "job-000001" || calls.Load() != 3 {
		t.Fatalf("status %+v after %d calls, want job-000001 after 3", st, calls.Load())
	}
}

// A server that never stops rejecting exhausts MaxAttempts and surfaces
// the last backpressure error unchanged.
func TestRetryExhaustsAttempts(t *testing.T) {
	c, calls := retryStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusServiceUnavailable, encode.CodeDraining, "draining")
	})
	_, err := c.Submit(context.Background(), molecule.Helix(1), encode.SolveParams{})
	if !HasCode(err, encode.CodeDraining) {
		t.Fatalf("err = %v, want draining", err)
	}
	if calls.Load() != 4 {
		t.Fatalf("%d calls, want MaxAttempts = 4", calls.Load())
	}
}

// A 5xx on a POST may have reached the handler; the submission must not
// be replayed.
func TestPostNotRetriedThrough5xx(t *testing.T) {
	c, calls := retryStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusInternalServerError, encode.CodeInternal, "boom")
	})
	_, err := c.Submit(context.Background(), molecule.Helix(1), encode.SolveParams{})
	if !HasCode(err, encode.CodeInternal) {
		t.Fatalf("err = %v, want internal", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls, want exactly 1 (no POST replay through 5xx)", calls.Load())
	}
}

// A GET is idempotent: the same 5xx that stops a POST is retried on a
// status poll.
func TestGetRetriedThrough5xx(t *testing.T) {
	c, calls := retryStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		if n == 1 {
			writeEnvelope(w, http.StatusBadGateway, encode.CodeInternal, "proxy hiccup")
			return
		}
		json.NewEncoder(w).Encode(encode.JobStatus{ID: "job-000001", State: encode.JobRunning})
	})
	st, err := c.Status(context.Background(), "job-000001")
	if err != nil {
		t.Fatalf("status through 5xx: %v", err)
	}
	if st.State != encode.JobRunning || calls.Load() != 2 {
		t.Fatalf("status %+v after %d calls", st, calls.Load())
	}
}

// Cancelling the context aborts the retry loop mid-backoff instead of
// sleeping out the remaining delay.
func TestRetryAbortsOnCancel(t *testing.T) {
	var calls atomic.Int64
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeEnvelope(w, http.StatusTooManyRequests, encode.CodeQueueFull, "queue is full")
	})
	WithRetry(RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second})(c)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Submit(ctx, molecule.Helix(1), encode.SolveParams{})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("err = %v, want cancellation", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancel took %v to abort a 10s backoff", elapsed)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d calls, want 1 (cancelled during the first backoff)", calls.Load())
	}
}

// WaitRetry rides through transient polling failures and still returns the
// terminal status once the server recovers.
func TestWaitRetryRidesThroughTransient(t *testing.T) {
	c, _ := retryStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		switch {
		case n == 2 || n == 3: // first poll fine, then an outage, then recovery
			writeEnvelope(w, http.StatusInternalServerError, encode.CodeInternal, "restarting")
		case n <= 4:
			json.NewEncoder(w).Encode(encode.JobStatus{ID: "job-000001", State: encode.JobRunning})
		default:
			json.NewEncoder(w).Encode(encode.JobStatus{ID: "job-000001", State: encode.JobDone})
		}
	})
	st, err := c.WaitRetry(context.Background(), "job-000001", time.Millisecond)
	if err != nil {
		t.Fatalf("WaitRetry: %v", err)
	}
	if st.State != encode.JobDone {
		t.Fatalf("state = %s, want done", st.State)
	}
}

// WaitRetry gives up after MaxAttempts consecutive failures...
func TestWaitRetryGivesUpAfterConsecutiveFailures(t *testing.T) {
	c, calls := retryStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusInternalServerError, encode.CodeInternal, "down for good")
	})
	_, err := c.WaitRetry(context.Background(), "job-000001", time.Millisecond)
	if !HasCode(err, encode.CodeInternal) {
		t.Fatalf("err = %v, want the surfaced internal error", err)
	}
	// Retries layer: each of the 4 tolerated polls is itself a GET retried
	// 4 times at the transport level before it counts as one failure.
	if calls.Load() != 16 {
		t.Fatalf("%d requests, want MaxAttempts² = 16", calls.Load())
	}
}

// ...but a non-transient error — the job does not exist — returns
// immediately, no matter the policy.
func TestWaitRetryStopsOnPermanentError(t *testing.T) {
	c, calls := retryStub(t, func(n int64, w http.ResponseWriter, r *http.Request) {
		writeEnvelope(w, http.StatusNotFound, encode.CodeNotFound, "no such job")
	})
	_, err := c.WaitRetry(context.Background(), "job-999999", time.Millisecond)
	if !IsNotFound(err) {
		t.Fatalf("err = %v, want not_found", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d polls, want 1 (not_found is final)", calls.Load())
	}
}

// The backoff delay is floored by the server's Retry-After and capped by
// MaxDelay plus jitter.
func TestRetryPolicyDelay(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}.withDefaults()
	for idx := 0; idx < 12; idx++ {
		d := p.Delay(idx, nil)
		if d < 5*time.Millisecond || d >= 120*time.Millisecond {
			t.Fatalf("delay(%d) = %v outside [base/2, 1.5*max)", idx, d)
		}
	}
	floored := p.Delay(0, &APIError{HTTPStatus: 429, Code: encode.CodeQueueFull, RetryAfter: time.Second})
	if floored < time.Second {
		t.Fatalf("delay with Retry-After 1s = %v, want >= 1s", floored)
	}
}
