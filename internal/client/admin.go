package client

// Admin is the typed client of the phmse-router /admin/v1 control plane,
// mirroring the v1 job client's shape: context-aware methods over the
// encode wire types, with non-2xx responses mapped onto *APIError.
//
//	a := client.NewAdmin("http://router:8081", token)
//	rep, err := a.RemoveShard(ctx, "s2", client.RemoveShardOptions{})
//	if err == nil && rep.Migration.Failed > 0 { ... }

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"phmse/internal/encode"
)

// Admin drives one router's admin API. Safe for concurrent use.
type Admin struct {
	c *Client
}

// NewAdmin builds an admin client for the router at base. token is the
// router's -admin-token ("" when the router runs its admin plane open);
// further options apply to the underlying client (WithHTTPClient,
// WithRetry — backpressure-only retries are safe here, the membership
// mutations are not idempotent GETs).
func NewAdmin(base, token string, opts ...Option) *Admin {
	if token != "" {
		opts = append(opts, WithBearerToken(token))
	}
	return &Admin{c: New(base, opts...)}
}

// Shards returns the router's current shard topology view.
func (a *Admin) Shards(ctx context.Context) (encode.ShardList, error) {
	var out encode.ShardList
	if err := a.c.do(ctx, http.MethodGet, "/admin/v1/shards", nil, &out); err != nil {
		return encode.ShardList{}, err
	}
	return out, nil
}

// AddShard registers a new backend (or reactivates a drained member) by
// base URL. The router probes it, admits it to the ring once it answers
// ready, and runs a migration pass moving remapped posteriors onto it;
// adding an active member fails with code conflict.
func (a *Admin) AddShard(ctx context.Context, base string) (encode.AddShardResponse, error) {
	body, err := json.Marshal(encode.AddShardRequest{Base: base})
	if err != nil {
		return encode.AddShardResponse{}, err
	}
	var out encode.AddShardResponse
	if err := a.c.do(ctx, http.MethodPost, "/admin/v1/shards", body, &out); err != nil {
		return encode.AddShardResponse{}, err
	}
	return out, nil
}

// RemoveShardOptions shape a removal. The zero value is the graceful
// default: drain mode with the router's configured deadline.
type RemoveShardOptions struct {
	// Immediate skips the drain: no in-flight wait, no migration — for a
	// shard that is already dead and can serve nothing.
	Immediate bool
	// Deadline overrides the router's drain deadline (0 keeps it).
	Deadline time.Duration
}

// RemoveShard ejects a shard from membership. name is the shard's
// instance id or base URL.
func (a *Admin) RemoveShard(ctx context.Context, name string, opts RemoveShardOptions) (encode.DrainReport, error) {
	q := url.Values{}
	if opts.Immediate {
		q.Set("mode", "immediate")
	} else {
		q.Set("mode", "drain")
	}
	if opts.Deadline > 0 {
		q.Set("deadline_ms", strconv.FormatInt(opts.Deadline.Milliseconds(), 10))
	}
	var out encode.DrainReport
	path := "/admin/v1/shards/" + url.PathEscape(name) + "?" + q.Encode()
	if err := a.c.do(ctx, http.MethodDelete, path, nil, &out); err != nil {
		return encode.DrainReport{}, err
	}
	return out, nil
}

// Repair runs one synchronous anti-entropy sweep: the router indexes
// every live shard's posteriors, diffs holdings against current ring
// ownership, and re-drives misplaced posteriors to their owners.
func (a *Admin) Repair(ctx context.Context) (encode.RepairReport, error) {
	var out encode.RepairReport
	if err := a.c.do(ctx, http.MethodPost, "/admin/v1/repair", nil, &out); err != nil {
		return encode.RepairReport{}, err
	}
	return out, nil
}

// Audit returns the most recent limit admin audit entries (membership
// changes and effective repair sweeps), oldest first; limit 0 keeps the
// router's default.
func (a *Admin) Audit(ctx context.Context, limit int) (encode.AuditLog, error) {
	path := "/admin/v1/audit"
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var out encode.AuditLog
	if err := a.c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return encode.AuditLog{}, err
	}
	return out, nil
}

// ClusterState returns the router replica's replicated-control-plane
// view: its replica id, its current epoch-stamped membership document,
// and the exchange health of its configured gossip peers.
func (a *Admin) ClusterState(ctx context.Context) (encode.ClusterView, error) {
	var out encode.ClusterView
	if err := a.c.do(ctx, http.MethodGet, "/cluster/v1/state", nil, &out); err != nil {
		return encode.ClusterView{}, err
	}
	return out, nil
}

// Peers returns just the peer-health slice of the replica's cluster
// view — the quick "is gossip healthy" probe.
func (a *Admin) Peers(ctx context.Context) ([]encode.ClusterPeer, error) {
	view, err := a.ClusterState(ctx)
	if err != nil {
		return nil, err
	}
	return view.Peers, nil
}

// DrainShard fences a shard out of the ring, waits for its in-flight
// jobs (bounded by deadline; 0 keeps the router's default), and migrates
// its retained posteriors — but keeps it registered in state "drained",
// to be removed or reactivated (AddShard with the same base) later.
func (a *Admin) DrainShard(ctx context.Context, name string, deadline time.Duration) (encode.DrainReport, error) {
	path := "/admin/v1/shards/" + url.PathEscape(name) + "/drain"
	if deadline > 0 {
		path += "?deadline_ms=" + strconv.FormatInt(deadline.Milliseconds(), 10)
	}
	var out encode.DrainReport
	if err := a.c.do(ctx, http.MethodPost, path, nil, &out); err != nil {
		return encode.DrainReport{}, err
	}
	return out, nil
}
