package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"phmse/internal/encode"
	"phmse/internal/molecule"
)

// stubServer serves canned responses so the client's decoding and error
// mapping are tested without a real solver behind them.
func stubServer(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return New(ts.URL + "/") // trailing slash must be tolerated
}

func TestErrorEnvelopeMapping(t *testing.T) {
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error": {"code": "queue_full", "message": "queue is full", "state": ""}}`)
	})
	_, err := c.Status(context.Background(), "job-000001")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T, want *APIError: %v", err, err)
	}
	if ae.HTTPStatus != http.StatusTooManyRequests || ae.Code != encode.CodeQueueFull {
		t.Fatalf("mapped error: %+v", ae)
	}
	if ae.Message != "queue is full" {
		t.Fatalf("message: %q", ae.Message)
	}
	if ae.RetryAfter != 2*time.Second {
		t.Fatalf("retry-after: %v", ae.RetryAfter)
	}
	if !IsQueueFull(err) || IsNotFound(err) || Code(err) != encode.CodeQueueFull {
		t.Fatalf("predicates disagree on %v", err)
	}
	if ae.Error() == "" {
		t.Fatal("empty error string")
	}
}

func TestErrorEnvelopeState(t *testing.T) {
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		fmt.Fprint(w, `{"error": {"code": "no_result", "message": "job was cancelled", "state": "cancelled"}}`)
	})
	_, err := c.Result(context.Background(), "job-000001")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T: %v", err, err)
	}
	if ae.State != encode.JobCancelled || ae.Code != encode.CodeNoResult {
		t.Fatalf("mapped error: %+v", ae)
	}
}

// A non-envelope body (proxy error page, panic text) still becomes an
// *APIError, with the raw text preserved as the message.
func TestNonEnvelopeErrorBody(t *testing.T) {
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream exploded", http.StatusBadGateway)
	})
	_, err := c.Status(context.Background(), "x")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T: %v", err, err)
	}
	if ae.HTTPStatus != http.StatusBadGateway || ae.Code != encode.CodeInternal {
		t.Fatalf("mapped error: %+v", ae)
	}
	if ae.Message != "upstream exploded" {
		t.Fatalf("message: %q", ae.Message)
	}
}

func TestSubmitBodiesAndRoutes(t *testing.T) {
	var gotPath, gotQuery string
	var gotReq encode.SolveRequest
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotQuery = r.URL.RawQuery
		if r.Method == http.MethodPost && r.URL.Path == "/v1/solve" {
			if err := jsonDecode(r, &gotReq); err != nil {
				t.Errorf("decoding submit body: %v", err)
			}
			w.WriteHeader(http.StatusAccepted)
		}
		fmt.Fprint(w, `{"id": "job-000001", "state": "queued"}`)
	})
	ctx := context.Background()
	p := molecule.Helix(1)

	st, err := c.Submit(ctx, p, encode.SolveParams{KeepPosterior: true})
	if err != nil || st.ID != "job-000001" {
		t.Fatalf("submit: %v, %+v", err, st)
	}
	if !gotReq.Params.KeepPosterior || gotReq.WarmStart != nil || len(gotReq.Problem) == 0 {
		t.Fatalf("submit request body: %+v", gotReq)
	}

	if _, err := c.WarmStart(ctx, p, encode.SolveParams{}, "job-000042"); err != nil {
		t.Fatal(err)
	}
	if gotReq.WarmStart == nil || gotReq.WarmStart.Job != "job-000042" {
		t.Fatalf("warm-start request body: %+v", gotReq.WarmStart)
	}

	if _, err := c.Posterior(ctx, "job-000001", true); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/jobs/job-000001/posterior" || gotQuery != "cov=full" {
		t.Fatalf("posterior route: %s?%s", gotPath, gotQuery)
	}

	if _, err := c.List(ctx, ListOptions{State: encode.JobDone, Limit: 10, After: "job-000003"}); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/jobs" || gotQuery != "after=job-000003&limit=10&state=done" {
		t.Fatalf("list route: %s?%s", gotPath, gotQuery)
	}

	if _, err := c.Cancel(ctx, "job-000001"); err != nil {
		t.Fatal(err)
	}
	if gotPath != "/v1/jobs/job-000001/cancel" {
		t.Fatalf("cancel route: %s", gotPath)
	}
}

// Wait returns once the polled state matches, and surfaces context
// cancellation with the last observed state.
func TestWait(t *testing.T) {
	polls := 0
	c := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		polls++
		state := "running"
		if polls >= 3 {
			state = "done"
		}
		fmt.Fprintf(w, `{"id": "job-000001", "state": %q}`, state)
	})
	st, err := c.Wait(context.Background(), "job-000001", time.Millisecond)
	if err != nil || st.State != encode.JobDone {
		t.Fatalf("wait: %v, %+v", err, st)
	}
	if polls < 3 {
		t.Fatalf("wait returned after %d polls", polls)
	}

	stuck := stubServer(t, func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `{"id": "job-000001", "state": "running"}`)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := stuck.Wait(ctx, "job-000001", time.Millisecond); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck wait error = %v, want deadline exceeded", err)
	}
}

func jsonDecode(r *http.Request, out any) error {
	defer r.Body.Close()
	return json.NewDecoder(r.Body).Decode(out)
}
