package client

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"phmse/internal/encode"
)

// adminStub records every request the Admin client issues and serves the
// canned response — the wire contract (method, path, query, bearer
// header, body) is pinned here without a router behind it.
type adminCall struct {
	method, path, query, auth string
	body                      []byte
}

func adminStub(t *testing.T, token string, status int, resp any) (*Admin, *[]adminCall) {
	t.Helper()
	calls := &[]adminCall{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		*calls = append(*calls, adminCall{
			method: r.Method, path: r.URL.EscapedPath(), query: r.URL.RawQuery,
			auth: r.Header.Get("Authorization"), body: body,
		})
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return NewAdmin(ts.URL, token), calls
}

func TestAdminShardsWire(t *testing.T) {
	want := encode.ShardList{
		Shards:     []encode.ShardInfo{{Base: "http://s1:8080", Instance: "s1", Alive: true, Ready: true, InRing: true, QueueDepth: 3}},
		RingShards: 1,
	}
	a, calls := adminStub(t, "tok", http.StatusOK, want)
	got, err := a.Shards(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Shards) != 1 || got.Shards[0] != want.Shards[0] || got.RingShards != 1 {
		t.Fatalf("decoded list: %+v", got)
	}
	c := (*calls)[0]
	if c.method != http.MethodGet || c.path != "/admin/v1/shards" {
		t.Fatalf("wire: %s %s", c.method, c.path)
	}
	if c.auth != "Bearer tok" {
		t.Fatalf("authorization header %q, want bearer token", c.auth)
	}
}

func TestAdminAddShardWire(t *testing.T) {
	a, calls := adminStub(t, "tok", http.StatusOK, encode.AddShardResponse{
		Shard:     encode.ShardInfo{Base: "http://s3:8080", InRing: true},
		Migration: encode.MigrationReport{Migrated: 2, Bytes: 512},
	})
	resp, err := a.AddShard(context.Background(), "http://s3:8080")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Migration.Migrated != 2 || !resp.Shard.InRing {
		t.Fatalf("decoded response: %+v", resp)
	}
	c := (*calls)[0]
	if c.method != http.MethodPost || c.path != "/admin/v1/shards" {
		t.Fatalf("wire: %s %s", c.method, c.path)
	}
	var req encode.AddShardRequest
	if err := json.Unmarshal(c.body, &req); err != nil || req.Base != "http://s3:8080" {
		t.Fatalf("request body %q: %v", c.body, err)
	}
}

func TestAdminRemoveShardWire(t *testing.T) {
	a, calls := adminStub(t, "", http.StatusOK, encode.DrainReport{Mode: "drain", Removed: true})
	if _, err := a.RemoveShard(context.Background(), "s2", RemoveShardOptions{Deadline: 1500 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	c := (*calls)[0]
	if c.method != http.MethodDelete || c.path != "/admin/v1/shards/s2" {
		t.Fatalf("wire: %s %s", c.method, c.path)
	}
	q := c.query
	if q != "deadline_ms=1500&mode=drain" {
		t.Fatalf("query %q, want drain mode with deadline_ms=1500", q)
	}
	if c.auth != "" {
		t.Fatalf("tokenless admin sent authorization %q", c.auth)
	}

	// Immediate mode, base-URL shard name escaped into one path segment.
	if _, err := a.RemoveShard(context.Background(), "http://s2:8080", RemoveShardOptions{Immediate: true}); err != nil {
		t.Fatal(err)
	}
	c = (*calls)[1]
	// EscapedPath of the request URL must keep the base as one segment.
	if want := "/admin/v1/shards/" + url.PathEscape("http://s2:8080"); c.path != want {
		t.Fatalf("path %q does not carry the escaped base %q", c.path, want)
	}
	if c.query != "mode=immediate" {
		t.Fatalf("query %q, want mode=immediate with no deadline", c.query)
	}
}

func TestAdminDrainShardWire(t *testing.T) {
	a, calls := adminStub(t, "tok", http.StatusOK, encode.DrainReport{Mode: "drain", Shard: encode.ShardInfo{DrainState: "drained"}})
	rep, err := a.DrainShard(context.Background(), "s1", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shard.DrainState != "drained" {
		t.Fatalf("decoded report: %+v", rep)
	}
	c := (*calls)[0]
	if c.method != http.MethodPost || c.path != "/admin/v1/shards/s1/drain" || c.query != "deadline_ms=2000" {
		t.Fatalf("wire: %s %s?%s", c.method, c.path, c.query)
	}
}

func TestAdminErrorMapping(t *testing.T) {
	a, _ := adminStub(t, "tok", http.StatusConflict, encode.ErrorEnvelope{
		Error: encode.ErrorBody{Code: encode.CodeConflict, Message: "already a member"},
	})
	_, err := a.AddShard(context.Background(), "http://s1:8080")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T, want *APIError: %v", err, err)
	}
	if ae.HTTPStatus != http.StatusConflict || ae.Code != encode.CodeConflict {
		t.Fatalf("mapped error: %+v", ae)
	}
	if ae.Message != "already a member" {
		t.Fatalf("message %q", ae.Message)
	}
}

func TestAdminClusterStateWire(t *testing.T) {
	want := encode.ClusterView{
		ReplicaID: "ra",
		Doc: encode.ClusterDoc{
			Epoch:  7,
			Origin: "rb",
			Members: []encode.ClusterMember{
				{Base: "http://s1:8080"},
				{Base: "http://s2:8080", DrainState: "drained", Quarantines: 1},
			},
			Lease: encode.RepairLease{Holder: "rb", Epoch: 6, ExpiresUnixMs: 1700000000000},
			Hash:  "deadbeef",
		},
		Peers: []encode.ClusterPeer{{Base: "http://rb:8090", InSync: true, LastContactUnixMs: 1700000000001}},
	}
	a, calls := adminStub(t, "tok", http.StatusOK, want)
	got, err := a.ClusterState(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.ReplicaID != "ra" || got.Doc.Epoch != 7 || got.Doc.Origin != "rb" || got.Doc.Hash != "deadbeef" {
		t.Fatalf("decoded view: %+v", got)
	}
	if len(got.Doc.Members) != 2 || got.Doc.Members[1] != want.Doc.Members[1] {
		t.Fatalf("decoded members: %+v", got.Doc.Members)
	}
	if got.Doc.Lease != want.Doc.Lease {
		t.Fatalf("decoded lease: %+v", got.Doc.Lease)
	}
	if len(got.Peers) != 1 || got.Peers[0] != want.Peers[0] {
		t.Fatalf("decoded peers: %+v", got.Peers)
	}
	c := (*calls)[0]
	if c.method != http.MethodGet || c.path != "/cluster/v1/state" || c.query != "" {
		t.Fatalf("wire: %s %s?%s", c.method, c.path, c.query)
	}
	if c.auth != "Bearer tok" {
		t.Fatalf("authorization header %q, want bearer token", c.auth)
	}
}

func TestAdminPeersWire(t *testing.T) {
	view := encode.ClusterView{
		ReplicaID: "ra",
		Peers: []encode.ClusterPeer{
			{Base: "http://rb:8090", InSync: true},
			{Base: "http://rc:8090", LastError: "dial tcp: connection refused"},
		},
	}
	a, calls := adminStub(t, "", http.StatusOK, view)
	peers, err := a.Peers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != view.Peers[0] || peers[1] != view.Peers[1] {
		t.Fatalf("decoded peers: %+v", peers)
	}
	c := (*calls)[0]
	if c.method != http.MethodGet || c.path != "/cluster/v1/state" {
		t.Fatalf("wire: %s %s", c.method, c.path)
	}
	if c.auth != "" {
		t.Fatalf("authorization header %q on an open admin plane", c.auth)
	}
}
