// Package chaosproxy is an HTTP fault-injection reverse proxy for
// resilience testing: it sits between a client (typically phmse-router)
// and one backend (typically a phmsed shard) and injects scripted faults
// into the traffic passing through — added latency, connection resets
// mid-response-body, synthetic 5xx/429 bursts, and blackholes that hold a
// request open until the client gives up. The chaos test suites drive a
// real multi-shard cluster through these proxies to prove the
// self-healing layer's properties: circuit breakers open on live failures
// and close after recovery, and anti-entropy repair converges every
// posterior back onto its ring owner with none lost.
//
// Faults are scripted, not emergent: the active Fault is swapped
// atomically (Set/Clear), the dice are a seeded deterministic PRNG, and a
// Match predicate scopes faults to chosen requests (e.g. only /v1/
// traffic, keeping health probes clean). A proxy whose backend is down
// answers 502 — exactly what a crashed shard looks like through real
// infrastructure.
package chaosproxy

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// maxProxyBody bounds one buffered backend response (the mid-body reset
// needs the full body in hand to promise a Content-Length it then breaks).
const maxProxyBody = 256 << 20

// Fault is one injection script. Probabilities are rolled per matched
// request in the order reset → error → blackhole; latency applies to
// every matched request including the faulted ones.
type Fault struct {
	// Latency is added before the request reaches the backend.
	Latency time.Duration
	// ResetProb is the probability of forwarding the request, then
	// severing the connection mid-response-body (a TCP RST after half the
	// payload, with the full Content-Length already promised).
	ResetProb float64
	// ErrorProb is the probability of answering ErrorCode without touching
	// the backend.
	ErrorProb float64
	// ErrorCode is the synthetic status (default 500). Pair 429 with
	// RetryAfter to script backpressure bursts.
	ErrorCode int
	// RetryAfter, when positive, sets a Retry-After header (whole seconds)
	// on synthetic errors.
	RetryAfter time.Duration
	// Blackhole, when set, holds every matched request open — no response
	// bytes at all — until the client abandons it or the proxy closes.
	Blackhole bool
	// Match scopes the fault; nil matches every request.
	Match func(*http.Request) bool
}

// Stats counts what the proxy did, for asserting that a scripted window
// actually injected faults.
type Stats struct {
	Requests   int64 `json:"requests"`
	Passed     int64 `json:"passed"`
	Resets     int64 `json:"resets"`
	Errors     int64 `json:"errors"`
	Blackholes int64 `json:"blackholes"`
	// BackendDown counts 502s answered because the backend was unreachable
	// (not an injected fault — the backend really was gone).
	BackendDown int64 `json:"backend_down"`
}

// Proxy is the fault-injecting reverse proxy. Serve it on a real
// listener (httptest.NewServer works): the mid-body reset needs
// http.Hijacker.
type Proxy struct {
	backend string // base URL, no trailing slash
	hc      *http.Client
	fault   atomic.Pointer[Fault]
	closed  chan struct{}
	once    sync.Once

	rngMu sync.Mutex
	rng   *rand.Rand

	requests, passed, resets, errors, blackholes, backendDown atomic.Int64
}

// New builds a proxy for the backend base URL. seed makes the fault dice
// deterministic; two proxies with the same seed and traffic roll the same
// faults.
func New(backend string, seed int64) *Proxy {
	return &Proxy{
		backend: backend,
		// The proxy must not retry or pool-balance around faults it is
		// supposed to surface, so it uses a plain transport with its own
		// small pool.
		hc:     &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 4}},
		closed: make(chan struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Set installs the active fault script (replacing any previous one).
func (p *Proxy) Set(f Fault) {
	if f.ErrorCode == 0 {
		f.ErrorCode = http.StatusInternalServerError
	}
	p.fault.Store(&f)
}

// Clear removes the active fault: the proxy becomes transparent.
func (p *Proxy) Clear() { p.fault.Store(nil) }

// Close releases any blackholed requests and marks the proxy dead.
func (p *Proxy) Close() { p.once.Do(func() { close(p.closed) }) }

// Stats snapshots the injection counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:    p.requests.Load(),
		Passed:      p.passed.Load(),
		Resets:      p.resets.Load(),
		Errors:      p.errors.Load(),
		Blackholes:  p.blackholes.Load(),
		BackendDown: p.backendDown.Load(),
	}
}

// roll draws one uniform [0,1) from the seeded dice.
func (p *Proxy) roll() float64 {
	p.rngMu.Lock()
	defer p.rngMu.Unlock()
	return p.rng.Float64()
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	f := p.fault.Load()
	if f != nil && f.Match != nil && !f.Match(r) {
		f = nil // out of scope: transparent
	}
	if f != nil {
		if f.Blackhole {
			p.blackholes.Add(1)
			select {
			case <-r.Context().Done():
			case <-p.closed:
			}
			return
		}
		if f.Latency > 0 {
			select {
			case <-time.After(f.Latency):
			case <-r.Context().Done():
				return
			}
		}
		if f.ResetProb > 0 && p.roll() < f.ResetProb {
			p.forwardAndReset(w, r)
			return
		}
		if f.ErrorProb > 0 && p.roll() < f.ErrorProb {
			p.errors.Add(1)
			if f.RetryAfter > 0 {
				w.Header().Set("Retry-After", fmt.Sprintf("%d", int(f.RetryAfter.Seconds())))
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(f.ErrorCode)
			fmt.Fprintf(w, `{"error":{"code":"internal","message":"chaosproxy: injected %d"}}`, f.ErrorCode)
			return
		}
	}
	p.forward(w, r)
}

// forward relays the request transparently. A dead backend reads as 502 —
// through the proxy a crashed shard fails exactly like one behind real
// infrastructure.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request) {
	resp, err := p.roundTrip(r)
	if err != nil {
		p.backendDown.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, `{"error":{"code":"internal","message":"chaosproxy: backend unreachable"}}`)
		return
	}
	defer resp.Body.Close()
	copyHeader(w.Header(), resp.Header)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck
	p.passed.Add(1)
}

// forwardAndReset relays the request to the backend, then breaks the
// client connection halfway through the response body with an RST: the
// client saw a healthy status line and a Content-Length it will never
// receive. This is the worst case for a transfer protocol — the backend
// did its work, the caller cannot know how much arrived.
func (p *Proxy) forwardAndReset(w http.ResponseWriter, r *http.Request) {
	resp, err := p.roundTrip(r)
	if err != nil {
		p.backendDown.Add(1)
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	resp.Body.Close()
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok { // no raw conn (e.g. HTTP/2): degrade to an abrupt empty reply
		p.resets.Add(1)
		panic(http.ErrAbortHandler)
	}
	conn, bufrw, err := hj.Hijack()
	if err != nil {
		p.resets.Add(1)
		panic(http.ErrAbortHandler)
	}
	defer conn.Close()
	p.resets.Add(1)
	fmt.Fprintf(bufrw, "HTTP/1.1 %d %s\r\n", resp.StatusCode, http.StatusText(resp.StatusCode))
	fmt.Fprintf(bufrw, "Content-Type: %s\r\n", resp.Header.Get("Content-Type"))
	fmt.Fprintf(bufrw, "Content-Length: %d\r\n\r\n", len(body))
	bufrw.Write(body[:len(body)/2]) //nolint:errcheck
	bufrw.Flush()                   //nolint:errcheck
	// SetLinger(0) turns the close into an RST instead of an orderly FIN,
	// so the client sees a reset, not a truncated-but-clean EOF.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0) //nolint:errcheck
	}
}

// roundTrip relays one request to the backend.
func (p *Proxy) roundTrip(r *http.Request) (*http.Response, error) {
	u := p.backend + r.URL.RequestURI()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
	if err != nil {
		return nil, err
	}
	copyHeader(req.Header, r.Header)
	return p.hc.Do(req)
}

func copyHeader(dst, src http.Header) {
	for k, vv := range src {
		for _, v := range vv {
			dst.Add(k, v)
		}
	}
}
