package chaosproxy

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoBackend answers 200 with a fixed body and a marker header.
func echoBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Backend", "yes")
		io.WriteString(w, body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func newProxy(t *testing.T, backend string) (*Proxy, *httptest.Server) {
	t.Helper()
	p := New(backend, 1)
	srv := httptest.NewServer(p)
	t.Cleanup(func() { srv.Close(); p.Close() })
	return p, srv
}

func TestTransparentPassThrough(t *testing.T) {
	backend := echoBackend(t, "hello")
	p, srv := newProxy(t, backend.URL)

	resp, err := http.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "hello" {
		t.Fatalf("got %d %q, want 200 hello", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Backend") != "yes" {
		t.Fatalf("backend header not relayed")
	}
	if st := p.Stats(); st.Passed != 1 {
		t.Fatalf("stats = %+v, want Passed 1", st)
	}
}

func TestErrorInjectionWithRetryAfter(t *testing.T) {
	backend := echoBackend(t, "hello")
	p, srv := newProxy(t, backend.URL)
	p.Set(Fault{ErrorProb: 1, ErrorCode: http.StatusTooManyRequests, RetryAfter: 2 * time.Second})

	resp, err := http.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want 2", got)
	}
	if st := p.Stats(); st.Errors != 1 || st.Passed != 0 {
		t.Fatalf("stats = %+v, want Errors 1", st)
	}

	// Clearing restores transparency.
	p.Clear()
	resp2, err := http.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatalf("get after clear: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after clear status = %d, want 200", resp2.StatusCode)
	}
}

func TestResetMidBody(t *testing.T) {
	backend := echoBackend(t, strings.Repeat("x", 1<<16))
	p, srv := newProxy(t, backend.URL)
	p.Set(Fault{ResetProb: 1})

	resp, err := http.Get(srv.URL + "/v1/big")
	if err == nil {
		// The status line and headers arrive intact; the body must not.
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200 before the reset", resp.StatusCode)
		}
		if _, rerr := io.ReadAll(resp.Body); rerr == nil {
			t.Fatalf("read full body through a reset; want an error")
		}
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats = %+v, want Resets 1", st)
	}
}

func TestBlackholeHoldsUntilClientGivesUp(t *testing.T) {
	backend := echoBackend(t, "hello")
	p, srv := newProxy(t, backend.URL)
	p.Set(Fault{Blackhole: true})

	hc := &http.Client{Timeout: 100 * time.Millisecond}
	start := time.Now()
	_, err := hc.Get(srv.URL + "/v1/ping")
	if err == nil {
		t.Fatalf("blackholed request answered")
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("request failed after %v; want to be held to the client timeout", elapsed)
	}
	if st := p.Stats(); st.Blackholes != 1 {
		t.Fatalf("stats = %+v, want Blackholes 1", st)
	}
}

func TestLatencyInjection(t *testing.T) {
	backend := echoBackend(t, "hello")
	p, srv := newProxy(t, backend.URL)
	p.Set(Fault{Latency: 60 * time.Millisecond})

	start := time.Now()
	resp, err := http.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request served in %v; want >= 50ms injected latency", elapsed)
	}
}

func TestMatchScopesFaults(t *testing.T) {
	backend := echoBackend(t, "hello")
	p, srv := newProxy(t, backend.URL)
	p.Set(Fault{
		ErrorProb: 1,
		Match:     func(r *http.Request) bool { return strings.HasPrefix(r.URL.Path, "/v1/") },
	})

	// Health probes stay clean.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d through scoped fault, want 200", resp.StatusCode)
	}

	// v1 traffic eats the fault.
	resp2, err := http.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatalf("v1: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusInternalServerError {
		t.Fatalf("v1 status = %d, want injected 500", resp2.StatusCode)
	}
}

func TestDeadBackendReads502(t *testing.T) {
	backend := echoBackend(t, "hello")
	p, srv := newProxy(t, backend.URL)
	backend.Close()

	resp, err := http.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 for a dead backend", resp.StatusCode)
	}
	if st := p.Stats(); st.BackendDown != 1 {
		t.Fatalf("stats = %+v, want BackendDown 1", st)
	}
}

func TestErrorRateIsSeededAndPartial(t *testing.T) {
	backend := echoBackend(t, "hello")
	p, srv := newProxy(t, backend.URL)
	p.Set(Fault{ErrorProb: 0.5})

	var failed int
	for i := 0; i < 40; i++ {
		resp, err := http.Get(srv.URL + "/v1/ping")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			failed++
		}
		resp.Body.Close()
	}
	if failed == 0 || failed == 40 {
		t.Fatalf("p=0.5 fault failed %d/40 requests; want a strict mix", failed)
	}
}
