// Package analysis interprets the covariance half of a structure estimate.
// The paper's §2 motivates carrying the full covariance matrix because it
// tells "which parts of the molecule are better defined by the data"; this
// package turns that matrix into the quantities a structural biologist
// reads: per-atom uncertainty ellipsoids (principal axes of each 3×3
// diagonal block), inter-atom correlations (off-diagonal blocks), and a
// ranking of atoms by how well the data pins them down.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/mat"
)

// Ellipsoid is one atom's positional uncertainty: principal axes (unit
// vectors) with their standard deviations, in descending order.
type Ellipsoid struct {
	Axes   [3]geom.Vec3
	Sigmas [3]float64
}

// Volume returns the 1σ ellipsoid volume (4π/3 · σ₁σ₂σ₃).
func (e Ellipsoid) Volume() float64 {
	return 4 * math.Pi / 3 * e.Sigmas[0] * e.Sigmas[1] * e.Sigmas[2]
}

// Anisotropy returns σ_max/σ_min (1 for an isotropic atom); an elongated
// ellipsoid means the data constrains some directions much better than
// others.
func (e Ellipsoid) Anisotropy() float64 {
	if e.Sigmas[2] <= 0 {
		return math.Inf(1)
	}
	return e.Sigmas[0] / e.Sigmas[2]
}

func (e Ellipsoid) String() string {
	return fmt.Sprintf("σ=(%.3f, %.3f, %.3f) Å", e.Sigmas[0], e.Sigmas[1], e.Sigmas[2])
}

// AtomEllipsoid extracts atom i's 3×3 covariance block and returns its
// principal-axis decomposition. Tiny negative eigenvalues from round-off
// clamp to zero.
func AtomEllipsoid(s *filter.State, atom int) (Ellipsoid, error) {
	if atom < 0 || atom >= s.Atoms() {
		return Ellipsoid{}, fmt.Errorf("analysis: atom %d out of %d", atom, s.Atoms())
	}
	block := s.C.View(3*atom, 3*atom, 3, 3).Clone()
	w, v, err := mat.SymEigen(block)
	if err != nil {
		return Ellipsoid{}, fmt.Errorf("analysis: atom %d: %w", atom, err)
	}
	var e Ellipsoid
	for k := 0; k < 3; k++ {
		if w[k] < 0 {
			w[k] = 0
		}
		e.Sigmas[k] = math.Sqrt(w[k])
		e.Axes[k] = geom.Vec3{v.At(0, k), v.At(1, k), v.At(2, k)}
	}
	return e, nil
}

// Correlation returns a scalar coupling measure between two atoms: the
// Frobenius norm of the cross-covariance block normalized by the geometric
// mean of the atoms' own covariance norms. Zero means the estimates are
// uncorrelated (updates to one leave the other untouched — the locality
// property hierarchical decomposition exploits); values near one mean the
// data rigidly ties them together.
func Correlation(s *filter.State, a, b int) float64 {
	if a < 0 || b < 0 || a >= s.Atoms() || b >= s.Atoms() {
		panic("analysis: atom index out of range")
	}
	cross := frob(s.C.View(3*a, 3*b, 3, 3))
	na := frob(s.C.View(3*a, 3*a, 3, 3))
	nb := frob(s.C.View(3*b, 3*b, 3, 3))
	if na == 0 || nb == 0 {
		return 0
	}
	return cross / math.Sqrt(na*nb)
}

func frob(m *mat.Mat) float64 {
	s := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// RankAtoms returns atom indices ordered from best determined (smallest
// total variance) to worst.
func RankAtoms(s *filter.State) []int {
	idx := make([]int, s.Atoms())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return s.Variance(idx[a]) < s.Variance(idx[b])
	})
	return idx
}

// Report renders a short human-readable uncertainty summary: overall
// statistics plus the k best- and worst-determined atoms with their
// ellipsoids. names may be nil.
func Report(s *filter.State, names []string, k int) string {
	n := s.Atoms()
	if n == 0 {
		return "empty estimate\n"
	}
	if k < 1 {
		k = 3
	}
	if k > n {
		k = n
	}
	var b strings.Builder
	fmt.Fprintf(&b, "uncertainty over %d atoms: mean positional σ %.3f Å\n",
		n, math.Sqrt(s.MeanVariance()/3))
	ranked := RankAtoms(s)
	section := func(title string, atoms []int) {
		fmt.Fprintf(&b, "%s:\n", title)
		for _, a := range atoms {
			e, err := AtomEllipsoid(s, a)
			label := fmt.Sprintf("atom %d", a)
			if names != nil && a < len(names) && names[a] != "" {
				label = fmt.Sprintf("atom %d (%s)", a, names[a])
			}
			if err != nil {
				fmt.Fprintf(&b, "  %-18s <degenerate covariance: %v>\n", label, err)
				continue
			}
			fmt.Fprintf(&b, "  %-18s %s  anisotropy %.1f\n", label, e, e.Anisotropy())
		}
	}
	section("best determined", ranked[:k])
	section("worst determined", ranked[n-k:])
	return b.String()
}
