package analysis

import (
	"math"
	"strings"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/filter"
	"phmse/internal/geom"
)

// anisotropicState builds a two-atom state where atom 0 is tightly pinned
// in x but loose in z, and atom 1 is isotropic and uncorrelated.
func anisotropicState() *filter.State {
	s := filter.NewState([]geom.Vec3{{0, 0, 0}, {5, 0, 0}}, 1)
	s.C.Set(0, 0, 0.01) // σx = 0.1
	s.C.Set(1, 1, 0.25) // σy = 0.5
	s.C.Set(2, 2, 4.0)  // σz = 2.0
	return s
}

func TestAtomEllipsoid(t *testing.T) {
	s := anisotropicState()
	e, err := AtomEllipsoid(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [3]float64{2.0, 0.5, 0.1}
	for k := 0; k < 3; k++ {
		if math.Abs(e.Sigmas[k]-want[k]) > 1e-12 {
			t.Fatalf("σ[%d] = %g, want %g", k, e.Sigmas[k], want[k])
		}
	}
	// Largest axis is ±z.
	if math.Abs(math.Abs(e.Axes[0][2])-1) > 1e-12 {
		t.Fatalf("major axis %v not along z", e.Axes[0])
	}
	if math.Abs(e.Anisotropy()-20) > 1e-9 {
		t.Fatalf("anisotropy = %g", e.Anisotropy())
	}
	wantVol := 4 * math.Pi / 3 * 2.0 * 0.5 * 0.1
	if math.Abs(e.Volume()-wantVol) > 1e-12 {
		t.Fatalf("volume = %g", e.Volume())
	}
	if e.String() == "" {
		t.Fatal("String")
	}
}

func TestAtomEllipsoidBounds(t *testing.T) {
	s := anisotropicState()
	if _, err := AtomEllipsoid(s, 2); err == nil {
		t.Fatal("out-of-range atom accepted")
	}
	if _, err := AtomEllipsoid(s, -1); err == nil {
		t.Fatal("negative atom accepted")
	}
}

func TestCorrelationZeroThenFilled(t *testing.T) {
	// Before any joint observation the atoms are uncorrelated; a shared
	// distance constraint fills in the off-diagonal block (§3's mechanism).
	s := filter.NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}}, 25)
	if c := Correlation(s, 0, 1); c != 0 {
		t.Fatalf("initial correlation %g", c)
	}
	batches, err := filter.MakeBatches([]constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.1},
	}, func(a int) int { return a }, 16)
	if err != nil {
		t.Fatal(err)
	}
	u := &filter.Updater{}
	if _, err := u.ApplyAll(s, batches); err != nil {
		t.Fatal(err)
	}
	c01 := Correlation(s, 0, 1)
	if c01 <= 0.1 {
		t.Fatalf("shared observation left correlation at %g", c01)
	}
	if Correlation(s, 0, 0) <= 0 {
		t.Fatal("self correlation")
	}
}

func TestRankAtoms(t *testing.T) {
	s := anisotropicState()
	// Atom 0 total variance 4.26, atom 1: 3.
	ranked := RankAtoms(s)
	if ranked[0] != 1 || ranked[1] != 0 {
		t.Fatalf("ranked = %v", ranked)
	}
}

func TestReport(t *testing.T) {
	s := anisotropicState()
	rep := Report(s, []string{"CA", "CB"}, 1)
	for _, want := range []string{"best determined", "worst determined", "CA", "CB", "anisotropy"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	// k clamps; empty state handled.
	if rep := Report(s, nil, 99); !strings.Contains(rep, "atom 0") {
		t.Fatalf("clamped report:\n%s", rep)
	}
	empty := filter.NewState(nil, 1)
	if !strings.Contains(Report(empty, nil, 3), "empty") {
		t.Fatal("empty report")
	}
}

func TestEllipsoidFromRealSolve(t *testing.T) {
	// After anchoring atom 0 tightly and leaving atom 1 on a single
	// distance, atom 1's ellipsoid must be elongated perpendicular to the
	// constraint direction (a distance pins the radial direction only).
	s := filter.NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}}, 9)
	batches, err := filter.MakeBatches([]constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.01},
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.05},
	}, func(a int) int { return a }, 16)
	if err != nil {
		t.Fatal(err)
	}
	u := &filter.Updater{}
	if _, err := u.ApplyAll(s, batches); err != nil {
		t.Fatal(err)
	}
	e, err := AtomEllipsoid(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Anisotropy() < 3 {
		t.Fatalf("distance-only atom should be strongly anisotropic: %v", e)
	}
	// The best-constrained direction (smallest σ) is the x (radial) axis.
	if math.Abs(math.Abs(e.Axes[2][0])-1) > 0.05 {
		t.Fatalf("minor axis %v not radial", e.Axes[2])
	}
}

func TestResidualByType(t *testing.T) {
	pos := []geom.Vec3{{0, 0, 0}, {4, 0, 0}, {4, 3, 0}}
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 4, Sigma: 0.5},          // satisfied
		constraint.Distance{I: 1, J: 2, Target: 4, Sigma: 0.5},          // off by 1 → 2σ
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 1}, Sigma: 1}, // off by 1σ in z
		constraint.Angle{I: 0, J: 1, K: 2, Target: math.Pi / 2, Sigma: 0.1},
		constraint.DistanceBound{I: 0, J: 2, Upper: 100, Sigma: 1}, // inactive
	}
	byType := ResidualByType(pos, cons)
	d := byType["distance"]
	if d.Scalars != 2 {
		t.Fatalf("distance scalars = %d", d.Scalars)
	}
	if math.Abs(d.Worst-2) > 1e-9 {
		t.Fatalf("distance worst = %g", d.Worst)
	}
	if math.Abs(d.RMS-math.Sqrt2) > 1e-9 {
		t.Fatalf("distance rms = %g", d.RMS)
	}
	p := byType["position"]
	if p.Scalars != 3 || math.Abs(p.Worst-1) > 1e-9 {
		t.Fatalf("position: %+v", p)
	}
	if a := byType["angle"]; a.Scalars != 1 || a.RMS > 1e-9 {
		t.Fatalf("angle: %+v", a)
	}
	if _, ok := byType["bound"]; ok {
		t.Fatal("inactive bound should not appear")
	}
	out := FormatResiduals(byType)
	for _, want := range []string{"distance", "angle", "position", "worst"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}

func TestResidualByTypeTorsionWraps(t *testing.T) {
	// A torsion observed at −175° with geometry at +175° is 10° off, not 350°.
	pos := []geom.Vec3{{0, 1, 0}, {0, 0, 0}, {1.5, 0, 0}, {1.5, -0.95, -0.1}}
	cur := geom.Dihedral(pos[0], pos[1], pos[2], pos[3])
	if cur < 2.8 {
		t.Fatalf("setup: dihedral %g", cur)
	}
	target := cur - 2*math.Pi + 10*math.Pi/180 // wraps to the other side
	byType := ResidualByType(pos, []constraint.Constraint{
		constraint.Torsion{I: 0, J: 1, K: 2, L: 3, Target: target, Sigma: 1},
	})
	tor := byType["torsion"]
	if tor.Worst > 0.2 {
		t.Fatalf("torsion residual %g did not wrap", tor.Worst)
	}
}
