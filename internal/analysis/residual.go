package analysis

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// TypeResidual summarizes how well one class of observations is satisfied.
type TypeResidual struct {
	Scalars int     // scalar observations of this type (active ones only)
	RMS     float64 // RMS of (z − h)/σ
	Worst   float64 // largest |z − h|/σ
}

// ResidualByType evaluates every constraint at the given conformation and
// groups the weighted residuals by constraint type — the first place to
// look when a solve stalls (e.g. distances satisfied but torsions fighting
// them). Inactive gated constraints are skipped.
func ResidualByType(pos []geom.Vec3, cons []constraint.Constraint) map[string]TypeResidual {
	sums := map[string]*struct {
		n     int
		sumSq float64
		worst float64
	}{}
	var local []geom.Vec3
	var h, z, s2 []float64
	var jac [][]float64
	for _, c := range cons {
		atoms := c.Atoms()
		dim := c.Dim()
		if cap(local) < len(atoms) {
			local = make([]geom.Vec3, len(atoms))
		}
		local = local[:len(atoms)]
		for k, a := range atoms {
			local[k] = pos[a]
		}
		if g, ok := c.(constraint.Gated); ok && !g.Active(local) {
			continue
		}
		if cap(h) < dim {
			h = make([]float64, dim)
			z = make([]float64, dim)
			s2 = make([]float64, dim)
		}
		h, z, s2 = h[:dim], z[:dim], s2[:dim]
		for len(jac) < dim {
			jac = append(jac, nil)
		}
		for d := 0; d < dim; d++ {
			if cap(jac[d]) < 3*len(atoms) {
				jac[d] = make([]float64, 3*len(atoms))
			}
			jac[d] = jac[d][:3*len(atoms)]
		}
		c.Eval(local, h, jac[:dim])
		c.Observed(z, s2)
		var wrap []bool
		if p, ok := c.(constraint.Periodic); ok {
			wrap = p.PeriodicRows()
		}
		key := typeName(c)
		agg := sums[key]
		if agg == nil {
			agg = &struct {
				n     int
				sumSq float64
				worst float64
			}{}
			sums[key] = agg
		}
		for d := 0; d < dim; d++ {
			if s2[d] <= 0 {
				continue
			}
			diff := z[d] - h[d]
			if wrap != nil && wrap[d] {
				diff = math.Mod(diff+3*math.Pi, 2*math.Pi) - math.Pi
			}
			w := math.Abs(diff) / math.Sqrt(s2[d])
			agg.n++
			agg.sumSq += w * w
			if w > agg.worst {
				agg.worst = w
			}
		}
	}
	out := make(map[string]TypeResidual, len(sums))
	for k, agg := range sums {
		tr := TypeResidual{Scalars: agg.n, Worst: agg.worst}
		if agg.n > 0 {
			tr.RMS = math.Sqrt(agg.sumSq / float64(agg.n))
		}
		out[k] = tr
	}
	return out
}

func typeName(c constraint.Constraint) string {
	switch c.(type) {
	case constraint.Distance:
		return "distance"
	case constraint.Angle:
		return "angle"
	case constraint.Torsion:
		return "torsion"
	case constraint.Position:
		return "position"
	case constraint.DistanceBound:
		return "bound"
	default:
		return fmt.Sprintf("%T", c)
	}
}

// FormatResiduals renders the per-type residual table, largest RMS first.
func FormatResiduals(byType map[string]TypeResidual) string {
	keys := make([]string, 0, len(byType))
	for k := range byType {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return byType[keys[i]].RMS > byType[keys[j]].RMS })
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %10s\n", "type", "scalars", "rms(σ)", "worst(σ)")
	for _, k := range keys {
		tr := byType[k]
		fmt.Fprintf(&b, "%-10s %8d %10.3f %10.3f\n", k, tr.Scalars, tr.RMS, tr.Worst)
	}
	return b.String()
}
