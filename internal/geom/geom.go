// Package geom provides the small 3-D vector and transform toolkit used by
// the molecule generators and measurement models.
package geom

import "math"

// Vec3 is a point or direction in 3-space.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v[0], s * v[1], s * v[2]} }

// Dot returns the inner product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v[1]*w[2] - v[2]*w[1],
		v[2]*w[0] - v[0]*w[2],
		v[0]*w[1] - v[1]*w[0],
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Unit returns v normalized to unit length; the zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// Dist returns the Euclidean distance between v and w.
func Dist(v, w Vec3) float64 { return v.Sub(w).Norm() }

// Angle returns the angle (radians, in [0, π]) at vertex b of the path
// a–b–c.
func Angle(a, b, c Vec3) float64 {
	u, w := a.Sub(b), c.Sub(b)
	cross := u.Cross(w).Norm()
	return math.Atan2(cross, u.Dot(w))
}

// Dihedral returns the torsion angle (radians, in (−π, π]) of the atom
// chain a–b–c–d about the b–c axis.
func Dihedral(a, b, c, d Vec3) float64 {
	b1 := b.Sub(a)
	b2 := c.Sub(b)
	b3 := d.Sub(c)
	n1 := b1.Cross(b2)
	n2 := b2.Cross(b3)
	m := n1.Cross(b2.Unit())
	return math.Atan2(m.Dot(n2), n1.Dot(n2))
}

// Mat3 is a 3×3 matrix in row-major order, used for rotations.
type Mat3 [9]float64

// Identity3 returns the 3×3 identity.
func Identity3() Mat3 { return Mat3{1, 0, 0, 0, 1, 0, 0, 0, 1} }

// MulVec applies the matrix to a vector.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0]*v[0] + m[1]*v[1] + m[2]*v[2],
		m[3]*v[0] + m[4]*v[1] + m[5]*v[2],
		m[6]*v[0] + m[7]*v[1] + m[8]*v[2],
	}
}

// Mul composes two rotations (m then applied after n: result = m·n).
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[3*i+k] * n[3*k+j]
			}
			r[3*i+j] = s
		}
	}
	return r
}

// RotZ returns the rotation by angle (radians) about the z axis.
func RotZ(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{c, -s, 0, s, c, 0, 0, 0, 1}
}

// RotY returns the rotation by angle (radians) about the y axis.
func RotY(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{c, 0, s, 0, 1, 0, -s, 0, c}
}

// RotX returns the rotation by angle (radians) about the x axis.
func RotX(angle float64) Mat3 {
	c, s := math.Cos(angle), math.Sin(angle)
	return Mat3{1, 0, 0, 0, c, -s, 0, s, c}
}

// Frame is a rigid-body transform: p ↦ R·p + T.
type Frame struct {
	R Mat3
	T Vec3
}

// IdentityFrame returns the identity transform.
func IdentityFrame() Frame { return Frame{R: Identity3()} }

// Apply transforms a point by the frame.
func (f Frame) Apply(p Vec3) Vec3 { return f.R.MulVec(p).Add(f.T) }

// Compose returns the frame equivalent to applying g first, then f.
func (f Frame) Compose(g Frame) Frame {
	return Frame{R: f.R.Mul(g.R), T: f.R.MulVec(g.T).Add(f.T)}
}
