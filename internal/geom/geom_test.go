package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randVec(rng *rand.Rand) Vec3 {
	return Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
}

func TestVecArithmetic(t *testing.T) {
	v := Vec3{1, 2, 3}
	w := Vec3{4, 5, 6}
	if v.Add(w) != (Vec3{5, 7, 9}) {
		t.Fatal("Add")
	}
	if w.Sub(v) != (Vec3{3, 3, 3}) {
		t.Fatal("Sub")
	}
	if v.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("Scale")
	}
	if v.Dot(w) != 32 {
		t.Fatal("Dot")
	}
}

func TestCross(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if x.Cross(y) != (Vec3{0, 0, 1}) {
		t.Fatal("x × y != z")
	}
	if y.Cross(x) != (Vec3{0, 0, -1}) {
		t.Fatal("y × x != −z")
	}
}

func TestNormUnitDist(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 || v.Norm2() != 25 {
		t.Fatal("Norm")
	}
	u := v.Unit()
	if !almost(u.Norm(), 1, 1e-15) {
		t.Fatal("Unit")
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Fatal("Unit of zero")
	}
	if Dist(Vec3{1, 1, 1}, Vec3{1, 1, 2}) != 1 {
		t.Fatal("Dist")
	}
}

func TestAngle(t *testing.T) {
	// Right angle at the origin.
	if !almost(Angle(Vec3{1, 0, 0}, Vec3{}, Vec3{0, 1, 0}), math.Pi/2, 1e-14) {
		t.Fatal("right angle")
	}
	// Collinear gives π.
	if !almost(Angle(Vec3{1, 0, 0}, Vec3{}, Vec3{-2, 0, 0}), math.Pi, 1e-14) {
		t.Fatal("straight angle")
	}
}

func TestDihedral(t *testing.T) {
	// A classic ±90° test: c–d rotated about the b–c (x) axis.
	a := Vec3{0, 1, 0}
	b := Vec3{0, 0, 0}
	c := Vec3{1, 0, 0}
	d := Vec3{1, 0, 1}
	got := Dihedral(a, b, c, d)
	if !almost(math.Abs(got), math.Pi/2, 1e-12) {
		t.Fatalf("dihedral = %g", got)
	}
	// Cis (same side) is 0.
	if !almost(Dihedral(a, b, c, Vec3{1, 1, 0}), 0, 1e-12) {
		t.Fatal("cis dihedral")
	}
	// Trans is π.
	if !almost(math.Abs(Dihedral(a, b, c, Vec3{1, -1, 0})), math.Pi, 1e-12) {
		t.Fatal("trans dihedral")
	}
}

func TestRotations(t *testing.T) {
	v := Vec3{1, 0, 0}
	got := RotZ(math.Pi / 2).MulVec(v)
	if !almost(got[0], 0, 1e-15) || !almost(got[1], 1, 1e-15) {
		t.Fatalf("RotZ: %v", got)
	}
	got = RotY(math.Pi / 2).MulVec(v)
	if !almost(got[2], -1, 1e-15) {
		t.Fatalf("RotY: %v", got)
	}
	got = RotX(math.Pi / 2).MulVec(Vec3{0, 1, 0})
	if !almost(got[2], 1, 1e-15) {
		t.Fatalf("RotX: %v", got)
	}
}

// Property: rotations preserve lengths and compose correctly.
func TestRotationPreservesNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randVec(rng)
		r := RotZ(rng.Float64() * 2 * math.Pi).Mul(RotY(rng.Float64() * 2 * math.Pi))
		return almost(r.MulVec(v).Norm(), v.Norm(), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (m·n)·v == m·(n·v).
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := RotX(rng.NormFloat64())
		n := RotZ(rng.NormFloat64())
		v := randVec(rng)
		left := m.Mul(n).MulVec(v)
		right := m.MulVec(n.MulVec(v))
		return left.Sub(right).Norm() < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameCompose(t *testing.T) {
	g := Frame{R: RotZ(math.Pi / 2), T: Vec3{1, 0, 0}}
	f := Frame{R: Identity3(), T: Vec3{0, 0, 5}}
	fg := f.Compose(g)
	p := Vec3{1, 0, 0}
	want := f.Apply(g.Apply(p))
	got := fg.Apply(p)
	if got.Sub(want).Norm() > 1e-14 {
		t.Fatalf("Compose: %v vs %v", got, want)
	}
}

func TestIdentityFrame(t *testing.T) {
	p := Vec3{1, 2, 3}
	if IdentityFrame().Apply(p) != p {
		t.Fatal("identity frame moved point")
	}
}

// Property: dihedral is invariant under rigid motion.
func TestDihedralRigidInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c, d := randVec(rng), randVec(rng), randVec(rng), randVec(rng)
		fr := Frame{
			R: RotZ(rng.Float64() * 6).Mul(RotX(rng.Float64() * 6)),
			T: randVec(rng),
		}
		d1 := Dihedral(a, b, c, d)
		d2 := Dihedral(fr.Apply(a), fr.Apply(b), fr.Apply(c), fr.Apply(d))
		if math.IsNaN(d1) || math.IsNaN(d2) {
			return true // degenerate random configuration
		}
		diff := math.Abs(d1 - d2)
		if diff > math.Pi {
			diff = 2*math.Pi - diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
