// Package superpose computes optimal rigid-body superposition of two
// conformations (Horn's quaternion method) and the superposed RMSD.
// Distance-only constraint sets determine a structure only up to a rigid
// motion (and sometimes a reflection), so comparing an estimate against a
// reference requires removing that gauge freedom first.
package superpose

import (
	"fmt"

	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/molecule"
)

// Transform is the optimal rigid motion mapping the moving set onto the
// fixed set: x ↦ R·(x − MovingCenter) + FixedCenter.
type Transform struct {
	R            geom.Mat3
	MovingCenter geom.Vec3
	FixedCenter  geom.Vec3
}

// Apply maps one point of the moving frame into the fixed frame.
func (t Transform) Apply(p geom.Vec3) geom.Vec3 {
	return t.R.MulVec(p.Sub(t.MovingCenter)).Add(t.FixedCenter)
}

// ApplyAll maps a whole conformation.
func (t Transform) ApplyAll(pos []geom.Vec3) []geom.Vec3 {
	out := make([]geom.Vec3, len(pos))
	for i, p := range pos {
		out[i] = t.Apply(p)
	}
	return out
}

// Fit returns the rotation + translation minimizing Σ‖T(movingᵢ) − fixedᵢ‖²
// over proper rotations (no reflection), using the eigendecomposition of
// Horn's 4×4 quaternion matrix.
func Fit(moving, fixed []geom.Vec3) (Transform, error) {
	if len(moving) != len(fixed) {
		return Transform{}, fmt.Errorf("superpose: %d vs %d points", len(moving), len(fixed))
	}
	if len(moving) == 0 {
		return Transform{R: geom.Identity3()}, nil
	}
	cm := centroid(moving)
	cf := centroid(fixed)

	// Cross-covariance S = Σ (m−cm)(f−cf)ᵀ.
	var s [3][3]float64
	for i := range moving {
		m := moving[i].Sub(cm)
		f := fixed[i].Sub(cf)
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				s[r][c] += m[r] * f[c]
			}
		}
	}

	// Horn's symmetric 4×4 matrix; its top eigenvector is the optimal unit
	// quaternion (w, x, y, z).
	n := mat.FromRows([][]float64{
		{s[0][0] + s[1][1] + s[2][2], s[1][2] - s[2][1], s[2][0] - s[0][2], s[0][1] - s[1][0]},
		{s[1][2] - s[2][1], s[0][0] - s[1][1] - s[2][2], s[0][1] + s[1][0], s[2][0] + s[0][2]},
		{s[2][0] - s[0][2], s[0][1] + s[1][0], -s[0][0] + s[1][1] - s[2][2], s[1][2] + s[2][1]},
		{s[0][1] - s[1][0], s[2][0] + s[0][2], s[1][2] + s[2][1], -s[0][0] - s[1][1] + s[2][2]},
	})
	_, v, err := mat.SymEigen(n)
	if err != nil {
		return Transform{}, fmt.Errorf("superpose: %w", err)
	}
	q := [4]float64{v.At(0, 0), v.At(1, 0), v.At(2, 0), v.At(3, 0)}
	return Transform{R: quatToRot(q), MovingCenter: cm, FixedCenter: cf}, nil
}

// RMSD returns the root-mean-square deviation of moving from fixed after
// optimal superposition.
func RMSD(moving, fixed []geom.Vec3) (float64, error) {
	t, err := Fit(moving, fixed)
	if err != nil {
		return 0, err
	}
	return molecule.RMSD(t.ApplyAll(moving), fixed), nil
}

func centroid(pos []geom.Vec3) geom.Vec3 {
	var c geom.Vec3
	for _, p := range pos {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pos)))
}

// quatToRot converts a unit quaternion (w, x, y, z) to a rotation matrix.
func quatToRot(q [4]float64) geom.Mat3 {
	w, x, y, z := q[0], q[1], q[2], q[3]
	return geom.Mat3{
		1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y),
		2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x),
		2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y),
	}
}
