package superpose

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"phmse/internal/geom"
	"phmse/internal/molecule"
)

func randCloud(rng *rand.Rand, n int) []geom.Vec3 {
	out := make([]geom.Vec3, n)
	for i := range out {
		out[i] = geom.Vec3{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
	}
	return out
}

func TestFitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := randCloud(rng, 10)
	tr, err := Fit(pts, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if tr.Apply(p).Sub(p).Norm() > 1e-10 {
			t.Fatal("identity fit moved points")
		}
	}
}

func TestFitRecoversRigidMotion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	fixed := randCloud(rng, 25)
	rot := geom.RotZ(1.1).Mul(geom.RotX(-0.6))
	shift := geom.Vec3{10, -4, 3}
	moving := make([]geom.Vec3, len(fixed))
	for i, p := range fixed {
		moving[i] = rot.MulVec(p).Add(shift)
	}
	r, err := RMSD(moving, fixed)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-9 {
		t.Fatalf("rigid motion not removed: RMSD %g", r)
	}
}

func TestRMSDLessThanUnsuperposed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	fixed := randCloud(rng, 30)
	moving := make([]geom.Vec3, len(fixed))
	rot := geom.RotY(0.8)
	for i, p := range fixed {
		moving[i] = rot.MulVec(p).Add(geom.Vec3{3, 3, 3}).Add(geom.Vec3{
			0.1 * rng.NormFloat64(), 0.1 * rng.NormFloat64(), 0.1 * rng.NormFloat64()})
	}
	super, err := RMSD(moving, fixed)
	if err != nil {
		t.Fatal(err)
	}
	raw := molecule.RMSD(moving, fixed)
	if super >= raw {
		t.Fatalf("superposed RMSD %g not below raw %g", super, raw)
	}
	if super > 0.3 {
		t.Fatalf("residual noise RMSD %g too large", super)
	}
}

// Property: the fitted rotation is proper (det = +1) and orthonormal, and
// the superposed RMSD is invariant under an extra rigid motion of the
// moving set.
func TestFitProperRotationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		fixed := randCloud(rng, n)
		moving := randCloud(rng, n)
		tr, err := Fit(moving, fixed)
		if err != nil {
			return false
		}
		r := tr.R
		det := r[0]*(r[4]*r[8]-r[5]*r[7]) - r[1]*(r[3]*r[8]-r[5]*r[6]) + r[2]*(r[3]*r[7]-r[4]*r[6])
		if math.Abs(det-1) > 1e-8 {
			return false
		}
		base, err := RMSD(moving, fixed)
		if err != nil {
			return false
		}
		rot := geom.RotZ(rng.Float64() * 6)
		shifted := make([]geom.Vec3, n)
		for i, p := range moving {
			shifted[i] = rot.MulVec(p).Add(geom.Vec3{1, 2, 3})
		}
		again, err := RMSD(shifted, fixed)
		if err != nil {
			return false
		}
		return math.Abs(base-again) < 1e-7*(1+base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFitLengthMismatch(t *testing.T) {
	if _, err := Fit(make([]geom.Vec3, 2), make([]geom.Vec3, 3)); err == nil {
		t.Fatal("no error")
	}
}

func TestFitEmpty(t *testing.T) {
	tr, err := Fit(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Apply(geom.Vec3{1, 2, 3}) != (geom.Vec3{1, 2, 3}) {
		t.Fatal("empty fit not identity")
	}
}

func TestApplyAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := randCloud(rng, 5)
	tr := Transform{R: geom.RotZ(0.5), FixedCenter: geom.Vec3{1, 0, 0}}
	out := tr.ApplyAll(pts)
	if len(out) != len(pts) {
		t.Fatal("length")
	}
	for i := range pts {
		if out[i] != tr.Apply(pts[i]) {
			t.Fatal("mismatch")
		}
	}
}
