// Package faultinject is the fault-injection harness: a process-global
// hook registry that tests install to force numerical failures (an
// indefinite innovation covariance, a NaN in the state) at a chosen
// node/batch/cycle, or to crash a serving worker mid-job. In production
// nothing is installed and every injection site reduces to a single
// atomic nil check, so the hooks cost nothing on the hot path.
//
// Hooks are global to the process; tests that install them must not run
// in parallel with each other and should clear them with Reset (typically
// via t.Cleanup). Hook functions may be called concurrently from solver
// goroutines and must be race-free.
package faultinject

import "sync/atomic"

// Site identifies a solver-level injection point: which solve (by its
// fault tag, normally the problem name), which hierarchy node, which
// batch, and which constraint-application cycle is asking.
type Site struct {
	// Tag labels the solve; the estimator sets it to the problem name, so
	// a hook can poison one job while concurrent jobs stay healthy.
	Tag string
	// Node is the hierarchy node name ("" in flat mode).
	Node string
	// Batch is the batch index within the node.
	Batch int
	// Cycle is the 1-based constraint-application cycle.
	Cycle int
}

// Hooks is one installed set of fault injectors. Nil fields are inactive.
type Hooks struct {
	// Cholesky, when it returns true, forces the innovation-covariance
	// factorization at the site to fail as if S were indefinite —
	// exercising the ridge-retry and quarantine paths.
	Cholesky func(Site) bool
	// Poison, when it returns true, injects a NaN into the state right
	// after the batch at the site has been applied — exercising the
	// non-finite rollback path.
	Poison func(Site) bool
	// BeforeAttempt is called by the serving layer immediately before
	// each solve attempt of a job, with the problem's fault tag and the
	// 0-based attempt number. A hook that panics simulates a worker
	// crash; a hook that flips shared state can make a failure transient
	// (fail attempt 0, heal attempt 1).
	BeforeAttempt func(tag string, attempt int)
}

var active atomic.Pointer[Hooks]

// Installed returns the active hook set, or nil when fault injection is
// off — the production state, one atomic load.
func Installed() *Hooks { return active.Load() }

// Set installs a hook set, replacing any previous one.
func Set(h *Hooks) { active.Store(h) }

// Reset uninstalls all hooks.
func Reset() { active.Store(nil) }
