// Package cluster implements the router's replicated control plane: an
// epoch-stamped membership document and the anti-entropy gossip loop
// that converges every router replica onto the same document without a
// coordinator.
//
// The document is a last-writer-wins register. Each mutation happens at
// exactly one replica, under that replica's admin mutex: the replica
// copies its current document, bumps Epoch by one, stamps itself as
// Origin, applies the edit, and recomputes the content hash. Merges pick
// the higher epoch; equal epochs with different content (two replicas
// mutated concurrently from the same base) are broken deterministically
// by comparing hashes, so both sides pick the same winner and the losing
// mutation must be re-issued. That trade — one admin mutation can lose a
// true concurrent race — buys a protocol with no quorums and no external
// store, which fits the admin plane's human-paced mutation rate.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"phmse/internal/encode"
)

// Normalize puts a document into canonical form: members sorted by Base.
// Hashing and comparison assume canonical form, so every path that edits
// Members must normalize before stamping.
func Normalize(doc *encode.ClusterDoc) {
	sort.Slice(doc.Members, func(i, j int) bool {
		return doc.Members[i].Base < doc.Members[j].Base
	})
}

// HashDoc computes the canonical content hash: hex sha-256 over the JSON
// encoding of the normalized document with the Hash field emptied.
func HashDoc(doc encode.ClusterDoc) string {
	doc.Members = append([]encode.ClusterMember(nil), doc.Members...)
	Normalize(&doc)
	doc.Hash = ""
	raw, err := json.Marshal(doc)
	if err != nil {
		// Marshal of a plain struct cannot fail; keep the signature
		// clean rather than threading an impossible error.
		panic(fmt.Sprintf("cluster: hashing membership doc: %v", err))
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:])
}

// Stamp normalizes the document and fills in its content hash.
func Stamp(doc *encode.ClusterDoc) {
	Normalize(doc)
	doc.Hash = HashDoc(*doc)
}

// Wins reports whether candidate beats incumbent under the merge rule:
// higher epoch wins; an equal epoch is broken by the lexically greater
// hash so concurrent mutations converge on one winner everywhere.
func Wins(candidate, incumbent encode.ClusterDoc) bool {
	if candidate.Epoch != incumbent.Epoch {
		return candidate.Epoch > incumbent.Epoch
	}
	return candidate.Hash > incumbent.Hash
}

// FindMember returns a pointer into doc.Members for the given base, or
// nil when absent.
func FindMember(doc *encode.ClusterDoc, base string) *encode.ClusterMember {
	for i := range doc.Members {
		if doc.Members[i].Base == base {
			return &doc.Members[i]
		}
	}
	return nil
}

// SetMember inserts or replaces the member with m.Base.
func SetMember(doc *encode.ClusterDoc, m encode.ClusterMember) {
	if cur := FindMember(doc, m.Base); cur != nil {
		*cur = m
		return
	}
	doc.Members = append(doc.Members, m)
}

// RemoveMember deletes the member with the given base; it reports
// whether anything was removed.
func RemoveMember(doc *encode.ClusterDoc, base string) bool {
	for i := range doc.Members {
		if doc.Members[i].Base == base {
			doc.Members = append(doc.Members[:i], doc.Members[i+1:]...)
			return true
		}
	}
	return false
}

// cloneDoc deep-copies a document so mutations never alias a published
// snapshot.
func cloneDoc(doc encode.ClusterDoc) encode.ClusterDoc {
	doc.Members = append([]encode.ClusterMember(nil), doc.Members...)
	return doc
}
