package cluster

import (
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"phmse/internal/encode"
)

// Config wires a Node to its replica identity, its peers, and the router
// callbacks that apply adopted documents.
type Config struct {
	// ReplicaID names this replica in Origin stamps, lease tokens and
	// gossip exchanges.
	ReplicaID string
	// Peers lists the other router replicas' base URLs.
	Peers []string
	// Interval is the gossip period. 0 picks the 1s default; a
	// negative value disables the background loop (exchanges still
	// happen via GossipNow and inbound HandleExchange — the test
	// mode).
	Interval time.Duration
	// Timeout bounds one peer exchange (default 3s).
	Timeout time.Duration
	// AuthToken, when set, is presented as a bearer token on outbound
	// exchanges (peers gate /cluster/v1/state behind their admin
	// token).
	AuthToken string
	// HTTPClient overrides the exchange transport (tests).
	HTTPClient *http.Client
	// OnAdopt fires after a remote document has replaced the local
	// one, outside the node lock. The router applies the new
	// membership there; it must tolerate being called for documents it
	// has already folded in.
	OnAdopt func()
	// OnConflict fires when an equal-epoch remote document lost the
	// tie-break and was rejected, outside the node lock.
	OnConflict func(remoteOrigin, remoteHash string)
	// Logf receives gossip diagnostics (default: discard).
	Logf func(format string, args ...any)
}

// Node holds one replica's copy of the membership document and runs the
// anti-entropy exchanges that keep it converged with its peers.
type Node struct {
	cfg Config

	mu    sync.Mutex
	doc   encode.ClusterDoc
	peers []*peerState

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	rounds    atomic.Int64
	inSync    atomic.Int64
	adopted   atomic.Int64
	conflicts atomic.Int64
	pushes    atomic.Int64
	failures  atomic.Int64
	rejected  atomic.Int64
}

type peerState struct {
	base        string
	lastContact time.Time
	lastErr     string
	inSync      bool
}

// New builds a node around an initial document. The document is stamped
// (normalized + hashed) as given — replicas booted from identical -shards
// flags start with identical epoch-0 documents and are in sync before the
// first exchange.
func New(cfg Config, initial encode.ClusterDoc) *Node {
	if cfg.Interval == 0 {
		cfg.Interval = time.Second
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 3 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: cfg.Timeout}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	Stamp(&initial)
	n := &Node{
		cfg:  cfg,
		doc:  initial,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		n.peers = append(n.peers, &peerState{base: p})
	}
	return n
}

// Start launches the background gossip loop. With no peers or a negative
// interval there is nothing to run and the loop exits immediately.
func (n *Node) Start() {
	go n.loop()
}

// Close stops the gossip loop and waits for it.
func (n *Node) Close() {
	close(n.stop)
	<-n.done
}

// Kick requests an immediate gossip round (coalesced). Admin mutations
// kick so changes propagate without waiting out the interval.
func (n *Node) Kick() {
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// Current returns a deep copy of the node's document.
func (n *Node) Current() encode.ClusterDoc {
	n.mu.Lock()
	defer n.mu.Unlock()
	return cloneDoc(n.doc)
}

// Mutate runs one CAS-style local mutation: fn receives a copy of the
// current document with the epoch already bumped and this replica
// stamped as origin, edits it in place, and returns whether to commit.
// On commit the stamped result becomes current and is returned with
// changed=true; on abort the original document is returned unchanged.
// The whole step runs under the node lock, so concurrent local mutations
// serialize and each consumes its own epoch.
func (n *Node) Mutate(fn func(doc *encode.ClusterDoc) bool) (encode.ClusterDoc, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	next := cloneDoc(n.doc)
	next.Epoch++
	next.Origin = n.cfg.ReplicaID
	if !fn(&next) {
		return cloneDoc(n.doc), false
	}
	Stamp(&next)
	n.doc = next
	return cloneDoc(next), true
}

// mergeOutcome classifies what merge did with a remote document.
type mergeOutcome int

const (
	mergeRejected        mergeOutcome = iota // bad hash: ignored
	mergeInSync                              // identical content
	mergeStale                               // local wins (higher epoch)
	mergeAdopted                             // remote wins (higher epoch)
	mergeAdoptedConflict                     // equal epoch, remote hash wins
	mergeKeptConflict                        // equal epoch, local hash wins
)

// merge folds a remote document into the node under the merge rule and
// fires the adopt/conflict callbacks outside the lock.
func (n *Node) merge(remote encode.ClusterDoc) mergeOutcome {
	if HashDoc(remote) != remote.Hash {
		n.rejected.Add(1)
		n.cfg.Logf("cluster: rejecting doc from %q: hash mismatch", remote.Origin)
		return mergeRejected
	}
	n.mu.Lock()
	out := mergeStale
	switch {
	case remote.Hash == n.doc.Hash && remote.Epoch == n.doc.Epoch:
		out = mergeInSync
	case remote.Epoch > n.doc.Epoch:
		n.doc = cloneDoc(remote)
		out = mergeAdopted
	case remote.Epoch == n.doc.Epoch && remote.Hash != n.doc.Hash:
		if Wins(remote, n.doc) {
			n.doc = cloneDoc(remote)
			out = mergeAdoptedConflict
		} else {
			out = mergeKeptConflict
		}
	}
	n.mu.Unlock()

	switch out {
	case mergeAdopted, mergeAdoptedConflict:
		n.adopted.Add(1)
		if out == mergeAdoptedConflict {
			n.conflicts.Add(1)
		}
		if n.cfg.OnAdopt != nil {
			n.cfg.OnAdopt()
		}
	case mergeKeptConflict:
		n.conflicts.Add(1)
		if n.cfg.OnConflict != nil {
			n.cfg.OnConflict(remote.Origin, remote.Hash)
		}
	}
	return out
}

// TryAcquireLease attempts to take or renew the repair lease. It
// succeeds when the lease is free, expired, or already held by this
// replica; on success the document is CAS-bumped with this replica as
// holder and a fresh expiry, fencing the acquisition at the new epoch.
func (n *Node) TryAcquireLease(now time.Time, ttl time.Duration) bool {
	_, ok := n.Mutate(func(doc *encode.ClusterDoc) bool {
		l := doc.Lease
		if l.Holder != "" && l.Holder != n.cfg.ReplicaID && now.UnixMilli() < l.ExpiresUnixMs {
			return false // a live lease someone else holds
		}
		doc.Lease = encode.RepairLease{
			Holder:        n.cfg.ReplicaID,
			Epoch:         doc.Epoch,
			ExpiresUnixMs: now.Add(ttl).UnixMilli(),
		}
		return true
	})
	return ok
}

// HoldsLease reports whether this replica holds a live repair lease.
func (n *Node) HoldsLease(now time.Time) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.doc.Lease
	return l.Holder == n.cfg.ReplicaID && now.UnixMilli() < l.ExpiresUnixMs
}

// Stats is a point-in-time snapshot for /metrics.
type Stats struct {
	ReplicaID string
	Epoch     uint64
	Origin    string
	Hash      string
	Members   int
	Lease     encode.RepairLease
	Peers     []encode.ClusterPeer
	Rounds    int64
	InSync    int64
	Adopted   int64
	Conflicts int64
	Pushes    int64
	Failures  int64
	Rejected  int64
}

// Snapshot assembles the node's stats.
func (n *Node) Snapshot() Stats {
	n.mu.Lock()
	st := Stats{
		ReplicaID: n.cfg.ReplicaID,
		Epoch:     n.doc.Epoch,
		Origin:    n.doc.Origin,
		Hash:      n.doc.Hash,
		Members:   len(n.doc.Members),
		Lease:     n.doc.Lease,
		Peers:     n.peerStatesLocked(),
	}
	n.mu.Unlock()
	st.Rounds = n.rounds.Load()
	st.InSync = n.inSync.Load()
	st.Adopted = n.adopted.Load()
	st.Conflicts = n.conflicts.Load()
	st.Pushes = n.pushes.Load()
	st.Failures = n.failures.Load()
	st.Rejected = n.rejected.Load()
	return st
}

// PeerStates reports the configured peers' last-exchange health.
func (n *Node) PeerStates() []encode.ClusterPeer {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peerStatesLocked()
}

func (n *Node) peerStatesLocked() []encode.ClusterPeer {
	out := make([]encode.ClusterPeer, 0, len(n.peers))
	for _, p := range n.peers {
		cp := encode.ClusterPeer{Base: p.base, LastError: p.lastErr, InSync: p.inSync}
		if !p.lastContact.IsZero() {
			cp.LastContactUnixMs = p.lastContact.UnixMilli()
		}
		out = append(out, cp)
	}
	return out
}

func (n *Node) peerOK(p *peerState, inSync bool) {
	n.mu.Lock()
	p.lastContact = time.Now()
	p.lastErr = ""
	p.inSync = inSync
	n.mu.Unlock()
}

func (n *Node) peerFail(p *peerState, err error) {
	n.failures.Add(1)
	n.mu.Lock()
	p.lastErr = err.Error()
	p.inSync = false
	n.mu.Unlock()
}
