package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"phmse/internal/encode"
)

// maxGossipBody bounds an exchange body; membership documents are tiny,
// so anything near this is a broken or hostile peer.
const maxGossipBody = 4 << 20

// loop runs the periodic anti-entropy rounds, with ±20% jitter so
// replicas sharing a boot instant don't exchange in lockstep, and a kick
// channel so admin mutations propagate without waiting out the interval.
func (n *Node) loop() {
	defer close(n.done)
	if len(n.peers) == 0 || n.cfg.Interval < 0 {
		<-n.stop
		return
	}
	for {
		d := n.cfg.Interval
		d += time.Duration(rand.Int63n(int64(d)/2+1)) - d/4
		t := time.NewTimer(d)
		select {
		case <-n.stop:
			t.Stop()
			return
		case <-t.C:
		case <-n.kick:
			t.Stop()
		}
		ctx, cancel := context.WithTimeout(context.Background(), n.cfg.Timeout*time.Duration(len(n.peers)+1))
		n.GossipNow(ctx)
		cancel()
	}
}

// GossipNow runs one synchronous anti-entropy round against every peer:
// digest probe, pull (adopt the peer's winning document), or push (send
// ours when it wins). By return, any document adopted from a peer has
// been applied via OnAdopt, and any peer our document beat has received
// and merged it — "within one gossip round" is literal.
func (n *Node) GossipNow(ctx context.Context) {
	n.rounds.Add(1)
	for _, p := range n.peers {
		n.exchange(ctx, p)
	}
}

// exchange runs the push/pull protocol with one peer.
func (n *Node) exchange(ctx context.Context, p *peerState) {
	local := n.Current()
	resp, err := n.post(ctx, p, encode.GossipRequest{From: n.cfg.ReplicaID, Digest: local.Hash})
	if err != nil {
		n.peerFail(p, err)
		return
	}
	if resp.InSync {
		n.inSync.Add(1)
		n.peerOK(p, true)
		return
	}
	if resp.Doc == nil {
		n.peerFail(p, fmt.Errorf("peer %s: out-of-sync response carried no document", p.base))
		return
	}
	switch n.merge(*resp.Doc) {
	case mergeAdopted, mergeAdoptedConflict, mergeInSync:
		// Pulled the peer's state (or discovered we already converged
		// racing another round); nothing to push.
		n.peerOK(p, true)
		return
	case mergeRejected:
		n.peerFail(p, fmt.Errorf("peer %s: document failed hash validation", p.base))
		return
	}
	// Local document wins: push it so the peer converges this round.
	local = n.Current()
	n.pushes.Add(1)
	resp, err = n.post(ctx, p, encode.GossipRequest{From: n.cfg.ReplicaID, Digest: local.Hash, Doc: &local})
	if err != nil {
		n.peerFail(p, err)
		return
	}
	if resp.Doc != nil {
		// The peer answered with yet another document (it raced a
		// mutation); fold it in rather than waiting a round.
		n.merge(*resp.Doc)
	}
	n.peerOK(p, resp.InSync || resp.Adopted)
}

// HandleExchange serves the receiving half of POST /cluster/v1/state: a
// digest probe answers in-sync or returns our document (pull); a push
// merges the sender's document and answers with ours when the sides
// still differ.
func (n *Node) HandleExchange(req encode.GossipRequest) encode.GossipResponse {
	resp := encode.GossipResponse{From: n.cfg.ReplicaID}
	if req.Doc != nil {
		out := n.merge(*req.Doc)
		resp.Adopted = out == mergeAdopted || out == mergeAdoptedConflict
	}
	local := n.Current()
	if req.Digest == local.Hash || (req.Doc != nil && req.Doc.Hash == local.Hash) {
		if req.Doc == nil {
			n.inSync.Add(1)
		}
		resp.InSync = true
		return resp
	}
	resp.Doc = &local
	return resp
}

// post sends one exchange request to a peer's /cluster/v1/state.
func (n *Node) post(ctx context.Context, p *peerState, body encode.GossipRequest) (encode.GossipResponse, error) {
	var out encode.GossipResponse
	raw, err := json.Marshal(body)
	if err != nil {
		return out, err
	}
	ctx, cancel := context.WithTimeout(ctx, n.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+"/cluster/v1/state", bytes.NewReader(raw))
	if err != nil {
		return out, err
	}
	req.Header.Set("Content-Type", "application/json")
	if n.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+n.cfg.AuthToken)
	}
	resp, err := n.cfg.HTTPClient.Do(req)
	if err != nil {
		return out, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, maxGossipBody))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("peer %s: exchange status %d", p.base, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxGossipBody)).Decode(&out); err != nil {
		return out, fmt.Errorf("peer %s: decoding exchange response: %w", p.base, err)
	}
	return out, nil
}
