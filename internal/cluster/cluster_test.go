package cluster

// The replicated membership document and its gossip protocol, exercised
// without a router: hashing and canonical form, the CAS mutation step,
// the merge rule (higher epoch wins, equal epochs tie-break by hash so
// both sides converge), the epoch-fenced repair lease, and two live
// nodes converging over httptest exchanges.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"phmse/internal/encode"
)

func memberBases(doc encode.ClusterDoc) []string {
	out := make([]string, 0, len(doc.Members))
	for _, m := range doc.Members {
		out = append(out, m.Base)
	}
	return out
}

// TestHashCanonicalForm: the hash is over canonical (sorted, hash-less)
// content, so member order and the stored Hash field don't affect it.
func TestHashCanonicalForm(t *testing.T) {
	a := encode.ClusterDoc{Epoch: 3, Origin: "ra", Members: []encode.ClusterMember{
		{Base: "http://s2"}, {Base: "http://s1", DrainState: "drained"},
	}}
	b := encode.ClusterDoc{Epoch: 3, Origin: "ra", Members: []encode.ClusterMember{
		{Base: "http://s1", DrainState: "drained"}, {Base: "http://s2"},
	}, Hash: "stale-stored-hash"}
	if HashDoc(a) != HashDoc(b) {
		t.Fatal("hash depends on member order or the stored hash field")
	}
	c := a
	c.Members = append([]encode.ClusterMember(nil), a.Members...)
	c.Members[0].Quarantines = 2
	if HashDoc(a) == HashDoc(c) {
		t.Fatal("hash ignores member content")
	}
	d := a
	d.Lease = encode.RepairLease{Holder: "ra", Epoch: 3, ExpiresUnixMs: 99}
	if HashDoc(a) == HashDoc(d) {
		t.Fatal("hash ignores the lease")
	}
}

// TestMutateCAS: each mutation consumes its own epoch, stamps origin and
// hash, and an aborted mutation leaves the document untouched.
func TestMutateCAS(t *testing.T) {
	n := New(Config{ReplicaID: "ra", Interval: -1}, encode.ClusterDoc{
		Members: []encode.ClusterMember{{Base: "http://s1"}},
	})
	doc, changed := n.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s2"})
		return true
	})
	if !changed || doc.Epoch != 1 || doc.Origin != "ra" || len(doc.Members) != 2 {
		t.Fatalf("mutate = %+v changed=%v", doc, changed)
	}
	if doc.Hash != HashDoc(doc) {
		t.Fatal("mutate left a stale hash")
	}
	// Canonical order is maintained on insert.
	if got := memberBases(doc); got[0] != "http://s1" || got[1] != "http://s2" {
		t.Fatalf("members not canonical: %v", got)
	}
	doc2, changed := n.Mutate(func(doc *encode.ClusterDoc) bool { return false })
	if changed || doc2.Epoch != 1 {
		t.Fatalf("aborted mutate changed the doc: %+v changed=%v", doc2, changed)
	}
	if _, changed = n.Mutate(func(doc *encode.ClusterDoc) bool {
		return RemoveMember(doc, "http://s2")
	}); !changed {
		t.Fatal("remove aborted")
	}
	if cur := n.Current(); cur.Epoch != 2 || len(cur.Members) != 1 {
		t.Fatalf("after remove: %+v", cur)
	}
}

// TestMergeRule: higher epoch wins, stale docs are kept out, equal-epoch
// conflicts resolve by hash the same way on both sides, and a document
// whose hash doesn't match its content is rejected.
func TestMergeRule(t *testing.T) {
	mk := func(id string) *Node {
		return New(Config{ReplicaID: id, Interval: -1}, encode.ClusterDoc{
			Members: []encode.ClusterMember{{Base: "http://s1"}},
		})
	}
	a, b := mk("ra"), mk("rb")
	if a.Current().Hash != b.Current().Hash {
		t.Fatal("identical bootstraps disagree")
	}

	// One-sided mutation: higher epoch adopted, and the reverse direction
	// keeps the newer doc.
	a.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s2"})
		return true
	})
	if out := b.merge(a.Current()); out != mergeAdopted {
		t.Fatalf("b merge(a) = %v, want adopted", out)
	}
	if out := a.merge(encode.ClusterDoc{Epoch: 0, Hash: HashDoc(encode.ClusterDoc{})}); out != mergeStale {
		t.Fatalf("stale merge = %v, want kept-local", out)
	}
	if out := a.merge(b.Current()); out != mergeInSync {
		t.Fatalf("in-sync merge = %v", out)
	}

	// Concurrent conflicting mutations: same epoch, different content.
	// Whichever hash wins, both sides must end on the same document.
	a.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s3a"})
		return true
	})
	b.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s3b"})
		return true
	})
	da, db := a.Current(), b.Current()
	if da.Epoch != db.Epoch {
		t.Fatalf("setup: epochs differ (%d vs %d)", da.Epoch, db.Epoch)
	}
	outA, outB := a.merge(db), b.merge(da)
	if a.Current().Hash != b.Current().Hash {
		t.Fatalf("conflict did not converge: %q vs %q", a.Current().Hash, b.Current().Hash)
	}
	if !((outA == mergeAdoptedConflict && outB == mergeKeptConflict) ||
		(outA == mergeKeptConflict && outB == mergeAdoptedConflict)) {
		t.Fatalf("conflict outcomes = %v/%v, want one adopted + one kept", outA, outB)
	}

	// A tampered document is rejected regardless of epoch.
	bad := a.Current()
	bad.Epoch = 99
	if out := a.merge(bad); out != mergeRejected {
		t.Fatalf("tampered merge = %v, want rejected", out)
	}
	if a.rejected.Load() != 1 {
		t.Fatalf("rejected counter = %d", a.rejected.Load())
	}
}

// TestRepairLease: free leases are taken, live foreign leases refuse,
// expiry frees them, and the holder renews its own.
func TestRepairLease(t *testing.T) {
	n := New(Config{ReplicaID: "ra", Interval: -1}, encode.ClusterDoc{})
	now := time.Unix(1000, 0)
	ttl := time.Minute
	if !n.TryAcquireLease(now, ttl) {
		t.Fatal("free lease refused")
	}
	l := n.Current().Lease
	if l.Holder != "ra" || l.Epoch != n.Current().Epoch || l.ExpiresUnixMs != now.Add(ttl).UnixMilli() {
		t.Fatalf("lease = %+v", l)
	}
	if !n.HoldsLease(now.Add(30 * time.Second)) {
		t.Fatal("holder does not hold its live lease")
	}
	if n.HoldsLease(now.Add(2 * time.Minute)) {
		t.Fatal("expired lease still held")
	}
	// Renewal by the holder succeeds and re-fences at the new epoch.
	if !n.TryAcquireLease(now.Add(30*time.Second), ttl) {
		t.Fatal("holder renewal refused")
	}

	// A second replica adopting the doc cannot take the live lease, but
	// can after expiry.
	m := New(Config{ReplicaID: "rb", Interval: -1}, encode.ClusterDoc{})
	if out := m.merge(n.Current()); out != mergeAdopted {
		t.Fatalf("lease doc merge = %v", out)
	}
	if m.TryAcquireLease(now.Add(time.Minute), ttl) {
		t.Fatal("rb stole a live lease")
	}
	if !m.TryAcquireLease(now.Add(3*time.Minute), ttl) {
		t.Fatal("rb could not take an expired lease")
	}
	if got := m.Current().Lease.Holder; got != "rb" {
		t.Fatalf("lease holder = %q after takeover", got)
	}
}

// gossipPair wires two nodes together over real HTTP exchanges.
func gossipPair(t *testing.T) (*Node, *Node) {
	t.Helper()
	var a, b *Node
	handler := func(n **Node) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req encode.GossipRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			resp := (*n).HandleExchange(req)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(resp) //nolint:errcheck
		}
	}
	sa := httptest.NewServer(handler(&a))
	sb := httptest.NewServer(handler(&b))
	t.Cleanup(sa.Close)
	t.Cleanup(sb.Close)
	seed := encode.ClusterDoc{Members: []encode.ClusterMember{{Base: "http://s1"}}}
	a = New(Config{ReplicaID: "ra", Peers: []string{sb.URL}, Interval: -1}, seed)
	b = New(Config{ReplicaID: "rb", Peers: []string{sa.URL}, Interval: -1}, seed)
	return a, b
}

// TestGossipConvergence: a mutation at one node reaches the other within
// one round in either direction (pull when the remote is newer, push
// when the local doc wins), and in-sync rounds short-circuit on the
// digest.
func TestGossipConvergence(t *testing.T) {
	a, b := gossipPair(t)
	ctx := context.Background()

	// In-sync round: digest short-circuit, no documents move.
	a.GossipNow(ctx)
	if a.inSync.Load() == 0 || a.adopted.Load() != 0 || a.pushes.Load() != 0 {
		t.Fatalf("bootstrap round: inSync=%d adopted=%d pushes=%d",
			a.inSync.Load(), a.adopted.Load(), a.pushes.Load())
	}
	if ps := a.PeerStates(); len(ps) != 1 || !ps[0].InSync || ps[0].LastContactUnixMs == 0 {
		t.Fatalf("peer state = %+v", ps)
	}

	// Push: a mutates, a gossips, b converges in that same round.
	a.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s2"})
		return true
	})
	a.GossipNow(ctx)
	if a.Current().Hash != b.Current().Hash {
		t.Fatal("push round did not converge")
	}
	if a.pushes.Load() != 1 {
		t.Fatalf("pushes = %d, want 1", a.pushes.Load())
	}

	// Pull: b mutates, a initiates, a adopts in its own round.
	b.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s3"})
		return true
	})
	a.GossipNow(ctx)
	if a.Current().Hash != b.Current().Hash || a.adopted.Load() != 1 {
		t.Fatalf("pull round did not converge (adopted=%d)", a.adopted.Load())
	}
}

// TestGossipConflictConvergence: concurrent equal-epoch mutations at
// both nodes converge to the single hash-winning document after one
// round, with the conflict counted on both sides.
func TestGossipConflictConvergence(t *testing.T) {
	a, b := gossipPair(t)
	a.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s3a"})
		return true
	})
	b.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s3b"})
		return true
	})
	a.GossipNow(context.Background())
	da, db := a.Current(), b.Current()
	if da.Hash != db.Hash {
		t.Fatalf("conflict did not converge: %q vs %q", da.Hash, db.Hash)
	}
	if a.conflicts.Load() == 0 || b.conflicts.Load() == 0 {
		t.Fatalf("conflict counters = %d/%d, want both > 0", a.conflicts.Load(), b.conflicts.Load())
	}
	if len(da.Members) != 2 {
		t.Fatalf("winner holds %v, want the winning member only", memberBases(da))
	}
	if adopts := int(a.adopted.Load() + b.adopted.Load()); adopts != 1 {
		t.Fatalf("adoptions = %d, want exactly the losing side", adopts)
	}
}

// TestGossipLoopConverges: the background loop (no manual rounds)
// propagates a mutation between two live nodes.
func TestGossipLoopConverges(t *testing.T) {
	var a, b *Node
	handler := func(n **Node) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			var req encode.GossipRequest
			json.NewDecoder(r.Body).Decode(&req) //nolint:errcheck
			writeResp := (*n).HandleExchange(req)
			json.NewEncoder(w).Encode(writeResp) //nolint:errcheck
		}
	}
	sa := httptest.NewServer(handler(&a))
	sb := httptest.NewServer(handler(&b))
	defer sa.Close()
	defer sb.Close()
	seed := encode.ClusterDoc{Members: []encode.ClusterMember{{Base: "http://s1"}}}
	a = New(Config{ReplicaID: "ra", Peers: []string{sb.URL}, Interval: 10 * time.Millisecond}, seed)
	b = New(Config{ReplicaID: "rb", Peers: []string{sa.URL}, Interval: 10 * time.Millisecond}, seed)
	a.Start()
	b.Start()
	defer a.Close()
	defer b.Close()

	a.Mutate(func(doc *encode.ClusterDoc) bool {
		SetMember(doc, encode.ClusterMember{Base: "http://s2"})
		return true
	})
	a.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b.Current().Epoch == 1 && b.Current().Hash == a.Current().Hash {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("loop never converged: a=%d/%q b=%d/%q",
		a.Current().Epoch, a.Current().Hash, b.Current().Epoch, b.Current().Hash)
}
