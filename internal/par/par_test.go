package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestNewTeamRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0)
}

func TestTeamRunVisitsAllIDs(t *testing.T) {
	for _, p := range []int{1, 2, 7} {
		team := NewTeam(p)
		var seen sync.Map
		team.Run(func(id int) { seen.Store(id, true) })
		for id := 0; id < p; id++ {
			if _, ok := seen.Load(id); !ok {
				t.Fatalf("p=%d: worker %d never ran", p, id)
			}
		}
	}
}

func TestTeamForCoversRangeExactlyOnce(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		for _, n := range []int{0, 1, 5, 17, 100} {
			team := NewTeam(p)
			counts := make([]int32, n)
			team.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, c)
				}
			}
		}
	}
}

// Property: Chunk tiles [0, n) exactly with nearly equal chunk sizes.
func TestChunkProperty(t *testing.T) {
	f := func(seed int64) bool {
		if seed < 0 {
			seed = -(seed + 1)
		}
		n := int(seed%1000 + 1)
		p := int(seed%7 + 1)
		prev := 0
		minSz, maxSz := 1<<30, 0
		for id := 0; id < p; id++ {
			lo, hi := Chunk(n, p, id)
			if lo != prev || hi < lo {
				return false
			}
			sz := hi - lo
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
			prev = hi
		}
		return prev == n && maxSz-minSz <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSplit(t *testing.T) {
	team := NewTeam(10)
	a, b := team.Split(3)
	if a.Size() != 3 || b.Size() != 7 {
		t.Fatalf("Split sizes %d, %d", a.Size(), b.Size())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Split(10) of team of 10 did not panic")
		}
	}()
	team.Split(10)
}

func TestSplitN(t *testing.T) {
	team := NewTeam(9)
	subs := team.SplitN([]int{2, 3, 4})
	if len(subs) != 3 || subs[0].Size() != 2 || subs[1].Size() != 3 || subs[2].Size() != 4 {
		t.Fatal("SplitN sizes wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched SplitN did not panic")
		}
	}()
	team.SplitN([]int{4, 4})
}

func TestParallelRunsAll(t *testing.T) {
	var n int64
	Parallel(
		func() { atomic.AddInt64(&n, 1) },
		func() { atomic.AddInt64(&n, 10) },
		func() { atomic.AddInt64(&n, 100) },
	)
	if n != 111 {
		t.Fatalf("n = %d", n)
	}
	Parallel() // no thunks: must not hang
	Parallel(func() { atomic.AddInt64(&n, 1000) })
	if n != 1111 {
		t.Fatalf("n = %d", n)
	}
}

func TestBarrierPhases(t *testing.T) {
	const parties = 4
	const phases = 10
	b := NewBarrier(parties)
	if b.Parties() != parties {
		t.Fatal("Parties")
	}
	var counter int64
	var wg sync.WaitGroup
	wg.Add(parties)
	for w := 0; w < parties; w++ {
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				atomic.AddInt64(&counter, 1)
				b.WaitLeader(func() {
					// The leader observes every participant's increment.
					if got := atomic.LoadInt64(&counter); got != int64((ph+1)*parties) {
						t.Errorf("phase %d: counter %d", ph, got)
					}
				})
			}
		}()
	}
	wg.Wait()
	if counter != parties*phases {
		t.Fatalf("counter = %d", counter)
	}
}

func TestBarrierSingleParty(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 3; i++ {
		if !b.Wait() {
			t.Fatal("single-party barrier must always lead")
		}
	}
}

func TestBarrierExactlyOneLeader(t *testing.T) {
	const parties = 6
	b := NewBarrier(parties)
	var leaders int64
	var wg sync.WaitGroup
	wg.Add(parties)
	for w := 0; w < parties; w++ {
		go func() {
			defer wg.Done()
			if b.Wait() {
				atomic.AddInt64(&leaders, 1)
			}
		}()
	}
	wg.Wait()
	if leaders != 1 {
		t.Fatalf("leaders = %d, want 1", leaders)
	}
}

func BenchmarkTeamForOverhead(b *testing.B) {
	team := NewTeam(4)
	sink := make([]float64, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		team.For(len(sink), func(lo, hi int) {
			for j := lo; j < hi; j++ {
				sink[j]++
			}
		})
	}
}
