package par

import (
	"sync"
	"testing"
)

// TestTriChunkCoverage verifies that the triangular chunks tile [0, n)
// exactly: contiguous, disjoint, in order.
func TestTriChunkCoverage(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16, 97, 512} {
		for _, p := range []int{1, 2, 3, 4, 7, 16, 64} {
			prev := 0
			for id := 0; id < p; id++ {
				lo, hi := TriChunk(n, p, id)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d p=%d id=%d: chunk [%d,%d) after %d", n, p, id, lo, hi, prev)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d p=%d: chunks end at %d", n, p, prev)
			}
		}
	}
}

// TestTriChunkBalance asserts the per-worker lower-triangle area stays
// within 10% of the ideal n(n+1)/2p split — the equal-work property that
// plain row chunking lacks (its last worker carries ~2× the area). Pairs
// where a single row exceeds 10% of a chunk's area (n < 20p) are skipped:
// no contiguous-row partition can do better than row granularity.
func TestTriChunkBalance(t *testing.T) {
	for _, n := range []int{64, 97, 256, 510, 2048} {
		for _, p := range []int{2, 3, 4, 7, 8, 16} {
			if n < 20*p {
				continue
			}
			ideal := float64(n) * float64(n+1) / 2 / float64(p)
			for id := 0; id < p; id++ {
				lo, hi := TriChunk(n, p, id)
				// Area of rows [lo, hi) of the lower triangle.
				area := float64(hi)*float64(hi+1)/2 - float64(lo)*float64(lo+1)/2
				if dev := area/ideal - 1; dev > 0.10 || dev < -0.10 {
					t.Errorf("n=%d p=%d id=%d: area %.0f vs ideal %.0f (%.1f%% off)",
						n, p, id, area, ideal, 100*dev)
				}
			}
		}
	}
}

// TestForTriCoversOnce runs ForTri and checks every row is visited exactly
// once across workers.
func TestForTriCoversOnce(t *testing.T) {
	for _, n := range []int{1, 5, 33, 100} {
		for _, p := range []int{1, 2, 4, 7, 150} {
			var mu sync.Mutex
			seen := make([]int, n)
			NewTeam(p).ForTri(n, func(lo, hi int) {
				mu.Lock()
				defer mu.Unlock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d p=%d: row %d visited %d times", n, p, i, c)
				}
			}
		}
	}
}

func TestForTriEmpty(t *testing.T) {
	called := false
	NewTeam(4).ForTri(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}
