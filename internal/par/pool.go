package par

import (
	"context"
	"fmt"
	"sync"
)

// ProcPool is a shared budget of logical processors from which reusable
// teams are leased. It is the runtime counterpart of the paper's static
// processor-assignment lesson lifted to the serving layer: the pool bounds
// *processors in use*, not *jobs in flight*, so many small solves can run
// concurrently on small teams while a large solve still gets a wide one.
//
// Acquire is elastic: a caller asks for a desired team width and a minimum,
// and is granted whatever free share of the pool fits between the two —
// shrinking the grant under load instead of convoying behind full
// availability. Waiters are served FIFO so a wide request cannot starve.
// Team objects are recycled through a per-size free list.
type ProcPool struct {
	mu       sync.Mutex
	capacity int
	inUse    int
	leases   int
	waiters  []*procWaiter
	free     map[int][]*Team
}

// procWaiter is one blocked Acquire: its minimum grant and a wake signal.
type procWaiter struct {
	min   int
	ready chan struct{}
}

// NewProcPool returns a pool of capacity logical processors.
func NewProcPool(capacity int) *ProcPool {
	if capacity < 1 {
		panic(fmt.Sprintf("par: processor pool capacity %d < 1", capacity))
	}
	return &ProcPool{capacity: capacity, free: make(map[int][]*Team)}
}

// Capacity returns the pool's total processor budget.
func (p *ProcPool) Capacity() int {
	return p.capacity
}

// InUse returns the number of processors currently leased.
func (p *ProcPool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.inUse
}

// Leases returns the number of outstanding leases (teams in use).
func (p *ProcPool) Leases() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leases
}

// Waiting returns the number of blocked Acquire calls.
func (p *ProcPool) Waiting() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.waiters)
}

// Lease is a granted share of the pool: a reusable team of Size
// processors. Release returns the processors (and the team object) to the
// pool; the team must not be used afterwards.
type Lease struct {
	pool *ProcPool
	team *Team
	size int
	once sync.Once
}

// Team returns the leased processor team.
func (l *Lease) Team() *Team { return l.team }

// Size returns the width of the leased team.
func (l *Lease) Size() int { return l.size }

// Release returns the lease's processors to the pool. Safe to call more
// than once; only the first call has effect.
func (l *Lease) Release() {
	l.once.Do(func() { l.pool.release(l) })
}

// Acquire leases a team of between minProcs and want processors, blocking
// until at least minProcs are free (FIFO among waiters) or ctx ends. The
// grant is elastic: min(want, free) processors, never below minProcs.
// want and minProcs are clamped to [1, Capacity].
func (p *ProcPool) Acquire(ctx context.Context, want, minProcs int) (*Lease, error) {
	want, minProcs = p.clamp(want, minProcs)
	p.mu.Lock()
	if len(p.waiters) == 0 && p.capacity-p.inUse >= minProcs {
		l := p.grantLocked(want)
		p.mu.Unlock()
		return l, nil
	}
	w := &procWaiter{min: minProcs, ready: make(chan struct{}, 1)}
	p.waiters = append(p.waiters, w)
	p.mu.Unlock()

	for {
		select {
		case <-ctx.Done():
			p.abandon(w)
			return nil, ctx.Err()
		case <-w.ready:
			p.mu.Lock()
			if len(p.waiters) > 0 && p.waiters[0] == w && p.capacity-p.inUse >= w.min {
				p.waiters = p.waiters[1:]
				l := p.grantLocked(want)
				p.wakeLocked()
				p.mu.Unlock()
				return l, nil
			}
			// Spurious or raced wake-up: fall back to waiting. Re-signal
			// the head in case the race left a wake-up unconsumed.
			p.wakeLocked()
			p.mu.Unlock()
		}
	}
}

// TryAcquire is Acquire without blocking: it reports false when fewer than
// minProcs processors are free or other callers are already waiting.
func (p *ProcPool) TryAcquire(want, minProcs int) (*Lease, bool) {
	want, minProcs = p.clamp(want, minProcs)
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.waiters) > 0 || p.capacity-p.inUse < minProcs {
		return nil, false
	}
	return p.grantLocked(want), true
}

func (p *ProcPool) clamp(want, minProcs int) (int, int) {
	if minProcs < 1 {
		minProcs = 1
	}
	if minProcs > p.capacity {
		minProcs = p.capacity
	}
	if want < minProcs {
		want = minProcs
	}
	if want > p.capacity {
		want = p.capacity
	}
	return want, minProcs
}

// grantLocked carves min(want, free) processors into a lease. Caller holds
// p.mu and has verified free >= the waiter's minimum.
func (p *ProcPool) grantLocked(want int) *Lease {
	k := p.capacity - p.inUse
	if k > want {
		k = want
	}
	p.inUse += k
	p.leases++
	return &Lease{pool: p, team: p.teamLocked(k), size: k}
}

// teamLocked recycles a team of size k from the free list, or builds one.
func (p *ProcPool) teamLocked(k int) *Team {
	if ts := p.free[k]; len(ts) > 0 {
		t := ts[len(ts)-1]
		p.free[k] = ts[:len(ts)-1]
		return t
	}
	return &Team{size: k}
}

// release returns a lease's processors and recycles its team object.
func (p *ProcPool) release(l *Lease) {
	p.mu.Lock()
	p.inUse -= l.size
	p.leases--
	// Bound the free list so a burst of one width cannot pin team objects
	// forever (they are tiny; this is tidiness, not memory pressure).
	if ts := p.free[l.team.size]; len(ts) < 8 {
		p.free[l.team.size] = append(ts, l.team)
	}
	l.team = nil
	p.wakeLocked()
	p.mu.Unlock()
}

// abandon removes a waiter whose context ended, re-signalling the new head
// in case this waiter swallowed the wake-up meant for it.
func (p *ProcPool) abandon(w *procWaiter) {
	p.mu.Lock()
	for i, q := range p.waiters {
		if q == w {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	p.wakeLocked()
	p.mu.Unlock()
}

// wakeLocked signals the head waiter when its minimum currently fits.
// Caller holds p.mu.
func (p *ProcPool) wakeLocked() {
	if len(p.waiters) == 0 {
		return
	}
	if w := p.waiters[0]; p.capacity-p.inUse >= w.min {
		select {
		case w.ready <- struct{}{}:
		default:
		}
	}
}
