package par

import "sync"

// Barrier is a reusable synchronization barrier for a fixed number of
// participants. It supports the periodic global synchronization used by the
// dynamic processor re-grouping extension (paper §5): all processors meet at
// the barrier, work is re-estimated, and teams are re-formed.
type Barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

// NewBarrier returns a barrier for the given number of participants.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("par: barrier parties < 1")
	}
	b := &Barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// Wait blocks until all participants have called Wait, then releases them
// all and resets for the next phase. It returns true for exactly one caller
// per phase (the last arriver), which may perform phase-boundary work before
// other participants continue — callers needing that pattern should use
// WaitLeader instead.
func (b *Barrier) Wait() bool {
	return b.wait(nil)
}

// WaitLeader behaves like Wait, but the last participant to arrive runs
// leader (if non-nil) before any participant is released.
func (b *Barrier) WaitLeader(leader func()) bool {
	return b.wait(leader)
}

func (b *Barrier) wait(leader func()) bool {
	b.mu.Lock()
	phase := b.phase
	b.waiting++
	if b.waiting == b.parties {
		if leader != nil {
			leader()
		}
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return true
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
	return false
}

// Parties returns the number of participants the barrier synchronizes.
func (b *Barrier) Parties() int { return b.parties }
