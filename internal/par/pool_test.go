package par

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestProcPoolAccounting(t *testing.T) {
	p := NewProcPool(8)
	if p.Capacity() != 8 || p.InUse() != 0 || p.Leases() != 0 {
		t.Fatalf("fresh pool: cap %d inUse %d leases %d", p.Capacity(), p.InUse(), p.Leases())
	}
	l, err := p.Acquire(context.Background(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 4 || l.Team() == nil || l.Team().Size() != 4 {
		t.Fatalf("lease size %d team %v", l.Size(), l.Team())
	}
	if p.InUse() != 4 || p.Leases() != 1 {
		t.Fatalf("after acquire: inUse %d leases %d", p.InUse(), p.Leases())
	}
	l.Release()
	l.Release() // idempotent
	if p.InUse() != 0 || p.Leases() != 0 {
		t.Fatalf("after release: inUse %d leases %d", p.InUse(), p.Leases())
	}
}

func TestProcPoolElasticShrink(t *testing.T) {
	p := NewProcPool(8)
	wide, err := p.Acquire(context.Background(), 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Size() != 6 {
		t.Fatalf("wide grant %d, want 6", wide.Size())
	}
	// Only 2 free: an 8-wide request with min 1 shrinks to 2 immediately.
	small, err := p.Acquire(context.Background(), 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Size() != 2 {
		t.Fatalf("shrunk grant %d, want 2", small.Size())
	}
	wide.Release()
	small.Release()
}

func TestProcPoolBlocksBelowMin(t *testing.T) {
	p := NewProcPool(4)
	hold, _ := p.Acquire(context.Background(), 3, 1)
	done := make(chan *Lease)
	go func() {
		l, err := p.Acquire(context.Background(), 2, 2)
		if err != nil {
			t.Error(err)
		}
		done <- l
	}()
	select {
	case <-done:
		t.Fatal("Acquire(min=2) granted with only 1 free")
	case <-time.After(50 * time.Millisecond):
	}
	hold.Release()
	select {
	case l := <-done:
		if l.Size() != 2 {
			t.Fatalf("grant %d, want 2", l.Size())
		}
		l.Release()
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after release")
	}
}

func TestProcPoolFIFO(t *testing.T) {
	p := NewProcPool(4)
	hold, _ := p.Acquire(context.Background(), 4, 4)

	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l, err := p.Acquire(context.Background(), 4, 4)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.Release()
		}(i)
		// Wait for this waiter to queue before launching the next, so the
		// queue order is exactly [0 1 2].
		for p.Waiting() < i+1 {
			time.Sleep(time.Millisecond)
		}
	}
	hold.Release()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want FIFO [0 1 2]", order)
		}
	}
}

func TestProcPoolFIFOPreventsStarvation(t *testing.T) {
	// A wide request queued behind a busy pool must not be overtaken by a
	// later narrow request (Acquire checks the waiter queue before granting).
	p := NewProcPool(4)
	hold, _ := p.Acquire(context.Background(), 4, 4)

	wideGranted := make(chan struct{})
	go func() {
		l, err := p.Acquire(context.Background(), 4, 4)
		if err == nil {
			close(wideGranted)
			l.Release()
		}
	}()
	for p.Waiting() < 1 {
		time.Sleep(time.Millisecond)
	}

	narrowGranted := make(chan struct{})
	go func() {
		l, err := p.Acquire(context.Background(), 1, 1)
		if err == nil {
			close(narrowGranted)
			l.Release()
		}
	}()
	for p.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}

	hold.Release()
	select {
	case <-wideGranted:
	case <-time.After(time.Second):
		t.Fatal("wide waiter starved")
	}
	select {
	case <-narrowGranted:
	case <-time.After(time.Second):
		t.Fatal("narrow waiter never granted")
	}
}

func TestProcPoolTryAcquire(t *testing.T) {
	p := NewProcPool(4)
	l, ok := p.TryAcquire(3, 1)
	if !ok || l.Size() != 3 {
		t.Fatalf("TryAcquire: ok=%v size=%d", ok, l.Size())
	}
	if _, ok := p.TryAcquire(2, 2); ok {
		t.Fatal("TryAcquire granted below min")
	}
	s, ok := p.TryAcquire(4, 1)
	if !ok || s.Size() != 1 {
		t.Fatalf("TryAcquire shrink: ok=%v size=%d", ok, s.Size())
	}
	l.Release()
	s.Release()
}

func TestProcPoolContextCancel(t *testing.T) {
	p := NewProcPool(2)
	hold, _ := p.Acquire(context.Background(), 2, 2)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Acquire(ctx, 2, 2)
		errc <- err
	}()
	for p.Waiting() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled Acquire did not return")
	}
	if p.Waiting() != 0 {
		t.Fatalf("waiter left behind after cancel: %d", p.Waiting())
	}

	// A cancelled head waiter must pass the baton: a later waiter still
	// gets served when capacity frees up.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	got := make(chan *Lease, 1)
	go func() {
		l, err := p.Acquire(context.Background(), 1, 1)
		if err != nil {
			t.Error(err)
			return
		}
		got <- l
	}()
	go func() {
		p.Acquire(ctx2, 2, 2) //nolint:errcheck
	}()
	for p.Waiting() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel2()
	hold.Release()
	select {
	case l := <-got:
		l.Release()
	case <-time.After(time.Second):
		t.Fatal("baton not passed after head waiter cancelled")
	}
}

func TestProcPoolClamping(t *testing.T) {
	p := NewProcPool(4)
	// want and min above capacity clamp down; zero/negative clamp to 1.
	l, err := p.Acquire(context.Background(), 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != 4 {
		t.Fatalf("clamped grant %d, want 4", l.Size())
	}
	l.Release()
	l2, err := p.Acquire(context.Background(), 0, -3)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Size() != 1 {
		t.Fatalf("zero-want grant %d, want 1", l2.Size())
	}
	l2.Release()
}

func TestProcPoolTeamReuse(t *testing.T) {
	p := NewProcPool(4)
	l1, _ := p.Acquire(context.Background(), 3, 3)
	t1 := l1.Team()
	l1.Release()
	l2, _ := p.Acquire(context.Background(), 3, 3)
	if l2.Team() != t1 {
		t.Fatal("team object not recycled for same width")
	}
	l2.Release()
}

// Concurrent churn: leases never oversubscribe capacity. Run under -race.
func TestProcPoolConcurrentChurn(t *testing.T) {
	const capacity = 6
	p := NewProcPool(capacity)
	var peak, cur atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				want := 1 + (g+i)%4
				l, err := p.Acquire(context.Background(), want, 1)
				if err != nil {
					t.Error(err)
					return
				}
				n := cur.Add(int64(l.Size()))
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				// Teams must be usable: run a trivial parallel region.
				var sum atomic.Int64
				l.Team().Run(func(id int) { sum.Add(1) })
				if int(sum.Load()) != l.Size() {
					t.Errorf("team ran %d workers, lease size %d", sum.Load(), l.Size())
				}
				cur.Add(-int64(l.Size()))
				l.Release()
			}
		}(g)
	}
	wg.Wait()
	if peak.Load() > capacity {
		t.Fatalf("oversubscribed: peak %d > capacity %d", peak.Load(), capacity)
	}
	if p.InUse() != 0 || p.Leases() != 0 {
		t.Fatalf("pool not drained: inUse %d leases %d", p.InUse(), p.Leases())
	}
}
