// Package par provides the shared-memory parallel runtime used by the
// estimator: processor teams with fork-join execution, static loop
// partitioning, reusable barriers, and team splitting for assigning
// processor groups to subtrees of the structure hierarchy (the new axis of
// parallelism exposed by the hierarchical decomposition).
//
// A Team models a fixed group of processors, mirroring the paper's static
// processor-assignment scheme: every node of the structure hierarchy is
// computed by the team assigned to it, and a team may be split into disjoint
// sub-teams that proceed independently on disjoint subtrees.
package par

import (
	"fmt"
	"math"
	"sync"
)

// Team is a group of logical processors that execute fork-join parallel
// regions. The zero value is not usable; construct with NewTeam. A Team with
// size 1 executes everything inline with no synchronization, so sequential
// runs pay no parallel overhead.
type Team struct {
	size int
}

// NewTeam returns a team of p logical processors. p must be at least 1.
func NewTeam(p int) *Team {
	if p < 1 {
		panic(fmt.Sprintf("par: team size %d < 1", p))
	}
	return &Team{size: p}
}

// Size returns the number of logical processors in the team.
func (t *Team) Size() int { return t.size }

// Run executes body(id) for id = 0..Size()-1, one goroutine per member, and
// waits for all of them to finish. For a team of one the body runs inline.
func (t *Team) Run(body func(id int)) {
	if t.size == 1 {
		body(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(t.size - 1)
	for id := 1; id < t.size; id++ {
		go func(id int) {
			defer wg.Done()
			body(id)
		}(id)
	}
	body(0)
	wg.Wait()
}

// For partitions the index range [0, n) statically into Size() nearly equal
// contiguous chunks and executes body(lo, hi) for each chunk in parallel.
// Static contiguous partitioning preserves the data locality the paper's
// kernels rely on (each processor touches a contiguous block of rows).
func (t *Team) For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := t.size
	if p > n {
		p = n
	}
	if p == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(p - 1)
	for id := 1; id < p; id++ {
		lo, hi := Chunk(n, p, id)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	lo, hi := Chunk(n, p, 0)
	body(lo, hi)
	wg.Wait()
}

// ForTri partitions the row range [0, n) of an n×n lower triangle into
// Size() contiguous chunks of nearly equal *area* and executes body(lo, hi)
// for each chunk in parallel. Row i of the lower triangle holds i+1
// elements, so the plain equal-row split of For gives the last worker about
// twice the work of the first — exactly the load imbalance the paper's §4
// static assignment is designed to avoid. Chunks that round to empty are
// skipped.
func (t *Team) ForTri(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	p := t.size
	if p > n {
		p = n
	}
	if p == 1 {
		body(0, n)
		return
	}
	var wg sync.WaitGroup
	for id := 1; id < p; id++ {
		lo, hi := TriChunk(n, p, id)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	if lo, hi := TriChunk(n, p, 0); lo < hi {
		body(lo, hi)
	}
	wg.Wait()
}

// TriChunk returns the half-open row range [lo, hi) of the id-th of p
// contiguous chunks of the rows [0, n) of an n×n lower triangle, balanced by
// triangle area rather than row count. The boundary after chunk k is the row
// r whose prefix area r(r+1)/2 is closest to k/p of the total n(n+1)/2.
func TriChunk(n, p, id int) (lo, hi int) {
	return triBound(n, p, id), triBound(n, p, id+1)
}

// triBound inverts the prefix-area function r ↦ r(r+1)/2 at k/p of the total
// triangle area. It is nondecreasing in k, so chunks are well ordered.
func triBound(n, p, k int) int {
	if k <= 0 {
		return 0
	}
	if k >= p {
		return n
	}
	target := float64(n) * float64(n+1) / 2 * float64(k) / float64(p)
	r := int(math.Floor((math.Sqrt(1+8*target) - 1) / 2))
	if r < 0 {
		r = 0
	}
	if r > n {
		r = n
	}
	// The float inversion lands within one row of the optimum; pick the
	// boundary whose exact prefix area is closest to the target.
	area := func(r int) float64 { return float64(r) * float64(r+1) / 2 }
	for r < n && math.Abs(area(r+1)-target) < math.Abs(area(r)-target) {
		r++
	}
	return r
}

// Chunk returns the half-open range [lo, hi) of the id-th of p nearly equal
// contiguous chunks of [0, n). The first n%p chunks are one element longer.
func Chunk(n, p, id int) (lo, hi int) {
	q, r := n/p, n%p
	lo = id*q + min(id, r)
	hi = lo + q
	if id < r {
		hi++
	}
	return lo, hi
}

// Split divides the team into two disjoint sub-teams of sizes k and
// Size()−k. Both must end up non-empty.
func (t *Team) Split(k int) (*Team, *Team) {
	if k <= 0 || k >= t.size {
		panic(fmt.Sprintf("par: split %d of team of %d", k, t.size))
	}
	return &Team{size: k}, &Team{size: t.size - k}
}

// SplitN divides the team into len(sizes) disjoint sub-teams with the given
// sizes, which must be positive and sum to Size().
func (t *Team) SplitN(sizes []int) []*Team {
	total := 0
	teams := make([]*Team, len(sizes))
	for i, s := range sizes {
		if s < 1 {
			panic(fmt.Sprintf("par: sub-team size %d < 1", s))
		}
		total += s
		teams[i] = &Team{size: s}
	}
	if total != t.size {
		panic(fmt.Sprintf("par: sub-team sizes sum to %d, team has %d", total, t.size))
	}
	return teams
}

// Parallel runs the given thunks concurrently and waits for all of them.
// It is the fork-join primitive used to launch sibling subtrees.
func Parallel(thunks ...func()) {
	if len(thunks) == 0 {
		return
	}
	if len(thunks) == 1 {
		thunks[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(thunks) - 1)
	for _, f := range thunks[1:] {
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	thunks[0]()
	wg.Wait()
}
