package core

import (
	"context"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/molecule"
)

// baseProblem returns the anchored helix used throughout the warm-start
// tests: small enough to solve quickly, constrained enough to converge.
func baseProblem() *molecule.Problem {
	return molecule.WithAnchors(molecule.Helix(2), 4, 0.05)
}

// withExtraConstraints returns a new problem over the same molecule with a
// handful of additional distance measurements sampled from the reference
// geometry — the "new data arrived" half of an incremental-refinement
// cycle. The atom set and grouping are untouched, so the structure hash
// (and therefore posterior compatibility) is preserved.
func withExtraConstraints(p *molecule.Problem, pairs [][2]int, sigma float64) *molecule.Problem {
	cons := append([]constraint.Constraint(nil), p.Constraints...)
	for _, pr := range pairs {
		d := geom.Dist(p.Atoms[pr[0]].Pos, p.Atoms[pr[1]].Pos)
		cons = append(cons, constraint.Distance{I: pr[0], J: pr[1], Target: d, Sigma: sigma})
	}
	return &molecule.Problem{Name: p.Name + "+extra", Atoms: p.Atoms, Constraints: cons, Tree: p.Tree}
}

// extraPairs picks a few long-range pairs that are not already directly
// constrained in the helix problem.
func extraPairs(p *molecule.Problem) [][2]int {
	n := len(p.Atoms)
	return [][2]int{
		{0, n - 1},
		{1, n - 2},
		{2, n / 2},
		{n / 4, 3 * n / 4},
	}
}

// TestWarmStartFewerCycles is the warm-start acceptance check: solving the
// extended problem from the base problem's converged posterior must take
// strictly fewer cycles than solving it cold, in both organizations.
func TestWarmStartFewerCycles(t *testing.T) {
	for _, mode := range []Mode{Flat, Hierarchical} {
		t.Run(mode.String(), func(t *testing.T) {
			base := baseProblem()
			if mode == Flat {
				// The flat organization converges much more slowly; keep its
				// subtest on the one-base-pair helix.
				base = molecule.WithAnchors(molecule.Helix(1), 4, 0.05)
			}
			combined := withExtraConstraints(base, extraPairs(base), 0.1)
			cfg := Config{Mode: mode, MaxCycles: 500}

			est, err := New(base, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sol, err := est.Solve(molecule.Perturbed(base, 0.5, 17))
			if err != nil {
				t.Fatal(err)
			}
			if !sol.Converged {
				t.Fatalf("base solve did not converge: %d cycles", sol.Cycles)
			}
			post := sol.Posterior()

			coldEst, err := New(combined, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := coldEst.Solve(molecule.Perturbed(combined, 0.5, 17))
			if err != nil {
				t.Fatal(err)
			}
			if !cold.Converged {
				t.Fatalf("cold combined solve did not converge: %d cycles", cold.Cycles)
			}

			warmEst, err := New(combined, cfg)
			if err != nil {
				t.Fatal(err)
			}
			warm, err := warmEst.SolveFrom(context.Background(), post)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.Converged {
				t.Fatalf("warm combined solve did not converge: %d cycles", warm.Cycles)
			}
			if warm.Cycles >= cold.Cycles {
				t.Fatalf("warm start took %d cycles, cold solve %d — warm must be strictly fewer",
					warm.Cycles, cold.Cycles)
			}
			// The shortcut must not cost accuracy: the warm solution has to
			// satisfy the combined constraint set about as well as the cold one.
			if warm.Residual > 2*cold.Residual+0.5 {
				t.Fatalf("warm residual %.4f far above cold residual %.4f", warm.Residual, cold.Residual)
			}
			t.Logf("mode=%s: cold %d cycles (residual %.4f), warm %d cycles (residual %.4f)",
				mode, cold.Cycles, cold.Residual, warm.Cycles, warm.Residual)
		})
	}
}

// TestWarmStartContinuationNoCliff pins the continuation semantics of a
// warm solve: re-solving the *same* problem from its own converged
// posterior must re-converge in a handful of cycles. Under the earlier
// first-cycle-only design, whenever the first warm cycle's change landed
// just above Tol the diffuse covariance reset of cycle 2 kicked the
// near-converged state back onto the cold iteration's slow transient and
// the warm solve took longer than cold (39 vs 30 cycles on exactly this
// problem and seed).
func TestWarmStartContinuationNoCliff(t *testing.T) {
	base := baseProblem()
	cfg := Config{Mode: Hierarchical, MaxCycles: 500}
	est, err := New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb 0.4 with seed 17 is the combination whose first warm cycle
	// historically exceeded Tol (RMS change 0.0085 > 1e-3).
	cold, err := est.Solve(molecule.Perturbed(base, 0.4, 17))
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged {
		t.Fatalf("cold solve did not converge: %d cycles", cold.Cycles)
	}
	warmEst, err := New(base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := warmEst.SolveFrom(context.Background(), cold.Posterior())
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Converged {
		t.Fatalf("warm re-solve did not converge: %d cycles", warm.Cycles)
	}
	if warm.Cycles > 8 || warm.Cycles >= cold.Cycles {
		t.Fatalf("warm re-solve of the same problem took %d cycles (cold %d) — continuation should re-converge almost immediately",
			warm.Cycles, cold.Cycles)
	}
	if warm.Residual > 2*cold.Residual+0.5 {
		t.Fatalf("warm residual %.4f far above cold residual %.4f", warm.Residual, cold.Residual)
	}
	t.Logf("cold %d cycles (residual %.4f), warm re-solve %d cycles (residual %.4f)",
		cold.Cycles, cold.Residual, warm.Cycles, warm.Residual)
}

// TestPosteriorExportOrdering checks that Posterior() undoes the solver's
// internal atom permutation: exported positions and variances must agree
// with the solution's problem-order fields, and the covariance diagonal
// must reproduce the per-atom variances.
func TestPosteriorExportOrdering(t *testing.T) {
	p := baseProblem()
	est, err := New(p, Config{Mode: Hierarchical, MaxCycles: 500})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := est.Solve(molecule.Perturbed(p, 0.5, 17))
	if err != nil {
		t.Fatal(err)
	}
	post := sol.Posterior()
	if len(post.Positions) != len(p.Atoms) || len(post.CoordVariances) != 3*len(p.Atoms) {
		t.Fatalf("posterior sizes: %d positions, %d variances", len(post.Positions), len(post.CoordVariances))
	}
	for i := range post.Positions {
		if post.Positions[i] != sol.Positions[i] {
			t.Fatalf("atom %d: posterior position %v != solution position %v", i, post.Positions[i], sol.Positions[i])
		}
		sum := post.CoordVariances[3*i] + post.CoordVariances[3*i+1] + post.CoordVariances[3*i+2]
		if diff := sum - sol.Variances[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("atom %d: posterior variance sum %g != solution variance %g", i, sum, sol.Variances[i])
		}
		for c := 0; c < 3; c++ {
			if post.Cov.At(3*i+c, 3*i+c) != post.CoordVariances[3*i+c] {
				t.Fatalf("atom %d coord %d: covariance diagonal disagrees with CoordVariances", i, c)
			}
		}
	}
	// The exported covariance must be symmetric (it is a permutation of a
	// symmetric matrix).
	n := post.Cov.Rows
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if post.Cov.At(i, j) != post.Cov.At(j, i) {
				t.Fatalf("exported covariance not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

// TestSolveFromValidation rejects posteriors that do not fit the problem.
func TestSolveFromValidation(t *testing.T) {
	p := baseProblem()
	est, err := New(p, Config{Mode: Hierarchical})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := est.SolveFrom(ctx, nil); err == nil {
		t.Fatal("nil posterior accepted")
	}
	short := &Posterior{Positions: make([]geom.Vec3, len(p.Atoms)-1)}
	if _, err := est.SolveFrom(ctx, short); err == nil {
		t.Fatal("short posterior accepted")
	}
	badVars := &Posterior{
		Positions:      p.TruePositions(),
		CoordVariances: make([]float64, 5),
	}
	if _, err := est.SolveFrom(ctx, badVars); err == nil {
		t.Fatal("mis-sized variance vector accepted")
	}
}
