// Package core assembles the paper's method into a single estimator: given
// a structure-estimation problem, it solves for atomic coordinates and
// their uncertainty using either the flat organization (§2) or the parallel
// hierarchical organization (§3–4), with intra-node parallel matrix
// kernels, inter-node subtree parallelism under the static processor
// assignment heuristic, and optional automatic decomposition of flat
// problem specifications.
package core

import (
	"context"
	"fmt"

	"phmse/internal/analysis"
	"phmse/internal/conform"
	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/hier"
	"phmse/internal/molecule"
	"phmse/internal/par"
	"phmse/internal/sched"
	"phmse/internal/trace"
	"phmse/internal/workest"
)

// Mode selects the problem organization.
type Mode int

// The two organizations compared throughout the paper.
const (
	// Flat treats the molecule as one long vector of atoms (§2).
	Flat Mode = iota
	// Hierarchical decomposes the molecule recursively and applies every
	// constraint at the smallest containing node (§3).
	Hierarchical
)

func (m Mode) String() string {
	if m == Flat {
		return "flat"
	}
	return "hierarchical"
}

// Config configures an Estimator. The zero value selects the paper's
// defaults: hierarchical organization, batch dimension 16, one processor.
type Config struct {
	Mode Mode
	// Procs is the number of logical processors (goroutine team size).
	Procs int
	// BatchSize is the scalar constraint batch dimension (default 16).
	BatchSize int
	// MaxCycles bounds the constraint-application cycles (default 100).
	MaxCycles int
	// Tol is the RMS coordinate change declaring convergence (default 1e-3).
	Tol float64
	// InitVar is the per-coordinate prior variance in Å² (default 100).
	InitVar float64
	// Recorder, when non-nil, accumulates per-operation-class times.
	Recorder *trace.Collector
	// AutoDecompose ignores the problem's hierarchy and derives one by
	// constraint-graph partitioning (§5's automatic decomposition).
	AutoDecompose bool
	// LeafSize is the target leaf size (atoms) for automatic decomposition
	// (default 16).
	LeafSize int
	// MaxStep clamps each batch's state update to this infinity-norm trust
	// radius (Å) — the damping that keeps the iterated filter inside its
	// linearization range for strongly nonlinear observations. Zero selects
	// the 2 Å default; negative disables the clamp.
	MaxStep float64
	// Joseph selects the numerically robust Joseph-form covariance update
	// at roughly three times the m-m cost (see filter.Updater.Joseph).
	Joseph bool
	// GateSigma, when positive, enables innovation gating: observations
	// whose normalized innovation exceeds the gate are deweighted for the
	// current batch (see filter.Updater.GateSigma).
	GateSigma float64
	// OnCycle, when non-nil, is called after every completed
	// constraint-application cycle with the 1-based cycle number and the RMS
	// coordinate change over that cycle. The serving layer uses it for
	// cycle-level progress reporting; it must be fast and must not call back
	// into the estimator.
	OnCycle func(cycle int, rmsChange float64)
	// DivergeAfter is the divergence-watchdog patience: the solve aborts
	// with a typed solvererr.Diverged when the per-cycle RMS change grows
	// for this many consecutive cycles. Zero selects the default of 8;
	// negative disables the watchdog.
	DivergeAfter int
	// NoGuard disables numerical fault containment (ridge retries on an
	// indefinite innovation covariance, non-finite rollback, per-cycle
	// batch quarantine), restoring the raw fail-fast iteration.
	NoGuard bool
}

func (c Config) withDefaults() Config {
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = filter.DefaultBatchSize
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.InitVar <= 0 {
		c.InitVar = 100
	}
	if c.LeafSize <= 0 {
		c.LeafSize = 16
	}
	return c
}

// Estimator solves one problem instance. Create with New; an Estimator is
// safe for repeated Solve calls but not for concurrent use.
type Estimator struct {
	problem *molecule.Problem
	cfg     Config
	team    *par.Team
	root    *hier.Node // nil in flat mode
	plan    *hier.ExecPlan
}

// New builds an estimator for the problem. In hierarchical mode it
// constructs the structure tree (from the problem's own decomposition or
// automatically), assigns constraints to nodes, prepares batches, and
// computes the static processor assignment.
func New(p *molecule.Problem, cfg Config) (*Estimator, error) {
	e, _, err := NewWithPlan(p, cfg, nil)
	return e, err
}

// PlanArtifacts holds the planning work of estimator construction that
// depends only on the problem's topology (atoms, constraint graph,
// grouping) and the construction parameters — not on measurement values or
// starting positions. Repeated solves of the same topology can reuse them
// through NewWithPlan, skipping the decomposition and static-assignment
// passes; the serving layer's plan cache stores exactly this.
type PlanArtifacts struct {
	// Tree is the hierarchical grouping used (the problem's own or the
	// derived automatic decomposition).
	Tree *molecule.Group
	// Sketch is the tree-relative static processor assignment (nil when the
	// solve is sequential).
	Sketch *hier.PlanSketch
	// Procs, BatchSize and LeafSize record the construction parameters the
	// artifacts were computed for; NewWithPlan ignores artifacts built under
	// different parameters.
	Procs     int
	BatchSize int
	LeafSize  int
}

// compatible reports whether the artifacts were computed under the given
// effective (defaulted) construction parameters.
func (a *PlanArtifacts) compatible(cfg Config) bool {
	return a != nil && a.Tree != nil &&
		a.Procs == cfg.Procs && a.BatchSize == cfg.BatchSize && a.LeafSize == cfg.LeafSize
}

// NewWithPlan builds an estimator like New, but can reuse the
// topology-dependent planning artifacts of a previous construction. When
// art fits the configuration, the decomposition tree is taken from it and
// the static processor assignment is rebound from its sketch instead of
// being recomputed. It returns the artifacts of the estimator it built
// (fresh or reused) so the caller can cache them; callers are responsible
// for keying the cache by problem topology. In flat mode there is nothing
// to plan and the returned artifacts are nil.
func NewWithPlan(p *molecule.Problem, cfg Config, art *PlanArtifacts) (*Estimator, *PlanArtifacts, error) {
	cfg = cfg.withDefaults()
	e := &Estimator{problem: p, cfg: cfg, team: par.NewTeam(cfg.Procs)}
	if cfg.Mode == Flat {
		return e, nil, nil
	}
	if !art.compatible(cfg) {
		art = nil
	}
	tree := p.Tree
	if art != nil {
		tree = art.Tree
	} else if cfg.AutoDecompose || tree == nil {
		tree = hier.GraphPartition(len(p.Atoms), p.Constraints, cfg.LeafSize)
	}
	root, err := hier.Build(tree, p.Constraints)
	if err != nil {
		return nil, nil, fmt.Errorf("core: building hierarchy: %w", err)
	}
	if err := root.Prepare(cfg.BatchSize); err != nil {
		return nil, nil, fmt.Errorf("core: preparing batches: %w", err)
	}
	e.root = root
	if cfg.Procs > 1 {
		if art != nil && art.Sketch != nil {
			// Rebind the cached assignment; fall back to recomputing when the
			// sketch does not fit (e.g. the topology key collided).
			e.plan, err = hier.ApplySketch(root, art.Sketch)
			if err != nil {
				art = nil
			}
		}
		if e.plan == nil {
			work := sched.EstimateWork(root, workest.FlopModel{}, cfg.BatchSize)
			e.plan = sched.Assign(root, cfg.Procs, work)
			if err := e.plan.Validate(root, cfg.Procs); err != nil {
				return nil, nil, fmt.Errorf("core: processor assignment: %w", err)
			}
		}
	}
	if art == nil {
		art = &PlanArtifacts{
			Tree:      tree,
			Sketch:    e.plan.Sketch(root, cfg.Procs),
			Procs:     cfg.Procs,
			BatchSize: cfg.BatchSize,
			LeafSize:  cfg.LeafSize,
		}
	}
	return e, art, nil
}

// Root exposes the structure hierarchy (nil in flat mode), for inspection
// and for the virtual-machine experiments.
func (e *Estimator) Root() *hier.Node { return e.root }

// Plan exposes the static processor assignment (nil when sequential).
func (e *Estimator) Plan() *hier.ExecPlan { return e.plan }

// Problem returns the problem being solved.
func (e *Estimator) Problem() *molecule.Problem { return e.problem }

// InitialEstimate runs the low-resolution discrete conformational search
// (the paper's preprocessing step) to produce a starting structure.
func (e *Estimator) InitialEstimate(seed int64) []geom.Vec3 {
	return conform.Search(len(e.problem.Atoms), e.problem.Constraints, conform.Options{Seed: seed})
}

// Solution is a solved structure estimate.
type Solution struct {
	// Positions holds the estimated atom coordinates in problem order.
	Positions []geom.Vec3
	// Variances holds the summed coordinate variance of each atom — the
	// per-atom uncertainty measure the covariance matrix provides.
	Variances []float64
	// Cycles is the number of constraint-application cycles performed.
	Cycles int
	// Converged reports whether the RMS change fell below Tol.
	Converged bool
	// RMSChange is the RMS coordinate change over the final cycle.
	RMSChange float64
	// Residual is the RMS weighted constraint residual at the solution.
	Residual float64
	// Diagnostics reports the numerical fault-containment activity of the
	// solve: ridge retries, non-finite rollbacks, quarantined batches, and
	// the per-cycle RMS-change trajectory. Never nil.
	Diagnostics *filter.DiagSnapshot

	state *filter.State // full posterior, for covariance interpretation
	local []int         // problem atom → state atom index
	names []string      // atom names for reports
}

// Ellipsoid returns the positional uncertainty ellipsoid of an atom
// (problem ordering): the principal axes and standard deviations of its
// 3×3 covariance block.
func (s *Solution) Ellipsoid(atom int) (analysis.Ellipsoid, error) {
	if atom < 0 || atom >= len(s.local) {
		return analysis.Ellipsoid{}, fmt.Errorf("core: atom %d out of %d", atom, len(s.local))
	}
	return analysis.AtomEllipsoid(s.state, s.local[atom])
}

// Correlation returns the normalized cross-covariance coupling between two
// atoms: 0 when the data leaves their estimates independent, near 1 when
// it rigidly ties them together.
func (s *Solution) Correlation(a, b int) float64 {
	return analysis.Correlation(s.state, s.local[a], s.local[b])
}

// UncertaintyReport renders the covariance interpretation: overall σ plus
// the k best- and worst-determined atoms with their ellipsoids.
func (s *Solution) UncertaintyReport(k int) string {
	names := make([]string, s.state.Atoms())
	for i, li := range s.local {
		if i < len(s.names) {
			names[li] = s.names[i]
		}
	}
	return analysis.Report(s.state, names, k)
}

// Solve estimates the structure starting from init (problem atom order).
func (e *Estimator) Solve(init []geom.Vec3) (*Solution, error) {
	return e.SolveContext(context.Background(), init)
}

// SolveContext estimates the structure starting from init (problem atom
// order), honouring cancellation: the convergence driver checks ctx between
// constraint-application cycles and returns ctx.Err() (matched by
// errors.Is against context.Canceled or context.DeadlineExceeded) when the
// context ends before convergence. This is the entry point the serving
// layer uses for per-request deadlines and job cancellation.
func (e *Estimator) SolveContext(ctx context.Context, init []geom.Vec3) (*Solution, error) {
	if len(init) != len(e.problem.Atoms) {
		return nil, fmt.Errorf("core: init has %d atoms, problem has %d", len(init), len(e.problem.Atoms))
	}
	if e.cfg.Mode == Flat {
		return e.solveFlat(ctx, init, nil)
	}
	return e.solveHier(ctx, init, nil)
}

// Replan computes a fresh static processor assignment for the estimator's
// tree at a different processor count, for processor-sweep experiments.
func Replan(e *Estimator, procs int) *hier.ExecPlan {
	if e.root == nil || procs <= 1 {
		return nil
	}
	work := sched.EstimateWork(e.root, workest.FlopModel{}, e.cfg.BatchSize)
	return sched.Assign(e.root, procs, work)
}

// solveFlat runs the flat organization. A non-nil post warm-starts the
// solve: the state's first-cycle covariance is the posterior's (full when
// available, diagonal otherwise) instead of the isotropic prior.
func (e *Estimator) solveFlat(ctx context.Context, init []geom.Vec3, post *Posterior) (*Solution, error) {
	s := filter.NewState(init, e.cfg.InitVar)
	warm := false
	if post != nil {
		switch {
		case post.Cov != nil:
			s.C.CopyFrom(post.Cov)
			warm = true
		case post.CoordVariances != nil:
			s.C.Zero()
			for d, v := range post.CoordVariances {
				if v < minWarmVar {
					v = minWarmVar
				}
				s.C.Set(d, d, v)
			}
			warm = true
		}
	}
	res, err := filter.Solve(s, e.problem.Constraints, filter.SolveOptions{
		BatchSize:    e.cfg.BatchSize,
		MaxCycles:    e.cfg.MaxCycles,
		Tol:          e.cfg.Tol,
		InitVar:      e.cfg.InitVar,
		Team:         e.team,
		Rec:          e.cfg.Recorder,
		MaxStep:      e.cfg.MaxStep,
		Joseph:       e.cfg.Joseph,
		GateSigma:    e.cfg.GateSigma,
		Warm:         warm,
		Ctx:          ctx,
		OnCycle:      e.cfg.OnCycle,
		DivergeAfter: e.cfg.DivergeAfter,
		NoGuard:      e.cfg.NoGuard,
		FaultTag:     e.problem.Name,
	})
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Positions:   s.Positions(),
		Variances:   make([]float64, s.Atoms()),
		Cycles:      res.Cycles,
		Converged:   res.Converged,
		RMSChange:   res.RMSChange,
		Residual:    res.Residual,
		Diagnostics: res.Diag.Snapshot(),
		state:       s,
		local:       make([]int, s.Atoms()),
		names:       atomNames(e.problem),
	}
	for i := range sol.Variances {
		sol.Variances[i] = s.Variance(i)
		sol.local[i] = i
	}
	return sol, nil
}

func atomNames(p *molecule.Problem) []string {
	names := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		names[i] = a.Name
	}
	return names
}

// solveHier runs the hierarchical organization. Non-nil warmVars (one
// variance per coordinate, global atom order) warm-start the leaf
// assembly from a prior posterior's diagonal, carried forward pass to
// pass as a sequential continuation (see hier.Options.WarmVars).
func (e *Estimator) solveHier(ctx context.Context, init []geom.Vec3, warmVars []float64) (*Solution, error) {
	state, res, err := hier.Solve(e.root, init, hier.Options{
		BatchSize:    e.cfg.BatchSize,
		MaxCycles:    e.cfg.MaxCycles,
		Tol:          e.cfg.Tol,
		InitVar:      e.cfg.InitVar,
		Team:         e.team,
		Plan:         e.plan,
		Rec:          e.cfg.Recorder,
		MaxStep:      e.cfg.MaxStep,
		Joseph:       e.cfg.Joseph,
		GateSigma:    e.cfg.GateSigma,
		WarmVars:     warmVars,
		Ctx:          ctx,
		OnCycle:      e.cfg.OnCycle,
		DivergeAfter: e.cfg.DivergeAfter,
		NoGuard:      e.cfg.NoGuard,
		FaultTag:     e.problem.Name,
	})
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Positions:   append([]geom.Vec3(nil), init...),
		Variances:   make([]float64, len(e.problem.Atoms)),
		Cycles:      res.Cycles,
		Converged:   res.Converged,
		RMSChange:   res.RMSChange,
		Diagnostics: res.Diag.Snapshot(),
		state:       state,
		local:       make([]int, len(e.problem.Atoms)),
		names:       atomNames(e.problem),
	}
	for i, a := range e.root.Atoms {
		sol.Positions[a] = state.Pos(i)
		sol.Variances[a] = state.Variance(i)
		sol.local[a] = i
	}
	flat := filter.NewState(sol.Positions, 1)
	sol.Residual = filter.WeightedResidual(flat, e.problem.Constraints)
	return sol, nil
}
