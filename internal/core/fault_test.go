package core

import (
	"errors"
	"testing"

	"phmse/internal/faultinject"
	"phmse/internal/hier"
	"phmse/internal/molecule"
	"phmse/internal/solvererr"
)

// A hierarchical solve whose first cycles hit an indefinite batch in one
// leaf must quarantine it — naming the owning node in the record — retry
// it at later linearization points, and still converge.
func TestHierQuarantineRecordsNode(t *testing.T) {
	p := helixProblem(1)
	e, err := New(p, Config{Mode: Hierarchical, AutoDecompose: true, LeafSize: 8, MaxCycles: 60})
	if err != nil {
		t.Fatal(err)
	}
	var target string
	e.Root().Walk(func(n *hier.Node) {
		if target == "" && n.IsLeaf() {
			target = n.Name
		}
	})
	if target == "" {
		t.Fatal("no leaf node")
	}
	faultinject.Set(&faultinject.Hooks{
		Cholesky: func(s faultinject.Site) bool {
			return s.Tag == p.Name && s.Node == target && s.Batch == 0 && s.Cycle <= 2
		},
	})
	t.Cleanup(faultinject.Reset)

	sol, err := e.Solve(molecule.Perturbed(p, 0.3, 31))
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Diagnostics == nil || len(sol.Diagnostics.Quarantined) == 0 {
		t.Fatalf("diagnostics = %+v, want a quarantine record", sol.Diagnostics)
	}
	q := sol.Diagnostics.Quarantined[0]
	if q.Node != target || q.Batch != 0 {
		t.Fatalf("record = %+v, want node %q batch 0", q, target)
	}
	if q.FirstCycle != 1 || q.LastCycle != 2 || q.Cycles != 2 {
		t.Fatalf("record window = %+v, want cycles 1..2", q)
	}
	if sol.Residual > 5 {
		t.Fatalf("residual %g after quarantined solve", sol.Residual)
	}
}

// Pervasive injection across the whole tree leaves no applicable batch;
// the hierarchical driver must fail typed instead of spinning.
func TestHierNoProgressFailsTyped(t *testing.T) {
	faultinject.Set(&faultinject.Hooks{
		Cholesky: func(faultinject.Site) bool { return true },
	})
	t.Cleanup(faultinject.Reset)

	p := helixProblem(1)
	e, err := New(p, Config{Mode: Hierarchical, AutoDecompose: true, LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, err = e.Solve(molecule.Perturbed(p, 0.3, 31))
	if !errors.Is(err, solvererr.ErrIndefinite) {
		t.Fatalf("err = %v, want ErrIndefinite", err)
	}
	var ind *solvererr.Indefinite
	if !errors.As(err, &ind) || ind.Node == "" {
		t.Fatalf("typed error %#v should name the node", err)
	}
}

// Every solution carries diagnostics; a clean solve's are empty apart
// from the per-cycle RMS trajectory.
func TestSolutionDiagnosticsPopulated(t *testing.T) {
	p := helixProblem(1)
	for _, mode := range []Mode{Flat, Hierarchical} {
		e, err := New(p, Config{Mode: mode, AutoDecompose: true, LeafSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.Solve(molecule.Perturbed(p, 0.2, 7))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		d := sol.Diagnostics
		if d == nil {
			t.Fatalf("%v: nil diagnostics", mode)
		}
		if d.RidgeRetries != 0 || d.Rollbacks != 0 || len(d.Quarantined) != 0 {
			t.Fatalf("%v: clean solve reported containment: %+v", mode, d)
		}
		if len(d.RMSTrajectory) != sol.Cycles {
			t.Fatalf("%v: trajectory %d entries, %d cycles", mode, len(d.RMSTrajectory), sol.Cycles)
		}
	}
}
