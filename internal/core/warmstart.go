package core

// Warm-start re-solve: the estimator's constraint-application cycles are a
// fixed-point iteration, so nothing forces them to start from the
// perturbed-prior initialisation — they can continue from any prior
// posterior (x, C). That turns repeated estimation into incremental
// refinement: as new measurements arrive, re-solving the extended problem
// from the previous posterior re-converges in far fewer cycles than a cold
// solve, the standard sequential-assimilation pattern of Kalman updating.
// This file defines the exported posterior form and the SolveFrom entry
// that consumes it.

import (
	"context"
	"fmt"

	"phmse/internal/geom"
	"phmse/internal/mat"
)

// minWarmVar floors injected prior variances (Å²) so a perfectly
// determined coordinate cannot produce a singular flat-mode prior.
const minWarmVar = 1e-9

// Posterior is a structure estimate exported in problem atom order: the
// posterior mean positions, the covariance diagonal, and (optionally) the
// full covariance matrix. It is the interchange form between solves — what
// the serving layer's posterior store retains and what a warm-started
// re-solve consumes — independent of the organization (flat or
// hierarchical) that produced or consumes it.
type Posterior struct {
	// Positions is the posterior mean, one entry per problem atom.
	Positions []geom.Vec3
	// CoordVariances holds one variance per coordinate (3 per atom, laid
	// out x₀,y₀,z₀,x₁,…) — the covariance diagonal in problem order.
	CoordVariances []float64
	// Cov is the full posterior covariance (3n×3n, problem coordinate
	// order). Optional: flat-mode warm starts use it when present;
	// hierarchical warm starts use only CoordVariances, because the
	// hierarchy rebuilds cross-node covariance from its own constraints.
	Cov *mat.Mat
}

// Bytes returns the approximate heap footprint of the posterior, the
// accounting unit of the serving layer's bounded posterior store. The full
// covariance dominates: 8·(3n)² bytes for an n-atom problem.
func (p *Posterior) Bytes() int64 {
	b := int64(24 * len(p.Positions))
	b += int64(8 * len(p.CoordVariances))
	if p.Cov != nil {
		b += int64(8 * len(p.Cov.Data))
	}
	return b
}

// Posterior exports the solution's full posterior in problem atom order,
// permuting out of the solver's internal state ordering. The returned
// value shares nothing with the solution and is safe to retain.
func (s *Solution) Posterior() *Posterior {
	n := len(s.local)
	post := &Posterior{
		Positions:      append([]geom.Vec3(nil), s.Positions...),
		CoordVariances: make([]float64, 3*n),
		Cov:            mat.New(3*n, 3*n),
	}
	// perm maps problem coordinate -> state coordinate.
	perm := make([]int, 3*n)
	for a, la := range s.local {
		for c := 0; c < 3; c++ {
			perm[3*a+c] = 3*la + c
		}
	}
	for i := 0; i < 3*n; i++ {
		row := post.Cov.Row(i)
		srow := s.state.C.Row(perm[i])
		for j := 0; j < 3*n; j++ {
			row[j] = srow[perm[j]]
		}
		post.CoordVariances[i] = row[i]
	}
	return post
}

// SolveFrom estimates the structure starting from a supplied posterior
// instead of an initial position guess: the solve continues the
// assimilation from (x, C) — the full covariance in flat mode, its
// diagonal injected at the leaves in hierarchical mode — and never
// performs the cold solve's diffuse per-cycle covariance reset, so the
// uncertainty (and with it the step size) shrinks monotonically across
// cycles. The posterior must cover the estimator's problem
// atom-for-atom; constraint sets may differ freely, which is what makes
// incremental refinement work.
func (e *Estimator) SolveFrom(ctx context.Context, post *Posterior) (*Solution, error) {
	if post == nil {
		return nil, fmt.Errorf("core: nil posterior")
	}
	n := len(e.problem.Atoms)
	if len(post.Positions) != n {
		return nil, fmt.Errorf("core: posterior has %d atoms, problem has %d", len(post.Positions), n)
	}
	if post.CoordVariances != nil && len(post.CoordVariances) != 3*n {
		return nil, fmt.Errorf("core: posterior has %d coordinate variances, want %d", len(post.CoordVariances), 3*n)
	}
	if post.Cov != nil && (post.Cov.Rows != 3*n || post.Cov.Cols != 3*n) {
		return nil, fmt.Errorf("core: posterior covariance is %d×%d, want %d×%d",
			post.Cov.Rows, post.Cov.Cols, 3*n, 3*n)
	}
	if e.cfg.Mode == Flat {
		return e.solveFlat(ctx, post.Positions, post)
	}
	warmVars := post.CoordVariances
	if warmVars == nil && post.Cov != nil {
		warmVars = make([]float64, 3*n)
		for i := range warmVars {
			warmVars[i] = post.Cov.At(i, i)
		}
	}
	return e.solveHier(ctx, post.Positions, warmVars)
}
