package core

import (
	"math"
	"strings"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/molecule"
	"phmse/internal/trace"
)

func helixProblem(bp int) *molecule.Problem {
	// Anchor a few atoms to pin the gauge (global rigid motion) for
	// accuracy comparisons against the reference geometry.
	return molecule.WithAnchors(molecule.Helix(bp), 4, 0.05)
}

func TestModeString(t *testing.T) {
	if Flat.String() != "flat" || Hierarchical.String() != "hierarchical" {
		t.Fatal("Mode.String")
	}
}

func TestNewFlat(t *testing.T) {
	e, err := New(helixProblem(1), Config{Mode: Flat})
	if err != nil {
		t.Fatal(err)
	}
	if e.Root() != nil || e.Plan() != nil {
		t.Fatal("flat estimator should have no tree or plan")
	}
	if e.Problem() == nil {
		t.Fatal("Problem")
	}
}

func TestNewHierarchical(t *testing.T) {
	e, err := New(helixProblem(2), Config{Mode: Hierarchical, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if e.Root() == nil {
		t.Fatal("no tree")
	}
	if e.Plan() == nil {
		t.Fatal("no plan with 4 processors")
	}
	if got := e.Root().ScalarConstraints(); got != e.Problem().ScalarDim() {
		t.Fatalf("tree holds %d of %d scalar constraints", got, e.Problem().ScalarDim())
	}
}

func TestSolveInitLengthMismatch(t *testing.T) {
	e, err := New(helixProblem(1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(make([]geom.Vec3, 3)); err == nil {
		t.Fatal("no error for wrong init length")
	}
}

// Flat and hierarchical solves both recover the helix geometry from a
// perturbed start, and agree with each other.
func TestSolveRecoversHelixBothModes(t *testing.T) {
	p := helixProblem(1)
	init := molecule.Perturbed(p, 0.4, 17)
	truth := p.TruePositions()

	var sols []*Solution
	for _, mode := range []Mode{Flat, Hierarchical} {
		e, err := New(p, Config{Mode: mode, Tol: 1e-4, MaxCycles: 120})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.Solve(init)
		if err != nil {
			t.Fatal(err)
		}
		if !sol.Converged {
			t.Fatalf("%v did not converge: %+v", mode, sol)
		}
		if sol.Residual > 3 {
			t.Fatalf("%v residual %g", mode, sol.Residual)
		}
		rmsd := molecule.RMSD(sol.Positions, truth)
		if rmsd > 0.3 {
			t.Fatalf("%v RMSD to truth %g", mode, rmsd)
		}
		sols = append(sols, sol)
	}
	if d := molecule.RMSD(sols[0].Positions, sols[1].Positions); d > 0.2 {
		t.Fatalf("modes disagree by %g RMSD", d)
	}
}

func TestSolveParallelMatchesSequential(t *testing.T) {
	p := helixProblem(2)
	init := molecule.Perturbed(p, 0.3, 23)
	run := func(procs int) *Solution {
		e, err := New(p, Config{Mode: Hierarchical, Procs: procs, MaxCycles: 5})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.Solve(init)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	seq := run(1)
	par := run(6)
	if d := molecule.RMSD(seq.Positions, par.Positions); d > 1e-8 {
		t.Fatalf("parallel result differs by %g", d)
	}
	for i := range seq.Variances {
		if math.Abs(seq.Variances[i]-par.Variances[i]) > 1e-8 {
			t.Fatalf("variance %d differs", i)
		}
	}
}

func TestVariancesReflectDataQuality(t *testing.T) {
	// An atom with a tight anchor must end up with lower variance than a
	// distant unconstrained-but-for-distances atom.
	p := &molecule.Problem{Name: "var"}
	for i := 0; i < 4; i++ {
		p.Atoms = append(p.Atoms, molecule.Atom{Pos: geom.Vec3{float64(i) * 3, 0, 0}})
	}
	p.Constraints = []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.01},
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.1},
		constraint.Distance{I: 1, J: 2, Target: 3, Sigma: 0.1},
		constraint.Distance{I: 2, J: 3, Target: 3, Sigma: 2.0}, // sloppy data
	}
	e, err := New(p, Config{Mode: Flat, MaxCycles: 30})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := e.Solve(p.TruePositions())
	if err != nil {
		t.Fatal(err)
	}
	if sol.Variances[0] >= sol.Variances[3] {
		t.Fatalf("anchored atom variance %g not below sloppy atom %g",
			sol.Variances[0], sol.Variances[3])
	}
}

func TestAutoDecompose(t *testing.T) {
	p := helixProblem(1)
	e, err := New(p, Config{Mode: Hierarchical, AutoDecompose: true, LeafSize: 8, MaxCycles: 40, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if e.Root().IsLeaf() {
		t.Fatal("auto decomposition produced a single leaf")
	}
	sol, err := e.Solve(molecule.Perturbed(p, 0.3, 31))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Residual > 5 {
		t.Fatalf("auto-decomposed solve residual %g", sol.Residual)
	}
}

func TestProblemWithoutTreeGetsAutoDecomposition(t *testing.T) {
	p := helixProblem(1)
	p = &molecule.Problem{Name: p.Name, Atoms: p.Atoms, Constraints: p.Constraints, Tree: nil}
	e, err := New(p, Config{Mode: Hierarchical})
	if err != nil {
		t.Fatal(err)
	}
	if e.Root() == nil {
		t.Fatal("no tree derived")
	}
}

func TestRecorderPluggedThrough(t *testing.T) {
	var rec trace.Collector
	p := helixProblem(1)
	e, err := New(p, Config{Mode: Hierarchical, MaxCycles: 2, Recorder: &rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(p.TruePositions()); err != nil {
		t.Fatal(err)
	}
	if rec.Flops()[trace.MatMat] <= 0 {
		t.Fatal("recorder not plugged through")
	}
}

func TestInitialEstimateUsable(t *testing.T) {
	p := helixProblem(1)
	e, err := New(p, Config{Mode: Hierarchical, MaxCycles: 60, Tol: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	init := e.InitialEstimate(11)
	if len(init) != len(p.Atoms) {
		t.Fatal("wrong init length")
	}
	sol, err := e.Solve(init)
	if err != nil {
		t.Fatal(err)
	}
	// From a lattice start the solve must still reach a consistent shape.
	if sol.Residual > 10 {
		t.Fatalf("residual from conformational start: %g", sol.Residual)
	}
}

// End-to-end on the protein workload: angles, torsions and H-bonds with
// trust-region damping must converge and produce sensible uncertainty
// structure (backbone better determined than sidechains).
func TestSolveProteinWithDamping(t *testing.T) {
	p := molecule.WithAnchors(molecule.Protein(24, 7), 4, 0.05)
	e, err := New(p, Config{
		Mode: Hierarchical, Tol: 5e-4, MaxCycles: 150, InitVar: 0.25, MaxStep: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := e.Solve(molecule.Perturbed(p, 0.5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if sol.Residual > 0.5 {
		t.Fatalf("residual %g", sol.Residual)
	}
	if rmsd := molecule.RMSD(sol.Positions, p.TruePositions()); rmsd > 1.0 {
		t.Fatalf("RMSD %g", rmsd)
	}
	var bb, sc []float64
	for i, a := range p.Atoms {
		switch a.Name {
		case "N", "CA", "C", "O":
			bb = append(bb, sol.Variances[i])
		default:
			sc = append(sc, sol.Variances[i])
		}
	}
	if mean(bb) >= mean(sc) {
		t.Fatalf("backbone variance %g not below sidechain %g", mean(bb), mean(sc))
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// The trust region damps by measurement deweighting, which is a consistent
// Kalman update — so even an aggressively small radius must still converge
// (just more slowly), and must not corrupt the covariance bookkeeping.
func TestMaxStepDeweightingStaysConsistent(t *testing.T) {
	p := molecule.WithAnchors(molecule.Protein(24, 7), 4, 0.05)
	init := molecule.Perturbed(p, 0.5, 3)
	run := func(maxStep float64) *Solution {
		e, err := New(p, Config{Mode: Hierarchical, MaxCycles: 60, InitVar: 100, MaxStep: maxStep})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.Solve(init)
		if err != nil {
			t.Fatal(err)
		}
		return sol
	}
	free := run(-1)    // undamped
	tight := run(0.05) // forces heavy deweighting on nearly every batch
	if free.Residual > 0.05 {
		t.Fatalf("undamped solve failed: residual %g", free.Residual)
	}
	// A 0.05 Å radius makes progress in ~0.05 Å increments, so 60 cycles
	// cannot finish; it must still be clearly descending (the starting
	// residual is ~40) with no corruption.
	if tight.Residual > 1 {
		t.Fatalf("heavy deweighting broke consistency: residual %g", tight.Residual)
	}
	for i, v := range tight.Variances {
		if v < 0 {
			t.Fatalf("negative variance %g at atom %d under deweighting", v, i)
		}
	}
}

func TestSolutionCovarianceInterpretation(t *testing.T) {
	p := helixProblem(1)
	for _, mode := range []Mode{Flat, Hierarchical} {
		e, err := New(p, Config{Mode: mode, MaxCycles: 10})
		if err != nil {
			t.Fatal(err)
		}
		sol, err := e.Solve(p.TruePositions())
		if err != nil {
			t.Fatal(err)
		}
		ell, err := sol.Ellipsoid(0)
		if err != nil {
			t.Fatal(err)
		}
		// Ellipsoid σ² must be consistent with the scalar variance.
		sum := ell.Sigmas[0]*ell.Sigmas[0] + ell.Sigmas[1]*ell.Sigmas[1] + ell.Sigmas[2]*ell.Sigmas[2]
		if math.Abs(sum-sol.Variances[0]) > 1e-9*(1+sol.Variances[0]) {
			t.Fatalf("%v: ellipsoid trace %g vs variance %g", mode, sum, sol.Variances[0])
		}
		if _, err := sol.Ellipsoid(-1); err == nil {
			t.Fatal("bad atom accepted")
		}
		// Bonded neighbors end up correlated.
		if c := sol.Correlation(0, 1); c <= 0 {
			t.Fatalf("%v: correlation %g", mode, c)
		}
		rep := sol.UncertaintyReport(2)
		if rep == "" || !strings.Contains(rep, "best determined") {
			t.Fatalf("%v: report %q", mode, rep)
		}
	}
}
