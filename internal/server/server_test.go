package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/constraint"
	"phmse/internal/encode"
	"phmse/internal/geom"
	"phmse/internal/molecule"
)

// problemJSON renders a problem in the interchange format.
func problemJSON(t *testing.T, p *molecule.Problem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := encode.WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// helix returns a small anchored helix problem that converges quickly
// under default solver parameters.
func helix(bp int) *molecule.Problem {
	return molecule.WithAnchors(molecule.Helix(bp), 4, 0.05)
}

// withExtraDistances returns a problem over the same molecule with a few
// additional long-range distance measurements sampled from the reference
// geometry — same structure hash, different topology hash.
func withExtraDistances(p *molecule.Problem) *molecule.Problem {
	n := len(p.Atoms)
	cons := append([]constraint.Constraint(nil), p.Constraints...)
	for _, pr := range [][2]int{{0, n - 1}, {1, n - 2}, {n / 4, 3 * n / 4}} {
		d := geom.Dist(p.Atoms[pr[0]].Pos, p.Atoms[pr[1]].Pos)
		cons = append(cons, constraint.Distance{I: pr[0], J: pr[1], Target: d, Sigma: 0.1})
	}
	return &molecule.Problem{Name: p.Name + "+extra", Atoms: p.Atoms, Constraints: cons, Tree: p.Tree}
}

// slowParams makes a job effectively non-converging: an unreachable
// tolerance with a huge cycle budget, so it runs until cancelled.
func slowParams() encode.SolveParams {
	return encode.SolveParams{Tol: 1e-12, MaxCycles: 1_000_000, Perturb: 0.4, Seed: 17}
}

// quickParams converges fast for the anchored helix problems.
func quickParams() encode.SolveParams {
	return encode.SolveParams{Perturb: 0.4, Seed: 17}
}

// newTestServer starts a server and returns it with a typed client bound
// to its base URL — the only HTTP surface the happy-path tests use.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		// Force-drain whatever the test left running, then close.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts, client.New(ts.URL)
}

// doJSON issues a raw request and decodes the JSON response into out. The
// error-path tests keep this low-level escape hatch so the wire format
// itself (envelope shape, status codes) stays pinned independently of the
// client's decoding.
func doJSON(t *testing.T, method, url string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, c *client.Client, p *molecule.Problem, params encode.SolveParams) JobStatus {
	t.Helper()
	st, err := c.Submit(context.Background(), p, params)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID == "" {
		t.Fatal("submit: no job id")
	}
	return st
}

// waitState polls until the job reaches any of the wanted states.
func waitState(t *testing.T, c *client.Client, id string, want ...JobState) JobStatus {
	t.Helper()
	// Generous: the race detector slows solves by an order of magnitude.
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	st, err := c.Wait(ctx, id, 0, want...)
	if err != nil {
		t.Fatalf("job %s did not reach %v: %v", id, want, err)
	}
	return st
}

func apiErr(t *testing.T, err error) *client.APIError {
	t.Helper()
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is not an *client.APIError: %v", err)
	}
	return ae
}

func TestSubmitPollResult(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 2, ProcsPerJob: 1})
	ctx := context.Background()
	p := helix(2)
	st := submit(t, c, p, quickParams())
	st = waitState(t, c, st.ID, StateDone, StateFailed)
	if st.State != StateDone {
		t.Fatalf("job failed: %+v", st)
	}
	if st.Cycle == 0 {
		t.Fatalf("no cycle progress recorded: %+v", st)
	}

	doc, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if !doc.Converged {
		t.Fatalf("solution did not converge: %+v", doc)
	}
	if len(doc.Positions) != len(p.Atoms) || len(doc.Variances) != len(p.Atoms) {
		t.Fatalf("result has %d positions, %d variances; want %d",
			len(doc.Positions), len(doc.Variances), len(p.Atoms))
	}

	// PDB export of the same result (format negotiation is outside the
	// typed client's JSON surface).
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=pdb")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pdbBuf bytes.Buffer
	pdbBuf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(pdbBuf.String(), "ATOM") {
		t.Fatalf("pdb export: status %d, body %q...", resp.StatusCode, pdbBuf.String()[:min(80, pdbBuf.Len())])
	}
}

// Four helix jobs submitted simultaneously all complete and converge — the
// concurrency acceptance criterion.
func TestConcurrentSolves(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 4, ProcsPerJob: 1, QueueDepth: 8})
	ctx := context.Background()
	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Seeds 17–19 are known to converge for both helix sizes in
			// hierarchical mode within the cycle budget.
			st := submit(t, c, helix(1+i%2), encode.SolveParams{Perturb: 0.4, Seed: int64(17 + i%3), MaxCycles: 400})
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		st := waitState(t, c, id, StateDone, StateFailed, StateCancelled)
		if st.State != StateDone {
			t.Fatalf("job %s: %+v", id, st)
		}
		doc, err := c.Result(ctx, id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		if !doc.Converged {
			t.Fatalf("job %s did not converge", id)
		}
	}
}

// Re-submitting the same topology hits the plan cache, visible in /metrics.
func TestPlanCacheHit(t *testing.T) {
	srv, ts, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 2})
	p := helix(1)
	first := submit(t, c, p, quickParams())
	waitState(t, c, first.ID, StateDone, StateFailed)

	// Same topology, different measurement noise and seed: must reuse the
	// cached decomposition and schedule.
	second := submit(t, c, p, encode.SolveParams{Perturb: 0.3, Seed: 99})
	st := waitState(t, c, second.ID, StateDone, StateFailed)
	if st.State != StateDone {
		t.Fatalf("second job: %+v", st)
	}
	if !st.PlanCacheHit {
		t.Fatalf("second solve of the same topology missed the plan cache: %+v", st)
	}

	m := srv.Snapshot()
	if m.PlanCache.Hits < 1 || m.PlanCache.Misses < 1 {
		t.Fatalf("plan cache metrics: %+v", m.PlanCache)
	}
	var viaHTTP Metrics
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &viaHTTP); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if viaHTTP.PlanCache.Hits < 1 {
		t.Fatalf("metrics endpoint reports no cache hits: %+v", viaHTTP.PlanCache)
	}
	if viaHTTP.OpTimes.TotalSeconds <= 0 {
		t.Fatalf("metrics endpoint reports no op-class time: %+v", viaHTTP.OpTimes)
	}
}

// A full queue rejects further submissions with 429 backpressure carrying
// the queue_full envelope code and a Retry-After hint.
func TestQueueFullBackpressure(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, QueueDepth: 1})
	ctx := context.Background()
	// One slow job occupies the worker; one more fills the queue.
	running := submit(t, c, helix(1), slowParams())
	waitState(t, c, running.ID, StateRunning)
	queued := submit(t, c, helix(1), slowParams())

	_, err := c.Submit(ctx, helix(1), slowParams())
	if !client.IsQueueFull(err) {
		t.Fatalf("overflow submit error = %v, want queue_full", err)
	}
	ae := apiErr(t, err)
	if ae.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", ae.HTTPStatus)
	}
	if ae.Message == "" {
		t.Fatal("overflow submit: empty error message")
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("overflow submit: no Retry-After hint (%v)", ae.RetryAfter)
	}

	// Cancelling the running job lets the queued one start.
	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitState(t, c, running.ID, StateCancelled)
	waitState(t, c, queued.ID, StateRunning)
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	waitState(t, c, queued.ID, StateCancelled)
}

// Cancelling a running job stops it before convergence with state
// "cancelled"; cancelling a queued job never runs it.
func TestCancellation(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, QueueDepth: 4})
	ctx := context.Background()
	running := submit(t, c, helix(2), slowParams())
	st := waitState(t, c, running.ID, StateRunning)
	// Let it make some cycles so the cancellation is genuinely mid-solve.
	deadline := time.Now().Add(10 * time.Second)
	for st.Cycle < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		st = waitState(t, c, running.ID, StateRunning, StateCancelled, StateDone, StateFailed)
		if st.State != StateRunning {
			t.Fatalf("slow job left running state early: %+v", st)
		}
	}

	queued := submit(t, c, helix(1), slowParams())
	cancelled, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("queued job after cancel: %+v", cancelled)
	}

	// The DELETE alias of the cancel endpoint stays covered at the wire
	// level.
	doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+running.ID, nil, nil)
	st = waitState(t, c, running.ID, StateCancelled)
	if st.Cycle >= 1_000_000 {
		t.Fatalf("job ran to completion despite cancellation: %+v", st)
	}
	// A cancelled job has no result; the envelope carries the state.
	_, err = c.Result(ctx, running.ID)
	if !client.HasCode(err, encode.CodeNoResult) {
		t.Fatalf("result of cancelled job: %v, want no_result", err)
	}
	ae := apiErr(t, err)
	if ae.HTTPStatus != http.StatusConflict || ae.State != StateCancelled {
		t.Fatalf("result error: %+v", ae)
	}
}

// A per-request timeout fails the job with a deadline error.
func TestJobTimeout(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1})
	params := slowParams()
	params.TimeoutMillis = 50
	st := submit(t, c, helix(2), params)
	st = waitState(t, c, st.ID, StateDone, StateFailed, StateCancelled)
	if st.State != StateFailed || !strings.Contains(st.Error, "timeout") {
		t.Fatalf("timed-out job: %+v", st)
	}
}

// Shutdown drains the running job, rejects new submissions with 503, and
// flips /healthz to draining.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, ts, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, QueueDepth: 4})
	ctx := context.Background()
	running := submit(t, c, helix(2), slowParams())
	waitState(t, c, running.ID, StateRunning)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Intake must close promptly even while a job is still running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Submit(ctx, helix(1), slowParams())
		if client.HasCode(err, encode.CodeDraining) {
			if ae := apiErr(t, err); ae.HTTPStatus != http.StatusServiceUnavailable {
				t.Fatalf("draining reject: status %d, want 503", ae.HTTPStatus)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still accepted during drain (last err %v)", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", code)
	}

	// The in-flight job keeps running until released; cancelling it lets
	// the drain complete without hitting the forced path.
	c.Cancel(ctx, running.ID)
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("shutdown did not complete after the running job finished")
	}
	waitState(t, c, running.ID, StateCancelled)
}

// Forced shutdown (expired drain context) cancels in-flight jobs itself.
func TestForcedShutdownCancels(t *testing.T) {
	srv, _, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1})
	running := submit(t, c, helix(2), slowParams())
	waitState(t, c, running.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced drain error = %v, want deadline exceeded", err)
	}
	waitState(t, c, running.ID, StateCancelled)
}

// Every failing endpoint answers with the structured envelope:
// {"error": {"code", "message", "state"}} — asserted at the wire level so
// the shape is pinned independently of the client.
func TestBadRequests(t *testing.T) {
	_, ts, _ := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1})
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"no problem", `{}`},
		{"malformed json", `{"problem": {`},
		{"bad mode", fmt.Sprintf(`{"problem": %s, "params": {"mode": "diagonal"}}`, problemJSON(t, helix(1)))},
		{"no atoms", `{"problem": {"name": "empty"}}`},
		{"bad constraint", `{"problem": {"atoms": [{"pos": [0,0,0]}], "constraints": [{"type": "distance", "i": 0, "j": 5, "sigma": 1}]}}`},
		{"empty warm ref", fmt.Sprintf(`{"problem": %s, "warm_start": {}}`, problemJSON(t, helix(1)))},
	}
	for _, tc := range cases {
		var env encode.ErrorEnvelope
		if code := doJSON(t, "POST", ts.URL+"/v1/solve", []byte(tc.body), &env); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		} else if env.Error.Code != encode.CodeBadRequest || env.Error.Message == "" {
			t.Errorf("%s: envelope %+v, want code %q", tc.name, env, encode.CodeBadRequest)
		}
	}
	for _, path := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/posterior"} {
		var env encode.ErrorEnvelope
		if code := doJSON(t, "GET", ts.URL+path, nil, &env); code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", path, code)
		} else if env.Error.Code != encode.CodeNotFound {
			t.Errorf("%s: envelope %+v, want code %q", path, env, encode.CodeNotFound)
		}
	}
	var env encode.ErrorEnvelope
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs?state=bogus", nil, &env); code != http.StatusBadRequest {
		t.Errorf("bad list state: status %d, want 400", code)
	} else if env.Error.Code != encode.CodeBadRequest {
		t.Errorf("bad list state: envelope %+v", env)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs?limit=-3", nil, &env); code != http.StatusBadRequest {
		t.Errorf("bad list limit: status %d, want 400", code)
	}
}

// The warm-start flow end to end: keep a posterior, fetch it, re-solve an
// extended problem from it in fewer cycles, and reject incompatible or
// unusable references with the right envelope codes.
func TestWarmStartAPI(t *testing.T) {
	srv, _, c := newTestServer(t, Config{Workers: 2, ProcsPerJob: 1, QueueDepth: 8})
	ctx := context.Background()
	base := helix(1)
	params := quickParams()
	params.MaxCycles = 500

	keep := params
	keep.KeepPosterior = true
	baseJob := submit(t, c, base, keep)
	baseSt := waitState(t, c, baseJob.ID, StateDone, StateFailed)
	if baseSt.State != StateDone {
		t.Fatalf("base job: %+v", baseSt)
	}
	if !baseSt.PosteriorKept {
		t.Fatalf("posterior not retained: %+v", baseSt)
	}

	// The retained posterior is exported in problem atom order; the full
	// covariance comes only on request.
	doc, err := c.Posterior(ctx, baseJob.ID, false)
	if err != nil {
		t.Fatalf("posterior: %v", err)
	}
	if doc.Job != baseJob.ID || doc.Atoms != len(base.Atoms) {
		t.Fatalf("posterior doc identity: %+v", doc)
	}
	if len(doc.Positions) != len(base.Atoms) || len(doc.CoordVariances) != 3*len(base.Atoms) {
		t.Fatalf("posterior doc sizes: %d positions, %d variances", len(doc.Positions), len(doc.CoordVariances))
	}
	if len(doc.Cov) != 0 {
		t.Fatalf("posterior doc carried full covariance without cov=full")
	}
	if doc.StructureHash == "" || doc.TopologyHash == "" {
		t.Fatalf("posterior doc missing hashes: %+v", doc)
	}
	full, err := c.Posterior(ctx, baseJob.ID, true)
	if err != nil {
		t.Fatalf("posterior cov=full: %v", err)
	}
	if len(full.Cov) != 3*len(base.Atoms) {
		t.Fatalf("full posterior has %d covariance rows, want %d", len(full.Cov), 3*len(base.Atoms))
	}

	// Cold vs warm on the extended problem: the warm job must converge in
	// strictly fewer cycles.
	combined := withExtraDistances(base)
	coldJob := submit(t, c, combined, params)
	cold := waitState(t, c, coldJob.ID, StateDone, StateFailed)
	if cold.State != StateDone {
		t.Fatalf("cold combined job: %+v", cold)
	}

	warmJob, err := c.WarmStart(ctx, combined, params, baseJob.ID)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if warmJob.WarmStartFrom != baseJob.ID {
		t.Fatalf("warm job status missing provenance: %+v", warmJob)
	}
	warm := waitState(t, c, warmJob.ID, StateDone, StateFailed)
	if warm.State != StateDone {
		t.Fatalf("warm combined job: %+v", warm)
	}
	if warm.Cycle >= cold.Cycle {
		t.Fatalf("warm start took %d cycles, cold %d — want strictly fewer", warm.Cycle, cold.Cycle)
	}

	// A different molecule cannot consume the posterior.
	_, err = c.WarmStart(ctx, helix(2), params, baseJob.ID)
	if !client.IsTopologyMismatch(err) {
		t.Fatalf("mismatched warm start error = %v, want topology_mismatch", err)
	}
	if ae := apiErr(t, err); ae.HTTPStatus != http.StatusConflict {
		t.Fatalf("mismatched warm start: status %d, want 409", ae.HTTPStatus)
	}

	// An unknown job is 404; a finished job that kept nothing is 409.
	_, err = c.WarmStart(ctx, combined, params, "job-999999")
	if !client.IsNotFound(err) {
		t.Fatalf("unknown warm ref error = %v, want not_found", err)
	}
	noKeep := submit(t, c, base, params)
	waitState(t, c, noKeep.ID, StateDone, StateFailed)
	_, err = c.WarmStart(ctx, combined, params, noKeep.ID)
	if !client.HasCode(err, encode.CodeNoResult) {
		t.Fatalf("keepless warm ref error = %v, want no_result", err)
	}
	if _, err := c.Posterior(ctx, noKeep.ID, false); !client.HasCode(err, encode.CodeNoResult) {
		t.Fatalf("keepless posterior fetch error = %v, want no_result", err)
	}

	m := srv.Snapshot()
	if m.Posteriors.Entries < 1 || m.Posteriors.Stored < 1 || m.Posteriors.Hits < 1 {
		t.Fatalf("posterior store metrics: %+v", m.Posteriors)
	}
	if m.Posteriors.Bytes <= 0 || m.Posteriors.Bytes > m.Posteriors.CapacityBytes {
		t.Fatalf("posterior store accounting: %+v", m.Posteriors)
	}
}

// A posterior too large for the store budget is rejected, not kept, and a
// warm reference to it is a usable-error 409.
func TestPosteriorBudgetRejection(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, PosteriorBytes: 64})
	ctx := context.Background()
	keep := quickParams()
	keep.KeepPosterior = true
	st := submit(t, c, helix(1), keep)
	st = waitState(t, c, st.ID, StateDone, StateFailed)
	if st.State != StateDone {
		t.Fatalf("job: %+v", st)
	}
	if st.PosteriorKept {
		t.Fatalf("64-byte budget retained a posterior: %+v", st)
	}
	if _, err := c.Posterior(ctx, st.ID, false); !client.HasCode(err, encode.CodeNoResult) {
		t.Fatalf("posterior fetch error = %v, want no_result", err)
	}
	if _, err := c.WarmStart(ctx, helix(1), quickParams(), st.ID); !client.HasCode(err, encode.CodeNoResult) {
		t.Fatalf("warm ref error = %v, want no_result", err)
	}
}

// GET /v1/jobs lists jobs in submission order with state filtering and
// cursor pagination.
func TestJobListing(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 2, ProcsPerJob: 1, QueueDepth: 8})
	ctx := context.Background()
	const n = 5
	ids := make([]string, n)
	for i := range ids {
		ids[i] = submit(t, c, helix(1), quickParams()).ID
	}
	for _, id := range ids {
		if st := waitState(t, c, id, StateDone, StateFailed); st.State != StateDone {
			t.Fatalf("job %s: %+v", id, st)
		}
	}

	all, err := c.List(ctx, client.ListOptions{})
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(all.Jobs) != n {
		t.Fatalf("listed %d jobs, want %d", len(all.Jobs), n)
	}
	for i, st := range all.Jobs {
		if st.ID != ids[i] {
			t.Fatalf("listing out of submission order: position %d has %s, want %s", i, st.ID, ids[i])
		}
	}
	if all.NextAfter != "" {
		t.Fatalf("complete listing still paginates: next_after %q", all.NextAfter)
	}

	// Page through with limit 2: 2 + 2 + 1 jobs, cursors chaining.
	var paged []string
	after := ""
	for pages := 0; pages < 10; pages++ {
		page, err := c.List(ctx, client.ListOptions{Limit: 2, After: after})
		if err != nil {
			t.Fatalf("page after %q: %v", after, err)
		}
		for _, st := range page.Jobs {
			paged = append(paged, st.ID)
		}
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	if len(paged) != n {
		t.Fatalf("pagination yielded %d jobs, want %d: %v", len(paged), n, paged)
	}
	for i := range paged {
		if paged[i] != ids[i] {
			t.Fatalf("pagination out of order: %v", paged)
		}
	}

	// State filter: all five are done; none are cancelled.
	done, err := c.List(ctx, client.ListOptions{State: StateDone})
	if err != nil {
		t.Fatalf("list done: %v", err)
	}
	if len(done.Jobs) != n {
		t.Fatalf("listed %d done jobs, want %d", len(done.Jobs), n)
	}
	cancelled, err := c.List(ctx, client.ListOptions{State: StateCancelled})
	if err != nil {
		t.Fatalf("list cancelled: %v", err)
	}
	if len(cancelled.Jobs) != 0 {
		t.Fatalf("listed %d cancelled jobs, want 0", len(cancelled.Jobs))
	}
}
