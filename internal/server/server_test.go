package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"phmse/internal/encode"
	"phmse/internal/molecule"
)

// problemJSON renders a problem in the interchange format.
func problemJSON(t *testing.T, p *molecule.Problem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := encode.WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// helix returns a small anchored helix problem that converges quickly
// under default solver parameters.
func helix(bp int) *molecule.Problem {
	return molecule.WithAnchors(molecule.Helix(bp), 4, 0.05)
}

// submitBody assembles a POST /v1/solve body.
func submitBody(t *testing.T, p *molecule.Problem, params encode.SolveParams) []byte {
	t.Helper()
	req := encode.SolveRequest{Problem: problemJSON(t, p), Params: params}
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// slowParams makes a job effectively non-converging: an unreachable
// tolerance with a huge cycle budget, so it runs until cancelled.
func slowParams() encode.SolveParams {
	return encode.SolveParams{Tol: 1e-12, MaxCycles: 1_000_000, Perturb: 0.4, Seed: 17}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		// Force-drain whatever the test left running, then close.
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts
}

// doJSON issues a request and decodes the JSON response into out.
func doJSON(t *testing.T, method, url string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, ts *httptest.Server, p *molecule.Problem, params encode.SolveParams) JobStatus {
	t.Helper()
	var st JobStatus
	code := doJSON(t, "POST", ts.URL+"/v1/solve", submitBody(t, p, params), &st)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if st.ID == "" {
		t.Fatal("submit: no job id")
	}
	return st
}

// waitState polls until the job reaches any of the wanted states.
func waitState(t *testing.T, ts *httptest.Server, id string, want ...JobState) JobStatus {
	t.Helper()
	// Generous: the race detector slows solves by an order of magnitude.
	deadline := time.Now().Add(180 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status poll: %d", code)
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach %v in time", id, want)
	return JobStatus{}
}

func TestSubmitPollResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, ProcsPerJob: 1})
	p := helix(2)
	st := submit(t, ts, p, encode.SolveParams{Perturb: 0.4, Seed: 17})
	st = waitState(t, ts, st.ID, StateDone, StateFailed)
	if st.State != StateDone {
		t.Fatalf("job failed: %+v", st)
	}
	if st.Cycle == 0 {
		t.Fatalf("no cycle progress recorded: %+v", st)
	}

	var doc encode.SolutionDoc
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+st.ID+"/result", nil, &doc); code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	if !doc.Converged {
		t.Fatalf("solution did not converge: %+v", doc)
	}
	if len(doc.Positions) != len(p.Atoms) || len(doc.Variances) != len(p.Atoms) {
		t.Fatalf("result has %d positions, %d variances; want %d",
			len(doc.Positions), len(doc.Variances), len(p.Atoms))
	}

	// PDB export of the same result.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result?format=pdb")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pdbBuf bytes.Buffer
	pdbBuf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(pdbBuf.String(), "ATOM") {
		t.Fatalf("pdb export: status %d, body %q...", resp.StatusCode, pdbBuf.String()[:min(80, pdbBuf.Len())])
	}
}

// Four helix jobs submitted simultaneously all complete and converge — the
// concurrency acceptance criterion.
func TestConcurrentSolves(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, ProcsPerJob: 1, QueueDepth: 8})
	const n = 4
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Seeds 17–19 are known to converge for both helix sizes in
			// hierarchical mode within the cycle budget.
			st := submit(t, ts, helix(1+i%2), encode.SolveParams{Perturb: 0.4, Seed: int64(17 + i%3), MaxCycles: 400})
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids {
		st := waitState(t, ts, id, StateDone, StateFailed, StateCancelled)
		if st.State != StateDone {
			t.Fatalf("job %s: %+v", id, st)
		}
		var doc encode.SolutionDoc
		if code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/result", nil, &doc); code != http.StatusOK {
			t.Fatalf("result %s: status %d", id, code)
		}
		if !doc.Converged {
			t.Fatalf("job %s did not converge", id)
		}
	}
}

// Re-submitting the same topology hits the plan cache, visible in /metrics.
func TestPlanCacheHit(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, ProcsPerJob: 2})
	p := helix(1)
	first := submit(t, ts, p, encode.SolveParams{Perturb: 0.4, Seed: 17})
	waitState(t, ts, first.ID, StateDone, StateFailed)

	// Same topology, different measurement noise and seed: must reuse the
	// cached decomposition and schedule.
	second := submit(t, ts, p, encode.SolveParams{Perturb: 0.3, Seed: 99})
	st := waitState(t, ts, second.ID, StateDone, StateFailed)
	if st.State != StateDone {
		t.Fatalf("second job: %+v", st)
	}
	if !st.PlanCacheHit {
		t.Fatalf("second solve of the same topology missed the plan cache: %+v", st)
	}

	m := srv.Snapshot()
	if m.PlanCache.Hits < 1 || m.PlanCache.Misses < 1 {
		t.Fatalf("plan cache metrics: %+v", m.PlanCache)
	}
	var viaHTTP Metrics
	if code := doJSON(t, "GET", ts.URL+"/metrics", nil, &viaHTTP); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if viaHTTP.PlanCache.Hits < 1 {
		t.Fatalf("metrics endpoint reports no cache hits: %+v", viaHTTP.PlanCache)
	}
	if viaHTTP.OpTimes.TotalSeconds <= 0 {
		t.Fatalf("metrics endpoint reports no op-class time: %+v", viaHTTP.OpTimes)
	}
}

// A full queue rejects further submissions with 429 backpressure.
func TestQueueFullBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, QueueDepth: 1})
	// One slow job occupies the worker; one more fills the queue.
	running := submit(t, ts, helix(1), slowParams())
	waitState(t, ts, running.ID, StateRunning)
	queued := submit(t, ts, helix(1), slowParams())

	var apiErr struct {
		Error string `json:"error"`
	}
	code := doJSON(t, "POST", ts.URL+"/v1/solve", submitBody(t, helix(1), slowParams()), &apiErr)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", code)
	}
	if apiErr.Error == "" {
		t.Fatal("overflow submit: empty error message")
	}

	// Cancelling the running job lets the queued one start.
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+running.ID+"/cancel", nil, nil)
	waitState(t, ts, running.ID, StateCancelled)
	waitState(t, ts, queued.ID, StateRunning)
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+queued.ID+"/cancel", nil, nil)
	waitState(t, ts, queued.ID, StateCancelled)
}

// Cancelling a running job stops it before convergence with state
// "cancelled"; cancelling a queued job never runs it.
func TestCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, QueueDepth: 4})
	running := submit(t, ts, helix(2), slowParams())
	st := waitState(t, ts, running.ID, StateRunning)
	// Let it make some cycles so the cancellation is genuinely mid-solve.
	deadline := time.Now().Add(10 * time.Second)
	for st.Cycle < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
		st = waitState(t, ts, running.ID, StateRunning, StateCancelled, StateDone, StateFailed)
		if st.State != StateRunning {
			t.Fatalf("slow job left running state early: %+v", st)
		}
	}

	queued := submit(t, ts, helix(1), slowParams())
	var cancelled JobStatus
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs/"+queued.ID+"/cancel", nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel queued: status %d", code)
	}
	if cancelled.State != StateCancelled {
		t.Fatalf("queued job after cancel: %+v", cancelled)
	}

	doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+running.ID, nil, nil)
	st = waitState(t, ts, running.ID, StateCancelled)
	if st.Cycle >= 1_000_000 {
		t.Fatalf("job ran to completion despite cancellation: %+v", st)
	}
	// A cancelled job has no result.
	var apiErr struct {
		Error string   `json:"error"`
		State JobState `json:"state"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/"+running.ID+"/result", nil, &apiErr); code != http.StatusConflict {
		t.Fatalf("result of cancelled job: status %d, want 409", code)
	}
	if apiErr.State != StateCancelled {
		t.Fatalf("result error state: %+v", apiErr)
	}
}

// A per-request timeout fails the job with a deadline error.
func TestJobTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1})
	params := slowParams()
	params.TimeoutMillis = 50
	st := submit(t, ts, helix(2), params)
	st = waitState(t, ts, st.ID, StateDone, StateFailed, StateCancelled)
	if st.State != StateFailed || !strings.Contains(st.Error, "timeout") {
		t.Fatalf("timed-out job: %+v", st)
	}
}

// Shutdown drains the running job, rejects new submissions with 503, and
// flips /healthz to draining.
func TestGracefulShutdownDrains(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, QueueDepth: 4})
	running := submit(t, ts, helix(2), slowParams())
	waitState(t, ts, running.ID, StateRunning)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Intake must close promptly even while a job is still running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code := doJSON(t, "POST", ts.URL+"/v1/solve", submitBody(t, helix(1), slowParams()), nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submissions still accepted during drain (last status %d)", code)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: status %d, want 503", code)
	}

	// The in-flight job keeps running until released; cancelling it lets
	// the drain complete without hitting the forced path.
	doJSON(t, "POST", ts.URL+"/v1/jobs/"+running.ID+"/cancel", nil, nil)
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("graceful drain returned %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("shutdown did not complete after the running job finished")
	}
	waitState(t, ts, running.ID, StateCancelled)
}

// Forced shutdown (expired drain context) cancels in-flight jobs itself.
func TestForcedShutdownCancels(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1})
	running := submit(t, ts, helix(2), slowParams())
	waitState(t, ts, running.ID, StateRunning)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced drain error = %v, want deadline exceeded", err)
	}
	waitState(t, ts, running.ID, StateCancelled)
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1})
	cases := []struct {
		name string
		body string
	}{
		{"empty", ``},
		{"no problem", `{}`},
		{"malformed json", `{"problem": {`},
		{"bad mode", fmt.Sprintf(`{"problem": %s, "params": {"mode": "diagonal"}}`, problemJSON(t, helix(1)))},
		{"no atoms", `{"problem": {"name": "empty"}}`},
		{"bad constraint", `{"problem": {"atoms": [{"pos": [0,0,0]}], "constraints": [{"type": "distance", "i": 0, "j": 5, "sigma": 1}]}}`},
	}
	for _, tc := range cases {
		if code := doJSON(t, "POST", ts.URL+"/v1/solve", []byte(tc.body), nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, code)
		}
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/nope/result", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job result: status %d, want 404", code)
	}
}
