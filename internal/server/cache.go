package server

import (
	"container/list"
	"fmt"
	"sync"

	"phmse/internal/core"
)

// planCache is a bounded LRU cache of topology-keyed planning artifacts
// (decomposition tree + static processor assignment). The paper's central
// observation is that the decomposition and schedule are invariant across
// re-solves of the same topology — they depend on which atoms are coupled,
// not on the measured values — so a server handling repeated estimation
// cycles should pay for planning once per topology, not once per request.
type planCache struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element

	hits   int64
	misses int64
}

type cacheEntry struct {
	key string
	art *core.PlanArtifacts
}

func newPlanCache(max int) *planCache {
	return &planCache{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// planKey widens the topology hash with the construction parameters the
// artifacts depend on, so one topology solved under different team sizes
// or batch dimensions occupies distinct slots.
func planKey(topoHash string, mode core.Mode, procs, batch, leaf int, auto bool) string {
	return fmt.Sprintf("%s|m=%v|p=%d|b=%d|l=%d|a=%v", topoHash, mode, procs, batch, leaf, auto)
}

// get returns the cached artifacts for the key, recording a hit or miss.
func (c *planCache) get(key string) (*core.PlanArtifacts, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).art, true
}

// put stores artifacts under the key, evicting the least recently used
// entry when the cache is full.
func (c *planCache) put(key string, art *core.PlanArtifacts) {
	if art == nil || c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).art = art
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, art: art})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// stats returns (hits, misses, live entries).
func (c *planCache) stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}
