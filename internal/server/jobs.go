package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"phmse/internal/core"
	"phmse/internal/encode"
	"phmse/internal/faultinject"
	"phmse/internal/molecule"
	"phmse/internal/sched"
	"phmse/internal/solvererr"
	"phmse/internal/trace"
	"phmse/internal/workest"
)

// JobState is the lifecycle state of a submitted solve. The wire form
// lives in package encode so the typed client and the command-line tools
// share it; the server aliases it for convenience.
type JobState = encode.JobState

// The job lifecycle: queued → running → one of the three terminal states.
// A queued job can also move directly to cancelled.
const (
	StateQueued    = encode.JobQueued
	StateRunning   = encode.JobRunning
	StateDone      = encode.JobDone
	StateFailed    = encode.JobFailed
	StateCancelled = encode.JobCancelled
)

// Submission errors, distinguished so the HTTP layer can map them to 503
// and 429 respectively.
var (
	ErrDraining  = errors.New("server: draining, not accepting jobs")
	ErrQueueFull = errors.New("server: job queue full")
)

// job is one submitted solve and its full lifecycle record.
type job struct {
	id string
	// shard is the owning daemon's instance id, reported as the stable
	// "shard" field of the v1 job status (immutable after submit).
	shard   string
	problem *molecule.Problem
	params  encode.SolveParams
	warm    *storedPosterior // non-nil for warm-started solves

	mu            sync.Mutex
	state         JobState
	cycle         int
	rmsChange     float64
	errMsg        string
	errCode       string
	retries       int
	flatFallback  bool
	cacheHit      bool
	posteriorKept bool
	sol           *core.Solution
	submitted     time.Time
	started       time.Time
	finished      time.Time
	cancel        context.CancelFunc // set while running
	done          chan struct{}      // closed on reaching a terminal state
}

// JobStatus is a point-in-time snapshot of a job, as reported by the API.
// The wire form is encode.JobStatus.
type JobStatus = encode.JobStatus

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:            j.id,
		Shard:         j.shard,
		State:         j.state,
		Problem:       j.problem.Name,
		Atoms:         len(j.problem.Atoms),
		Constraints:   len(j.problem.Constraints),
		Cycle:         j.cycle,
		RMSChange:     j.rmsChange,
		PlanCacheHit:  j.cacheHit,
		PosteriorKept: j.posteriorKept,
		Error:         j.errMsg,
		ErrorCode:     j.errCode,
		Retries:       j.retries,
		FlatFallback:  j.flatFallback,
	}
	if j.warm != nil {
		st.WarmStartFrom = j.warm.jobID
	}
	stamp := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339Nano)
	}
	st.SubmittedAt = stamp(j.submitted)
	st.StartedAt = stamp(j.started)
	st.FinishedAt = stamp(j.finished)
	return st
}

// result returns the solution when the job is done.
func (j *job) result() (*core.Solution, JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.sol, j.state
}

// setProgress records cycle-level progress from the solver's OnCycle hook.
func (j *job) setProgress(cycle int, rms float64) {
	j.mu.Lock()
	j.cycle = cycle
	j.rmsChange = rms
	j.mu.Unlock()
}

// finish moves the job to a terminal state and wakes any waiters. errCode
// classifies a failure machine-readably (one of the solvererr codes or
// encode.CodeInternalError); empty for success.
func (j *job) finish(state JobState, errCode, errMsg string, sol *core.Solution) {
	j.mu.Lock()
	if j.state.Terminal() { // already decided (e.g. cancelled while queued)
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errCode = errCode
	j.errMsg = errMsg
	j.sol = sol
	j.finished = time.Now()
	j.cancel = nil
	close(j.done)
	j.mu.Unlock()
}

// manager owns the bounded job queue, the elastic solver-team scheduler,
// the job records, and the posterior store. A single dispatcher goroutine
// pulls submissions off the queue and admits each through the scheduler,
// which sizes its processor team from the job's estimated work — so the
// configured processor budget bounds processors in use, not jobs in
// flight: many cheap solves run concurrently on minimum-width teams while
// an expensive solve still gets a wide one.
type manager struct {
	cfg        Config
	cache      *planCache
	posteriors *posteriorStore
	rec        *trace.Collector
	sched      *sched.TeamScheduler

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // submission order, for pruning old records
	nextID   int64

	queue chan *job
	// queuedCount tracks jobs in StateQueued — including the one the
	// dispatcher has pulled off the channel but not yet admitted — so
	// backpressure keys on jobs actually waiting, not channel occupancy.
	queuedCount atomic.Int64
	// dispatchCancel aborts an admission wait during forced shutdown.
	dispatchCtx    context.Context
	dispatchCancel context.CancelFunc
	wg             sync.WaitGroup // dispatcher
	jobsWG         sync.WaitGroup // in-flight job goroutines

	submitted     atomic.Int64
	rejected      atomic.Int64
	retries       atomic.Int64
	panics        atomic.Int64
	flatFallbacks atomic.Int64
}

func newManager(cfg Config) *manager {
	m := &manager{
		cfg:        cfg,
		cache:      newPlanCache(cfg.CacheSize),
		posteriors: newPosteriorStore(cfg.PosteriorBytes, cfg.PosteriorDir),
		rec:        &trace.Collector{},
		sched: sched.NewTeamScheduler(sched.ElasticConfig{
			MaxProcs: cfg.MaxProcs,
			MinTeam:  cfg.MinTeam,
			MaxTeam:  cfg.MaxTeam,
			Grain:    cfg.TeamGrain,
		}),
		jobs: make(map[string]*job),
		// The channel is sized past QueueDepth because cancelled-while-
		// queued jobs linger in it until the dispatcher skips them; the
		// queuedCount gate in submit is the real bound.
		queue: make(chan *job, 2*cfg.QueueDepth+16),
	}
	m.dispatchCtx, m.dispatchCancel = context.WithCancel(context.Background())
	// Job ids must stay unique across restarts: reloaded posterior
	// snapshots are keyed by pre-restart job ids, and the posterior store
	// is consulted before the job table, so a fresh counter re-minting an
	// old id would serve the previous incarnation's posterior as the new
	// job's — and clobber its snapshot on completion. Seed the counter past
	// every id the snapshot directory still references.
	m.nextID = m.posteriors.maxJobSeq()
	m.wg.Add(1)
	go m.dispatcher()
	return m
}

// jobCost estimates a job's total work with the fitted flop model, the
// same Equation-1 estimate that drives static processor assignment inside
// a solve — here lifted to the admission layer to size the job's team.
func jobCost(p *molecule.Problem, batch int) float64 {
	scalars := 0
	for _, c := range p.Constraints {
		scalars += c.Dim()
	}
	return workest.FlopModel{}.NodeWork(3*len(p.Atoms), scalars, batch)
}

// dispatcher admits queued jobs through the elastic scheduler in FIFO
// order and runs each on its own goroutine with the granted team width.
func (m *manager) dispatcher() {
	defer m.wg.Done()
	for j := range m.queue {
		if j.terminal() { // cancelled while queued
			continue
		}
		batch := j.params.BatchSize
		if batch <= 0 {
			batch = 16
		}
		want := m.sched.SizeFor(jobCost(j.problem, batch))
		// The request may ask for fewer processors than the estimate.
		if p := j.params.Procs; p > 0 && p < want {
			want = p
		}
		grant, err := m.sched.Acquire(m.dispatchCtx, want)
		if err != nil {
			// Forced shutdown: the admission wait was aborted.
			m.cancelIfQueued(j, "cancelled during shutdown")
			continue
		}
		m.jobsWG.Add(1)
		go func(j *job, g *sched.Grant) {
			defer m.jobsWG.Done()
			defer g.Release()
			m.runIsolated(j, g)
		}(j, grant)
	}
}

// runIsolated is the job goroutine's last line of defense: a panic
// escaping the per-attempt recovery (a bug in the job-driving code itself)
// fails the job instead of leaking its team grant.
func (m *manager) runIsolated(j *job, g *sched.Grant) {
	defer func() {
		if r := recover(); r != nil {
			m.panics.Add(1)
			log.Printf("phmsed: job %s: panic outside solve: %v\n%s", j.id, r, debug.Stack())
			j.finish(StateFailed, encode.CodeInternalError, fmt.Sprintf("internal error: %v", r), nil)
		}
	}()
	m.run(j, g)
}

// submit validates queue capacity and registers the job. The queue is
// bounded on jobs awaiting admission: beyond QueueDepth the submission is
// rejected immediately (backpressure) rather than letting latency grow
// without bound. A non-nil warm posterior (already resolved and validated
// against the problem) seeds the solve.
func (m *manager) submit(p *molecule.Problem, params encode.SolveParams, warm *storedPosterior) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.rejected.Add(1)
		return nil, ErrDraining
	}
	if int(m.queuedCount.Load()) >= m.cfg.QueueDepth {
		m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	m.nextID++
	// Shard-qualified ids keep the zero-padded per-instance ordering that
	// "after" pagination relies on, while letting the routing tier map any
	// id back to its owning shard.
	j := &job{
		id:        encode.QualifyJob(m.cfg.InstanceID, fmt.Sprintf("job-%06d", m.nextID)),
		shard:     m.cfg.InstanceID,
		problem:   p,
		params:    params,
		warm:      warm,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	select {
	case m.queue <- j:
	default:
		// Headroom exhausted by cancelled jobs the dispatcher has not yet
		// skipped — treat as a full queue.
		m.rejected.Add(1)
		return nil, ErrQueueFull
	}
	m.queuedCount.Add(1)
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.pruneLocked()
	m.submitted.Add(1)
	return j, nil
}

// pruneLocked drops the oldest terminal job records above the retention
// bound so the record map cannot grow without limit.
func (m *manager) pruneLocked() {
	if len(m.jobs) <= m.cfg.MaxRecords {
		return
	}
	kept := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j == nil {
			continue
		}
		if len(m.jobs) > m.cfg.MaxRecords && j.terminal() {
			delete(m.jobs, id)
			continue
		}
		kept = append(kept, id)
	}
	m.order = kept
}

func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state == StateDone || j.state == StateFailed || j.state == StateCancelled
}

// get returns the job record for an id.
func (m *manager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// cancelIfQueued moves a still-queued job to cancelled (the dispatcher
// skips it when dequeued) and reports whether it did. Exiting StateQueued
// here pairs with the queuedCount increment in submit.
func (m *manager) cancelIfQueued(j *job, msg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCancelled
	j.errCode = solvererr.CodeCanceled
	j.errMsg = msg
	j.finished = time.Now()
	close(j.done)
	m.queuedCount.Add(-1)
	return true
}

// requestCancel cancels a job: queued jobs move to cancelled immediately
// (the dispatcher skips them when dequeued), running jobs have their
// context cancelled and stop at the next cycle boundary. It reports
// whether the job existed.
func (m *manager) requestCancel(id string) (*job, bool) {
	j, ok := m.get(id)
	if !ok {
		return nil, false
	}
	if m.cancelIfQueued(j, "cancelled while queued") {
		return j, true
	}
	j.mu.Lock()
	if j.state == StateRunning && j.cancel != nil {
		j.cancel()
	}
	j.mu.Unlock()
	return j, true
}

// run executes one admitted job end to end: an attempt loop with capped
// exponential backoff for transient failures, one flat-organization
// fallback when the hierarchical solve fails numerically, and a terminal
// classification of whatever error survives. The grant fixes the
// processor-team width every attempt solves with.
func (m *manager) run(j *job, g *sched.Grant) {
	ctx := context.Background()
	var timeoutCancel context.CancelFunc
	if ms := j.params.TimeoutMillis; ms > 0 {
		// One budget across every attempt: retrying must not extend the
		// job's wall-clock bound.
		ctx, timeoutCancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer timeoutCancel()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting in the queue
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	m.queuedCount.Add(-1)
	j.mu.Unlock()

	var sol *core.Solution
	var err error
	for attempt := 0; ; attempt++ {
		sol, err = m.attempt(ctx, j, attempt, false, g.Procs)
		if err == nil || attempt >= m.cfg.MaxRetries || !retryable(err) || ctx.Err() != nil {
			break
		}
		m.retries.Add(1)
		j.mu.Lock()
		j.retries++
		j.mu.Unlock()
		delay := m.cfg.RetryBackoff << attempt
		if max := 32 * m.cfg.RetryBackoff; delay > max {
			delay = max
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	// Graceful degradation: a hierarchical solve that keeps failing
	// numerically gets one flat-organization attempt — the flat filter
	// trades the hierarchy's speed for a better-conditioned update — before
	// the job is declared failed.
	if err != nil && solvererr.Transient(err) && ctx.Err() == nil && j.params.Mode != "flat" {
		m.flatFallbacks.Add(1)
		j.mu.Lock()
		j.flatFallback = true
		j.mu.Unlock()
		if fsol, ferr := m.attempt(ctx, j, m.cfg.MaxRetries+1, true, g.Procs); ferr == nil {
			sol, err = fsol, nil
		}
	}

	switch {
	case err == nil:
		if j.params.KeepPosterior {
			kept := m.posteriors.put(&storedPosterior{
				jobID:      j.id,
				problem:    j.problem.Name,
				topoHash:   encode.TopologyHash(j.problem),
				structHash: encode.StructureHash(j.problem),
				post:       sol.Posterior(),
			})
			j.mu.Lock()
			j.posteriorKept = kept
			j.mu.Unlock()
		}
		j.finish(StateDone, "", "", sol)
	case errors.Is(err, context.Canceled):
		j.finish(StateCancelled, solvererr.CodeCanceled, "cancelled while running", nil)
	case errors.Is(err, context.DeadlineExceeded):
		j.finish(StateFailed, solvererr.CodeTimeout, fmt.Sprintf("timeout after %d ms", j.params.TimeoutMillis), nil)
	default:
		j.finish(StateFailed, errCode(err), err.Error(), nil)
	}
}

// panicError is a worker panic recovered during one solve attempt,
// carrying the panic value so the job record can report it.
type panicError struct {
	val any
}

func (e *panicError) Error() string { return fmt.Sprintf("internal error: panic: %v", e.val) }

// errCode maps a terminal job error onto its machine-readable class.
func errCode(err error) string {
	var pe *panicError
	if errors.As(err, &pe) {
		return encode.CodeInternalError
	}
	return solvererr.Code(err)
}

// retryable reports whether a failed attempt is worth re-running: transient
// numerical failures can vanish at a different starting perturbation, and a
// panic may be a data-dependent bug a retry sidesteps. Cancellation,
// timeouts and malformed problems are final.
func retryable(err error) bool {
	var pe *panicError
	return solvererr.Transient(err) || errors.As(err, &pe)
}

// attempt runs one solve attempt behind a recover barrier: a panic in the
// solver surfaces as a *panicError with the daemon unharmed. The attempt
// number perturbs the starting estimate's seed so a retry explores a
// different basin instead of deterministically repeating the failure.
func (m *manager) attempt(ctx context.Context, j *job, attempt int, flat bool, procs int) (sol *core.Solution, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.panics.Add(1)
			log.Printf("phmsed: job %s attempt %d: recovered panic: %v\n%s", j.id, attempt, r, debug.Stack())
			sol, err = nil, &panicError{val: r}
		}
	}()
	if h := faultinject.Installed(); h != nil && h.BeforeAttempt != nil {
		h.BeforeAttempt(j.problem.Name, attempt)
	}
	return m.solve(ctx, j, attempt, flat, procs)
}

// solve builds the estimator (reusing cached planning artifacts when the
// topology was seen before) and runs it under the job's context. flat
// forces the flat organization regardless of the requested mode (the
// numerical-failure fallback path). procs is the admitted team width —
// the scheduler's cost-sized, contention-shrunk grant — though the
// request may still ask for fewer.
func (m *manager) solve(ctx context.Context, j *job, attempt int, flat bool, procs int) (*core.Solution, error) {
	params := j.params
	mode := core.Hierarchical
	if flat || params.Mode == "flat" {
		mode = core.Flat
	}
	if p := params.Procs; p > 0 && p < procs {
		procs = p
	}
	if procs < 1 {
		procs = 1
	}
	batch := params.BatchSize
	if batch <= 0 {
		batch = 16
	}
	const leafSize = 16

	cfg := core.Config{
		Mode:          mode,
		Procs:         procs,
		BatchSize:     batch,
		MaxCycles:     params.MaxCycles,
		Tol:           params.Tol,
		AutoDecompose: params.Auto,
		LeafSize:      leafSize,
		Recorder:      m.rec,
		OnCycle:       j.setProgress,
	}

	var est *core.Estimator
	var err error
	if mode == core.Flat {
		est, err = core.New(j.problem, cfg)
	} else {
		key := planKey(encode.TopologyHash(j.problem), mode, procs, batch, leafSize, params.Auto)
		art, hit := m.cache.get(key)
		var fresh *core.PlanArtifacts
		est, fresh, err = core.NewWithPlan(j.problem, cfg, art)
		// Record the hit as soon as it is known so a status poll during
		// the solve already reports it.
		j.mu.Lock()
		j.cacheHit = hit
		j.mu.Unlock()
		if err == nil && !hit {
			m.cache.put(key, fresh)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("building estimator: %w", err)
	}

	// Warm start: continue from the referenced job's posterior instead of
	// the perturbed-prior initialisation.
	if j.warm != nil {
		return est.SolveFrom(ctx, j.warm.post)
	}
	perturb := params.Perturb
	if perturb == 0 {
		perturb = 0.5
	} else if perturb < 0 {
		perturb = 0
	}
	seed := params.Seed
	if seed == 0 {
		seed = 1
	}
	// Each retry perturbs from a different seed: a transient numerical
	// failure tied to one starting estimate should not repeat verbatim.
	seed += int64(attempt)
	init := molecule.Perturbed(j.problem, perturb, seed)
	return est.SolveContext(ctx, init)
}

// isDraining reports whether the manager has stopped accepting work.
func (m *manager) isDraining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// list returns submission-ordered status snapshots of retained job
// records, optionally filtered by state, starting strictly after the given
// id, and capped at limit entries. The second return value is the cursor
// for the next page ("" when the listing is exhausted). Job ids are
// zero-padded and assigned in submission order, so "after" pagination is a
// simple lexicographic comparison that stays correct even when the
// referenced record has since been pruned.
func (m *manager) list(state JobState, after string, limit int) ([]JobStatus, string) {
	m.mu.Lock()
	jobs := make([]*job, 0, len(m.order))
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil && (after == "" || id > after) {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	out := []JobStatus{}
	next := ""
	for _, j := range jobs {
		st := j.status()
		if state != "" && st.State != state {
			continue
		}
		if len(out) == limit {
			next = out[len(out)-1].ID
			break
		}
		out = append(out, st)
	}
	return out, next
}

// queueDepth returns the number of jobs awaiting admission (in
// StateQueued, whether still in the channel or blocked at the scheduler).
func (m *manager) queueDepth() int { return int(m.queuedCount.Load()) }

// countByState scans the job records and tallies them by state.
func (m *manager) countByState() map[JobState]int {
	m.mu.Lock()
	records := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		records = append(records, j)
	}
	m.mu.Unlock()
	counts := map[JobState]int{
		StateQueued: 0, StateRunning: 0, StateDone: 0, StateFailed: 0, StateCancelled: 0,
	}
	for _, j := range records {
		j.mu.Lock()
		counts[j.state]++
		j.mu.Unlock()
	}
	return counts
}

// shutdown stops intake and drains the queue: already-accepted jobs (both
// running and queued) are allowed to finish. When ctx expires first, every
// remaining job is cancelled — including any blocked at the scheduler's
// admission wait — and shutdown waits for the work to observe the
// cancellation, returning ctx's error to signal the forced drain.
func (m *manager) shutdown(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	if !already {
		close(m.queue)
	}
	m.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		// The dispatcher exits once the closed queue is empty; only then is
		// the set of job goroutines final.
		m.wg.Wait()
		m.jobsWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}
	// Forced drain: abort admission waits, cancel everything still alive,
	// and wait for the work to wind down (running solves observe the
	// cancellation at the next cycle boundary).
	m.dispatchCancel()
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	for _, id := range ids {
		m.requestCancel(id)
	}
	<-drained
	return ctx.Err()
}
