package server

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"phmse/internal/faultinject"
)

// The tentpole guarantee: the processor budget, not a worker count, bounds
// concurrency. Under the old per-job worker pool this config (Workers: 1)
// ran one job at a time regardless of how cheap the jobs were. With the
// elastic scheduler the four tiny jobs each coalesce onto a MinTeam-wide
// team and all four run at once inside the same 4-processor budget.
func TestTinyJobConcurrencyExceedsWorkerCeiling(t *testing.T) {
	const tiny = 4
	var (
		arrived atomic.Int32
		allIn   = make(chan struct{})
		release = make(chan struct{})
		once    sync.Once
	)
	releaseAll := func() { once.Do(func() { close(release) }) }
	t.Cleanup(releaseAll)
	faultinject.Set(&faultinject.Hooks{
		BeforeAttempt: func(tag string, attempt int) {
			if n := arrived.Add(1); n == tiny {
				close(allIn)
			}
			<-release
		},
	})
	t.Cleanup(faultinject.Reset)

	// Workers: 1 is the legacy ceiling under test; the explicit MaxProcs
	// overrides its processor-budget mapping so only the concurrency
	// semantics differ from the old code.
	srv, _, c := newTestServer(t, Config{
		Workers: 1, ProcsPerJob: 1,
		MaxProcs: tiny, MinTeam: 1, MaxTeam: tiny,
		QueueDepth: 2 * tiny,
	})

	ids := make([]string, tiny)
	for i := range ids {
		ids[i] = submit(t, c, helix(1), quickParams()).ID
	}

	select {
	case <-allIn:
	case <-time.After(120 * time.Second):
		t.Fatalf("only %d of %d tiny jobs reached a solve attempt concurrently; worker count still caps concurrency", arrived.Load(), tiny)
	}

	// All four are blocked inside their solve attempt: the server must
	// report more running jobs than the legacy worker count allowed.
	m := srv.Snapshot()
	if m.Jobs.Running <= srv.cfg.Workers {
		t.Fatalf("running = %d, want > legacy worker count %d", m.Jobs.Running, srv.cfg.Workers)
	}
	if m.Jobs.Running < tiny {
		t.Fatalf("running = %d, want all %d tiny jobs concurrent", m.Jobs.Running, tiny)
	}
	if got := m.Scheduler.ProcsInUse; got != tiny {
		t.Fatalf("procs in use = %d, want %d (one MinTeam proc per coalesced job)", got, tiny)
	}
	if got := m.Scheduler.Coalesced; got < tiny {
		t.Fatalf("coalesced grants = %d, want >= %d", got, tiny)
	}

	releaseAll()
	for _, id := range ids {
		if st := waitState(t, c, id, StateDone); st.Error != "" {
			t.Fatalf("tiny job %s failed after release: %+v", id, st)
		}
	}
}

// Coalescing must be invisible in the numbers: a tiny job solved on a
// shared MinTeam grant — racing three siblings through the shared
// workspace pool — produces bitwise the same positions as the same job
// solved alone on a dedicated legacy-style team of the same width.
func TestCoalescedResultsBitwiseMatchDedicated(t *testing.T) {
	p := helix(2)

	// Reference: rigid one-job-at-a-time server, dedicated 1-proc team.
	_, _, refc := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1})
	refID := submit(t, refc, p, quickParams()).ID
	waitState(t, refc, refID, StateDone)
	ref, err := refc.Result(context.Background(), refID)
	if err != nil {
		t.Fatal(err)
	}

	// Elastic: four copies of the job coalesce and run concurrently.
	_, _, c := newTestServer(t, Config{MaxProcs: 4, MinTeam: 1, MaxTeam: 4, QueueDepth: 16})
	const copies = 4
	ids := make([]string, copies)
	for i := range ids {
		ids[i] = submit(t, c, p, quickParams()).ID
	}
	for _, id := range ids {
		waitState(t, c, id, StateDone)
		got, err := c.Result(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cycles != ref.Cycles || got.Residual != ref.Residual {
			t.Fatalf("job %s: cycles/residual %d/%v diverged from dedicated-team reference %d/%v",
				id, got.Cycles, got.Residual, ref.Cycles, ref.Residual)
		}
		if len(got.Positions) != len(ref.Positions) {
			t.Fatalf("job %s: %d positions, reference has %d", id, len(got.Positions), len(ref.Positions))
		}
		for a := range got.Positions {
			if got.Positions[a] != ref.Positions[a] {
				t.Fatalf("job %s atom %d: coalesced %v != dedicated %v", id, a, got.Positions[a], ref.Positions[a])
			}
		}
	}
}

// A job costed above Grain × MaxTeam must be granted the full MaxTeam
// width when the pool is idle — big jobs are not starved down to MinTeam.
func TestLargeJobGetsWideTeam(t *testing.T) {
	srv, _, c := newTestServer(t, Config{MaxProcs: 4, MinTeam: 1, MaxTeam: 4, TeamGrain: 1})
	// Grain 1 makes even the tiny helix cost to the MaxTeam clamp.
	id := submit(t, c, helix(2), quickParams()).ID
	waitState(t, c, id, StateDone)
	m := srv.Snapshot()
	if m.Scheduler.Grants < 1 {
		t.Fatalf("grants = %d, want >= 1", m.Scheduler.Grants)
	}
	if m.Scheduler.Coalesced != 0 {
		t.Fatalf("coalesced = %d; a Grain-1 job must size above MinTeam", m.Scheduler.Coalesced)
	}
}

// The scheduler and workspace-pool gauges ride the existing /metrics
// endpoint; this pins their wire presence and internal consistency.
func TestMetricsExposeSchedulerAndPool(t *testing.T) {
	_, ts, c := newTestServer(t, Config{MaxProcs: 4, MinTeam: 1, MaxTeam: 4})
	for i := 0; i < 3; i++ {
		id := submit(t, c, helix(1), quickParams()).ID
		waitState(t, c, id, StateDone)
	}

	var m Metrics
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("/metrics: http %d", code)
	}
	s := m.Scheduler
	if s.ProcsCapacity != 4 || s.MinTeam != 1 || s.MaxTeam != 4 {
		t.Fatalf("scheduler shape = cap %d, min %d, max %d; want 4/1/4", s.ProcsCapacity, s.MinTeam, s.MaxTeam)
	}
	if s.Grants < 3 {
		t.Fatalf("grants = %d, want >= 3", s.Grants)
	}
	if s.QueueWaitCount != s.Grants {
		t.Fatalf("queue_wait_count = %d, want one observation per grant (%d)", s.QueueWaitCount, s.Grants)
	}
	var sum int64
	for _, n := range s.QueueWait {
		sum += n
	}
	if sum != s.QueueWaitCount {
		t.Fatalf("queue-wait bucket sum = %d, want %d", sum, s.QueueWaitCount)
	}
	if s.ProcsInUse != 0 || s.TeamsActive != 0 {
		t.Fatalf("idle server reports procs_in_use %d, teams_active %d; grants leaked", s.ProcsInUse, s.TeamsActive)
	}
	if m.WorkspacePool.Gets < 1 || m.WorkspacePool.Puts < 1 {
		t.Fatalf("workspace pool gets/puts = %d/%d, want both > 0", m.WorkspacePool.Gets, m.WorkspacePool.Puts)
	}
}

// Per-job Procs in the submit params still caps that job's team below
// what the cost model would request — the client override survives the
// elastic rewrite.
func TestParamsProcsCapsGrant(t *testing.T) {
	srv, _, c := newTestServer(t, Config{MaxProcs: 4, MinTeam: 2, MaxTeam: 4, TeamGrain: 1})
	params := quickParams()
	params.Procs = 1
	id := submit(t, c, helix(2), params).ID
	waitState(t, c, id, StateDone)
	// Grain 1 would size the job to MaxTeam, but params.Procs=1 caps the
	// request; MinTeam clamping keeps the grant at the scheduler floor.
	m := srv.Snapshot()
	if m.Scheduler.Coalesced < 1 {
		t.Fatalf("coalesced = %d; params.Procs=1 must pull the request down to MinTeam", m.Scheduler.Coalesced)
	}
}
