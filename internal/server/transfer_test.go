package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/encode"
)

// doAuth issues a raw request with an optional bearer token and decodes
// the JSON response — the transfer endpoints are exercised at wire level
// because the router's migration pass speaks raw HTTP, not the client.
func doAuth(t *testing.T, method, url, token string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestPosteriorTransferRoundTrip(t *testing.T) {
	const token = "transfer-secret"
	_, srcTS, srcC := newTestServer(t, Config{Workers: 2, InstanceID: "src", AdminToken: token})
	dstSrv, dstTS, dstC := newTestServer(t, Config{Workers: 2, InstanceID: "dst", AdminToken: token})
	ctx := context.Background()

	p := helix(2)
	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, srcC, p, params)
	waitState(t, srcC, st.ID, StateDone)

	// Index lists the retained posterior with its routing hashes.
	var idx encode.PosteriorIndex
	if code := doAuth(t, http.MethodGet, srcTS.URL+"/v1/posteriors", "", nil, &idx); code != http.StatusOK {
		t.Fatalf("index: status %d", code)
	}
	if len(idx.Posteriors) != 1 {
		t.Fatalf("index: %d posteriors, want 1", len(idx.Posteriors))
	}
	info := idx.Posteriors[0]
	if info.Job != st.ID || info.TopologyHash == "" || info.StructureHash == "" || info.Bytes <= 0 {
		t.Fatalf("index entry incomplete: %+v", info)
	}
	// Prefix filtering: exact id matches, a foreign prefix does not.
	if code := doAuth(t, http.MethodGet, srcTS.URL+"/v1/posteriors?prefix=zzz", "", nil, &idx); code != http.StatusOK || len(idx.Posteriors) != 0 {
		t.Fatalf("prefix=zzz: status %d, %d entries", code, len(idx.Posteriors))
	}

	doc, err := srcC.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatalf("fetching posterior: %v", err)
	}
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}

	// Import on the destination, exactly as the router's migration does.
	var imported encode.PosteriorInfo
	if code := doAuth(t, http.MethodPut, dstTS.URL+"/v1/posteriors/"+st.ID, token, body, &imported); code != http.StatusOK {
		t.Fatalf("put: status %d", code)
	}
	if imported.Job != st.ID || imported.StructureHash != info.StructureHash {
		t.Fatalf("import response mismatch: %+v vs index %+v", imported, info)
	}

	// The destination can now warm-start from the migrated posterior even
	// though it never ran the source job.
	warm, err := dstC.WarmStart(ctx, p, quickParams(), st.ID)
	if err != nil {
		t.Fatalf("warm start on destination: %v", err)
	}
	wst := waitState(t, dstC, warm.ID, StateDone)
	if wst.WarmStartFrom != st.ID {
		t.Fatalf("warm job records warm_start_from=%q, want %q", wst.WarmStartFrom, st.ID)
	}

	// Source delete (the migration ack step), then a duplicate delete 404s.
	if code := doAuth(t, http.MethodDelete, srcTS.URL+"/v1/posteriors/"+st.ID, token, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doAuth(t, http.MethodGet, srcTS.URL+"/v1/posteriors", "", nil, &idx); code != http.StatusOK || len(idx.Posteriors) != 0 {
		t.Fatalf("source index after delete: status %d, %d entries", code, len(idx.Posteriors))
	}
	if code := doAuth(t, http.MethodDelete, srcTS.URL+"/v1/posteriors/"+st.ID, token, nil, nil); code != http.StatusNotFound {
		t.Fatalf("duplicate delete: status %d, want 404", code)
	}
	stats := dstSrv.mgr.posteriors.stats()
	if stats.imported != 1 || stats.entries != 1 {
		t.Fatalf("destination stats: imported=%d entries=%d, want 1/1", stats.imported, stats.entries)
	}
}

// TestPosteriorPutIdempotent re-imports the same document: a retried
// transfer (duplicate PUT after a lost ack) must replace in place, not
// duplicate or fail.
func TestPosteriorPutIdempotent(t *testing.T) {
	srcSrv, srcTS, srcC := newTestServer(t, Config{Workers: 2, InstanceID: "src"})
	_ = srcSrv
	ctx := context.Background()

	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, srcC, helix(2), params)
	waitState(t, srcC, st.ID, StateDone)
	doc, err := srcC.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(doc)

	dstSrv, dstTS, _ := newTestServer(t, Config{Workers: 2, InstanceID: "dst"})
	for i := 0; i < 2; i++ {
		if code := doAuth(t, http.MethodPut, dstTS.URL+"/v1/posteriors/"+st.ID, "", body, nil); code != http.StatusOK {
			t.Fatalf("put #%d: status %d", i+1, code)
		}
	}
	stats := dstSrv.mgr.posteriors.stats()
	if stats.entries != 1 {
		t.Fatalf("after duplicate PUT: %d entries, want 1", stats.entries)
	}
	if stats.imported != 2 {
		t.Fatalf("after duplicate PUT: imported=%d, want 2", stats.imported)
	}
	_ = srcTS
}

func TestPosteriorPutValidation(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, c, helix(2), params)
	waitState(t, c, st.ID, StateDone)
	doc, err := c.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}

	var env struct {
		Error encode.ErrorBody `json:"error"`
	}
	// Path id and document job disagree.
	body, _ := json.Marshal(doc)
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/other-job", "", body, &env); code != http.StatusBadRequest {
		t.Fatalf("id mismatch: status %d, want 400", code)
	}
	// Missing structure hash.
	stripped := doc
	stripped.StructureHash = ""
	body, _ = json.Marshal(stripped)
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, "", body, &env); code != http.StatusBadRequest {
		t.Fatalf("missing structure hash: status %d, want 400", code)
	}
	// Undecodable payload.
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, "", []byte("{"), &env); code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", code)
	}
}

func TestPosteriorPutBudget(t *testing.T) {
	_, srcTS, srcC := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, srcC, helix(2), params)
	waitState(t, srcC, st.ID, StateDone)
	doc, err := srcC.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(doc)
	_ = srcTS

	// A 16-byte budget cannot admit any real posterior.
	_, tinyTS, _ := newTestServer(t, Config{Workers: 2, PosteriorBytes: 16})
	var env struct {
		Error encode.ErrorBody `json:"error"`
	}
	code := doAuth(t, http.MethodPut, tinyTS.URL+"/v1/posteriors/"+st.ID, "", body, &env)
	if code != http.StatusInsufficientStorage {
		t.Fatalf("over-budget import: status %d, want 507", code)
	}
	if env.Error.Code != encode.CodePosteriorBudget {
		t.Fatalf("over-budget import: code %q, want %q", env.Error.Code, encode.CodePosteriorBudget)
	}
}

func TestPosteriorTransferAuth(t *testing.T) {
	const token = "s3cret"
	_, ts, c := newTestServer(t, Config{Workers: 2, AdminToken: token})
	ctx := context.Background()
	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, c, helix(2), params)
	waitState(t, c, st.ID, StateDone)
	doc, err := c.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(doc)

	var env struct {
		Error encode.ErrorBody `json:"error"`
	}
	// Mutations without (or with a wrong) token are refused...
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, "", body, &env); code != http.StatusUnauthorized {
		t.Fatalf("tokenless PUT: status %d, want 401", code)
	}
	if env.Error.Code != encode.CodeUnauthorized {
		t.Fatalf("tokenless PUT: code %q, want %q", env.Error.Code, encode.CodeUnauthorized)
	}
	if code := doAuth(t, http.MethodDelete, ts.URL+"/v1/posteriors/"+st.ID, "wrong", nil, &env); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token DELETE: status %d, want 401", code)
	}
	// ...the read-only index stays open...
	if code := doAuth(t, http.MethodGet, ts.URL+"/v1/posteriors", "", nil, nil); code != http.StatusOK {
		t.Fatalf("tokenless index: status %d, want 200", code)
	}
	// ...and the right token is accepted.
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, token, body, nil); code != http.StatusOK {
		t.Fatalf("tokened PUT: status %d, want 200", code)
	}
}

// TestPosteriorPutInflightGate pins the transfer import gate: with
// TransferInflight=1, a second concurrent PUT is shed with 429 queue_full
// and a Retry-After hint, and the slot frees once the first import ends.
func TestPosteriorPutInflightGate(t *testing.T) {
	_, _, srcC := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, srcC, helix(2), params)
	waitState(t, srcC, st.ID, StateDone)
	doc, err := srcC.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(doc)

	gated, gatedTS, _ := newTestServer(t, Config{Workers: 2, TransferInflight: 1})

	// The first PUT drips its body through a pipe: the handler takes the
	// gate slot, then blocks decoding until the body arrives.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPut, gatedTS.URL+"/v1/posteriors/"+st.ID, pr)
	if err != nil {
		t.Fatal(err)
	}
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			firstDone <- -1
			return
		}
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(5 * time.Second)
	for gated.transferInflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first PUT never took the gate slot")
		}
		time.Sleep(time.Millisecond)
	}

	// A second PUT while the slot is held is shed with backpressure.
	req2, err := http.NewRequest(http.MethodPut, gatedTS.URL+"/v1/posteriors/"+st.ID, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Error encode.ErrorBody `json:"error"`
	}
	json.NewDecoder(resp2.Body).Decode(&env) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("concurrent PUT: status %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("concurrent PUT: no Retry-After header")
	}
	if env.Error.Code != encode.CodeQueueFull {
		t.Fatalf("concurrent PUT: code %q, want %q", env.Error.Code, encode.CodeQueueFull)
	}

	// Release the first import; it completes and frees the slot for the
	// next transfer.
	if _, err := pw.Write(body); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("dripped PUT: status %d, want 200", code)
	}
	if code := doAuth(t, http.MethodPut, gatedTS.URL+"/v1/posteriors/"+st.ID, "", body, nil); code != http.StatusOK {
		t.Fatalf("PUT after release: status %d, want 200", code)
	}
	if rej := gated.transferRejected.Load(); rej != 1 {
		t.Fatalf("transferRejected = %d, want 1", rej)
	}
}

// TestJobStatusShardField pins the documented v1 contract: every job
// status names the instance that ran it, matching the X-Phmsed-Instance
// response header identity.
func TestJobStatusShardField(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 2, InstanceID: "shard-a"})
	st := submit(t, c, helix(2), quickParams())
	if st.Shard != "shard-a" {
		t.Fatalf("submit status shard = %q, want shard-a", st.Shard)
	}
	done := waitState(t, c, st.ID, StateDone)
	if done.Shard != "shard-a" {
		t.Fatalf("done status shard = %q, want shard-a", done.Shard)
	}
	// The list surface carries it too.
	jl, err := c.List(context.Background(), client.ListOptions{})
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(jl.Jobs) != 1 {
		t.Fatalf("list: %d jobs, want 1", len(jl.Jobs))
	}
	for _, j := range jl.Jobs {
		if j.Shard != "shard-a" {
			t.Fatalf("listed job %s shard = %q, want shard-a", j.ID, j.Shard)
		}
	}
}
