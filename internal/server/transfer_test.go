package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"phmse/internal/client"
	"phmse/internal/encode"
)

// doAuth issues a raw request with an optional bearer token and decodes
// the JSON response — the transfer endpoints are exercised at wire level
// because the router's migration pass speaks raw HTTP, not the client.
func doAuth(t *testing.T, method, url, token string, body []byte, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestPosteriorTransferRoundTrip(t *testing.T) {
	const token = "transfer-secret"
	_, srcTS, srcC := newTestServer(t, Config{Workers: 2, InstanceID: "src", AdminToken: token})
	dstSrv, dstTS, dstC := newTestServer(t, Config{Workers: 2, InstanceID: "dst", AdminToken: token})
	ctx := context.Background()

	p := helix(2)
	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, srcC, p, params)
	waitState(t, srcC, st.ID, StateDone)

	// Index lists the retained posterior with its routing hashes.
	var idx encode.PosteriorIndex
	if code := doAuth(t, http.MethodGet, srcTS.URL+"/v1/posteriors", "", nil, &idx); code != http.StatusOK {
		t.Fatalf("index: status %d", code)
	}
	if len(idx.Posteriors) != 1 {
		t.Fatalf("index: %d posteriors, want 1", len(idx.Posteriors))
	}
	info := idx.Posteriors[0]
	if info.Job != st.ID || info.TopologyHash == "" || info.StructureHash == "" || info.Bytes <= 0 {
		t.Fatalf("index entry incomplete: %+v", info)
	}
	// Prefix filtering: exact id matches, a foreign prefix does not.
	if code := doAuth(t, http.MethodGet, srcTS.URL+"/v1/posteriors?prefix=zzz", "", nil, &idx); code != http.StatusOK || len(idx.Posteriors) != 0 {
		t.Fatalf("prefix=zzz: status %d, %d entries", code, len(idx.Posteriors))
	}

	doc, err := srcC.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatalf("fetching posterior: %v", err)
	}
	body, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}

	// Import on the destination, exactly as the router's migration does.
	var imported encode.PosteriorInfo
	if code := doAuth(t, http.MethodPut, dstTS.URL+"/v1/posteriors/"+st.ID, token, body, &imported); code != http.StatusOK {
		t.Fatalf("put: status %d", code)
	}
	if imported.Job != st.ID || imported.StructureHash != info.StructureHash {
		t.Fatalf("import response mismatch: %+v vs index %+v", imported, info)
	}

	// The destination can now warm-start from the migrated posterior even
	// though it never ran the source job.
	warm, err := dstC.WarmStart(ctx, p, quickParams(), st.ID)
	if err != nil {
		t.Fatalf("warm start on destination: %v", err)
	}
	wst := waitState(t, dstC, warm.ID, StateDone)
	if wst.WarmStartFrom != st.ID {
		t.Fatalf("warm job records warm_start_from=%q, want %q", wst.WarmStartFrom, st.ID)
	}

	// Source delete (the migration ack step), then a duplicate delete 404s.
	if code := doAuth(t, http.MethodDelete, srcTS.URL+"/v1/posteriors/"+st.ID, token, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doAuth(t, http.MethodGet, srcTS.URL+"/v1/posteriors", "", nil, &idx); code != http.StatusOK || len(idx.Posteriors) != 0 {
		t.Fatalf("source index after delete: status %d, %d entries", code, len(idx.Posteriors))
	}
	if code := doAuth(t, http.MethodDelete, srcTS.URL+"/v1/posteriors/"+st.ID, token, nil, nil); code != http.StatusNotFound {
		t.Fatalf("duplicate delete: status %d, want 404", code)
	}
	stats := dstSrv.mgr.posteriors.stats()
	if stats.imported != 1 || stats.entries != 1 {
		t.Fatalf("destination stats: imported=%d entries=%d, want 1/1", stats.imported, stats.entries)
	}
}

// TestPosteriorPutIdempotent re-imports the same document: a retried
// transfer (duplicate PUT after a lost ack) must replace in place, not
// duplicate or fail.
func TestPosteriorPutIdempotent(t *testing.T) {
	srcSrv, srcTS, srcC := newTestServer(t, Config{Workers: 2, InstanceID: "src"})
	_ = srcSrv
	ctx := context.Background()

	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, srcC, helix(2), params)
	waitState(t, srcC, st.ID, StateDone)
	doc, err := srcC.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(doc)

	dstSrv, dstTS, _ := newTestServer(t, Config{Workers: 2, InstanceID: "dst"})
	for i := 0; i < 2; i++ {
		if code := doAuth(t, http.MethodPut, dstTS.URL+"/v1/posteriors/"+st.ID, "", body, nil); code != http.StatusOK {
			t.Fatalf("put #%d: status %d", i+1, code)
		}
	}
	stats := dstSrv.mgr.posteriors.stats()
	if stats.entries != 1 {
		t.Fatalf("after duplicate PUT: %d entries, want 1", stats.entries)
	}
	if stats.imported != 2 {
		t.Fatalf("after duplicate PUT: imported=%d, want 2", stats.imported)
	}
	_ = srcTS
}

func TestPosteriorPutValidation(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()

	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, c, helix(2), params)
	waitState(t, c, st.ID, StateDone)
	doc, err := c.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}

	var env struct {
		Error encode.ErrorBody `json:"error"`
	}
	// Path id and document job disagree.
	body, _ := json.Marshal(doc)
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/other-job", "", body, &env); code != http.StatusBadRequest {
		t.Fatalf("id mismatch: status %d, want 400", code)
	}
	// Missing structure hash.
	stripped := doc
	stripped.StructureHash = ""
	body, _ = json.Marshal(stripped)
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, "", body, &env); code != http.StatusBadRequest {
		t.Fatalf("missing structure hash: status %d, want 400", code)
	}
	// Undecodable payload.
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, "", []byte("{"), &env); code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", code)
	}
}

func TestPosteriorPutBudget(t *testing.T) {
	_, srcTS, srcC := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, srcC, helix(2), params)
	waitState(t, srcC, st.ID, StateDone)
	doc, err := srcC.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(doc)
	_ = srcTS

	// A 16-byte budget cannot admit any real posterior.
	_, tinyTS, _ := newTestServer(t, Config{Workers: 2, PosteriorBytes: 16})
	var env struct {
		Error encode.ErrorBody `json:"error"`
	}
	code := doAuth(t, http.MethodPut, tinyTS.URL+"/v1/posteriors/"+st.ID, "", body, &env)
	if code != http.StatusInsufficientStorage {
		t.Fatalf("over-budget import: status %d, want 507", code)
	}
	if env.Error.Code != encode.CodePosteriorBudget {
		t.Fatalf("over-budget import: code %q, want %q", env.Error.Code, encode.CodePosteriorBudget)
	}
}

func TestPosteriorTransferAuth(t *testing.T) {
	const token = "s3cret"
	_, ts, c := newTestServer(t, Config{Workers: 2, AdminToken: token})
	ctx := context.Background()
	params := quickParams()
	params.KeepPosterior = true
	st := submit(t, c, helix(2), params)
	waitState(t, c, st.ID, StateDone)
	doc, err := c.Posterior(ctx, st.ID, true)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(doc)

	var env struct {
		Error encode.ErrorBody `json:"error"`
	}
	// Mutations without (or with a wrong) token are refused...
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, "", body, &env); code != http.StatusUnauthorized {
		t.Fatalf("tokenless PUT: status %d, want 401", code)
	}
	if env.Error.Code != encode.CodeUnauthorized {
		t.Fatalf("tokenless PUT: code %q, want %q", env.Error.Code, encode.CodeUnauthorized)
	}
	if code := doAuth(t, http.MethodDelete, ts.URL+"/v1/posteriors/"+st.ID, "wrong", nil, &env); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token DELETE: status %d, want 401", code)
	}
	// ...the read-only index stays open...
	if code := doAuth(t, http.MethodGet, ts.URL+"/v1/posteriors", "", nil, nil); code != http.StatusOK {
		t.Fatalf("tokenless index: status %d, want 200", code)
	}
	// ...and the right token is accepted.
	if code := doAuth(t, http.MethodPut, ts.URL+"/v1/posteriors/"+st.ID, token, body, nil); code != http.StatusOK {
		t.Fatalf("tokened PUT: status %d, want 200", code)
	}
}

// TestJobStatusShardField pins the documented v1 contract: every job
// status names the instance that ran it, matching the X-Phmsed-Instance
// response header identity.
func TestJobStatusShardField(t *testing.T) {
	_, _, c := newTestServer(t, Config{Workers: 2, InstanceID: "shard-a"})
	st := submit(t, c, helix(2), quickParams())
	if st.Shard != "shard-a" {
		t.Fatalf("submit status shard = %q, want shard-a", st.Shard)
	}
	done := waitState(t, c, st.ID, StateDone)
	if done.Shard != "shard-a" {
		t.Fatalf("done status shard = %q, want shard-a", done.Shard)
	}
	// The list surface carries it too.
	jl, err := c.List(context.Background(), client.ListOptions{})
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(jl.Jobs) != 1 {
		t.Fatalf("list: %d jobs, want 1", len(jl.Jobs))
	}
	for _, j := range jl.Jobs {
		if j.Shard != "shard-a" {
			t.Fatalf("listed job %s shard = %q, want shard-a", j.ID, j.Shard)
		}
	}
}
