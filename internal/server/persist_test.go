package server

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"phmse/internal/core"
	"phmse/internal/encode"
	"phmse/internal/geom"
	"phmse/internal/mat"
)

// cappedParams completes in two constraint cycles — ends done (with a
// retainable posterior) without paying for convergence.
func cappedParams() encode.SolveParams {
	return encode.SolveParams{MaxCycles: 2, Perturb: 0.4, Seed: 17}
}

func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.post.json"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestPosteriorDiskRoundTrip: a kept posterior must survive a daemon
// restart via the -posterior-dir snapshots and serve a warm start from
// the reloaded store.
func TestPosteriorDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, QueueDepth: 16, PosteriorBytes: 64 << 20,
		InstanceID: "alpha", PosteriorDir: dir}
	srv1, _, c1 := newTestServer(t, cfg)
	p := helix(6)

	// A throwaway cold job first, so the kept posterior's id is not the
	// restarted daemon's first — restarts reuse low sequence numbers.
	submit(t, c1, p, cappedParams())
	params := cappedParams()
	params.KeepPosterior = true
	st := submit(t, c1, p, params)
	done := waitState(t, c1, st.ID, StateDone)
	if !done.PosteriorKept {
		t.Fatal("keep_posterior job did not retain its posterior")
	}
	if files := snapshotFiles(t, dir); len(files) != 1 {
		t.Fatalf("want 1 posterior snapshot, found %v", files)
	}
	if m := srv1.Snapshot(); m.Posteriors.Persisted != 1 {
		t.Fatalf("persisted=%d, want 1", m.Posteriors.Persisted)
	}

	// "Restart": a fresh server over the same snapshot directory.
	srv2, _, c2 := newTestServer(t, cfg)
	if m := srv2.Snapshot(); m.Posteriors.Loaded != 1 || m.Posteriors.Entries != 1 {
		t.Fatalf("after restart: loaded=%d entries=%d, want 1/1",
			m.Posteriors.Loaded, m.Posteriors.Entries)
	}
	st2, err := c2.WarmStart(context.Background(), withExtraDistances(p), cappedParams(), st.ID)
	if err != nil {
		t.Fatalf("warm start from reloaded posterior: %v", err)
	}
	if got := waitState(t, c2, st2.ID, StateDone); got.WarmStartFrom != st.ID {
		t.Fatalf("warm start from %q, want %q", got.WarmStartFrom, st.ID)
	}
}

// TestRestartDoesNotReuseSnapshotIDs: the id counter reseeds past every
// id the snapshot directory still references, so a restarted daemon can
// never re-mint the id of a reloaded posterior — the posterior store is
// consulted before the job table, and a collision would serve the old
// incarnation's posterior as the new job's (then clobber it on keep).
func TestRestartDoesNotReuseSnapshotIDs(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Workers: 2, QueueDepth: 16, PosteriorBytes: 64 << 20,
		InstanceID: "alpha", PosteriorDir: dir}
	_, _, c1 := newTestServer(t, cfg)
	params := cappedParams()
	params.KeepPosterior = true
	st := submit(t, c1, helix(6), params)
	waitState(t, c1, st.ID, StateDone)

	// Restart: the first post-restart job must get a fresh id, not the
	// retained snapshot's.
	_, _, c2 := newTestServer(t, cfg)
	st2 := submit(t, c2, helix(4), cappedParams())
	if st2.ID == st.ID {
		t.Fatalf("restarted daemon re-minted id %q of a retained posterior", st.ID)
	}
	if st.ID != "alpha.job-000001" || st2.ID != "alpha.job-000002" {
		t.Fatalf("ids %q then %q, want alpha.job-000001 then alpha.job-000002", st.ID, st2.ID)
	}
}

// testPosterior builds a small synthetic posterior for direct store tests.
func testPosterior(jobID string, n int) *storedPosterior {
	post := &core.Posterior{
		Positions:      make([]geom.Vec3, n),
		CoordVariances: make([]float64, 3*n),
		Cov:            mat.New(3*n, 3*n),
	}
	for i := range post.Positions {
		post.Positions[i] = geom.Vec3{float64(i), float64(2 * i), float64(3 * i)}
	}
	for i := range post.CoordVariances {
		post.CoordVariances[i] = 0.01 * float64(i+1)
	}
	return &storedPosterior{
		jobID:      jobID,
		problem:    "synthetic",
		topoHash:   "topo-" + jobID,
		structHash: "struct-synthetic",
		post:       post,
	}
}

// TestPosteriorEvictionRemovesSnapshot: LRU eviction must delete the
// evicted entry's snapshot, keeping disk in step with the byte budget.
func TestPosteriorEvictionRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	cost := testPosterior("x", 4).post.Bytes()

	// Budget fits one posterior but not two.
	ps := newPosteriorStore(cost+cost/2, dir)
	if !ps.put(testPosterior("alpha.job-000001", 4)) {
		t.Fatal("first put rejected")
	}
	if !ps.put(testPosterior("alpha.job-000002", 4)) {
		t.Fatal("second put rejected")
	}
	files := snapshotFiles(t, dir)
	if len(files) != 1 || !strings.Contains(files[0], "alpha.job-000002") {
		t.Fatalf("after eviction want only job-000002's snapshot, found %v", files)
	}
	if st := ps.stats(); st.evicted != 1 || st.persisted != 2 {
		t.Fatalf("evicted=%d persisted=%d, want 1/2", st.evicted, st.persisted)
	}

	// Reload honours the budget: with room for one, one comes back.
	ps2 := newPosteriorStore(cost+cost/2, dir)
	if st := ps2.stats(); st.loaded != 1 || st.entries != 1 {
		t.Fatalf("reload: loaded=%d entries=%d, want 1/1", st.loaded, st.entries)
	}
	if _, ok := ps2.get("alpha.job-000002"); !ok {
		t.Fatal("surviving posterior missing after reload")
	}
}

// TestPosteriorSnapshotIgnoresGarbage: unreadable snapshots must not
// poison startup.
func TestPosteriorSnapshotIgnoresGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.post.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ps := newPosteriorStore(1<<20, dir)
	if st := ps.stats(); st.loaded != 0 || st.entries != 0 {
		t.Fatalf("garbage snapshot admitted: loaded=%d entries=%d", st.loaded, st.entries)
	}
	if !ps.put(testPosterior("alpha.job-000001", 4)) {
		t.Fatal("store unusable after garbage snapshot")
	}
}

// TestInstanceIdentity: a configured instance id must show up in the
// response header, the health document, the metrics, and every job id.
func TestInstanceIdentity(t *testing.T) {
	srv, ts, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8, InstanceID: "west-1"})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hs encode.HealthStatus
	err = json.NewDecoder(resp.Body).Decode(&hs)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Phmsed-Instance"); got != "west-1" {
		t.Fatalf("X-Phmsed-Instance = %q, want west-1", got)
	}
	if hs.InstanceID != "west-1" {
		t.Fatalf("healthz instance_id = %q, want west-1", hs.InstanceID)
	}
	if m := srv.Snapshot(); m.Instance != "west-1" {
		t.Fatalf("metrics instance = %q, want west-1", m.Instance)
	}

	st := submit(t, c, helix(4), cappedParams())
	if !strings.HasPrefix(st.ID, "west-1.job-") {
		t.Fatalf("job id %q lacks instance qualifier", st.ID)
	}
	if got := encode.JobInstance(st.ID); got != "west-1" {
		t.Fatalf("JobInstance(%q) = %q", st.ID, got)
	}
}

// TestUnqualifiedIDsWithoutInstance: the default configuration keeps the
// seed's bare job-NNNNNN ids and no identity header.
func TestUnqualifiedIDsWithoutInstance(t *testing.T) {
	_, ts, c := newTestServer(t, Config{Workers: 1, QueueDepth: 8})
	st := submit(t, c, helix(4), cappedParams())
	if !strings.HasPrefix(st.ID, "job-") {
		t.Fatalf("job id %q should be unqualified", st.ID)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Phmsed-Instance"); got != "" {
		t.Fatalf("unexpected X-Phmsed-Instance %q without -instance", got)
	}
}
