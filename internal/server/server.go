// Package server implements phmsed, the structure-estimation daemon: an
// HTTP/JSON API over the encode problem format with a bounded job queue, a
// worker pool sized to the machine, a topology-keyed plan cache, per-job
// cancellation and timeouts, and graceful shutdown. It is the serving
// layer the scaling roadmap (sharding, batching, multi-backend) builds on.
//
// Endpoints:
//
//	POST /v1/solve            submit a problem (async); 202 + job id
//	GET  /v1/jobs/{id}        job status with cycle-level progress
//	GET  /v1/jobs/{id}/result solution JSON (or ?format=pdb)
//	POST /v1/jobs/{id}/cancel cancel a queued or running job
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             expvar-style counters, JSON
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"time"

	"phmse/internal/encode"
	"phmse/internal/pdb"
	"phmse/internal/trace"
)

// maxRequestBody bounds a solve request body (64 MiB holds a problem two
// orders of magnitude larger than the paper's ribosome).
const maxRequestBody = 64 << 20

// Config sizes the daemon. The zero value selects defaults that share the
// machine without oversubscription: Workers × ProcsPerJob ≈ GOMAXPROCS.
type Config struct {
	// Workers is the number of concurrent solves (default: half of
	// GOMAXPROCS, at least 1).
	Workers int
	// ProcsPerJob is the processor-team size each solve is built with
	// (default: GOMAXPROCS / Workers, at least 1). Requests may ask for
	// fewer processors but are capped at this share.
	ProcsPerJob int
	// QueueDepth bounds the number of jobs waiting for a worker; further
	// submissions are rejected with 429 (default 32).
	QueueDepth int
	// CacheSize bounds the plan cache entries (default 64; 0 keeps the
	// default, negative disables caching).
	CacheSize int
	// MaxRecords bounds retained job records (default 1024).
	MaxRecords int
}

func (c Config) withDefaults() Config {
	maxProcs := runtime.GOMAXPROCS(0)
	if c.Workers <= 0 {
		c.Workers = maxProcs / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.ProcsPerJob <= 0 {
		c.ProcsPerJob = maxProcs / c.Workers
		if c.ProcsPerJob < 1 {
			c.ProcsPerJob = 1
		}
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = 1024
	}
	return c
}

// Server is the phmsed HTTP handler plus its job manager. Create with New;
// it starts accepting work immediately. Call Shutdown to drain.
type Server struct {
	cfg   Config
	mgr   *manager
	mux   *http.ServeMux
	start time.Time
}

// New builds a serving instance and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mgr:   newManager(cfg),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops intake (new submissions get 503) and drains accepted
// jobs. If ctx expires first, remaining jobs are cancelled and Shutdown
// returns ctx's error once the workers have wound down.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.mgr.shutdown(ctx)
}

// Tracer exposes the shared per-operation-class time collector, for tests
// and embedding daemons.
func (s *Server) Tracer() *trace.Collector { return s.mgr.rec }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

type apiError struct {
	Error string   `json:"error"`
	State JobState `json:"state,omitempty"`
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	p, params, err := encode.ReadSolveRequest(body)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	j, err := s.mgr.submit(p, params)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.status())
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: err.Error()})
	case err == ErrDraining:
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
	}
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.requestCancel(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "unknown job"})
		return
	}
	sol, state := j.result()
	if state != StateDone || sol == nil {
		writeJSON(w, http.StatusConflict, apiError{Error: "job has no result", State: state})
		return
	}
	if r.URL.Query().Get("format") == "pdb" {
		sigma := make([]float64, len(sol.Variances))
		for i, v := range sol.Variances {
			sigma[i] = math.Sqrt(v)
		}
		w.Header().Set("Content-Type", "chemical/x-pdb")
		if err := pdb.Write(w, j.problem.Name, j.problem.Atoms, sol.Positions, sigma); err != nil {
			// Headers are gone; all we can do is log-style report in-band.
			fmt.Fprintf(w, "REMARK   phmsed: write error: %v\n", err)
		}
		return
	}
	doc := encode.NewSolutionDoc(j.problem.Name, sol.Positions, sol.Variances,
		sol.Cycles, sol.Converged, sol.RMSChange, sol.Residual)
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mgr.mu.Lock()
	draining := s.mgr.draining
	s.mgr.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Metrics is the JSON document served at /metrics.
type Metrics struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Jobs          MetricsJobs      `json:"jobs"`
	Queue         MetricsQueue     `json:"queue"`
	PlanCache     MetricsPlanCache `json:"plan_cache"`
	// OpTimes is the per-operation-class time breakdown accumulated across
	// all solves (the paper's d-s/chol/sys/m-m/m-v/vec accounting).
	OpTimes trace.Snapshot `json:"op_times"`
}

// MetricsJobs tallies jobs by lifecycle state plus intake counters.
type MetricsJobs struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int   `json:"cancelled"`
}

// MetricsQueue reports queue occupancy.
type MetricsQueue struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
}

// MetricsPlanCache reports plan-cache effectiveness.
type MetricsPlanCache struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
}

// Snapshot assembles the current metrics document.
func (s *Server) Snapshot() Metrics {
	counts := s.mgr.countByState()
	hits, misses, entries := s.mgr.cache.stats()
	m := Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Jobs: MetricsJobs{
			Submitted: s.mgr.submitted.Load(),
			Rejected:  s.mgr.rejected.Load(),
			Queued:    counts[StateQueued],
			Running:   counts[StateRunning],
			Done:      counts[StateDone],
			Failed:    counts[StateFailed],
			Cancelled: counts[StateCancelled],
		},
		Queue: MetricsQueue{
			Depth:    s.mgr.queueDepth(),
			Capacity: s.cfg.QueueDepth,
			Workers:  s.cfg.Workers,
		},
		PlanCache: MetricsPlanCache{Hits: hits, Misses: misses, Entries: entries},
		OpTimes:   s.mgr.rec.Snapshot(),
	}
	if total := hits + misses; total > 0 {
		m.PlanCache.HitRate = float64(hits) / float64(total)
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
