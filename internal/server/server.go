// Package server implements phmsed, the structure-estimation daemon: an
// HTTP/JSON API over the encode problem format with a bounded job queue, a
// worker pool sized to the machine, a topology-keyed plan cache, a
// memory-accounted posterior store for warm-start re-solves, per-job
// cancellation and timeouts, and graceful shutdown. It is the serving
// layer the scaling roadmap (sharding, batching, multi-backend) builds on.
//
// Endpoints (v1):
//
//	POST /v1/solve               submit a problem (async); 202 + job id.
//	                             Accepts "warm_start": {"job": ...} to
//	                             continue from a retained posterior and
//	                             "params": {"keep_posterior": true} to
//	                             retain this job's posterior.
//	GET  /v1/jobs                submission-ordered job listing
//	                             (?state=done&limit=50&after=<id>)
//	GET  /v1/jobs/{id}           job status with cycle-level progress
//	GET  /v1/jobs/{id}/result    solution JSON (or ?format=pdb)
//	GET  /v1/jobs/{id}/posterior retained posterior (?cov=full for the
//	                             full covariance matrix)
//	POST /v1/jobs/{id}/cancel    cancel a queued or running job
//	GET  /v1/posteriors          index of retained posteriors (?prefix=)
//	PUT  /v1/posteriors/{id}     import a posterior document (migration
//	                             ingest; budget-enforced, idempotent)
//	DELETE /v1/posteriors/{id}   drop a retained posterior (migration ack)
//	GET  /healthz                liveness (503 while draining)
//	GET  /readyz                 readiness (503 while draining or when the
//	                             job queue is saturated)
//	GET  /metrics                expvar-style counters, JSON
//
// Failures return the structured error envelope
// {"error": {"code": ..., "message": ..., "state": ...}} with the codes
// defined in package encode; the typed client in internal/client maps them
// onto Go errors.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"phmse/internal/encode"
	"phmse/internal/molecule"
	"phmse/internal/pdb"
	"phmse/internal/pool"
	"phmse/internal/sched"
	"phmse/internal/trace"
)

// maxRequestBody bounds a solve request body (64 MiB holds a problem two
// orders of magnitude larger than the paper's ribosome).
const maxRequestBody = 64 << 20

// maxListLimit caps one page of the job listing.
const maxListLimit = 500

// Config sizes the daemon. The zero value selects defaults that share the
// machine without oversubscription: the elastic scheduler's processor
// budget defaults to GOMAXPROCS, and team widths are sized per job from
// the fitted work estimator.
type Config struct {
	// Workers and ProcsPerJob are the legacy rigid split (Workers
	// concurrent solves × ProcsPerJob processors each). When set, they map
	// onto the elastic scheduler as MaxProcs = Workers × ProcsPerJob and
	// MaxTeam = ProcsPerJob, preserving the old budget and per-job width
	// ceiling — but job concurrency is now bounded by processors in use
	// (MaxProcs / MinTeam cheap jobs can run at once), not by Workers.
	// Prefer MaxProcs/MinTeam/MaxTeam directly.
	Workers     int
	ProcsPerJob int
	// MaxProcs is the total processor budget shared by all concurrently
	// running solves (default: Workers × ProcsPerJob when those are set,
	// otherwise GOMAXPROCS).
	MaxProcs int
	// MinTeam is the smallest processor team a solve runs on (default 1).
	// Cheap jobs are granted exactly MinTeam, so MaxProcs/MinTeam of them
	// coalesce onto the budget concurrently.
	MinTeam int
	// MaxTeam caps a single solve's team width (default: ProcsPerJob when
	// set, otherwise MaxProcs).
	MaxTeam int
	// TeamGrain is the estimated work (flop-model units) worth one
	// processor when sizing a job's team; a job of cost k×TeamGrain asks
	// for a k-wide team before clamping to [MinTeam, MaxTeam]. Zero
	// selects the scheduler default.
	TeamGrain float64
	// QueueDepth bounds the number of jobs waiting for a worker; further
	// submissions are rejected with 429 (default 32).
	QueueDepth int
	// CacheSize bounds the plan cache entries (default 64; 0 keeps the
	// default, negative disables caching).
	CacheSize int
	// MaxRecords bounds retained job records (default 1024).
	MaxRecords int
	// PosteriorBytes bounds the total heap footprint of retained job
	// posteriors; least-recently-used posteriors are evicted beyond it
	// (default 256 MiB; 0 keeps the default, negative disables retention).
	PosteriorBytes int64
	// MaxRetries is the number of automatic re-solve attempts after a
	// transient failure (recoverable numerics or a recovered panic), on top
	// of the first attempt (default 2; 0 keeps the default, negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the base delay of the capped exponential backoff
	// between attempts — attempt k waits RetryBackoff·2ᵏ, capped at 32×
	// (default 100 ms).
	RetryBackoff time.Duration
	// InstanceID, when set, marks this daemon as one shard of a routed
	// cluster: job ids are minted shard-qualified ("<instance>.job-000001"
	// instead of "job-000001"), every response carries an
	// X-Phmsed-Instance header, and /healthz, /readyz and /metrics report
	// the id — so phmse-router can build its routing table from health
	// probes and any routed response stays attributable to a shard.
	InstanceID string
	// PosteriorDir, when set, persists retained warm-start posteriors
	// under this directory (one encode.PosteriorDoc JSON snapshot per
	// job) and reloads them on startup within PosteriorBytes, so
	// posteriors survive daemon restarts. Evicted posteriors have their
	// snapshots removed alongside.
	PosteriorDir string
	// AdminToken, when set, gates the mutating posterior-transfer
	// endpoints (PUT/DELETE /v1/posteriors/{id}) behind
	// "Authorization: Bearer <token>". Deploy the same token on every
	// daemon and on the router (-admin-token) so migration passes
	// authenticate cluster-wide; empty leaves the endpoints open (the
	// single-daemon and test default).
	AdminToken string
	// TransferInflight caps concurrent posterior imports (PUT
	// /v1/posteriors/{id}); excess imports are answered 429 queue_full with
	// Retry-After so the router's transfer retries back off instead of
	// dogpiling a shard that is absorbing a migration wave. 0 (the default)
	// disables the cap.
	TransferInflight int
}

func (c Config) withDefaults() Config {
	gomax := runtime.GOMAXPROCS(0)
	legacy := c.Workers > 0 || c.ProcsPerJob > 0
	legacyProcs := c.ProcsPerJob > 0
	if c.Workers <= 0 {
		c.Workers = gomax / 2
		if c.Workers < 1 {
			c.Workers = 1
		}
	}
	if c.ProcsPerJob <= 0 {
		c.ProcsPerJob = gomax / c.Workers
		if c.ProcsPerJob < 1 {
			c.ProcsPerJob = 1
		}
	}
	if c.MaxProcs <= 0 {
		if legacy {
			c.MaxProcs = c.Workers * c.ProcsPerJob
		} else {
			c.MaxProcs = gomax
		}
	}
	if c.MaxTeam <= 0 {
		if legacyProcs {
			c.MaxTeam = c.ProcsPerJob
		} else {
			c.MaxTeam = c.MaxProcs
		}
	}
	if c.MinTeam <= 0 {
		c.MinTeam = 1
	}
	// Keep the triple consistent: MinTeam ≤ MaxTeam ≤ MaxProcs.
	if c.MaxTeam > c.MaxProcs {
		c.MaxTeam = c.MaxProcs
	}
	if c.MinTeam > c.MaxTeam {
		c.MinTeam = c.MaxTeam
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxRecords <= 0 {
		c.MaxRecords = 1024
	}
	if c.PosteriorBytes == 0 {
		c.PosteriorBytes = 256 << 20
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 2
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 100 * time.Millisecond
	}
	return c
}

// Server is the phmsed HTTP handler plus its job manager. Create with New;
// it starts accepting work immediately. Call Shutdown to drain.
type Server struct {
	cfg   Config
	mgr   *manager
	mux   *http.ServeMux
	start time.Time
	// transferInflight gauges concurrent posterior imports against
	// Config.TransferInflight; transferRejected counts imports turned away.
	transferInflight atomic.Int64
	transferRejected atomic.Int64
}

// New builds a serving instance and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		mgr:   newManager(cfg),
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/posterior", s.handleJobPosterior)
	s.mux.HandleFunc("GET /v1/posteriors", s.handlePosteriorIndex)
	s.mux.HandleFunc("PUT /v1/posteriors/{id}", s.handlePosteriorPut)
	s.mux.HandleFunc("DELETE /v1/posteriors/{id}", s.handlePosteriorDelete)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler. When the daemon has an instance
// identity, every response is stamped with it so a response that crossed
// the routing tier is attributable to the shard that produced it.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cfg.InstanceID != "" {
		w.Header().Set("X-Phmsed-Instance", s.cfg.InstanceID)
	}
	s.mux.ServeHTTP(w, r)
}

// Shutdown stops intake (new submissions get 503) and drains accepted
// jobs. If ctx expires first, remaining jobs are cancelled and Shutdown
// returns ctx's error once the workers have wound down.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.mgr.shutdown(ctx)
}

// Tracer exposes the shared per-operation-class time collector, for tests
// and embedding daemons.
func (s *Server) Tracer() *trace.Collector { return s.mgr.rec }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		// The status line is already on the wire, so the client cannot be
		// told; a failed body write almost always means it hung up. Log it
		// rather than losing it silently.
		log.Printf("phmsed: writing response: %v", err)
	}
}

// writeError emits the v1 structured error envelope.
func writeError(w http.ResponseWriter, httpStatus int, code, message string, state JobState) {
	writeJSON(w, httpStatus, encode.ErrorEnvelope{Error: encode.ErrorBody{
		Code:    code,
		Message: message,
		State:   state,
	}})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	p, params, warmRef, err := encode.ReadSolveRequest(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest, err.Error(), "")
		return
	}
	var warm *storedPosterior
	if warmRef != nil {
		var fail *apiFailure
		warm, fail = s.mgr.resolveWarmStart(warmRef.Job, p)
		if fail != nil {
			writeError(w, fail.httpStatus, fail.code, fail.message, fail.state)
			return
		}
	}
	j, err := s.mgr.submit(p, params, warm)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, j.status())
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, encode.CodeQueueFull, err.Error(), "")
	case err == ErrDraining:
		writeError(w, http.StatusServiceUnavailable, encode.CodeDraining, err.Error(), "")
	default:
		writeError(w, http.StatusInternalServerError, encode.CodeInternal, err.Error(), "")
	}
}

// apiFailure is a resolved request failure: the HTTP status plus the
// envelope fields to report.
type apiFailure struct {
	httpStatus int
	code       string
	message    string
	state      JobState
}

// resolveWarmStart maps a warm_start reference onto a retained posterior,
// distinguishing the three failure modes the API contract names: unknown
// job (not_found), known job without a usable posterior (no_result), and a
// posterior for a different molecule (topology_mismatch). Validating the
// structure hash here turns a silently wrong answer into a 4xx.
func (m *manager) resolveWarmStart(jobID string, p *molecule.Problem) (*storedPosterior, *apiFailure) {
	sp, ok := m.posteriors.get(jobID)
	if !ok {
		if j, exists := m.get(jobID); exists {
			st := j.status()
			msg := fmt.Sprintf("job %s has no retained posterior", jobID)
			switch {
			case !st.State.Terminal():
				msg = fmt.Sprintf("job %s has not finished", jobID)
			case st.State != StateDone:
				msg = fmt.Sprintf("job %s finished without a result", jobID)
			case st.PosteriorKept:
				msg = fmt.Sprintf("job %s's posterior was evicted", jobID)
			default:
				msg = fmt.Sprintf("job %s was not submitted with keep_posterior", jobID)
			}
			return nil, &apiFailure{http.StatusConflict, encode.CodeNoResult, msg, st.State}
		}
		return nil, &apiFailure{http.StatusNotFound, encode.CodeNotFound,
			fmt.Sprintf("unknown job %q", jobID), ""}
	}
	if encode.StructureHash(p) != sp.structHash {
		return nil, &apiFailure{http.StatusConflict, encode.CodeTopologyMismatch,
			fmt.Sprintf("posterior of job %s belongs to a different molecule (%d atoms, problem %q)",
				jobID, len(sp.post.Positions), sp.problem), ""}
	}
	return sp, nil
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, encode.CodeNotFound, "unknown job", "")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.requestCancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, encode.CodeNotFound, "unknown job", "")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.mgr.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, encode.CodeNotFound, "unknown job", "")
		return
	}
	sol, state := j.result()
	if state != StateDone || sol == nil {
		writeError(w, http.StatusConflict, encode.CodeNoResult, "job has no result", state)
		return
	}
	if r.URL.Query().Get("format") == "pdb" {
		sigma := make([]float64, len(sol.Variances))
		for i, v := range sol.Variances {
			sigma[i] = math.Sqrt(v)
		}
		w.Header().Set("Content-Type", "chemical/x-pdb")
		if err := pdb.Write(w, j.problem.Name, j.problem.Atoms, sol.Positions, sigma); err != nil {
			// Headers are gone; all we can do is log-style report in-band.
			fmt.Fprintf(w, "REMARK   phmsed: write error: %v\n", err)
		}
		return
	}
	doc := encode.NewSolutionDoc(j.problem.Name, sol.Positions, sol.Variances,
		sol.Cycles, sol.Converged, sol.RMSChange, sol.Residual, sol.Diagnostics)
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleJobPosterior(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sp, ok := s.mgr.posteriors.get(id)
	if !ok {
		if j, exists := s.mgr.get(id); exists {
			st := j.status()
			writeError(w, http.StatusConflict, encode.CodeNoResult,
				"job has no retained posterior (submit with keep_posterior, or it was evicted)", st.State)
			return
		}
		writeError(w, http.StatusNotFound, encode.CodeNotFound, "unknown job", "")
		return
	}
	cov := sp.post.Cov
	if r.URL.Query().Get("cov") != "full" {
		// The full matrix is 8·(3n)² bytes on the wire; serve the diagonal
		// unless explicitly asked.
		cov = nil
	}
	doc := encode.NewPosteriorDoc(sp.post.Positions, sp.post.CoordVariances, cov)
	doc.Job = sp.jobID
	doc.Problem = sp.problem
	doc.TopologyHash = sp.topoHash
	doc.StructureHash = sp.structHash
	writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	state := JobState(q.Get("state"))
	if state != "" && !state.Valid() {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("unknown state %q", state), "")
		return
	}
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
				fmt.Sprintf("limit must be a positive integer, got %q", v), "")
			return
		}
		limit = n
	}
	if limit > maxListLimit {
		limit = maxListLimit
	}
	jobs, next := s.mgr.list(state, q.Get("after"), limit)
	writeJSON(w, http.StatusOK, encode.JobList{Jobs: jobs, NextAfter: next})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	body := encode.HealthStatus{Status: "ok", InstanceID: s.cfg.InstanceID}
	if s.mgr.isDraining() {
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// handleReady is the load-balancer readiness probe: unlike /healthz
// (liveness), it also refuses traffic while the job queue is saturated, so
// a balancer stops routing submissions that would only bounce off 429s.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	depth := s.mgr.queueDepth()
	body := encode.HealthStatus{
		Status:        "ok",
		InstanceID:    s.cfg.InstanceID,
		QueueDepth:    depth,
		QueueCapacity: s.cfg.QueueDepth,
		Running:       s.mgr.countByState()[StateRunning],
	}
	switch {
	case s.mgr.isDraining():
		body.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case depth >= s.cfg.QueueDepth:
		body.Status = "saturated"
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}

// Metrics is the JSON document served at /metrics.
type Metrics struct {
	// Instance is the daemon's shard identity, when configured.
	Instance      string       `json:"instance,omitempty"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Jobs          MetricsJobs  `json:"jobs"`
	Queue         MetricsQueue `json:"queue"`
	// Scheduler reports the elastic solver-team scheduler: processor
	// utilization, active teams, grant/coalesce/shrink counters, and the
	// admission queue-wait histogram.
	Scheduler sched.Stats `json:"scheduler"`
	// WorkspacePool reports the size-classed scratch-buffer pool shared by
	// all solves.
	WorkspacePool pool.Stats       `json:"workspace_pool"`
	PlanCache     MetricsPlanCache `json:"plan_cache"`
	// Posteriors reports the warm-start posterior store's occupancy and
	// effectiveness.
	Posteriors MetricsPosteriorStore `json:"posterior_store"`
	// OpTimes is the per-operation-class time breakdown accumulated across
	// all solves (the paper's d-s/chol/sys/m-m/m-v/vec accounting).
	OpTimes trace.Snapshot `json:"op_times"`
}

// MetricsJobs tallies jobs by lifecycle state plus intake counters.
type MetricsJobs struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Queued    int   `json:"queued"`
	Running   int   `json:"running"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int   `json:"cancelled"`
	// Retries counts automatic re-solve attempts after transient failures;
	// Panics counts worker panics recovered without losing the daemon;
	// FlatFallbacks counts hierarchical solves degraded to one flat attempt.
	Retries       int64 `json:"retries"`
	Panics        int64 `json:"panics"`
	FlatFallbacks int64 `json:"flat_fallbacks"`
}

// MetricsQueue reports queue occupancy.
type MetricsQueue struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
}

// MetricsPlanCache reports plan-cache effectiveness.
type MetricsPlanCache struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	Entries int     `json:"entries"`
	HitRate float64 `json:"hit_rate"`
}

// MetricsPosteriorStore reports the posterior store's byte accounting.
type MetricsPosteriorStore struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Stored        int64 `json:"stored"`
	Rejected      int64 `json:"rejected"`
	Evicted       int64 `json:"evicted"`
	// Persisted counts posteriors snapshotted to disk; Loaded counts
	// snapshots reloaded at startup (both zero unless the store is
	// disk-backed via Config.PosteriorDir).
	Persisted int64 `json:"persisted,omitempty"`
	Loaded    int64 `json:"loaded,omitempty"`
	// Imported counts posteriors admitted over the transfer API
	// (migration ingests); Removed counts explicit transfer deletes (the
	// source side of an acked migration).
	Imported int64 `json:"imported,omitempty"`
	Removed  int64 `json:"removed,omitempty"`
	// ImportInflight/ImportRejected report the transfer import gate
	// (Config.TransferInflight): concurrent PUTs right now, and PUTs shed
	// with 429 since startup.
	ImportInflight int64 `json:"import_inflight,omitempty"`
	ImportRejected int64 `json:"import_rejected,omitempty"`
}

// Snapshot assembles the current metrics document.
func (s *Server) Snapshot() Metrics {
	counts := s.mgr.countByState()
	hits, misses, entries := s.mgr.cache.stats()
	ps := s.mgr.posteriors.stats()
	m := Metrics{
		Instance:      s.cfg.InstanceID,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Jobs: MetricsJobs{
			Submitted:     s.mgr.submitted.Load(),
			Rejected:      s.mgr.rejected.Load(),
			Queued:        counts[StateQueued],
			Running:       counts[StateRunning],
			Done:          counts[StateDone],
			Failed:        counts[StateFailed],
			Cancelled:     counts[StateCancelled],
			Retries:       s.mgr.retries.Load(),
			Panics:        s.mgr.panics.Load(),
			FlatFallbacks: s.mgr.flatFallbacks.Load(),
		},
		Queue: MetricsQueue{
			Depth:    s.mgr.queueDepth(),
			Capacity: s.cfg.QueueDepth,
			Workers:  s.cfg.Workers,
		},
		Scheduler:     s.mgr.sched.Snapshot(),
		WorkspacePool: pool.Snapshot(),
		PlanCache:     MetricsPlanCache{Hits: hits, Misses: misses, Entries: entries},
		Posteriors: MetricsPosteriorStore{
			Entries:        ps.entries,
			Bytes:          ps.bytes,
			CapacityBytes:  ps.capacity,
			Hits:           ps.hits,
			Misses:         ps.misses,
			Stored:         ps.stored,
			Rejected:       ps.rejected,
			Evicted:        ps.evicted,
			Persisted:      ps.persisted,
			Loaded:         ps.loaded,
			Imported:       ps.imported,
			Removed:        ps.removed,
			ImportInflight: s.transferInflight.Load(),
			ImportRejected: s.transferRejected.Load(),
		},
		OpTimes: s.mgr.rec.Snapshot(),
	}
	if total := hits + misses; total > 0 {
		m.PlanCache.HitRate = float64(hits) / float64(total)
	}
	return m
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
