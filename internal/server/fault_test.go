package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/encode"
	"phmse/internal/faultinject"
	"phmse/internal/molecule"
	"phmse/internal/solvererr"
)

// named returns a copy of p under a distinctive name, so a fault hook can
// target exactly one job by its Site.Tag while concurrent jobs over the
// same molecule stay healthy.
func named(p *molecule.Problem, name string) *molecule.Problem {
	return &molecule.Problem{Name: name, Atoms: p.Atoms, Constraints: p.Constraints, Tree: p.Tree}
}

// faultCfg keeps retry backoff negligible so fault tests run fast.
func faultCfg() Config {
	return Config{Workers: 2, ProcsPerJob: 1, MaxRetries: 2, RetryBackoff: time.Millisecond}
}

// A job whose every solve attempt panics must fail cleanly with the
// internal_error code after exhausting its retries, while a concurrent
// healthy job — and the daemon itself — are unaffected.
func TestWorkerPanicIsolated(t *testing.T) {
	const tag = "fault-panic"
	faultinject.Set(&faultinject.Hooks{
		BeforeAttempt: func(got string, attempt int) {
			if got == tag {
				panic("injected worker panic")
			}
		},
	})
	t.Cleanup(faultinject.Reset)

	srv, ts, c := newTestServer(t, faultCfg())
	poisoned := submit(t, c, named(helix(1), tag), quickParams())
	healthy := submit(t, c, helix(2), quickParams())

	st := waitState(t, c, poisoned.ID, StateFailed)
	if st.ErrorCode != encode.CodeInternalError {
		t.Fatalf("poisoned job error code = %q, want %q (status %+v)", st.ErrorCode, encode.CodeInternalError, st)
	}
	if st.Retries != srv.cfg.MaxRetries {
		t.Fatalf("poisoned job retries = %d, want %d", st.Retries, srv.cfg.MaxRetries)
	}
	if st.FlatFallback {
		t.Fatal("panic is not a numerical failure; flat fallback must not run")
	}
	if hst := waitState(t, c, healthy.ID, StateDone); hst.Error != "" {
		t.Fatalf("healthy job failed alongside the poisoned one: %+v", hst)
	}

	// The daemon survived every recovered panic: it still accepts and
	// completes new work, and the recoveries are visible in /metrics.
	after := submit(t, c, helix(1), quickParams())
	waitState(t, c, after.ID, StateDone)
	var m Metrics
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("/metrics: http %d", code)
	}
	if m.Jobs.Panics < int64(srv.cfg.MaxRetries+1) {
		t.Fatalf("metrics panics = %d, want at least %d", m.Jobs.Panics, srv.cfg.MaxRetries+1)
	}
	if m.Jobs.Retries < int64(srv.cfg.MaxRetries) {
		t.Fatalf("metrics retries = %d, want at least %d", m.Jobs.Retries, srv.cfg.MaxRetries)
	}
}

// A job whose every factorization is forced indefinite exhausts its
// retries, is degraded to one flat attempt (which the pervasive hook also
// kills), and fails typed with the indefinite code.
func TestIndefiniteJobFailsWithFlatFallback(t *testing.T) {
	const tag = "fault-chol"
	faultinject.Set(&faultinject.Hooks{
		Cholesky: func(s faultinject.Site) bool { return s.Tag == tag },
	})
	t.Cleanup(faultinject.Reset)

	srv, _, c := newTestServer(t, faultCfg())
	poisoned := submit(t, c, named(helix(1), tag), quickParams())
	healthy := submit(t, c, helix(1), quickParams())

	st := waitState(t, c, poisoned.ID, StateFailed)
	if st.ErrorCode != solvererr.CodeIndefinite {
		t.Fatalf("error code = %q, want %q (status %+v)", st.ErrorCode, solvererr.CodeIndefinite, st)
	}
	if st.Retries != srv.cfg.MaxRetries {
		t.Fatalf("retries = %d, want %d", st.Retries, srv.cfg.MaxRetries)
	}
	if !st.FlatFallback {
		t.Fatal("transient numerical failure should have attempted the flat fallback")
	}
	waitState(t, c, healthy.ID, StateDone)
}

// A job whose state is poisoned with NaN every cycle rolls back each batch,
// makes no progress, and fails with the non_finite code.
func TestPoisonedJobFailsNonFinite(t *testing.T) {
	const tag = "fault-nan"
	faultinject.Set(&faultinject.Hooks{
		Poison: func(s faultinject.Site) bool { return s.Tag == tag },
	})
	t.Cleanup(faultinject.Reset)

	// Retries disabled: one attempt plus the flat fallback keeps the test
	// focused on classification rather than the retry loop.
	cfg := faultCfg()
	cfg.MaxRetries = -1
	_, _, c := newTestServer(t, cfg)
	poisoned := submit(t, c, named(helix(1), tag), quickParams())

	st := waitState(t, c, poisoned.ID, StateFailed)
	if st.ErrorCode != solvererr.CodeNonFinite {
		t.Fatalf("error code = %q, want %q (status %+v)", st.ErrorCode, solvererr.CodeNonFinite, st)
	}
	if st.Retries != 0 {
		t.Fatalf("retries = %d, want 0 (disabled)", st.Retries)
	}
	if !st.FlatFallback {
		t.Fatal("flat fallback should still run when retries are disabled")
	}
}

// A transient failure on the first attempt only: the automatic retry —
// which re-perturbs from a different seed — succeeds, and the job reports
// how many retries it took.
func TestTransientFailureHealsOnRetry(t *testing.T) {
	const tag = "fault-transient"
	var attempt atomic.Int64
	faultinject.Set(&faultinject.Hooks{
		BeforeAttempt: func(got string, n int) {
			if got == tag {
				attempt.Store(int64(n))
			}
		},
		Cholesky: func(s faultinject.Site) bool {
			return s.Tag == tag && attempt.Load() == 0
		},
	})
	t.Cleanup(faultinject.Reset)

	_, _, c := newTestServer(t, faultCfg())
	st := submit(t, c, named(helix(1), tag), quickParams())

	done := waitState(t, c, st.ID, StateDone)
	if done.Retries < 1 {
		t.Fatalf("retries = %d, want >= 1 (first attempt was poisoned)", done.Retries)
	}
	if done.FlatFallback {
		t.Fatal("retry healed the job; flat fallback must not have run")
	}
	if done.ErrorCode != "" || done.Error != "" {
		t.Fatalf("healed job carries error: %+v", done)
	}
	if _, err := c.Result(context.Background(), st.ID); err != nil {
		t.Fatalf("result of healed job: %v", err)
	}
}

// readyz reflects load and lifecycle: ok when idle, saturated when the
// queue is full, draining once shutdown begins — while healthz keeps
// reporting liveness until the drain.
func TestReadyz(t *testing.T) {
	srv, ts, c := newTestServer(t, Config{Workers: 1, ProcsPerJob: 1, QueueDepth: 1})
	ctx := context.Background()

	var body map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusOK {
		t.Fatalf("/readyz idle: http %d body %v", code, body)
	}
	if body["status"] != "ok" {
		t.Fatalf("/readyz idle status = %v", body["status"])
	}

	// Saturate: fill the single worker and the depth-1 queue with
	// non-converging jobs until the server pushes back.
	var ids []string
	for i := 0; ; i++ {
		st, err := c.Submit(ctx, helix(1), slowParams())
		if client.IsQueueFull(err) {
			break
		}
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, st.ID)
		if i > 8 {
			t.Fatal("queue never filled")
		}
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz saturated: http %d body %v", code, body)
	}
	if body["status"] != "saturated" {
		t.Fatalf("/readyz saturated status = %v", body["status"])
	}
	// Liveness is unaffected by saturation.
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("/healthz under saturation: http %d", code)
	}

	// Drain: cancel the stuck jobs so shutdown completes, then verify the
	// probe reports draining.
	for _, id := range ids {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatalf("cancel %s: %v", id, err)
		}
	}
	sctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/readyz", nil, &body); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz draining: http %d body %v", code, body)
	}
	if body["status"] != "draining" {
		t.Fatalf("/readyz draining status = %v", body["status"])
	}
}
