package server

// The posterior-transfer endpoints: the phmsed side of the routing tier's
// migration protocol. When cluster membership changes, phmse-router
// enumerates each losing shard's retained posteriors via the index,
// streams the full documents to their new owners via PUT, and deletes
// each source copy only after the destination acknowledged — so a failed
// transfer always leaves the posterior where it was.
//
//	GET    /v1/posteriors?prefix=   index (open: read-only, no state)
//	PUT    /v1/posteriors/{id}      import one posterior (token-gated)
//	DELETE /v1/posteriors/{id}      drop one posterior  (token-gated)
//
// Imports run through the same byte-budgeted store admission as locally
// kept posteriors (over budget → 507 posterior_budget) and are idempotent:
// re-PUTting an id the store already holds replaces the entry in place.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"phmse/internal/core"
	"phmse/internal/encode"
)

// authTransfer enforces the bearer token on mutating transfer endpoints
// when Config.AdminToken is set. The index stays open: it exposes only
// ids, hashes, and sizes, and the router needs it for read-only warm-start
// location even when it lacks a token.
func (s *Server) authTransfer(w http.ResponseWriter, r *http.Request) bool {
	if s.cfg.AdminToken == "" || r.Header.Get("Authorization") == "Bearer "+s.cfg.AdminToken {
		return true
	}
	writeError(w, http.StatusUnauthorized, encode.CodeUnauthorized,
		"missing or invalid admin token", "")
	return false
}

func (s *Server) handlePosteriorIndex(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.posteriors.index(r.URL.Query().Get("prefix")))
}

func (s *Server) handlePosteriorPut(w http.ResponseWriter, r *http.Request) {
	if !s.authTransfer(w, r) {
		return
	}
	// The import gate: a migration or repair wave may aim many concurrent
	// transfer streams at one destination; beyond the configured cap the
	// daemon sheds load with the same 429 + Retry-After contract as a full
	// solve queue, and the router's transfer retries back off and replay.
	if limit := s.cfg.TransferInflight; limit > 0 {
		if s.transferInflight.Add(1) > int64(limit) {
			s.transferInflight.Add(-1)
			s.transferRejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, encode.CodeQueueFull,
				fmt.Sprintf("transfer import limit of %d in flight reached; retry", limit), "")
			return
		}
		defer s.transferInflight.Add(-1)
	}
	id := r.PathValue("id")
	var doc encode.PosteriorDoc
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("decoding posterior document: %v", err), "")
		return
	}
	if doc.Job == "" {
		doc.Job = id
	}
	if doc.Job != id {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("path id %q does not match document job %q", id, doc.Job), "")
		return
	}
	// An imported posterior must satisfy everything a disk snapshot must:
	// without a structure hash it could never validate a warm-start
	// reference, so it would be dead weight in the store.
	if doc.StructureHash == "" {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			"posterior document lacks a structure hash", "")
		return
	}
	pos, coordVar, cov, err := doc.Decode()
	if err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("invalid posterior document: %v", err), "")
		return
	}
	sp := &storedPosterior{
		jobID:      doc.Job,
		problem:    doc.Problem,
		topoHash:   doc.TopologyHash,
		structHash: doc.StructureHash,
		post:       &core.Posterior{Positions: pos, CoordVariances: coordVar, Cov: cov},
	}
	if !s.mgr.posteriors.putImported(sp) {
		writeError(w, http.StatusInsufficientStorage, encode.CodePosteriorBudget,
			fmt.Sprintf("posterior of %d bytes does not fit the store budget", sp.post.Bytes()), "")
		return
	}
	writeJSON(w, http.StatusOK, encode.PosteriorInfo{
		Job:           sp.jobID,
		Problem:       sp.problem,
		TopologyHash:  sp.topoHash,
		StructureHash: sp.structHash,
		Atoms:         len(sp.post.Positions),
		Bytes:         sp.bytes,
	})
}

func (s *Server) handlePosteriorDelete(w http.ResponseWriter, r *http.Request) {
	if !s.authTransfer(w, r) {
		return
	}
	id := r.PathValue("id")
	if !s.mgr.posteriors.remove(id) {
		writeError(w, http.StatusNotFound, encode.CodeNotFound,
			fmt.Sprintf("no retained posterior for %q", id), "")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"removed": true, "job": id})
}
