package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"log"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"phmse/internal/core"
	"phmse/internal/encode"
)

// storedPosterior is one retained job posterior plus the identity needed
// to validate warm-start references against it.
type storedPosterior struct {
	jobID   string
	problem string
	// topoHash identifies the full problem topology the posterior was
	// solved under; structHash identifies just the molecule (atoms +
	// grouping) and is the warm-start compatibility key — re-solves may
	// change the constraint set freely but never the molecule.
	topoHash   string
	structHash string
	post       *core.Posterior
	bytes      int64
}

// posteriorStore is the bounded, memory-accounted LRU store of job
// posteriors. Entries are keyed by job id. Unlike the plan cache, whose
// entries are small and counted, posterior footprints are dominated by the
// full covariance — 8·(3n)² bytes per problem — so the store accounts
// bytes, not entries, and evicts least-recently-used posteriors until the
// budget is respected.
//
// With a snapshot directory the store is also disk-backed: every admitted
// posterior is written as an encode.PosteriorDoc JSON snapshot, evictions
// remove their snapshots, and a fresh store reloads whatever a previous
// process left behind (within the byte budget) — so retained posteriors
// survive daemon restarts.
type posteriorStore struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	dir      string     // "" disables persistence
	order    *list.List // front = most recently used; values are *storedPosterior
	entries  map[string]*list.Element

	hits, misses, stored, rejected, evicted int64
	persisted, loaded                       int64
	imported, removed                       int64
}

func newPosteriorStore(maxBytes int64, dir string) *posteriorStore {
	ps := &posteriorStore{
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
	if dir != "" && maxBytes > 0 {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Printf("phmsed: posterior dir %s: %v (persistence disabled)", dir, err)
		} else {
			ps.dir = dir
			ps.loadFromDisk()
		}
	}
	return ps
}

// put admits a posterior, evicting least-recently-used entries as needed,
// and snapshots it to disk when the store is disk-backed. It reports
// whether the posterior was retained: one larger than the whole budget (or
// a disabled store) is rejected outright.
//
// The snapshot write happens outside ps.mu: it is disk I/O, and holding
// the lock across it would block every posterior lookup (warm-start
// resolution, GET /posterior) for the duration. A concurrent put can evict
// the entry while its snapshot is being written; the membership re-check
// below removes the orphaned file so a reload never resurrects an evicted
// posterior.
func (ps *posteriorStore) put(sp *storedPosterior) bool {
	sp.bytes = sp.post.Bytes()
	ps.mu.Lock()
	ok := ps.insertLocked(sp)
	ps.mu.Unlock()
	if !ok {
		return false
	}
	if ps.dir == "" {
		return true
	}
	if err := ps.writeSnapshot(sp); err != nil {
		log.Printf("phmsed: persisting posterior of %s: %v", sp.jobID, err)
		return true
	}
	ps.mu.Lock()
	_, present := ps.entries[sp.jobID]
	if present {
		ps.persisted++
	}
	ps.mu.Unlock()
	if !present {
		ps.removeSnapshot(sp.jobID)
	}
	return true
}

// insertLocked runs the in-memory LRU admission: reject oversized entries,
// replace a same-id entry, and evict least-recently-used posteriors (and
// their snapshots) until the budget is respected.
func (ps *posteriorStore) insertLocked(sp *storedPosterior) bool {
	if ps.maxBytes <= 0 || sp.bytes > ps.maxBytes {
		ps.rejected++
		return false
	}
	if el, ok := ps.entries[sp.jobID]; ok {
		ps.bytes -= el.Value.(*storedPosterior).bytes
		ps.order.Remove(el)
		delete(ps.entries, sp.jobID)
	}
	for ps.bytes+sp.bytes > ps.maxBytes {
		oldest := ps.order.Back()
		old := oldest.Value.(*storedPosterior)
		ps.bytes -= old.bytes
		ps.order.Remove(oldest)
		delete(ps.entries, old.jobID)
		ps.evicted++
		ps.removeSnapshot(old.jobID)
	}
	ps.entries[sp.jobID] = ps.order.PushFront(sp)
	ps.bytes += sp.bytes
	ps.stored++
	return true
}

// maxJobSeq returns the highest numeric job sequence ("...job-NNNNNN")
// among the retained posteriors, 0 when none parse. The manager seeds its
// id counter past it on startup so a restarted daemon never re-mints an id
// that a reloaded snapshot still references.
func (ps *posteriorStore) maxJobSeq() int64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	var max int64
	for id := range ps.entries {
		i := strings.LastIndex(id, "job-")
		if i < 0 {
			continue
		}
		if n, err := strconv.ParseInt(id[i+len("job-"):], 10, 64); err == nil && n > max {
			max = n
		}
	}
	return max
}

// putImported admits a posterior received over the transfer API
// (PUT /v1/posteriors/{id}) — put semantics plus the import counter.
// Re-importing an id the store already holds replaces the entry in place
// (insertLocked's same-id path), which is what makes duplicate transfer
// PUTs idempotent.
func (ps *posteriorStore) putImported(sp *storedPosterior) bool {
	if !ps.put(sp) {
		return false
	}
	ps.mu.Lock()
	ps.imported++
	ps.mu.Unlock()
	return true
}

// remove deletes a posterior and its disk snapshot, reporting whether the
// id was present. This is the migration ack path: the router calls
// DELETE /v1/posteriors/{id} on the source only after the destination
// acknowledged the import, so a failed transfer never loses the snapshot.
func (ps *posteriorStore) remove(jobID string) bool {
	ps.mu.Lock()
	el, ok := ps.entries[jobID]
	if ok {
		sp := el.Value.(*storedPosterior)
		ps.bytes -= sp.bytes
		ps.order.Remove(el)
		delete(ps.entries, jobID)
		ps.removed++
	}
	ps.mu.Unlock()
	if ok {
		ps.removeSnapshot(jobID)
	}
	return ok
}

// index lists the retained posteriors whose job id starts with prefix
// ("" lists everything), without touching recency — a migration scan must
// not perturb the LRU order real traffic established. The listing is
// sorted by job id so pages are stable across calls.
func (ps *posteriorStore) index(prefix string) encode.PosteriorIndex {
	ps.mu.Lock()
	out := encode.PosteriorIndex{
		Posteriors:    []encode.PosteriorInfo{},
		TotalBytes:    ps.bytes,
		CapacityBytes: ps.maxBytes,
	}
	for el := ps.order.Front(); el != nil; el = el.Next() {
		sp := el.Value.(*storedPosterior)
		if prefix != "" && !strings.HasPrefix(sp.jobID, prefix) {
			continue
		}
		out.Posteriors = append(out.Posteriors, encode.PosteriorInfo{
			Job:           sp.jobID,
			Problem:       sp.problem,
			TopologyHash:  sp.topoHash,
			StructureHash: sp.structHash,
			Atoms:         len(sp.post.Positions),
			Bytes:         sp.bytes,
		})
	}
	ps.mu.Unlock()
	sort.Slice(out.Posteriors, func(i, j int) bool {
		return out.Posteriors[i].Job < out.Posteriors[j].Job
	})
	return out
}

// get returns the retained posterior of a job, bumping its recency.
func (ps *posteriorStore) get(jobID string) (*storedPosterior, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	el, ok := ps.entries[jobID]
	if !ok {
		ps.misses++
		return nil, false
	}
	ps.hits++
	ps.order.MoveToFront(el)
	return el.Value.(*storedPosterior), true
}

const snapshotSuffix = ".post.json"

// snapshotPath maps a job id to its snapshot file. Server-minted ids are
// already filename-safe ([instance.]job-NNNNNN); escaping defends against
// ids from foreign snapshots dropped into the directory.
func (ps *posteriorStore) snapshotPath(jobID string) string {
	return filepath.Join(ps.dir, url.PathEscape(jobID)+snapshotSuffix)
}

// writeSnapshot persists one posterior in the PosteriorDoc wire form —
// the same document GET /v1/jobs/{id}/posterior?cov=full serves and
// msesolve -save-posterior writes — atomically via a rename.
func (ps *posteriorStore) writeSnapshot(sp *storedPosterior) error {
	doc := encode.NewPosteriorDoc(sp.post.Positions, sp.post.CoordVariances, sp.post.Cov)
	doc.Job = sp.jobID
	doc.Problem = sp.problem
	doc.TopologyHash = sp.topoHash
	doc.StructureHash = sp.structHash
	data, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	path := ps.snapshotPath(sp.jobID)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (ps *posteriorStore) removeSnapshot(jobID string) {
	if ps.dir == "" {
		return
	}
	if err := os.Remove(ps.snapshotPath(jobID)); err != nil && !os.IsNotExist(err) {
		log.Printf("phmsed: removing posterior snapshot of %s: %v", jobID, err)
	}
}

// loadFromDisk rebuilds the store from the snapshots a previous process
// left behind. Snapshots are admitted oldest-first so the normal LRU
// budget logic keeps the most recently written posteriors when the
// directory holds more than the byte budget allows.
func (ps *posteriorStore) loadFromDisk() {
	entries, err := os.ReadDir(ps.dir)
	if err != nil {
		log.Printf("phmsed: reading posterior dir %s: %v", ps.dir, err)
		return
	}
	type snap struct {
		path string
		mod  time.Time
	}
	snaps := make([]snap, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), snapshotSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		snaps = append(snaps, snap{filepath.Join(ps.dir, e.Name()), info.ModTime()})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].mod.Before(snaps[j].mod) })
	for _, s := range snaps {
		sp, err := readSnapshot(s.path)
		if err != nil {
			log.Printf("phmsed: skipping posterior snapshot %s: %v", s.path, err)
			continue
		}
		ps.mu.Lock()
		if ps.insertLocked(sp) {
			ps.loaded++
		}
		ps.mu.Unlock()
	}
}

// readSnapshot decodes one snapshot back into store form, validating it
// with the same checks the wire form gets.
func readSnapshot(path string) (*storedPosterior, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc encode.PosteriorDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, err
	}
	if doc.Job == "" || doc.StructureHash == "" {
		return nil, fmt.Errorf("snapshot lacks a job id or structure hash")
	}
	pos, coordVar, cov, err := doc.Decode()
	if err != nil {
		return nil, err
	}
	sp := &storedPosterior{
		jobID:      doc.Job,
		problem:    doc.Problem,
		topoHash:   doc.TopologyHash,
		structHash: doc.StructureHash,
		post:       &core.Posterior{Positions: pos, CoordVariances: coordVar, Cov: cov},
	}
	sp.bytes = sp.post.Bytes()
	return sp, nil
}

// posteriorStats is a point-in-time snapshot of the store's accounting.
type posteriorStats struct {
	entries                                 int
	bytes, capacity                         int64
	hits, misses, stored, rejected, evicted int64
	persisted, loaded                       int64
	imported, removed                       int64
}

func (ps *posteriorStore) stats() posteriorStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return posteriorStats{
		entries:   ps.order.Len(),
		bytes:     ps.bytes,
		capacity:  ps.maxBytes,
		hits:      ps.hits,
		misses:    ps.misses,
		stored:    ps.stored,
		rejected:  ps.rejected,
		evicted:   ps.evicted,
		persisted: ps.persisted,
		loaded:    ps.loaded,
		imported:  ps.imported,
		removed:   ps.removed,
	}
}
