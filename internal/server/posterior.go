package server

import (
	"container/list"
	"sync"

	"phmse/internal/core"
)

// storedPosterior is one retained job posterior plus the identity needed
// to validate warm-start references against it.
type storedPosterior struct {
	jobID   string
	problem string
	// topoHash identifies the full problem topology the posterior was
	// solved under; structHash identifies just the molecule (atoms +
	// grouping) and is the warm-start compatibility key — re-solves may
	// change the constraint set freely but never the molecule.
	topoHash   string
	structHash string
	post       *core.Posterior
	bytes      int64
}

// posteriorStore is the bounded, memory-accounted LRU store of job
// posteriors. Entries are keyed by job id. Unlike the plan cache, whose
// entries are small and counted, posterior footprints are dominated by the
// full covariance — 8·(3n)² bytes per problem — so the store accounts
// bytes, not entries, and evicts least-recently-used posteriors until the
// budget is respected.
type posteriorStore struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	order    *list.List // front = most recently used; values are *storedPosterior
	entries  map[string]*list.Element

	hits, misses, stored, rejected, evicted int64
}

func newPosteriorStore(maxBytes int64) *posteriorStore {
	return &posteriorStore{
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// put admits a posterior, evicting least-recently-used entries as needed.
// It reports whether the posterior was retained: one larger than the whole
// budget (or a disabled store) is rejected outright.
func (ps *posteriorStore) put(sp *storedPosterior) bool {
	sp.bytes = sp.post.Bytes()
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if ps.maxBytes <= 0 || sp.bytes > ps.maxBytes {
		ps.rejected++
		return false
	}
	if el, ok := ps.entries[sp.jobID]; ok {
		ps.bytes -= el.Value.(*storedPosterior).bytes
		ps.order.Remove(el)
		delete(ps.entries, sp.jobID)
	}
	for ps.bytes+sp.bytes > ps.maxBytes {
		oldest := ps.order.Back()
		old := oldest.Value.(*storedPosterior)
		ps.bytes -= old.bytes
		ps.order.Remove(oldest)
		delete(ps.entries, old.jobID)
		ps.evicted++
	}
	ps.entries[sp.jobID] = ps.order.PushFront(sp)
	ps.bytes += sp.bytes
	ps.stored++
	return true
}

// get returns the retained posterior of a job, bumping its recency.
func (ps *posteriorStore) get(jobID string) (*storedPosterior, bool) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	el, ok := ps.entries[jobID]
	if !ok {
		ps.misses++
		return nil, false
	}
	ps.hits++
	ps.order.MoveToFront(el)
	return el.Value.(*storedPosterior), true
}

// posteriorStats is a point-in-time snapshot of the store's accounting.
type posteriorStats struct {
	entries                                 int
	bytes, capacity                         int64
	hits, misses, stored, rejected, evicted int64
}

func (ps *posteriorStore) stats() posteriorStats {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return posteriorStats{
		entries:  ps.order.Len(),
		bytes:    ps.bytes,
		capacity: ps.maxBytes,
		hits:     ps.hits,
		misses:   ps.misses,
		stored:   ps.stored,
		rejected: ps.rejected,
		evicted:  ps.evicted,
	}
}
