package workest

import (
	"math"
	"testing"
)

// synthetic generates Table 2 style measurements from a known polynomial
// with small multiplicative noise.
func synthetic(truth Model) []Measurement {
	var out []Measurement
	for i, atoms := range []int{43, 86, 170, 340} {
		for j, m := range []int{4, 8, 16, 32, 64, 128} {
			t := truth.PerScalar(3*atoms, m)
			noise := 1 + 0.01*float64((i*7+j*3)%5-2)
			out = append(out, Measurement{NodeAtoms: atoms, BatchDim: m, PerScalar: t * noise})
		}
	}
	return out
}

func TestFitRecoversKnownModel(t *testing.T) {
	truth := Model{N2: 2e-8, NM: 3e-7, N: 1e-6, M: 2e-6, Const: 1e-5}
	ms := synthetic(truth)
	fit, err := Fit(ms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N2 <= 0 {
		t.Fatal("leading coefficient not positive")
	}
	r2 := fit.RSquared(ms, 4)
	if r2 < 0.99 {
		t.Fatalf("R² = %g", r2)
	}
	// Predictions near the truth across the grid.
	for _, atoms := range []int{43, 340} {
		for _, m := range []int{8, 64} {
			want := truth.PerScalar(3*atoms, m)
			got := fit.PerScalar(3*atoms, m)
			if math.Abs(got-want)/want > 0.15 {
				t.Fatalf("n=%d m=%d: fit %g vs truth %g", atoms, m, got, want)
			}
		}
	}
}

func TestFitChecksGuardrails(t *testing.T) {
	// All-negative observations force coefficients to zero, violating the
	// positive-leading-coefficient check.
	var ms []Measurement
	for _, atoms := range []int{43, 86, 170} {
		for _, m := range []int{8, 16, 32} {
			ms = append(ms, Measurement{NodeAtoms: atoms, BatchDim: m, PerScalar: -1})
		}
	}
	if _, err := Fit(ms, 4); err == nil {
		t.Fatal("fit accepted a non-growth model")
	}
}

func TestFitRequiresEnoughData(t *testing.T) {
	ms := []Measurement{{NodeAtoms: 43, BatchDim: 16, PerScalar: 1}}
	if _, err := Fit(ms, 4); err == nil {
		t.Fatal("fit accepted underdetermined data")
	}
}

func TestFitExcludesSmallBatches(t *testing.T) {
	truth := Model{N2: 2e-8, NM: 3e-7, Const: 1e-5}
	ms := synthetic(truth)
	// Poison the small-batch cells: Fit must ignore them with minBatch 4.
	ms = append(ms, Measurement{NodeAtoms: 43, BatchDim: 1, PerScalar: 999})
	fit, err := Fit(ms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fit.PerScalar(3*43, 16) > 10*truth.PerScalar(3*43, 16) {
		t.Fatal("small-batch outlier leaked into the fit")
	}
}

func TestModelNodeWork(t *testing.T) {
	m := Model{N2: 1e-8, Const: 1e-5}
	if m.NodeWork(300, 0, 16) != 0 {
		t.Fatal("zero constraints should cost nothing")
	}
	w1 := m.NodeWork(300, 100, 16)
	w2 := m.NodeWork(300, 200, 16)
	if math.Abs(w2-2*w1) > 1e-12 {
		t.Fatal("work not linear in constraint count")
	}
	// Batch dimension clamps to the available constraints.
	if m.NodeWork(300, 3, 16) != 3*m.PerScalar(300, 3) {
		t.Fatal("batch clamp")
	}
	if m.String() == "" {
		t.Fatal("String")
	}
}

func TestFlopModelComplexityShape(t *testing.T) {
	f := FlopModel{}
	// Quadratic growth in n (§2: O(n²) per scalar constraint).
	small := f.PerScalar(100, 16)
	big := f.PerScalar(1000, 16)
	ratio := big / small
	if ratio < 50 || ratio > 150 {
		t.Fatalf("n² growth ratio %g", ratio)
	}
	// Work increases with batch size at fixed n (per-scalar FLOP view).
	if f.PerScalar(500, 64) <= f.PerScalar(500, 8) {
		t.Fatal("no batch-size growth")
	}
	if f.NodeWork(100, 0, 16) != 0 {
		t.Fatal("zero constraints")
	}
}

func TestMeasureTable2Smoke(t *testing.T) {
	// A tiny instance of the Table 2 experiment: real kernels, scaled way
	// down. Checks plumbing, positivity, and the qualitative size effect.
	ms := MeasureTable2([]int{16, 64}, []int{2, 8}, 0.5)
	if len(ms) != 4 {
		t.Fatalf("measurements = %d", len(ms))
	}
	for _, m := range ms {
		if m.PerScalar <= 0 {
			t.Fatalf("non-positive measurement: %+v", m)
		}
	}
	// Bigger nodes must cost more per scalar constraint at equal batch.
	var small, big float64
	for _, m := range ms {
		if m.BatchDim == 8 {
			if m.NodeAtoms == 16 {
				small = m.PerScalar
			} else {
				big = m.PerScalar
			}
		}
	}
	if big <= small {
		t.Fatalf("per-constraint time did not grow with node size: %g vs %g", small, big)
	}
}

func TestBestBatch(t *testing.T) {
	ms := []Measurement{
		{NodeAtoms: 43, BatchDim: 4, PerScalar: 3},
		{NodeAtoms: 43, BatchDim: 16, PerScalar: 1},
		{NodeAtoms: 43, BatchDim: 64, PerScalar: 2},
		{NodeAtoms: 86, BatchDim: 16, PerScalar: 5},
	}
	if got := BestBatch(ms, 43); got != 16 {
		t.Fatalf("BestBatch = %d", got)
	}
	if got := BestBatch(ms, 999); got != 0 {
		t.Fatalf("missing node size: %d", got)
	}
}
