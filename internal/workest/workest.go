// Package workest reproduces the paper's work-estimation machinery (§4.3):
// the Table 2 experiment measuring per-scalar-constraint execution time as
// a function of node size and constraint batch dimension, and the
// constrained least-squares polynomial fit that yields Equation 1, the
// formula the static processor-assignment heuristic uses to estimate the
// work at every node of the structure hierarchy.
package workest

import (
	"fmt"
	"math"
	"time"

	"phmse/internal/constraint"
	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/molecule"
	"phmse/internal/stats"
)

// Measurement is one cell of Table 2.
type Measurement struct {
	NodeAtoms int     // node size in atoms (state dimension / 3)
	BatchDim  int     // constraint batch dimension m
	PerScalar float64 // measured seconds per scalar constraint
}

// DefaultNodeSizes are the node sizes (atoms) of the paper's Table 2.
var DefaultNodeSizes = []int{43, 86, 170, 340, 680}

// DefaultBatchDims are the batch dimensions of the paper's Table 2.
var DefaultBatchDims = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// MeasureTable2 runs the Table 2 experiment: for each node size it builds a
// single flat node with synthetic distance constraints and measures the
// average wall-clock time per scalar constraint for each batch dimension.
// scale (0 < scale ≤ 1) shrinks the constraint workload for quick runs.
func MeasureTable2(nodeSizes, batchDims []int, scale float64) []Measurement {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	var out []Measurement
	for _, atoms := range nodeSizes {
		prob := syntheticNode(atoms)
		for _, m := range batchDims {
			// Enough constraints for several batches, scaled down for tests.
			want := max(int(float64(4*m)*scale), m)
			cons := cycleConstraints(prob, want)
			sec := timeApply(prob, cons, m)
			out = append(out, Measurement{
				NodeAtoms: atoms,
				BatchDim:  m,
				PerScalar: sec / float64(len(cons)),
			})
		}
	}
	return out
}

// syntheticNode builds an atoms-sized problem shaped like the paper's
// experiment nodes: a helix fragment with the right atom count.
func syntheticNode(atoms int) []geom.Vec3 {
	bp := max(atoms/43, 1)
	h := molecule.Helix(bp)
	pos := h.TruePositions()
	for len(pos) < atoms {
		// Extend with a displaced copy if the atom count is not a multiple
		// of the helix residue size.
		p := pos[len(pos)%len(h.Atoms)]
		pos = append(pos, p.Add(geom.Vec3{0, 0, float64(len(pos)) * 0.9}))
	}
	return pos[:atoms]
}

// cycleConstraints produces n scalar distance constraints cycling over atom
// pairs at varying strides, mimicking the mixed-locality distance data of
// the real problems.
func cycleConstraints(pos []geom.Vec3, n int) []constraint.Constraint {
	cons := make([]constraint.Constraint, 0, n)
	stride := 1
	i := 0
	for len(cons) < n {
		j := (i + stride) % len(pos)
		if j != i {
			cons = append(cons, constraint.Distance{
				I: i, J: j,
				Target: geom.Dist(pos[i], pos[j]),
				Sigma:  0.1,
			})
		}
		i++
		if i >= len(pos) {
			i = 0
			stride = stride%7 + 1
		}
	}
	return cons
}

// timeApply measures the wall-clock seconds to apply all constraints to a
// fresh state in batches of m.
func timeApply(pos []geom.Vec3, cons []constraint.Constraint, m int) float64 {
	s := filter.NewState(pos, 100)
	batches, err := filter.MakeBatches(cons, func(a int) int { return a }, m)
	if err != nil {
		panic(err)
	}
	u := &filter.Updater{}
	start := time.Now()
	if _, err := u.ApplyAll(s, batches); err != nil {
		panic(err)
	}
	return time.Since(start).Seconds()
}

// Model is the fitted Equation 1: the estimated execution time of an
// equivalent scalar constraint as a function of node size n (state
// dimension) and batch dimension m. The basis is {n², n·m, n, m, 1} with
// non-negative coefficients, which guarantees the paper's regression
// checks: a positive leading coefficient, and non-negative coefficient sum
// and constant term, so the model cannot predict negative times.
type Model struct {
	// Coefficients of n², n·m, n, m, and the constant term.
	N2, NM, N, M, Const float64
}

// PerScalar returns the estimated seconds per scalar constraint at node
// size n (state dimension) and batch dimension m.
func (e Model) PerScalar(n, m int) float64 {
	fn, fm := float64(n), float64(m)
	return e.N2*fn*fn + e.NM*fn*fm + e.N*fn + e.M*fm + e.Const
}

// NodeWork returns the estimated seconds to apply total scalar constraints
// at a node of state dimension n with batch dimension m.
func (e Model) NodeWork(n, scalars, m int) float64 {
	if scalars <= 0 {
		return 0
	}
	batch := min(m, scalars)
	return float64(scalars) * e.PerScalar(n, batch)
}

func (e Model) String() string {
	return fmt.Sprintf("t = %.3e·n² + %.3e·n·m + %.3e·n + %.3e·m + %.3e", e.N2, e.NM, e.N, e.M, e.Const)
}

// Fit performs the constrained least-squares polynomial regression of
// Equation 1 on Table 2 style measurements, excluding very small batch
// dimensions exactly as the paper does (their vector-operation overheads do
// not follow the polynomial growth law).
func Fit(ms []Measurement, minBatch int) (Model, error) {
	var rows [][]float64
	var y []float64
	for _, mm := range ms {
		if mm.BatchDim < minBatch {
			continue
		}
		n := float64(3 * mm.NodeAtoms)
		m := float64(mm.BatchDim)
		rows = append(rows, []float64{n * n, n * m, n, m, 1})
		y = append(y, mm.PerScalar)
	}
	if len(rows) < 5 {
		return Model{}, fmt.Errorf("workest: only %d usable measurements", len(rows))
	}
	x := mat.FromRows(rows)
	beta, err := stats.NonNegativeLeastSquares(x, y)
	if err != nil {
		return Model{}, err
	}
	model := Model{N2: beta[0], NM: beta[1], N: beta[2], M: beta[3], Const: beta[4]}
	if err := model.check(); err != nil {
		return Model{}, err
	}
	return model, nil
}

// check enforces the paper's two regression safeguards.
func (e Model) check() error {
	if e.N2 <= 0 {
		return fmt.Errorf("workest: leading coefficient %g not positive", e.N2)
	}
	sum := e.N2 + e.NM + e.N + e.M + e.Const
	if sum < 0 || e.Const < 0 {
		return fmt.Errorf("workest: coefficient sum %g or constant %g negative", sum, e.Const)
	}
	return nil
}

// RSquared evaluates the fit quality over the given measurements.
func (e Model) RSquared(ms []Measurement, minBatch int) float64 {
	var pred, obs []float64
	for _, mm := range ms {
		if mm.BatchDim < minBatch {
			continue
		}
		pred = append(pred, e.PerScalar(3*mm.NodeAtoms, mm.BatchDim))
		obs = append(obs, mm.PerScalar)
	}
	return stats.RSquared(pred, obs)
}

// FlopModel is the analytic fallback estimator derived from the update
// procedure's operation counts; it needs no measurement run and is the
// default work estimator for scheduling. Costs are in relative units
// (flops per scalar constraint), which is all load balancing needs.
type FlopModel struct{}

// PerScalar returns relative work per scalar constraint: the O(n²) dense
// update dominates, with the O(m·n) gain solve and O(m²) factorization
// terms following the §2 complexity analysis. The n² coefficient reflects
// the symmetry-aware covariance kernel (lower triangle only: n²m flops per
// batch of m, i.e. n² per scalar, down from the full product's 2n²).
func (FlopModel) PerScalar(n, m int) float64 {
	fn, fm := float64(n), float64(m)
	return fn*fn + 2*fn*fm + 14*fn + fm*fm/3
}

// NodeWork returns relative work for scalars constraints at dimension n.
func (f FlopModel) NodeWork(n, scalars, m int) float64 {
	if scalars <= 0 {
		return 0
	}
	batch := min(m, scalars)
	return float64(scalars) * f.PerScalar(n, batch)
}

// BestBatch returns the batch dimension minimizing measured per-constraint
// time for the given node size (the paper finds 16 across all sizes).
func BestBatch(ms []Measurement, nodeAtoms int) int {
	best, bestT := 0, math.Inf(1)
	for _, mm := range ms {
		if mm.NodeAtoms == nodeAtoms && mm.PerScalar < bestT {
			best, bestT = mm.BatchDim, mm.PerScalar
		}
	}
	return best
}
