// Package vm is the virtual-time execution engine that reproduces the
// paper's parallel measurements (Tables 3–6) without the 1996 hardware. It
// executes the *actual* schedule of the parallel hierarchical algorithm —
// the same tree, the same constraint batches, the same static processor
// assignment, the same post-order dependences and group barriers — but
// advances deterministic virtual clocks using the calibrated machine cost
// models instead of running the numerical kernels.
//
// Because every operation's cost depends only on its dimensions (state
// size, batch size, Jacobian non-zeros), the virtual timing is exact for
// the schedule regardless of whether the kernels run, which is what makes
// full-size processor sweeps cheap. The numerical behaviour itself is
// exercised by the real solver (package hier) in the tests and examples.
package vm

import (
	"phmse/internal/hier"
	"phmse/internal/machine"
	"phmse/internal/trace"
)

// Result summarizes one virtual-time run.
type Result struct {
	// Wall is the modeled wall-clock seconds of one complete cycle over all
	// constraints (input, output and initialization excluded, as in the
	// paper).
	Wall float64
	// ClassBusy is the per-class busy processor-seconds (wall × team size
	// summed over operations).
	ClassBusy trace.Times
	// Procs is the processor count the run was scheduled for.
	Procs int
	// Ops is the number of array operations executed.
	Ops int
}

// ClassSeconds returns the per-class busy time divided by the processor
// count — the per-class columns of the paper's Tables 3–6.
func (r Result) ClassSeconds() trace.Times {
	return r.ClassBusy.Scale(1 / float64(r.Procs))
}

// BatchOps expands one constraint-batch update (Figure 1) into its array
// operations with flop counts and working sets, for a batch of scalar
// dimension m applied to a node of state dimension n with nnz Jacobian
// non-zeros.
func BatchOps(m, n, nnz int) []machine.Op {
	fm, fn, fz := float64(m), float64(n), float64(nnz)
	const w = 8 // bytes per float64
	return []machine.Op{
		// A = C·Hᵀ and S = H·A + R: streams the n×n covariance.
		{Class: trace.DenseSparse, Flops: 2*fn*fz + 2*fz*fm, Workset: w * (fn*fn + 2*fn*fm)},
		// Cholesky factorization of the m×m innovation covariance.
		{Class: trace.Chol, Flops: fm * fm * fm / 3, Workset: w * fm * fm},
		// Gain K = A·S⁻¹: two triangular solves per state row.
		{Class: trace.Solve, Flops: 2 * fn * fm * fm, Workset: w * (fn*fm + fm*fm)},
		// State update x += K·(z − h). The working set is inflated by an
		// interleaving factor: the gain matrix was just evicted by the
		// large covariance-streaming operations (§4.4's explanation for the
		// poor cache behaviour of the small operations).
		{Class: trace.MatVec, Flops: 2 * fn * fm, Workset: w * 4 * fn * fm},
		// Covariance update C −= K·Aᵀ. The model keeps the paper's
		// full-matrix count (2n²m): Tables 3–6 are calibrated against the
		// 1996 kernels, which computed all n² entries. The real kernels
		// (mat.Syr2kSubPar) now compute only the lower triangle — n(n+1)m
		// flops — so host wall-clock runs beat this model by ~2× on m-m.
		{Class: trace.MatMat, Flops: 2 * fn * fn * fm, Workset: w * (fn*fn + 2*fn*fm)},
		// Innovation, state accumulation and the other vector bookkeeping
		// of the Figure 1 loop body.
		{Class: trace.VecOp, Flops: 5*fn + 4*fm, Workset: w * 6 * fn},
	}
}

// NodeOps expands all prepared batches of a node into operations. The node
// must have been prepared (hier.Node.Prepare).
func NodeOps(n *hier.Node) []machine.Op {
	var ops []machine.Op
	for _, b := range n.Batches() {
		ops = append(ops, BatchOps(b.Dim(), n.StateDim(), b.NNZUpper())...)
	}
	return ops
}

// Run models one complete cycle of the parallel hierarchical computation on
// the machine with the given processor count and execution plan (nil plan:
// sequential tree walk with full-team intra-node parallelism). The tree
// must be prepared.
func Run(root *hier.Node, mach *machine.Machine, procs int, plan *hier.ExecPlan) Result {
	if procs < 1 {
		procs = 1
	}
	res := Result{Procs: procs}
	res.Wall = finishTime(root, mach, procs, plan, 0, &res)
	return res
}

// finishTime returns the virtual time at which the subtree rooted at n
// completes, given it may start at start.
func finishTime(n *hier.Node, mach *machine.Machine, procs int, plan *hier.ExecPlan, start float64, res *Result) float64 {
	childrenDone := start
	if len(n.Children) > 0 {
		groups := planGroups(plan, n)
		if groups == nil || procs == 1 {
			// Sequential children with the full team.
			t := start
			for _, c := range n.Children {
				t = finishTime(c, mach, procs, plan, t, res)
			}
			childrenDone = t
		} else {
			// Concurrent processor groups; the node waits for the slowest
			// group (this synchronization is the source of the helix's
			// power-of-two speedup dips).
			for _, g := range groups {
				t := start
				for _, c := range g.Nodes {
					t = finishTime(c, mach, g.Procs, plan, t, res)
				}
				if t > childrenDone {
					childrenDone = t
				}
			}
		}
	}
	// The node's own constraints, processed by its full team.
	t := childrenDone
	for _, op := range NodeOps(n) {
		wall := mach.Wall(op, procs)
		t += wall
		res.ClassBusy[op.Class] += wall * float64(procs)
		res.Ops++
	}
	return t
}

func planGroups(plan *hier.ExecPlan, n *hier.Node) []hier.ChildGroup {
	if plan == nil || plan.Groups == nil {
		return nil
	}
	return plan.Groups[n]
}

// RunFlat models the flat (single node) organization: all constraints
// applied to the full-dimension state.
func RunFlat(stateDim int, batches []BatchShape, mach *machine.Machine, procs int) Result {
	res := Result{Procs: procs}
	t := 0.0
	for _, b := range batches {
		for _, op := range BatchOps(b.Dim, stateDim, b.NNZ) {
			wall := mach.Wall(op, procs)
			t += wall
			res.ClassBusy[op.Class] += wall * float64(procs)
			res.Ops++
		}
	}
	res.Wall = t
	return res
}

// BatchShape is the dimensional footprint of one constraint batch.
type BatchShape struct {
	Dim int // scalar observations
	NNZ int // Jacobian non-zeros
}

// FlatShapes slices a problem of the given total scalar dimension into
// batches of size m with nnzPerScalar non-zeros per scalar row.
func FlatShapes(totalScalars, m, nnzPerScalar int) []BatchShape {
	var out []BatchShape
	for got := 0; got < totalScalars; got += m {
		d := min(m, totalScalars-got)
		out = append(out, BatchShape{Dim: d, NNZ: d * nnzPerScalar})
	}
	return out
}
