package vm

import (
	"phmse/internal/hier"
	"phmse/internal/machine"
)

// RunDynamic models the paper's §5 further-work proposal: dynamic
// reassignment of processors to nodes by periodic global synchronization,
// instead of the static bipartition. The sibling subtrees of a node are
// treated as a malleable task pool balanced across the whole team, so the
// completion time of the children follows the greedy-scheduling (Graham)
// bound
//
//	T(children) = max( Σᵢ T₁(childᵢ) / p , maxᵢ T_cp(childᵢ, p) )
//
// where T₁ is a subtree's serial work and T_cp its completion time when it
// can use the full team alone. A per-level regrouping synchronization is
// charged on top. This removes the static scheme's power-of-two dips at
// the cost of the data-locality control the paper prefers; the ablation
// benchmarks quantify the difference.
func RunDynamic(root *hier.Node, mach *machine.Machine, procs int) Result {
	if procs < 1 {
		procs = 1
	}
	res := Result{Procs: procs}
	res.Wall = dynFinish(root, mach, procs, &res)
	return res
}

// dynFinish returns the completion time of the subtree under dynamic
// balancing with p processors, accumulating class busy time.
func dynFinish(n *hier.Node, mach *machine.Machine, p int, res *Result) float64 {
	childrenTime := 0.0
	if len(n.Children) > 0 {
		sumSerial := 0.0
		maxPath := 0.0
		for _, c := range n.Children {
			sumSerial += serialWork(c, mach, res)
			// Critical path if the child ran alone on the full team; do not
			// accumulate busy again (serialWork already did).
			var scratch Result
			if path := dynFinish(c, mach, p, &scratch); path > maxPath {
				maxPath = path
			}
		}
		childrenTime = sumSerial / float64(p)
		if maxPath > childrenTime {
			childrenTime = maxPath
		}
		// One global regrouping synchronization per level.
		childrenTime += mach.SyncSeconds * float64(p)
	}
	t := childrenTime
	for _, op := range NodeOps(n) {
		wall := mach.Wall(op, p)
		t += wall
		res.ClassBusy[op.Class] += wall * float64(p)
		res.Ops++
	}
	return t
}

// serialWork returns the subtree's total single-processor work and charges
// it to the per-class busy accounting.
func serialWork(n *hier.Node, mach *machine.Machine, res *Result) float64 {
	total := 0.0
	n.Walk(func(m *hier.Node) {
		for _, op := range NodeOps(m) {
			w := mach.Wall(op, 1)
			total += w
			res.ClassBusy[op.Class] += w
			res.Ops++
		}
	})
	return total
}
