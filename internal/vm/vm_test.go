package vm

import (
	"math"
	"strings"
	"testing"

	"phmse/internal/hier"
	"phmse/internal/machine"
	"phmse/internal/molecule"
	"phmse/internal/sched"
	"phmse/internal/trace"
	"phmse/internal/workest"
)

// preparedHelix builds and prepares a helix tree once per size.
func preparedHelix(t testing.TB, bp int) *hier.Node {
	t.Helper()
	h := molecule.Helix(bp)
	root, err := hier.Build(h.Tree, h.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Prepare(16); err != nil {
		t.Fatal(err)
	}
	return root
}

func TestBatchOpsShapes(t *testing.T) {
	ops := BatchOps(16, 300, 96)
	if len(ops) != 6 {
		t.Fatalf("ops = %d", len(ops))
	}
	byClass := map[trace.Class]machine.Op{}
	for _, op := range ops {
		byClass[op.Class] = op
		if op.Flops <= 0 || op.Workset <= 0 {
			t.Fatalf("non-positive op: %+v", op)
		}
	}
	// Spot-check the flop formulas.
	if got := byClass[trace.Chol].Flops; got != 16.0*16*16/3 {
		t.Fatalf("chol flops %g", got)
	}
	if got := byClass[trace.MatMat].Flops; got != 2.0*300*300*16 {
		t.Fatalf("m-m flops %g", got)
	}
	if got := byClass[trace.Solve].Flops; got != 2.0*300*16*16 {
		t.Fatalf("sys flops %g", got)
	}
	if got := byClass[trace.DenseSparse].Flops; got != 2.0*300*96+2.0*96*16 {
		t.Fatalf("d-s flops %g", got)
	}
}

func TestRunSequentialDeterministic(t *testing.T) {
	root := preparedHelix(t, 2)
	mach := machine.DASH()
	a := Run(root, mach, 1, nil)
	b := Run(root, mach, 1, nil)
	if a.Wall != b.Wall || a.Ops != b.Ops || a.ClassBusy != b.ClassBusy {
		t.Fatal("virtual-time run not deterministic")
	}
	if a.Wall <= 0 || a.Ops == 0 {
		t.Fatalf("degenerate run: %+v", a)
	}
	// At one processor, wall equals total busy.
	if math.Abs(a.Wall-a.ClassBusy.Total()) > 1e-9*a.Wall {
		t.Fatalf("wall %g != busy %g at NP=1", a.Wall, a.ClassBusy.Total())
	}
}

func TestRunParallelFasterAndAccounted(t *testing.T) {
	root := preparedHelix(t, 8)
	mach := machine.DASH()
	w := sched.EstimateWork(root, workest.FlopModel{}, 16)
	serial := Run(root, mach, 1, nil)
	prev := serial.Wall
	for _, np := range []int{2, 4, 8, 16, 32} {
		plan := sched.Assign(root, np, w)
		r := Run(root, mach, np, plan)
		if r.Wall >= prev {
			t.Fatalf("NP=%d wall %g not below previous %g", np, r.Wall, prev)
		}
		prev = r.Wall
		// Busy time can exceed serial busy (overheads) but not wildly.
		if r.ClassBusy.Total() > 3*serial.ClassBusy.Total() {
			t.Fatalf("NP=%d busy exploded: %g vs %g", np, r.ClassBusy.Total(), serial.ClassBusy.Total())
		}
		// Wall is at least the critical-path lower bound busy/np.
		if r.Wall < r.ClassBusy.Total()/float64(np)-1e-9 {
			t.Fatalf("NP=%d wall %g below busy/np %g", np, r.Wall, r.ClassBusy.Total()/float64(np))
		}
	}
}

func TestHelixSpeedupShape(t *testing.T) {
	// Reproduces the Table 3 qualitative shape: good speedup at powers of
	// two, a dip at NP=6 relative to the neighboring powers of two, and
	// m-m dominating the time distribution.
	root := preparedHelix(t, 16)
	mach := machine.DASH()
	w := sched.EstimateWork(root, workest.FlopModel{}, 16)
	speedup := map[int]float64{}
	base := Run(root, mach, 1, nil).Wall
	for _, np := range []int{4, 6, 8, 32} {
		plan := sched.Assign(root, np, w)
		speedup[np] = base / Run(root, mach, np, plan).Wall
	}
	if speedup[32] < 18 || speedup[32] > 32 {
		t.Fatalf("NP=32 speedup %g outside the plausible DASH band", speedup[32])
	}
	// The non-power-of-two dip: efficiency at 6 clearly below 4 and 8.
	eff := func(np int) float64 { return speedup[np] / float64(np) }
	if eff(6) >= eff(4) || eff(6) >= eff(8)*0.98 {
		t.Fatalf("no power-of-two dip: eff(4)=%.2f eff(6)=%.2f eff(8)=%.2f", eff(4), eff(6), eff(8))
	}
	// m-m dominates the class distribution (Table 3).
	r := Run(root, mach, 1, nil)
	cs := r.ClassSeconds()
	if cs[trace.MatMat] < 0.5*r.Wall {
		t.Fatalf("m-m share %.2f of %.2f too small", cs[trace.MatMat], r.Wall)
	}
}

func TestRibo30SNoDip(t *testing.T) {
	// The ribosome tree's high branching factor lets the static scheduler
	// divide processors evenly: no power-of-two dips (Table 4).
	h := molecule.Ribo30S(1996)
	root, err := hier.Build(h.Tree, h.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Prepare(16); err != nil {
		t.Fatal(err)
	}
	mach := machine.DASH()
	w := sched.EstimateWork(root, workest.FlopModel{}, 16)
	base := Run(root, mach, 1, nil).Wall
	eff := func(np int) float64 {
		plan := sched.Assign(root, np, w)
		return base / Run(root, mach, np, plan).Wall / float64(np)
	}
	e6, e8 := eff(6), eff(8)
	if e6 < e8*0.9 {
		t.Fatalf("unexpected dip for ribo30S: eff(6)=%.3f eff(8)=%.3f", e6, e8)
	}
}

func TestChallengeFasterSameShape(t *testing.T) {
	root := preparedHelix(t, 8)
	w := sched.EstimateWork(root, workest.FlopModel{}, 16)
	d1 := Run(root, machine.DASH(), 1, nil).Wall
	c1 := Run(root, machine.Challenge(), 1, nil).Wall
	if c1 >= d1 {
		t.Fatalf("Challenge (%g) not faster than DASH (%g)", c1, d1)
	}
	ratio := d1 / c1
	if ratio < 2 || ratio > 5 {
		t.Fatalf("machine speed ratio %g outside the paper's ~3×", ratio)
	}
	plan := sched.Assign(root, 16, w)
	s := c1 / Run(root, machine.Challenge(), 16, plan).Wall
	if s < 10 || s > 16 {
		t.Fatalf("Challenge NP=16 speedup %g outside the paper's band", s)
	}
}

func TestRunFlatAndShapes(t *testing.T) {
	shapes := FlatShapes(100, 16, 6)
	if len(shapes) != 7 {
		t.Fatalf("shapes = %d", len(shapes))
	}
	total := 0
	for _, s := range shapes {
		total += s.Dim
		if s.NNZ != 6*s.Dim {
			t.Fatalf("nnz = %d for dim %d", s.NNZ, s.Dim)
		}
	}
	if total != 100 {
		t.Fatalf("total dim = %d", total)
	}
	if shapes[6].Dim != 4 {
		t.Fatalf("last batch dim = %d", shapes[6].Dim)
	}

	mach := machine.DASH()
	r1 := RunFlat(300, shapes, mach, 1)
	if r1.Wall <= 0 || r1.Ops != 7*6 {
		t.Fatalf("flat run: %+v", r1)
	}
	r4 := RunFlat(300, shapes, mach, 4)
	if r4.Wall >= r1.Wall {
		t.Fatal("flat run does not speed up")
	}
}

// The flat organization's per-constraint cost grows quadratically with
// molecule size while the hierarchical organization grows far more slowly —
// the Table 1 / Figure 5 result.
func TestHierarchicalBeatsFlatAndGapWidens(t *testing.T) {
	mach := machine.DASH()
	prevSpeedup := 0.0
	for _, bp := range []int{1, 2, 4, 8} {
		h := molecule.Helix(bp)
		root, err := hier.Build(h.Tree, h.Constraints)
		if err != nil {
			t.Fatal(err)
		}
		if err := root.Prepare(16); err != nil {
			t.Fatal(err)
		}
		hierWall := Run(root, mach, 1, nil).Wall
		flatWall := RunFlat(3*len(h.Atoms), FlatShapes(h.ScalarDim(), 16, 6), mach, 1).Wall
		speedup := flatWall / hierWall
		if bp > 1 && speedup <= prevSpeedup {
			t.Fatalf("%d bp: hierarchical advantage %g did not grow (prev %g)", bp, speedup, prevSpeedup)
		}
		prevSpeedup = speedup
	}
	if prevSpeedup < 4 {
		t.Fatalf("8 bp hierarchical speedup %g too small", prevSpeedup)
	}
}

func TestNodeOpsCountMatchesBatches(t *testing.T) {
	root := preparedHelix(t, 1)
	n := 0
	root.Walk(func(m *hier.Node) { n += len(m.Batches()) })
	total := 0
	root.Walk(func(m *hier.Node) { total += len(NodeOps(m)) })
	if total != 6*n {
		t.Fatalf("ops %d != 6×batches %d", total, n)
	}
}

// The §5 dynamic re-grouping extension removes the static scheme's
// power-of-two dip on the helix.
func TestDynamicReschedulingRemovesDip(t *testing.T) {
	root := preparedHelix(t, 16)
	mach := machine.DASH()
	w := sched.EstimateWork(root, workest.FlopModel{}, 16)
	base := Run(root, mach, 1, nil).Wall

	static6 := Run(root, mach, 6, sched.Assign(root, 6, w)).Wall
	dyn6 := RunDynamic(root, mach, 6).Wall
	if dyn6 >= static6 {
		t.Fatalf("dynamic (%g) not faster than static (%g) at NP=6", dyn6, static6)
	}
	effStatic := base / static6 / 6
	effDyn := base / dyn6 / 6
	if effDyn < effStatic+0.05 {
		t.Fatalf("dynamic efficiency %.3f did not clearly beat static %.3f", effDyn, effStatic)
	}
	// At a power of two the static scheme is already balanced; dynamic
	// should be in the same ballpark (within 20%).
	static8 := Run(root, mach, 8, sched.Assign(root, 8, w)).Wall
	dyn8 := RunDynamic(root, mach, 8).Wall
	if ratio := dyn8 / static8; ratio > 1.2 || ratio < 0.7 {
		t.Fatalf("NP=8 dynamic/static ratio %.2f", ratio)
	}
	// Sanity: accounting present and deterministic.
	again := RunDynamic(root, mach, 6)
	if again.Wall != dyn6 || again.ClassBusy.Total() <= 0 {
		t.Fatal("dynamic run not deterministic or unaccounted")
	}
}

func TestTraceMatchesRunAndExposesImbalance(t *testing.T) {
	root := preparedHelix(t, 8)
	mach := machine.DASH()
	w := sched.EstimateWork(root, workest.FlopModel{}, 16)
	plan := sched.Assign(root, 3, w)

	run := Run(root, mach, 3, plan)
	res, spans := Trace(root, mach, 3, plan)
	if res.Wall != run.Wall || res.ClassBusy != run.ClassBusy {
		t.Fatal("Trace disagrees with Run")
	}
	if len(spans) != root.Count() {
		t.Fatalf("spans = %d, nodes = %d", len(spans), root.Count())
	}
	// Spans are within the wall clock, ordered, and the root span ends last.
	var rootSpan *Span
	for i := range spans {
		s := &spans[i]
		if s.Start < 0 || s.End > res.Wall+1e-9 || s.End < s.Start {
			t.Fatalf("bad span %+v", s)
		}
		if s.Node == root {
			rootSpan = s
		}
	}
	if rootSpan == nil || rootSpan.End < res.Wall-1e-9 {
		t.Fatalf("root span %+v does not close the run", rootSpan)
	}
	if rootSpan.Procs != 3 || rootSpan.Duration() <= 0 {
		t.Fatalf("root span %+v", rootSpan)
	}
	// With 3 procs over two equal subtrees the two children finish at
	// different times: the root's start equals the slower child's end.
	c0, c1 := root.Children[0], root.Children[1]
	var e0, e1 float64
	for _, s := range spans {
		if s.Node == c0 {
			e0 = s.End
		}
		if s.Node == c1 {
			e1 = s.End
		}
	}
	if e0 == e1 {
		t.Fatal("expected imbalance between 2-proc and 1-proc subtrees")
	}
	if got := max(e0, e1); got > rootSpan.Start+1e-9 {
		t.Fatalf("root started at %g before children finished at %g", rootSpan.Start, got)
	}

	text := FormatTimeline(root, spans, res.Wall, 1)
	if !strings.Contains(text, "#") || !strings.Contains(text, "procs") {
		t.Fatalf("timeline:\n%s", text)
	}
}
