package vm

import (
	"fmt"
	"sort"
	"strings"

	"phmse/internal/hier"
	"phmse/internal/machine"
)

// Span records when one node's own constraint processing ran in a
// virtual-time execution, and with how many processors. Child subtree
// execution is covered by the children's own spans.
type Span struct {
	Node       *hier.Node
	Start, End float64
	Procs      int
}

// Duration returns the span length in model seconds.
func (s Span) Duration() float64 { return s.End - s.Start }

// Trace runs the schedule like Run and additionally returns the per-node
// execution spans, which expose the load-imbalance structure behind the
// speedup curves (e.g. the idle gap when three processors split 2/1 over
// two equal subtrees).
func Trace(root *hier.Node, mach *machine.Machine, procs int, plan *hier.ExecPlan) (Result, []Span) {
	if procs < 1 {
		procs = 1
	}
	res := Result{Procs: procs}
	var spans []Span
	res.Wall = traceFinish(root, mach, procs, plan, 0, &res, &spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return res, spans
}

func traceFinish(n *hier.Node, mach *machine.Machine, procs int, plan *hier.ExecPlan, start float64, res *Result, spans *[]Span) float64 {
	childrenDone := start
	if len(n.Children) > 0 {
		groups := planGroups(plan, n)
		if groups == nil || procs == 1 {
			t := start
			for _, c := range n.Children {
				t = traceFinish(c, mach, procs, plan, t, res, spans)
			}
			childrenDone = t
		} else {
			for _, g := range groups {
				t := start
				for _, c := range g.Nodes {
					t = traceFinish(c, mach, g.Procs, plan, t, res, spans)
				}
				if t > childrenDone {
					childrenDone = t
				}
			}
		}
	}
	t := childrenDone
	for _, op := range NodeOps(n) {
		wall := mach.Wall(op, procs)
		t += wall
		res.ClassBusy[op.Class] += wall * float64(procs)
		res.Ops++
	}
	*spans = append(*spans, Span{Node: n, Start: childrenDone, End: t, Procs: procs})
	return t
}

// FormatTimeline renders the spans of the tree's top levels as a text
// chart: one line per node with its processing interval, processor count,
// and a proportional bar. maxDepth 1 shows only the root's children plus
// the root.
func FormatTimeline(root *hier.Node, spans []Span, wall float64, maxDepth int) string {
	depth := map[*hier.Node]int{}
	var mark func(n *hier.Node, d int)
	mark = func(n *hier.Node, d int) {
		depth[n] = d
		for _, c := range n.Children {
			mark(c, d+1)
		}
	}
	mark(root, 0)

	const width = 48
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %5s %9s %9s  timeline (wall %.2fs)\n", "node", "procs", "start", "end", wall)
	for _, s := range spans {
		d, ok := depth[s.Node]
		if !ok || d > maxDepth {
			continue
		}
		lo := int(s.Start / wall * width)
		hi := int(s.End / wall * width)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("#", hi-lo) + strings.Repeat(" ", width-hi)
		fmt.Fprintf(&b, "%-22s %5d %9.2f %9.2f  |%s|\n",
			indentName(s.Node.Name, d), s.Procs, s.Start, s.End, bar)
	}
	return b.String()
}

func indentName(name string, depth int) string {
	if len(name) > 18 {
		name = name[:18]
	}
	return strings.Repeat("  ", depth) + name
}
