package energymin

import (
	"math"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/molecule"
)

func TestEnergyGradMatchesFiniteDifference(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.5},
		constraint.Position{I: 0, Target: geom.Vec3{1, 1, 1}, Sigma: 0.3},
		constraint.Angle{I: 0, J: 1, K: 2, Target: 1.5, Sigma: 0.2},
	}
	pos := []geom.Vec3{{0.2, 0.1, -0.3}, {2.5, 0.3, 0.4}, {2.1, 2.8, 0.1}}
	grad := make([]geom.Vec3, len(pos))
	EnergyGrad(pos, cons, grad)
	const eps = 1e-6
	for a := range pos {
		for c := 0; c < 3; c++ {
			p := append([]geom.Vec3(nil), pos...)
			p[a][c] += eps
			ep := Energy(p, cons)
			p[a][c] -= 2 * eps
			em := Energy(p, cons)
			num := (ep - em) / (2 * eps)
			if math.Abs(num-grad[a][c]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("grad[%d][%d]: analytic %g numeric %g", a, c, grad[a][c], num)
			}
		}
	}
}

func TestMinimizeTriangle(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.05},
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.05},
		constraint.Distance{I: 0, J: 2, Target: 4, Sigma: 0.05},
		constraint.Distance{I: 1, J: 2, Target: 5, Sigma: 0.05},
	}
	pos := []geom.Vec3{{0.3, 0.1, 0}, {2.0, 0.8, 0.2}, {0.5, 3.1, -0.4}}
	res := Minimize(pos, cons, Options{MaxIters: 2000, GradTol: 1e-6})
	if res.Energy > 1e-4 {
		t.Fatalf("final energy %g (iters %d, converged %v)", res.Energy, res.Iters, res.Converged)
	}
	if d := geom.Dist(pos[1], pos[2]); math.Abs(d-5) > 0.01 {
		t.Fatalf("d12 = %g", d)
	}
}

func TestMinimizeLowersEnergyMonotonically(t *testing.T) {
	h := molecule.WithAnchors(molecule.Helix(1), 3, 0.1)
	pos := molecule.Perturbed(h, 0.5, 3)
	before := Energy(pos, h.Constraints)
	res := Minimize(pos, h.Constraints, Options{MaxIters: 50})
	if res.Energy >= before {
		t.Fatalf("energy did not decrease: %g → %g", before, res.Energy)
	}
}

func TestMinimizeRespectsGatedBounds(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.1},
		constraint.DistanceBound{I: 0, J: 1, Upper: 5, Sigma: 0.2},
	}
	pos := []geom.Vec3{{0, 0, 0}, {9, 0, 0}}
	Minimize(pos, cons, Options{MaxIters: 500})
	if d := geom.Dist(pos[0], pos[1]); d > 5.5 {
		t.Fatalf("upper bound not enforced: %g", d)
	}
	// Inside the bound there is no force: a satisfied configuration stays.
	pos2 := []geom.Vec3{{0, 0, 0}, {3, 0, 0}}
	res := Minimize(pos2, cons, Options{MaxIters: 50})
	if !res.Converged || geom.Dist(pos2[0], pos2[1]) != 3 {
		t.Fatalf("flat-bottom well violated: %+v, d=%g", res, geom.Dist(pos2[0], pos2[1]))
	}
}

func TestMinimizeEmpty(t *testing.T) {
	res := Minimize(nil, nil, Options{})
	if !res.Converged {
		t.Fatal("empty problem should converge")
	}
}

func TestMinimizeZeroSigmaSkipped(t *testing.T) {
	// Constraints with non-positive variance are ignored rather than
	// dividing by zero.
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0},
	}
	pos := []geom.Vec3{{0, 0, 0}, {1, 0, 0}}
	res := Minimize(pos, cons, Options{MaxIters: 10})
	if res.Energy != 0 || math.IsNaN(pos[0][0]) {
		t.Fatalf("zero-sigma handling: %+v", res)
	}
}
