// Package energymin implements the energy-minimization baseline of the
// paper's related-work section (Levitt & Sharon [14]; Némethy & Scheraga
// [16], as compared in Liu et al. [15]): constraints become quadratic
// penalty terms E(x) = Σ ((z − h(x))/σ)², minimized by gradient descent
// with backtracking line search. Like distance geometry — and unlike the
// probabilistic estimator — it yields a single conformation with no
// uncertainty measure.
package energymin

import (
	"math"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// Options configures the minimization; zero values select defaults.
type Options struct {
	MaxIters int     // maximum gradient steps (default 500)
	GradTol  float64 // stop when ‖∇E‖/√n falls below this (default 1e-4)
	Step     float64 // initial step size (default 1e-2)
}

func (o Options) withDefaults() Options {
	if o.MaxIters <= 0 {
		o.MaxIters = 500
	}
	if o.GradTol <= 0 {
		o.GradTol = 1e-4
	}
	if o.Step <= 0 {
		o.Step = 1e-2
	}
	return o
}

// Result reports the outcome of a minimization.
type Result struct {
	Iters     int
	Energy    float64 // final penalty energy
	GradNorm  float64 // RMS gradient at the final point
	Converged bool
}

// Minimize runs gradient descent on pos in place and returns the outcome.
// Gated constraints contribute only while violated, giving the flat-bottom
// penalty wells customary for bound restraints.
func Minimize(pos []geom.Vec3, cons []constraint.Constraint, opt Options) Result {
	opt = opt.withDefaults()
	n := len(pos)
	if n == 0 {
		return Result{Converged: true}
	}
	grad := make([]geom.Vec3, n)
	step := opt.Step
	energy := EnergyGrad(pos, cons, grad)
	res := Result{Energy: energy}
	for iter := 0; iter < opt.MaxIters; iter++ {
		res.Iters = iter + 1
		gnorm := gradRMS(grad)
		res.GradNorm = gnorm
		if gnorm < opt.GradTol {
			res.Converged = true
			break
		}
		// Backtracking line search along −∇E.
		improved := false
		for try := 0; try < 25; try++ {
			trial := make([]geom.Vec3, n)
			for i := range trial {
				trial[i] = pos[i].Sub(grad[i].Scale(step))
			}
			trialGrad := make([]geom.Vec3, n)
			trialE := EnergyGrad(trial, cons, trialGrad)
			if trialE < energy {
				copy(pos, trial)
				copy(grad, trialGrad)
				energy = trialE
				improved = true
				step *= 1.5 // cautious acceleration
				break
			}
			step *= 0.5
		}
		res.Energy = energy
		if !improved {
			res.Converged = res.GradNorm < 10*opt.GradTol
			break
		}
	}
	return res
}

// EnergyGrad computes the penalty energy and writes its gradient (zeroed
// first) into grad, which must have one entry per atom.
func EnergyGrad(pos []geom.Vec3, cons []constraint.Constraint, grad []geom.Vec3) float64 {
	for i := range grad {
		grad[i] = geom.Vec3{}
	}
	total := 0.0
	var local []geom.Vec3
	var h, z, s2 []float64
	var jac [][]float64
	for _, c := range cons {
		atoms := c.Atoms()
		dim := c.Dim()
		if cap(local) < len(atoms) {
			local = make([]geom.Vec3, len(atoms))
		}
		local = local[:len(atoms)]
		for k, a := range atoms {
			local[k] = pos[a]
		}
		if g, ok := c.(constraint.Gated); ok && !g.Active(local) {
			continue
		}
		if cap(h) < dim {
			h = make([]float64, dim)
			z = make([]float64, dim)
			s2 = make([]float64, dim)
		}
		h, z, s2 = h[:dim], z[:dim], s2[:dim]
		for len(jac) < dim {
			jac = append(jac, nil)
		}
		for d := 0; d < dim; d++ {
			if cap(jac[d]) < 3*len(atoms) {
				jac[d] = make([]float64, 3*len(atoms))
			}
			jac[d] = jac[d][:3*len(atoms)]
		}
		c.Eval(local, h, jac[:dim])
		c.Observed(z, s2)
		var wrap []bool
		if p, ok := c.(constraint.Periodic); ok {
			wrap = p.PeriodicRows()
		}
		for d := 0; d < dim; d++ {
			if s2[d] <= 0 {
				continue
			}
			diff := z[d] - h[d]
			if wrap != nil && wrap[d] {
				diff = wrapAngle(diff)
			}
			total += diff * diff / s2[d]
			// ∂E/∂x = −2(z−h)/σ² · ∂h/∂x.
			coeff := -2 * diff / s2[d]
			for k, a := range atoms {
				for cc := 0; cc < 3; cc++ {
					grad[a][cc] += coeff * jac[d][3*k+cc]
				}
			}
		}
	}
	return total
}

// Energy returns the penalty energy alone.
func Energy(pos []geom.Vec3, cons []constraint.Constraint) float64 {
	grad := make([]geom.Vec3, len(pos))
	return EnergyGrad(pos, cons, grad)
}

// wrapAngle maps an angular difference into (−π, π].
func wrapAngle(d float64) float64 {
	for d > math.Pi {
		d -= 2 * math.Pi
	}
	for d <= -math.Pi {
		d += 2 * math.Pi
	}
	return d
}

func gradRMS(grad []geom.Vec3) float64 {
	s := 0.0
	for _, g := range grad {
		s += g.Norm2()
	}
	return math.Sqrt(s / float64(3*len(grad)))
}
