package pool

import (
	"math"
	"sync"
	"testing"
)

func TestGetPutRoundTrip(t *testing.T) {
	b := Get(100)
	if len(b) != 100 {
		t.Fatalf("Get(100) returned len %d", len(b))
	}
	if cap(b) < 100 {
		t.Fatalf("Get(100) returned cap %d", cap(b))
	}
	for i := range b {
		b[i] = float64(i)
	}
	Put(b)
	// The recycled buffer may come back dirty; only length and capacity
	// are guaranteed.
	c := Get(64)
	if len(c) != 64 || cap(c) < 64 {
		t.Fatalf("Get(64) after Put: len %d cap %d", len(c), cap(c))
	}
}

func TestGetZeroedIsZero(t *testing.T) {
	b := Get(128)
	for i := range b {
		b[i] = math.NaN()
	}
	Put(b)
	z := GetZeroed(128)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("GetZeroed left %g at %d", v, i)
		}
	}
}

func TestGetMatZeroed(t *testing.T) {
	m := GetMatDirty(8, 8)
	for i := range m.Data {
		m.Data[i] = math.NaN()
	}
	PutMat(m)
	if m.Data != nil || m.Rows != 0 {
		t.Fatalf("PutMat left matrix usable: %+v", m)
	}
	z := GetMat(8, 8)
	if z.Rows != 8 || z.Cols != 8 || z.Stride != 8 {
		t.Fatalf("GetMat shape: %+v", z)
	}
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetMat left %g at %d", v, i)
		}
	}
}

func TestPutViewRefused(t *testing.T) {
	m := GetMat(4, 8)
	v := m.View(0, 0, 4, 4) // non-compact stride: must not be pooled
	PutMat(v)
	if v.Data == nil {
		t.Fatal("PutMat accepted a strided view")
	}
	PutMat(m)
}

func TestDisableBypassesPool(t *testing.T) {
	SetEnabled(false)
	defer SetEnabled(true)
	if Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	b := Get(32)
	for i := range b {
		b[i] = 1
	}
	Put(b)
	c := Get(32)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("disabled Get returned recycled data %g at %d", v, i)
		}
	}
}

func TestZeroAndNegativeSizes(t *testing.T) {
	if b := Get(0); b != nil {
		t.Fatalf("Get(0) = %v", b)
	}
	if b := Get(-3); b != nil {
		t.Fatalf("Get(-3) = %v", b)
	}
	Put(nil) // must not panic
}

// Concurrent Get/Put churn; run under -race in CI to pin down the pool's
// thread safety.
func TestConcurrentChurn(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := 1 + (g*37+i*13)%300
				b := GetZeroed(n)
				for j := range b {
					b[j] = float64(g)
				}
				// Every element must still be ours before returning it: a
				// pool that double-leased a buffer shows up here.
				for j, v := range b {
					if v != float64(g) {
						t.Errorf("buffer shared across goroutines: got %g at %d", v, j)
						return
					}
				}
				Put(b)
			}
		}(g)
	}
	wg.Wait()
}

func TestStatsCount(t *testing.T) {
	before := Snapshot()
	b := Get(16)
	Put(b)
	Get(16)
	after := Snapshot()
	if after.Gets-before.Gets < 2 || after.Puts-before.Puts < 1 {
		t.Fatalf("stats did not advance: %+v -> %+v", before, after)
	}
}
