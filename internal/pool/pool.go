// Package pool provides process-wide, size-classed reuse of the float64
// scratch buffers that dominate the solver's allocation profile: the m×m
// innovation and gain workspaces of the measurement update and the per-node
// state vectors and covariance matrices of the hierarchical solve. It is
// the service-layer continuation of the paper's §5 observation that careful
// memory management of the per-node temporaries pays off — at scale the win
// comes from reusing structured workspaces across solves, not
// re-materializing them per request.
//
// Buffers are grouped into power-of-two size classes, each backed by a
// sync.Pool so idle memory is reclaimed under GC pressure. Get returns a
// buffer with unspecified contents (the hot paths fully overwrite their
// destinations); GetZeroed and GetMat zero-fill for callers that rely on
// zero initialization. Returning a buffer with Put is optional — a buffer
// that escapes into a long-lived result is simply never returned.
//
// All functions are safe for concurrent use. SetEnabled(false) turns every
// Get into a plain allocation and every Put into a no-op, which is how the
// throughput benchmark measures the per-job-allocation baseline.
package pool

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"phmse/internal/mat"
)

// numClasses covers buffer lengths up to 2^40 floats — far beyond any
// state dimension the solver can hold in memory.
const numClasses = 41

var classes [numClasses]sync.Pool

// disabled flips the pool into pass-through mode (plain allocation).
var disabled atomic.Bool

// Counters of pool effectiveness, served by /metrics.
var (
	gets atomic.Int64 // Get/GetZeroed/GetMat calls
	hits atomic.Int64 // gets satisfied by a reused buffer
	puts atomic.Int64 // buffers returned for reuse
)

// Stats is a snapshot of the pool counters.
type Stats struct {
	Gets int64 `json:"gets"`
	Hits int64 `json:"hits"`
	Puts int64 `json:"puts"`
}

// Snapshot returns the current pool counters.
func Snapshot() Stats {
	return Stats{Gets: gets.Load(), Hits: hits.Load(), Puts: puts.Load()}
}

// SetEnabled turns pooling on or off process-wide. Disabling does not
// invalidate buffers already handed out; it only makes further Gets
// allocate fresh and further Puts drop their argument.
func SetEnabled(on bool) { disabled.Store(!on) }

// Enabled reports whether pooling is active.
func Enabled() bool { return !disabled.Load() }

// classFor returns the smallest class whose buffers hold n floats.
func classFor(n int) int { return bits.Len(uint(n - 1)) }

// Get returns a float64 slice of length n with unspecified contents —
// possibly dirty data from a previous user. Callers must fully overwrite
// it (or use GetZeroed).
func Get(n int) []float64 {
	if n <= 0 {
		return nil
	}
	gets.Add(1)
	if disabled.Load() {
		return make([]float64, n)
	}
	c := classFor(n)
	if v := classes[c].Get(); v != nil {
		hits.Add(1)
		return (*v.(*[]float64))[:n]
	}
	return make([]float64, 1<<c)[:n]
}

// GetZeroed returns a zero-filled float64 slice of length n.
func GetZeroed(n int) []float64 {
	b := Get(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

// Put returns a buffer for reuse. The caller must not touch b afterwards.
// Buffers of zero capacity are dropped.
func Put(b []float64) {
	if disabled.Load() || cap(b) == 0 {
		return
	}
	puts.Add(1)
	// File under the largest class the capacity fully covers, so a later
	// Get from that class is guaranteed to fit.
	c := bits.Len(uint(cap(b))) - 1
	b = b[:cap(b)]
	classes[c].Put(&b)
}

// GetMat returns a zeroed r×c matrix with compact stride backed by a
// pooled buffer.
func GetMat(r, c int) *mat.Mat {
	return &mat.Mat{Rows: r, Cols: c, Stride: c, Data: GetZeroed(r * c)}
}

// GetMatDirty is GetMat without the zero fill, for destinations that are
// fully overwritten before being read.
func GetMatDirty(r, c int) *mat.Mat {
	return &mat.Mat{Rows: r, Cols: c, Stride: c, Data: Get(r * c)}
}

// PutMat returns a matrix's backing buffer for reuse and clears the
// matrix so accidental reuse fails loudly. Only matrices with compact
// stride (as returned by GetMat/GetMatDirty or mat.New) own their whole
// buffer; views into larger allocations must not be returned.
func PutMat(m *mat.Mat) {
	if m == nil || m.Stride != m.Cols {
		return
	}
	Put(m.Data)
	m.Data = nil
	m.Rows, m.Cols, m.Stride = 0, 0, 0
}
