package encode

// Wire types for the phmse-router /admin/v1 control plane and the phmsed
// posterior-transfer endpoints. They live in encode — not in the router —
// because both daemons and the typed client speak them: the router serves
// the admin documents, phmsed serves the posterior index, and
// internal/client decodes both without importing either daemon package.

// PosteriorInfo summarizes one retained posterior in a shard's store,
// served by GET /v1/posteriors. It carries the hashes the migration pass
// needs to re-place the posterior on a changed ring without downloading
// the (much larger) full document first.
type PosteriorInfo struct {
	// Job is the shard-qualified job id the posterior was retained under.
	Job     string `json:"job"`
	Problem string `json:"problem,omitempty"`
	// TopologyHash is the routing key: the ring position of this posterior
	// is KeyHash(TopologyHash).
	TopologyHash string `json:"topology_hash,omitempty"`
	// StructureHash is the warm-start compatibility key (atoms + grouping).
	StructureHash string `json:"structure_hash,omitempty"`
	Atoms         int    `json:"atoms"`
	// Bytes is the in-store footprint used against the posterior budget.
	Bytes int64 `json:"bytes"`
}

// PosteriorIndex is the document served by GET /v1/posteriors?prefix=.
type PosteriorIndex struct {
	Posteriors []PosteriorInfo `json:"posteriors"`
	// TotalBytes/CapacityBytes describe the whole store (not just the
	// filtered listing), so a migration source can be checked for fit
	// before streaming.
	TotalBytes    int64 `json:"total_bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
}

// ShardInfo is one router-side shard membership entry as served by the
// admin API and embedded in admin operation reports.
type ShardInfo struct {
	// Base is the shard's base URL — the stable name consistent-hash arcs
	// are derived from.
	Base string `json:"base"`
	// Instance is the daemon's learned -instance id ("" until the first
	// successful probe or relay).
	Instance string `json:"instance,omitempty"`
	Alive    bool   `json:"alive"`
	Ready    bool   `json:"ready"`
	// InRing reports whether the shard currently owns ring arcs (ready and
	// not fenced by a drain).
	InRing bool `json:"in_ring"`
	// DrainState is "" for an active member, "draining" while a drain is
	// fencing and migrating, "drained" once a POST .../drain completed and
	// the shard is held out of the ring awaiting removal or reactivation.
	DrainState string `json:"drain_state,omitempty"`
	// QueueDepth and Running mirror the shard's last /readyz probe — the
	// load signal recorded per probe for ring-weighting groundwork.
	QueueDepth int `json:"queue_depth"`
	Running    int `json:"running"`
}

// ShardList is the GET /admin/v1/shards topology view.
type ShardList struct {
	Shards []ShardInfo `json:"shards"`
	// RingShards is how many of them currently own arcs.
	RingShards int `json:"ring_shards"`
}

// AddShardRequest is the POST /admin/v1/shards body.
type AddShardRequest struct {
	// Base is the new shard's base URL, e.g. "http://10.0.0.7:8080".
	Base string `json:"base"`
}

// MigrationReport summarizes one posterior migration pass.
type MigrationReport struct {
	// Migrated counts posteriors streamed to their new owner and deleted
	// from the source after the destination acknowledged.
	Migrated int `json:"migrated"`
	// Failed counts posteriors left intact on the source because export,
	// import, or the source index itself failed — no ack, no delete.
	Failed int `json:"failed"`
	// Skipped counts posteriors that did not need to move (or had no
	// routing key, or no destination existed).
	Skipped int   `json:"skipped"`
	Bytes   int64 `json:"bytes"`
}

// RepairReport summarizes one anti-entropy repair sweep: the router
// indexed every live shard's posteriors, diffed holdings against current
// ring ownership, and re-drove the misplaced ones through the transfer
// protocol. Served by POST /admin/v1/repair and tallied in /metrics.
type RepairReport struct {
	// Scanned counts posteriors indexed across all live shards this sweep.
	Scanned int `json:"scanned"`
	// Repaired counts posteriors re-driven to their ring owner (destination
	// acknowledged, source deleted).
	Repaired int `json:"repaired"`
	// Failed counts posteriors (or whole shard indexes) the sweep could not
	// move; they stay where they are for the next sweep.
	Failed int `json:"failed"`
	// Skipped counts posteriors with no routing key, no live destination,
	// or a destination fenced by a drain.
	Skipped int   `json:"skipped"`
	Bytes   int64 `json:"bytes"`
}

// AuditEntry is one admin-plane audit record: a membership change or an
// effective repair sweep. With the router's -audit-log set, entries also
// append to a JSONL file; GET /admin/v1/audit serves the in-memory tail.
type AuditEntry struct {
	// Time is the RFC3339Nano UTC stamp the router assigned.
	Time string `json:"time"`
	// Op is "add", "reactivate", "remove", "drain", "repair", "apply"
	// (a membership document adopted from a gossip peer took effect) or
	// "conflict" (an equal-epoch peer document lost the deterministic
	// tie-break and was rejected).
	Op string `json:"op"`
	// Origin is the replica id whose mutation produced this entry: the
	// local replica for operations applied here, the originating peer
	// for gossip-applied documents.
	Origin string `json:"origin,omitempty"`
	// Shard is the affected member's base URL ("" for repair sweeps).
	Shard string `json:"shard,omitempty"`
	// Mode is the removal mode ("drain" or "immediate") when Op is
	// "remove".
	Mode string `json:"mode,omitempty"`
	// Outcome is "ok", "conflict" (add of an active member), "partial"
	// (some posteriors failed to move), or "timed_out" (in-flight work
	// remained at the drain deadline).
	Outcome string `json:"outcome"`
	// InflightAtEnd is the shard's last observed queued+running count when
	// a drain ended (-1: the shard stopped answering).
	InflightAtEnd int `json:"inflight_at_end,omitempty"`
	// Migrated and Failed count the posteriors the operation moved and
	// left behind (for repairs: repaired and failed).
	Migrated int `json:"migrated,omitempty"`
	Failed   int `json:"failed,omitempty"`
	// Detail summarizes a gossip apply: the members added (+base),
	// removed (-base) and re-fenced (~base) by the adopted document.
	Detail string `json:"detail,omitempty"`
}

// AuditLog is the GET /admin/v1/audit document, oldest entry first.
type AuditLog struct {
	Entries []AuditEntry `json:"entries"`
}

// AddShardResponse reports a POST /admin/v1/shards outcome.
type AddShardResponse struct {
	Shard ShardInfo `json:"shard"`
	// Reactivated is true when the base named an existing drained member
	// that was returned to service instead of a brand-new shard.
	Reactivated bool `json:"reactivated,omitempty"`
	// Migration is the rebalancing pass run after the ring change, moving
	// remapped posteriors onto the new member.
	Migration MigrationReport `json:"migration"`
}

// DrainReport reports a DELETE /admin/v1/shards/{name} or
// POST /admin/v1/shards/{name}/drain outcome.
type DrainReport struct {
	Shard ShardInfo `json:"shard"`
	// Mode is "drain" or "immediate".
	Mode string `json:"mode"`
	// Removed is true when the shard was ejected from membership (DELETE);
	// false for a POST drain, which fences and migrates but keeps the
	// member registered in state "drained".
	Removed bool `json:"removed"`
	// TimedOut is true when in-flight work remained at the drain deadline;
	// InflightAtEnd is the last observed queued+running count (-1 when the
	// shard stopped answering probes).
	TimedOut      bool  `json:"timed_out,omitempty"`
	InflightAtEnd int   `json:"inflight_at_end,omitempty"`
	WaitedMillis  int64 `json:"waited_millis"`
	// Migration is the posterior evacuation pass; Failed+Skipped is the
	// unmigrated count left stranded on the source.
	Migration MigrationReport `json:"migration"`
}
