package encode

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"phmse/internal/constraint"
	"phmse/internal/molecule"
)

// TopologyHash returns a content hash of the problem's topology: the atom
// count, the constraint graph (constraint types and the atom indices they
// couple), and the hierarchical grouping. Measurement values — targets,
// sigmas, reference positions, names — are deliberately excluded: two
// problems with equal hashes decompose and schedule identically, so the
// hash is the key under which the serving layer caches planning artifacts
// across repeated solves.
//
// The hash is canonical: it does not depend on the order constraints appear
// in (the constraint set is hashed as a sorted multiset) nor, since it is
// computed from the parsed Problem, on JSON field order in a problem file.
func TopologyHash(p *molecule.Problem) string {
	h := sha256.New()
	fmt.Fprintf(h, "atoms:%d\n", len(p.Atoms))
	recs := make([]string, len(p.Constraints))
	for i, c := range p.Constraints {
		recs[i] = topoRecord(c)
	}
	sort.Strings(recs)
	for _, r := range recs {
		io.WriteString(h, r)
		io.WriteString(h, "\n")
	}
	io.WriteString(h, "tree:")
	hashTree(h, p.Tree)
	return hex.EncodeToString(h.Sum(nil))
}

// StructureHash returns a content hash of the problem's molecule alone:
// the atom count and the hierarchical grouping, deliberately excluding the
// constraint set. A stored posterior (positions + covariance per atom) is
// reusable by any problem over the same molecule — warm-start re-solves
// add, drop, or re-measure constraints without invalidating it — so this
// is the key under which posterior compatibility is checked. Two problems
// with different StructureHash values index different atoms and must not
// exchange posteriors.
func StructureHash(p *molecule.Problem) string {
	h := sha256.New()
	fmt.Fprintf(h, "atoms:%d\n", len(p.Atoms))
	io.WriteString(h, "tree:")
	hashTree(h, p.Tree)
	return hex.EncodeToString(h.Sum(nil))
}

// topoRecord renders the topology-relevant part of one constraint: its
// type tag and the atom indices it couples.
func topoRecord(c constraint.Constraint) string {
	switch v := c.(type) {
	case constraint.Distance:
		return fmt.Sprintf("distance %d %d", v.I, v.J)
	case constraint.Angle:
		return fmt.Sprintf("angle %d %d %d", v.I, v.J, v.K)
	case constraint.Torsion:
		return fmt.Sprintf("torsion %d %d %d %d", v.I, v.J, v.K, v.L)
	case constraint.Position:
		return fmt.Sprintf("position %d", v.I)
	case constraint.DistanceBound:
		return fmt.Sprintf("bound %d %d", v.I, v.J)
	default:
		return fmt.Sprintf("%T %v", c, c.Atoms())
	}
}

// hashTree writes a canonical rendering of the grouping tree: a
// parenthesized pre-order traversal of directly-owned atom IDs.
func hashTree(w io.Writer, g *molecule.Group) {
	if g == nil {
		io.WriteString(w, "-")
		return
	}
	io.WriteString(w, "(")
	for i, a := range g.AtomIDs {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "%d", a)
	}
	for _, c := range g.Children {
		hashTree(w, c)
	}
	io.WriteString(w, ")")
}
