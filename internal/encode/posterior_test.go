package encode

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"phmse/internal/geom"
	"phmse/internal/mat"
)

func samplePosterior() ([]geom.Vec3, []float64, *mat.Mat) {
	pos := []geom.Vec3{{0, 0, 0}, {1.5, 0, 0}, {1.5, 1.5, 0}}
	coordVar := make([]float64, 9)
	cov := mat.New(9, 9)
	for i := 0; i < 9; i++ {
		coordVar[i] = 0.01 * float64(i+1)
		cov.Set(i, i, coordVar[i])
		for j := 0; j < i; j++ {
			v := 0.001 * float64(i+j)
			cov.Set(i, j, v)
			cov.Set(j, i, v)
		}
	}
	return pos, coordVar, cov
}

// The posterior wire form must survive a JSON round trip bit-for-bit:
// it is both the /posterior response and msesolve's on-disk resume format.
func TestPosteriorDocRoundTrip(t *testing.T) {
	pos, coordVar, cov := samplePosterior()
	doc := NewPosteriorDoc(pos, coordVar, cov)
	doc.Job = "job-000007"
	doc.TopologyHash = "aaaa"
	doc.StructureHash = "bbbb"

	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(doc); err != nil {
		t.Fatal(err)
	}
	var back PosteriorDoc
	if err := json.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Job != doc.Job || back.StructureHash != doc.StructureHash || back.Atoms != len(pos) {
		t.Fatalf("identity fields: %+v", back)
	}

	gotPos, gotVar, gotCov, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := range pos {
		if gotPos[i] != pos[i] {
			t.Fatalf("position %d: %v != %v", i, gotPos[i], pos[i])
		}
	}
	for i := range coordVar {
		if gotVar[i] != coordVar[i] {
			t.Fatalf("variance %d: %g != %g", i, gotVar[i], coordVar[i])
		}
	}
	if gotCov == nil {
		t.Fatal("covariance lost in round trip")
	}
	for i := 0; i < cov.Rows; i++ {
		for j := 0; j < cov.Cols; j++ {
			if gotCov.At(i, j) != cov.At(i, j) {
				t.Fatalf("covariance (%d,%d): %g != %g", i, j, gotCov.At(i, j), cov.At(i, j))
			}
		}
	}

	// Diagonal-only documents decode with a nil covariance.
	slim := NewPosteriorDoc(pos, coordVar, nil)
	_, _, slimCov, err := slim.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if slimCov != nil {
		t.Fatal("diagonal-only document produced a covariance matrix")
	}
}

func TestPosteriorDocDecodeRejects(t *testing.T) {
	pos, coordVar, cov := samplePosterior()
	cases := []struct {
		name   string
		mutate func(*PosteriorDoc)
	}{
		{"no positions", func(d *PosteriorDoc) { d.Positions = nil }},
		{"atom count mismatch", func(d *PosteriorDoc) { d.Atoms = 7 }},
		{"short variances", func(d *PosteriorDoc) { d.CoordVariances = d.CoordVariances[:4] }},
		{"negative variance", func(d *PosteriorDoc) { d.CoordVariances[2] = -1 }},
		{"nan variance", func(d *PosteriorDoc) { d.CoordVariances[0] = math.NaN() }},
		{"inf variance", func(d *PosteriorDoc) { d.CoordVariances[0] = math.Inf(1) }},
		{"short cov", func(d *PosteriorDoc) { d.Cov = d.Cov[:3] }},
		{"ragged cov row", func(d *PosteriorDoc) { d.Cov[4] = d.Cov[4][:2] }},
	}
	for _, tc := range cases {
		doc := NewPosteriorDoc(pos, coordVar, cov)
		tc.mutate(&doc)
		if _, _, _, err := doc.Decode(); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}
