package encode

// Routing helpers for the sharding tier. phmse-router fronts N phmsed
// instances with a consistent-hash ring keyed on the problem's topology
// hash, so identical topologies always land on the shard whose plan cache
// and posterior store are already hot. The helpers live here, next to the
// hashes and the wire types, so the router never needs to import the
// serving internals: everything it routes on is part of the wire surface.

import (
	"bytes"
	"strings"
)

// SolveRouting extracts the routing decision of a solve request without
// acting on it: the consistent-hash key (the problem's TopologyHash) and
// the warm-start reference, if any. A warm-started submission must route
// to the shard that retains the referenced posterior — the job id's
// instance qualifier, not the ring, names that shard — so the router needs
// both. The body is validated exactly as the daemon would validate it,
// which lets the router reject malformed submissions before forwarding.
func SolveRouting(body []byte) (string, *WarmStartRef, error) {
	p, _, warm, err := ReadSolveRequest(bytes.NewReader(body))
	if err != nil {
		return "", nil, err
	}
	return TopologyHash(p), warm, nil
}

// QualifyJob prefixes a job id with the instance that minted it:
// QualifyJob("s1", "job-000042") = "s1.job-000042". An empty instance
// leaves the id unqualified, the single-daemon form.
func QualifyJob(instance, id string) string {
	if instance == "" {
		return id
	}
	return instance + "." + id
}

// JobInstance returns the instance qualifier of a shard-qualified job id
// ("s1.job-000042" → "s1") and "" for unqualified ids, which predate the
// sharding tier or come from a daemon run without -instance.
func JobInstance(id string) string {
	if i := strings.Index(id, ".job-"); i > 0 {
		return id[:i]
	}
	return ""
}
