package encode

import (
	"strings"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/molecule"
)

// The topology hash must not depend on JSON field order: the same document
// with every object's fields permuted parses to the same topology.
func TestTopologyHashStableAcrossFieldOrder(t *testing.T) {
	doc1 := `{
	 "name": "perm",
	 "atoms": [{"name": "A", "pos": [0,0,0]}, {"pos": [1,0,0], "residue": 1}, {"pos": [0,1,0]}],
	 "constraints": [
	  {"type": "distance", "i": 0, "j": 1, "target": 1.0, "sigma": 0.1},
	  {"type": "angle", "i": 0, "j": 1, "k": 2, "target": 1.5, "sigma": 0.2}
	 ],
	 "tree": {"name": "root", "children": [{"atoms": [0, 1]}, {"atoms": [2]}]}
	}`
	doc2 := `{
	 "tree": {"children": [{"atoms": [0, 1]}, {"atoms": [2]}], "name": "root"},
	 "constraints": [
	  {"sigma": 0.1, "target": 1.0, "j": 1, "i": 0, "type": "distance"},
	  {"k": 2, "j": 1, "i": 0, "sigma": 0.2, "type": "angle", "target": 1.5}
	 ],
	 "atoms": [{"pos": [0,0,0], "name": "A"}, {"residue": 1, "pos": [1,0,0]}, {"pos": [0,1,0]}],
	 "name": "perm"
	}`
	p1, err := ReadProblem(strings.NewReader(doc1))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ReadProblem(strings.NewReader(doc2))
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := TopologyHash(p1), TopologyHash(p2)
	if h1 != h2 {
		t.Fatalf("field-order permutation changed the hash:\n%s\n%s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not a sha256 hex digest", h1)
	}
}

// Constraint order is not topology: a permuted constraint list hashes the
// same. Measurement values are not topology either.
func TestTopologyHashCanonical(t *testing.T) {
	p := sampleProblem()
	base := TopologyHash(p)

	perm := sampleProblem()
	for i, j := 0, len(perm.Constraints)-1; i < j; i, j = i+1, j-1 {
		perm.Constraints[i], perm.Constraints[j] = perm.Constraints[j], perm.Constraints[i]
	}
	if got := TopologyHash(perm); got != base {
		t.Fatalf("constraint-order permutation changed the hash")
	}

	vals := sampleProblem()
	vals.Constraints[0] = constraint.Distance{I: 0, J: 1, Target: 9.9, Sigma: 0.7}
	vals.Atoms[0].Pos = [3]float64{5, 5, 5}
	vals.Name = "other-name"
	if got := TopologyHash(vals); got != base {
		t.Fatalf("measurement values leaked into the topology hash")
	}
}

// Genuine topology changes must change the hash.
func TestTopologyHashDiscriminates(t *testing.T) {
	base := TopologyHash(sampleProblem())
	seen := map[string]string{"base": base}

	edge := sampleProblem()
	edge.Constraints[0] = constraint.Distance{I: 0, J: 2, Target: 1.5, Sigma: 0.1}
	seen["different edge"] = TopologyHash(edge)

	kind := sampleProblem()
	kind.Constraints[0] = constraint.DistanceBound{I: 0, J: 1, Lower: 1, Upper: 2, Sigma: 0.1}
	seen["different constraint type"] = TopologyHash(kind)

	atoms := sampleProblem()
	atoms.Atoms = append(atoms.Atoms, molecule.Atom{Pos: [3]float64{9, 9, 9}})
	seen["extra atom"] = TopologyHash(atoms)

	grouping := sampleProblem()
	grouping.Tree = &molecule.Group{Name: "root", Children: []*molecule.Group{
		{Name: "a", AtomIDs: []int{0, 1}},
		{Name: "b", AtomIDs: []int{2, 3, 4}},
	}}
	seen["different grouping"] = TopologyHash(grouping)

	flat := sampleProblem()
	flat.Tree = nil
	seen["no grouping"] = TopologyHash(flat)

	inverse := map[string]string{}
	for name, h := range seen {
		if prev, dup := inverse[h]; dup {
			t.Fatalf("%q and %q collide: %s", name, prev, h)
		}
		inverse[h] = name
	}
}

// Two helix generations of the same size share a topology; different sizes
// do not.
func TestTopologyHashGenerators(t *testing.T) {
	a := TopologyHash(molecule.Helix(2))
	b := TopologyHash(molecule.Helix(2))
	c := TopologyHash(molecule.Helix(3))
	if a != b {
		t.Fatal("identical generations hash differently")
	}
	if a == c {
		t.Fatal("different helix sizes collide")
	}
}
