package encode

// This file holds the wire-format data-transfer objects for the serving
// layer: solve requests submitted to POST /v1/solve and solution documents
// returned by GET /v1/jobs/{id}/result. They live here, next to the
// problem format, so every tool that speaks the problem JSON can also
// speak the job JSON.

import (
	"encoding/json"
	"fmt"
	"io"

	"phmse/internal/geom"
	"phmse/internal/molecule"
)

// SolveParams is the wire form of the solver configuration accepted with a
// submitted problem. Zero values select the solver defaults.
type SolveParams struct {
	// Mode is "hier" (default) or "flat".
	Mode string `json:"mode,omitempty"`
	// Procs requests a processor-team size for this job; the server caps it
	// at its per-job allocation.
	Procs int `json:"procs,omitempty"`
	// BatchSize is the scalar constraint batch dimension.
	BatchSize int `json:"batch,omitempty"`
	// MaxCycles bounds the constraint-application cycles.
	MaxCycles int `json:"max_cycles,omitempty"`
	// Tol is the RMS coordinate change declaring convergence.
	Tol float64 `json:"tol,omitempty"`
	// Auto derives the hierarchy by constraint-graph partitioning even when
	// the problem carries its own grouping.
	Auto bool `json:"auto,omitempty"`
	// Perturb starts the solve from the reference positions displaced by
	// Gaussian noise of this σ (Å); the default is 0.5.
	Perturb float64 `json:"perturb,omitempty"`
	// Seed seeds the starting-estimate perturbation.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMillis, when positive, bounds the solve's wall-clock time; an
	// expired job fails with a deadline error.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
}

// SolveRequest is the JSON body of POST /v1/solve: a problem document in
// the interchange format plus solver parameters.
type SolveRequest struct {
	Problem json.RawMessage `json:"problem"`
	Params  SolveParams     `json:"params,omitempty"`
}

// ReadSolveRequest parses and validates a solve request, returning the
// decoded problem and parameters.
func ReadSolveRequest(r io.Reader) (*molecule.Problem, SolveParams, error) {
	var req SolveRequest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&req); err != nil {
		return nil, SolveParams{}, fmt.Errorf("encode: request: %w", err)
	}
	if len(req.Problem) == 0 {
		return nil, SolveParams{}, fmt.Errorf("encode: request has no problem document")
	}
	p, err := ReadProblemBytes(req.Problem)
	if err != nil {
		return nil, SolveParams{}, err
	}
	if len(p.Atoms) == 0 {
		return nil, SolveParams{}, fmt.Errorf("encode: problem has no atoms")
	}
	switch req.Params.Mode {
	case "", "hier", "flat":
	default:
		return nil, SolveParams{}, fmt.Errorf("encode: unknown mode %q (want \"flat\" or \"hier\")", req.Params.Mode)
	}
	return p, req.Params, nil
}

// SolutionDoc is the wire form of a solved structure estimate.
type SolutionDoc struct {
	Name      string       `json:"name"`
	Converged bool         `json:"converged"`
	Cycles    int          `json:"cycles"`
	RMSChange float64      `json:"rms_change"`
	Residual  float64      `json:"residual"`
	Positions [][3]float64 `json:"positions"`
	// Variances holds each atom's summed coordinate variance (Å²).
	Variances []float64 `json:"variances"`
}

// NewSolutionDoc assembles the wire form from solver outputs.
func NewSolutionDoc(name string, pos []geom.Vec3, variances []float64, cycles int, converged bool, rmsChange, residual float64) SolutionDoc {
	doc := SolutionDoc{
		Name:      name,
		Converged: converged,
		Cycles:    cycles,
		RMSChange: rmsChange,
		Residual:  residual,
		Positions: make([][3]float64, len(pos)),
		Variances: append([]float64(nil), variances...),
	}
	for i, p := range pos {
		doc.Positions[i] = p
	}
	return doc
}
