package encode

// This file holds the wire-format data-transfer objects for the serving
// layer: solve requests submitted to POST /v1/solve and solution documents
// returned by GET /v1/jobs/{id}/result. They live here, next to the
// problem format, so every tool that speaks the problem JSON can also
// speak the job JSON.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/molecule"
)

// SolveParams is the wire form of the solver configuration accepted with a
// submitted problem. Zero values select the solver defaults.
type SolveParams struct {
	// Mode is "hier" (default) or "flat".
	Mode string `json:"mode,omitempty"`
	// Procs requests a processor-team size for this job; the server caps it
	// at its per-job allocation.
	Procs int `json:"procs,omitempty"`
	// BatchSize is the scalar constraint batch dimension.
	BatchSize int `json:"batch,omitempty"`
	// MaxCycles bounds the constraint-application cycles.
	MaxCycles int `json:"max_cycles,omitempty"`
	// Tol is the RMS coordinate change declaring convergence.
	Tol float64 `json:"tol,omitempty"`
	// Auto derives the hierarchy by constraint-graph partitioning even when
	// the problem carries its own grouping.
	Auto bool `json:"auto,omitempty"`
	// Perturb starts the solve from the reference positions displaced by
	// Gaussian noise of this σ (Å); the default is 0.5.
	Perturb float64 `json:"perturb,omitempty"`
	// Seed seeds the starting-estimate perturbation.
	Seed int64 `json:"seed,omitempty"`
	// TimeoutMillis, when positive, bounds the solve's wall-clock time; an
	// expired job fails with a deadline error.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// KeepPosterior asks the server to retain the job's posterior
	// (positions + covariance) in its bounded posterior store on
	// completion, so later submissions can warm-start from it.
	KeepPosterior bool `json:"keep_posterior,omitempty"`
}

// WarmStartRef names a prior job whose retained posterior should seed the
// solve instead of the perturbed-prior initialisation.
type WarmStartRef struct {
	Job string `json:"job"`
}

// SolveRequest is the JSON body of POST /v1/solve: a problem document in
// the interchange format plus solver parameters and an optional warm-start
// reference.
type SolveRequest struct {
	Problem json.RawMessage `json:"problem"`
	Params  SolveParams     `json:"params,omitempty"`
	// WarmStart, when present, starts the solve from the referenced job's
	// retained posterior. The referenced posterior must belong to the same
	// molecule (equal StructureHash); a mismatch is rejected with the
	// topology_mismatch error code.
	WarmStart *WarmStartRef `json:"warm_start,omitempty"`
}

// ReadSolveRequest parses and validates a solve request, returning the
// decoded problem, the solver parameters, and the warm-start reference
// (nil when the submission is cold).
func ReadSolveRequest(r io.Reader) (*molecule.Problem, SolveParams, *WarmStartRef, error) {
	var req SolveRequest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&req); err != nil {
		return nil, SolveParams{}, nil, fmt.Errorf("encode: request: %w", err)
	}
	if len(req.Problem) == 0 {
		return nil, SolveParams{}, nil, fmt.Errorf("encode: request has no problem document")
	}
	p, err := ReadProblemBytes(req.Problem)
	if err != nil {
		return nil, SolveParams{}, nil, err
	}
	if len(p.Atoms) == 0 {
		return nil, SolveParams{}, nil, fmt.Errorf("encode: problem has no atoms")
	}
	switch req.Params.Mode {
	case "", "hier", "flat":
	default:
		return nil, SolveParams{}, nil, fmt.Errorf("encode: unknown mode %q (want \"flat\" or \"hier\")", req.Params.Mode)
	}
	if req.WarmStart != nil && req.WarmStart.Job == "" {
		return nil, SolveParams{}, nil, fmt.Errorf("encode: warm_start reference has no job id")
	}
	return p, req.Params, req.WarmStart, nil
}

// SolutionDoc is the wire form of a solved structure estimate.
type SolutionDoc struct {
	Name      string       `json:"name"`
	Converged bool         `json:"converged"`
	Cycles    int          `json:"cycles"`
	RMSChange float64      `json:"rms_change"`
	Residual  float64      `json:"residual"`
	Positions [][3]float64 `json:"positions"`
	// Variances holds each atom's summed coordinate variance (Å²).
	Variances []float64 `json:"variances"`
	// Diagnostics reports the solve's numerical fault-containment activity
	// (ridge retries, rollbacks, quarantined batches, RMS trajectory);
	// omitted when the solve saw none.
	Diagnostics *filter.DiagSnapshot `json:"diagnostics,omitempty"`
}

// PosteriorDoc is the wire form of a retained posterior estimate: the
// warm-start currency of the v1 API, served by GET /v1/jobs/{id}/posterior
// and written to disk by msesolve -save-posterior. Positions and variances
// are in problem atom order.
type PosteriorDoc struct {
	// Job is the id of the job that produced the posterior (empty for
	// posteriors saved by the command-line tools).
	Job     string `json:"job,omitempty"`
	Problem string `json:"problem,omitempty"`
	// TopologyHash identifies the full problem topology the posterior was
	// solved under; StructureHash identifies just the molecule (atoms +
	// grouping), the compatibility key for warm starts.
	TopologyHash  string `json:"topology_hash,omitempty"`
	StructureHash string `json:"structure_hash,omitempty"`
	Atoms         int    `json:"atoms"`
	// Positions is the posterior mean, one [x y z] per atom (Å).
	Positions [][3]float64 `json:"positions"`
	// CoordVariances is the posterior covariance diagonal: one variance
	// (Å²) per coordinate, 3 per atom, laid out (x₀,y₀,z₀,x₁,…).
	CoordVariances []float64 `json:"coord_variances"`
	// Cov is the full posterior covariance (3n×3n, row-major rows), present
	// only when the full matrix was requested (?cov=full, or a disk save).
	// Flat-mode warm starts use it when available; hierarchical warm starts
	// use only the diagonal.
	Cov [][]float64 `json:"cov,omitempty"`
}

// NewPosteriorDoc assembles the wire form of a posterior. cov may be nil;
// when given it must be a square matrix of side 3·len(pos).
func NewPosteriorDoc(pos []geom.Vec3, coordVar []float64, cov *mat.Mat) PosteriorDoc {
	doc := PosteriorDoc{
		Atoms:          len(pos),
		Positions:      make([][3]float64, len(pos)),
		CoordVariances: append([]float64(nil), coordVar...),
	}
	for i, p := range pos {
		doc.Positions[i] = p
	}
	if cov != nil {
		doc.Cov = make([][]float64, cov.Rows)
		for i := range doc.Cov {
			doc.Cov[i] = append([]float64(nil), cov.Row(i)...)
		}
	}
	return doc
}

// Decode validates the document and returns its pieces in solver form:
// positions, the per-coordinate variance diagonal, and the full covariance
// (nil when the document carries only the diagonal).
func (d *PosteriorDoc) Decode() (pos []geom.Vec3, coordVar []float64, cov *mat.Mat, err error) {
	n := len(d.Positions)
	if n == 0 {
		return nil, nil, nil, fmt.Errorf("encode: posterior has no positions")
	}
	if d.Atoms != 0 && d.Atoms != n {
		return nil, nil, nil, fmt.Errorf("encode: posterior declares %d atoms but carries %d positions", d.Atoms, n)
	}
	if len(d.CoordVariances) != 3*n {
		return nil, nil, nil, fmt.Errorf("encode: posterior has %d coordinate variances, want %d", len(d.CoordVariances), 3*n)
	}
	for i, v := range d.CoordVariances {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, nil, nil, fmt.Errorf("encode: posterior coordinate variance %d is %g", i, v)
		}
	}
	pos = make([]geom.Vec3, n)
	for i, p := range d.Positions {
		pos[i] = p
	}
	coordVar = append([]float64(nil), d.CoordVariances...)
	if d.Cov != nil {
		if len(d.Cov) != 3*n {
			return nil, nil, nil, fmt.Errorf("encode: posterior covariance has %d rows, want %d", len(d.Cov), 3*n)
		}
		cov = mat.New(3*n, 3*n)
		for i, row := range d.Cov {
			if len(row) != 3*n {
				return nil, nil, nil, fmt.Errorf("encode: posterior covariance row %d has %d entries, want %d", i, len(row), 3*n)
			}
			copy(cov.Row(i), row)
		}
	}
	return pos, coordVar, cov, nil
}

// NewSolutionDoc assembles the wire form from solver outputs. diag may be
// nil; a snapshot with no containment events is omitted from the document
// so healthy results stay unchanged on the wire.
func NewSolutionDoc(name string, pos []geom.Vec3, variances []float64, cycles int, converged bool, rmsChange, residual float64, diag *filter.DiagSnapshot) SolutionDoc {
	doc := SolutionDoc{
		Name:      name,
		Converged: converged,
		Cycles:    cycles,
		RMSChange: rmsChange,
		Residual:  residual,
		Positions: make([][3]float64, len(pos)),
		Variances: append([]float64(nil), variances...),
	}
	if diag != nil && (diag.RidgeRetries > 0 || diag.Rollbacks > 0 || len(diag.Quarantined) > 0) {
		doc.Diagnostics = diag
	}
	for i, p := range pos {
		doc.Positions[i] = p
	}
	return doc
}
