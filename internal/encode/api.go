package encode

// This file holds the v1 API wire types shared by the server, the typed Go
// client, and the command-line tools: job lifecycle states and status
// snapshots, the paginated job listing, and the structured error envelope
// every endpoint returns on failure. They live here, next to the problem
// and solution formats, so the whole wire surface of phmsed is defined in
// one package with no dependency on the serving internals.

// JobState is the lifecycle state of a submitted solve.
// A job moves queued → running → one of the three terminal states; a
// queued job can also move directly to cancelled.
type JobState string

// The job lifecycle states.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is one a job can never leave.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Valid reports whether s is one of the five lifecycle states.
func (s JobState) Valid() bool {
	switch s {
	case JobQueued, JobRunning, JobDone, JobFailed, JobCancelled:
		return true
	}
	return false
}

// JobStatus is a point-in-time snapshot of a job, as reported by
// GET /v1/jobs/{id} and in the listing at GET /v1/jobs.
type JobStatus struct {
	ID    string   `json:"id"`
	State JobState `json:"state"`
	// Problem identification.
	Problem     string `json:"problem"`
	Atoms       int    `json:"atoms"`
	Constraints int    `json:"constraints"`
	// Cycle-level progress (meaningful once running).
	Cycle     int     `json:"cycle"`
	RMSChange float64 `json:"rms_change"`
	// PlanCacheHit reports whether construction reused cached planning
	// artifacts for this topology.
	PlanCacheHit bool   `json:"plan_cache_hit"`
	Error        string `json:"error,omitempty"`
	// ErrorCode classifies a failed job's error machine-readably:
	// "diverged", "indefinite", "non_finite", "canceled", "timeout",
	// "internal_error" (a recovered worker panic), or "solver_error".
	ErrorCode string `json:"error_code,omitempty"`
	// Retries counts the automatic re-solve attempts the server made after
	// transient failures (0 when the first attempt decided the job).
	Retries int `json:"retries,omitempty"`
	// FlatFallback reports that the hierarchical solve failed numerically
	// and the server fell back to one flat-organization attempt.
	FlatFallback bool `json:"flat_fallback,omitempty"`
	// WarmStartFrom names the job whose retained posterior seeded this
	// solve, when the submission carried a warm_start reference.
	WarmStartFrom string `json:"warm_start_from,omitempty"`
	// Shard is the instance id of the daemon that owns the job — the same
	// identity carried by the X-Phmsed-Instance response header, promoted
	// into the body so listings and stored statuses keep their attribution
	// without header plumbing. Stable v1 API; empty only when the daemon
	// runs without -instance.
	Shard string `json:"shard,omitempty"`
	// PosteriorKept reports whether the job's posterior was admitted to the
	// server's posterior store on completion (keep_posterior submissions
	// only). A kept posterior may still be evicted later under memory
	// pressure, in which case GET /v1/jobs/{id}/posterior returns no_result.
	PosteriorKept bool   `json:"posterior_kept,omitempty"`
	SubmittedAt   string `json:"submitted_at,omitempty"`
	StartedAt     string `json:"started_at,omitempty"`
	FinishedAt    string `json:"finished_at,omitempty"`
}

// JobList is the response of GET /v1/jobs: submission-ordered status
// summaries. Records are pruned once the server's retention bound
// (Config.MaxRecords) is exceeded, oldest terminal jobs first, so the
// listing is a window over recent work, not a permanent ledger.
type JobList struct {
	Jobs []JobStatus `json:"jobs"`
	// NextAfter, when non-empty, is the cursor for the next page: pass it
	// as ?after= to continue the listing where this page stopped.
	NextAfter string `json:"next_after,omitempty"`
}

// The machine-readable error codes of the v1 API error envelope.
const (
	// CodeQueueFull: the bounded job queue rejected the submission (HTTP
	// 429, with Retry-After).
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down and not accepting work
	// (HTTP 503).
	CodeDraining = "draining"
	// CodeNotFound: the referenced job id is unknown (HTTP 404).
	CodeNotFound = "not_found"
	// CodeNoResult: the job exists but has no result or retained posterior
	// to serve — not finished, failed, cancelled, not kept, or evicted
	// (HTTP 409).
	CodeNoResult = "no_result"
	// CodeBadRequest: the request body or query parameters failed
	// validation (HTTP 400).
	CodeBadRequest = "bad_request"
	// CodeTopologyMismatch: a warm_start reference names a posterior whose
	// molecule does not match the submitted problem (HTTP 409).
	CodeTopologyMismatch = "topology_mismatch"
	// CodeNoShard: the routing tier has no healthy shard able to serve the
	// request (HTTP 503). Emitted by phmse-router, never by phmsed itself.
	CodeNoShard = "no_shard"
	// CodeInternal: an unexpected server-side failure (HTTP 5xx).
	CodeInternal = "internal"
	// CodeInternalError: a worker panic was recovered while solving the
	// job; the job fails but the daemon keeps serving. Reported in
	// JobStatus.ErrorCode, not as an HTTP envelope code.
	CodeInternalError = "internal_error"
	// CodeUnauthorized: the request lacks the bearer token an admin or
	// transfer endpoint requires (HTTP 401).
	CodeUnauthorized = "unauthorized"
	// CodeConflict: the requested admin change is already in effect — e.g.
	// adding a shard that is an active member (HTTP 409).
	CodeConflict = "conflict"
	// CodePosteriorBudget: a posterior import was refused because it does
	// not fit the destination store's byte budget (HTTP 507).
	CodePosteriorBudget = "posterior_budget"
)

// HealthStatus is the body of GET /healthz and GET /readyz. The liveness
// probe reports only Status (plus the instance identity); the readiness
// probe adds queue occupancy so a balancer or router can see saturation
// coming.
type HealthStatus struct {
	// Status is "ok", "draining", or (readyz only) "saturated".
	Status string `json:"status"`
	// InstanceID identifies the daemon behind the response when it was
	// started with an instance identity (-instance) — the routing tier
	// learns its shard table from this field.
	InstanceID string `json:"instance_id,omitempty"`
	// QueueDepth and QueueCapacity report job-queue occupancy (readyz
	// only; omitted when zero).
	QueueDepth    int `json:"queue_depth,omitempty"`
	QueueCapacity int `json:"queue_capacity,omitempty"`
	// Running counts jobs currently executing (readyz only) — together
	// with QueueDepth it is the in-flight signal a drain waits on.
	Running int `json:"running,omitempty"`
}

// ErrorBody is the payload of the v1 error envelope.
type ErrorBody struct {
	// Code is one of the Code* constants.
	Code    string `json:"code"`
	Message string `json:"message"`
	// State carries the job's lifecycle state where it explains the error
	// (e.g. no_result for a cancelled job).
	State JobState `json:"state,omitempty"`
}

// ErrorEnvelope is the JSON body every v1 endpoint returns on failure:
//
//	{"error": {"code": "queue_full", "message": "...", "state": "..."}}
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}
