package encode

import (
	"bytes"
	"strings"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/molecule"
)

func sampleProblem() *molecule.Problem {
	p := &molecule.Problem{Name: "sample"}
	for i := 0; i < 5; i++ {
		p.Atoms = append(p.Atoms, molecule.Atom{
			Name: "A", Residue: i, Pos: geom.Vec3{float64(i), 1, 2},
		})
	}
	p.Constraints = []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 1.5, Sigma: 0.1},
		constraint.Angle{I: 0, J: 1, K: 2, Target: 1.9, Sigma: 0.05},
		constraint.Torsion{I: 0, J: 1, K: 2, L: 3, Target: -0.5, Sigma: 0.2},
		constraint.Position{I: 4, Target: geom.Vec3{4, 1, 2}, Sigma: 0.3},
		constraint.DistanceBound{I: 1, J: 4, Lower: 2, Upper: 9, Sigma: 0.5},
	}
	p.Tree = &molecule.Group{
		Name: "root",
		Children: []*molecule.Group{
			{Name: "a", AtomIDs: []int{0, 1, 2}},
			{Name: "b", AtomIDs: []int{3, 4}},
		},
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	p := sampleProblem()
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || len(q.Atoms) != len(p.Atoms) || len(q.Constraints) != len(p.Constraints) {
		t.Fatalf("round trip lost data: %v", q)
	}
	for i := range p.Atoms {
		if q.Atoms[i].Pos != p.Atoms[i].Pos || q.Atoms[i].Residue != p.Atoms[i].Residue {
			t.Fatalf("atom %d differs", i)
		}
	}
	for i := range p.Constraints {
		if q.Constraints[i] != p.Constraints[i] {
			t.Fatalf("constraint %d: %#v vs %#v", i, q.Constraints[i], p.Constraints[i])
		}
	}
	if q.Tree == nil || len(q.Tree.Children) != 2 || q.Tree.Children[1].AtomIDs[1] != 4 {
		t.Fatal("tree lost")
	}
}

func TestRoundTripNoTree(t *testing.T) {
	p := sampleProblem()
	p.Tree = nil
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadProblem(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Tree != nil {
		t.Fatal("tree materialized from nothing")
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"syntax":       `{`,
		"unknown type": `{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"warp","i":0,"sigma":1}]}`,
		"bad atom":     `{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"distance","i":0,"j":5,"sigma":1}]}`,
		"bad sigma":    `{"atoms":[{"pos":[0,0,0]},{"pos":[1,0,0]}],"constraints":[{"type":"distance","i":0,"j":1,"sigma":0}]}`,
		"no point":     `{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"position","i":0,"sigma":1}]}`,
	}
	for name, in := range cases {
		if _, err := ReadProblem(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestGeneratedProblemsRoundTrip(t *testing.T) {
	for _, p := range []*molecule.Problem{
		molecule.Helix(2),
		molecule.Ribo30SWith(molecule.Ribo30SConfig{Helices: 3, Coils: 2, Proteins: 2, Seed: 1}),
	} {
		var buf bytes.Buffer
		if err := WriteProblem(&buf, p); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		q, err := ReadProblem(&buf)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(q.Atoms) != len(p.Atoms) || len(q.Constraints) != len(p.Constraints) {
			t.Fatalf("%s: sizes differ", p.Name)
		}
		if q.Tree.Count() != p.Tree.Count() {
			t.Fatalf("%s: tree count differs", p.Name)
		}
	}
}
