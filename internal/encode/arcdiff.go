package encode

// Ring arc-diff helpers for the elastic sharding tier. The router places
// routing keys (topology hashes) on a consistent-hash ring of virtual
// nodes; when cluster membership changes, the keys that move are exactly
// the ones falling on arcs whose owner differs between the old and the new
// ring. These helpers compute that changed-arc set once per membership
// change, so the migration pass can test each retained posterior with a
// binary search instead of two full ring lookups — and so the remap logic
// is a small, independently testable piece of the wire layer rather than
// something buried in the router's forwarding paths.

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// KeyHash positions a routing key or virtual-node label on the ring:
// the first 8 bytes of its sha256, big endian. sha256 rather than a
// cheaper hash because routing keys are content hashes that must spread
// uniformly, and ring construction is off the hot path. The router and
// the arc-diff helpers must agree on this function exactly — a key
// hashed differently would diff into the wrong arc.
func KeyHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// RingPoint is one virtual node in wire form: its position on the ring
// and the stable name of the shard that owns it.
type RingPoint struct {
	Hash  uint64
	Owner string
}

// ArcSet is the set of ring arcs whose owner changed between two ring
// generations. An arc (bounds[i-1], bounds[i]] is keyed by its inclusive
// upper boundary; the arc keyed by bounds[0] wraps around the top of the
// hash space. Build with ChangedArcs; query with Contains.
type ArcSet struct {
	bounds  []uint64 // sorted, unique: every point hash of either ring
	changed []bool   // changed[i]: the arc ending at bounds[i] remapped
	n       int      // number of changed arcs
}

// ownerAt returns the owner of hash h under a sorted point list: the
// first point at or clockwise of h, wrapping at the top. "" on an empty
// ring, which makes every arc of a from-empty or to-empty diff count as
// changed — the correct answer for bootstrap and last-shard-out.
func ownerAt(points []RingPoint, h uint64) string {
	if len(points) == 0 {
		return ""
	}
	i := sort.Search(len(points), func(i int) bool { return points[i].Hash >= h })
	if i == len(points) {
		i = 0
	}
	return points[i].Owner
}

// ChangedArcs diffs two ring generations. Both point lists are copied and
// sorted, so callers may pass them in any order. The elementary arcs are
// delimited by the union of both rings' points: no point of either ring
// lies strictly inside one, so each arc has a single owner under each
// ring and the diff is exact.
func ChangedArcs(old, new []RingPoint) ArcSet {
	oldPts := sortedPoints(old)
	newPts := sortedPoints(new)
	seen := make(map[uint64]bool, len(oldPts)+len(newPts))
	bounds := make([]uint64, 0, len(oldPts)+len(newPts))
	for _, p := range oldPts {
		if !seen[p.Hash] {
			seen[p.Hash] = true
			bounds = append(bounds, p.Hash)
		}
	}
	for _, p := range newPts {
		if !seen[p.Hash] {
			seen[p.Hash] = true
			bounds = append(bounds, p.Hash)
		}
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	a := ArcSet{bounds: bounds, changed: make([]bool, len(bounds))}
	for i, b := range bounds {
		// Every h in the arc ending at b resolves to the same first-point-
		// at-or-after under either ring (no points lie inside the arc), so
		// the owner at the boundary is the owner of the whole arc.
		if ownerAt(oldPts, b) != ownerAt(newPts, b) {
			a.changed[i] = true
			a.n++
		}
	}
	return a
}

func sortedPoints(pts []RingPoint) []RingPoint {
	out := append([]RingPoint(nil), pts...)
	sort.Slice(out, func(i, j int) bool { return out[i].Hash < out[j].Hash })
	return out
}

// Contains reports whether the key hashing to h falls on a changed arc —
// i.e. whether its owner differs between the two diffed rings.
func (a ArcSet) Contains(h uint64) bool {
	if len(a.bounds) == 0 {
		return false
	}
	i := sort.Search(len(a.bounds), func(i int) bool { return a.bounds[i] >= h })
	if i == len(a.bounds) {
		i = 0 // wrap: the arc keyed by the lowest boundary
	}
	return a.changed[i]
}

// Any reports whether the diff found any changed arc at all — false means
// the two rings route every key identically and a migration pass can be
// skipped outright.
func (a ArcSet) Any() bool { return a.n > 0 }

// Len returns the number of changed elementary arcs, for logging.
func (a ArcSet) Len() int { return a.n }
