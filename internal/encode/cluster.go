package encode

// Wire types for the replicated control plane: the epoch-stamped
// membership document router replicas gossip between each other, and the
// read-only cluster view served to operators at GET /cluster/v1/state.
//
// The document is a last-writer-wins register versioned by a monotonic
// Epoch: every admin mutation at any replica bumps the epoch by one under
// that replica's admin mutex (a compare-and-swap against its own current
// doc), stamps the mutating replica as Origin, and recomputes the content
// Hash. Replicas exchange digests periodically; on mismatch the
// higher-epoch document wins outright, and an equal-epoch conflict is
// broken deterministically by comparing hashes so both sides converge on
// the same winner without coordination.

// ClusterMember is one shard's entry in the membership document. It
// carries exactly the state a peer router needs to rebuild the same ring:
// the placement key (Base), the drain fence, and the flap-suppression
// quarantine count (merged max-wise so a shard that flapped at one
// replica serves its probation everywhere).
type ClusterMember struct {
	// Base is the shard's base URL — the ring placement key.
	Base string `json:"base"`
	// DrainState mirrors the shard's admin drain fence: "" (active),
	// "draining" (fenced, evacuation in progress) or "drained" (fenced
	// and parked). Fenced members stay in the document but out of the
	// ring.
	DrainState string `json:"drain_state,omitempty"`
	// Quarantines counts flap-suppression quarantines the shard has
	// served; replicas merge it max-wise.
	Quarantines int `json:"quarantines,omitempty"`
}

// RepairLease is the epoch-fenced token electing the one replica that
// runs the anti-entropy posterior sweep. A replica acquires it by
// CAS-bumping the document with itself as Holder; peers observing a live
// lease skip their own sweep until it expires.
type RepairLease struct {
	// Holder is the replica id currently responsible for repair sweeps.
	Holder string `json:"holder,omitempty"`
	// Epoch is the document epoch at which the lease was last
	// acquired or renewed — a fencing token: a stale holder's renewal
	// loses to any later mutation.
	Epoch uint64 `json:"epoch,omitempty"`
	// ExpiresUnixMs is the wall-clock expiry; a lease past expiry is
	// free for any replica to take.
	ExpiresUnixMs int64 `json:"expires_unix_ms,omitempty"`
}

// ClusterDoc is the replicated membership document.
type ClusterDoc struct {
	// Epoch is the monotonic version; the higher epoch wins a merge.
	Epoch uint64 `json:"epoch"`
	// Origin is the replica id that produced this version.
	Origin string `json:"origin,omitempty"`
	// Members lists every shard the cluster knows, sorted by Base.
	Members []ClusterMember `json:"members"`
	// Lease is the repair-sweeper election token.
	Lease RepairLease `json:"lease"`
	// Hash is the hex sha-256 over the canonical encoding of the
	// document with Hash itself emptied — the gossip digest.
	Hash string `json:"hash"`
}

// ClusterPeer reports one configured gossip peer's health as seen from
// the serving replica.
type ClusterPeer struct {
	// Base is the peer router's base URL as configured via -peers.
	Base string `json:"base"`
	// LastContactUnixMs is the wall clock of the last successful
	// exchange, 0 if never reached.
	LastContactUnixMs int64 `json:"last_contact_unix_ms,omitempty"`
	// LastError is the most recent exchange failure, cleared on
	// success.
	LastError string `json:"last_error,omitempty"`
	// InSync reports whether the last exchange found the peer already
	// holding our document.
	InSync bool `json:"in_sync"`
}

// ClusterView is the response of GET /cluster/v1/state: the serving
// replica's identity, its current document and its view of its peers.
type ClusterView struct {
	ReplicaID string        `json:"replica_id"`
	Doc       ClusterDoc    `json:"doc"`
	Peers     []ClusterPeer `json:"peers,omitempty"`
}

// GossipRequest is the body of POST /cluster/v1/state — one half of an
// anti-entropy exchange. A digest-only probe (Doc nil) asks "are we in
// sync?"; a full push carries the sender's document for the receiver to
// merge.
type GossipRequest struct {
	// From is the sending replica's id.
	From string `json:"from"`
	// Digest is the sender's current document hash.
	Digest string `json:"digest"`
	// Doc, when set, is the sender's full document (a push).
	Doc *ClusterDoc `json:"doc,omitempty"`
}

// GossipResponse answers an exchange.
type GossipResponse struct {
	// From is the responding replica's id.
	From string `json:"from"`
	// InSync is true when both sides hold the same document; Doc is
	// omitted in that case.
	InSync bool `json:"in_sync"`
	// Adopted reports that the receiver adopted the pushed document.
	Adopted bool `json:"adopted,omitempty"`
	// Doc is the receiver's current document when the sides differ —
	// the pull half of push/pull.
	Doc *ClusterDoc `json:"doc,omitempty"`
}
