package encode

import (
	"bytes"
	"strings"
	"testing"
)

// fuzzSeeds is the seed corpus: valid documents, truncations, type
// confusion, index abuse, and numeric edge cases. Malformed input must
// yield an error, never a panic; accepted input must re-serialize.
var fuzzSeeds = []string{
	`{}`,
	`{"name":"x"}`,
	`{"atoms":[{"pos":[0,0,0]},{"pos":[1,0,0]}],"constraints":[{"type":"distance","i":0,"j":1,"target":1,"sigma":0.1}]}`,
	`{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"position","i":0,"point":[0,0,0],"sigma":0.1}]}`,
	`{"atoms":[{"pos":[0,0,0]},{"pos":[1,0,0]},{"pos":[0,1,0]},{"pos":[0,0,1]}],` +
		`"constraints":[{"type":"torsion","i":0,"j":1,"k":2,"l":3,"target":0.5,"sigma":0.2}],` +
		`"tree":{"children":[{"atoms":[0,1]},{"atoms":[2,3]}]}}`,
	`{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"distance","i":0,"j":99,"sigma":1}]}`,
	`{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"distance","i":-1,"j":0,"sigma":1}]}`,
	`{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"warp","i":0,"sigma":1}]}`,
	`{"atoms":[{"pos":[0,0,0]},{"pos":[1,0,0]}],"constraints":[{"type":"distance","i":0,"j":1,"sigma":0}]}`,
	`{"atoms":[{"pos":[0,0,0]},{"pos":[1,0,0]}],"constraints":[{"type":"distance","i":0,"j":1,"sigma":-5}]}`,
	`{"atoms":[{"pos":[0,0,0]}],"constraints":[{"type":"position","i":0,"sigma":1}]}`,
	`{"atoms":`,
	`{"atoms":[{"pos":[0,0,0]}],"tree":{"children":[{"atoms":[0]},{"atoms":[0]}]}}`,
	`{"atoms":[{"pos":[1e308,-1e308,0]}]}`,
	`[1,2,3]`,
	`null`,
	`"problem"`,
	"\x00\xff\xfe",
}

func FuzzReadProblem(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProblemBytes(data) // must not panic
		if err != nil {
			return
		}
		// Whatever parses must serialize back and re-parse to the same
		// topology.
		var buf bytes.Buffer
		if err := WriteProblem(&buf, p); err != nil {
			t.Fatalf("accepted problem failed to serialize: %v", err)
		}
		q, err := ReadProblemBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("re-serialized problem failed to parse: %v", err)
		}
		if TopologyHash(p) != TopologyHash(q) {
			t.Fatal("round trip changed the topology hash")
		}
	})
}

func FuzzReadSolveRequest(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add([]byte(`{"problem":` + seed + `}`))
		f.Add([]byte(seed))
	}
	f.Add([]byte(`{"problem":{"atoms":[{"pos":[0,0,0]}]},"params":{"mode":"flat","timeout_ms":100}}`))
	f.Add([]byte(`{"problem":{"atoms":[{"pos":[0,0,0]}]},"params":{"mode":"sideways"}}`))
	f.Add([]byte(`{"problem":{"atoms":[{"pos":[0,0,0]}]},"warm_start":{"job":"job-000001"}}`))
	f.Add([]byte(`{"problem":{"atoms":[{"pos":[0,0,0]}]},"warm_start":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, params, warm, err := ReadSolveRequest(bytes.NewReader(data)) // must not panic
		if err != nil {
			return
		}
		if warm != nil && warm.Job == "" {
			t.Fatal("accepted warm_start reference without a job id")
		}
		if p == nil || len(p.Atoms) == 0 {
			t.Fatal("accepted request without a usable problem")
		}
		switch params.Mode {
		case "", "flat", "hier":
		default:
			t.Fatalf("accepted unknown mode %q", params.Mode)
		}
	})
}

// The fuzz corpus doubles as a table test so `go test` (without -fuzz)
// exercises every seed through the full accept/reject classification.
func TestFuzzSeedsNeverPanic(t *testing.T) {
	for i, seed := range fuzzSeeds {
		p, err := ReadProblem(strings.NewReader(seed))
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := WriteProblem(&buf, p); err != nil {
			t.Errorf("seed %d: accepted but not serializable: %v", i, err)
		}
	}
}
