package encode

import (
	"bytes"
	"encoding/json"
	"testing"

	"phmse/internal/molecule"
)

func TestQualifyJobRoundTrip(t *testing.T) {
	cases := []struct {
		instance, id, qualified, back string
	}{
		{"s1", "job-000001", "s1.job-000001", "s1"},
		{"", "job-000001", "job-000001", ""},
		{"west-1", "job-000042", "west-1.job-000042", "west-1"},
	}
	for _, c := range cases {
		if got := QualifyJob(c.instance, c.id); got != c.qualified {
			t.Errorf("QualifyJob(%q, %q) = %q, want %q", c.instance, c.id, got, c.qualified)
		}
		if got := JobInstance(c.qualified); got != c.back {
			t.Errorf("JobInstance(%q) = %q, want %q", c.qualified, got, c.back)
		}
	}
	// Ids that merely look dotted are not instance-qualified.
	for _, id := range []string{"job-000001", ".job-000001", "weird-id", ""} {
		if got := JobInstance(id); got != "" {
			t.Errorf("JobInstance(%q) = %q, want empty", id, got)
		}
	}
}

func TestSolveRouting(t *testing.T) {
	p := molecule.Helix(4)
	var buf bytes.Buffer
	if err := WriteProblem(&buf, p); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(SolveRequest{
		Problem:   buf.Bytes(),
		WarmStart: &WarmStartRef{Job: "s2.job-000007"},
	})
	if err != nil {
		t.Fatal(err)
	}
	key, warm, err := SolveRouting(body)
	if err != nil {
		t.Fatal(err)
	}
	if key != TopologyHash(p) {
		t.Fatalf("routing key %q is not the topology hash %q", key, TopologyHash(p))
	}
	if warm == nil || warm.Job != "s2.job-000007" {
		t.Fatalf("warm ref = %+v, want s2.job-000007", warm)
	}

	if _, _, err := SolveRouting([]byte(`{"params":{}}`)); err == nil {
		t.Fatal("problem-less request produced a routing key")
	}
}
