package encode

import (
	"fmt"
	"sort"
	"testing"
)

// testRing builds the point list a router ring over the named shards
// would produce: vnodes points per shard labeled "name#i", exactly as
// internal/router's buildRing does.
func testRing(vnodes int, names ...string) []RingPoint {
	var pts []RingPoint
	for _, name := range names {
		for v := 0; v < vnodes; v++ {
			pts = append(pts, RingPoint{Hash: KeyHash(fmt.Sprintf("%s#%d", name, v)), Owner: name})
		}
	}
	return pts
}

func TestKeyHashDeterministic(t *testing.T) {
	if KeyHash("a") != KeyHash("a") {
		t.Fatal("KeyHash not deterministic")
	}
	if KeyHash("a") == KeyHash("b") {
		t.Fatal("KeyHash collides on trivial inputs")
	}
	// Pinned value: KeyHash is a wire-level contract between the router's
	// placement and the migration diff; changing it silently would strand
	// every persisted posterior on the wrong shard after an upgrade.
	if got := KeyHash("job-000001"); got != 0x9e2991daf3ff471c {
		t.Fatalf("KeyHash(\"job-000001\") = %#x; the hash function changed", got)
	}
}

// TestChangedArcsMatchesLookup cross-checks Contains against the ground
// truth: brute-force owner lookups under both rings for a spread of keys.
// A key's owner changed iff its hash falls on a changed arc.
func TestChangedArcsMatchesLookup(t *testing.T) {
	cases := []struct {
		name     string
		old, new []string
	}{
		{"shrink_3_to_2", []string{"s1", "s2", "s3"}, []string{"s1", "s2"}},
		{"grow_2_to_3", []string{"s1", "s2"}, []string{"s1", "s2", "s3"}},
		{"replace_one", []string{"s1", "s2", "s3"}, []string{"s1", "s2", "s4"}},
		{"identical", []string{"s1", "s2"}, []string{"s1", "s2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			oldPts := testRing(64, tc.old...)
			newPts := testRing(64, tc.new...)
			arcs := ChangedArcs(oldPts, newPts)
			sortedOld := sortedPoints(oldPts)
			sortedNew := sortedPoints(newPts)
			var moved int
			for i := 0; i < 4096; i++ {
				h := KeyHash(fmt.Sprintf("key-%d", i))
				want := ownerAt(sortedOld, h) != ownerAt(sortedNew, h)
				if got := arcs.Contains(h); got != want {
					t.Fatalf("key-%d (hash %#x): Contains=%v, owner-changed=%v", i, h, got, want)
				}
				if want {
					moved++
				}
			}
			if tc.name == "identical" {
				if arcs.Any() {
					t.Fatalf("identical rings produced %d changed arcs", arcs.Len())
				}
			} else if !arcs.Any() || moved == 0 {
				t.Fatalf("membership change produced no movement (arcs=%d moved=%d)", arcs.Len(), moved)
			}
			// Movement should stay bounded: a consistent-hash membership
			// change of one shard in three moves roughly a third of keys,
			// never the bulk of them.
			if tc.name != "identical" && tc.name != "replace_one" && moved > 4096/2 {
				t.Fatalf("one-shard change moved %d/4096 keys — placement is not consistent", moved)
			}
		})
	}
}

func TestChangedArcsEmptyRings(t *testing.T) {
	pts := testRing(8, "s1")
	if arcs := ChangedArcs(nil, nil); arcs.Any() {
		t.Fatal("empty->empty diff reported changed arcs")
	}
	bootstrap := ChangedArcs(nil, pts)
	lastOut := ChangedArcs(pts, nil)
	for i := 0; i < 256; i++ {
		h := KeyHash(fmt.Sprintf("k%d", i))
		if !bootstrap.Contains(h) {
			t.Fatalf("empty->ring: key k%d not marked changed", i)
		}
		if !lastOut.Contains(h) {
			t.Fatalf("ring->empty: key k%d not marked changed", i)
		}
	}
	// A key hashing exactly onto a boundary belongs to the arc it ends.
	b := sortedPoints(pts)[0].Hash
	if !bootstrap.Contains(b) {
		t.Fatal("boundary hash not contained in its own arc")
	}
}

func TestChangedArcsUnsortedInput(t *testing.T) {
	old := testRing(16, "s1", "s2")
	new := testRing(16, "s1", "s2", "s3")
	// Reverse-sorted input must give the same diff: ChangedArcs sorts
	// its own copies.
	rev := append([]RingPoint(nil), old...)
	sort.Slice(rev, func(i, j int) bool { return rev[i].Hash > rev[j].Hash })
	a := ChangedArcs(old, new)
	b := ChangedArcs(rev, new)
	for i := 0; i < 512; i++ {
		h := KeyHash(fmt.Sprintf("u%d", i))
		if a.Contains(h) != b.Contains(h) {
			t.Fatalf("diff depends on input order at key u%d", i)
		}
	}
}
