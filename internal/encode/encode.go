// Package encode serializes structure-estimation problems to and from a
// JSON interchange format, used by the command-line tools to pass problems
// between the generator (helixgen) and the solver (msesolve).
package encode

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/molecule"
)

// fileProblem is the on-disk representation.
type fileProblem struct {
	Name        string           `json:"name"`
	Atoms       []fileAtom       `json:"atoms"`
	Constraints []fileConstraint `json:"constraints"`
	Tree        *fileGroup       `json:"tree,omitempty"`
}

type fileAtom struct {
	Name    string     `json:"name,omitempty"`
	Residue int        `json:"residue,omitempty"`
	Pos     [3]float64 `json:"pos"`
}

type fileGroup struct {
	Name     string       `json:"name,omitempty"`
	Atoms    []int        `json:"atoms,omitempty"`
	Children []*fileGroup `json:"children,omitempty"`
}

// fileConstraint is the tagged union over constraint types.
type fileConstraint struct {
	Type   string      `json:"type"`
	I      int         `json:"i"`
	J      int         `json:"j,omitempty"`
	K      int         `json:"k,omitempty"`
	L      int         `json:"l,omitempty"`
	Target float64     `json:"target,omitempty"`
	Point  *[3]float64 `json:"point,omitempty"`
	Lower  float64     `json:"lower,omitempty"`
	Upper  float64     `json:"upper,omitempty"`
	Sigma  float64     `json:"sigma"`
}

// WriteProblem serializes the problem as indented JSON.
func WriteProblem(w io.Writer, p *molecule.Problem) error {
	fp := fileProblem{Name: p.Name}
	for _, a := range p.Atoms {
		fp.Atoms = append(fp.Atoms, fileAtom{Name: a.Name, Residue: a.Residue, Pos: a.Pos})
	}
	for _, c := range p.Constraints {
		fc, err := toFile(c)
		if err != nil {
			return err
		}
		fp.Constraints = append(fp.Constraints, fc)
	}
	fp.Tree = toFileGroup(p.Tree)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fp)
}

// ReadProblem parses a problem from JSON.
func ReadProblem(r io.Reader) (*molecule.Problem, error) {
	var fp fileProblem
	dec := json.NewDecoder(r)
	if err := dec.Decode(&fp); err != nil {
		return nil, fmt.Errorf("encode: %w", err)
	}
	p := &molecule.Problem{Name: fp.Name}
	for _, a := range fp.Atoms {
		p.Atoms = append(p.Atoms, molecule.Atom{Name: a.Name, Residue: a.Residue, Pos: a.Pos})
	}
	for i, fc := range fp.Constraints {
		c, err := fromFile(fc, len(fp.Atoms))
		if err != nil {
			return nil, fmt.Errorf("encode: constraint %d: %w", i, err)
		}
		p.Constraints = append(p.Constraints, c)
	}
	p.Tree = fromFileGroup(fp.Tree)
	return p, nil
}

// ReadProblemBytes parses a problem from a JSON document in memory.
func ReadProblemBytes(data []byte) (*molecule.Problem, error) {
	return ReadProblem(bytes.NewReader(data))
}

func toFile(c constraint.Constraint) (fileConstraint, error) {
	switch v := c.(type) {
	case constraint.Distance:
		return fileConstraint{Type: "distance", I: v.I, J: v.J, Target: v.Target, Sigma: v.Sigma}, nil
	case constraint.Angle:
		return fileConstraint{Type: "angle", I: v.I, J: v.J, K: v.K, Target: v.Target, Sigma: v.Sigma}, nil
	case constraint.Torsion:
		return fileConstraint{Type: "torsion", I: v.I, J: v.J, K: v.K, L: v.L, Target: v.Target, Sigma: v.Sigma}, nil
	case constraint.Position:
		pt := [3]float64(v.Target)
		return fileConstraint{Type: "position", I: v.I, Point: &pt, Sigma: v.Sigma}, nil
	case constraint.DistanceBound:
		return fileConstraint{Type: "bound", I: v.I, J: v.J, Lower: v.Lower, Upper: v.Upper, Sigma: v.Sigma}, nil
	default:
		return fileConstraint{}, fmt.Errorf("encode: unsupported constraint type %T", c)
	}
}

func fromFile(fc fileConstraint, nAtoms int) (constraint.Constraint, error) {
	check := func(idx ...int) error {
		for _, a := range idx {
			if a < 0 || a >= nAtoms {
				return fmt.Errorf("atom %d out of range [0,%d)", a, nAtoms)
			}
		}
		return nil
	}
	if fc.Sigma <= 0 || math.IsNaN(fc.Sigma) {
		return nil, fmt.Errorf("sigma %g must be positive", fc.Sigma)
	}
	switch fc.Type {
	case "distance":
		if err := check(fc.I, fc.J); err != nil {
			return nil, err
		}
		return constraint.Distance{I: fc.I, J: fc.J, Target: fc.Target, Sigma: fc.Sigma}, nil
	case "angle":
		if err := check(fc.I, fc.J, fc.K); err != nil {
			return nil, err
		}
		return constraint.Angle{I: fc.I, J: fc.J, K: fc.K, Target: fc.Target, Sigma: fc.Sigma}, nil
	case "torsion":
		if err := check(fc.I, fc.J, fc.K, fc.L); err != nil {
			return nil, err
		}
		return constraint.Torsion{I: fc.I, J: fc.J, K: fc.K, L: fc.L, Target: fc.Target, Sigma: fc.Sigma}, nil
	case "position":
		if err := check(fc.I); err != nil {
			return nil, err
		}
		if fc.Point == nil {
			return nil, fmt.Errorf("position constraint needs a point")
		}
		return constraint.Position{I: fc.I, Target: geom.Vec3(*fc.Point), Sigma: fc.Sigma}, nil
	case "bound":
		if err := check(fc.I, fc.J); err != nil {
			return nil, err
		}
		return constraint.DistanceBound{I: fc.I, J: fc.J, Lower: fc.Lower, Upper: fc.Upper, Sigma: fc.Sigma}, nil
	default:
		return nil, fmt.Errorf("unknown constraint type %q", fc.Type)
	}
}

func toFileGroup(g *molecule.Group) *fileGroup {
	if g == nil {
		return nil
	}
	fg := &fileGroup{Name: g.Name, Atoms: g.AtomIDs}
	for _, c := range g.Children {
		fg.Children = append(fg.Children, toFileGroup(c))
	}
	return fg
}

func fromFileGroup(fg *fileGroup) *molecule.Group {
	if fg == nil {
		return nil
	}
	g := &molecule.Group{Name: fg.Name, AtomIDs: fg.Atoms}
	for _, c := range fg.Children {
		g.Children = append(g.Children, fromFileGroup(c))
	}
	return g
}
