// Package debugserve starts an optional net/http/pprof debug listener for
// the daemons. CPU and heap profiles of a live phmsed or phmse-router are
// then one curl away:
//
//	curl -s localhost:6060/debug/pprof/profile?seconds=10 > cpu.pb.gz
//	curl -s localhost:6060/debug/pprof/heap > heap.pb.gz
//
// The endpoints are served on a dedicated address, never the API listener,
// so enabling them cannot expose profiling to API clients.
package debugserve

import (
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
)

// Start serves the pprof debug endpoints at addr on a background
// goroutine. An empty addr disables them (the default). The listener uses
// http.DefaultServeMux, which the net/http/pprof import populates.
func Start(addr string) {
	if addr == "" {
		return
	}
	go func() {
		log.Printf("pprof: serving debug endpoints on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			log.Printf("pprof: %v", err)
		}
	}()
}
