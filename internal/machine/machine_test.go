package machine

import (
	"testing"
	"testing/quick"

	"phmse/internal/trace"
)

func TestMachineConstruction(t *testing.T) {
	for _, m := range []*Machine{DASH(), Challenge()} {
		if m.MaxProcs < 2 || m.ClusterSize < 1 {
			t.Fatalf("%s: bad topology", m.Name)
		}
		for c := trace.Class(0); c < trace.NumClasses; c++ {
			if m.ClassRate[c] <= 0 {
				t.Fatalf("%s: class %v rate %g", m.Name, c, m.ClassRate[c])
			}
			if m.SerialFrac[c] < 0 || m.SerialFrac[c] >= 1 {
				t.Fatalf("%s: class %v serial fraction %g", m.Name, c, m.SerialFrac[c])
			}
		}
	}
	if DASH().ClusterSize >= DASH().MaxProcs {
		t.Fatal("DASH must be clustered")
	}
	if Challenge().ClusterSize != Challenge().MaxProcs {
		t.Fatal("Challenge must be centralized")
	}
}

func TestWallSingleProcessorIsBaseTime(t *testing.T) {
	m := DASH()
	op := Op{Class: trace.MatMat, Flops: 1e6, Workset: 1000}
	want := 1e6 / m.ClassRate[trace.MatMat]
	if got := m.Wall(op, 1); got != want {
		t.Fatalf("Wall(1) = %g, want %g", got, want)
	}
	// Invalid processor counts clamp to 1.
	if m.Wall(op, 0) != want || m.Wall(op, -3) != want {
		t.Fatal("p < 1 not clamped")
	}
}

func TestWallLargeOpsScaleDown(t *testing.T) {
	for _, m := range []*Machine{DASH(), Challenge()} {
		op := Op{Class: trace.MatMat, Flops: 1e9, Workset: 8192}
		prev := m.Wall(op, 1)
		for p := 2; p <= m.MaxProcs; p *= 2 {
			got := m.Wall(op, p)
			if got >= prev {
				t.Fatalf("%s: wall grew from %g to %g at p=%d", m.Name, prev, got, p)
			}
			prev = got
		}
		// Speedup must be sub-linear (overheads) but substantial.
		s := m.Wall(op, 1) / m.Wall(op, m.MaxProcs)
		if s > float64(m.MaxProcs) || s < float64(m.MaxProcs)/2 {
			t.Fatalf("%s: m-m speedup %g at %d procs", m.Name, s, m.MaxProcs)
		}
	}
}

func TestWallTinyOpsDominatedBySync(t *testing.T) {
	m := DASH()
	op := Op{Class: trace.VecOp, Flops: 100, Workset: 800}
	if m.Wall(op, 16) <= m.Wall(op, 1) {
		t.Fatal("tiny op should get slower with more processors (barrier cost)")
	}
}

func TestCholeskyScalesPoorly(t *testing.T) {
	// The per-batch innovation matrices are small; Amdahl + sync must keep
	// the Cholesky speedup far from ideal, as the paper observes.
	m := DASH()
	op := Op{Class: trace.Chol, Flops: 16 * 16 * 16 / 3, Workset: 2048}
	s := m.Wall(op, 1) / m.Wall(op, 32)
	if s > 10 {
		t.Fatalf("small Cholesky speedup %g, want well below 10", s)
	}
}

func TestRemoteMultClusterBoundaries(t *testing.T) {
	m := DASH()
	// Within one cluster there are no remote misses.
	if got := m.remoteMult(trace.DenseSparse, 4); got != 1 {
		t.Fatalf("remoteMult(4) = %g", got)
	}
	// Crossing into a second cluster introduces them.
	if got := m.remoteMult(trace.DenseSparse, 5); got <= 1 {
		t.Fatalf("remoteMult(5) = %g", got)
	}
	// And the penalty grows with cluster count.
	if m.remoteMult(trace.DenseSparse, 32) <= m.remoteMult(trace.DenseSparse, 8) {
		t.Fatal("remote penalty not monotone in clusters")
	}
}

func TestCacheMult(t *testing.T) {
	m := DASH()
	small := Op{Class: trace.MatVec, Flops: 1, Workset: 1000}
	if m.cacheMult(small, 1) != 1 {
		t.Fatal("cache-resident op penalized")
	}
	big := Op{Class: trace.MatVec, Flops: 1, Workset: 64 << 20}
	if m.cacheMult(big, 1) <= 1 {
		t.Fatal("cache-overflowing op not penalized")
	}
	// Splitting across processors shrinks the per-processor share.
	if m.cacheMult(big, 32) >= m.cacheMult(big, 1) {
		t.Fatal("cache penalty should shrink with p")
	}
}

func TestContentionOnlyOnCentralized(t *testing.T) {
	if DASH().contentionMult(trace.VecOp, 16) != 1 {
		t.Fatal("clustered machine should have no bus contention term")
	}
	c := Challenge()
	if c.contentionMult(trace.VecOp, 16) <= 1 {
		t.Fatal("centralized machine should charge bus contention")
	}
	if c.contentionMult(trace.VecOp, 1) != 1 {
		t.Fatal("single processor cannot contend")
	}
}

// Property: wall time is always positive and finite.
func TestWallPositiveProperty(t *testing.T) {
	machines := []*Machine{DASH(), Challenge()}
	f := func(flops uint32, ws uint32, p uint8, cls uint8) bool {
		op := Op{
			Class:   trace.Class(int(cls) % int(trace.NumClasses)),
			Flops:   float64(flops%1e9) + 1,
			Workset: float64(ws),
		}
		for _, m := range machines {
			w := m.Wall(op, int(p%64))
			if !(w > 0) || w > 1e12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The Challenge is calibrated as the faster machine throughout.
func TestChallengeFasterThanDASH(t *testing.T) {
	d, c := DASH(), Challenge()
	for cls := trace.Class(0); cls < trace.NumClasses; cls++ {
		if c.ClassRate[cls] <= d.ClassRate[cls] {
			t.Fatalf("class %v: Challenge rate %g not above DASH %g", cls, c.ClassRate[cls], d.ClassRate[cls])
		}
	}
}
