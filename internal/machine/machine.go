// Package machine models the two 1996 shared-memory multiprocessors of the
// paper's evaluation — the Stanford DASH (32 × 33 MHz MIPS R3000, 8
// clusters of 4, distributed memory with directory cache coherence) and the
// SGI Challenge (16 × 100 MHz MIPS R4400, centralized memory on a shared
// bus) — as deterministic cost models consumed by the virtual-time engine
// in package vm.
//
// The model charges every array operation a wall-clock time
//
//	wall(op, p) = base·cache(ws, p)·(f + (1−f)·remote(p)/p) + sync·⌈log₂ p⌉
//
// where base = flops/rate(class), f is an Amdahl serial fraction (panel
// factorization in Cholesky, reduction steps in vector operations),
// remote(p) ≥ 1 charges the growing fraction of remote cache misses as
// processors spread over clusters (significant for the irregularly
// accessing dense-sparse products on DASH), cache(ws, p) ≥ 1 charges
// capacity misses when an operation's per-processor working set exceeds the
// second-level cache (this term shrinks with p, reproducing the superlinear
// per-class scaling the paper observes for matrix-vector products on DASH),
// and sync is the fork/barrier cost of one parallel region.
//
// Busy time attributed to an operation class is wall·p: every processor of
// the team participates in the region until its closing barrier. The
// per-class columns of Tables 3–6 are total busy time divided by the
// machine's processor count.
//
// Class rates are calibrated so the single-processor column of Table 3
// (Helix on DASH) approximately reproduces the paper's time distribution;
// everything else follows from the schedule. See EXPERIMENTS.md.
package machine

import (
	"math"

	"phmse/internal/trace"
)

// Machine is a calibrated machine model.
type Machine struct {
	Name        string
	MaxProcs    int
	ClusterSize int // processors per bus cluster (MaxProcs: centralized)

	// ClassRate is the effective flop rate (flops/second) per operation
	// class with cache-resident working sets on one processor.
	ClassRate [trace.NumClasses]float64
	// SerialFrac is the Amdahl serial fraction per class.
	SerialFrac [trace.NumClasses]float64
	// RemotePenalty scales the extra cost of remote misses: the multiplier
	// is 1 + RemotePenalty·(usedClusters−1)/usedClusters.
	RemotePenalty [trace.NumClasses]float64
	// CacheBytes is the per-processor second-level cache size.
	CacheBytes float64
	// CachePenalty scales the capacity-miss slowdown when the per-processor
	// working set overflows the cache.
	CachePenalty [trace.NumClasses]float64
	// SyncSeconds is the cost of one parallel-region fork/barrier.
	SyncSeconds float64
}

// DASH returns the Stanford DASH model: slow processors, small (256 KB)
// second-level caches, cheap local but expensive remote misses across the
// cluster mesh, and costly software barriers.
func DASH() *Machine {
	return &Machine{
		Name:        "DASH",
		MaxProcs:    32,
		ClusterSize: 4,
		ClassRate: [trace.NumClasses]float64{
			trace.DenseSparse: 2.84e6,
			trace.Chol:        0.63e6,
			trace.Solve:       2.31e6,
			trace.MatMat:      17.5e6,
			trace.MatVec:      11.5e6,
			trace.VecOp:       1.35e6,
		},
		SerialFrac: [trace.NumClasses]float64{
			trace.Chol:  0.10,
			trace.VecOp: 0.08,
		},
		RemotePenalty: [trace.NumClasses]float64{
			trace.DenseSparse: 1.05,
			trace.Solve:       0.26,
			trace.MatMat:      0.12,
			trace.MatVec:      0.10,
			trace.VecOp:       0.35,
			trace.Chol:        0.30,
		},
		CacheBytes: 256 << 10,
		CachePenalty: [trace.NumClasses]float64{
			trace.MatVec:      8.0,
			trace.VecOp:       0.8,
			trace.DenseSparse: 0.35,
		},
		SyncSeconds: 0.45e-3,
	}
}

// Challenge returns the SGI Challenge model: roughly 3× faster processors,
// 1 MB caches, centralized memory (every miss costs the same, modeled as a
// small bus-contention remote penalty), and cheaper bus-based barriers.
func Challenge() *Machine {
	return &Machine{
		Name:        "Challenge",
		MaxProcs:    16,
		ClusterSize: 16,
		ClassRate: [trace.NumClasses]float64{
			trace.DenseSparse: 9.1e6,
			trace.Chol:        1.77e6,
			trace.Solve:       6.5e6,
			trace.MatMat:      52.3e6,
			trace.MatVec:      16.3e6,
			trace.VecOp:       4.0e6,
		},
		SerialFrac: [trace.NumClasses]float64{
			trace.Chol:  0.09,
			trace.VecOp: 0.06,
		},
		RemotePenalty: [trace.NumClasses]float64{
			// The bus serializes misses: model contention as a penalty that
			// applies as soon as more than one "cluster slot" is busy. With
			// ClusterSize == MaxProcs the remote fraction is zero, so bus
			// contention is folded into BusContention below instead.
		},
		CacheBytes: 1 << 20,
		CachePenalty: [trace.NumClasses]float64{
			trace.MatVec:      0.5,
			trace.VecOp:       0.4,
			trace.DenseSparse: 0.15,
		},
		SyncSeconds: 2.4e-4,
	}
}

// BusContention is the per-class slowdown multiplier slope for centralized
// (single-cluster) machines: mult = 1 + slope·(p−1)/(MaxProcs−1).
var BusContention = [trace.NumClasses]float64{
	trace.DenseSparse: 0.12,
	trace.Solve:       0.07,
	trace.MatMat:      0.05,
	trace.MatVec:      0.05,
	trace.VecOp:       0.22,
	trace.Chol:        0.12,
}

// Op is one array operation of the schedule: its class, flop count, and
// total working-set size in bytes (used for the cache-capacity term).
type Op struct {
	Class   trace.Class
	Flops   float64
	Workset float64
}

// Wall returns the modeled wall-clock seconds of the operation on p
// processors of this machine.
func (m *Machine) Wall(op Op, p int) float64 {
	if p < 1 {
		p = 1
	}
	base := op.Flops / m.ClassRate[op.Class]
	cache := m.cacheMult(op, p)
	f := m.SerialFrac[op.Class]
	if p == 1 {
		return base * cache
	}
	wall := base * cache * (f + (1-f)*m.remoteMult(op.Class, p)*m.contentionMult(op.Class, p)/float64(p))
	wall += m.SyncSeconds * math.Ceil(math.Log2(float64(p)))
	return wall
}

// cacheMult charges capacity misses when the per-processor share of the
// working set exceeds the second-level cache.
func (m *Machine) cacheMult(op Op, p int) float64 {
	perProc := op.Workset / float64(p)
	if perProc <= m.CacheBytes || m.CacheBytes == 0 {
		return 1
	}
	overflow := 1 - m.CacheBytes/perProc // in (0, 1)
	return 1 + m.CachePenalty[op.Class]*overflow
}

// remoteMult charges remote misses across clusters on distributed-memory
// machines.
func (m *Machine) remoteMult(class trace.Class, p int) float64 {
	clusters := (p + m.ClusterSize - 1) / m.ClusterSize
	if clusters <= 1 {
		return 1
	}
	remoteFrac := float64(clusters-1) / float64(clusters)
	return 1 + m.RemotePenalty[class]*remoteFrac
}

// contentionMult charges shared-bus contention on centralized machines.
func (m *Machine) contentionMult(class trace.Class, p int) float64 {
	if m.ClusterSize < m.MaxProcs || m.MaxProcs <= 1 || p <= 1 {
		return 1
	}
	return 1 + BusContention[class]*float64(p-1)/float64(m.MaxProcs-1)
}
