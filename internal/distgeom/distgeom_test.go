package distgeom

import (
	"math"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/molecule"
	"phmse/internal/superpose"
)

// exactDistanceSet builds a fully determined constraint set (all pairs)
// from reference positions.
func exactDistanceSet(pos []geom.Vec3, sigma float64) []constraint.Constraint {
	var cons []constraint.Constraint
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			cons = append(cons, constraint.Distance{
				I: i, J: j, Target: geom.Dist(pos[i], pos[j]), Sigma: sigma,
			})
		}
	}
	return cons
}

func TestCollectBounds(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 5, Sigma: 0.1},
		constraint.DistanceBound{I: 1, J: 2, Lower: 2, Upper: 8, Sigma: 0.5},
		constraint.DistanceBound{I: 0, J: 2, Upper: 12, Sigma: 0.5},
	}
	b := CollectBounds(3, cons, Options{})
	if lo, hi := b.Lower.At(0, 1), b.Upper.At(0, 1); lo != 4.8 || hi != 5.2 {
		t.Fatalf("exact distance bounds [%g, %g]", lo, hi)
	}
	if lo, hi := b.Lower.At(1, 2), b.Upper.At(1, 2); lo != 2 || hi != 8 {
		t.Fatalf("two-sided bound [%g, %g]", lo, hi)
	}
	if lo := b.Lower.At(0, 2); lo != 1.5 {
		t.Fatalf("default lower %g", lo)
	}
	if b.Upper.At(0, 2) != 12 {
		t.Fatalf("upper-only bound %g", b.Upper.At(0, 2))
	}
	// Symmetry.
	if b.Lower.At(1, 0) != b.Lower.At(0, 1) {
		t.Fatal("bounds not symmetric")
	}
}

func TestSmoothTightensThroughTriangle(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.01},
		constraint.Distance{I: 1, J: 2, Target: 4, Sigma: 0.01},
	}
	b := CollectBounds(3, cons, Options{DefaultUpper: 1000})
	if err := b.Smooth(); err != nil {
		t.Fatal(err)
	}
	// d(0,2) ≤ d(0,1) + d(1,2) ≈ 7.
	if hi := b.Upper.At(0, 2); hi > 7.1 {
		t.Fatalf("triangle smoothing missed: upper(0,2) = %g", hi)
	}
}

func TestSmoothDetectsInconsistency(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 2, Sigma: 0.01},
		constraint.Distance{I: 1, J: 2, Target: 2, Sigma: 0.01},
		constraint.Distance{I: 0, J: 2, Target: 50, Sigma: 0.01}, // violates triangle
	}
	b := CollectBounds(3, cons, Options{})
	if err := b.Smooth(); err == nil {
		t.Fatal("inconsistent bounds not detected")
	}
}

func TestEmbedRecoversFullyDeterminedShape(t *testing.T) {
	// A rigid tetrahedron-ish cloud with all pairwise distances known must
	// embed to the right shape (up to rigid motion and reflection).
	ref := []geom.Vec3{
		{0, 0, 0}, {5, 0, 0}, {2, 4, 0}, {1, 1, 4}, {4, 3, 2},
	}
	cons := exactDistanceSet(ref, 0.01)
	pos, err := Embed(len(ref), cons, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := superpose.RMSD(pos, ref)
	if err != nil {
		t.Fatal(err)
	}
	// Allow the mirror image: reflect and take the better fit.
	mirror := make([]geom.Vec3, len(pos))
	for i, p := range pos {
		mirror[i] = geom.Vec3{p[0], p[1], -p[2]}
	}
	r2, err := superpose.RMSD(mirror, ref)
	if err != nil {
		t.Fatal(err)
	}
	if best := math.Min(r1, r2); best > 0.2 {
		t.Fatalf("embedding RMSD %g", best)
	}
}

func TestEmbedHelixApproximate(t *testing.T) {
	// The helix constraint set is sparse (cutoff-local), so the embedding
	// is a low-resolution candidate: it should land in the right size
	// regime, far better than random scatter.
	h := molecule.Helix(1)
	pos, err := Embed(len(h.Atoms), h.Constraints, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := h.TruePositions()
	r1, err := superpose.RMSD(pos, ref)
	if err != nil {
		t.Fatal(err)
	}
	mirror := make([]geom.Vec3, len(pos))
	for i, p := range pos {
		mirror[i] = geom.Vec3{p[0], p[1], -p[2]}
	}
	r2, _ := superpose.RMSD(mirror, ref)
	if best := math.Min(r1, r2); best > 8 {
		t.Fatalf("helix embedding RMSD %g (should be low-resolution, not random)", best)
	}
}

func TestEmbedEmptyAndTrivial(t *testing.T) {
	if pos, err := Embed(0, nil, Options{}); err != nil || len(pos) != 0 {
		t.Fatal("empty problem")
	}
	pos, err := Embed(2, []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 4, Sigma: 0.01},
	}, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := geom.Dist(pos[0], pos[1]); math.Abs(d-4) > 0.5 {
		t.Fatalf("pair distance %g", d)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	h := molecule.Helix(1)
	a, err := Embed(len(h.Atoms), h.Constraints, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Embed(len(h.Atoms), h.Constraints, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic embedding")
		}
	}
}
