// Package distgeom implements the distance-geometry baseline the paper's
// related-work section compares against (Crippen [12]; Havel, Kuntz &
// Crippen [13]): interatomic distance bounds are smoothed with the triangle
// inequality, trial distances are sampled within the bounds, and the
// metric-matrix embedding (the top three eigenvectors of the Gram matrix)
// yields candidate coordinates. Unlike the probabilistic estimator it
// produces no uncertainty measure, which is one of the paper's motivations.
package distgeom

import (
	"fmt"
	"math"
	"math/rand"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/mat"
)

// Options configures the embedding; zero values select defaults.
type Options struct {
	Seed int64
	// DefaultLower is the lower bound for atom pairs with no data
	// (a van der Waals contact floor; default 1.5 Å).
	DefaultLower float64
	// DefaultUpper is the upper bound for pairs with no data (default: a
	// generous molecule diameter derived from the data).
	DefaultUpper float64
	// SkipSmoothing disables triangle-inequality bound smoothing (for
	// experiments; smoothing is O(n³) and on by default).
	SkipSmoothing bool
}

func (o Options) withDefaults(maxObserved float64) Options {
	if o.DefaultLower <= 0 {
		o.DefaultLower = 1.5
	}
	if o.DefaultUpper <= 0 {
		o.DefaultUpper = 3*maxObserved + 10
	}
	return o
}

// Bounds holds smoothed lower and upper distance bounds for every pair.
type Bounds struct {
	N     int
	Lower *mat.Mat
	Upper *mat.Mat
}

// CollectBounds extracts distance bounds from the constraint set: exact
// distances pin both bounds (within measurement noise); one-sided bounds
// contribute their side; everything else defaults.
func CollectBounds(nAtoms int, cons []constraint.Constraint, opt Options) *Bounds {
	maxObs := 0.0
	for _, c := range cons {
		if d, ok := c.(constraint.Distance); ok && d.Target > maxObs {
			maxObs = d.Target
		}
	}
	opt = opt.withDefaults(maxObs)
	b := &Bounds{N: nAtoms, Lower: mat.New(nAtoms, nAtoms), Upper: mat.New(nAtoms, nAtoms)}
	for i := 0; i < nAtoms; i++ {
		for j := 0; j < nAtoms; j++ {
			if i != j {
				b.Lower.Set(i, j, opt.DefaultLower)
				b.Upper.Set(i, j, opt.DefaultUpper)
			}
		}
	}
	// Pairs with data replace the defaults on first sight; further data on
	// the same pair intersects the intervals.
	seen := make(map[[2]int]bool)
	set := func(i, j int, lo, hi float64) {
		key := [2]int{min(i, j), max(i, j)}
		if !seen[key] {
			seen[key] = true
			b.Lower.Set(i, j, lo)
			b.Lower.Set(j, i, lo)
			b.Upper.Set(i, j, hi)
			b.Upper.Set(j, i, hi)
			return
		}
		if lo > b.Lower.At(i, j) {
			b.Lower.Set(i, j, lo)
			b.Lower.Set(j, i, lo)
		}
		if hi < b.Upper.At(i, j) {
			b.Upper.Set(i, j, hi)
			b.Upper.Set(j, i, hi)
		}
	}
	for _, c := range cons {
		switch v := c.(type) {
		case constraint.Distance:
			slack := 2 * v.Sigma
			set(v.I, v.J, math.Max(0, v.Target-slack), v.Target+slack)
		case constraint.DistanceBound:
			lo, hi := v.Lower, v.Upper
			if lo <= 0 {
				lo = opt.DefaultLower // one-sided upper bound keeps the vdW floor
			}
			if hi == 0 || math.IsInf(hi, 1) {
				hi = opt.DefaultUpper
			}
			set(v.I, v.J, lo, hi)
		}
	}
	return b
}

// Smooth applies triangle-inequality bound smoothing: upper bounds tighten
// through the shortest path (Floyd–Warshall), and lower bounds rise via the
// inverse triangle inequality.
func (b *Bounds) Smooth() error {
	n := b.N
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			uik := b.Upper.At(i, k)
			for j := 0; j < n; j++ {
				if j == i || j == k {
					continue
				}
				// Upper: d(i,j) ≤ d(i,k) + d(k,j).
				if via := uik + b.Upper.At(k, j); via < b.Upper.At(i, j) {
					b.Upper.Set(i, j, via)
				}
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			for j := 0; j < n; j++ {
				if j == i || j == k {
					continue
				}
				// Lower: d(i,j) ≥ d(i,k) − d(k,j).
				if via := b.Lower.At(i, k) - b.Upper.At(k, j); via > b.Lower.At(i, j) {
					b.Lower.Set(i, j, via)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && b.Lower.At(i, j) > b.Upper.At(i, j)+1e-9 {
				return fmt.Errorf("distgeom: inconsistent bounds for (%d,%d): [%g, %g]",
					i, j, b.Lower.At(i, j), b.Upper.At(i, j))
			}
		}
	}
	return nil
}

// Embed runs the full distance-geometry pipeline and returns candidate
// coordinates: bounds → smoothing → trial distances → metric matrix → top
// three eigenvectors.
func Embed(nAtoms int, cons []constraint.Constraint, opt Options) ([]geom.Vec3, error) {
	if nAtoms == 0 {
		return nil, nil
	}
	b := CollectBounds(nAtoms, cons, opt)
	if !opt.SkipSmoothing {
		if err := b.Smooth(); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	d2 := trialSquaredDistances(b, rng)
	g, err := metricMatrix(d2)
	if err != nil {
		return nil, err
	}
	w, v, err := mat.SymEigen(g)
	if err != nil {
		return nil, err
	}
	pos := make([]geom.Vec3, nAtoms)
	for axis := 0; axis < 3 && axis < len(w); axis++ {
		if w[axis] <= 0 {
			break // degenerate dimension: leave coordinates at zero
		}
		scale := math.Sqrt(w[axis])
		for i := 0; i < nAtoms; i++ {
			pos[i][axis] = scale * v.At(i, axis)
		}
	}
	return pos, nil
}

// trialSquaredDistances samples a distance for every pair uniformly within
// its bounds.
func trialSquaredDistances(b *Bounds, rng *rand.Rand) *mat.Mat {
	n := b.N
	d2 := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			lo, hi := b.Lower.At(i, j), b.Upper.At(i, j)
			d := lo + rng.Float64()*math.Max(0, hi-lo)
			d2.Set(i, j, d*d)
			d2.Set(j, i, d*d)
		}
	}
	return d2
}

// metricMatrix converts squared distances to the centroid-referenced Gram
// matrix G with Gᵢⱼ = ½(d²ᵢₒ + d²ⱼₒ − d²ᵢⱼ), where o is the centroid.
func metricMatrix(d2 *mat.Mat) (*mat.Mat, error) {
	n := d2.Rows
	// Squared distance of each atom to the centroid.
	total := 0.0
	rowSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowSum[i] += d2.At(i, j)
		}
		total += rowSum[i]
	}
	fn := float64(n)
	d0 := make([]float64, n)
	for i := 0; i < n; i++ {
		d0[i] = rowSum[i]/fn - total/(2*fn*fn)
		if d0[i] < 0 {
			d0[i] = 0
		}
	}
	g := mat.New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			g.Set(i, j, 0.5*(d0[i]+d0[j]-d2.At(i, j)))
		}
	}
	return g, nil
}
