package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestClassString(t *testing.T) {
	want := []string{"d-s", "chol", "sys", "m-m", "m-v", "vec"}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() != want[c] {
			t.Fatalf("class %d = %q, want %q", c, c.String(), want[c])
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Fatal("out-of-range class string")
	}
}

func TestTimesTotalAddScale(t *testing.T) {
	a := Times{1, 2, 3, 4, 5, 6}
	if a.Total() != 21 {
		t.Fatalf("Total = %g", a.Total())
	}
	b := a.Add(Times{1, 1, 1, 1, 1, 1})
	if b.Total() != 27 {
		t.Fatalf("Add total = %g", b.Total())
	}
	if a.Total() != 21 {
		t.Fatal("Add mutated receiver")
	}
	c := a.Scale(2)
	if c.Total() != 42 {
		t.Fatalf("Scale total = %g", c.Total())
	}
}

func TestTimesFormat(t *testing.T) {
	s := Times{1, 2, 3, 4, 5, 6}.Format()
	for _, name := range []string{"d-s=1.00", "chol=2.00", "vec=6.00"} {
		if !strings.Contains(s, name) {
			t.Fatalf("Format %q missing %q", s, name)
		}
	}
}

func TestCollectorAccumulates(t *testing.T) {
	var c Collector
	c.Add(MatMat, 1.5, 100)
	c.Add(MatMat, 0.5, 50)
	c.Add(Chol, 2, 10)
	times := c.Times()
	if times[MatMat] != 2 || times[Chol] != 2 {
		t.Fatalf("times = %v", times)
	}
	flops := c.Flops()
	if flops[MatMat] != 150 || flops[Chol] != 10 {
		t.Fatalf("flops = %v", flops)
	}
	c.Reset()
	if c.Times().Total() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestCollectorTimedRunsFunc(t *testing.T) {
	var c Collector
	ran := false
	c.Timed(Solve, 5, func() { ran = true })
	if !ran {
		t.Fatal("Timed did not run f")
	}
	if c.Flops()[Solve] != 5 {
		t.Fatal("Timed did not record flops")
	}
	if c.Times()[Solve] < 0 {
		t.Fatal("negative duration")
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	c.Add(VecOp, 1, 1)
	ran := false
	c.Timed(VecOp, 1, func() { ran = true })
	if !ran {
		t.Fatal("nil collector did not run f")
	}
	if c.Times().Total() != 0 || c.Flops()[VecOp] != 0 {
		t.Fatal("nil collector returned non-zero state")
	}
	c.Reset()
}

func TestCollectorConcurrent(t *testing.T) {
	var c Collector
	var wg sync.WaitGroup
	const workers = 8
	const each = 1000
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Add(VecOp, 0.001, 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Flops()[VecOp]; got != workers*each {
		t.Fatalf("flops = %g, want %d", got, workers*each)
	}
}
