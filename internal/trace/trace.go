// Package trace provides per-operation-class time accounting. The paper's
// evaluation (Tables 3–6) breaks execution time into six array-operation
// classes; both the real executor and the virtual-time machine record into
// the same Collector so that the reproduced tables use identical accounting.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Class identifies one of the array-operation classes measured in the paper.
type Class int

// The operation classes, in the column order of Tables 3–6.
const (
	DenseSparse Class = iota // d-s: dense-sparse matrix multiplications
	Chol                     // chol: Cholesky factorization
	Solve                    // sys: triangular system solves
	MatMat                   // m-m: dense matrix multiplications
	MatVec                   // m-v: dense matrix-vector multiplications
	VecOp                    // vec: vector operations
	NumClasses
)

var classNames = [NumClasses]string{"d-s", "chol", "sys", "m-m", "m-v", "vec"}

// String returns the paper's abbreviation for the class.
func (c Class) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// Times holds one duration (in seconds) per operation class.
type Times [NumClasses]float64

// Total returns the sum over all classes.
func (t Times) Total() float64 {
	s := 0.0
	for _, v := range t {
		s += v
	}
	return s
}

// Add returns the element-wise sum of t and u.
func (t Times) Add(u Times) Times {
	for c := range t {
		t[c] += u[c]
	}
	return t
}

// Scale returns t with every entry multiplied by f.
func (t Times) Scale(f float64) Times {
	for c := range t {
		t[c] *= f
	}
	return t
}

// Format renders the times in the paper's column order.
func (t Times) Format() string {
	var b strings.Builder
	for c := Class(0); c < NumClasses; c++ {
		fmt.Fprintf(&b, "%s=%.2f ", c, t[c])
	}
	return strings.TrimSpace(b.String())
}

// Collector accumulates per-class time, safely across goroutines. The zero
// value is ready to use. A nil *Collector is valid and discards everything,
// so instrumentation can stay in place with zero configuration.
type Collector struct {
	mu    sync.Mutex
	times Times
	flops [NumClasses]float64
}

// Add accumulates seconds (and optionally a flop count) under the class.
func (c *Collector) Add(class Class, seconds, flops float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.times[class] += seconds
	c.flops[class] += flops
	c.mu.Unlock()
}

// Timed runs f and accounts its wall-clock duration under the class.
func (c *Collector) Timed(class Class, flops float64, f func()) {
	if c == nil {
		f()
		return
	}
	start := time.Now()
	f()
	c.Add(class, time.Since(start).Seconds(), flops)
}

// Times returns a snapshot of the accumulated per-class seconds.
func (c *Collector) Times() Times {
	if c == nil {
		return Times{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.times
}

// Flops returns a snapshot of the accumulated per-class flop counts.
func (c *Collector) Flops() [NumClasses]float64 {
	if c == nil {
		return [NumClasses]float64{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flops
}

// Snapshot is an export-friendly view of a Collector, keyed by the paper's
// operation-class abbreviations. It marshals cleanly to JSON, for the
// serving layer's /metrics endpoint and other monitoring exports.
type Snapshot struct {
	// Seconds maps class abbreviation → accumulated wall-clock seconds.
	Seconds map[string]float64 `json:"seconds"`
	// Flops maps class abbreviation → accumulated floating-point operations.
	Flops map[string]float64 `json:"flops"`
	// TotalSeconds is the sum of Seconds over all classes.
	TotalSeconds float64 `json:"total_seconds"`
}

// Snapshot returns a consistent export view of the accumulated state. A nil
// Collector yields a zero-valued (but non-nil-mapped) snapshot.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Seconds: make(map[string]float64, NumClasses),
		Flops:   make(map[string]float64, NumClasses),
	}
	times := c.Times()
	flops := c.Flops()
	for cl := Class(0); cl < NumClasses; cl++ {
		s.Seconds[cl.String()] = times[cl]
		s.Flops[cl.String()] = flops[cl]
	}
	s.TotalSeconds = times.Total()
	return s
}

// Reset clears all accumulated state.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.times = Times{}
	c.flops = [NumClasses]float64{}
	c.mu.Unlock()
}
