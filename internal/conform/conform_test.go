package conform

import (
	"math"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/molecule"
)

func TestSearchTriangle(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 1},
		constraint.Distance{I: 0, J: 1, Target: 8, Sigma: 0.5},
		constraint.Distance{I: 0, J: 2, Target: 8, Sigma: 0.5},
		constraint.Distance{I: 1, J: 2, Target: 8, Sigma: 0.5},
	}
	pos := Search(3, cons, Options{Seed: 1, GridSpacing: 2})
	// Low resolution: each distance within a couple of lattice cells.
	for _, c := range cons {
		d, ok := c.(constraint.Distance)
		if !ok {
			continue
		}
		got := geom.Dist(pos[d.I], pos[d.J])
		if math.Abs(got-d.Target) > 5 {
			t.Fatalf("distance %d-%d = %g, want ≈ %g", d.I, d.J, got, d.Target)
		}
	}
}

func TestSearchImprovesScore(t *testing.T) {
	h := molecule.Helix(1)
	cons := h.Constraints
	n := len(h.Atoms)
	random := Search(n, cons, Options{Seed: 7, Sweeps: 1}) // essentially the random start
	refined := Search(n, cons, Options{Seed: 7})
	if Score(refined, cons) >= Score(random, cons) {
		t.Fatalf("annealing did not improve: %g vs %g", Score(refined, cons), Score(random, cons))
	}
}

func TestSearchDeterministic(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 5, Sigma: 1},
	}
	a := Search(2, cons, Options{Seed: 3})
	b := Search(2, cons, Options{Seed: 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different result")
		}
	}
}

func TestSearchSnapsToLattice(t *testing.T) {
	cons := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 6, Sigma: 1},
	}
	g := 3.0
	pos := Search(2, cons, Options{Seed: 2, GridSpacing: g})
	for _, p := range pos {
		for c := 0; c < 3; c++ {
			q := p[c] / g
			if math.Abs(q-math.Round(q)) > 1e-9 {
				t.Fatalf("coordinate %g not on the %g lattice", p[c], g)
			}
		}
	}
}

func TestSearchAnchorsSeedPositions(t *testing.T) {
	target := geom.Vec3{40, -12, 8}
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: target, Sigma: 1},
	}
	pos := Search(1, cons, Options{Seed: 5, GridSpacing: 4, Sweeps: 10})
	if pos[0].Sub(target).Norm() > 8 {
		t.Fatalf("anchored atom drifted to %v", pos[0])
	}
}

func TestSearchEmptyInputs(t *testing.T) {
	if got := Search(0, nil, Options{}); len(got) != 0 {
		t.Fatal("empty problem")
	}
	pos := Search(3, nil, Options{Seed: 1, Sweeps: 5})
	if len(pos) != 3 {
		t.Fatal("no constraints should still yield positions")
	}
}

func TestScoreGatedConstraints(t *testing.T) {
	pos := []geom.Vec3{{0, 0, 0}, {3, 0, 0}}
	inactive := []constraint.Constraint{
		constraint.DistanceBound{I: 0, J: 1, Lower: 1, Upper: 5, Sigma: 1},
	}
	if Score(pos, inactive) != 0 {
		t.Fatal("inactive bound scored")
	}
	violated := []constraint.Constraint{
		constraint.DistanceBound{I: 0, J: 1, Upper: 2, Sigma: 1},
	}
	if Score(pos, violated) <= 0 {
		t.Fatal("violated bound not scored")
	}
}

func TestSearchRespectsBounds(t *testing.T) {
	// Two atoms with only an upper bound must end up within it (roughly).
	cons := []constraint.Constraint{
		constraint.DistanceBound{I: 0, J: 1, Upper: 6, Sigma: 0.5},
	}
	pos := Search(2, cons, Options{Seed: 9, GridSpacing: 2, InitRadius: 60})
	if d := geom.Dist(pos[0], pos[1]); d > 14 {
		t.Fatalf("upper bound ignored: %g", d)
	}
}
