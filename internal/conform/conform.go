// Package conform implements the low-resolution discrete conformational
// space search used to produce initial structure estimates (reference [3]
// of the paper). The ribosome problem runs this preprocessing step before
// the analytical estimator to avoid low-quality locally optimal solutions.
//
// Atoms move on a coarse cubic lattice; a simulated-annealing walk proposes
// single-atom lattice moves and scores them by the weighted violation of
// the constraints touching the moved atom. The output is deliberately crude
// — its job is to land in the right basin, after which the probabilistic
// estimator refines positions and quantifies their uncertainty.
package conform

import (
	"math"
	"math/rand"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// Options configures the search; zero values select the defaults.
type Options struct {
	GridSpacing float64 // lattice resolution in Å (default 4)
	Sweeps      int     // proposal sweeps over all atoms (default 300)
	Seed        int64
	InitRadius  float64 // radius of the random starting sphere (default: estimated from the data)
	StartTemp   float64 // initial annealing temperature (default 25)
}

func (o Options) withDefaults(nAtoms int, cons []constraint.Constraint) Options {
	if o.GridSpacing <= 0 {
		o.GridSpacing = 4
	}
	if o.Sweeps <= 0 {
		o.Sweeps = 300
	}
	if o.InitRadius <= 0 {
		// A sphere sized to the largest observed distance, or to the atom
		// count for purely local data.
		maxD := 0.0
		for _, c := range cons {
			if d, ok := c.(constraint.Distance); ok && d.Target > maxD {
				maxD = d.Target
			}
			if p, ok := c.(constraint.Position); ok {
				if n := p.Target.Norm(); n > maxD {
					maxD = n
				}
			}
		}
		if maxD == 0 {
			maxD = 3 * math.Cbrt(float64(nAtoms))
		}
		o.InitRadius = maxD
	}
	if o.StartTemp <= 0 {
		o.StartTemp = 25
	}
	return o
}

// Search returns a low-resolution initial estimate: lattice positions that
// approximately satisfy the constraint set.
func Search(nAtoms int, cons []constraint.Constraint, opt Options) []geom.Vec3 {
	opt = opt.withDefaults(nAtoms, cons)
	rng := rand.New(rand.NewSource(opt.Seed))
	s := newSearcher(nAtoms, cons, opt, rng)
	s.anneal()
	return s.positions()
}

// Score returns the total weighted squared constraint violation of a
// conformation — the objective the search minimizes. Exported so callers
// can compare candidate initializations.
func Score(pos []geom.Vec3, cons []constraint.Constraint) float64 {
	total := 0.0
	buf := newEvalBuf()
	for _, c := range cons {
		total += buf.violation(c, pos)
	}
	return total
}

type searcher struct {
	opt    Options
	rng    *rand.Rand
	pos    []geom.Vec3 // lattice coordinates × spacing
	cons   []constraint.Constraint
	byAtom [][]int // constraint indices touching each atom
	buf    *evalBuf
}

func newSearcher(nAtoms int, cons []constraint.Constraint, opt Options, rng *rand.Rand) *searcher {
	s := &searcher{
		opt:    opt,
		rng:    rng,
		pos:    make([]geom.Vec3, nAtoms),
		cons:   cons,
		byAtom: make([][]int, nAtoms),
		buf:    newEvalBuf(),
	}
	for i := range s.pos {
		s.pos[i] = s.snap(geom.Vec3{
			rng.NormFloat64() * opt.InitRadius / 2,
			rng.NormFloat64() * opt.InitRadius / 2,
			rng.NormFloat64() * opt.InitRadius / 2,
		})
	}
	for ci, c := range cons {
		for _, a := range c.Atoms() {
			if a >= 0 && a < nAtoms {
				s.byAtom[a] = append(s.byAtom[a], ci)
			}
		}
	}
	// Atoms with absolute position data start there: a free head start.
	for _, c := range cons {
		if p, ok := c.(constraint.Position); ok && p.I < nAtoms {
			s.pos[p.I] = s.snap(p.Target)
		}
	}
	return s
}

func (s *searcher) snap(p geom.Vec3) geom.Vec3 {
	g := s.opt.GridSpacing
	return geom.Vec3{
		math.Round(p[0]/g) * g,
		math.Round(p[1]/g) * g,
		math.Round(p[2]/g) * g,
	}
}

// localScore sums the violations of the constraints touching atom a.
func (s *searcher) localScore(a int) float64 {
	total := 0.0
	for _, ci := range s.byAtom[a] {
		total += s.buf.violation(s.cons[ci], s.pos)
	}
	return total
}

func (s *searcher) anneal() {
	n := len(s.pos)
	if n == 0 {
		return
	}
	temp := s.opt.StartTemp
	cool := math.Pow(0.01/s.opt.StartTemp, 1/float64(s.opt.Sweeps))
	g := s.opt.GridSpacing
	for sweep := 0; sweep < s.opt.Sweeps; sweep++ {
		for a := 0; a < n; a++ {
			before := s.localScore(a)
			old := s.pos[a]
			// Propose a single-axis lattice step of 1–3 cells.
			axis := s.rng.Intn(3)
			step := float64(s.rng.Intn(3)+1) * g
			if s.rng.Intn(2) == 0 {
				step = -step
			}
			next := old
			next[axis] += step
			s.pos[a] = next
			after := s.localScore(a)
			if after > before && s.rng.Float64() >= math.Exp((before-after)/temp) {
				s.pos[a] = old // reject
			}
		}
		temp *= cool
	}
}

func (s *searcher) positions() []geom.Vec3 {
	return append([]geom.Vec3(nil), s.pos...)
}

// evalBuf holds reusable scratch for constraint evaluation.
type evalBuf struct {
	pos []geom.Vec3
	h   []float64
	z   []float64
	sg  []float64
	jac [][]float64
}

func newEvalBuf() *evalBuf { return &evalBuf{} }

func (b *evalBuf) violation(c constraint.Constraint, all []geom.Vec3) float64 {
	atoms := c.Atoms()
	dim := c.Dim()
	if cap(b.pos) < len(atoms) {
		b.pos = make([]geom.Vec3, len(atoms))
	}
	b.pos = b.pos[:len(atoms)]
	for k, a := range atoms {
		b.pos[k] = all[a]
	}
	if g, ok := c.(constraint.Gated); ok && !g.Active(b.pos) {
		return 0
	}
	if cap(b.h) < dim {
		b.h = make([]float64, dim)
		b.z = make([]float64, dim)
		b.sg = make([]float64, dim)
	}
	b.h, b.z, b.sg = b.h[:dim], b.z[:dim], b.sg[:dim]
	for len(b.jac) < dim {
		b.jac = append(b.jac, nil)
	}
	for d := 0; d < dim; d++ {
		if cap(b.jac[d]) < 3*len(atoms) {
			b.jac[d] = make([]float64, 3*len(atoms))
		}
		b.jac[d] = b.jac[d][:3*len(atoms)]
	}
	c.Eval(b.pos, b.h, b.jac[:dim])
	c.Observed(b.z, b.sg)
	var wrap []bool
	if p, ok := c.(constraint.Periodic); ok {
		wrap = p.PeriodicRows()
	}
	total := 0.0
	for d := 0; d < dim; d++ {
		diff := b.z[d] - b.h[d]
		if wrap != nil && wrap[d] {
			diff = math.Mod(diff+3*math.Pi, 2*math.Pi) - math.Pi
		}
		if b.sg[d] > 0 {
			total += diff * diff / b.sg[d]
		} else {
			total += diff * diff
		}
	}
	return total
}
