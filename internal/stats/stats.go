// Package stats provides the small numerical-statistics toolkit the
// estimator needs: ordinary and non-negative least squares, polynomial
// bases, and summary statistics. The non-negative solver backs the paper's
// constrained regression for the work-estimation formula (Equation 1), whose
// coefficient checks (positive leading coefficient, non-negative constant
// term and coefficient sum) are all guaranteed by coefficient
// non-negativity.
package stats

import (
	"errors"
	"fmt"
	"math"

	"phmse/internal/mat"
)

// ErrSingular is returned when a least-squares system is numerically
// singular even after ridge stabilization.
var ErrSingular = errors.New("stats: singular least-squares system")

// LeastSquares solves min‖X·β − y‖₂ via the normal equations with Cholesky,
// adding a tiny ridge term if the Gram matrix is not positive definite.
func LeastSquares(x *mat.Mat, y []float64) ([]float64, error) {
	if x.Rows != len(y) {
		panic("stats: LeastSquares dimension mismatch")
	}
	if x.Rows < x.Cols {
		return nil, fmt.Errorf("stats: underdetermined system (%d rows, %d cols)", x.Rows, x.Cols)
	}
	p := x.Cols
	gram := mat.New(p, p)
	mat.MulTN(gram, x, x)
	rhs := make([]float64, p)
	mat.MulVecT(rhs, x, y)

	for _, ridge := range []float64{0, 1e-12, 1e-8, 1e-4} {
		l := gram.Clone()
		if ridge > 0 {
			scale := ridge * gram.MaxAbs()
			for i := 0; i < p; i++ {
				l.Set(i, i, l.At(i, i)+scale)
			}
		}
		if err := mat.Cholesky(l); err != nil {
			continue
		}
		beta := append([]float64(nil), rhs...)
		mat.CholeskySolve(l, beta)
		return beta, nil
	}
	return nil, ErrSingular
}

// NonNegativeLeastSquares solves min‖X·β − y‖₂ subject to β ≥ 0 using the
// Lawson–Hanson active-set algorithm.
func NonNegativeLeastSquares(x *mat.Mat, y []float64) ([]float64, error) {
	if x.Rows != len(y) {
		panic("stats: NNLS dimension mismatch")
	}
	p := x.Cols
	beta := make([]float64, p)
	passive := make([]bool, p) // true: unconstrained; false: clamped at zero
	resid := append([]float64(nil), y...)
	grad := make([]float64, p)

	const maxOuter = 200
	for outer := 0; outer < maxOuter; outer++ {
		// Gradient of ½‖Xβ−y‖² is −Xᵀ·resid; pick the most violated
		// zero-clamped variable.
		mat.MulVecT(grad, x, resid)
		best, bestVal := -1, 0.0
		for j := 0; j < p; j++ {
			if !passive[j] && grad[j] > bestVal+1e-12 {
				best, bestVal = j, grad[j]
			}
		}
		if best < 0 {
			return beta, nil // KKT conditions satisfied
		}
		passive[best] = true

		// Inner loop: solve restricted LS on the passive set; clip negatives.
		for {
			sub, idx := columns(x, passive)
			sol, err := LeastSquares(sub, y)
			if err != nil {
				return nil, err
			}
			if allPositive(sol) {
				for k, j := range idx {
					beta[j] = sol[k]
				}
				break
			}
			// Move toward sol until the first passive variable hits zero.
			alpha := math.Inf(1)
			for k, j := range idx {
				if sol[k] <= 0 {
					if step := beta[j] / (beta[j] - sol[k]); step < alpha {
						alpha = step
					}
				}
			}
			for k, j := range idx {
				beta[j] += alpha * (sol[k] - beta[j])
				if beta[j] <= 1e-14 {
					beta[j] = 0
					passive[j] = false
				}
			}
		}
		// Refresh the residual for the next gradient evaluation.
		copy(resid, y)
		tmp := make([]float64, x.Rows)
		mat.MulVec(tmp, x, beta)
		mat.SubVec(resid, y, tmp)
	}
	return beta, fmt.Errorf("stats: NNLS did not converge in %d iterations", maxOuter)
}

// columns extracts the selected columns of x into a compact matrix,
// returning the matrix and the original column indices.
func columns(x *mat.Mat, selected []bool) (*mat.Mat, []int) {
	var idx []int
	for j, s := range selected {
		if s {
			idx = append(idx, j)
		}
	}
	sub := mat.New(x.Rows, len(idx))
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		srow := sub.Row(i)
		for k, j := range idx {
			srow[k] = row[j]
		}
	}
	return sub, idx
}

func allPositive(v []float64) bool {
	for _, x := range v {
		if x <= 0 {
			return false
		}
	}
	return true
}

// RSquared returns the coefficient of determination of predictions vs
// observations.
func RSquared(predicted, observed []float64) float64 {
	if len(predicted) != len(observed) || len(observed) == 0 {
		panic("stats: RSquared length mismatch")
	}
	mean := Mean(observed)
	ssRes, ssTot := 0.0, 0.0
	for i, o := range observed {
		d := o - predicted[i]
		ssRes += d * d
		t := o - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (0 for fewer than two
// samples).
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(n-1))
}

// GeoMean returns the geometric mean of strictly positive xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: GeoMean of non-positive value")
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
