package sched

import (
	"context"
	"sync/atomic"
	"time"

	"phmse/internal/par"
)

// ElasticConfig sizes a TeamScheduler.
type ElasticConfig struct {
	// MaxProcs is the total processor budget shared by all jobs.
	MaxProcs int
	// MinTeam is the smallest team a job may run on (default 1). Tiny
	// jobs are granted exactly MinTeam, so MaxProcs/MinTeam of them can
	// run concurrently.
	MinTeam int
	// MaxTeam caps any single job's team width (default MaxProcs).
	MaxTeam int
	// Grain is the estimated work (in FlopModel units) worth one
	// processor: a job of cost k×Grain asks for a k-wide team before
	// clamping. Zero selects DefaultGrain.
	Grain float64
}

// DefaultGrain is the per-processor work quantum used when
// ElasticConfig.Grain is zero. A helix on the order of a thousand base
// pairs lands at a few processors under the fitted flop model, matching
// the static assignment the paper's Table 2 runs used.
const DefaultGrain = 1e8

// TeamScheduler is the cost-aware admission layer in front of a shared
// par.ProcPool. Each job declares its estimated work; the scheduler turns
// that into a desired team width via the work-estimator grain (the
// service-layer analogue of the paper's Equation 1 static processor
// assignment), then leases an elastic grant from the pool: tiny jobs
// coalesce onto MinTeam-wide teams running concurrently, large jobs get
// wide teams, and under contention grants shrink rather than queue.
type TeamScheduler struct {
	pool    *par.ProcPool
	minTeam int
	maxTeam int
	grain   float64

	grants    atomic.Int64
	coalesced atomic.Int64
	shrunk    atomic.Int64

	waitBuckets [len(waitBounds) + 1]atomic.Int64
	waitCount   atomic.Int64
	waitSumNs   atomic.Int64
}

// waitBounds are the queue-wait histogram bucket upper bounds.
var waitBounds = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
}

// WaitBucketLabels names the histogram buckets, in order, as served by
// /metrics.
var WaitBucketLabels = [...]string{
	"lt_100us", "lt_1ms", "lt_10ms", "lt_100ms", "lt_1s", "ge_1s",
}

// NewTeamScheduler builds a scheduler over a fresh processor pool.
func NewTeamScheduler(cfg ElasticConfig) *TeamScheduler {
	if cfg.MaxProcs < 1 {
		cfg.MaxProcs = 1
	}
	if cfg.MinTeam < 1 {
		cfg.MinTeam = 1
	}
	if cfg.MinTeam > cfg.MaxProcs {
		cfg.MinTeam = cfg.MaxProcs
	}
	if cfg.MaxTeam < cfg.MinTeam {
		cfg.MaxTeam = cfg.MaxProcs
	}
	if cfg.MaxTeam > cfg.MaxProcs {
		cfg.MaxTeam = cfg.MaxProcs
	}
	if cfg.Grain <= 0 {
		cfg.Grain = DefaultGrain
	}
	return &TeamScheduler{
		pool:    par.NewProcPool(cfg.MaxProcs),
		minTeam: cfg.MinTeam,
		maxTeam: cfg.MaxTeam,
		grain:   cfg.Grain,
	}
}

// MinTeam returns the configured minimum team width.
func (s *TeamScheduler) MinTeam() int { return s.minTeam }

// MaxTeam returns the configured maximum team width.
func (s *TeamScheduler) MaxTeam() int { return s.maxTeam }

// SizeFor converts an estimated job cost into a desired team width:
// floor(cost/Grain) clamped to [MinTeam, MaxTeam].
func (s *TeamScheduler) SizeFor(cost float64) int {
	k := int(cost / s.grain)
	if k < s.minTeam {
		return s.minTeam
	}
	if k > s.maxTeam {
		return s.maxTeam
	}
	return k
}

// Grant is an admitted job's share of the processor budget.
type Grant struct {
	lease *par.Lease
	// Procs is the width actually granted.
	Procs int
	// Wait is how long admission blocked.
	Wait time.Duration
	// Coalesced reports that the job was sized at MinTeam — a tiny job
	// sharing the pool with other tiny jobs rather than owning workers.
	Coalesced bool
}

// Team returns the granted processor team.
func (g *Grant) Team() *par.Team { return g.lease.Team() }

// Release returns the grant's processors to the pool. Idempotent.
func (g *Grant) Release() { g.lease.Release() }

// Acquire admits a job wanting a team of the given width (normally from
// SizeFor), blocking until at least MinTeam processors are free or ctx
// ends. The grant is elastic: under contention the team shrinks to the
// free share of the pool, never below MinTeam.
func (s *TeamScheduler) Acquire(ctx context.Context, want int) (*Grant, error) {
	if want < s.minTeam {
		want = s.minTeam
	}
	if want > s.maxTeam {
		want = s.maxTeam
	}
	start := time.Now()
	lease, err := s.pool.Acquire(ctx, want, s.minTeam)
	if err != nil {
		return nil, err
	}
	wait := time.Since(start)
	s.grants.Add(1)
	s.observeWait(wait)
	coalesced := want == s.minTeam
	if coalesced {
		s.coalesced.Add(1)
	}
	if lease.Size() < want {
		s.shrunk.Add(1)
	}
	return &Grant{lease: lease, Procs: lease.Size(), Wait: wait, Coalesced: coalesced}, nil
}

func (s *TeamScheduler) observeWait(d time.Duration) {
	i := 0
	for i < len(waitBounds) && d >= waitBounds[i] {
		i++
	}
	s.waitBuckets[i].Add(1)
	s.waitCount.Add(1)
	s.waitSumNs.Add(int64(d))
}

// Stats is a point-in-time snapshot of the scheduler, served by /metrics.
type Stats struct {
	ProcsCapacity int   `json:"procs_capacity"`
	ProcsInUse    int   `json:"procs_in_use"`
	TeamsActive   int   `json:"teams_active"`
	Waiting       int   `json:"waiting"`
	MinTeam       int   `json:"min_team"`
	MaxTeam       int   `json:"max_team"`
	Grants        int64 `json:"grants"`
	Coalesced     int64 `json:"coalesced"`
	Shrunk        int64 `json:"shrunk"`

	// QueueWait is the admission-wait histogram: bucket label → count,
	// plus total count and mean in milliseconds.
	QueueWait       map[string]int64 `json:"queue_wait"`
	QueueWaitCount  int64            `json:"queue_wait_count"`
	QueueWaitMeanMs float64          `json:"queue_wait_mean_ms"`
}

// Snapshot returns the current scheduler statistics.
func (s *TeamScheduler) Snapshot() Stats {
	st := Stats{
		ProcsCapacity: s.pool.Capacity(),
		ProcsInUse:    s.pool.InUse(),
		TeamsActive:   s.pool.Leases(),
		Waiting:       s.pool.Waiting(),
		MinTeam:       s.minTeam,
		MaxTeam:       s.maxTeam,
		Grants:        s.grants.Load(),
		Coalesced:     s.coalesced.Load(),
		Shrunk:        s.shrunk.Load(),
		QueueWait:     make(map[string]int64, len(WaitBucketLabels)),
	}
	for i := range s.waitBuckets {
		st.QueueWait[WaitBucketLabels[i]] = s.waitBuckets[i].Load()
	}
	st.QueueWaitCount = s.waitCount.Load()
	if n := st.QueueWaitCount; n > 0 {
		st.QueueWaitMeanMs = float64(s.waitSumNs.Load()) / float64(n) / 1e6
	}
	return st
}
