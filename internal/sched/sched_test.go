package sched

import (
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/hier"
	"phmse/internal/molecule"
	"phmse/internal/workest"
)

// twoArm builds a tree with two subtrees whose work differs by the given
// ratio (in constraint count).
func twoArm(t *testing.T, leftCons, rightCons int) (*hier.Node, *molecule.Problem) {
	t.Helper()
	p := &molecule.Problem{Name: "twoArm"}
	for i := 0; i < 20; i++ {
		p.Atoms = append(p.Atoms, molecule.Atom{Pos: geom.Vec3{float64(i), 0, 0}})
	}
	addCons := func(lo, hi, n int) {
		for k := 0; k < n; k++ {
			i := lo + k%(hi-lo-1)
			p.Constraints = append(p.Constraints,
				constraint.Distance{I: i, J: i + 1, Target: 1, Sigma: 1})
		}
	}
	addCons(0, 10, leftCons)
	addCons(10, 20, rightCons)
	p.Tree = &molecule.Group{
		Name: "root",
		Children: []*molecule.Group{
			{Name: "left", AtomIDs: rangeInts(0, 10)},
			{Name: "right", AtomIDs: rangeInts(10, 20)},
		},
	}
	root, err := hier.Build(p.Tree, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	return root, p
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestEstimateWorkAccumulates(t *testing.T) {
	root, _ := twoArm(t, 50, 50)
	w := EstimateWork(root, workest.FlopModel{}, 16)
	if len(w.Own) != 3 || len(w.Subtree) != 3 {
		t.Fatalf("maps sized %d/%d", len(w.Own), len(w.Subtree))
	}
	sum := w.Own[root]
	for _, c := range root.Children {
		sum += w.Subtree[c]
	}
	if w.Subtree[root] != sum {
		t.Fatalf("subtree %g != own+children %g", w.Subtree[root], sum)
	}
	for _, c := range root.Children {
		if w.Own[c] <= 0 {
			t.Fatal("leaf with constraints has zero work")
		}
	}
}

func TestAssignBalancedSplit(t *testing.T) {
	root, _ := twoArm(t, 50, 50)
	w := EstimateWork(root, workest.FlopModel{}, 16)
	plan := Assign(root, 4, w)
	if err := plan.Validate(root, 4); err != nil {
		t.Fatal(err)
	}
	groups := plan.Groups[root]
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Procs != 2 || groups[1].Procs != 2 {
		t.Fatalf("equal arms got %d/%d processors", groups[0].Procs, groups[1].Procs)
	}
}

func TestAssignWorkProportional(t *testing.T) {
	// A 3:1 work imbalance with 4 processors should give the heavy arm 3.
	root, _ := twoArm(t, 150, 50)
	w := EstimateWork(root, workest.FlopModel{}, 16)
	plan := Assign(root, 4, w)
	if err := plan.Validate(root, 4); err != nil {
		t.Fatal(err)
	}
	var heavy *hier.Node
	for _, c := range root.Children {
		if c.Name == "left" {
			heavy = c
		}
	}
	for _, g := range plan.Groups[root] {
		for _, n := range g.Nodes {
			if n == heavy && g.Procs != 3 {
				t.Fatalf("heavy arm got %d processors", g.Procs)
			}
		}
	}
}

func TestAssignOddProcessorsUneven(t *testing.T) {
	// With 3 processors and two equal subtrees, the split must be 2/1 —
	// the source of the paper's power-of-two dips.
	root, _ := twoArm(t, 50, 50)
	w := EstimateWork(root, workest.FlopModel{}, 16)
	plan := Assign(root, 3, w)
	if err := plan.Validate(root, 3); err != nil {
		t.Fatal(err)
	}
	groups := plan.Groups[root]
	sizes := []int{groups[0].Procs, groups[1].Procs}
	if !(sizes[0] == 1 && sizes[1] == 2 || sizes[0] == 2 && sizes[1] == 1) {
		t.Fatalf("split = %v", sizes)
	}
}

func TestAssignSingleProcessorNoPlan(t *testing.T) {
	root, _ := twoArm(t, 50, 50)
	w := EstimateWork(root, workest.FlopModel{}, 16)
	plan := Assign(root, 1, w)
	if len(plan.Groups) != 0 {
		t.Fatal("single processor should have a sequential (empty) plan")
	}
}

func TestAssignDeepTreeValid(t *testing.T) {
	h := molecule.Helix(8)
	root, err := hier.Build(h.Tree, h.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	w := EstimateWork(root, workest.FlopModel{}, 16)
	for np := 1; np <= 32; np++ {
		plan := Assign(root, np, w)
		if err := plan.Validate(root, np); err != nil {
			t.Fatalf("NP=%d: %v", np, err)
		}
	}
}

func TestAssignHighBranchingValid(t *testing.T) {
	r := molecule.Ribo30SWith(molecule.Ribo30SConfig{Helices: 10, Coils: 10, Proteins: 5, Seed: 3})
	root, err := hier.Build(r.Tree, r.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	w := EstimateWork(root, workest.FlopModel{}, 16)
	for _, np := range []int{2, 3, 5, 7, 16, 32} {
		plan := Assign(root, np, w)
		if err := plan.Validate(root, np); err != nil {
			t.Fatalf("NP=%d: %v", np, err)
		}
	}
}

func TestAssignMoreProcsThanChildren(t *testing.T) {
	root, _ := twoArm(t, 50, 50)
	w := EstimateWork(root, workest.FlopModel{}, 16)
	plan := Assign(root, 32, w)
	if err := plan.Validate(root, 32); err != nil {
		t.Fatal(err)
	}
	groups := plan.Groups[root]
	total := 0
	for _, g := range groups {
		total += g.Procs
	}
	if total != 32 {
		t.Fatalf("processors lost: %d", total)
	}
}

func TestZeroWorkTree(t *testing.T) {
	// A tree with no constraints must still yield a valid plan.
	p := &molecule.Problem{}
	for i := 0; i < 4; i++ {
		p.Atoms = append(p.Atoms, molecule.Atom{Pos: geom.Vec3{float64(i), 0, 0}})
	}
	p.Tree = &molecule.Group{
		Children: []*molecule.Group{
			{Name: "a", AtomIDs: []int{0, 1}},
			{Name: "b", AtomIDs: []int{2, 3}},
		},
	}
	root, err := hier.Build(p.Tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := EstimateWork(root, workest.FlopModel{}, 16)
	plan := Assign(root, 4, w)
	if err := plan.Validate(root, 4); err != nil {
		t.Fatal(err)
	}
}

func TestImbalance(t *testing.T) {
	root, _ := twoArm(t, 50, 50)
	w := EstimateWork(root, workest.FlopModel{}, 16)

	// Even split: perfectly balanced.
	even := Assign(root, 4, w)
	worst, _ := Imbalance(root, even, w)
	if worst > 1.01 {
		t.Fatalf("even split imbalance %g", worst)
	}
	// Odd split over equal arms: the 1-proc group does twice the
	// per-processor work of the 2-proc group → ratio 4/3.
	odd := Assign(root, 3, w)
	worst, byNode := Imbalance(root, odd, w)
	if worst < 1.2 || worst > 1.5 {
		t.Fatalf("odd split imbalance %g", worst)
	}
	if len(byNode) == 0 {
		t.Fatal("no per-node ratios")
	}
	// Nil plan: trivially balanced.
	if w, _ := Imbalance(root, nil, w); w != 1 {
		t.Fatal("nil plan")
	}
}

func TestImbalancePredictsHelixDip(t *testing.T) {
	h := molecule.Helix(8)
	root, err := hier.Build(h.Tree, h.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	w := EstimateWork(root, workest.FlopModel{}, 16)
	worst6, _ := Imbalance(root, Assign(root, 6, w), w)
	worst8, _ := Imbalance(root, Assign(root, 8, w), w)
	if worst6 <= worst8 {
		t.Fatalf("NP=6 imbalance %g not above NP=8 %g", worst6, worst8)
	}
}
