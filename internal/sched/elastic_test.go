package sched

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSizeForClamps(t *testing.T) {
	s := NewTeamScheduler(ElasticConfig{MaxProcs: 16, MinTeam: 1, MaxTeam: 8, Grain: 100})
	cases := []struct {
		cost float64
		want int
	}{
		{0, 1},   // below one grain → MinTeam
		{99, 1},  // still below
		{100, 1}, // exactly one grain
		{250, 2}, // floor(2.5)
		{400, 4}, // exact
		{1e9, 8}, // clamped to MaxTeam
		{-5, 1},  // nonsense cost → MinTeam
	}
	for _, c := range cases {
		if got := s.SizeFor(c.cost); got != c.want {
			t.Errorf("SizeFor(%g) = %d, want %d", c.cost, got, c.want)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	s := NewTeamScheduler(ElasticConfig{MaxProcs: 4})
	if s.MinTeam() != 1 || s.MaxTeam() != 4 {
		t.Fatalf("defaults: min %d max %d", s.MinTeam(), s.MaxTeam())
	}
	// MaxTeam above MaxProcs clamps down; MinTeam above MaxProcs clamps.
	s2 := NewTeamScheduler(ElasticConfig{MaxProcs: 4, MinTeam: 8, MaxTeam: 16})
	if s2.MinTeam() != 4 || s2.MaxTeam() != 4 {
		t.Fatalf("clamped: min %d max %d", s2.MinTeam(), s2.MaxTeam())
	}
}

func TestTinyJobsRunConcurrently(t *testing.T) {
	// 4 processors, MinTeam 1: four tiny jobs must all be admitted at
	// once — worker count bounds processors, not jobs in flight.
	s := NewTeamScheduler(ElasticConfig{MaxProcs: 4, MinTeam: 1, MaxTeam: 4})
	var grants []*Grant
	for i := 0; i < 4; i++ {
		g, err := s.Acquire(context.Background(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if g.Procs != 1 || !g.Coalesced {
			t.Fatalf("grant %d: procs %d coalesced %v", i, g.Procs, g.Coalesced)
		}
		grants = append(grants, g)
	}
	st := s.Snapshot()
	if st.TeamsActive != 4 || st.ProcsInUse != 4 || st.Coalesced != 4 {
		t.Fatalf("snapshot: %+v", st)
	}
	for _, g := range grants {
		g.Release()
	}
	if st := s.Snapshot(); st.ProcsInUse != 0 || st.TeamsActive != 0 {
		t.Fatalf("after release: %+v", st)
	}
}

func TestLargeJobShrinksUnderContention(t *testing.T) {
	s := NewTeamScheduler(ElasticConfig{MaxProcs: 4, MinTeam: 1, MaxTeam: 4})
	tiny, err := s.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := s.Acquire(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Procs != 3 || wide.Coalesced {
		t.Fatalf("wide grant: procs %d coalesced %v", wide.Procs, wide.Coalesced)
	}
	if st := s.Snapshot(); st.Shrunk != 1 {
		t.Fatalf("shrunk counter: %+v", st)
	}
	tiny.Release()
	wide.Release()
}

func TestAcquireBlocksAndCancels(t *testing.T) {
	s := NewTeamScheduler(ElasticConfig{MaxProcs: 2, MinTeam: 2, MaxTeam: 2})
	hold, err := s.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := s.Acquire(ctx, 2); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	hold.Release()
	g, err := s.Acquire(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
}

func TestQueueWaitHistogram(t *testing.T) {
	s := NewTeamScheduler(ElasticConfig{MaxProcs: 1, MinTeam: 1, MaxTeam: 1})
	hold, _ := s.Acquire(context.Background(), 1)
	done := make(chan struct{})
	go func() {
		g, err := s.Acquire(context.Background(), 1)
		if err == nil {
			g.Release()
		}
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	hold.Release()
	<-done
	st := s.Snapshot()
	if st.QueueWaitCount != 2 {
		t.Fatalf("wait count %d, want 2", st.QueueWaitCount)
	}
	// The blocked acquire waited ≥ 20ms: it must not land in the fast
	// buckets.
	if st.QueueWait["lt_100us"] != 1 {
		t.Fatalf("fast bucket: %+v", st.QueueWait)
	}
	var total int64
	for _, c := range st.QueueWait {
		total += c
	}
	if total != st.QueueWaitCount {
		t.Fatalf("bucket sum %d != count %d", total, st.QueueWaitCount)
	}
	if st.QueueWaitMeanMs <= 0 {
		t.Fatalf("mean wait %g", st.QueueWaitMeanMs)
	}
}

// Concurrent admission churn; run under -race in CI.
func TestSchedulerConcurrentChurn(t *testing.T) {
	s := NewTeamScheduler(ElasticConfig{MaxProcs: 4, MinTeam: 1, MaxTeam: 3, Grain: 10})
	var wg sync.WaitGroup
	for g := 0; g < 10; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				grant, err := s.Acquire(context.Background(), s.SizeFor(float64(g*i)))
				if err != nil {
					t.Error(err)
					return
				}
				if grant.Procs < 1 || grant.Procs > 3 {
					t.Errorf("grant width %d out of [1,3]", grant.Procs)
				}
				grant.Release()
			}
		}(g)
	}
	wg.Wait()
	st := s.Snapshot()
	if st.ProcsInUse != 0 || st.TeamsActive != 0 {
		t.Fatalf("not drained: %+v", st)
	}
	if st.Grants != 500 {
		t.Fatalf("grants %d, want 500", st.Grants)
	}
}
