// Package sched implements the paper's static processor-assignment
// heuristic (§4.3): estimate the work at every node with the fitted work
// model, accumulate subtree work bottom-up, then recursively bipartition
// each node's processors over its child subtrees so that the processor
// split matches the work split as closely as possible. The output is an
// execution plan consumed by both the real parallel solver and the
// virtual-time machine.
package sched

import (
	"sort"

	"phmse/internal/filter"
	"phmse/internal/hier"
)

// Estimator predicts the relative work of applying a node's own
// constraints. Both workest.Model (the fitted Equation 1) and
// workest.FlopModel satisfy it.
type Estimator interface {
	NodeWork(stateDim, scalarConstraints, batchDim int) float64
}

// Work holds the bottom-up work estimates for a tree.
type Work struct {
	Own     map[*hier.Node]float64 // work of the node's own constraints
	Subtree map[*hier.Node]float64 // accumulated over the subtree
}

// EstimateWork computes per-node and per-subtree work estimates (step 1 of
// the heuristic).
func EstimateWork(root *hier.Node, est Estimator, batchDim int) *Work {
	if batchDim <= 0 {
		batchDim = filter.DefaultBatchSize
	}
	w := &Work{
		Own:     make(map[*hier.Node]float64),
		Subtree: make(map[*hier.Node]float64),
	}
	var rec func(n *hier.Node) float64
	rec = func(n *hier.Node) float64 {
		scalars := 0
		for _, c := range n.Cons {
			scalars += c.Dim()
		}
		own := est.NodeWork(n.StateDim(), scalars, batchDim)
		w.Own[n] = own
		total := own
		for _, c := range n.Children {
			total += rec(c)
		}
		w.Subtree[n] = total
		return total
	}
	rec(root)
	return w
}

// Assign runs the full heuristic (steps 2–6) and returns the execution
// plan: all processors start at the root, and at every node the assigned
// processors are divided over the child subtrees by recursive best-match
// bipartition of the work.
func Assign(root *hier.Node, procs int, w *Work) *hier.ExecPlan {
	plan := hier.NewExecPlan()
	assignNode(plan, root, procs, w)
	return plan
}

func assignNode(plan *hier.ExecPlan, n *hier.Node, procs int, w *Work) {
	if len(n.Children) == 0 {
		return
	}
	if procs <= 1 || len(n.Children) == 1 {
		// Sequential children; they may still split procs further below.
		for _, c := range n.Children {
			assignNode(plan, c, procs, w)
		}
		return
	}
	// Step 3: order child subtrees by increasing work.
	children := append([]*hier.Node(nil), n.Children...)
	sort.SliceStable(children, func(i, j int) bool {
		return w.Subtree[children[i]] < w.Subtree[children[j]]
	})
	groups := partition(children, procs, w)
	plan.Groups[n] = groups
	// Step 6: repeat for the children with their assigned processors.
	for _, g := range groups {
		for _, c := range g.Nodes {
			assignNode(plan, c, g.Procs, w)
		}
	}
}

// partition implements steps 4–5: for every bipartition of the processors,
// find the split point among the (work-ordered) child subtrees dividing the
// work in a ratio closest to the processor ratio; pick the best match and
// recurse on the two halves.
func partition(children []*hier.Node, procs int, w *Work) []hier.ChildGroup {
	if procs == 1 || len(children) == 1 {
		return []hier.ChildGroup{{Nodes: children, Procs: procs}}
	}
	total := 0.0
	prefix := make([]float64, len(children)+1)
	for i, c := range children {
		total += w.Subtree[c]
		prefix[i+1] = total
	}
	if total == 0 {
		// No information: split children as evenly as possible.
		mid := len(children) / 2
		if mid == 0 {
			mid = 1
		}
		k := procs / 2
		left := partition(children[:mid], k, w)
		right := partition(children[mid:], procs-k, w)
		return append(left, right...)
	}

	bestScore := 2.0
	bestK, bestSplit := 1, 1
	for k := 1; k < procs; k++ {
		procRatio := float64(k) / float64(procs)
		for s := 1; s < len(children); s++ {
			workRatio := prefix[s] / total
			score := abs(workRatio - procRatio)
			if score < bestScore {
				bestScore, bestK, bestSplit = score, k, s
			}
		}
	}
	left := partition(children[:bestSplit], bestK, w)
	right := partition(children[bestSplit:], procs-bestK, w)
	return append(left, right...)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Imbalance predicts the load imbalance of a plan from the work estimates:
// for every node whose children run as parallel groups, the ratio of the
// slowest group's per-processor work to the mean. 1.0 is perfect balance;
// the helix's 2-equal-subtrees shape at three processors yields 4/3. The
// worst ratio over the tree correlates with the wall-clock dips of the
// static scheme (Tables 3 and 5).
func Imbalance(root *hier.Node, plan *hier.ExecPlan, w *Work) (worst float64, byNode map[*hier.Node]float64) {
	worst = 1
	byNode = map[*hier.Node]float64{}
	if plan == nil || plan.Groups == nil {
		return worst, byNode
	}
	for node, groups := range plan.Groups {
		if len(groups) < 2 {
			continue
		}
		perProc := make([]float64, len(groups))
		sum := 0.0
		for i, g := range groups {
			total := 0.0
			for _, c := range g.Nodes {
				total += w.Subtree[c]
			}
			perProc[i] = total / float64(g.Procs)
			sum += perProc[i]
		}
		mean := sum / float64(len(groups))
		if mean <= 0 {
			continue
		}
		maxPP := perProc[0]
		for _, v := range perProc[1:] {
			if v > maxPP {
				maxPP = v
			}
		}
		ratio := maxPP / mean
		byNode[node] = ratio
		if ratio > worst {
			worst = ratio
		}
	}
	return worst, byNode
}
