package filter

import (
	"math"
	"math/rand"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/par"
)

// randChain builds a loose chain of atoms with noisy distance constraints —
// a small generic workload for the update path.
func randChain(rng *rand.Rand, atoms int) ([]geom.Vec3, []constraint.Constraint) {
	pos := make([]geom.Vec3, atoms)
	for i := range pos {
		pos[i] = geom.Vec3{float64(i) * 1.5, rng.NormFloat64() * 0.2, rng.NormFloat64() * 0.2}
	}
	var cons []constraint.Constraint
	for i := 0; i+1 < atoms; i++ {
		d := pos[i].Sub(pos[i+1]).Norm()
		cons = append(cons, constraint.Distance{I: i, J: i + 1, Target: d * (1 + 0.01*rng.NormFloat64()), Sigma: 0.1})
	}
	for i := 0; i+3 < atoms; i += 2 {
		d := pos[i].Sub(pos[i+3]).Norm()
		cons = append(cons, constraint.Distance{I: i, J: i + 3, Target: d * (1 + 0.01*rng.NormFloat64()), Sigma: 0.2})
	}
	return pos, cons
}

// TestApplyLeavesCovarianceExactlySymmetric is the contract the symmetric
// dense-sparse read path (DenseMulTSymPar) depends on: after every Apply,
// C must be bitwise symmetric — no averaging tolerance — for both the
// simple and the Joseph covariance forms and for every team size.
func TestApplyLeavesCovarianceExactlySymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, joseph := range []bool{false, true} {
		for _, procs := range []int{1, 2, 4, 7} {
			pos, cons := randChain(rng, 12)
			s := NewState(pos, 4)
			u := &Updater{Team: par.NewTeam(procs), Joseph: joseph}
			batches, err := MakeBatches(cons, ident, 8)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := u.ApplyAll(s, batches); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < s.Dim(); i++ {
				for j := 0; j < i; j++ {
					if s.C.At(i, j) != s.C.At(j, i) {
						t.Fatalf("joseph=%v procs=%d: C[%d][%d]=%g != C[%d][%d]=%g",
							joseph, procs, i, j, s.C.At(i, j), j, i, s.C.At(j, i))
					}
				}
			}
		}
	}
}

// TestApplyMatchesDenseReference recomputes one batch update with the naive
// full-matrix kernels (the pre-symmetry pipeline: dense C·Hᵀ read, full
// K·Aᵀ product, averaging symmetrization) and checks the triangular path
// agrees to round-off. This pins the rewired hot path to the old semantics.
func TestApplyMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pos, cons := randChain(rng, 10)
	batches, err := MakeBatches(cons, ident, 64) // one batch
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 1 {
		t.Fatalf("expected one batch, got %d", len(batches))
	}

	// Reference: the same Figure 1 algebra with full-matrix kernels.
	ref := NewState(pos, 4)
	asm := batches[0].assemble(ref)
	n, m := ref.Dim(), len(asm.z)
	a := mat.New(n, m)
	asm.jac.DenseMulT(a, ref.C)
	ha := mat.New(m, m)
	asm.jac.MulDense(ha, a)
	sM := ha.Clone()
	for i := 0; i < m; i++ {
		sM.Set(i, i, sM.At(i, i)+asm.r[i])
	}
	if err := mat.Cholesky(sM); err != nil {
		t.Fatal(err)
	}
	k := a.Clone()
	mat.SolveCholRows(sM, k)
	nu := make([]float64, m)
	mat.SubVec(nu, asm.z, asm.h)
	dx := make([]float64, n)
	mat.MulVec(dx, k, nu)
	mat.Axpy(1, dx, ref.X)
	mat.MulSubNT(ref.C, k, a)
	ref.C.Symmetrize()

	got := NewState(pos, 4)
	u := &Updater{}
	if _, err := u.Apply(got, batches[0]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if math.Abs(got.X[i]-ref.X[i]) > 1e-10 {
			t.Fatalf("x[%d] = %g, reference %g", i, got.X[i], ref.X[i])
		}
		for j := 0; j < n; j++ {
			if math.Abs(got.C.At(i, j)-ref.C.At(i, j)) > 1e-10 {
				t.Fatalf("C[%d][%d] = %g, reference %g", i, j, got.C.At(i, j), ref.C.At(i, j))
			}
		}
	}
}

func TestWrapAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{1, 1},
		{-1, -1},
		{math.Pi, math.Pi},                    // boundary stays at π
		{-math.Pi, math.Pi},                   // −π maps to the +π end of (−π, π]
		{3 * math.Pi, math.Pi},                // odd multiples land on π
		{2 * math.Pi, 0},                      //
		{5, 5 - 2*math.Pi},                    //
		{-5, 2*math.Pi - 5},                   //
		{1e9, math.Remainder(1e9, 2*math.Pi)}, // wildly wrong innovation: O(1), no spinning
	}
	for _, c := range cases {
		got := wrapAngle(c.in)
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("wrapAngle(%g) = %g, want %g", c.in, got, c.want)
		}
		if got > math.Pi || got <= -math.Pi {
			t.Errorf("wrapAngle(%g) = %g outside (−π, π]", c.in, got)
		}
	}
	// Property: agrees with the subtraction definition on moderate inputs.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		d := rng.NormFloat64() * 10
		slow := d
		for slow > math.Pi {
			slow -= 2 * math.Pi
		}
		for slow <= -math.Pi {
			slow += 2 * math.Pi
		}
		if math.Abs(wrapAngle(d)-slow) > 1e-9 {
			t.Fatalf("wrapAngle(%g) = %g, loop gives %g", d, wrapAngle(d), slow)
		}
	}
}

// TestTeamCached verifies the nil-Team fallback is constructed once and
// reused across Apply calls.
func TestTeamCached(t *testing.T) {
	u := &Updater{}
	first := u.team()
	if first == nil || first.Size() != 1 {
		t.Fatal("fallback team not a singleton")
	}
	if u.team() != first {
		t.Fatal("fallback team reallocated per call")
	}
}
