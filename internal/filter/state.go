// Package filter implements the probabilistic structure-estimation core of
// the paper: the Gaussian state estimate (x, C), the sequential measurement
// update of Figure 1 (an iterated extended Kalman filter update applied to
// batches of constraints), the combination of independently produced updates
// of Figure 3, and the cycle-to-convergence driver.
package filter

import (
	"fmt"

	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/pool"
)

// State is the Gaussian estimate of a structure: the mean coordinate vector
// x (three entries per atom) and the full covariance matrix C. The diagonal
// of C measures the uncertainty of each coordinate; off-diagonal entries
// record the linear correlations through which previously applied
// constraints influence later updates.
type State struct {
	X []float64
	C *mat.Mat
}

// NewState builds a state from initial atom positions with an isotropic
// initial variance (Å²) on every coordinate.
func NewState(pos []geom.Vec3, variance float64) *State {
	n := 3 * len(pos)
	s := &State{X: make([]float64, n), C: mat.New(n, n)}
	for i, p := range pos {
		s.X[3*i] = p[0]
		s.X[3*i+1] = p[1]
		s.X[3*i+2] = p[2]
	}
	for d := 0; d < n; d++ {
		s.C.Set(d, d, variance)
	}
	return s
}

// GetPooledState returns a dim-dimensional state backed by pooled
// buffers: X has unspecified contents (the caller must fully overwrite
// it), C is zeroed. Release with ReleasePooledState when the state no
// longer escapes; a state that does escape (into a Solution, say) is
// simply never released.
func GetPooledState(dim int) *State {
	return &State{X: pool.Get(dim), C: pool.GetMat(dim, dim)}
}

// ReleasePooledState returns a pooled state's buffers for reuse and
// clears the state so accidental use-after-release fails loudly. Safe on
// nil.
func ReleasePooledState(s *State) {
	if s == nil {
		return
	}
	pool.Put(s.X)
	pool.PutMat(s.C)
	s.X = nil
	s.C = nil
}

// Dim returns the state dimension (three times the number of atoms).
func (s *State) Dim() int { return len(s.X) }

// Atoms returns the number of atoms represented.
func (s *State) Atoms() int { return len(s.X) / 3 }

// Pos returns the position of local atom i.
func (s *State) Pos(i int) geom.Vec3 {
	return geom.Vec3{s.X[3*i], s.X[3*i+1], s.X[3*i+2]}
}

// SetPos overwrites the position of local atom i.
func (s *State) SetPos(i int, p geom.Vec3) {
	s.X[3*i], s.X[3*i+1], s.X[3*i+2] = p[0], p[1], p[2]
}

// Positions returns all atom positions as a fresh slice.
func (s *State) Positions() []geom.Vec3 {
	out := make([]geom.Vec3, s.Atoms())
	for i := range out {
		out[i] = s.Pos(i)
	}
	return out
}

// Clone returns a deep copy.
func (s *State) Clone() *State {
	return &State{X: append([]float64(nil), s.X...), C: s.C.Clone()}
}

// ResetCovariance restores an isotropic covariance, as done at the start of
// each constraint-application cycle.
func (s *State) ResetCovariance(variance float64) {
	s.C.Zero()
	for d := 0; d < s.Dim(); d++ {
		s.C.Set(d, d, variance)
	}
}

// Variance returns the summed variance of atom i's three coordinates, a
// scalar measure of positional uncertainty.
func (s *State) Variance(i int) float64 {
	return s.C.At(3*i, 3*i) + s.C.At(3*i+1, 3*i+1) + s.C.At(3*i+2, 3*i+2)
}

// MeanVariance returns the mean per-atom positional variance.
func (s *State) MeanVariance() float64 {
	if s.Atoms() == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < s.Atoms(); i++ {
		sum += s.Variance(i)
	}
	return sum / float64(s.Atoms())
}

func (s *State) String() string {
	return fmt.Sprintf("state{%d atoms, mean var %.3g}", s.Atoms(), s.MeanVariance())
}
