package filter

import (
	"errors"
	"math"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/faultinject"
	"phmse/internal/geom"
	"phmse/internal/solvererr"
)

// chainProblem builds a well-determined 4-atom chain: anchored first atom
// plus unit distances, split into several one-constraint batches so the
// quarantine of one batch leaves plenty of information in the others.
func chainProblem() ([]geom.Vec3, []constraint.Constraint) {
	pos := []geom.Vec3{{0, 0, 0}, {1, 0, 0}, {2, 0, 0}, {3, 0, 0}}
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.01},
		constraint.Distance{I: 0, J: 1, Target: 1, Sigma: 0.05},
		constraint.Distance{I: 1, J: 2, Target: 1, Sigma: 0.05},
		constraint.Distance{I: 2, J: 3, Target: 1, Sigma: 0.05},
		constraint.Distance{I: 0, J: 2, Target: 2, Sigma: 0.05},
		constraint.Distance{I: 1, J: 3, Target: 2, Sigma: 0.05},
	}
	return pos, cons
}

// perturbed returns the chain start displaced enough that the solve has
// real work to do.
func perturbedChain() []geom.Vec3 {
	pos, _ := chainProblem()
	for i := range pos {
		pos[i][0] += 0.3 * float64(i%2)
		pos[i][1] -= 0.2
	}
	return pos
}

// A batch made of duplicated zero-noise observations has a singular
// innovation covariance; the guard's ridge escalation adds diagonal jitter
// until it factors, so the solve succeeds where the raw procedure fails.
func TestRidgeRecoversSingularBatch(t *testing.T) {
	mk := func() (*State, []*Batch) {
		s := NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}}, 25)
		dup := constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0}
		batches, err := MakeBatches([]constraint.Constraint{dup, dup}, ident, 16)
		if err != nil {
			t.Fatal(err)
		}
		return s, batches
	}

	s, batches := mk()
	raw := &Updater{}
	if _, err := raw.ApplyAll(s, batches); !errors.Is(err, solvererr.ErrIndefinite) {
		t.Fatalf("unguarded err = %v, want ErrIndefinite", err)
	}

	s, batches = mk()
	diag := &Diagnostics{}
	guarded := &Updater{Guard: true, Diag: diag}
	applied, err := guarded.ApplyAll(s, batches)
	if err != nil {
		t.Fatalf("guarded ApplyAll: %v", err)
	}
	if applied == 0 {
		t.Fatal("guarded ApplyAll applied nothing")
	}
	if !stateFinite(s) {
		t.Fatal("state not finite after ridge recovery")
	}
	if snap := diag.Snapshot(); snap.RidgeRetries == 0 {
		t.Fatal("ridge retries not recorded")
	}
}

// A single batch whose factorization is forced to fail every cycle must be
// quarantined — recorded in the diagnostics — while the remaining batches
// carry the solve to convergence.
func TestQuarantineSingleBadBatchConverges(t *testing.T) {
	faultinject.Set(&faultinject.Hooks{
		Cholesky: func(site faultinject.Site) bool { return site.Batch == 1 },
	})
	t.Cleanup(faultinject.Reset)

	_, cons := chainProblem()
	s := NewState(perturbedChain(), 100)
	res, err := Solve(s, cons, SolveOptions{BatchSize: 1, MaxCycles: 200})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	snap := res.Diag.Snapshot()
	if len(snap.Quarantined) != 1 {
		t.Fatalf("quarantined = %+v, want one record", snap.Quarantined)
	}
	q := snap.Quarantined[0]
	if q.Batch != 1 || q.Reason != ReasonIndefinite {
		t.Fatalf("record = %+v", q)
	}
	if q.FirstCycle != 1 || q.Cycles != res.Cycles {
		t.Fatalf("record cycles = %+v, solve ran %d cycles", q, res.Cycles)
	}
	if len(snap.RMSTrajectory) != res.Cycles {
		t.Fatalf("trajectory has %d entries, want %d", len(snap.RMSTrajectory), res.Cycles)
	}
}

// A batch that poisons the state with NaN must be rolled back to the
// pre-batch snapshot: the solve still converges and the rollback is
// counted.
func TestPoisonedBatchRollsBack(t *testing.T) {
	faultinject.Set(&faultinject.Hooks{
		Poison: func(site faultinject.Site) bool { return site.Batch == 2 && site.Cycle == 1 },
	})
	t.Cleanup(faultinject.Reset)

	_, cons := chainProblem()
	s := NewState(perturbedChain(), 100)
	res, err := Solve(s, cons, SolveOptions{BatchSize: 1, MaxCycles: 200})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if !stateFinite(s) {
		t.Fatal("NaN survived the rollback")
	}
	snap := res.Diag.Snapshot()
	if snap.Rollbacks != 1 {
		t.Fatalf("rollbacks = %d, want 1", snap.Rollbacks)
	}
	if len(snap.Quarantined) != 1 || snap.Quarantined[0].Reason != ReasonNonFinite {
		t.Fatalf("quarantined = %+v", snap.Quarantined)
	}
}

// When every batch fails its factorization, no progress is possible: the
// no-progress policy converts pervasive quarantine into the typed
// indefinite error instead of spinning MaxCycles doing nothing.
func TestAllBatchesIndefiniteFailsTyped(t *testing.T) {
	faultinject.Set(&faultinject.Hooks{
		Cholesky: func(faultinject.Site) bool { return true },
	})
	t.Cleanup(faultinject.Reset)

	_, cons := chainProblem()
	s := NewState(perturbedChain(), 100)
	res, err := Solve(s, cons, SolveOptions{BatchSize: 1})
	if !errors.Is(err, solvererr.ErrIndefinite) {
		t.Fatalf("err = %v, want ErrIndefinite", err)
	}
	if res.Cycles != 1 {
		t.Fatalf("spun %d cycles before giving up", res.Cycles)
	}
}

// Same policy for pervasive NaN poisoning: everything rolled back, typed
// non-finite failure.
func TestAllBatchesPoisonedFailsTyped(t *testing.T) {
	faultinject.Set(&faultinject.Hooks{
		Poison: func(faultinject.Site) bool { return true },
	})
	t.Cleanup(faultinject.Reset)

	_, cons := chainProblem()
	s := NewState(perturbedChain(), 100)
	_, err := Solve(s, cons, SolveOptions{BatchSize: 1})
	if !errors.Is(err, solvererr.ErrNonFinite) {
		t.Fatalf("err = %v, want ErrNonFinite", err)
	}
	var nf *solvererr.NonFinite
	if !errors.As(err, &nf) || nf.Cycle != 1 {
		t.Fatalf("typed error = %#v", err)
	}
	if !stateFinite(s) {
		t.Fatal("state left non-finite")
	}
}

// NoGuard restores the raw fail-fast procedure: the first injected
// factorization failure aborts the solve instead of being contained.
func TestNoGuardFailsFast(t *testing.T) {
	faultinject.Set(&faultinject.Hooks{
		Cholesky: func(site faultinject.Site) bool { return site.Batch == 1 },
	})
	t.Cleanup(faultinject.Reset)

	_, cons := chainProblem()
	s := NewState(perturbedChain(), 100)
	res, err := Solve(s, cons, SolveOptions{BatchSize: 1, NoGuard: true})
	if !errors.Is(err, solvererr.ErrIndefinite) {
		t.Fatalf("err = %v, want ErrIndefinite", err)
	}
	if len(res.Diag.Snapshot().Quarantined) != 0 {
		t.Fatal("NoGuard must not quarantine")
	}
}

// runaway is a self-inconsistent observation: it always reports a target
// three times farther out than wherever the estimate currently is, so the
// iteration has no fixed point and the RMS change grows geometrically.
type runaway struct {
	i    int
	last float64
}

func (r *runaway) Atoms() []int { return []int{r.i} }
func (r *runaway) Dim() int     { return 1 }

func (r *runaway) Eval(pos []geom.Vec3, h []float64, jac [][]float64) {
	r.last = pos[0][0]
	h[0] = pos[0][0]
	jac[0][0] = 1
}

// Observed runs after Eval in batch assembly, so last is current.
func (r *runaway) Observed(z, sigma2 []float64) {
	z[0] = 3*r.last + 1
	sigma2[0] = 1e-4
}

// The divergence watchdog must abort a runaway iteration with the typed
// error carrying the RMS trajectory, long before MaxCycles.
func TestDivergenceWatchdog(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}}, 100)
	cons := []constraint.Constraint{&runaway{i: 0}}
	res, err := Solve(s, cons, SolveOptions{MaxStep: -1, MaxCycles: 1000})
	if !errors.Is(err, solvererr.ErrDiverged) {
		t.Fatalf("err = %v, want ErrDiverged", err)
	}
	var dv *solvererr.Diverged
	if !errors.As(err, &dv) {
		t.Fatalf("not a *Diverged: %#v", err)
	}
	if dv.Grew < DefaultDivergeAfter {
		t.Fatalf("Grew = %d, want >= %d", dv.Grew, DefaultDivergeAfter)
	}
	if len(dv.History) != res.Cycles {
		t.Fatalf("history has %d entries, %d cycles ran", len(dv.History), res.Cycles)
	}
	// The tail must actually be growing.
	n := len(dv.History)
	if n < 2 || dv.History[n-1] <= dv.History[n-2] {
		t.Fatalf("history tail not growing: %v", dv.History)
	}
	if res.Cycles >= 1000 {
		t.Fatal("watchdog never fired")
	}
}

// A negative DivergeAfter disables the watchdog: the runaway iteration
// runs to MaxCycles and overflows to Inf without a diverged error.
func TestDivergenceWatchdogDisabled(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}}, 100)
	cons := []constraint.Constraint{&runaway{i: 0}}
	res, err := Solve(s, cons, SolveOptions{MaxStep: -1, MaxCycles: 30, DivergeAfter: -1, NoGuard: true})
	if errors.Is(err, solvererr.ErrDiverged) {
		t.Fatal("watchdog fired while disabled")
	}
	if res.Cycles != 30 {
		t.Fatalf("ran %d cycles, want 30", res.Cycles)
	}
}

func TestNormalizeDivergeAfter(t *testing.T) {
	cases := []struct{ in, want int }{{0, DefaultDivergeAfter}, {-1, 0}, {5, 5}}
	for _, c := range cases {
		if got := NormalizeDivergeAfter(c.in); got != c.want {
			t.Errorf("NormalizeDivergeAfter(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// The watchdog must not fire on a converging solve whose RMS change
// oscillates gently (long low-amplitude upswings are normal near a fixed
// point): only a compounding streak past DivergeGrowthFactor counts.
func TestWatchdogIgnoresGentleOscillation(t *testing.T) {
	_, cons := chainProblem()
	s := NewState(perturbedChain(), 100)
	res, err := Solve(s, cons, SolveOptions{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
}

// Nil-safety of the diagnostics sink and the unconfigured harness: the
// zero-cost production paths.
func TestNilDiagnosticsAndHooks(t *testing.T) {
	if faultinject.Installed() != nil {
		t.Fatal("hooks installed by default")
	}
	var d *Diagnostics
	d.AddRidgeRetry()
	d.AddApplied(3)
	d.AddQuarantine("n", 0, 1, ReasonIndefinite)
	d.BeginCycle()
	if st := d.EndCycle(1.5); st.Applied != 0 {
		t.Fatal("nil sink returned stats")
	}
	if d.RMSTrajectory() != nil {
		t.Fatal("nil sink has a trajectory")
	}
	if snap := d.Snapshot(); snap == nil || len(snap.Quarantined) != 0 {
		t.Fatal("nil snapshot")
	}
	if math.IsNaN(DivergeGrowthFactor) || DivergeGrowthFactor <= 1 {
		t.Fatal("growth factor must exceed 1")
	}
}
