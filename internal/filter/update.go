package filter

import (
	"errors"
	"math"
	"sync"

	"phmse/internal/faultinject"
	"phmse/internal/mat"
	"phmse/internal/par"
	"phmse/internal/pool"
	"phmse/internal/solvererr"
	"phmse/internal/trace"
)

// Updater applies constraint batches to a state estimate using the paper's
// Figure 1 procedure. The Team controls intra-update parallelism (the
// paper's intra-node axis); the Collector, when non-nil, accounts wall-clock
// time and flop counts per operation class exactly as Tables 3–6 do.
type Updater struct {
	Team *par.Team
	Rec  *trace.Collector
	// MaxStep, when positive, clamps the per-batch state update to the
	// given infinity-norm trust radius (Å). Strongly nonlinear observation
	// models (torsions, angles) can overshoot their linearization range
	// when the prior variance is large; the clamp is the standard iterated
	// EKF damping remedy. Zero disables it.
	MaxStep float64
	// Joseph selects the Joseph-form covariance update
	// C⁺ = (I−KH)·C⁻·(I−KH)ᵀ + K·R·Kᵀ, which preserves symmetry and
	// positive semidefiniteness under round-off at roughly three times the
	// m-m cost of the paper's simple form C⁺ = C⁻ − K·(H·C⁻).
	Joseph bool
	// GateSigma, when positive, applies innovation gating: any scalar
	// observation whose normalized innovation |ν|/√S exceeds the gate is
	// deweighted to near-irrelevance for this batch — the classic filter
	// defense against grossly wrong measurements. Gated observations are
	// counted in Gated; they are reconsidered at the next linearization.
	GateSigma float64
	// Gated accumulates the number of scalar observations gated out.
	Gated int
	// Guard enables numerical fault containment: a failed factorization
	// of the innovation covariance is retried with geometrically
	// escalated measurement noise (bounded ridge), and ApplyAll snapshots
	// the state before each batch so a batch that fails anyway — or
	// produces NaN/Inf — is rolled back and quarantined for the rest of
	// the cycle instead of aborting the solve. The convergence drivers
	// enable it; the zero value keeps the raw fail-fast procedure of the
	// paper (what the direct kernel benchmarks measure).
	Guard bool
	// Diag, when non-nil, accumulates containment diagnostics (ridge
	// retries, rollbacks, quarantined batches).
	Diag *Diagnostics
	// Tag labels the solve for fault-injection sites (normally the
	// problem name) and Node names the hierarchy node this updater works
	// for ("" in flat mode).
	Tag  string
	Node string
	// Cycle is the 1-based constraint-application cycle, set by the
	// convergence drivers for diagnostics and injection sites.
	Cycle int

	// batchIdx is the index of the batch currently applied, maintained by
	// ApplyAll for diagnostics and injection sites.
	batchIdx int

	// ws holds grown scratch buffers reused across batches — the Go
	// counterpart of the paper's §5 observation that careful memory
	// management of the per-node temporaries pays off. It is leased
	// lazily from a process-wide pool so the arena survives the Updater
	// itself and is reused across solves; ReleaseWorkspace returns it.
	// An Updater is not safe for concurrent use (the hierarchical solver
	// creates one per node).
	ws *workspace

	// seqTeam caches the sequential fallback team constructed when Team is
	// nil, so repeated Apply calls don't allocate a fresh one each batch.
	seqTeam *par.Team
}

// workspace is the per-updater scratch arena: backing slices grow to the
// high-water mark and are re-sliced per batch.
type workspace struct {
	aBuf, haBuf, sBuf, kBuf, wBuf []float64
	nu, dx                        []float64
	// snapX/snapC hold the pre-batch state snapshot the guard rolls back
	// to when a batch produces non-finite values.
	snapX, snapC []float64
}

// wsPool recycles workspace arenas across Updaters (and therefore across
// jobs): the hierarchical solver builds a fresh Updater per node per
// cycle, and without reuse each one regrows its m×m innovation and n×m
// gain scratch from nothing.
var wsPool = sync.Pool{New: func() any { return new(workspace) }}

// scratch returns the updater's workspace, leasing one from the pool on
// first use. Pooled arenas come back with their grown capacity intact;
// every user fully overwrites the region it re-slices.
func (u *Updater) scratch() *workspace {
	if u.ws == nil {
		if pool.Enabled() {
			u.ws = wsPool.Get().(*workspace)
		} else {
			u.ws = new(workspace)
		}
	}
	return u.ws
}

// ReleaseWorkspace returns the updater's scratch arena to the process-wide
// pool. The Updater must not be used again afterwards. Safe to call when
// no workspace was ever leased.
func (u *Updater) ReleaseWorkspace() {
	if u.ws != nil && pool.Enabled() {
		wsPool.Put(u.ws)
	}
	u.ws = nil
}

// matOf slices a zeroed r×c matrix out of a grown backing buffer.
func matOf(buf *[]float64, r, c int) *mat.Mat {
	m := matOfDirty(buf, r, c)
	for i := range m.Data {
		m.Data[i] = 0
	}
	return m
}

// matOfDirty is matOf without the zero fill, for destinations that the next
// kernel fully overwrites before reading (A, H·A, S, K and K·L below all
// are). The buffer may hold stale values from the previous batch.
func matOfDirty(buf *[]float64, r, c int) *mat.Mat {
	need := r * c
	if cap(*buf) < need {
		*buf = make([]float64, need)
	}
	*buf = (*buf)[:need]
	return &mat.Mat{Rows: r, Cols: c, Stride: c, Data: *buf}
}

func vecOf(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func (u *Updater) team() *par.Team {
	if u.Team != nil {
		return u.Team
	}
	if u.seqTeam == nil {
		u.seqTeam = par.NewTeam(1)
	}
	return u.seqTeam
}

// Apply performs one measurement update of s with the batch (Figure 1):
//
//	H  = ∂h/∂x at x⁻            (sparse, m×n)
//	A  = C⁻Hᵀ                   (d-s)
//	S  = H·A + R                (d-s)
//	S  = L·Lᵀ                   (chol)
//	K  = A·S⁻¹                  (sys: two triangular solves per row)
//	x⁺ = x⁻ + K·(z − h(x⁻))     (m-v, vec)
//	C⁺ = C⁻ − K·Aᵀ              (m-m)
//
// Gated constraints that are inactive at x⁻ are skipped. Apply reports
// (handled, err): handled is the number of scalar observations applied.
func (u *Updater) Apply(s *State, b *Batch) (int, error) {
	asm := b.assemble(s)
	if asm == nil {
		return 0, nil
	}
	team := u.team()
	ws := u.scratch()
	n := s.Dim()
	m := len(asm.z)
	nnz := float64(asm.jac.NNZ())

	// A = C·Hᵀ and H·A: the dense-sparse products (computed once; trust-
	// region retries below only redo the small m×m work). C is exactly
	// symmetric on entry — the mirrored triangular update below guarantees
	// it — so A is formed reading only the lower triangle of C.
	a := matOfDirty(&ws.aBuf, n, m)
	ha := matOfDirty(&ws.haBuf, m, m)
	u.Rec.Timed(trace.DenseSparse, 2*float64(n)*nnz+2*nnz*float64(m), func() {
		asm.jac.DenseMulTSymPar(team, a, s.C)
		asm.jac.MulDensePar(team, ha, a)
	})

	// Innovation ν = z − h(x⁻); 2π-periodic observations (torsions) wrap
	// into (−π, π] so the estimate is pulled the short way around.
	nu := vecOf(&ws.nu, m)
	u.Rec.Timed(trace.VecOp, float64(m), func() {
		mat.SubVec(nu, asm.z, asm.h)
		for i, w := range asm.wrap {
			if w {
				nu[i] = wrapAngle(nu[i])
			}
		}
	})

	// Innovation gating: deweight scalar rows whose innovation is wildly
	// inconsistent with the predicted uncertainty S_ii = (H·A)_ii + R_ii.
	if u.GateSigma > 0 {
		for i := 0; i < m; i++ {
			sii := ha.At(i, i) + asm.r[i]
			if sii <= 0 {
				continue
			}
			if nu[i]*nu[i] > u.GateSigma*u.GateSigma*sii {
				asm.r[i] *= 1e6
				u.Gated++
			}
		}
	}

	// Trust region by measurement deweighting: if the proposed step leaves
	// the MaxStep radius, the batch is reapplied with inflated measurement
	// noise R ← λ·R — a consistent Kalman update for noisier data, unlike
	// clamping the step vector, which would desynchronize the covariance
	// from the mean. λ grows geometrically until the step fits.
	sMat := matOfDirty(&ws.sBuf, m, m)
	k := matOfDirty(&ws.kBuf, n, m)
	dx := vecOf(&ws.dx, n)
	lambda := 1.0
	// Ridge recovery: when S fails to factor (indefinite under round-off,
	// or a forced injection), the batch is retried with the measurement
	// noise inflated ×ridgeFactor and a small absolute jitter added to the
	// diagonal — the inflated-noise re-application move of the annealing
	// literature. Escalation is bounded; a batch that stays indefinite is
	// reported as a typed error for the caller to quarantine.
	ridge, jitter := 1.0, 0.0
	ridgeTries := 0
	const maxRetries = 6
	for try := 0; ; try++ {
		// S = H·A + λ·ridge·R (+ jitter·I) and its factorization.
		u.Rec.Timed(trace.VecOp, float64(m), func() {
			sMat.CopyFrom(ha)
			for i := 0; i < m; i++ {
				sMat.Set(i, i, sMat.At(i, i)+lambda*ridge*asm.r[i]+jitter)
			}
		})
		var cholErr error
		if h := faultinject.Installed(); h != nil && h.Cholesky != nil && h.Cholesky(u.site()) {
			cholErr = mat.ErrNotPositiveDefinite
		} else {
			u.Rec.Timed(trace.Chol, float64(m)*float64(m)*float64(m)/3, func() {
				cholErr = mat.CholeskyPar(team, sMat)
			})
		}
		if cholErr != nil {
			if u.Guard && ridgeTries < maxRidgeRetries {
				ridgeTries++
				ridge *= ridgeFactor
				if jitter == 0 {
					// Scale the absolute jitter to the system's magnitude so
					// it moves the smallest eigenvalue meaningfully even when
					// R itself is zero or tiny.
					jitter = ridgeJitter * (1 + maxAbsDiag(ha))
				} else {
					jitter *= ridgeFactor
				}
				u.Diag.AddRidgeRetry()
				continue
			}
			return 0, &solvererr.Indefinite{Node: u.Node, Batch: u.batchIdx, Dim: m, Retries: ridgeTries, Err: cholErr}
		}
		// Filter gain K = A·S⁻¹ via triangular solves on each state row.
		u.Rec.Timed(trace.VecOp, float64(n*m), func() { k.CopyFrom(a) })
		u.Rec.Timed(trace.Solve, 2*float64(n)*float64(m)*float64(m), func() {
			mat.SolveCholRowsPar(team, sMat, k)
		})
		u.Rec.Timed(trace.MatVec, 2*float64(n)*float64(m), func() {
			mat.MulVecPar(team, dx, k, nu)
		})
		if u.MaxStep <= 0 || mat.NormInf(dx) <= u.MaxStep || try >= maxRetries {
			break
		}
		lambda *= 4
	}
	u.Rec.Timed(trace.VecOp, float64(n), func() {
		mat.Axpy(1, dx, s.X)
	})

	// Covariance update, symmetry-aware: the exact result is symmetric by
	// construction (K·Aᵀ = A·S⁻¹·Aᵀ), so only the lower triangle is
	// computed and each entry is mirrored in the same pass — half the flops
	// of the full rectangular product, and no separate symmetrization
	// sweep. The default is the paper's simple form C ← C − K·Aᵀ; Joseph
	// form expands algebraically to C − K·Aᵀ − A·Kᵀ + (K·L)(K·L)ᵀ using
	// the Cholesky factor L of the innovation covariance, since
	// K·S·Kᵀ = (K·L)(K·L)ᵀ.
	fn, fm := float64(n), float64(m)
	if u.Joseph {
		// 2nm² for K·L, n(n+1)m for the triangular (K·L)(K·L)ᵀ, 2n(n+1)m
		// for the triangular rank-2k cross terms — versus 6n²m before
		// symmetry exploitation.
		u.Rec.Timed(trace.MatMat, 2*fn*fm*fm+3*fn*(fn+1)*fm, func() {
			w := matOfDirty(&ws.wBuf, n, m)
			mat.MulPar(team, w, k, sMat) // sMat holds L after factorization
			mat.SyrkAddPar(team, s.C, w)
			// Last pass mirrors the fully accumulated lower triangle.
			mat.Syr2kPairSubPar(team, s.C, k, a)
		})
	} else {
		// n(n+1)m — versus 2n²m before symmetry exploitation.
		u.Rec.Timed(trace.MatMat, fn*(fn+1)*fm, func() {
			mat.Syr2kSubPar(team, s.C, k, a)
		})
	}
	return m, nil
}

// wrapAngle maps an angular difference into (−π, π]. math.Remainder lands in
// [−π, π] in one step, so a wildly wrong torsion innovation costs the same
// as a mild one (the old subtraction loop spun once per 2π of error).
func wrapAngle(d float64) float64 {
	r := math.Remainder(d, 2*math.Pi)
	if r <= -math.Pi {
		r += 2 * math.Pi
	}
	return r
}

// Bounds of the ridge recovery: at most maxRidgeRetries re-factorizations
// per batch, each inflating the measurement noise by ridgeFactor and the
// absolute diagonal jitter by the same factor from a ridgeJitter-scaled
// start.
const (
	maxRidgeRetries = 3
	ridgeFactor     = 10.0
	ridgeJitter     = 1e-8
)

// maxAbsDiag returns the largest |diagonal| entry of a square matrix.
func maxAbsDiag(a *mat.Mat) float64 {
	v := 0.0
	for i := 0; i < a.Rows; i++ {
		if d := math.Abs(a.At(i, i)); d > v {
			v = d
		}
	}
	return v
}

// site describes the updater's current position for fault injection.
func (u *Updater) site() faultinject.Site {
	return faultinject.Site{Tag: u.Tag, Node: u.Node, Batch: u.batchIdx, Cycle: u.Cycle}
}

// snapshot saves the state into the workspace; restore puts it back. The
// guard brackets every batch with them so a poisoned update can be undone.
func (u *Updater) snapshot(s *State) {
	ws := u.scratch()
	ws.snapX = append(ws.snapX[:0], s.X...)
	ws.snapC = append(ws.snapC[:0], s.C.Data...)
}

func (u *Updater) restore(s *State) {
	copy(s.X, u.ws.snapX)
	copy(s.C.Data, u.ws.snapC)
}

// stateFinite reports whether every entry of x and C is finite. One pass
// over O(n²) memory — small next to the O(n²m) covariance update.
func stateFinite(s *State) bool {
	for _, v := range s.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	for _, v := range s.C.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// ApplyAll applies every batch in order, returning the total number of
// scalar observations applied.
//
// With Guard set, it additionally contains per-batch numerical faults: a
// batch whose innovation covariance stays indefinite through every ridge
// retry is skipped (quarantined) for this pass, and a batch that leaves
// NaN/Inf in the state is rolled back to the pre-batch snapshot and
// likewise quarantined. Both are recorded in Diag; quarantined batches are
// retried at the next cycle's fresh linearization point. Errors other than
// these containable classes still abort.
func (u *Updater) ApplyAll(s *State, batches []*Batch) (int, error) {
	total := 0
	for bi, b := range batches {
		u.batchIdx = bi
		if u.Guard {
			u.snapshot(s)
		}
		m, err := u.Apply(s, b)
		if err != nil {
			if u.Guard && errors.Is(err, solvererr.ErrIndefinite) {
				// The factorization failed before x or C were touched, so
				// there is nothing to roll back; exclude the batch from the
				// rest of this pass.
				u.Diag.AddQuarantine(u.Node, bi, u.Cycle, ReasonIndefinite)
				continue
			}
			return total, err
		}
		if u.Guard {
			if h := faultinject.Installed(); h != nil && h.Poison != nil && h.Poison(u.site()) {
				s.X[0] = math.NaN()
			}
			if !stateFinite(s) {
				u.restore(s)
				u.Diag.AddQuarantine(u.Node, bi, u.Cycle, ReasonNonFinite)
				continue
			}
		}
		total += m
		u.Diag.AddApplied(m)
	}
	return total, nil
}
