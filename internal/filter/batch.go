package filter

import (
	"fmt"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/sparse"
)

// Batch is a group of constraints applied together in one pass of the
// update procedure (one iteration of the Figure 1 loop). The paper's
// analysis and Table 2 show that moderate batch sizes (around 16 scalar
// constraints) minimize the per-constraint cost by enabling tiled matrix
// computation while keeping the O(m³) Cholesky and O(m²n) solve terms small.
type Batch struct {
	cons  []constraint.Constraint
	slots [][]int // local atom slot of each constraint atom
	dim   int     // total scalar dimension if all constraints are active

	// Reusable assembly scratch. A Batch is therefore not safe for
	// concurrent use; the solvers apply each node's batches sequentially.
	// The assembled views returned by assemble alias this scratch and are
	// valid only until the next assemble call.
	scratch struct {
		builder  *sparse.Builder
		stateDim int
		z, r, h  []float64
		wrap     []bool
		pos      []geom.Vec3
		hBuf     []float64
		jacBuf   [][]float64
		cols     []int
		vals     []float64
	}
}

// Dim returns the maximum scalar dimension of the batch (gated constraints
// may be inactive at a particular linearization point).
func (b *Batch) Dim() int { return b.dim }

// Len returns the number of constraints in the batch.
func (b *Batch) Len() int { return len(b.cons) }

// NNZUpper returns an upper bound on the number of Jacobian non-zeros of
// the batch (three per referenced atom per scalar row), used by the
// virtual-time machine to cost the dense-sparse products.
func (b *Batch) NNZUpper() int {
	s := 0
	for i, c := range b.cons {
		s += c.Dim() * 3 * len(b.slots[i])
	}
	return s
}

// DefaultBatchSize is the scalar batch dimension found optimal in the
// paper's Table 2 experiment.
const DefaultBatchSize = 16

// MakeBatches groups constraints into batches of at most batchSize scalar
// observations (at least one constraint per batch), translating global atom
// indices to local state slots via localOf. localOf must return a valid
// slot for every atom referenced by the constraints.
func MakeBatches(cons []constraint.Constraint, localOf func(atom int) int, batchSize int) ([]*Batch, error) {
	if batchSize < 1 {
		batchSize = DefaultBatchSize
	}
	var batches []*Batch
	cur := &Batch{}
	flush := func() {
		if len(cur.cons) > 0 {
			batches = append(batches, cur)
			cur = &Batch{}
		}
	}
	for _, c := range cons {
		d := c.Dim()
		if cur.dim > 0 && cur.dim+d > batchSize {
			flush()
		}
		slots := make([]int, len(c.Atoms()))
		for k, a := range c.Atoms() {
			s := localOf(a)
			if s < 0 {
				return nil, fmt.Errorf("filter: constraint %v references atom %d outside the node", c, a)
			}
			slots[k] = s
		}
		cur.cons = append(cur.cons, c)
		cur.slots = append(cur.slots, slots)
		cur.dim += d
	}
	flush()
	return batches, nil
}

// appendZeros extends a slice by n zeroed entries.
func appendZeros(s []float64, n int) []float64 {
	for i := 0; i < n; i++ {
		s = append(s, 0)
	}
	return s
}

// assembled is the linearized form of a batch at a particular estimate.
type assembled struct {
	z     []float64      // observations
	r     []float64      // noise variances (diagonal R)
	h     []float64      // predicted measurements h(x)
	wrap  []bool         // rows whose innovation is 2π-periodic
	jac   *sparse.Matrix // Jacobian H over the local state
	nAtom int            // atoms touched (for accounting)
}

// assemble linearizes the batch at the estimate s. Gated constraints that
// report inactive are skipped, so the returned system can be smaller than
// Dim() — or empty, in which case assemble returns nil. Scratch buffers are
// reused across calls.
func (b *Batch) assemble(s *State) *assembled {
	n := s.Dim()
	sc := &b.scratch
	if sc.builder == nil || sc.stateDim != n {
		sc.builder = sparse.NewBuilder(n)
		sc.stateDim = n
	} else {
		sc.builder.Reset()
	}
	builder := sc.builder
	z, r, h, wrap := sc.z[:0], sc.r[:0], sc.h[:0], sc.wrap[:0]
	touched := 0

	// Scratch reused across constraints in the batch.
	pos := sc.pos
	hBuf := sc.hBuf
	jacBuf := sc.jacBuf

	for ci, c := range b.cons {
		slots := b.slots[ci]
		na := len(slots)
		dim := c.Dim()
		if cap(pos) < na {
			pos = make([]geom.Vec3, na)
		}
		pos = pos[:na]
		for k, slot := range slots {
			pos[k] = s.Pos(slot)
		}
		if g, ok := c.(constraint.Gated); ok && !g.Active(pos) {
			continue
		}
		if cap(hBuf) < dim {
			hBuf = make([]float64, dim)
		}
		hBuf = hBuf[:dim]
		for len(jacBuf) < dim {
			jacBuf = append(jacBuf, nil)
		}
		for d := 0; d < dim; d++ {
			if cap(jacBuf[d]) < 3*na {
				jacBuf[d] = make([]float64, 3*na)
			}
			jacBuf[d] = jacBuf[d][:3*na]
		}
		c.Eval(pos, hBuf, jacBuf[:dim])

		z = appendZeros(z, dim)
		r = appendZeros(r, dim)
		c.Observed(z[len(z)-dim:], r[len(r)-dim:])
		h = append(h, hBuf...)
		if p, ok := c.(constraint.Periodic); ok {
			wrap = append(wrap, p.PeriodicRows()...)
		} else {
			for d := 0; d < dim; d++ {
				wrap = append(wrap, false)
			}
		}
		touched += na

		// Scatter the dense per-constraint Jacobian into sparse rows over
		// the local state vector.
		for d := 0; d < dim; d++ {
			cols, vals := sc.cols[:0], sc.vals[:0]
			for k, slot := range slots {
				for cc := 0; cc < 3; cc++ {
					v := jacBuf[d][3*k+cc]
					if v != 0 {
						cols = append(cols, 3*slot+cc)
						vals = append(vals, v)
					}
				}
			}
			builder.AddRow(cols, vals)
			sc.cols, sc.vals = cols, vals
		}
	}
	sc.z, sc.r, sc.h, sc.wrap = z, r, h, wrap
	sc.pos, sc.hBuf, sc.jacBuf = pos, hBuf, jacBuf
	if len(z) == 0 {
		return nil
	}
	return &assembled{z: z, r: r, h: h, wrap: wrap, jac: builder.Build(), nAtom: touched}
}
