package filter

import "sync"

// Diagnostics accumulates fault-containment events across one solve: ridge
// retries, non-finite rollbacks, quarantined batches, and the per-cycle
// RMS-change trajectory. It is safe for concurrent use — in the
// hierarchical organization, disjoint subtrees update in parallel and
// report into one shared sink. A nil *Diagnostics is valid everywhere and
// records nothing, which is the zero-cost path for callers that do not
// care.
type Diagnostics struct {
	mu          sync.Mutex
	ridge       int
	rollbacks   int
	quarantined map[quarKey]*QuarantineRecord
	order       []quarKey
	rms         []float64

	// Per-cycle window, reset by BeginCycle and read by EndCycle: how
	// many scalar observations were applied and how many batches were
	// excluded, plus the first exclusion's identity for error reporting.
	cycle CycleStats
}

type quarKey struct {
	node  string
	batch int
}

// QuarantineRecord reports one batch that was excluded from one or more
// cycles after an unrecoverable numerical failure. A batch quarantined in
// cycle k is retried at cycle k+1's fresh linearization point; a
// persistently bad batch accumulates Cycles counts.
type QuarantineRecord struct {
	// Node is the hierarchy node owning the batch ("" in flat mode).
	Node string `json:"node,omitempty"`
	// Batch is the batch index within the node.
	Batch int `json:"batch"`
	// FirstCycle and LastCycle bracket the 1-based cycles in which the
	// batch was excluded; Cycles counts them.
	FirstCycle int `json:"first_cycle"`
	LastCycle  int `json:"last_cycle"`
	Cycles     int `json:"cycles"`
	// Reason is "indefinite" (Cholesky failed through every ridge retry)
	// or "non_finite" (the batch produced NaN/Inf and was rolled back).
	Reason string `json:"reason"`
}

// Quarantine reasons.
const (
	ReasonIndefinite = "indefinite"
	ReasonNonFinite  = "non_finite"
)

// CycleStats summarizes one cycle's containment activity.
type CycleStats struct {
	// Applied is the number of scalar observations assimilated.
	Applied int
	// Quarantined is the number of batch exclusions (indefinite or
	// rolled back) during the cycle.
	Quarantined int
	// Reason, Node and Batch identify the first exclusion of the cycle,
	// for error construction when the cycle made no progress at all.
	Reason string
	Node   string
	Batch  int
}

// DiagSnapshot is the plain-data view of the diagnostics — what
// Solution.Diagnostics exposes and what the serving layer puts on the
// wire.
type DiagSnapshot struct {
	// RidgeRetries counts innovation-covariance factorizations that were
	// re-attempted with inflated measurement noise.
	RidgeRetries int `json:"ridge_retries,omitempty"`
	// Rollbacks counts batch applications undone after producing
	// non-finite values.
	Rollbacks int `json:"rollbacks,omitempty"`
	// Quarantined lists the batches excluded from at least one cycle.
	Quarantined []QuarantineRecord `json:"quarantined,omitempty"`
	// RMSTrajectory is the RMS coordinate change of every completed
	// cycle (Å), oldest first.
	RMSTrajectory []float64 `json:"rms_trajectory,omitempty"`
}

// AddRidgeRetry records one ridge escalation of a batch's measurement
// noise after a failed factorization.
func (d *Diagnostics) AddRidgeRetry() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.ridge++
	d.mu.Unlock()
}

// AddApplied records scalar observations successfully assimilated in the
// current cycle.
func (d *Diagnostics) AddApplied(m int) {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.cycle.Applied += m
	d.mu.Unlock()
}

// AddQuarantine records the exclusion of a batch from the current cycle.
// A non_finite reason also counts a rollback (the batch had already been
// applied and was undone).
func (d *Diagnostics) AddQuarantine(node string, batch, cycle int, reason string) {
	if d == nil {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if reason == ReasonNonFinite {
		d.rollbacks++
	}
	if d.cycle.Quarantined == 0 {
		d.cycle.Reason, d.cycle.Node, d.cycle.Batch = reason, node, batch
	}
	d.cycle.Quarantined++
	if d.quarantined == nil {
		d.quarantined = make(map[quarKey]*QuarantineRecord)
	}
	key := quarKey{node, batch}
	rec := d.quarantined[key]
	if rec == nil {
		rec = &QuarantineRecord{Node: node, Batch: batch, FirstCycle: cycle, Reason: reason}
		d.quarantined[key] = rec
		d.order = append(d.order, key)
	}
	rec.LastCycle = cycle
	rec.Cycles++
}

// BeginCycle opens a new per-cycle accounting window.
func (d *Diagnostics) BeginCycle() {
	if d == nil {
		return
	}
	d.mu.Lock()
	d.cycle = CycleStats{}
	d.mu.Unlock()
}

// EndCycle closes the window: it appends the cycle's RMS change to the
// trajectory and returns the cycle's containment stats, which the
// convergence drivers use for the no-progress policy.
func (d *Diagnostics) EndCycle(rmsChange float64) CycleStats {
	if d == nil {
		return CycleStats{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.rms = append(d.rms, rmsChange)
	return d.cycle
}

// RMSTrajectory returns a copy of the per-cycle RMS-change history.
func (d *Diagnostics) RMSTrajectory() []float64 {
	if d == nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]float64(nil), d.rms...)
}

// Snapshot returns the plain-data view. Safe to call at any point; the
// returned value shares nothing with the sink.
func (d *Diagnostics) Snapshot() *DiagSnapshot {
	if d == nil {
		return &DiagSnapshot{}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	snap := &DiagSnapshot{
		RidgeRetries:  d.ridge,
		Rollbacks:     d.rollbacks,
		RMSTrajectory: append([]float64(nil), d.rms...),
	}
	for _, key := range d.order {
		snap.Quarantined = append(snap.Quarantined, *d.quarantined[key])
	}
	return snap
}
