package filter

import (
	"math"
	"sync"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/pool"
)

// triangleProblem is the 3-4-5 triangle solve used across the pooling
// tests: small enough to run in microseconds, nonlinear enough that a
// stale value leaking into a workspace would derail convergence.
func triangleProblem() ([]geom.Vec3, []constraint.Constraint) {
	init := []geom.Vec3{{0, 0, 0}, {2.5, 0.4, 0}, {0.3, 3.5, 0.2}}
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.01},
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.01},
		constraint.Distance{I: 0, J: 2, Target: 4, Sigma: 0.01},
		constraint.Distance{I: 1, J: 2, Target: 5, Sigma: 0.01},
	}
	return init, cons
}

func solveTriangleState() (*State, Result, error) {
	init, cons := triangleProblem()
	s := NewState(init, 0)
	s.ResetCovariance(100)
	res, err := Solve(s, cons, SolveOptions{Tol: 1e-8, MaxCycles: 300})
	return s, res, err
}

func solveTriangle(t *testing.T) *State {
	t.Helper()
	s, res, err := solveTriangleState()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	return s
}

// poisonPool seeds the buffer pool with NaN-filled buffers of the sizes a
// small solve leases, so any kernel that reads a pooled buffer before
// writing it produces a NaN the assertions below catch.
func poisonPool() {
	for _, n := range []int{1, 3, 9, 16, 27, 81, 128, 256, 512} {
		b := pool.Get(n)
		for i := range b {
			b[i] = math.NaN()
		}
		pool.Put(b)
	}
}

// A solve through poisoned pooled workspaces must produce bitwise the
// same estimate as one through fresh allocations: every pooled buffer is
// fully overwritten before it is read, so reuse cannot perturb a single
// bit of the arithmetic.
func TestPooledSolveBitwiseMatchesUnpooled(t *testing.T) {
	pool.SetEnabled(false)
	ref := solveTriangle(t)
	pool.SetEnabled(true)
	defer pool.SetEnabled(true)
	poisonPool()
	got := solveTriangle(t)
	for i := range ref.X {
		if got.X[i] != ref.X[i] {
			t.Fatalf("X[%d]: pooled %v != unpooled %v", i, got.X[i], ref.X[i])
		}
	}
	if !got.C.Equal(ref.C, 0) {
		t.Fatal("covariances differ bitwise between pooled and unpooled solves")
	}
}

// A workspace released with NaN-poisoned scratch must not contaminate the
// updater that leases it next.
func TestReleasedWorkspaceIsolation(t *testing.T) {
	u := &Updater{}
	ws := u.scratch()
	ws.aBuf = append(ws.aBuf[:0], math.NaN(), math.NaN(), math.NaN())
	ws.snapX = append(ws.snapX[:0], math.NaN())
	u.ReleaseWorkspace()
	if u.ws != nil {
		t.Fatal("ReleaseWorkspace left the workspace attached")
	}

	s := solveTriangle(t)
	for _, v := range s.X {
		if math.IsNaN(v) {
			t.Fatal("poisoned recycled workspace leaked into a solve")
		}
	}
	// Releasing twice (or with nothing leased) must be harmless.
	u.ReleaseWorkspace()
}

func TestPooledStateRoundTrip(t *testing.T) {
	s := GetPooledState(9)
	if len(s.X) != 9 || s.C.Rows != 9 || s.C.Cols != 9 {
		t.Fatalf("shape: X %d, C %dx%d", len(s.X), s.C.Rows, s.C.Cols)
	}
	for i, v := range s.C.Data {
		if v != 0 {
			t.Fatalf("pooled C not zeroed at %d: %v", i, v)
		}
	}
	// Poison and release: the next pooled state must still come back with
	// a zeroed covariance.
	for i := range s.X {
		s.X[i] = math.NaN()
	}
	for i := range s.C.Data {
		s.C.Data[i] = math.NaN()
	}
	ReleasePooledState(s)
	if s.X != nil || s.C != nil {
		t.Fatal("ReleasePooledState left buffers attached")
	}
	ReleasePooledState(nil) // must not panic

	s2 := GetPooledState(9)
	for i, v := range s2.C.Data {
		if v != 0 {
			t.Fatalf("recycled C not zeroed at %d: %v", i, v)
		}
	}
	ReleasePooledState(s2)
}

// Concurrent solves sharing the process-wide pools must each converge to
// the same answer as an isolated solve — two jobs never observe each
// other's workspaces. Run under -race in CI.
func TestConcurrentPooledSolvesIsolated(t *testing.T) {
	pool.SetEnabled(false)
	ref := solveTriangle(t)
	pool.SetEnabled(true)
	defer pool.SetEnabled(true)
	poisonPool()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, res, err := solveTriangleState()
				if err != nil || !res.Converged {
					t.Errorf("concurrent pooled solve failed: %v %+v", err, res)
					return
				}
				for j := range ref.X {
					if got.X[j] != ref.X[j] {
						t.Errorf("concurrent pooled solve diverged at X[%d]: %v != %v", j, got.X[j], ref.X[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
