package filter

import (
	"context"
	"math"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/par"
	"phmse/internal/solvererr"
	"phmse/internal/trace"
)

// SolveOptions configures the cycle-to-convergence driver.
type SolveOptions struct {
	// BatchSize is the scalar constraint batch dimension (default 16, the
	// optimum identified by the paper's Table 2 experiment).
	BatchSize int
	// MaxCycles caps the number of complete passes over the constraint set
	// (the paper reports 20–200 cycles to convergence; default 100).
	MaxCycles int
	// Tol stops the iteration when the RMS coordinate change over one
	// cycle falls below it (default 1e-3 Å).
	Tol float64
	// InitVar is the isotropic coordinate variance the covariance is reset
	// to at the start of every cycle (default 100 Å²).
	InitVar float64
	// Team provides intra-update parallelism (default: sequential).
	Team *par.Team
	// Rec, when non-nil, accumulates per-operation-class timing.
	Rec *trace.Collector
	// MaxStep clamps each batch's state update to this infinity-norm trust
	// radius (see Updater.MaxStep). Zero selects the default of 2 Å, which
	// keeps the iterated filter inside its linearization range; negative
	// disables the clamp (the paper's raw update).
	MaxStep float64
	// Joseph selects the numerically robust Joseph-form covariance update
	// (see Updater.Joseph).
	Joseph bool
	// GateSigma, when positive, enables innovation gating of outlier
	// observations (see Updater.GateSigma).
	GateSigma float64
	// Warm, when true, treats the supplied state as a prior posterior
	// (x, C) from an earlier solve and continues the assimilation from it:
	// the covariance is never re-initialised — the first cycle keeps the
	// state's covariance as given and every later cycle carries the
	// evolving posterior forward, so new measurements always update from
	// the existing uncertainty rather than from a diffuse prior (the
	// sequential Kalman-updating pattern). Re-introducing the diffuse
	// reset mid-solve would kick a near-converged state back onto the cold
	// iteration's slow transient; continuation keeps the steps shrinking
	// monotonically instead.
	Warm bool
	// Ctx, when non-nil, is checked between cycles: a cancelled or expired
	// context stops the iteration and Solve returns the context's error
	// together with the progress made so far.
	Ctx context.Context
	// OnCycle, when non-nil, is called after every completed cycle with the
	// 1-based cycle number and the RMS coordinate change over that cycle —
	// the hook the serving layer uses for cycle-level progress reporting.
	OnCycle func(cycle int, rmsChange float64)
	// Diag, when non-nil, is the containment-diagnostics sink to report
	// into; Solve creates one internally when nil, so Result.Diag is
	// always populated.
	Diag *Diagnostics
	// DivergeAfter is the divergence watchdog: the solve aborts with a
	// typed solvererr.Diverged (carrying the RMS trajectory) when the
	// per-cycle RMS change grows for this many consecutive cycles —
	// replacing a silent MaxCycles spin on an inconsistent problem. Zero
	// selects the default of 8; negative disables the watchdog.
	DivergeAfter int
	// NoGuard disables numerical fault containment (ridge retries,
	// non-finite rollback, batch quarantine), restoring the raw
	// fail-fast iteration.
	NoGuard bool
	// FaultTag labels the solve for fault-injection sites (normally the
	// problem name).
	FaultTag string
}

func (o SolveOptions) withDefaults() SolveOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = DefaultBatchSize
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-3
	}
	if o.InitVar <= 0 {
		o.InitVar = 100
	}
	o.MaxStep = NormalizeMaxStep(o.MaxStep)
	o.DivergeAfter = NormalizeDivergeAfter(o.DivergeAfter)
	if o.Diag == nil {
		o.Diag = &Diagnostics{}
	}
	return o
}

// DefaultDivergeAfter is the default watchdog patience: consecutive
// cycles of growing RMS change before the solve is declared diverged.
const DefaultDivergeAfter = 8

// DivergeGrowthFactor is the cumulative growth a streak of growing RMS
// changes must reach before the watchdog declares divergence. Converging
// iterations can oscillate with long gentle upswings (fractions of a
// percent per cycle); a genuine runaway grows geometrically and clears
// this factor within a few cycles.
const DivergeGrowthFactor = 10.0

// NormalizeDivergeAfter maps the option convention (0 → default, negative
// → disabled) onto the raw patience count (0 = off).
func NormalizeDivergeAfter(v int) int {
	switch {
	case v == 0:
		return DefaultDivergeAfter
	case v < 0:
		return 0
	default:
		return v
	}
}

// DefaultMaxStep is the default per-batch trust radius (Å).
const DefaultMaxStep = 2.0

// NormalizeMaxStep maps the option convention (0 → default, negative →
// disabled) onto the Updater's raw field (0 = off).
func NormalizeMaxStep(v float64) float64 {
	switch {
	case v == 0:
		return DefaultMaxStep
	case v < 0:
		return 0
	default:
		return v
	}
}

// Result summarizes a Solve run.
type Result struct {
	Cycles    int     // complete passes over the constraint set
	Converged bool    // RMS change fell below Tol before MaxCycles
	RMSChange float64 // RMS coordinate change over the final cycle
	Residual  float64 // RMS weighted constraint residual at the solution
	// Diag is the containment-diagnostics sink of the run (never nil
	// after Solve returns): ridge retries, rollbacks, quarantined
	// batches, RMS trajectory.
	Diag *Diagnostics
}

// ContainmentError builds the typed error for a cycle that quarantined
// batches but assimilated nothing — no forward progress is possible when
// every batch is numerically unusable, so the drivers abort with the
// class of the first exclusion.
func ContainmentError(st CycleStats, cycle int) error {
	if st.Reason == ReasonNonFinite {
		return &solvererr.NonFinite{Node: st.Node, Batch: st.Batch, Cycle: cycle}
	}
	return &solvererr.Indefinite{Node: st.Node, Batch: st.Batch, Retries: maxRidgeRetries}
}

// Solve estimates the structure from all constraints in the flat (single
// node) organization: because of the nonlinear measurement functions it
// re-initializes the covariance and repeats the cycle of updates until the
// estimate converges to an equilibrium point.
func Solve(s *State, cons []constraint.Constraint, opt SolveOptions) (Result, error) {
	opt = opt.withDefaults()
	batches, err := MakeBatches(cons, func(a int) int { return a }, opt.BatchSize)
	if err != nil {
		return Result{Diag: opt.Diag}, err
	}
	u := &Updater{
		Team: opt.Team, Rec: opt.Rec, MaxStep: opt.MaxStep, Joseph: opt.Joseph,
		GateSigma: opt.GateSigma, Guard: !opt.NoGuard, Diag: opt.Diag, Tag: opt.FaultTag,
	}
	defer u.ReleaseWorkspace()
	res := Result{Diag: opt.Diag}
	prev := append([]float64(nil), s.X...)
	diff := make([]float64, len(prev))
	grew := 0
	prevRMS := math.Inf(1)
	streakBase := 0.0
	for cycle := 0; cycle < opt.MaxCycles; cycle++ {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				res.Residual = WeightedResidual(s, cons)
				return res, err
			}
		}
		if !opt.Warm {
			s.ResetCovariance(opt.InitVar)
		}
		u.Cycle = cycle + 1
		opt.Diag.BeginCycle()
		applied, err := u.ApplyAll(s, batches)
		if err != nil {
			return res, err
		}
		res.Cycles = cycle + 1
		mat.SubVec(diff, s.X, prev)
		res.RMSChange = mat.RMS(diff)
		copy(prev, s.X)
		stats := opt.Diag.EndCycle(res.RMSChange)
		if opt.OnCycle != nil {
			opt.OnCycle(res.Cycles, res.RMSChange)
		}
		// No-progress policy: quarantine contains isolated bad batches,
		// but a cycle in which every batch was excluded assimilated
		// nothing and never will — fail with the class of the exclusions.
		if !opt.NoGuard && applied == 0 && stats.Quarantined > 0 {
			res.Residual = WeightedResidual(s, cons)
			return res, ContainmentError(stats, res.Cycles)
		}
		if res.RMSChange < opt.Tol {
			res.Converged = true
			break
		}
		// Divergence watchdog: K consecutive cycles of growing RMS change,
		// compounding past the growth factor, mean the iteration is running
		// away from any fixed point.
		if res.RMSChange > prevRMS {
			if grew == 0 {
				streakBase = prevRMS
			}
			grew++
		} else {
			grew = 0
		}
		prevRMS = res.RMSChange
		if opt.DivergeAfter > 0 && grew >= opt.DivergeAfter && res.RMSChange > DivergeGrowthFactor*streakBase {
			res.Residual = WeightedResidual(s, cons)
			return res, &solvererr.Diverged{Cycles: res.Cycles, Grew: grew, History: opt.Diag.RMSTrajectory()}
		}
	}
	res.Residual = WeightedResidual(s, cons)
	return res, nil
}

// WeightedResidual returns the RMS of (z − h(x))/σ over all scalar
// observations (inactive gated constraints contribute zero).
func WeightedResidual(s *State, cons []constraint.Constraint) float64 {
	sum, count := 0.0, 0
	for _, c := range cons {
		sum += residualOf(s, c)
		count += c.Dim()
	}
	if count == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(count))
}

func residualOf(s *State, c constraint.Constraint) float64 {
	atoms := c.Atoms()
	pos := make([]geom.Vec3, len(atoms))
	for k, a := range atoms {
		pos[k] = s.Pos(a)
	}
	if g, ok := c.(constraint.Gated); ok && !g.Active(pos) {
		return 0
	}
	dim := c.Dim()
	h := make([]float64, dim)
	jac := make([][]float64, dim)
	for d := range jac {
		jac[d] = make([]float64, 3*len(atoms))
	}
	c.Eval(pos, h, jac)
	z := make([]float64, dim)
	r := make([]float64, dim)
	c.Observed(z, r)
	var wrap []bool
	if p, ok := c.(constraint.Periodic); ok {
		wrap = p.PeriodicRows()
	}
	sum := 0.0
	for d := 0; d < dim; d++ {
		diff := z[d] - h[d]
		if wrap != nil && wrap[d] {
			diff = wrapAngle(diff)
		}
		if r[d] > 0 {
			sum += diff * diff / r[d]
		}
	}
	return sum
}
