package filter

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
	"phmse/internal/mat"
	"phmse/internal/par"
	"phmse/internal/trace"
)

func ident(a int) int { return a }

func TestStateBasics(t *testing.T) {
	s := NewState([]geom.Vec3{{1, 2, 3}, {4, 5, 6}}, 9)
	if s.Dim() != 6 || s.Atoms() != 2 {
		t.Fatal("shape")
	}
	if s.Pos(1) != (geom.Vec3{4, 5, 6}) {
		t.Fatal("Pos")
	}
	s.SetPos(0, geom.Vec3{7, 8, 9})
	if s.X[0] != 7 || s.X[2] != 9 {
		t.Fatal("SetPos")
	}
	if s.Variance(0) != 27 {
		t.Fatalf("Variance = %g", s.Variance(0))
	}
	if s.MeanVariance() != 27 {
		t.Fatalf("MeanVariance = %g", s.MeanVariance())
	}
	c := s.Clone()
	c.X[0] = -1
	c.C.Set(0, 0, -1)
	if s.X[0] == -1 || s.C.At(0, 0) == -1 {
		t.Fatal("Clone aliases")
	}
	pos := s.Positions()
	if pos[0] != (geom.Vec3{7, 8, 9}) {
		t.Fatal("Positions")
	}
	s.ResetCovariance(4)
	if s.C.At(0, 0) != 4 || s.C.At(0, 1) != 0 {
		t.Fatal("ResetCovariance")
	}
	if s.String() == "" {
		t.Fatal("String")
	}
}

func TestMakeBatches(t *testing.T) {
	var cons []constraint.Constraint
	for i := 0; i < 10; i++ {
		cons = append(cons, constraint.Distance{I: i, J: i + 1, Target: 1, Sigma: 0.1})
	}
	batches, err := MakeBatches(cons, ident, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("batches = %d, want 3 (4+4+2)", len(batches))
	}
	if batches[0].Dim() != 4 || batches[2].Dim() != 2 {
		t.Fatalf("dims %d %d", batches[0].Dim(), batches[2].Dim())
	}
	if batches[0].Len() != 4 {
		t.Fatalf("len %d", batches[0].Len())
	}
	// A 3-dim position constraint never splits across batches.
	mixed := []constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 1, Sigma: 1},
		constraint.Position{I: 0, Sigma: 1},
		constraint.Position{I: 1, Sigma: 1},
	}
	batches, err = MakeBatches(mixed, ident, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 2 || batches[0].Dim() != 4 || batches[1].Dim() != 3 {
		t.Fatalf("mixed batching: %d batches", len(batches))
	}
}

func TestMakeBatchesUnmappedAtom(t *testing.T) {
	cons := []constraint.Constraint{constraint.Distance{I: 0, J: 5, Target: 1, Sigma: 1}}
	_, err := MakeBatches(cons, func(a int) int {
		if a > 3 {
			return -1
		}
		return a
	}, 16)
	if err == nil {
		t.Fatal("no error for out-of-node atom")
	}
}

// For a linear Gaussian model the Kalman update must match the analytic
// Bayesian posterior: prior N(x0, v0) with observation z ~ N(x, r) gives
// posterior mean (v0·z + r·x0)/(v0+r) and variance v0·r/(v0+r).
func TestApplyLinearExact(t *testing.T) {
	s := NewState([]geom.Vec3{{1, 2, 3}}, 4) // v0 = 4 per coordinate
	u := &Updater{}
	obs := constraint.Position{I: 0, Target: geom.Vec3{2, 2, 5}, Sigma: 2} // r = 4
	batches, err := MakeBatches([]constraint.Constraint{obs}, ident, 16)
	if err != nil {
		t.Fatal(err)
	}
	handled, err := u.ApplyAll(s, batches)
	if err != nil {
		t.Fatal(err)
	}
	if handled != 3 {
		t.Fatalf("handled = %d", handled)
	}
	// Equal variances: posterior mean is the midpoint, variance halves.
	want := []float64{1.5, 2, 4}
	for c := 0; c < 3; c++ {
		if math.Abs(s.X[c]-want[c]) > 1e-10 {
			t.Fatalf("x[%d] = %g, want %g", c, s.X[c], want[c])
		}
		if math.Abs(s.C.At(c, c)-2) > 1e-10 {
			t.Fatalf("var[%d] = %g, want 2", c, s.C.At(c, c))
		}
	}
}

// The hierarchical decomposition rests on this: an observation of one
// uncorrelated part must leave the other part's estimate and covariance
// untouched, and the cross-covariance zero (paper §3).
func TestLocalUpdatePreservesUncorrelatedPart(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}, {10, 0, 0}, {14, 0, 0}}, 25)
	u := &Updater{}
	// Constraint touches only atoms 0 and 1 (coordinates 0..5).
	cons := []constraint.Constraint{constraint.Distance{I: 0, J: 1, Target: 4, Sigma: 0.5}}
	batches, err := MakeBatches(cons, ident, 16)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Clone()
	if _, err := u.ApplyAll(s, batches); err != nil {
		t.Fatal(err)
	}
	// Atoms 2 and 3 (coordinates 6..11) unchanged.
	for d := 6; d < 12; d++ {
		if s.X[d] != before.X[d] {
			t.Fatalf("coordinate %d changed", d)
		}
		for e := 6; e < 12; e++ {
			if s.C.At(d, e) != before.C.At(d, e) {
				t.Fatalf("covariance (%d,%d) changed", d, e)
			}
		}
		for e := 0; e < 6; e++ {
			if s.C.At(d, e) != 0 || s.C.At(e, d) != 0 {
				t.Fatalf("cross-covariance (%d,%d) filled in", d, e)
			}
		}
	}
	// But atoms 0,1 moved toward satisfying the distance.
	got := geom.Dist(s.Pos(0), s.Pos(1))
	if math.Abs(got-4) >= math.Abs(3-4) {
		t.Fatalf("distance did not move toward target: %g", got)
	}
}

func TestApplyReducesUncertainty(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}, {2, 0, 0}}, 25)
	before := s.MeanVariance()
	u := &Updater{}
	batches, _ := MakeBatches([]constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 2.5, Sigma: 0.1},
	}, ident, 16)
	if _, err := u.ApplyAll(s, batches); err != nil {
		t.Fatal(err)
	}
	if s.MeanVariance() >= before {
		t.Fatalf("variance did not decrease: %g → %g", before, s.MeanVariance())
	}
}

func TestApplyParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pos := make([]geom.Vec3, 12)
	for i := range pos {
		pos[i] = geom.Vec3{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
	}
	var cons []constraint.Constraint
	for i := 0; i+1 < len(pos); i++ {
		cons = append(cons, constraint.Distance{I: i, J: i + 1, Target: 3, Sigma: 0.2})
	}
	cons = append(cons, constraint.Position{I: 0, Target: pos[0], Sigma: 0.5})

	run := func(team *par.Team) *State {
		s := NewState(pos, 25)
		batches, err := MakeBatches(cons, ident, 8)
		if err != nil {
			t.Fatal(err)
		}
		u := &Updater{Team: team}
		if _, err := u.ApplyAll(s, batches); err != nil {
			t.Fatal(err)
		}
		return s
	}
	serial := run(nil)
	parallel := run(par.NewTeam(4))
	for d := range serial.X {
		if math.Abs(serial.X[d]-parallel.X[d]) > 1e-9 {
			t.Fatalf("x[%d]: %g vs %g", d, serial.X[d], parallel.X[d])
		}
	}
	if !serial.C.Equal(parallel.C, 1e-9) {
		t.Fatal("covariances differ")
	}
}

func TestSolveConvergesTriangle(t *testing.T) {
	// Anchor one atom, constrain a 3-4-5 triangle; start from a distorted
	// configuration and expect the distances to converge.
	init := []geom.Vec3{{0, 0, 0}, {2.5, 0.4, 0}, {0.3, 3.5, 0.2}}
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.01},
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.01},
		constraint.Distance{I: 0, J: 2, Target: 4, Sigma: 0.01},
		constraint.Distance{I: 1, J: 2, Target: 5, Sigma: 0.01},
	}
	s := NewState(init, 0)
	s.ResetCovariance(100)
	res, err := Solve(s, cons, SolveOptions{Tol: 1e-6, MaxCycles: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	if d := geom.Dist(s.Pos(0), s.Pos(1)); math.Abs(d-3) > 1e-3 {
		t.Fatalf("d01 = %g", d)
	}
	if d := geom.Dist(s.Pos(0), s.Pos(2)); math.Abs(d-4) > 1e-3 {
		t.Fatalf("d02 = %g", d)
	}
	if d := geom.Dist(s.Pos(1), s.Pos(2)); math.Abs(d-5) > 1e-3 {
		t.Fatalf("d12 = %g", d)
	}
	if res.Residual > 1 {
		t.Fatalf("weighted residual %g", res.Residual)
	}
}

func TestSolveRecordsTrace(t *testing.T) {
	var rec trace.Collector
	s := NewState([]geom.Vec3{{0, 0, 0}, {1, 0, 0}}, 25)
	cons := []constraint.Constraint{constraint.Distance{I: 0, J: 1, Target: 2, Sigma: 0.1}}
	if _, err := Solve(s, cons, SolveOptions{MaxCycles: 3, Rec: &rec}); err != nil {
		t.Fatal(err)
	}
	times := rec.Times()
	flops := rec.Flops()
	for _, cls := range []trace.Class{trace.DenseSparse, trace.Chol, trace.Solve, trace.MatMat, trace.MatVec, trace.VecOp} {
		if flops[cls] <= 0 {
			t.Fatalf("no flops recorded for %v", cls)
		}
		if times[cls] < 0 {
			t.Fatalf("negative time for %v", cls)
		}
	}
}

// For linear models, combining two independently updated branches must
// exactly match applying both constraint sets sequentially (Figure 3).
func TestCombineMatchesSequentialLinear(t *testing.T) {
	prior := NewState([]geom.Vec3{{0, 0, 0}, {1, 1, 1}}, 9)
	obsA := constraint.Position{I: 0, Target: geom.Vec3{1, 0, 0}, Sigma: 1}
	obsB := constraint.Position{I: 1, Target: geom.Vec3{1, 2, 1}, Sigma: 0.5}

	apply := func(s *State, cs ...constraint.Constraint) *State {
		out := s.Clone()
		batches, err := MakeBatches(cs, ident, 16)
		if err != nil {
			t.Fatal(err)
		}
		u := &Updater{}
		if _, err := u.ApplyAll(out, batches); err != nil {
			t.Fatal(err)
		}
		return out
	}

	sequential := apply(prior, obsA, obsB)
	branchA := apply(prior, obsA)
	branchB := apply(prior, obsB)
	fused, err := Combine(prior, branchA, branchB)
	if err != nil {
		t.Fatal(err)
	}
	for d := range sequential.X {
		if math.Abs(sequential.X[d]-fused.X[d]) > 1e-8 {
			t.Fatalf("x[%d]: sequential %g fused %g", d, sequential.X[d], fused.X[d])
		}
	}
	if !sequential.C.Equal(fused.C, 1e-8) {
		t.Fatal("fused covariance differs from sequential")
	}
}

func TestCombineAllTournament(t *testing.T) {
	prior := NewState([]geom.Vec3{{0, 0, 0}}, 4)
	var branches []*State
	targets := []geom.Vec3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
	for _, tgt := range targets {
		b := prior.Clone()
		batches, _ := MakeBatches([]constraint.Constraint{
			constraint.Position{I: 0, Target: tgt, Sigma: 2},
		}, ident, 16)
		u := &Updater{}
		if _, err := u.ApplyAll(b, batches); err != nil {
			t.Fatal(err)
		}
		branches = append(branches, b)
	}
	fused, err := CombineAll(prior, branches)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential application of all three observations.
	seq := prior.Clone()
	var cons []constraint.Constraint
	for _, tgt := range targets {
		cons = append(cons, constraint.Position{I: 0, Target: tgt, Sigma: 2})
	}
	batches, _ := MakeBatches(cons, ident, 16)
	u := &Updater{}
	if _, err := u.ApplyAll(seq, batches); err != nil {
		t.Fatal(err)
	}
	for d := range seq.X {
		if math.Abs(seq.X[d]-fused.X[d]) > 1e-8 {
			t.Fatalf("x[%d]: %g vs %g", d, seq.X[d], fused.X[d])
		}
	}
	// Trivial cases.
	if one, err := CombineAll(prior, branches[:1]); err != nil || one.Dim() != 3 {
		t.Fatal("single branch")
	}
	if zero, err := CombineAll(prior, nil); err != nil || zero.Dim() != 3 {
		t.Fatal("zero branches")
	}
}

func TestCombineDimensionMismatch(t *testing.T) {
	a := NewState([]geom.Vec3{{0, 0, 0}}, 1)
	b := NewState([]geom.Vec3{{0, 0, 0}, {1, 1, 1}}, 1)
	if _, err := Combine(a, a, b); err == nil {
		t.Fatal("no error for dimension mismatch")
	}
}

func TestGatedConstraintSkippedWhenInactive(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}}, 25)
	bound := constraint.DistanceBound{I: 0, J: 1, Lower: 1, Upper: 5, Sigma: 0.1}
	batches, _ := MakeBatches([]constraint.Constraint{bound}, ident, 16)
	u := &Updater{}
	handled, err := u.ApplyAll(s, batches)
	if err != nil {
		t.Fatal(err)
	}
	if handled != 0 {
		t.Fatalf("inactive bound applied %d observations", handled)
	}
	// Violated bound must act.
	s2 := NewState([]geom.Vec3{{0, 0, 0}, {9, 0, 0}}, 25)
	handled, err = u.ApplyAll(s2, batches)
	if err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Fatalf("violated bound handled = %d", handled)
	}
	if d := geom.Dist(s2.Pos(0), s2.Pos(1)); d >= 9 {
		t.Fatalf("bound did not pull atoms together: %g", d)
	}
}

func TestWeightedResidualZeroCases(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}}, 1)
	if WeightedResidual(s, nil) != 0 {
		t.Fatal("empty constraint set")
	}
	// Inactive gated constraint contributes zero.
	s2 := NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}}, 1)
	cons := []constraint.Constraint{constraint.DistanceBound{I: 0, J: 1, Lower: 1, Upper: 5, Sigma: 1}}
	if WeightedResidual(s2, cons) != 0 {
		t.Fatal("inactive bound residual")
	}
}

func TestSolveBatchSizeInsensitivity(t *testing.T) {
	// The estimate the cycles converge to should not depend strongly on
	// batch size (the paper varies m for performance, not accuracy).
	init := []geom.Vec3{{0, 0, 0}, {2.5, 0.4, 0}, {0.3, 3.5, 0.2}, {3.1, 3.8, -0.1}}
	cons := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.01},
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.02},
		constraint.Distance{I: 0, J: 2, Target: 4, Sigma: 0.02},
		constraint.Distance{I: 1, J: 2, Target: 5, Sigma: 0.02},
		constraint.Distance{I: 1, J: 3, Target: 4, Sigma: 0.02},
		constraint.Distance{I: 2, J: 3, Target: 3, Sigma: 0.02},
	}
	dists := func(batch int) []float64 {
		s := NewState(init, 0)
		if _, err := Solve(s, cons, SolveOptions{BatchSize: batch, Tol: 1e-7, MaxCycles: 300}); err != nil {
			t.Fatal(err)
		}
		return []float64{
			geom.Dist(s.Pos(0), s.Pos(1)),
			geom.Dist(s.Pos(1), s.Pos(3)),
		}
	}
	a, b := dists(1), dists(16)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 5e-3 {
			t.Fatalf("batch-size sensitivity: %v vs %v", a, b)
		}
	}
}

// Torsion innovations must wrap across the ±π branch cut: an observation
// of +175° with a prediction of −175° is a 10° error, not 350°.
func TestTorsionInnovationWraps(t *testing.T) {
	// Chain geometry with dihedral near +π: a-b-c-d with d rotated so the
	// dihedral is just below +π, observed just above −π (equivalently
	// −175°).
	target := -math.Pi + 5*math.Pi/180
	pos := []geom.Vec3{{0, 1, 0}, {0, 0, 0}, {1.5, 0, 0}, {1.5, -0.95, -0.1}}
	// Current geometry has dihedral near +175°.
	tor := constraint.Torsion{I: 0, J: 1, K: 2, L: 3, Target: target, Sigma: 0.05}
	cur := geom.Dihedral(pos[0], pos[1], pos[2], pos[3])
	if cur < 2.8 {
		t.Fatalf("test setup: dihedral %g not near +π", cur)
	}
	s := NewState(pos, 0.5)
	batches, err := MakeBatches([]constraint.Constraint{tor}, ident, 16)
	if err != nil {
		t.Fatal(err)
	}
	u := &Updater{}
	if _, err := u.ApplyAll(s, batches); err != nil {
		t.Fatal(err)
	}
	after := geom.Dihedral(s.Pos(0), s.Pos(1), s.Pos(2), s.Pos(3))
	// The estimate must move the short way: |after| stays near π, and the
	// atoms barely move (small innovation), instead of a 2π-sized jerk.
	moved := 0.0
	for i := range pos {
		moved += s.Pos(i).Sub(pos[i]).Norm()
	}
	if moved > 1.0 {
		t.Fatalf("2π jerk: atoms moved %g Å for a 10° error (dihedral %g → %g)", moved, cur, after)
	}
	// And the wrapped residual must be small-ish.
	diff := math.Abs(after - target)
	if diff > math.Pi {
		diff = 2*math.Pi - diff
	}
	if diff > math.Abs(cur-target-2*math.Pi)+0.2 && diff > 0.2 {
		t.Fatalf("dihedral did not move toward target: %g → %g (target %g)", cur, after, target)
	}
}

// Joseph-form and simple-form covariance updates agree in exact arithmetic
// for linear models; Joseph form must also keep the covariance PSD.
func TestJosephFormMatchesSimple(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pos := make([]geom.Vec3, 8)
	for i := range pos {
		pos[i] = geom.Vec3{rng.NormFloat64() * 4, rng.NormFloat64() * 4, rng.NormFloat64() * 4}
	}
	var cons []constraint.Constraint
	for i := 0; i+1 < len(pos); i++ {
		cons = append(cons, constraint.Distance{I: i, J: i + 1, Target: 3, Sigma: 0.2})
	}
	cons = append(cons, constraint.Position{I: 0, Target: pos[0], Sigma: 0.3})
	run := func(joseph bool) *State {
		s := NewState(pos, 25)
		batches, err := MakeBatches(cons, ident, 8)
		if err != nil {
			t.Fatal(err)
		}
		u := &Updater{Joseph: joseph}
		if _, err := u.ApplyAll(s, batches); err != nil {
			t.Fatal(err)
		}
		return s
	}
	simple := run(false)
	joseph := run(true)
	// Means agree to round-off (the covariance forms differ at machine
	// precision, which feeds into later batch gains).
	for d := range simple.X {
		if math.Abs(simple.X[d]-joseph.X[d]) > 1e-7 {
			t.Fatalf("x[%d]: %g vs %g", d, simple.X[d], joseph.X[d])
		}
	}
	if !simple.C.Equal(joseph.C, 1e-8) {
		t.Fatal("covariances differ beyond round-off")
	}
	// Joseph covariance is PSD: Cholesky succeeds after a tiny jitter-free
	// factorization attempt on C + 1e-12 I.
	c := joseph.C.Clone()
	for i := 0; i < c.Rows; i++ {
		c.Set(i, i, c.At(i, i)+1e-12)
	}
	if err := mat.Cholesky(c); err != nil {
		t.Fatalf("Joseph covariance not PSD: %v", err)
	}
}

// Failure injection: a batch with zero noise variance on duplicated
// observations makes the innovation covariance singular; Apply must report
// a wrapped ErrNotPositiveDefinite instead of corrupting the state.
func TestApplySingularInnovation(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}}, 25)
	dup := constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0} // zero variance
	batches, err := MakeBatches([]constraint.Constraint{dup, dup}, ident, 16)
	if err != nil {
		t.Fatal(err)
	}
	u := &Updater{}
	_, err = u.ApplyAll(s, batches)
	if !errors.Is(err, mat.ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

// Failure injection: NaN coordinates must surface as an error from the
// factorization, not silently propagate.
func TestApplyNaNState(t *testing.T) {
	s := NewState([]geom.Vec3{{0, 0, 0}, {3, 0, 0}}, 25)
	s.X[0] = math.NaN()
	batches, _ := MakeBatches([]constraint.Constraint{
		constraint.Distance{I: 0, J: 1, Target: 3, Sigma: 0.1},
	}, ident, 16)
	u := &Updater{}
	if _, err := u.ApplyAll(s, batches); err == nil {
		t.Fatal("NaN state accepted")
	}
}

// Innovation gating must protect the estimate from a grossly wrong
// observation while leaving consistent data in force.
func TestInnovationGating(t *testing.T) {
	pos := []geom.Vec3{{0, 0, 0}, {3, 0, 0}}
	good := []constraint.Constraint{
		constraint.Position{I: 0, Target: geom.Vec3{0, 0, 0}, Sigma: 0.1},
		constraint.Distance{I: 0, J: 1, Target: 3.1, Sigma: 0.1},
	}
	// An outlier claiming the atoms are 30 Å apart with high confidence.
	outlier := constraint.Distance{I: 0, J: 1, Target: 30, Sigma: 0.1}

	run := func(gate float64) (*State, int) {
		s := NewState(pos, 1)
		batches, err := MakeBatches(append(good, outlier), ident, 16)
		if err != nil {
			t.Fatal(err)
		}
		u := &Updater{GateSigma: gate}
		if _, err := u.ApplyAll(s, batches); err != nil {
			t.Fatal(err)
		}
		return s, u.Gated
	}

	ungated, n0 := run(0)
	if n0 != 0 {
		t.Fatalf("gating off but gated %d", n0)
	}
	if d := geom.Dist(ungated.Pos(0), ungated.Pos(1)); d < 5 {
		t.Fatalf("outlier should have dragged the ungated estimate: %g", d)
	}

	gated, n1 := run(5)
	if n1 != 1 {
		t.Fatalf("gated %d observations, want exactly the outlier", n1)
	}
	if d := geom.Dist(gated.Pos(0), gated.Pos(1)); math.Abs(d-3.1) > 0.2 {
		t.Fatalf("gated estimate distance %g, want ≈3.1", d)
	}
}
