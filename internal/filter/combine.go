package filter

import (
	"fmt"

	"phmse/internal/mat"
)

// Combine fuses two estimates that were produced by applying disjoint
// constraint subsets independently to the same prior (the paper's Figure 3
// procedure for coarse-grained intra-node parallelism). In information form
// the fusion is exact for linear measurement models:
//
//	C_f⁻¹   = C_a⁻¹ + C_b⁻¹ − C₀⁻¹
//	C_f⁻¹·x_f = C_a⁻¹·x_a + C_b⁻¹·x_b − C₀⁻¹·x₀
//
// The prior information is subtracted once because both branches carry it.
// As the paper's §4.1 analysis states, this costs as much as applying a
// constraint vector of dimension n, which is why the approach loses to
// parallelism within the update procedure for realistically scarce data.
func Combine(prior, a, b *State) (*State, error) {
	n := prior.Dim()
	if a.Dim() != n || b.Dim() != n {
		return nil, fmt.Errorf("filter: Combine dimension mismatch (%d, %d, %d)", n, a.Dim(), b.Dim())
	}
	ia, va, err := information(a)
	if err != nil {
		return nil, fmt.Errorf("filter: branch a: %w", err)
	}
	ib, vb, err := information(b)
	if err != nil {
		return nil, fmt.Errorf("filter: branch b: %w", err)
	}
	i0, v0, err := information(prior)
	if err != nil {
		return nil, fmt.Errorf("filter: prior: %w", err)
	}

	// Fused information matrix and vector.
	ia.Add(ib)
	ia.Sub(i0)
	mat.AddVec(va, va, vb)
	mat.SubVec(va, va, v0)

	// Recover moments: C_f = I_f⁻¹, x_f = C_f·v_f.
	l := ia.Clone()
	if err := mat.Cholesky(l); err != nil {
		return nil, fmt.Errorf("filter: fused information not positive definite: %w", err)
	}
	out := &State{X: va, C: mat.Identity(n)}
	mat.SolveCholRows(l, out.C) // rows of I solve to rows of I_f⁻¹ (symmetric)
	mat.CholeskySolve(l, out.X)
	out.C.Symmetrize()
	return out, nil
}

// information converts a moment-form state into information form, returning
// I = C⁻¹ and v = C⁻¹·x.
func information(s *State) (*mat.Mat, []float64, error) {
	n := s.Dim()
	l := s.C.Clone()
	if err := mat.Cholesky(l); err != nil {
		return nil, nil, err
	}
	info := mat.Identity(n)
	mat.SolveCholRows(l, info)
	info.Symmetrize()
	v := append([]float64(nil), s.X...)
	mat.CholeskySolve(l, v)
	return info, v, nil
}

// CombineAll fuses any number of independently updated branches pairwise in
// the tournament fashion described in §4.1.
func CombineAll(prior *State, branches []*State) (*State, error) {
	switch len(branches) {
	case 0:
		return prior.Clone(), nil
	case 1:
		return branches[0].Clone(), nil
	}
	round := append([]*State(nil), branches...)
	for len(round) > 1 {
		var next []*State
		for i := 0; i+1 < len(round); i += 2 {
			// Each pairwise fusion removes one copy of the shared prior.
			f, err := Combine(prior, round[i], round[i+1])
			if err != nil {
				return nil, err
			}
			next = append(next, f)
		}
		if len(round)%2 == 1 {
			next = append(next, round[len(round)-1])
		}
		round = next
	}
	return round[0], nil
}
