package hier

import (
	"fmt"
	"strings"
)

// Tree statistics supporting the paper's §3.1 complexity analysis: the
// average per-constraint cost of the hierarchical organization depends on
// how far down the tree the constraints can be pushed. If a node at level
// i of a depth-d binary tree gets a constant number of constraints, the
// cost is O(2^d) = O(n) per constraint (the optimistic bound); if a node
// carries as many constraints as its children combined, the advantage
// shrinks to O(n·(d+1)/d)… roughly O(n) per level, i.e. O(n·d) total (the
// pessimistic bound). LevelStats exposes where a real decomposition falls
// between the two.

// LevelStat aggregates one depth level of the tree (the root is level 0).
type LevelStat struct {
	Level    int
	Nodes    int
	Atoms    int // total atoms across the level's nodes (each counted once per node owning it in its subtree)
	Scalars  int // scalar constraints assigned at this level
	MeanDim  float64
	WorkFrac float64 // fraction of the §2 flop estimate spent at this level
}

// Stats summarizes a prepared or unprepared tree.
type Stats struct {
	Nodes      int
	Leaves     int
	Depth      int
	Scalars    int
	Levels     []LevelStat
	LeafFrac   float64 // fraction of scalar constraints at the leaves
	DeepFrac   float64 // fraction in the bottom half of the tree
	WorkTopTwo float64 // fraction of estimated work in the top two levels
}

// ComputeStats walks the tree and aggregates the per-level constraint and
// work distribution. Work is estimated with the §2 flop model: a scalar
// constraint at a node of state dimension n costs ~2n² flops.
func ComputeStats(root *Node) Stats {
	s := Stats{Depth: root.MaxDepth()}
	levelScalars := map[int]int{}
	levelNodes := map[int]int{}
	levelAtoms := map[int]int{}
	levelWork := map[int]float64{}
	totalWork := 0.0

	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		s.Nodes++
		if n.IsLeaf() {
			s.Leaves++
		}
		scalars := 0
		for _, c := range n.Cons {
			scalars += c.Dim()
		}
		s.Scalars += scalars
		levelScalars[depth] += scalars
		levelNodes[depth]++
		levelAtoms[depth] += len(n.Atoms)
		dim := float64(n.StateDim())
		w := float64(scalars) * 2 * dim * dim
		levelWork[depth] += w
		totalWork += w
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(root, 0)

	for lvl := 0; lvl < s.Depth; lvl++ {
		ls := LevelStat{
			Level:   lvl,
			Nodes:   levelNodes[lvl],
			Atoms:   levelAtoms[lvl],
			Scalars: levelScalars[lvl],
		}
		if ls.Nodes > 0 {
			ls.MeanDim = 3 * float64(ls.Atoms) / float64(ls.Nodes)
		}
		if totalWork > 0 {
			ls.WorkFrac = levelWork[lvl] / totalWork
		}
		s.Levels = append(s.Levels, ls)
	}
	if s.Scalars > 0 {
		leafScalars := 0
		deep := 0
		var walk2 func(n *Node, depth int)
		walk2 = func(n *Node, depth int) {
			scalars := 0
			for _, c := range n.Cons {
				scalars += c.Dim()
			}
			if n.IsLeaf() {
				leafScalars += scalars
			}
			if depth >= s.Depth/2 {
				deep += scalars
			}
			for _, c := range n.Children {
				walk2(c, depth+1)
			}
		}
		walk2(root, 0)
		s.LeafFrac = float64(leafScalars) / float64(s.Scalars)
		s.DeepFrac = float64(deep) / float64(s.Scalars)
	}
	for lvl := 0; lvl < 2 && lvl < len(s.Levels); lvl++ {
		s.WorkTopTwo += s.Levels[lvl].WorkFrac
	}
	return s
}

// Format renders the level table with the §3.1 interpretation.
func (s Stats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d nodes, %d leaves, depth %d, %d scalar constraints\n",
		s.Nodes, s.Leaves, s.Depth, s.Scalars)
	fmt.Fprintf(&b, "level | nodes | mean dim | scalars | work share\n")
	for _, l := range s.Levels {
		fmt.Fprintf(&b, "%5d | %5d | %8.0f | %7d | %9.1f%%\n",
			l.Level, l.Nodes, l.MeanDim, l.Scalars, 100*l.WorkFrac)
	}
	fmt.Fprintf(&b, "constraints at leaves: %.1f%%; in the bottom half: %.1f%%\n",
		100*s.LeafFrac, 100*s.DeepFrac)
	fmt.Fprintf(&b, "estimated work in the top two levels: %.1f%%\n", 100*s.WorkTopTwo)
	return b.String()
}
