package hier

import "fmt"

// ChildGroup is a set of sibling subtrees executed sequentially by one
// processor group; different groups of the same parent run concurrently.
type ChildGroup struct {
	Nodes []*Node
	Procs int
}

// ExecPlan maps each internal node to the partition of its children into
// concurrently executing processor groups, the output of the paper's §4.3
// static assignment heuristic (package sched). A nil or empty plan executes
// children sequentially with the full team — pure intra-node parallelism.
type ExecPlan struct {
	Groups map[*Node][]ChildGroup
}

// NewExecPlan returns an empty plan.
func NewExecPlan() *ExecPlan { return &ExecPlan{Groups: make(map[*Node][]ChildGroup)} }

// groupsFor returns the child groups for the node, or nil when the plan has
// no entry (sequential execution).
func (p *ExecPlan) groupsFor(n *Node) []ChildGroup {
	if p == nil || p.Groups == nil {
		return nil
	}
	return p.Groups[n]
}

// SketchGroup is one processor group of a PlanSketch entry: the child
// indices it executes sequentially and the processors it holds.
type SketchGroup struct {
	Children []int `json:"children"`
	Procs    int   `json:"procs"`
}

// SketchEntry records the group partition at one internal node, identified
// by its child-index path from the root (the root itself has an empty path).
type SketchEntry struct {
	Path   []int         `json:"path"`
	Groups []SketchGroup `json:"groups"`
}

// PlanSketch is a tree-shape-relative encoding of an ExecPlan. Where an
// ExecPlan is keyed by *Node pointers and therefore bound to one built tree,
// a sketch refers to nodes by child-index path, so it can be reapplied to
// any freshly built tree with the same shape — the mechanism behind plan
// caching across repeated solves of the same problem topology.
type PlanSketch struct {
	Procs   int           `json:"procs"` // team size the plan was computed for
	Entries []SketchEntry `json:"entries"`
}

// Sketch converts the plan into its tree-relative form. A nil plan (pure
// sequential execution) yields a nil sketch.
func (p *ExecPlan) Sketch(root *Node, procs int) *PlanSketch {
	if p == nil || len(p.Groups) == 0 {
		return nil
	}
	sk := &PlanSketch{Procs: procs}
	var rec func(n *Node, path []int)
	rec = func(n *Node, path []int) {
		if groups := p.groupsFor(n); groups != nil {
			index := make(map[*Node]int, len(n.Children))
			for i, c := range n.Children {
				index[c] = i
			}
			entry := SketchEntry{Path: append([]int(nil), path...)}
			for _, g := range groups {
				sg := SketchGroup{Procs: g.Procs}
				for _, c := range g.Nodes {
					sg.Children = append(sg.Children, index[c])
				}
				entry.Groups = append(entry.Groups, sg)
			}
			sk.Entries = append(sk.Entries, entry)
		}
		for i, c := range n.Children {
			rec(c, append(path, i))
		}
	}
	rec(root, nil)
	return sk
}

// ApplySketch rebinds a sketch to a (possibly different) tree of the same
// shape and validates the result. It returns an error when the sketch does
// not fit the tree — e.g. a path leads outside it — so callers can fall
// back to recomputing the assignment from scratch.
func ApplySketch(root *Node, sk *PlanSketch) (*ExecPlan, error) {
	if sk == nil {
		return nil, nil
	}
	plan := NewExecPlan()
	for _, entry := range sk.Entries {
		n := root
		for _, i := range entry.Path {
			if i < 0 || i >= len(n.Children) {
				return nil, fmt.Errorf("hier: sketch path %v leaves the tree at node %q", entry.Path, n.Name)
			}
			n = n.Children[i]
		}
		groups := make([]ChildGroup, 0, len(entry.Groups))
		for _, sg := range entry.Groups {
			g := ChildGroup{Procs: sg.Procs}
			for _, ci := range sg.Children {
				if ci < 0 || ci >= len(n.Children) {
					return nil, fmt.Errorf("hier: sketch group child %d out of range at node %q", ci, n.Name)
				}
				g.Nodes = append(g.Nodes, n.Children[ci])
			}
			groups = append(groups, g)
		}
		plan.Groups[n] = groups
	}
	if err := plan.Validate(root, sk.Procs); err != nil {
		return nil, err
	}
	return plan, nil
}

// Validate checks that every plan entry partitions the node's children and
// that processor counts are positive and sum to totals consistent with a
// team of size procs at the root.
func (p *ExecPlan) Validate(root *Node, procs int) error {
	if p == nil {
		return nil
	}
	var check func(n *Node, procs int) error
	check = func(n *Node, procs int) error {
		groups := p.groupsFor(n)
		if groups == nil {
			// Sequential below this point; nothing further to check.
			return nil
		}
		seen := map[*Node]bool{}
		total := 0
		for _, g := range groups {
			if g.Procs < 1 {
				return fmt.Errorf("hier: node %q: group with %d processors", n.Name, g.Procs)
			}
			if len(g.Nodes) == 0 {
				return fmt.Errorf("hier: node %q: empty child group", n.Name)
			}
			total += g.Procs
			for _, c := range g.Nodes {
				if c.parent != n {
					return fmt.Errorf("hier: node %q: group contains non-child %q", n.Name, c.Name)
				}
				if seen[c] {
					return fmt.Errorf("hier: node %q: child %q in two groups", n.Name, c.Name)
				}
				seen[c] = true
			}
		}
		if len(seen) != len(n.Children) {
			return fmt.Errorf("hier: node %q: plan covers %d of %d children", n.Name, len(seen), len(n.Children))
		}
		if total != procs {
			return fmt.Errorf("hier: node %q: groups use %d processors, team has %d", n.Name, total, procs)
		}
		for _, g := range groups {
			for _, c := range g.Nodes {
				if err := check(c, g.Procs); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return check(root, procs)
}
