package hier

import "fmt"

// ChildGroup is a set of sibling subtrees executed sequentially by one
// processor group; different groups of the same parent run concurrently.
type ChildGroup struct {
	Nodes []*Node
	Procs int
}

// ExecPlan maps each internal node to the partition of its children into
// concurrently executing processor groups, the output of the paper's §4.3
// static assignment heuristic (package sched). A nil or empty plan executes
// children sequentially with the full team — pure intra-node parallelism.
type ExecPlan struct {
	Groups map[*Node][]ChildGroup
}

// NewExecPlan returns an empty plan.
func NewExecPlan() *ExecPlan { return &ExecPlan{Groups: make(map[*Node][]ChildGroup)} }

// groupsFor returns the child groups for the node, or nil when the plan has
// no entry (sequential execution).
func (p *ExecPlan) groupsFor(n *Node) []ChildGroup {
	if p == nil || p.Groups == nil {
		return nil
	}
	return p.Groups[n]
}

// Validate checks that every plan entry partitions the node's children and
// that processor counts are positive and sum to totals consistent with a
// team of size procs at the root.
func (p *ExecPlan) Validate(root *Node, procs int) error {
	if p == nil {
		return nil
	}
	var check func(n *Node, procs int) error
	check = func(n *Node, procs int) error {
		groups := p.groupsFor(n)
		if groups == nil {
			// Sequential below this point; nothing further to check.
			return nil
		}
		seen := map[*Node]bool{}
		total := 0
		for _, g := range groups {
			if g.Procs < 1 {
				return fmt.Errorf("hier: node %q: group with %d processors", n.Name, g.Procs)
			}
			if len(g.Nodes) == 0 {
				return fmt.Errorf("hier: node %q: empty child group", n.Name)
			}
			total += g.Procs
			for _, c := range g.Nodes {
				if c.parent != n {
					return fmt.Errorf("hier: node %q: group contains non-child %q", n.Name, c.Name)
				}
				if seen[c] {
					return fmt.Errorf("hier: node %q: child %q in two groups", n.Name, c.Name)
				}
				seen[c] = true
			}
		}
		if len(seen) != len(n.Children) {
			return fmt.Errorf("hier: node %q: plan covers %d of %d children", n.Name, len(seen), len(n.Children))
		}
		if total != procs {
			return fmt.Errorf("hier: node %q: groups use %d processors, team has %d", n.Name, total, procs)
		}
		for _, g := range groups {
			for _, c := range g.Nodes {
				if err := check(c, g.Procs); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return check(root, procs)
}
