package hier

import (
	"math"
	"sync"
	"testing"

	"phmse/internal/geom"
	"phmse/internal/pool"
)

// solveChain runs the hierarchical solve of the shared chain problem from
// perturbed initial positions and returns the final positions.
func solveChain(n int) ([]geom.Vec3, error) {
	p := chainProblem(n)
	root, err := Build(p.Tree, p.Constraints)
	if err != nil {
		return nil, err
	}
	init := make([]geom.Vec3, n)
	for i, a := range p.Atoms {
		init[i] = a.Pos.Add(geom.Vec3{0.3 * float64(i%5), -0.2, 0.1 * float64(i%3)})
	}
	state, _, err := Solve(root, init, Options{Tol: 1e-8, MaxCycles: 200})
	if err != nil {
		return nil, err
	}
	out := make([]geom.Vec3, n)
	for i, a := range root.Atoms {
		out[a] = state.Pos(i)
	}
	return out, nil
}

// poisonPool seeds the buffer pool with NaN so any pooled node state or
// workspace read before being written surfaces immediately.
func poisonPool() {
	for _, n := range []int{8, 32, 64, 128, 256, 1024, 4096} {
		b := pool.Get(n)
		for i := range b {
			b[i] = math.NaN()
		}
		pool.Put(b)
	}
}

// The hierarchical solve through poisoned pooled node states must produce
// bitwise the same positions as one through fresh allocations: assemble
// fully overwrites X and relies on C coming back zeroed.
func TestHierPooledSolveBitwiseMatchesUnpooled(t *testing.T) {
	pool.SetEnabled(false)
	ref, err := solveChain(24)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetEnabled(true)
	defer pool.SetEnabled(true)
	poisonPool()
	got, err := solveChain(24)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("atom %d: pooled %v != unpooled %v", i, got[i], ref[i])
		}
	}
}

// Concurrent hierarchical solves sharing the pools must stay isolated:
// each must reproduce the reference bitwise. Run under -race in CI.
func TestHierConcurrentPooledSolvesIsolated(t *testing.T) {
	pool.SetEnabled(false)
	ref, err := solveChain(24)
	if err != nil {
		t.Fatal(err)
	}
	pool.SetEnabled(true)
	defer pool.SetEnabled(true)
	poisonPool()

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				got, err := solveChain(24)
				if err != nil {
					t.Errorf("concurrent pooled hier solve failed: %v", err)
					return
				}
				for j := range ref {
					if got[j] != ref[j] {
						t.Errorf("concurrent pooled hier solve diverged at atom %d: %v != %v", j, got[j], ref[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
