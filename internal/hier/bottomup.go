package hier

import (
	"fmt"
	"sort"

	"phmse/internal/constraint"
	"phmse/internal/molecule"
)

// GroupLeaves builds a structure hierarchy bottom-up from user-specified
// leaf groups — the paper's §5 alternative to top-down decomposition, where
// the leaves are the natural building blocks (nucleotides, residues) that
// already encapsulate interaction locality. Clusters are merged greedily,
// each step joining the pair connected by the largest number of scalar
// constraints, so that as many constraints as possible become applicable
// low in the tree.
func GroupLeaves(leaves []*molecule.Group, cons []constraint.Constraint) *molecule.Group {
	switch len(leaves) {
	case 0:
		return &molecule.Group{Name: "empty"}
	case 1:
		return leaves[0]
	}

	// Active clusters; each starts as one leaf.
	clusters := make([]*molecule.Group, len(leaves))
	copy(clusters, leaves)
	alive := make([]bool, len(leaves))
	clusterOf := map[int]int{} // atom → cluster index
	for ci, l := range leaves {
		alive[ci] = true
		for _, a := range l.Atoms() {
			clusterOf[a] = ci
		}
	}

	// A constraint is "pending" while its atoms span more than one cluster.
	type pending struct {
		dim      int
		clusters map[int]bool
	}
	var pend []*pending
	for _, c := range cons {
		p := &pending{dim: c.Dim(), clusters: map[int]bool{}}
		for _, a := range c.Atoms() {
			if ci, ok := clusterOf[a]; ok {
				p.clusters[ci] = true
			}
		}
		if len(p.clusters) > 1 {
			pend = append(pend, p)
		}
	}

	merges := 0
	for remaining := len(leaves); remaining > 1; remaining-- {
		// Pairwise affinity: scalar dimension of constraints that would
		// become fully contained by merging exactly that pair.
		type key [2]int
		weight := map[key]int{}
		for _, p := range pend {
			if len(p.clusters) != 2 {
				continue
			}
			var pair []int
			for ci := range p.clusters {
				pair = append(pair, ci)
			}
			sort.Ints(pair)
			weight[key{pair[0], pair[1]}] += p.dim
		}
		// Best pair; deterministic tie-break on indices. When no pair is
		// directly connected, merge the two smallest clusters.
		bestA, bestB, bestW := -1, -1, -1
		var keys []key
		for k := range weight {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			if weight[k] > bestW {
				bestA, bestB, bestW = k[0], k[1], weight[k]
			}
		}
		if bestA < 0 {
			var aliveIdx []int
			for ci, ok := range alive {
				if ok {
					aliveIdx = append(aliveIdx, ci)
				}
			}
			sort.Slice(aliveIdx, func(i, j int) bool {
				return len(clusters[aliveIdx[i]].Atoms()) < len(clusters[aliveIdx[j]].Atoms())
			})
			bestA, bestB = aliveIdx[0], aliveIdx[1]
			if bestA > bestB {
				bestA, bestB = bestB, bestA
			}
		}

		// Merge B into a new parent cluster stored at slot A.
		merges++
		parent := &molecule.Group{
			Name:     fmt.Sprintf("merge%d", merges),
			Children: []*molecule.Group{clusters[bestA], clusters[bestB]},
		}
		clusters[bestA] = parent
		alive[bestB] = false
		for _, p := range pend {
			if p.clusters[bestB] {
				delete(p.clusters, bestB)
				p.clusters[bestA] = true
			}
		}
		// Drop now-internal constraints.
		var still []*pending
		for _, p := range pend {
			if len(p.clusters) > 1 {
				still = append(still, p)
			}
		}
		pend = still
	}
	for ci, ok := range alive {
		if ok {
			return clusters[ci]
		}
	}
	return nil // unreachable: one cluster always survives
}
