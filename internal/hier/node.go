// Package hier implements the paper's hierarchical decomposition (§3): the
// structure tree, the assignment of every constraint to the smallest node
// wholly containing it, the post-order update schedule, and the parallel
// execution of disjoint subtrees by processor groups (§4.2). It also
// provides the automatic decomposition methods sketched in §5: recursive
// bisection of a flat specification and constraint-graph partitioning.
package hier

import (
	"fmt"
	"sort"

	"phmse/internal/constraint"
	"phmse/internal/filter"
	"phmse/internal/molecule"
)

// Node is one node of the structure hierarchy. Its state vector is the
// concatenation of its children's state vectors followed by any atoms it
// owns directly, so a child's posterior estimate maps onto a contiguous
// block of the parent's state.
type Node struct {
	Name     string
	Children []*Node
	Direct   []int // atoms owned directly (all of them, for a leaf)
	Atoms    []int // subtree atoms: children's blocks in order, then Direct
	Cons     []constraint.Constraint

	parent   *Node
	childOf  map[int]int // atom → child index (for constraint assignment)
	localIdx map[int]int // atom → local state slot
	batches  []*filter.Batch
}

// Build mirrors a molecule.Group tree into a Node tree and assigns every
// constraint to the lowest node that contains all of its atoms. It returns
// an error if a constraint references an atom outside the tree or an atom
// appears in two leaves.
func Build(root *molecule.Group, cons []constraint.Constraint) (*Node, error) {
	node, err := fromGroup(root, map[int]bool{})
	if err != nil {
		return nil, err
	}
	for _, c := range cons {
		if err := node.assign(c); err != nil {
			return nil, err
		}
	}
	return node, nil
}

func fromGroup(g *molecule.Group, seen map[int]bool) (*Node, error) {
	n := &Node{Name: g.Name, Direct: append([]int(nil), g.AtomIDs...)}
	sort.Ints(n.Direct)
	for _, a := range n.Direct {
		if seen[a] {
			return nil, fmt.Errorf("hier: atom %d owned by two groups", a)
		}
		seen[a] = true
	}
	n.childOf = make(map[int]int)
	for ci, cg := range g.Children {
		child, err := fromGroup(cg, seen)
		if err != nil {
			return nil, err
		}
		child.parent = n
		n.Children = append(n.Children, child)
		for _, a := range child.Atoms {
			n.childOf[a] = ci
		}
		n.Atoms = append(n.Atoms, child.Atoms...)
	}
	n.Atoms = append(n.Atoms, n.Direct...)
	n.localIdx = make(map[int]int, len(n.Atoms))
	for i, a := range n.Atoms {
		n.localIdx[a] = i
	}
	if len(n.Atoms) == 0 {
		return nil, fmt.Errorf("hier: group %q has no atoms", g.Name)
	}
	return n, nil
}

// assign pushes the constraint to the lowest node containing all its atoms.
func (n *Node) assign(c constraint.Constraint) error {
	atoms := c.Atoms()
	node := n
descend:
	for {
		child := -1
		for i, a := range atoms {
			ci, ok := node.childOf[a]
			if !ok {
				// Atom owned directly by this node (or missing entirely).
				if _, here := node.localIdx[a]; !here {
					return fmt.Errorf("hier: constraint %v references atom %d outside the tree", c, a)
				}
				break descend
			}
			if i == 0 {
				child = ci
			} else if ci != child {
				break descend // atoms span two children: it belongs here
			}
		}
		node = node.Children[child]
	}
	// Validate remaining atoms exist in the subtree.
	for _, a := range atoms {
		if _, ok := node.localIdx[a]; !ok {
			return fmt.Errorf("hier: constraint %v references atom %d outside the tree", c, a)
		}
	}
	node.Cons = append(node.Cons, c)
	return nil
}

// Prepare builds the per-node constraint batches for the given batch size.
// It must be called (once) before Solve or a virtual-machine run.
func (n *Node) Prepare(batchSize int) error {
	local := n.localIdx
	batches, err := filter.MakeBatches(n.Cons, func(a int) int {
		if s, ok := local[a]; ok {
			return s
		}
		return -1
	}, batchSize)
	if err != nil {
		return fmt.Errorf("node %q: %w", n.Name, err)
	}
	n.batches = batches
	for _, c := range n.Children {
		if err := c.Prepare(batchSize); err != nil {
			return err
		}
	}
	return nil
}

// Batches returns the prepared constraint batches of this node.
func (n *Node) Batches() []*filter.Batch { return n.batches }

// StateDim returns the node's state dimension (3 × subtree atoms).
func (n *Node) StateDim() int { return 3 * len(n.Atoms) }

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Parent returns the node's parent (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// Walk visits the subtree in pre-order.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// Count returns the number of nodes in the subtree.
func (n *Node) Count() int {
	total := 0
	n.Walk(func(*Node) { total++ })
	return total
}

// ScalarConstraints returns the total scalar constraint dimension assigned
// in the subtree.
func (n *Node) ScalarConstraints() int {
	total := 0
	n.Walk(func(m *Node) {
		for _, c := range m.Cons {
			total += c.Dim()
		}
	})
	return total
}

// MaxDepth returns the height of the subtree (a leaf is 1).
func (n *Node) MaxDepth() int {
	d := 0
	for _, c := range n.Children {
		if cd := c.MaxDepth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

func (n *Node) String() string {
	kind := "node"
	if n.IsLeaf() {
		kind = "leaf"
	}
	return fmt.Sprintf("%s %q: %d atoms, %d constraints, %d children",
		kind, n.Name, len(n.Atoms), len(n.Cons), len(n.Children))
}

// Dump renders the subtree as an indented outline (used to reproduce the
// paper's Figure 2 and Figure 4 decomposition diagrams in text form).
func (n *Node) Dump() string {
	out := ""
	var rec func(m *Node, depth int)
	rec = func(m *Node, depth int) {
		for i := 0; i < depth; i++ {
			out += "  "
		}
		scalar := 0
		for _, c := range m.Cons {
			scalar += c.Dim()
		}
		out += fmt.Sprintf("%s (%d atoms, %d constraints)\n", m.Name, len(m.Atoms), scalar)
		for _, c := range m.Children {
			rec(c, depth+1)
		}
	}
	rec(n, 0)
	return out
}
