package hier

import (
	"fmt"
	"sort"

	"phmse/internal/constraint"
	"phmse/internal/molecule"
)

// Automatic structure decomposition (§5 of the paper). The paper ships a
// "simple and non-optimal recursive bisection" and identifies
// constraint-graph partitioning as the proper solution; both are provided
// here so the ablation benchmarks can compare them against the
// domain-knowledge decomposition built by the molecule generators.

// RecursiveBisection builds a binary grouping of atoms [0, n) by splitting
// the index range in half until pieces have at most leafSize atoms. This is
// the baseline decomposition the paper mentions: it ignores the constraint
// graph entirely.
func RecursiveBisection(nAtoms, leafSize int) *molecule.Group {
	if leafSize < 1 {
		leafSize = 1
	}
	var rec func(lo, hi int) *molecule.Group
	rec = func(lo, hi int) *molecule.Group {
		g := &molecule.Group{Name: fmt.Sprintf("atoms[%d,%d)", lo, hi)}
		if hi-lo <= leafSize {
			for a := lo; a < hi; a++ {
				g.AtomIDs = append(g.AtomIDs, a)
			}
			return g
		}
		mid := lo + (hi-lo)/2
		g.Children = []*molecule.Group{rec(lo, mid), rec(mid, hi)}
		return g
	}
	return rec(0, nAtoms)
}

// GraphPartition builds a hierarchical grouping of atoms [0, n) by
// recursive two-way partitioning of the constraint graph: atoms are graph
// nodes, constraints contribute edges between every pair of their atoms,
// and each split minimizes the edge cut with a greedy BFS seed followed by
// Kernighan–Lin style refinement. Minimizing the cut maximizes the number
// of constraints assignable deep in the tree — the property §3.1 shows
// drives the hierarchical speedup.
func GraphPartition(nAtoms int, cons []constraint.Constraint, leafSize int) *molecule.Group {
	if leafSize < 1 {
		leafSize = 1
	}
	adj := buildAdjacency(nAtoms, cons)
	atoms := make([]int, nAtoms)
	for i := range atoms {
		atoms[i] = i
	}
	var rec func(ids []int, name string) *molecule.Group
	rec = func(ids []int, name string) *molecule.Group {
		g := &molecule.Group{Name: name}
		if len(ids) <= leafSize {
			g.AtomIDs = append([]int(nil), ids...)
			return g
		}
		left, right := bipartition(ids, adj)
		g.Children = []*molecule.Group{
			rec(left, name+".l"),
			rec(right, name+".r"),
		}
		return g
	}
	return rec(atoms, "gp")
}

// edge is a weighted adjacency entry.
type edge struct {
	to     int
	weight int
}

func buildAdjacency(nAtoms int, cons []constraint.Constraint) [][]edge {
	type key struct{ a, b int }
	weights := make(map[key]int)
	for _, c := range cons {
		atoms := c.Atoms()
		for i := 0; i < len(atoms); i++ {
			for j := i + 1; j < len(atoms); j++ {
				a, b := atoms[i], atoms[j]
				if a > b {
					a, b = b, a
				}
				if a >= 0 && b < nAtoms {
					weights[key{a, b}]++
				}
			}
		}
	}
	adj := make([][]edge, nAtoms)
	for k, w := range weights {
		adj[k.a] = append(adj[k.a], edge{k.b, w})
		adj[k.b] = append(adj[k.b], edge{k.a, w})
	}
	return adj
}

// bipartition splits ids into two nearly equal halves with a small edge
// cut: a BFS from a peripheral seed grows one side to half the atoms, then
// boundary swaps that reduce the cut are applied greedily.
func bipartition(ids []int, adj [][]edge) (left, right []int) {
	inSet := make(map[int]bool, len(ids))
	for _, a := range ids {
		inSet[a] = true
	}
	half := len(ids) / 2

	// BFS growth from the lowest-degree atom (a heuristic peripheral seed).
	seed := ids[0]
	best := 1 << 30
	for _, a := range ids {
		deg := 0
		for _, e := range adj[a] {
			if inSet[e.to] {
				deg += e.weight
			}
		}
		if deg < best {
			best, seed = deg, a
		}
	}
	side := make(map[int]bool, len(ids)) // true = left
	queue := []int{seed}
	visited := map[int]bool{seed: true}
	count := 0
	for len(queue) > 0 && count < half {
		a := queue[0]
		queue = queue[1:]
		side[a] = true
		count++
		// Deterministic neighbor order.
		nbrs := append([]edge(nil), adj[a]...)
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].to < nbrs[j].to })
		for _, e := range nbrs {
			if inSet[e.to] && !visited[e.to] {
				visited[e.to] = true
				queue = append(queue, e.to)
			}
		}
		if len(queue) == 0 && count < half {
			// Disconnected remainder: restart from any unvisited atom.
			for _, b := range ids {
				if !visited[b] {
					visited[b] = true
					queue = append(queue, b)
					break
				}
			}
		}
	}

	// Kernighan–Lin style refinement: single-pass greedy swaps of the
	// boundary pair with the best combined gain.
	gain := func(a int) int {
		// Cut reduction if a switches sides.
		g := 0
		for _, e := range adj[a] {
			if !inSet[e.to] {
				continue
			}
			if side[e.to] == side[a] {
				g -= e.weight
			} else {
				g += e.weight
			}
		}
		return g
	}
	for pass := 0; pass < 4; pass++ {
		improved := false
		var leftIds, rightIds []int
		for _, a := range ids {
			if side[a] {
				leftIds = append(leftIds, a)
			} else {
				rightIds = append(rightIds, a)
			}
		}
		bestGain, bi, bj := 0, -1, -1
		for _, a := range leftIds {
			ga := gain(a)
			if ga <= 0 {
				continue
			}
			for _, b := range rightIds {
				g := ga + gain(b)
				// Swapping neighbors double-counts their shared edge.
				for _, e := range adj[a] {
					if e.to == b {
						g -= 2 * e.weight
					}
				}
				if g > bestGain {
					bestGain, bi, bj = g, a, b
				}
			}
		}
		if bi >= 0 {
			side[bi] = false
			side[bj] = true
			improved = true
		}
		if !improved {
			break
		}
	}

	for _, a := range ids {
		if side[a] {
			left = append(left, a)
		} else {
			right = append(right, a)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		// Degenerate split (fully connected clique): fall back to halving.
		sorted := append([]int(nil), ids...)
		sort.Ints(sorted)
		return sorted[:half], sorted[half:]
	}
	return left, right
}

// CutSize returns the number of scalar constraints that must be applied at
// or above the node joining the given grouping's children — a quality
// measure for decompositions (fewer is better).
func CutSize(g *molecule.Group, cons []constraint.Constraint) int {
	childOf := map[int]int{}
	for ci, c := range g.Children {
		for _, a := range c.Atoms() {
			childOf[a] = ci
		}
	}
	for _, a := range g.AtomIDs {
		childOf[a] = -1
	}
	cut := 0
	for _, c := range cons {
		atoms := c.Atoms()
		first, ok0 := childOf[atoms[0]]
		split := !ok0 || first == -1
		for _, a := range atoms[1:] {
			ci, ok := childOf[a]
			if !ok || ci == -1 || ci != first {
				split = true
				break
			}
		}
		if split {
			cut += c.Dim()
		}
	}
	return cut
}
