package hier

import (
	"context"
	"fmt"
	"math"
	"sync"

	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/par"
	"phmse/internal/solvererr"
	"phmse/internal/trace"
)

// Options configures the hierarchical solver.
type Options struct {
	BatchSize int     // scalar batch dimension (default 16)
	MaxCycles int     // complete passes over the tree (default 100)
	Tol       float64 // RMS coordinate change to declare convergence (default 1e-3)
	InitVar   float64 // leaf-level initial coordinate variance (default 100)
	Team      *par.Team
	Plan      *ExecPlan
	Rec       *trace.Collector
	// MaxStep is the per-batch trust radius: 0 selects the 2 Å default,
	// negative disables the clamp. See filter.Updater.MaxStep.
	MaxStep float64
	// Joseph selects the numerically robust Joseph-form covariance update
	// (see filter.Updater.Joseph).
	Joseph bool
	// GateSigma, when positive, enables innovation gating of outlier
	// observations (see filter.Updater.GateSigma).
	GateSigma float64
	// WarmVars, when non-nil, holds per-coordinate prior variances indexed
	// 3·atom+coord in global atom order, injected in place of InitVar when
	// leaf and direct-atom states are assembled — the hierarchical form of
	// warm-starting from a prior posterior. The hierarchy rebuilds
	// cross-node covariance from its own constraints each pass, so only
	// the posterior's diagonal survives injection; cross-atom terms are
	// discarded. A warm solve never reverts to the diffuse InitVar: after
	// each pass the root posterior's diagonal becomes the next pass's
	// injected priors, the hierarchical analogue of flat-mode sequential
	// Kalman continuation. Re-introducing the diffuse reset mid-solve
	// would kick a near-converged state back onto the cold iteration's
	// slow transient.
	WarmVars []float64
	// Ctx, when non-nil, is checked between cycles: a cancelled or expired
	// context stops the iteration and Solve returns the context's error
	// together with the state and progress so far.
	Ctx context.Context
	// OnCycle, when non-nil, is called after every completed cycle with the
	// 1-based cycle number and the RMS coordinate change over that cycle.
	OnCycle func(cycle int, rmsChange float64)
	// Diag, when non-nil, is the shared containment-diagnostics sink
	// (safe for the tree's parallel subtree updates); Solve creates one
	// internally when nil, so Result.Diag is always populated.
	Diag *filter.Diagnostics
	// DivergeAfter is the divergence-watchdog patience (consecutive
	// cycles of growing RMS change). Zero selects the default of 8;
	// negative disables. See filter.SolveOptions.DivergeAfter.
	DivergeAfter int
	// NoGuard disables numerical fault containment (ridge retries,
	// non-finite rollback, per-node batch quarantine).
	NoGuard bool
	// FaultTag labels the solve for fault-injection sites.
	FaultTag string

	// cycle is the 1-based cycle number the current UpdatePass runs
	// under, maintained by Solve for diagnostics and injection sites.
	cycle int
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = filter.DefaultBatchSize
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 100
	}
	if o.Tol <= 0 {
		o.Tol = 1e-3
	}
	if o.InitVar <= 0 {
		o.InitVar = 100
	}
	if o.Team == nil {
		o.Team = par.NewTeam(1)
	}
	o.MaxStep = filter.NormalizeMaxStep(o.MaxStep)
	o.DivergeAfter = filter.NormalizeDivergeAfter(o.DivergeAfter)
	if o.Diag == nil {
		o.Diag = &filter.Diagnostics{}
	}
	if o.cycle == 0 {
		o.cycle = 1
	}
	return o
}

// Result summarizes a hierarchical solve.
type Result struct {
	Cycles    int
	Converged bool
	RMSChange float64
	// Diag is the containment-diagnostics sink of the run (never nil
	// after Solve returns).
	Diag *filter.Diagnostics
}

// Solve runs the hierarchical estimation to convergence: each cycle updates
// the tree post-order (children before parents, disjoint subtrees in
// parallel according to the plan), then the root estimate feeds the next
// cycle's linearization points. It returns the root state, whose atom
// ordering is root.Atoms.
func Solve(root *Node, init []geom.Vec3, opt Options) (*filter.State, Result, error) {
	opt = opt.withDefaults()
	if root.batches == nil {
		if err := root.Prepare(opt.BatchSize); err != nil {
			return nil, Result{}, err
		}
	}
	if err := opt.Plan.Validate(root, opt.Team.Size()); err != nil {
		return nil, Result{}, err
	}
	if opt.WarmVars != nil && len(opt.WarmVars) != 3*len(init) {
		return nil, Result{}, fmt.Errorf("hier: warm variances have %d entries, want %d", len(opt.WarmVars), 3*len(init))
	}
	positions := append([]geom.Vec3(nil), init...)
	warm := opt.WarmVars != nil
	if warm {
		// The per-cycle carry-forward below rewrites the slice; copy it so
		// the caller's posterior is untouched.
		opt.WarmVars = append([]float64(nil), opt.WarmVars...)
	}
	var state *filter.State
	res := Result{Diag: opt.Diag}
	grew := 0
	prevRMS := math.Inf(1)
	streakBase := 0.0
	for cycle := 0; cycle < opt.MaxCycles; cycle++ {
		if opt.Ctx != nil {
			if err := opt.Ctx.Err(); err != nil {
				return state, res, err
			}
		}
		var err error
		opt.cycle = cycle + 1
		opt.Diag.BeginCycle()
		prevState := state
		state, err = UpdatePass(root, positions, opt)
		if err != nil {
			return nil, res, err
		}
		// The previous cycle's root posterior has served its purpose (its
		// positions were written back below last cycle); recycle it. The
		// final state escapes into the Solution and is never released.
		filter.ReleasePooledState(prevState)
		res.Cycles = cycle + 1

		// Write the root estimate back to the global position buffer and
		// measure the change.
		sum := 0.0
		for i, a := range root.Atoms {
			p := state.Pos(i)
			sum += p.Sub(positions[a]).Norm2()
			positions[a] = p
		}
		res.RMSChange = rms(sum, 3*len(root.Atoms))
		if warm {
			// Sequential continuation: the pass posterior's diagonal
			// becomes the next pass's injected priors.
			for i, a := range root.Atoms {
				for c := 0; c < 3; c++ {
					opt.WarmVars[3*a+c] = state.C.At(3*i+c, 3*i+c)
				}
			}
		}
		stats := opt.Diag.EndCycle(res.RMSChange)
		if opt.OnCycle != nil {
			opt.OnCycle(res.Cycles, res.RMSChange)
		}
		// No-progress policy: a pass whose every batch was quarantined
		// across the whole tree cannot move the estimate.
		if !opt.NoGuard && stats.Applied == 0 && stats.Quarantined > 0 {
			return state, res, filter.ContainmentError(stats, res.Cycles)
		}
		if res.RMSChange < opt.Tol {
			res.Converged = true
			break
		}
		// Divergence watchdog, as in the flat driver.
		if res.RMSChange > prevRMS {
			if grew == 0 {
				streakBase = prevRMS
			}
			grew++
		} else {
			grew = 0
		}
		prevRMS = res.RMSChange
		if opt.DivergeAfter > 0 && grew >= opt.DivergeAfter && res.RMSChange > filter.DivergeGrowthFactor*streakBase {
			return state, res, &solvererr.Diverged{Cycles: res.Cycles, Grew: grew, History: opt.Diag.RMSTrajectory()}
		}
	}
	return state, res, nil
}

func rms(sumSquares float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Sqrt(sumSquares / float64(n))
}

// UpdatePass performs one post-order pass over the tree (one cycle) from
// the given linearization positions and returns the root state.
func UpdatePass(root *Node, positions []geom.Vec3, opt Options) (*filter.State, error) {
	opt = opt.withDefaults()
	return updateNode(root, positions, opt, opt.Team)
}

// updateNode computes the posterior state of one node: children first
// (possibly in parallel processor groups), then the node's own constraints.
func updateNode(n *Node, positions []geom.Vec3, opt Options, team *par.Team) (*filter.State, error) {
	childStates := make([]*filter.State, len(n.Children))
	groups := opt.Plan.groupsFor(n)
	switch {
	case len(n.Children) == 0:
		// Leaf: fresh state from the current linearization positions.
	case groups == nil || team.Size() == 1 || len(groups) == 1:
		// Sequential children, full team each.
		for i, c := range n.Children {
			s, err := updateNode(c, positions, opt, team)
			if err != nil {
				return nil, err
			}
			childStates[i] = s
		}
	default:
		// Parallel processor groups over disjoint subtrees: the new axis of
		// parallelism exposed by the hierarchy.
		sizes := make([]int, len(groups))
		for i, g := range groups {
			sizes[i] = g.Procs
		}
		teams := team.SplitN(sizes)
		index := make(map[*Node]int, len(n.Children))
		for i, c := range n.Children {
			index[c] = i
		}
		var mu sync.Mutex
		var firstErr error
		thunks := make([]func(), len(groups))
		for gi, g := range groups {
			gi, g := gi, g
			thunks[gi] = func() {
				for _, c := range g.Nodes {
					s, err := updateNode(c, positions, opt, teams[gi])
					if err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
					mu.Lock()
					childStates[index[c]] = s
					mu.Unlock()
				}
			}
		}
		par.Parallel(thunks...)
		if firstErr != nil {
			return nil, firstErr
		}
	}

	s := assemble(n, childStates, positions, opt)
	// The children's posteriors have been copied into the parent's prior;
	// their pooled buffers feed the next node's assembly.
	for _, cs := range childStates {
		filter.ReleasePooledState(cs)
	}
	u := &filter.Updater{
		Team: team, Rec: opt.Rec, MaxStep: opt.MaxStep, Joseph: opt.Joseph, GateSigma: opt.GateSigma,
		Guard: !opt.NoGuard, Diag: opt.Diag, Tag: opt.FaultTag, Node: n.Name, Cycle: opt.cycle,
	}
	defer u.ReleaseWorkspace()
	if _, err := u.ApplyAll(s, n.batches); err != nil {
		return nil, fmt.Errorf("node %q: %w", n.Name, err)
	}
	return s, nil
}

// assemble builds the node's prior state: children posteriors as
// uncorrelated diagonal blocks (their mutual covariance is zero until the
// node's own cross-boundary constraints fill it in), then the node's direct
// atoms with fresh isotropic covariance — or, under a warm start, the
// injected per-coordinate posterior variances.
func assemble(n *Node, childStates []*filter.State, positions []geom.Vec3, opt Options) *filter.State {
	dim := n.StateDim()
	// Pooled prior: X is fully written below (children then direct atoms
	// cover every entry), C comes back zeroed so the off-diagonal blocks
	// between children start uncorrelated.
	s := filter.GetPooledState(dim)
	off := 0
	for i, cs := range childStates {
		cd := n.Children[i].StateDim()
		copy(s.X[off:off+cd], cs.X)
		s.C.View(off, off, cd, cd).CopyFrom(cs.C)
		off += cd
	}
	for _, a := range n.Direct {
		p := positions[a]
		s.X[off], s.X[off+1], s.X[off+2] = p[0], p[1], p[2]
		for c := 0; c < 3; c++ {
			s.C.Set(off+c, off+c, opt.priorVar(a, c))
		}
		off += 3
	}
	return s
}

// priorVar returns the initial variance of one coordinate of a global atom:
// the injected warm-start posterior variance when one is in effect, the
// isotropic InitVar otherwise. Injected variances are floored at a small
// positive value so a perfectly determined coordinate cannot produce a
// singular prior.
func (o Options) priorVar(atom, coord int) float64 {
	if o.WarmVars != nil {
		if v := o.WarmVars[3*atom+coord]; v > minWarmVar {
			return v
		}
		return minWarmVar
	}
	return o.InitVar
}

// minWarmVar is the variance floor for injected warm-start priors (Å²).
const minWarmVar = 1e-9
