package hier

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"phmse/internal/constraint"
	"phmse/internal/filter"
	"phmse/internal/geom"
	"phmse/internal/molecule"
	"phmse/internal/par"
	"phmse/internal/trace"
)

// chainProblem builds a linear chain of atoms with distance constraints and
// an anchor, grouped into a binary tree over two halves.
func chainProblem(n int) *molecule.Problem {
	p := &molecule.Problem{Name: "chain"}
	for i := 0; i < n; i++ {
		p.Atoms = append(p.Atoms, molecule.Atom{Pos: geom.Vec3{float64(i) * 2, 0.3 * float64(i%3), 0}})
	}
	for i := 0; i+1 < n; i++ {
		d := geom.Dist(p.Atoms[i].Pos, p.Atoms[i+1].Pos)
		p.Constraints = append(p.Constraints, constraint.Distance{I: i, J: i + 1, Target: d, Sigma: 0.05})
	}
	for i := 0; i+2 < n; i++ {
		d := geom.Dist(p.Atoms[i].Pos, p.Atoms[i+2].Pos)
		p.Constraints = append(p.Constraints, constraint.Distance{I: i, J: i + 2, Target: d, Sigma: 0.1})
	}
	p.Constraints = append(p.Constraints,
		constraint.Position{I: 0, Target: p.Atoms[0].Pos, Sigma: 0.01},
		constraint.Position{I: n - 1, Target: p.Atoms[n-1].Pos, Sigma: 0.01},
	)
	p.Tree = RecursiveBisection(n, n/4)
	return p
}

func TestBuildAssignsConstraintsToLowestNode(t *testing.T) {
	h := molecule.Helix(2)
	root, err := Build(h.Tree, h.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	// Every constraint lands somewhere; total preserved.
	if got := root.ScalarConstraints(); got != h.ScalarDim() {
		t.Fatalf("assigned %d of %d scalar constraints", got, h.ScalarDim())
	}
	// Each node's constraints reference only subtree atoms, and no child
	// could hold them alone (lowest-node property).
	root.Walk(func(n *Node) {
		inSub := map[int]bool{}
		for _, a := range n.Atoms {
			inSub[a] = true
		}
		childSets := make([]map[int]bool, len(n.Children))
		for i, c := range n.Children {
			childSets[i] = map[int]bool{}
			for _, a := range c.Atoms {
				childSets[i][a] = true
			}
		}
		for _, c := range n.Cons {
			for _, a := range c.Atoms() {
				if !inSub[a] {
					t.Fatalf("node %q: constraint atom %d outside subtree", n.Name, a)
				}
			}
			for i := range childSets {
				all := true
				for _, a := range c.Atoms() {
					if !childSets[i][a] {
						all = false
						break
					}
				}
				if all {
					t.Fatalf("node %q: constraint fits entirely in child %q", n.Name, n.Children[i].Name)
				}
			}
		}
	})
}

func TestBuildRejectsForeignAtoms(t *testing.T) {
	g := &molecule.Group{Name: "g", AtomIDs: []int{0, 1}}
	_, err := Build(g, []constraint.Constraint{constraint.Distance{I: 0, J: 7, Target: 1, Sigma: 1}})
	if err == nil {
		t.Fatal("no error for out-of-tree atom")
	}
}

func TestBuildRejectsDuplicateAtoms(t *testing.T) {
	g := &molecule.Group{
		Children: []*molecule.Group{
			{Name: "a", AtomIDs: []int{0, 1}},
			{Name: "b", AtomIDs: []int{1, 2}},
		},
	}
	if _, err := Build(g, nil); err == nil {
		t.Fatal("no error for atom in two leaves")
	}
}

func TestNodeAccessors(t *testing.T) {
	h := molecule.Helix(1)
	root, err := Build(h.Tree, h.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	if root.IsLeaf() || root.Parent() != nil {
		t.Fatal("root properties")
	}
	if root.StateDim() != 3*43 {
		t.Fatalf("StateDim = %d", root.StateDim())
	}
	if root.Count() != 7 { // bp + 2 bases + 4 leaves
		t.Fatalf("Count = %d", root.Count())
	}
	if root.MaxDepth() != 3 {
		t.Fatalf("MaxDepth = %d", root.MaxDepth())
	}
	leaf := root.Children[0].Children[0]
	if !leaf.IsLeaf() || leaf.Parent() == nil {
		t.Fatal("leaf properties")
	}
	if !strings.Contains(root.Dump(), "bp0") {
		t.Fatal("Dump missing nodes")
	}
	if root.String() == "" || leaf.String() == "" {
		t.Fatal("String")
	}
}

// postOrderCons collects the constraints in the order the hierarchical
// schedule applies them (children before parents).
func postOrderCons(n *Node) []constraint.Constraint {
	var out []constraint.Constraint
	for _, c := range n.Children {
		out = append(out, postOrderCons(c)...)
	}
	return append(out, n.Cons...)
}

// For purely linear measurement models the hierarchical organization is
// exactly the flat computation with the zero blocks skipped (§3), so the
// results must agree to round-off regardless of ordering.
func TestHierarchicalMatchesFlatLinearExact(t *testing.T) {
	p := &molecule.Problem{Name: "linear"}
	for i := 0; i < 8; i++ {
		p.Atoms = append(p.Atoms, molecule.Atom{Pos: geom.Vec3{float64(i), 0, 0}})
		p.Constraints = append(p.Constraints,
			constraint.Position{I: i, Target: geom.Vec3{float64(i), 0.5, 0}, Sigma: 0.5 + 0.1*float64(i)})
	}
	p.Tree = RecursiveBisection(8, 2)
	root, err := Build(p.Tree, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Prepare(6); err != nil {
		t.Fatal(err)
	}
	init := p.TruePositions()
	hierState, err := UpdatePass(root, init, Options{BatchSize: 6, InitVar: 100})
	if err != nil {
		t.Fatal(err)
	}
	flat := filter.NewState(init, 100)
	batches, err := filter.MakeBatches(p.Constraints, func(a int) int { return a }, 6)
	if err != nil {
		t.Fatal(err)
	}
	u := &filter.Updater{}
	if _, err := u.ApplyAll(flat, batches); err != nil {
		t.Fatal(err)
	}
	for i, a := range root.Atoms {
		if hierState.Pos(i).Sub(flat.Pos(a)).Norm() > 1e-8 {
			t.Fatalf("atom %d: hierarchical %v vs flat %v", a, hierState.Pos(i), flat.Pos(a))
		}
	}
	// Covariances agree block-wise (compare atom variances).
	for i, a := range root.Atoms {
		if math.Abs(hierState.Variance(i)-flat.Variance(a)) > 1e-8 {
			t.Fatalf("atom %d variance: %g vs %g", a, hierState.Variance(i), flat.Variance(a))
		}
	}
}

// With nonlinear constraints the two organizations perform the same
// computation when the flat pass applies constraints in the hierarchical
// (locality) order; small differences remain only from batch-boundary
// relinearization.
func TestHierarchicalMatchesFlatOnePass(t *testing.T) {
	p := chainProblem(12)
	root, err := Build(p.Tree, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	init := molecule.Perturbed(p, 0.05, 5)

	if err := root.Prepare(8); err != nil {
		t.Fatal(err)
	}
	hierState, err := UpdatePass(root, init, Options{BatchSize: 8, InitVar: 100})
	if err != nil {
		t.Fatal(err)
	}

	flat := filter.NewState(init, 100)
	batches, err := filter.MakeBatches(postOrderCons(root), func(a int) int { return a }, 8)
	if err != nil {
		t.Fatal(err)
	}
	u := &filter.Updater{}
	if _, err := u.ApplyAll(flat, batches); err != nil {
		t.Fatal(err)
	}

	for i, a := range root.Atoms {
		hp := hierState.Pos(i)
		fp := flat.Pos(a)
		if hp.Sub(fp).Norm() > 5e-3 {
			t.Fatalf("atom %d: hierarchical %v vs flat %v", a, hp, fp)
		}
	}
}

func TestHierarchicalSolveConverges(t *testing.T) {
	p := chainProblem(16)
	root, err := Build(p.Tree, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	init := molecule.Perturbed(p, 0.3, 11)
	state, res, err := Solve(root, init, Options{Tol: 1e-4, MaxCycles: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %+v", res)
	}
	// Solution satisfies the distance data.
	for _, c := range p.Constraints {
		d, ok := c.(constraint.Distance)
		if !ok {
			continue
		}
		li := indexOf(root.Atoms, d.I)
		lj := indexOf(root.Atoms, d.J)
		got := geom.Dist(state.Pos(li), state.Pos(lj))
		if math.Abs(got-d.Target) > 0.05 {
			t.Fatalf("constraint %v: solved distance %g", d, got)
		}
	}
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// Parallel subtree execution must produce the same estimate as sequential
// execution (the groups touch disjoint data).
func TestParallelPlanMatchesSequential(t *testing.T) {
	p := chainProblem(16)
	buildRoot := func() *Node {
		root, err := Build(p.Tree, p.Constraints)
		if err != nil {
			t.Fatal(err)
		}
		if err := root.Prepare(8); err != nil {
			t.Fatal(err)
		}
		return root
	}
	init := molecule.Perturbed(p, 0.2, 3)

	seqRoot := buildRoot()
	seqState, err := UpdatePass(seqRoot, init, Options{BatchSize: 8, InitVar: 100})
	if err != nil {
		t.Fatal(err)
	}

	parRoot := buildRoot()
	plan := NewExecPlan()
	var fill func(n *Node, procs int)
	fill = func(n *Node, procs int) {
		if len(n.Children) != 2 || procs < 2 {
			return
		}
		half := procs / 2
		plan.Groups[n] = []ChildGroup{
			{Nodes: []*Node{n.Children[0]}, Procs: half},
			{Nodes: []*Node{n.Children[1]}, Procs: procs - half},
		}
		fill(n.Children[0], half)
		fill(n.Children[1], procs-half)
	}
	fill(parRoot, 4)
	team := par.NewTeam(4)
	if err := plan.Validate(parRoot, 4); err != nil {
		t.Fatal(err)
	}
	parState, err := UpdatePass(parRoot, init, Options{BatchSize: 8, InitVar: 100, Team: team, Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	for d := range seqState.X {
		if math.Abs(seqState.X[d]-parState.X[d]) > 1e-9 {
			t.Fatalf("x[%d]: %g vs %g", d, seqState.X[d], parState.X[d])
		}
	}
	if !seqState.C.Equal(parState.C, 1e-9) {
		t.Fatal("covariances differ")
	}
}

func TestPlanValidation(t *testing.T) {
	p := chainProblem(8)
	root, err := Build(p.Tree, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	plan := NewExecPlan()
	// Wrong processor total.
	plan.Groups[root] = []ChildGroup{
		{Nodes: []*Node{root.Children[0]}, Procs: 1},
		{Nodes: []*Node{root.Children[1]}, Procs: 1},
	}
	if err := plan.Validate(root, 4); err == nil {
		t.Fatal("accepted wrong processor total")
	}
	if err := plan.Validate(root, 2); err != nil {
		t.Fatalf("rejected valid plan: %v", err)
	}
	// Missing child.
	plan.Groups[root] = []ChildGroup{{Nodes: []*Node{root.Children[0]}, Procs: 2}}
	if err := plan.Validate(root, 2); err == nil {
		t.Fatal("accepted plan not covering all children")
	}
	// Child in two groups.
	plan.Groups[root] = []ChildGroup{
		{Nodes: []*Node{root.Children[0], root.Children[0]}, Procs: 1},
		{Nodes: []*Node{root.Children[1]}, Procs: 1},
	}
	if err := plan.Validate(root, 2); err == nil {
		t.Fatal("accepted duplicated child")
	}
	// Nil plan is always valid.
	var nilPlan *ExecPlan
	if err := nilPlan.Validate(root, 99); err != nil {
		t.Fatal(err)
	}
}

func TestSolveRecordsTraceAndRespectsGates(t *testing.T) {
	p := chainProblem(8)
	// Add a violated upper bound between the ends.
	d := geom.Dist(p.Atoms[0].Pos, p.Atoms[7].Pos)
	p.Constraints = append(p.Constraints,
		constraint.DistanceBound{I: 0, J: 7, Upper: d * 0.99, Sigma: 0.5})
	root, err := Build(p.Tree, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	var rec trace.Collector
	_, res, err := Solve(root, p.TruePositions(), Options{MaxCycles: 4, Rec: &rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles ran")
	}
	if rec.Flops()[trace.MatMat] <= 0 {
		t.Fatal("no m-m flops recorded")
	}
}

func TestRecursiveBisection(t *testing.T) {
	g := RecursiveBisection(16, 4)
	if len(g.Atoms()) != 16 {
		t.Fatalf("atoms = %d", len(g.Atoms()))
	}
	for _, l := range g.Leaves() {
		if len(l.AtomIDs) > 4 || len(l.AtomIDs) == 0 {
			t.Fatalf("leaf size %d", len(l.AtomIDs))
		}
	}
	if g.Depth() != 3 {
		t.Fatalf("depth = %d", g.Depth())
	}
	// Degenerate leaf size.
	tiny := RecursiveBisection(3, 0)
	if len(tiny.Leaves()) != 3 {
		t.Fatal("leafSize 0 should clamp to 1")
	}
}

func TestGraphPartitionBeatsNaiveOnShuffledChain(t *testing.T) {
	// A chain whose atom indices are interleaved between the two halves:
	// index bisection cuts every edge; the graph partitioner should
	// recover locality.
	const n = 32
	perm := make([]int, n)
	for i := range perm {
		// Even indices first half of the chain, odd indices second half.
		if i%2 == 0 {
			perm[i] = i / 2
		} else {
			perm[i] = n/2 + i/2
		}
	}
	posOf := make([]int, n) // chain position → atom index
	for atom, chainPos := range perm {
		posOf[chainPos] = atom
	}
	var cons []constraint.Constraint
	for cpos := 0; cpos+1 < n; cpos++ {
		cons = append(cons, constraint.Distance{I: posOf[cpos], J: posOf[cpos+1], Target: 1, Sigma: 1})
	}
	naive := RecursiveBisection(n, 8)
	smart := GraphPartition(n, cons, 8)
	if got := len(smart.Atoms()); got != n {
		t.Fatalf("partition lost atoms: %d", got)
	}
	naiveCut := CutSize(naive, cons)
	smartCut := CutSize(smart, cons)
	if smartCut >= naiveCut {
		t.Fatalf("graph partition cut %d not better than naive %d", smartCut, naiveCut)
	}
	if smartCut > 3 {
		t.Fatalf("chain should split with ≤3 cut edges, got %d", smartCut)
	}
}

func TestGraphPartitionBalanced(t *testing.T) {
	h := molecule.Helix(2)
	g := GraphPartition(len(h.Atoms), h.Constraints, 20)
	if len(g.Atoms()) != len(h.Atoms) {
		t.Fatal("lost atoms")
	}
	if len(g.Children) != 2 {
		t.Fatal("not a bisection")
	}
	a := len(g.Children[0].Atoms())
	b := len(g.Children[1].Atoms())
	if a+b != len(h.Atoms) {
		t.Fatal("children don't partition")
	}
	ratio := float64(a) / float64(a+b)
	if ratio < 0.3 || ratio > 0.7 {
		t.Fatalf("unbalanced split %d/%d", a, b)
	}
}

func TestGraphPartitionSolvable(t *testing.T) {
	// The automatic decomposition must produce a tree the solver accepts
	// and converges on.
	p := chainProblem(12)
	auto := GraphPartition(len(p.Atoms), p.Constraints, 4)
	root, err := Build(auto, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := Solve(root, molecule.Perturbed(p, 0.2, 9), Options{Tol: 1e-4, MaxCycles: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %+v", res)
	}
}

func TestGroupLeavesChain(t *testing.T) {
	// Four leaf fragments of a chain: bottom-up grouping should join
	// neighbors first, since they share the most constraints.
	p := chainProblem(16)
	var leaves []*molecule.Group
	for k := 0; k < 4; k++ {
		g := &molecule.Group{Name: string(rune('a' + k))}
		for a := 4 * k; a < 4*(k+1); a++ {
			g.AtomIDs = append(g.AtomIDs, a)
		}
		leaves = append(leaves, g)
	}
	tree := GroupLeaves(leaves, p.Constraints)
	if len(tree.Atoms()) != 16 {
		t.Fatalf("atoms = %d", len(tree.Atoms()))
	}
	if got := len(tree.Leaves()); got != 4 {
		t.Fatalf("leaves = %d", got)
	}
	// The tree must be solvable and its cut at the root small: the chain
	// only crosses the final merge at one junction (≤ ~6 scalar dims).
	root, err := Build(tree, p.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	rootDims := 0
	for _, c := range root.Cons {
		rootDims += c.Dim()
	}
	if rootDims > 8 {
		t.Fatalf("bottom-up grouping left %d scalar constraints at the root", rootDims)
	}
	_, res, err := Solve(root, molecule.Perturbed(p, 0.2, 2), Options{Tol: 1e-4, MaxCycles: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("no convergence: %+v", res)
	}
}

func TestGroupLeavesEdgeCases(t *testing.T) {
	if g := GroupLeaves(nil, nil); g == nil || len(g.Atoms()) != 0 {
		t.Fatal("empty leaves")
	}
	single := &molecule.Group{Name: "only", AtomIDs: []int{0, 1}}
	if g := GroupLeaves([]*molecule.Group{single}, nil); g != single {
		t.Fatal("single leaf should be returned unchanged")
	}
	// Disconnected leaves (no shared constraints) still merge into one tree.
	a := &molecule.Group{Name: "a", AtomIDs: []int{0}}
	b := &molecule.Group{Name: "b", AtomIDs: []int{1}}
	c := &molecule.Group{Name: "c", AtomIDs: []int{2}}
	g := GroupLeaves([]*molecule.Group{a, b, c}, nil)
	if len(g.Atoms()) != 3 || len(g.Leaves()) != 3 {
		t.Fatal("disconnected merge failed")
	}
}

func TestGroupLeavesPrefersConnectedPairs(t *testing.T) {
	// Two tightly connected leaves and one isolated one: the first merge
	// must join the connected pair.
	a := &molecule.Group{Name: "a", AtomIDs: []int{0, 1}}
	b := &molecule.Group{Name: "b", AtomIDs: []int{2, 3}}
	c := &molecule.Group{Name: "c", AtomIDs: []int{4, 5}}
	cons := []constraint.Constraint{
		constraint.Distance{I: 1, J: 2, Target: 1, Sigma: 1},
		constraint.Distance{I: 0, J: 3, Target: 1, Sigma: 1},
	}
	g := GroupLeaves([]*molecule.Group{a, c, b}, cons)
	// Find the first merge (depth-2 node containing a and b).
	var firstMerge *molecule.Group
	var find func(n *molecule.Group)
	find = func(n *molecule.Group) {
		if len(n.Children) == 2 && len(n.Children[0].Children) == 0 && len(n.Children[1].Children) == 0 {
			firstMerge = n
		}
		for _, ch := range n.Children {
			find(ch)
		}
	}
	find(g)
	if firstMerge == nil {
		t.Fatal("no leaf-pair merge found")
	}
	names := firstMerge.Children[0].Name + firstMerge.Children[1].Name
	if names != "ab" && names != "ba" {
		t.Fatalf("first merge joined %q", names)
	}
}

// Property: for purely linear constraint sets and arbitrary random
// decompositions, the hierarchical computation equals the flat one — the
// §3 equivalence, tested over random shapes.
func TestHierarchicalFlatEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAtoms := 4 + rng.Intn(12)
		p := &molecule.Problem{Name: "prop"}
		for i := 0; i < nAtoms; i++ {
			p.Atoms = append(p.Atoms, molecule.Atom{Pos: geom.Vec3{
				rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}})
		}
		for i := 0; i < nAtoms; i++ {
			// One to three absolute observations per atom.
			for k := 0; k <= rng.Intn(3); k++ {
				p.Constraints = append(p.Constraints, constraint.Position{
					I:      i,
					Target: p.Atoms[i].Pos.Add(geom.Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}),
					Sigma:  0.2 + rng.Float64(),
				})
			}
		}
		leaf := 1 + rng.Intn(5)
		root, err := Build(RecursiveBisection(nAtoms, leaf), p.Constraints)
		if err != nil {
			return false
		}
		if err := root.Prepare(1 + rng.Intn(20)); err != nil {
			return false
		}
		init := p.TruePositions()
		hierState, err := UpdatePass(root, init, Options{InitVar: 10, MaxStep: -1})
		if err != nil {
			return false
		}
		flat := filter.NewState(init, 10)
		batches, err := filter.MakeBatches(p.Constraints, func(a int) int { return a }, 16)
		if err != nil {
			return false
		}
		u := &filter.Updater{}
		if _, err := u.ApplyAll(flat, batches); err != nil {
			return false
		}
		for i, a := range root.Atoms {
			if hierState.Pos(i).Sub(flat.Pos(a)).Norm() > 1e-8 {
				return false
			}
			if math.Abs(hierState.Variance(i)-flat.Variance(a)) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestComputeStats(t *testing.T) {
	h := molecule.Helix(4)
	root, err := Build(h.Tree, h.Constraints)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(root)
	if st.Nodes != root.Count() || st.Depth != root.MaxDepth() {
		t.Fatalf("stats %+v disagree with tree", st)
	}
	if st.Scalars != root.ScalarConstraints() {
		t.Fatalf("scalars %d vs %d", st.Scalars, root.ScalarConstraints())
	}
	if len(st.Levels) != st.Depth {
		t.Fatalf("levels = %d, depth = %d", len(st.Levels), st.Depth)
	}
	// Level sums must reconstruct the totals.
	nodes, scalars := 0, 0
	workSum := 0.0
	for _, l := range st.Levels {
		nodes += l.Nodes
		scalars += l.Scalars
		workSum += l.WorkFrac
	}
	if nodes != st.Nodes || scalars != st.Scalars {
		t.Fatalf("level sums %d/%d vs totals %d/%d", nodes, scalars, st.Nodes, st.Scalars)
	}
	if workSum < 0.999 || workSum > 1.001 {
		t.Fatalf("work fractions sum to %g", workSum)
	}
	// The helix is the paper's optimistic case: most constraints deep.
	if st.DeepFrac < 0.5 {
		t.Fatalf("deep fraction %g too small for the helix", st.DeepFrac)
	}
	if st.Format() == "" {
		t.Fatal("Format")
	}
}
