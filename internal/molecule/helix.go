package molecule

import (
	"fmt"
	"math"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// RNA double-helix generator (§3.1 of the paper). The helix is a series of
// base pairs twisted into a spiral; each base consists of a common backbone
// and a distinguishing sidechain. Sizes are chosen so a base pair holds 43
// pseudo-atoms, matching the paper's Table 1 (helix length 1 → 43 atoms).

// BaseType enumerates the four RNA bases.
type BaseType int

// The four RNA bases.
const (
	BaseA BaseType = iota
	BaseC
	BaseG
	BaseU
)

var baseNames = [...]string{"A", "C", "G", "U"}

// String returns the one-letter base code.
func (b BaseType) String() string { return baseNames[b] }

// Complement returns the Watson–Crick partner (A↔U, C↔G).
func (b BaseType) Complement() BaseType {
	switch b {
	case BaseA:
		return BaseU
	case BaseU:
		return BaseA
	case BaseC:
		return BaseG
	default:
		return BaseC
	}
}

// sidechainSize gives the pseudo-atom count of each base's sidechain; the
// purines (A, G) are larger than the pyrimidines (C, U). With the common
// 12-atom backbone, every Watson–Crick pair totals 43 atoms.
var sidechainSize = map[BaseType]int{BaseA: 10, BaseG: 11, BaseC: 8, BaseU: 9}

// BackboneAtoms is the pseudo-atom count of the common backbone (ribose +
// phosphate).
const BackboneAtoms = 12

// A-form RNA helix parameters.
const (
	helixRise    = 2.8 // Å rise per base pair
	helixTwist   = 32.7 * math.Pi / 180
	helixRadius  = 8.8 // Å backbone radius
	strandOffset = 0.8 * math.Pi
)

// Helix generation cutoffs (Å), tuned so the constraint counts track the
// paper's Table 1 (about 675 scalar constraints per base pair plus about
// 220 between adjacent pairs).
const (
	cutBackbone = 7.5  // category 1: within a backbone
	cutSide     = 7.5  // category 2: within a sidechain
	cutBaseLink = 6.5  // category 3: backbone to sidechain of one base
	cutPair     = 10.2 // category 4: across a base pair
	cutStack    = 5.5  // category 5: across adjacent base pairs
)

// Measurement standard deviations (Å) by constraint category.
const (
	sigmaCovalent = 0.08
	sigmaPair     = 0.20
	sigmaStack    = 0.30
)

// base records the atom-index layout of one generated base.
type base struct {
	typ      BaseType
	backbone []int
	side     []int
}

func (b base) all() []int {
	out := append([]int(nil), b.backbone...)
	return append(out, b.side...)
}

// Helix generates an RNA double helix of the given number of base pairs,
// with reference geometry, the five constraint categories of §3.1, and the
// Figure 2 hierarchical decomposition (recursive halving down to base
// pairs, base pairs into bases, bases into backbone and sidechain leaves).
func Helix(basePairs int) *Problem {
	if basePairs < 1 {
		panic("molecule: helix needs at least one base pair")
	}
	p := &Problem{Name: fmt.Sprintf("helix-%dbp", basePairs)}

	// Lay down atoms: for each base pair, one base on each antiparallel
	// strand. Deterministic small perturbations (hash-based) break exact
	// symmetries so no constraint Jacobian is degenerate at the reference.
	pairs := make([][2]base, basePairs)
	seq := []BaseType{BaseA, BaseG, BaseC, BaseU}
	for i := 0; i < basePairs; i++ {
		t := seq[i%len(seq)]
		pairs[i][0] = p.growBase(t, i, 0)
		pairs[i][1] = p.growBase(t.Complement(), i, 1)
	}

	// Category 1–3: within each base.
	var cons []constraint.Constraint
	for _, pair := range pairs {
		for s := 0; s < 2; s++ {
			b := pair[s]
			cons = allPairsWithin(p.Atoms, b.backbone, b.backbone, cutBackbone, sigmaCovalent, cons)
			cons = allPairsWithin(p.Atoms, b.side, b.side, cutSide, sigmaCovalent, cons)
			cons = allPairsWithin(p.Atoms, b.backbone, b.side, cutBaseLink, sigmaCovalent, cons)
		}
	}
	// Category 4: across each base pair.
	for _, pair := range pairs {
		cons = allPairsWithin(p.Atoms, pair[0].all(), pair[1].all(), cutPair, sigmaPair, cons)
	}
	// Category 5: between adjacent base pairs (stacking distances); these
	// are the constraints consumed when two sub-helices are joined.
	for i := 0; i+1 < basePairs; i++ {
		a := append(pairs[i][0].all(), pairs[i][1].all()...)
		b := append(pairs[i+1][0].all(), pairs[i+1][1].all()...)
		cons = allPairsWithin(p.Atoms, a, b, cutStack, sigmaStack, cons)
	}
	p.Constraints = cons

	// Figure 2 decomposition.
	p.Tree = helixTree(pairs, 0, basePairs)
	p.Tree.Name = p.Name
	return p
}

// growBase appends the atoms of one base and returns their indices.
// strand 0 runs 5'→3' with +z; strand 1 is antiparallel.
func (p *Problem) growBase(t BaseType, pairIdx, strand int) base {
	dir := 1.0
	phase := 0.0
	if strand == 1 {
		dir = -1
		phase = strandOffset
	}
	theta := float64(pairIdx)*helixTwist + phase
	z := float64(pairIdx) * helixRise

	residue := 2*pairIdx + strand
	b := base{typ: t}
	// Backbone: arc of pseudo-atoms near the helix surface.
	for k := 0; k < BackboneAtoms; k++ {
		r := helixRadius + 0.5*math.Sin(float64(k)*1.1+float64(strand))
		a := theta + dir*(0.055*float64(k))
		zz := z + dir*(0.16*float64(k)-1.0) + jitter(residue, k)
		p.Atoms = append(p.Atoms, Atom{
			Name:    fmt.Sprintf("B%d", k),
			Residue: residue,
			Pos:     geom.Vec3{r * math.Cos(a), r * math.Sin(a), zz},
		})
		b.backbone = append(b.backbone, len(p.Atoms)-1)
	}
	// Sidechain: pseudo-atoms stepping inward toward the helix axis, so the
	// tips of paired bases meet near the middle.
	n := sidechainSize[t]
	for k := 0; k < n; k++ {
		r := 6.8 - 0.58*float64(k)
		a := theta + dir*(0.04*float64(k)+0.02)
		zz := z + 0.25*math.Sin(float64(k)*0.9+float64(strand)) + jitter(residue, 100+k)
		p.Atoms = append(p.Atoms, Atom{
			Name:    fmt.Sprintf("S%d", k),
			Residue: residue,
			Pos:     geom.Vec3{r * math.Cos(a), r * math.Sin(a), zz},
		})
		b.side = append(b.side, len(p.Atoms)-1)
	}
	return b
}

// jitter returns a deterministic perturbation in (−0.15, 0.15) Å that
// breaks exact geometric degeneracies.
func jitter(residue, k int) float64 {
	h := uint64(residue)*2654435761 + uint64(k)*40503 + 12345
	h ^= h >> 13
	h *= 1099511628211
	h ^= h >> 7
	return (float64(h%1000)/1000 - 0.5) * 0.3
}

// helixTree builds the Figure 2 decomposition of base pairs [lo, hi).
func helixTree(pairs [][2]base, lo, hi int) *Group {
	if hi-lo == 1 {
		pair := pairs[lo]
		bp := &Group{Name: fmt.Sprintf("bp%d", lo)}
		for s := 0; s < 2; s++ {
			b := pair[s]
			baseNode := &Group{Name: fmt.Sprintf("bp%d.%s%d", lo, b.typ, s)}
			baseNode.Children = []*Group{
				{Name: baseNode.Name + ".bb", AtomIDs: b.backbone},
				{Name: baseNode.Name + ".sc", AtomIDs: b.side},
			}
			bp.Children = append(bp.Children, baseNode)
		}
		return bp
	}
	mid := lo + (hi-lo)/2
	return &Group{
		Name:     fmt.Sprintf("helix[%d,%d)", lo, hi),
		Children: []*Group{helixTree(pairs, lo, mid), helixTree(pairs, mid, hi)},
	}
}
