package molecule

import (
	"fmt"
	"math"
	"math/rand"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// Synthetic protein generator. The paper's introduction motivates the
// hierarchy with proteins: residues share a common backbone and carry
// distinguishing sidechains; nearby residues form secondary structures
// (helices, sheets); and those subunits aggregate into tertiary features.
// Protein builds an antiparallel α-helix bundle with exactly that
// three-level organization and a mixed constraint set — distances, bond
// angles, backbone torsions (φ/ψ), hydrogen-bond distances, and
// inter-segment contacts — exercising every measurement type the library
// supports.

// α-helix backbone geometry (idealized).
const (
	caRise    = 1.5 // Å rise per residue along the helix axis
	caTwist   = 100 * math.Pi / 180
	caRadius  = 2.3  // Å Cα radius about the axis
	bundleGap = 10.0 // Å between segment axes in the bundle
)

// Measurement noise by constraint category (Å or radians).
const (
	sigmaBond    = 0.03
	sigmaAngle   = 0.05
	sigmaTorsion = 0.10
	sigmaHBond   = 0.25
	sigmaContact = 0.60
)

// proteinContactCutoff is the tertiary-contact distance cutoff (Å).
const proteinContactCutoff = 8.5

// residue records the atom layout of one generated amino-acid residue.
type residue struct {
	n, ca, c, o int   // backbone atom indices
	side        []int // sidechain pseudo-atom indices (may be empty: glycine)
}

func (r residue) backbone() []int { return []int{r.n, r.ca, r.c, r.o} }

func (r residue) all() []int { return append(r.backbone(), r.side...) }

// ProteinConfig sizes the generator; the zero value selects defaults.
type ProteinConfig struct {
	Residues   int // total residues (default 48)
	SegmentLen int // residues per segment (default 12)
	// Mixed alternates α-helical and extended β-strand segments; paired
	// antiparallel strands receive cross-strand hydrogen bonds, giving the
	// sheet secondary structure of the paper's introduction alongside the
	// helices.
	Mixed bool
	Seed  int64
}

func (c ProteinConfig) withDefaults() ProteinConfig {
	if c.Residues <= 0 {
		c.Residues = 48
	}
	if c.SegmentLen <= 0 {
		c.SegmentLen = 12
	}
	return c
}

// Protein generates a synthetic α-helix-bundle protein with the given
// number of residues.
func Protein(nResidues int, seed int64) *Problem {
	return ProteinWith(ProteinConfig{Residues: nResidues, Seed: seed})
}

// ProteinWith generates a synthetic protein with explicit sizing.
func ProteinWith(cfg ProteinConfig) *Problem {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Problem{Name: fmt.Sprintf("protein-%dres", cfg.Residues)}

	// Sidechain sizes cycle through small-to-large "residue types"
	// (glycine has none).
	scSizes := []int{0, 1, 2, 3, 4, 2, 3, 1, 5, 2}

	nSeg := (cfg.Residues + cfg.SegmentLen - 1) / cfg.SegmentLen
	var segments [][]residue
	strand := make([]bool, nSeg) // true: β-strand geometry
	res := 0
	for s := 0; s < nSeg; s++ {
		strand[s] = cfg.Mixed && s%2 == 1
		var seg []residue
		count := min(cfg.SegmentLen, cfg.Residues-res)
		for k := 0; k < count; k++ {
			if strand[s] {
				seg = append(seg, p.growStrandResidue(s, k, count, scSizes[res%len(scSizes)], rng))
			} else {
				seg = append(seg, p.growResidue(s, k, count, scSizes[res%len(scSizes)], rng))
			}
			res++
		}
		segments = append(segments, seg)
	}

	pos := p.TruePositions()
	var cons []constraint.Constraint
	dist := func(i, j int, sigma float64) {
		cons = append(cons, constraint.Distance{
			I: i, J: j, Target: geom.Dist(pos[i], pos[j]), Sigma: sigma,
		})
	}
	angle := func(i, j, k int) {
		cons = append(cons, constraint.Angle{
			I: i, J: j, K: k, Target: geom.Angle(pos[i], pos[j], pos[k]), Sigma: sigmaAngle,
		})
	}
	torsion := func(i, j, k, l int) {
		cons = append(cons, constraint.Torsion{
			I: i, J: j, K: k, L: l,
			Target: geom.Dihedral(pos[i], pos[j], pos[k], pos[l]), Sigma: sigmaTorsion,
		})
	}

	for _, seg := range segments {
		for k, r := range seg {
			// Covalent backbone geometry within the residue.
			dist(r.n, r.ca, sigmaBond)
			dist(r.ca, r.c, sigmaBond)
			dist(r.c, r.o, sigmaBond)
			angle(r.n, r.ca, r.c)
			angle(r.ca, r.c, r.o)
			// Sidechain attachment and internal geometry.
			prev := r.ca
			for si, a := range r.side {
				dist(prev, a, sigmaBond)
				if si >= 1 {
					// Angle at the previous sidechain atom between its own
					// attachment point and the new atom.
					angle(prevOf(r, si), r.side[si-1], a)
				}
				prev = a
			}
			if k+1 < len(seg) {
				next := seg[k+1]
				// Peptide bond and the angles across it.
				dist(r.c, next.n, sigmaBond)
				angle(r.ca, r.c, next.n)
				angle(r.c, next.n, next.ca)
				// Backbone torsions: ψ(i) = N–CA–C–N′, φ(i+1) = C–N′–CA′–C′.
				torsion(r.n, r.ca, r.c, next.n)
				torsion(r.c, next.n, next.ca, next.c)
			}
			// Secondary structure: α-helical hydrogen bond O(i)…N(i+4).
			if k+4 < len(seg) {
				dist(r.o, seg[k+4].n, sigmaHBond)
			}
		}
	}
	// β-sheet hydrogen bonds between adjacent antiparallel strands: O(i) of
	// one strand to N of the facing residue on the next.
	for s := 0; s+1 < len(segments); s++ {
		if !strand[s] || !strand[s+1] {
			continue
		}
		a, b := segments[s], segments[s+1]
		for k := range a {
			facing := len(b) - 1 - k
			if facing < 0 || facing >= len(b) {
				continue
			}
			dist(a[k].o, b[facing].n, sigmaHBond)
		}
	}
	// Tertiary contacts between different segments.
	for si := 0; si < len(segments); si++ {
		for sj := si + 1; sj < len(segments); sj++ {
			var a, b []int
			for _, r := range segments[si] {
				a = append(a, r.all()...)
			}
			for _, r := range segments[sj] {
				b = append(b, r.all()...)
			}
			cons = allPairsWithin(p.Atoms, a, b, proteinContactCutoff, sigmaContact, cons)
		}
	}
	p.Constraints = cons

	// Hierarchy: bundle → segment pairs → segments → residues → leaves.
	// The intermediate pair nodes capture the tertiary contacts between
	// adjacent segments one level below the root, so only contacts that
	// cross a pair boundary rise to the top.
	var segNodes []*Group
	for si, seg := range segments {
		segNode := &Group{Name: fmt.Sprintf("seg%d", si)}
		for k, r := range seg {
			resNode := &Group{Name: fmt.Sprintf("seg%d.res%d", si, k)}
			resNode.Children = []*Group{{Name: resNode.Name + ".bb", AtomIDs: r.backbone()}}
			if len(r.side) > 0 {
				resNode.Children = append(resNode.Children,
					&Group{Name: resNode.Name + ".sc", AtomIDs: append([]int(nil), r.side...)})
			}
			segNode.Children = append(segNode.Children, resNode)
		}
		segNodes = append(segNodes, segNode)
	}
	root := &Group{Name: p.Name}
	for lo := 0; lo < len(segNodes); lo += 2 {
		if lo+1 < len(segNodes) {
			root.Children = append(root.Children, &Group{
				Name:     fmt.Sprintf("pair%d", lo/2),
				Children: []*Group{segNodes[lo], segNodes[lo+1]},
			})
		} else {
			root.Children = append(root.Children, segNodes[lo])
		}
	}
	p.Tree = root
	return p
}

// prevOf returns the attachment atom preceding sidechain atom si.
func prevOf(r residue, si int) int {
	if si == 1 {
		return r.ca
	}
	return r.side[si-2]
}

// growStrandResidue appends one residue in extended β-strand geometry:
// ~3.3 Å rise per residue along the segment axis with the alternating
// pleat of a β-strand, no helical twist.
func (p *Problem) growStrandResidue(s, k, count, scSize int, rng *rand.Rand) residue {
	up := s%2 == 0
	t := float64(k)
	if !up {
		t = float64(count - 1 - k)
	}
	z := t * 3.3
	axisX := float64(s) * bundleGap
	pleat := 0.6
	if k%2 == 1 {
		pleat = -pleat
	}
	place := func(dx, dy, dz float64, name string, resIdx int) int {
		pp := geom.Vec3{axisX + dx, pleat + dy, z + dz}
		pp = pp.Add(smallNoise(rng, 0.05))
		p.Atoms = append(p.Atoms, Atom{Name: name, Residue: resIdx, Pos: pp})
		return len(p.Atoms) - 1
	}
	resIdx := len(p.Atoms)
	var r residue
	r.n = place(-0.4, -0.3, -1.1, "N", resIdx)
	r.ca = place(0, 0, 0, "CA", resIdx)
	r.c = place(0.3, 0.3, 1.1, "C", resIdx)
	r.o = place(1.4, 0.5, 1.2, "O", resIdx)
	for si := 0; si < scSize; si++ {
		r.side = append(r.side, place(0.3*float64(si+1), 1.4+1.2*float64(si), 0.1, fmt.Sprintf("S%d", si), resIdx))
	}
	return r
}

// growResidue appends one residue's atoms for segment s at in-segment
// index k (of count residues); antiparallel neighbors run in −z.
func (p *Problem) growResidue(s, k, count, scSize int, rng *rand.Rand) residue {
	up := s%2 == 0
	t := float64(k)
	if !up {
		t = float64(count - 1 - k)
	}
	theta := t * caTwist
	z := t * caRise
	axisX := float64(s) * bundleGap

	place := func(dr, dth, dz float64, name string, resIdx int) int {
		r := caRadius + dr
		a := theta + dth
		pp := geom.Vec3{
			axisX + r*math.Cos(a),
			r * math.Sin(a),
			z + dz,
		}
		pp = pp.Add(smallNoise(rng, 0.05))
		p.Atoms = append(p.Atoms, Atom{Name: name, Residue: resIdx, Pos: pp})
		return len(p.Atoms) - 1
	}
	resIdx := len(p.Atoms) // unique-enough residue tag
	var r residue
	r.n = place(-0.6, -0.45, -0.55, "N", resIdx)
	r.ca = place(0, 0, 0, "CA", resIdx)
	r.c = place(-0.3, 0.40, 0.50, "C", resIdx)
	r.o = place(0.9, 0.55, 0.45, "O", resIdx)
	for si := 0; si < scSize; si++ {
		r.side = append(r.side, place(1.5+1.2*float64(si), 0.12*float64(si+1), 0.2, fmt.Sprintf("S%d", si), resIdx))
	}
	return r
}
