package molecule

import (
	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// WithExclusions returns a copy of the problem augmented with van der
// Waals style excluded-volume constraints — the simplest of the
// non-Gaussian observation types of the paper's reference [2]. Every
// stride-th atom pair that carries no distance observation receives a
// one-sided lower bound d ≥ minDist, active only when the estimate
// violates it.
func WithExclusions(p *Problem, minDist, sigma float64, stride int) *Problem {
	if stride < 1 {
		stride = 1
	}
	// Pairs already constrained by distance data are skipped.
	type pair [2]int
	seen := map[pair]bool{}
	for _, c := range p.Constraints {
		switch v := c.(type) {
		case constraint.Distance:
			seen[pair{min(v.I, v.J), max(v.I, v.J)}] = true
		case constraint.DistanceBound:
			seen[pair{min(v.I, v.J), max(v.I, v.J)}] = true
		}
	}
	cons := append([]constraint.Constraint(nil), p.Constraints...)
	count := 0
	for i := range p.Atoms {
		for j := i + 1; j < len(p.Atoms); j++ {
			if seen[pair{i, j}] {
				continue
			}
			if count%stride == 0 {
				cons = append(cons, constraint.DistanceBound{
					I: i, J: j, Lower: minDist, Sigma: sigma,
				})
			}
			count++
		}
	}
	return &Problem{Name: p.Name + "+vdw", Atoms: p.Atoms, Constraints: cons, Tree: p.Tree}
}

// Clashes counts atom pairs closer than minDist in the given conformation —
// the violation measure excluded-volume constraints exist to drive down.
func Clashes(pos []geom.Vec3, minDist float64) int {
	n := 0
	for i := range pos {
		for j := i + 1; j < len(pos); j++ {
			if geom.Dist(pos[i], pos[j]) < minDist {
				n++
			}
		}
	}
	return n
}
