// Package molecule generates the structure-estimation problems used in the
// paper's evaluation: RNA double helices of configurable length (§3.1,
// Figure 2) and a synthetic stand-in for the prokaryotic 30S ribosomal
// subunit (§4.4, Figure 4). Each problem carries reference ("true") atom
// positions, a constraint set derived from the reference geometry, and the
// hierarchical grouping used for the hierarchical decomposition.
//
// The real 30S data set (neutron-diffraction protein positions plus NMR and
// biochemical constraints) is not publicly available; Ribo30S synthesizes a
// problem with the same structural statistics — component counts, pseudo-atom
// budget (~900), constraint budget (~6500), constraint locality, and the
// high branching factor of its decomposition — which are the properties the
// evaluation depends on.
package molecule

import (
	"fmt"
	"sort"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// Atom is one (pseudo-)atom of a problem with its reference position.
type Atom struct {
	Name    string
	Residue int // residue / component identifier (generator-specific)
	Pos     geom.Vec3
}

// Group is a node of the hierarchical grouping of a molecule. Leaves own
// atom indices directly; the atom set of an interior node is the union over
// its subtree.
type Group struct {
	Name     string
	AtomIDs  []int // atoms owned directly (usually only at leaves)
	Children []*Group
}

// Atoms returns the sorted union of all atom indices in the subtree.
func (g *Group) Atoms() []int {
	var out []int
	g.walk(func(n *Group) { out = append(out, n.AtomIDs...) })
	sort.Ints(out)
	return out
}

// Leaves returns the leaf groups of the subtree in left-to-right order.
func (g *Group) Leaves() []*Group {
	var out []*Group
	g.walk(func(n *Group) {
		if len(n.Children) == 0 {
			out = append(out, n)
		}
	})
	return out
}

// Count returns the number of nodes in the subtree.
func (g *Group) Count() int {
	n := 0
	g.walk(func(*Group) { n++ })
	return n
}

// Depth returns the height of the subtree (a leaf has depth 1).
func (g *Group) Depth() int {
	d := 0
	for _, c := range g.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

func (g *Group) walk(f func(*Group)) {
	f(g)
	for _, c := range g.Children {
		c.walk(f)
	}
}

// Problem is a complete structure-estimation problem instance.
type Problem struct {
	Name        string
	Atoms       []Atom
	Constraints []constraint.Constraint
	Tree        *Group
}

// TruePositions returns the reference coordinates of all atoms.
func (p *Problem) TruePositions() []geom.Vec3 {
	out := make([]geom.Vec3, len(p.Atoms))
	for i, a := range p.Atoms {
		out[i] = a.Pos
	}
	return out
}

// ScalarDim returns the total scalar dimension of the constraint set.
func (p *Problem) ScalarDim() int {
	d := 0
	for _, c := range p.Constraints {
		d += c.Dim()
	}
	return d
}

func (p *Problem) String() string {
	return fmt.Sprintf("%s: %d atoms, %d constraints (%d scalar)",
		p.Name, len(p.Atoms), len(p.Constraints), p.ScalarDim())
}

// WithAnchors returns a shallow copy of the problem with the first k atoms
// anchored at their reference positions. Distance-only problems are defined
// only up to a rigid motion; anchors remove that gauge freedom for accuracy
// experiments (the paper's ribosome problem plays the same trick with its
// neutron-diffraction protein reference points).
func WithAnchors(p *Problem, k int, sigma float64) *Problem {
	if k > len(p.Atoms) {
		k = len(p.Atoms)
	}
	cons := make([]constraint.Constraint, 0, len(p.Constraints)+k)
	for i := 0; i < k; i++ {
		cons = append(cons, constraint.Position{I: i, Target: p.Atoms[i].Pos, Sigma: sigma})
	}
	cons = append(cons, p.Constraints...)
	return &Problem{Name: p.Name + "+anchors", Atoms: p.Atoms, Constraints: cons, Tree: p.Tree}
}

// allPairsWithin appends a Distance constraint for every pair (i, j) from
// the two index slices whose reference distance is below cutoff. When the
// slices are identical, each unordered pair is visited once.
func allPairsWithin(atoms []Atom, a, b []int, cutoff, sigma float64, out []constraint.Constraint) []constraint.Constraint {
	same := len(a) > 0 && len(b) == len(a) && &a[0] == &b[0]
	for ii, i := range a {
		jj0 := 0
		if same {
			jj0 = ii + 1
		}
		for _, j := range b[jj0:] {
			if i == j {
				continue
			}
			d := geom.Dist(atoms[i].Pos, atoms[j].Pos)
			if d < cutoff {
				out = append(out, constraint.Distance{I: i, J: j, Target: d, Sigma: sigma})
			}
		}
	}
	return out
}
