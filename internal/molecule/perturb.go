package molecule

import (
	"math"
	"math/rand"

	"phmse/internal/geom"
)

// Perturbed returns the reference positions displaced by isotropic Gaussian
// noise of the given per-coordinate standard deviation (Å). It provides the
// distorted starting estimates used by the accuracy experiments; the paper's
// ribosome problem instead seeds from a discrete conformational-space
// search, which package conform reproduces.
func Perturbed(p *Problem, sigma float64, seed int64) []geom.Vec3 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Vec3, len(p.Atoms))
	for i, a := range p.Atoms {
		out[i] = a.Pos.Add(geom.Vec3{
			sigma * rng.NormFloat64(),
			sigma * rng.NormFloat64(),
			sigma * rng.NormFloat64(),
		})
	}
	return out
}

// RMSD returns the root-mean-square deviation between two conformations
// without superposition (positions are compared in the shared frame).
func RMSD(a, b []geom.Vec3) float64 {
	if len(a) != len(b) {
		panic("molecule: RMSD length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		s += a[i].Sub(b[i]).Norm2()
	}
	return math.Sqrt(s / float64(len(a)))
}
