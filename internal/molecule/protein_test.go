package molecule

import (
	"math"
	"strings"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

func TestProteinShape(t *testing.T) {
	p := Protein(48, 1)
	// 4 backbone atoms per residue plus cycling sidechains.
	if len(p.Atoms) < 48*4 || len(p.Atoms) > 48*9 {
		t.Fatalf("atoms = %d", len(p.Atoms))
	}
	// Hierarchy: bundle → segment pairs → segments → residues → leaves.
	if p.Tree.Depth() != 5 {
		t.Fatalf("depth = %d", p.Tree.Depth())
	}
	if len(p.Tree.Children) != 2 { // 4 segments grouped into 2 pairs
		t.Fatalf("pairs = %d", len(p.Tree.Children))
	}
	if len(segmentNodes(p.Tree)) != 4 { // 48 residues / 12 per segment
		t.Fatalf("segments = %d", len(segmentNodes(p.Tree)))
	}
	// Leaves partition the atoms.
	seen := map[int]bool{}
	for _, l := range p.Tree.Leaves() {
		for _, a := range l.AtomIDs {
			if seen[a] {
				t.Fatalf("atom %d in two leaves", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != len(p.Atoms) {
		t.Fatalf("leaves cover %d of %d atoms", len(seen), len(p.Atoms))
	}
}

func TestProteinUsesAllConstraintTypes(t *testing.T) {
	p := Protein(24, 2)
	counts := map[string]int{}
	for _, c := range p.Constraints {
		switch c.(type) {
		case constraint.Distance:
			counts["distance"]++
		case constraint.Angle:
			counts["angle"]++
		case constraint.Torsion:
			counts["torsion"]++
		default:
			t.Fatalf("unexpected constraint type %T", c)
		}
	}
	for _, kind := range []string{"distance", "angle", "torsion"} {
		if counts[kind] == 0 {
			t.Fatalf("no %s constraints generated", kind)
		}
	}
	// φ/ψ per residue junction: torsions should be ~2×(residues − segments).
	if counts["torsion"] < 24 {
		t.Fatalf("torsions = %d", counts["torsion"])
	}
}

func TestProteinConstraintsConsistent(t *testing.T) {
	p := Protein(24, 3)
	pos := p.TruePositions()
	for _, c := range p.Constraints {
		switch v := c.(type) {
		case constraint.Distance:
			if math.Abs(geom.Dist(pos[v.I], pos[v.J])-v.Target) > 1e-9 {
				t.Fatalf("distance target inconsistent: %+v", v)
			}
		case constraint.Angle:
			if math.Abs(geom.Angle(pos[v.I], pos[v.J], pos[v.K])-v.Target) > 1e-9 {
				t.Fatalf("angle target inconsistent: %+v", v)
			}
		case constraint.Torsion:
			got := geom.Dihedral(pos[v.I], pos[v.J], pos[v.K], pos[v.L])
			diff := math.Abs(got - v.Target)
			if diff > math.Pi {
				diff = 2*math.Pi - diff
			}
			if diff > 1e-9 {
				t.Fatalf("torsion target inconsistent: %+v (geometry %g)", v, got)
			}
		}
	}
}

func TestProteinHydrogenBonds(t *testing.T) {
	// α-helical H-bonds O(i)…N(i+4) must exist and be short (< 6 Å in the
	// idealized geometry).
	p := Protein(12, 4)
	pos := p.TruePositions()
	hbonds := 0
	for _, c := range p.Constraints {
		d, ok := c.(constraint.Distance)
		if !ok || d.Sigma != sigmaHBond {
			continue
		}
		hbonds++
		if geom.Dist(pos[d.I], pos[d.J]) > 8 {
			t.Fatalf("H-bond distance %g too long", geom.Dist(pos[d.I], pos[d.J]))
		}
	}
	if hbonds != 12-4 {
		t.Fatalf("hbonds = %d, want %d", hbonds, 12-4)
	}
}

// segmentNodes returns the segment-level nodes of a protein tree
// (the children of the pair nodes, plus any unpaired leftover segment).
func segmentNodes(root *Group) []*Group {
	var out []*Group
	for _, c := range root.Children {
		if strings.HasPrefix(c.Name, "pair") {
			out = append(out, c.Children...)
		} else {
			out = append(out, c)
		}
	}
	return out
}

func TestProteinTertiaryContacts(t *testing.T) {
	// Segments of the bundle must be cross-linked by contact constraints.
	p := ProteinWith(ProteinConfig{Residues: 24, SegmentLen: 12, Seed: 5})
	segs := segmentNodes(p.Tree)
	segAtoms := make([]map[int]bool, len(segs))
	for si, seg := range segs {
		segAtoms[si] = map[int]bool{}
		for _, a := range seg.Atoms() {
			segAtoms[si][a] = true
		}
	}
	cross := 0
	for _, c := range p.Constraints {
		d, ok := c.(constraint.Distance)
		if !ok {
			continue
		}
		if segAtoms[0][d.I] != segAtoms[0][d.J] {
			cross++
		}
	}
	if cross == 0 {
		t.Fatal("no tertiary contacts between bundle segments")
	}
}

func TestProteinDeterministic(t *testing.T) {
	a := Protein(24, 9)
	b := Protein(24, 9)
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos {
			t.Fatal("non-deterministic")
		}
	}
}

func TestProteinMixedSheets(t *testing.T) {
	p := ProteinWith(ProteinConfig{Residues: 48, SegmentLen: 12, Mixed: true, Seed: 4})
	segs := segmentNodes(p.Tree)
	if len(segs) != 4 {
		t.Fatalf("segments = %d", len(segs))
	}
	// Same atom budget as the pure-helix variant.
	pure := ProteinWith(ProteinConfig{Residues: 48, SegmentLen: 12, Seed: 4})
	if len(p.Atoms) != len(pure.Atoms) {
		t.Fatalf("mixed atoms %d vs pure %d", len(p.Atoms), len(pure.Atoms))
	}
	// β-strands are extended: strand segment 1 spans more z than helix
	// segment 0.
	span := func(g *Group) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, a := range g.Atoms() {
			z := p.Atoms[a].Pos[2]
			if z < lo {
				lo = z
			}
			if z > hi {
				hi = z
			}
		}
		return hi - lo
	}
	helixSpan := span(segs[0])
	strandSpan := span(segs[1])
	if strandSpan < 1.5*helixSpan {
		t.Fatalf("strand span %g not extended vs helix %g", strandSpan, helixSpan)
	}
	// Constraint targets stay consistent with the geometry.
	pos := p.TruePositions()
	for _, c := range p.Constraints {
		if d, ok := c.(constraint.Distance); ok {
			if math.Abs(geom.Dist(pos[d.I], pos[d.J])-d.Target) > 1e-9 {
				t.Fatalf("inconsistent mixed-protein distance %+v", d)
			}
		}
	}
}
