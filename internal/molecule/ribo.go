package molecule

import (
	"fmt"
	"math"
	"math/rand"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

// Synthetic 30S ribosomal subunit generator (§4.4 of the paper). The real
// problem models the 16S rRNA — about 65 double helices plus roughly as many
// interconnecting coils — together with 21 proteins whose positions are
// known from neutron diffraction and serve as reference points. The modeled
// problem has about 900 pseudo-atoms and 6500 constraints. This generator
// synthesizes a problem with those statistics; see DESIGN.md for the
// substitution rationale.

// Ribo30SConfig parametrizes the synthetic ribosome generator; the zero
// value is replaced by the paper-scale defaults.
type Ribo30SConfig struct {
	Helices  int // number of double-helix segments (default 65)
	Coils    int // number of coil segments (default 65)
	Proteins int // number of protein reference points (default 21)
	Seed     int64
}

func (c Ribo30SConfig) withDefaults() Ribo30SConfig {
	if c.Helices == 0 {
		c.Helices = 65
	}
	if c.Coils == 0 {
		c.Coils = 65
	}
	if c.Proteins == 0 {
		c.Proteins = 21
	}
	return c
}

const (
	riboHelixAtoms = 8   // pseudo-atoms per helix segment (two strands of 4)
	riboCoilAtoms  = 5   // pseudo-atoms per coil segment
	riboStep       = 5.9 // Å between consecutive pseudo-atoms along a segment
	riboRadius     = 46  // Å bounding sphere of the assembly
	riboCutCross   = 9.6 // Å cutoff for inter-segment contact constraints
	riboCutProt    = 13  // Å cutoff for helix-protein distances
	sigmaRiboGeom  = 0.3 // within-segment geometric constraints
	sigmaRiboCross = 1.0 // segment-to-segment distances
	sigmaRiboProt  = 1.2 // helix-to-protein distances
	sigmaProtein   = 1.5 // protein reference-point anchors
)

// segment records the atoms of one generated rRNA segment.
type segment struct {
	name  string
	helix bool
	atoms []int
}

// Ribo30S generates the synthetic 30S ribosomal subunit problem with the
// default paper-scale configuration.
func Ribo30S(seed int64) *Problem {
	return Ribo30SWith(Ribo30SConfig{Seed: seed})
}

// Ribo30SWith generates a synthetic ribosome problem with explicit sizing,
// which the tests use to exercise scaled-down instances.
func Ribo30SWith(cfg Ribo30SConfig) *Problem {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Problem{Name: "ribo30S"}

	// Proteins: single pseudo-atoms on a golden-angle spiral over the
	// bounding sphere; they get absolute position observations, standing in
	// for the neutron-diffraction map.
	var protAtoms []int
	protRadius := riboRadius * math.Cbrt(float64(cfg.Helices+cfg.Coils)/130)
	golden := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < cfg.Proteins; i++ {
		y := 1 - 2*float64(i)/float64(cfg.Proteins-1)
		if cfg.Proteins == 1 {
			y = 0
		}
		r := math.Sqrt(math.Max(0, 1-y*y))
		a := golden * float64(i)
		pos := geom.Vec3{protRadius * r * math.Cos(a), protRadius * y, protRadius * r * math.Sin(a)}
		p.Atoms = append(p.Atoms, Atom{Name: fmt.Sprintf("S%d", i+2), Residue: -1 - i, Pos: pos})
		protAtoms = append(protAtoms, len(p.Atoms)-1)
	}

	// rRNA segments: alternate helices and coils along a bounded random
	// walk so that consecutive segments connect and non-consecutive ones
	// come near each other, producing localized plus long-range contacts.
	// The bounding radius scales with the cube root of the segment count so
	// scaled-down instances keep the full problem's contact density.
	nSeg := cfg.Helices + cfg.Coils
	radius := riboRadius * math.Cbrt(float64(nSeg)/130)
	segs := make([]segment, 0, nSeg)
	cursor := geom.Vec3{radius * 0.4, 0, 0}
	dir := geom.Vec3{1, 0, 0}
	hLeft, cLeft := cfg.Helices, cfg.Coils
	for s := 0; s < nSeg; s++ {
		isHelix := (s%2 == 0 && hLeft > 0) || cLeft == 0
		if isHelix {
			hLeft--
		} else {
			cLeft--
		}
		// Random bounded-walk direction change.
		dir = perturbDir(rng, dir, 0.9)
		if cursor.Norm() > radius*0.9 {
			dir = cursor.Scale(-1 / cursor.Norm()) // steer back inside
			dir = perturbDir(rng, dir, 0.4)
		}
		var seg segment
		if isHelix {
			seg = growRiboHelix(p, s, cursor, dir, rng)
		} else {
			seg = growRiboCoil(p, s, cursor, dir, rng)
		}
		segs = append(segs, seg)
		cursor = p.Atoms[seg.atoms[len(seg.atoms)-1]].Pos
	}

	// Constraints.
	var cons []constraint.Constraint
	// Protein reference points.
	for _, a := range protAtoms {
		cons = append(cons, constraint.Position{I: a, Target: p.Atoms[a].Pos, Sigma: sigmaProtein})
	}
	// Within-segment geometry: all pairs inside a segment.
	for _, seg := range segs {
		cons = allPairsWithin(p.Atoms, seg.atoms, seg.atoms, 1e9, sigmaRiboGeom, cons)
	}
	// Chain continuity between consecutive segments.
	for s := 0; s+1 < len(segs); s++ {
		i := segs[s].atoms[len(segs[s].atoms)-1]
		j := segs[s+1].atoms[0]
		d := geom.Dist(p.Atoms[i].Pos, p.Atoms[j].Pos)
		cons = append(cons, constraint.Distance{I: i, J: j, Target: d, Sigma: sigmaRiboGeom})
	}
	// Inter-segment contacts: experimental distances between helices (and
	// coils) that happen to lie near each other in the folded structure.
	for s := 0; s < len(segs); s++ {
		for q := s + 1; q < len(segs); q++ {
			cons = allPairsWithin(p.Atoms, segs[s].atoms, segs[q].atoms, riboCutCross, sigmaRiboCross, cons)
		}
	}
	// Helix-to-protein distances.
	for _, seg := range segs {
		if !seg.helix {
			continue
		}
		cons = allPairsWithin(p.Atoms, seg.atoms, protAtoms, riboCutProt, sigmaRiboProt, cons)
	}
	p.Constraints = cons

	// Figure 4 decomposition: the root fans out into domains of roughly ten
	// consecutive segments plus a protein group; each segment is a further
	// node. The high branching factor at the top is what lets the static
	// scheduler divide processors evenly (no power-of-two speedup dips).
	p.Tree = riboTree(p, segs, protAtoms)
	return p
}

func perturbDir(rng *rand.Rand, dir geom.Vec3, amount float64) geom.Vec3 {
	d := dir.Add(geom.Vec3{
		amount * rng.NormFloat64(),
		amount * rng.NormFloat64(),
		amount * rng.NormFloat64(),
	})
	if d.Norm() < 1e-9 {
		d = geom.Vec3{1, 0, 0}
	}
	return d.Unit()
}

// growRiboHelix lays down a short double helix: two antiparallel strands of
// four pseudo-atoms each, straddling the segment axis.
func growRiboHelix(p *Problem, s int, start, dir geom.Vec3, rng *rand.Rand) segment {
	seg := segment{name: fmt.Sprintf("h%d", s), helix: true}
	// Perpendicular offset between the strands.
	perp := dir.Cross(geom.Vec3{0, 0, 1})
	if perp.Norm() < 0.1 {
		perp = dir.Cross(geom.Vec3{0, 1, 0})
	}
	perp = perp.Unit().Scale(2.0)
	half := riboHelixAtoms / 2
	for k := 0; k < half; k++ {
		pos := start.Add(dir.Scale(riboStep * float64(k+1))).Add(perp)
		pos = pos.Add(smallNoise(rng, 0.3))
		p.Atoms = append(p.Atoms, Atom{Name: fmt.Sprintf("%s.a%d", seg.name, k), Residue: s, Pos: pos})
		seg.atoms = append(seg.atoms, len(p.Atoms)-1)
	}
	for k := 0; k < half; k++ {
		pos := start.Add(dir.Scale(riboStep * float64(half-k))).Sub(perp)
		pos = pos.Add(smallNoise(rng, 0.3))
		p.Atoms = append(p.Atoms, Atom{Name: fmt.Sprintf("%s.b%d", seg.name, k), Residue: s, Pos: pos})
		seg.atoms = append(seg.atoms, len(p.Atoms)-1)
	}
	return seg
}

// growRiboCoil lays down a gently curving single strand of five
// pseudo-atoms.
func growRiboCoil(p *Problem, s int, start, dir geom.Vec3, rng *rand.Rand) segment {
	seg := segment{name: fmt.Sprintf("c%d", s)}
	cur := start
	d := dir
	for k := 0; k < riboCoilAtoms; k++ {
		d = perturbDir(rng, d, 0.25)
		cur = cur.Add(d.Scale(riboStep))
		p.Atoms = append(p.Atoms, Atom{Name: fmt.Sprintf("%s.%d", seg.name, k), Residue: s, Pos: cur})
		seg.atoms = append(seg.atoms, len(p.Atoms)-1)
	}
	return seg
}

func smallNoise(rng *rand.Rand, s float64) geom.Vec3 {
	return geom.Vec3{s * rng.NormFloat64(), s * rng.NormFloat64(), s * rng.NormFloat64()}
}

// riboTree builds the Figure 4 style decomposition: root → spatial domains
// (plus one protein group) → segments → strand leaves for helices. Domains
// group segments by spatial proximity (k-means over segment centroids), so
// most inter-segment contact constraints stay inside a domain — the
// locality property the hierarchical decomposition exploits.
func riboTree(p *Problem, segs []segment, protAtoms []int) *Group {
	root := &Group{Name: "ribo30S"}
	const domains = 13
	assign := clusterSegments(p, segs, domains)
	for d := 0; d < domains; d++ {
		dom := &Group{Name: fmt.Sprintf("domain%d", d)}
		for si, seg := range segs {
			if assign[si] != d {
				continue
			}
			node := &Group{Name: seg.name}
			if seg.helix {
				half := len(seg.atoms) / 2
				node.Children = []*Group{
					{Name: seg.name + ".s1", AtomIDs: append([]int(nil), seg.atoms[:half]...)},
					{Name: seg.name + ".s2", AtomIDs: append([]int(nil), seg.atoms[half:]...)},
				}
			} else {
				node.AtomIDs = append([]int(nil), seg.atoms...)
			}
			dom.Children = append(dom.Children, node)
		}
		if len(dom.Children) > 0 {
			root.Children = append(root.Children, dom)
		}
	}
	if len(protAtoms) > 0 {
		root.Children = append(root.Children, &Group{
			Name:    "proteins",
			AtomIDs: append([]int(nil), protAtoms...),
		})
	}
	return root
}

// clusterSegments assigns segments to k spatial clusters with a small
// deterministic k-means over segment centroids.
func clusterSegments(p *Problem, segs []segment, k int) []int {
	centroids := make([]geom.Vec3, len(segs))
	for i, seg := range segs {
		var c geom.Vec3
		for _, a := range seg.atoms {
			c = c.Add(p.Atoms[a].Pos)
		}
		centroids[i] = c.Scale(1 / float64(len(seg.atoms)))
	}
	// Seed cluster centers with evenly strided segment centroids.
	centers := make([]geom.Vec3, k)
	for j := 0; j < k; j++ {
		centers[j] = centroids[j*len(segs)/k]
	}
	assign := make([]int, len(segs))
	for iter := 0; iter < 25; iter++ {
		changed := false
		for i, c := range centroids {
			best, bestD := assign[i], math.Inf(1)
			for j, ctr := range centers {
				if d := c.Sub(ctr).Norm2(); d < bestD {
					best, bestD = j, d
				}
			}
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		sums := make([]geom.Vec3, k)
		for i, a := range assign {
			counts[a]++
			sums[a] = sums[a].Add(centroids[i])
		}
		for j := range centers {
			if counts[j] > 0 {
				centers[j] = sums[j].Scale(1 / float64(counts[j]))
			}
		}
	}
	return assign
}
