package molecule

import (
	"math"
	"testing"

	"phmse/internal/constraint"
	"phmse/internal/geom"
)

func TestGroupAtomsUnion(t *testing.T) {
	g := &Group{
		Children: []*Group{
			{AtomIDs: []int{3, 1}},
			{Children: []*Group{{AtomIDs: []int{2}}, {AtomIDs: []int{5, 4}}}},
		},
	}
	atoms := g.Atoms()
	want := []int{1, 2, 3, 4, 5}
	if len(atoms) != len(want) {
		t.Fatalf("atoms = %v", atoms)
	}
	for i := range want {
		if atoms[i] != want[i] {
			t.Fatalf("atoms = %v (not sorted union)", atoms)
		}
	}
	if len(g.Leaves()) != 3 {
		t.Fatalf("leaves = %d", len(g.Leaves()))
	}
	if g.Count() != 5 {
		t.Fatalf("count = %d", g.Count())
	}
	if g.Depth() != 3 {
		t.Fatalf("depth = %d", g.Depth())
	}
}

func TestBaseTypeComplement(t *testing.T) {
	pairs := map[BaseType]BaseType{BaseA: BaseU, BaseU: BaseA, BaseC: BaseG, BaseG: BaseC}
	for b, want := range pairs {
		if b.Complement() != want {
			t.Fatalf("%v complement = %v", b, b.Complement())
		}
		if b.Complement().Complement() != b {
			t.Fatal("complement not involutive")
		}
	}
	if BaseA.String() != "A" || BaseU.String() != "U" {
		t.Fatal("String")
	}
}

func TestHelixAtomCountsMatchPaper(t *testing.T) {
	// Table 1: 43 atoms per base pair.
	for _, bp := range []int{1, 2, 4, 8} {
		h := Helix(bp)
		if len(h.Atoms) != 43*bp {
			t.Fatalf("%d bp: %d atoms, want %d", bp, len(h.Atoms), 43*bp)
		}
	}
}

func TestHelixConstraintCountsTrackPaper(t *testing.T) {
	// The generated constraint counts should be within 15% of Table 1.
	paper := map[int]int{1: 675, 2: 1574, 4: 3294, 8: 6810}
	for bp, want := range paper {
		got := Helix(bp).ScalarDim()
		if ratio := float64(got) / float64(want); ratio < 0.75 || ratio > 1.15 {
			t.Fatalf("%d bp: %d constraints vs paper %d (ratio %.2f)", bp, got, want, ratio)
		}
	}
}

func TestHelixConstraintsConsistentWithGeometry(t *testing.T) {
	h := Helix(2)
	pos := h.TruePositions()
	// Every distance constraint's target equals the reference geometry.
	for _, c := range h.Constraints {
		d, ok := c.(constraint.Distance)
		if !ok {
			t.Fatalf("unexpected constraint type %T", c)
		}
		actual := geom.Dist(pos[d.I], pos[d.J])
		if math.Abs(actual-d.Target) > 1e-12 {
			t.Fatalf("constraint target %g, geometry %g", d.Target, actual)
		}
		if d.Sigma <= 0 {
			t.Fatal("non-positive sigma")
		}
	}
}

func TestHelixTreeShape(t *testing.T) {
	h := Helix(4)
	// 4 bp: helix nodes 3 (root + 2), bp nodes 4, base nodes 8, leaves 16.
	if got := h.Tree.Count(); got != 31 {
		t.Fatalf("tree nodes = %d, want 31", got)
	}
	if d := h.Tree.Depth(); d != 5 {
		t.Fatalf("depth = %d, want 5", d)
	}
	leaves := h.Tree.Leaves()
	if len(leaves) != 16 {
		t.Fatalf("leaves = %d, want 16", len(leaves))
	}
	// Leaves partition the atoms.
	seen := map[int]bool{}
	for _, l := range leaves {
		for _, a := range l.AtomIDs {
			if seen[a] {
				t.Fatalf("atom %d in two leaves", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != len(h.Atoms) {
		t.Fatalf("leaves cover %d of %d atoms", len(seen), len(h.Atoms))
	}
}

func TestHelixConstraintLocality(t *testing.T) {
	// Most constraints must be assignable below the root: the premise of
	// the hierarchical decomposition (§3).
	h := Helix(8)
	root := h.Tree
	if len(root.Children) != 2 {
		t.Fatal("root should have two children")
	}
	inChild := make([]map[int]bool, 2)
	for i, c := range root.Children {
		inChild[i] = map[int]bool{}
		for _, a := range c.Atoms() {
			inChild[i][a] = true
		}
	}
	atRoot := 0
	for _, c := range h.Constraints {
		fits := false
		for i := range inChild {
			all := true
			for _, a := range c.Atoms() {
				if !inChild[i][a] {
					all = false
					break
				}
			}
			if all {
				fits = true
				break
			}
		}
		if !fits {
			atRoot++
		}
	}
	frac := float64(atRoot) / float64(len(h.Constraints))
	if frac > 0.1 {
		t.Fatalf("%.1f%% of constraints stuck at root; want < 10%%", 100*frac)
	}
}

func TestHelixRejectsZeroLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 0 bp")
		}
	}()
	Helix(0)
}

func TestRibo30SScale(t *testing.T) {
	r := Ribo30S(42)
	if n := len(r.Atoms); n < 800 || n > 1000 {
		t.Fatalf("atoms = %d, want ~900", n)
	}
	if c := r.ScalarDim(); c < 5000 || c > 9000 {
		t.Fatalf("scalar constraints = %d, want ~6500", c)
	}
	// High branching factor at the root (paper: avoids power-of-2 dips).
	if len(r.Tree.Children) < 8 {
		t.Fatalf("root branching = %d, want ≥ 8", len(r.Tree.Children))
	}
	// Leaves cover all atoms exactly once.
	seen := map[int]bool{}
	for _, l := range r.Tree.Leaves() {
		for _, a := range l.AtomIDs {
			if seen[a] {
				t.Fatalf("atom %d in two leaves", a)
			}
			seen[a] = true
		}
	}
	if len(seen) != len(r.Atoms) {
		t.Fatalf("leaves cover %d of %d atoms", len(seen), len(r.Atoms))
	}
}

func TestRibo30SDeterministic(t *testing.T) {
	a := Ribo30S(7)
	b := Ribo30S(7)
	if len(a.Atoms) != len(b.Atoms) || len(a.Constraints) != len(b.Constraints) {
		t.Fatal("same seed produced different problems")
	}
	for i := range a.Atoms {
		if a.Atoms[i].Pos != b.Atoms[i].Pos {
			t.Fatal("same seed produced different geometry")
		}
	}
	c := Ribo30S(8)
	same := true
	for i := range a.Atoms {
		if i < len(c.Atoms) && a.Atoms[i].Pos != c.Atoms[i].Pos {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical geometry")
	}
}

func TestRibo30SSmallConfig(t *testing.T) {
	r := Ribo30SWith(Ribo30SConfig{Helices: 4, Coils: 4, Proteins: 3, Seed: 1})
	if len(r.Atoms) != 4*8+4*5+3 {
		t.Fatalf("atoms = %d", len(r.Atoms))
	}
	// Position anchors present for each protein.
	anchors := 0
	for _, c := range r.Constraints {
		if _, ok := c.(constraint.Position); ok {
			anchors++
		}
	}
	if anchors != 3 {
		t.Fatalf("anchors = %d", anchors)
	}
}

func TestWithAnchors(t *testing.T) {
	h := Helix(1)
	a := WithAnchors(h, 2, 0.1)
	if len(a.Constraints) != len(h.Constraints)+2 {
		t.Fatal("anchor count")
	}
	p0, ok := a.Constraints[0].(constraint.Position)
	if !ok || p0.Target != h.Atoms[0].Pos {
		t.Fatal("anchor 0 wrong")
	}
	// Clamp k to atom count.
	b := WithAnchors(h, 10_000, 0.1)
	if len(b.Constraints) != len(h.Constraints)+len(h.Atoms) {
		t.Fatal("k clamp")
	}
}

func TestPerturbedAndRMSD(t *testing.T) {
	h := Helix(1)
	pos := Perturbed(h, 0.5, 3)
	if len(pos) != len(h.Atoms) {
		t.Fatal("length")
	}
	r := RMSD(pos, h.TruePositions())
	// Expected RMSD ≈ 0.5·√3 ≈ 0.87 with wide tolerance.
	if r < 0.4 || r > 1.5 {
		t.Fatalf("perturbation RMSD = %g", r)
	}
	if RMSD(pos, pos) != 0 {
		t.Fatal("self RMSD")
	}
	if RMSD(nil, nil) != 0 {
		t.Fatal("empty RMSD")
	}
	// Deterministic for a fixed seed.
	again := Perturbed(h, 0.5, 3)
	if RMSD(pos, again) != 0 {
		t.Fatal("Perturbed not deterministic")
	}
}

func TestProblemString(t *testing.T) {
	h := Helix(1)
	if h.String() == "" || h.Tree.Name == "" {
		t.Fatal("naming")
	}
}

func TestWithExclusions(t *testing.T) {
	h := Helix(1)
	aug := WithExclusions(h, 2.0, 0.5, 10)
	added := len(aug.Constraints) - len(h.Constraints)
	if added <= 0 {
		t.Fatal("no exclusions added")
	}
	// Added constraints are lower-only bounds on unobserved pairs.
	seen := map[[2]int]bool{}
	for _, c := range h.Constraints {
		d, ok := c.(constraint.Distance)
		if !ok {
			continue
		}
		i, j := d.I, d.J
		if i > j {
			i, j = j, i
		}
		seen[[2]int{i, j}] = true
	}
	for _, c := range aug.Constraints[len(h.Constraints):] {
		b, ok := c.(constraint.DistanceBound)
		if !ok {
			t.Fatalf("added constraint has type %T", c)
		}
		if b.Lower != 2.0 || b.Upper != 0 {
			t.Fatalf("bound %+v", b)
		}
		i, j := b.I, b.J
		if i > j {
			i, j = j, i
		}
		if seen[[2]int{i, j}] {
			t.Fatal("exclusion added on an observed pair")
		}
	}
	// Stride 10 keeps roughly a tenth of candidate pairs.
	all := WithExclusions(h, 2.0, 0.5, 1)
	allAdded := len(all.Constraints) - len(h.Constraints)
	if added > allAdded/8 || added < allAdded/14 {
		t.Fatalf("stride sampling off: %d of %d", added, allAdded)
	}
}

func TestClashes(t *testing.T) {
	pos := []geom.Vec3{{0, 0, 0}, {0.5, 0, 0}, {10, 0, 0}}
	if got := Clashes(pos, 1.0); got != 1 {
		t.Fatalf("clashes = %d", got)
	}
	if got := Clashes(pos, 0.1); got != 0 {
		t.Fatalf("clashes = %d", got)
	}
}
