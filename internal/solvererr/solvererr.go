// Package solvererr defines the typed failure taxonomy of the estimation
// pipeline. Every way a solve can fail numerically maps onto one sentinel
// (matched with errors.Is) plus a typed error value carrying the failure's
// context: which node and batch produced an indefinite innovation
// covariance, which cycle a NaN appeared in, the RMS trajectory a
// divergence watchdog observed. The serving layer uses the
// transient/permanent classification to decide whether an automatic retry
// has a chance of succeeding, and the Code mapping to put a
// machine-readable cause on the wire.
package solvererr

import (
	"context"
	"errors"
	"fmt"
)

// The failure classes, as sentinels for errors.Is. The typed errors below
// each match exactly one of them.
var (
	// ErrIndefinite: an innovation covariance S = H·C·Hᵀ + R failed its
	// Cholesky factorization even after bounded ridge escalation of R.
	ErrIndefinite = errors.New("solver: innovation covariance not positive definite")
	// ErrDiverged: the per-cycle RMS coordinate change grew for enough
	// consecutive cycles that the iteration is moving away from any fixed
	// point.
	ErrDiverged = errors.New("solver: iteration diverged")
	// ErrNonFinite: a NaN or Inf appeared in the state estimate or its
	// covariance and could not be contained by rollback.
	ErrNonFinite = errors.New("solver: non-finite state")
	// ErrCanceled: the solve was stopped by its context before reaching a
	// terminal numerical condition.
	ErrCanceled = errors.New("solver: canceled")
)

// Indefinite is the typed form of ErrIndefinite: a batch whose innovation
// covariance stayed non-positive-definite through every ridge retry.
type Indefinite struct {
	Node    string // hierarchy node name ("" in flat mode)
	Batch   int    // batch index within the node
	Dim     int    // scalar dimension of the failing system (0 if unknown)
	Retries int    // ridge escalations attempted before giving up
	Err     error  // underlying factorization error, if any
}

func (e *Indefinite) Error() string {
	msg := "solver: innovation covariance not positive definite"
	if e.Node != "" {
		msg += fmt.Sprintf(" at node %q", e.Node)
	}
	msg += fmt.Sprintf(" (batch %d", e.Batch)
	if e.Dim > 0 {
		msg += fmt.Sprintf(", m=%d", e.Dim)
	}
	if e.Retries > 0 {
		msg += fmt.Sprintf(", after %d ridge retries", e.Retries)
	}
	return msg + ")"
}

// Is matches the ErrIndefinite sentinel.
func (e *Indefinite) Is(target error) bool { return target == ErrIndefinite }

// Unwrap exposes the underlying factorization error.
func (e *Indefinite) Unwrap() error { return e.Err }

// NonFinite is the typed form of ErrNonFinite: a NaN/Inf contaminated the
// state and rollback could not restore forward progress.
type NonFinite struct {
	Node  string // hierarchy node name ("" in flat mode)
	Batch int    // batch whose application produced the non-finite values
	Cycle int    // 1-based constraint-application cycle
}

func (e *NonFinite) Error() string {
	msg := "solver: non-finite state"
	if e.Node != "" {
		msg += fmt.Sprintf(" at node %q", e.Node)
	}
	return msg + fmt.Sprintf(" (batch %d, cycle %d)", e.Batch, e.Cycle)
}

// Is matches the ErrNonFinite sentinel.
func (e *NonFinite) Is(target error) bool { return target == ErrNonFinite }

// Diverged is the typed form of ErrDiverged, carrying the evidence: the
// full per-cycle RMS-change trajectory the watchdog observed, oldest
// first. The final Grew entries are the consecutive increases that
// tripped it.
type Diverged struct {
	Cycles  int       // cycles completed when the watchdog fired
	Grew    int       // consecutive cycles of growing RMS change
	History []float64 // per-cycle RMS coordinate change (Å), oldest first
}

func (e *Diverged) Error() string {
	msg := fmt.Sprintf("solver: iteration diverged (RMS change grew for %d consecutive cycles, %d cycles total", e.Grew, e.Cycles)
	if n := len(e.History); n > 0 {
		msg += fmt.Sprintf(", last RMS change %.3g Å", e.History[n-1])
	}
	return msg + ")"
}

// Is matches the ErrDiverged sentinel.
func (e *Diverged) Is(target error) bool { return target == ErrDiverged }

// Transient reports whether retrying the whole solve — with a different
// starting perturbation, or degraded from the hierarchical to the flat
// organization — has a reasonable chance of succeeding. Numerical
// failures are transient (they depend on the trajectory through state
// space); cancellation, deadline expiry, and validation errors are not.
func Transient(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, ErrIndefinite), errors.Is(err, ErrNonFinite), errors.Is(err, ErrDiverged):
		return true
	}
	return false
}

// Wire codes for the failure classes, shared by the job API and the
// command-line tools. They extend the request-level codes of package
// encode with solver-level causes.
const (
	CodeDiverged    = "diverged"
	CodeIndefinite  = "indefinite"
	CodeNonFinite   = "non_finite"
	CodeCanceled    = "canceled"
	CodeTimeout     = "timeout"
	CodeSolverError = "solver_error"
)

// Code maps a solve error onto its machine-readable wire code. Context
// cancellation and deadline expiry are recognized directly so callers can
// pass a solver error through unchanged.
func Code(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDiverged):
		return CodeDiverged
	case errors.Is(err, ErrIndefinite):
		return CodeIndefinite
	case errors.Is(err, ErrNonFinite):
		return CodeNonFinite
	case errors.Is(err, ErrCanceled), errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeTimeout
	}
	return CodeSolverError
}
