// Package mat provides the dense linear-algebra kernels used by the
// structure estimator: matrices, vectors, multiplication (serial, tiled and
// team-parallel), Cholesky factorization and triangular solves.
//
// The package is self-contained (stdlib only) and deliberately small: it
// implements exactly the operation classes the paper's evaluation measures —
// dense matrix multiplication (m-m), matrix-vector products (m-v), Cholesky
// factorization (chol), triangular system solves (sys) and vector operations
// (vec). Sparse-dense products (d-s) live in package sparse.
//
// Matrices are dense, row-major, with an explicit stride so that rectangular
// views into a larger allocation are cheap.
package mat

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix. Element (i, j) is Data[i*Stride+j].
// The zero value is an empty matrix; use New to allocate.
type Mat struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// New allocates a zeroed r×c matrix.
func New(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %d×%d", r, c))
	}
	return &Mat{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Mat {
	if len(rows) == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows")
		}
		copy(m.Row(i), row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Stride+j] }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Stride+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Stride : i*m.Stride+m.Cols] }

// View returns an r×c sub-matrix starting at (i, j) that aliases m's storage.
func (m *Mat) View(i, j, r, c int) *Mat {
	if i < 0 || j < 0 || r < 0 || c < 0 || i+r > m.Rows || j+c > m.Cols {
		panic(fmt.Sprintf("mat: view (%d,%d,%d,%d) out of %d×%d", i, j, r, c, m.Rows, m.Cols))
	}
	return &Mat{Rows: r, Cols: c, Stride: m.Stride, Data: m.Data[i*m.Stride+j:]}
}

// Clone returns a deep copy of m with a compact stride.
func (m *Mat) Clone() *Mat {
	out := New(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.Row(i), m.Row(i))
	}
	return out
}

// CopyFrom copies src into m; dimensions must match.
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mat: copy %d×%d from %d×%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
}

// Zero sets every element of m to zero.
func (m *Mat) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// SetIdentity writes the identity onto m (must be square).
func (m *Mat) SetIdentity() {
	if m.Rows != m.Cols {
		panic("mat: SetIdentity on non-square matrix")
	}
	m.Zero()
	for i := 0; i < m.Rows; i++ {
		m.Set(i, i, 1)
	}
}

// Scale multiplies every element of m by s.
func (m *Mat) Scale(s float64) {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] *= s
		}
	}
}

// Add accumulates a into m element-wise; dimensions must match.
func (m *Mat) Add(a *Mat) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("mat: Add dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		mr, ar := m.Row(i), a.Row(i)
		for j := range mr {
			mr[j] += ar[j]
		}
	}
}

// Sub subtracts a from m element-wise; dimensions must match.
func (m *Mat) Sub(a *Mat) {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		panic("mat: Sub dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		mr, ar := m.Row(i), a.Row(i)
		for j := range mr {
			mr[j] -= ar[j]
		}
	}
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Stride+i] = v
		}
	}
	return t
}

// Symmetrize replaces m with (m + mᵀ)/2, forcing exact symmetry. It is used
// to suppress drift in covariance updates. m must be square.
func (m *Mat) Symmetrize() {
	if m.Rows != m.Cols {
		panic("mat: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbs returns the largest absolute element value, or 0 for empty matrices.
func (m *Mat) MaxAbs() float64 {
	max := 0.0
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.Row(i) {
			if a := math.Abs(v); a > max {
				max = a
			}
		}
	}
	return max
}

// Equal reports whether m and a agree element-wise within tol.
func (m *Mat) Equal(a *Mat, tol float64) bool {
	if m.Rows != a.Rows || m.Cols != a.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		mr, ar := m.Row(i), a.Row(i)
		for j := range mr {
			if math.Abs(mr[j]-ar[j]) > tol {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging.
func (m *Mat) String() string {
	s := fmt.Sprintf("mat %d×%d", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		for i := 0; i < m.Rows; i++ {
			s += "\n"
			for j := 0; j < m.Cols; j++ {
				s += fmt.Sprintf(" % .4g", m.At(i, j))
			}
		}
	}
	return s
}
