package mat

import (
	"fmt"
	"math/rand"
	"testing"

	"phmse/internal/par"
)

// Micro-benchmarks for the m-m covariance-update class: the pre-PR2 dense
// pipeline (full K·Aᵀ product plus averaging symmetrization) against the
// symmetry-aware triangular kernels. Expect ~2× on the simple form and the
// Joseph-form composition.

func benchOperands(n, m int) (c, a, b *Mat) {
	rng := rand.New(rand.NewSource(int64(n*1000 + m)))
	c, a, b = New(n, n), New(n, m), New(n, m)
	for i := range c.Data {
		c.Data[i] = rng.NormFloat64()
	}
	MirrorLower(c)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
		b.Data[i] = rng.NormFloat64()
	}
	return
}

func BenchmarkCovUpdateSimple(bm *testing.B) {
	for _, n := range []int{129, 516} {
		const m = 16
		c, a, b := benchOperands(n, m)
		team := par.NewTeam(1)
		bm.Run(fmt.Sprintf("dense/n=%d", n), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				MulSubNTPar(team, c, a, b)
				SymmetrizePar(team, c)
			}
		})
		bm.Run(fmt.Sprintf("syrk/n=%d", n), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				Syr2kSubPar(team, c, a, b)
			}
		})
	}
}

func BenchmarkCovUpdateJoseph(bm *testing.B) {
	for _, n := range []int{129, 516} {
		const m = 16
		c, k, a := benchOperands(n, m)
		l := New(m, m)
		for i := 0; i < m; i++ {
			l.Set(i, i, 1)
		}
		w := New(n, m)
		team := par.NewTeam(1)
		bm.Run(fmt.Sprintf("dense/n=%d", n), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				MulSubNTPar(team, c, k, a)
				MulSubNTPar(team, c, a, k)
				MulPar(team, w, k, l)
				MulAddNTPar(team, c, w, w)
				SymmetrizePar(team, c)
			}
		})
		bm.Run(fmt.Sprintf("syrk/n=%d", n), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				MulPar(team, w, k, l)
				SyrkAddPar(team, c, w)
				Syr2kPairSubPar(team, c, k, a)
			}
		})
	}
}
