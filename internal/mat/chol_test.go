package mat

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"phmse/internal/par"
)

func TestCholeskyKnown(t *testing.T) {
	// A = L Lᵀ with L = [[2,0],[1,3]] gives A = [[4,2],[2,10]].
	a := FromRows([][]float64{{4, 2}, {2, 10}})
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{2, 0}, {1, 3}})
	if !a.Equal(want, 1e-14) {
		t.Fatalf("got %v want %v", a, want)
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, n := range []int{1, 2, 7, 31, 32, 33, 64, 100} {
		spd := randSPD(rng, n)
		l := spd.Clone()
		if err := Cholesky(l); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		recon := New(n, n)
		MulNT(recon, l, l)
		if !recon.Equal(spd, 1e-8*float64(n)) {
			t.Fatalf("n=%d: L·Lᵀ does not reconstruct input", n)
		}
		// Strict upper triangle must be zeroed.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("n=%d: upper triangle not zeroed at (%d,%d)", n, i, j)
				}
			}
		}
	}
}

func TestCholeskyNotPositiveDefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, −1
	err := Cholesky(a)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	// Blocked path must also detect indefiniteness.
	rng := rand.New(rand.NewSource(21))
	big := randSPD(rng, 80)
	big.Set(70, 70, -5)
	if err := Cholesky(big); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("blocked err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 40
	spd := randSPD(rng, n)
	xTrue := make([]float64, n)
	for i := range xTrue {
		xTrue[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	MulVec(b, spd, xTrue)
	l := spd.Clone()
	if err := Cholesky(l); err != nil {
		t.Fatal(err)
	}
	CholeskySolve(l, b)
	for i := range b {
		if !almostEqual(b[i], xTrue[i], 1e-8) {
			t.Fatalf("solution mismatch at %d: %g vs %g", i, b[i], xTrue[i])
		}
	}
}

func TestSolveCholRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, m := 6, 25
	spd := randSPD(rng, n)
	l := spd.Clone()
	if err := Cholesky(l); err != nil {
		t.Fatal(err)
	}
	b := randMat(rng, m, n)
	got := b.Clone()
	SolveCholRows(l, got)
	// Verify got · spd == b row-wise.
	check := New(m, n)
	Mul(check, got, spd)
	if !check.Equal(b, 1e-8) {
		t.Fatal("SolveCholRows residual too large")
	}
}

func TestForwardBackwardSolve(t *testing.T) {
	l := FromRows([][]float64{{2, 0}, {1, 3}})
	b := []float64{4, 11}
	ForwardSolve(l, b) // L y = b → y = [2, 3]
	if !almostEqual(b[0], 2, 1e-14) || !almostEqual(b[1], 3, 1e-14) {
		t.Fatalf("ForwardSolve got %v", b)
	}
	BackwardSolveT(l, b) // Lᵀ x = y → x[1] = 1, x[0] = (2−1·1)/2 = 0.5
	if !almostEqual(b[1], 1, 1e-14) || !almostEqual(b[0], 0.5, 1e-14) {
		t.Fatalf("BackwardSolveT got %v", b)
	}
}

func TestLogDet(t *testing.T) {
	// det(diag(4, 9)) = 36; logdet = log 36.
	a := FromRows([][]float64{{4, 0}, {0, 9}})
	if err := Cholesky(a); err != nil {
		t.Fatal(err)
	}
	if !almostEqual(LogDet(a), 3.5835189384561099, 1e-12) {
		t.Fatalf("LogDet = %g", LogDet(a))
	}
}

// Property: CholeskyPar produces the same factor as the serial kernel for
// any team size, and solving reproduces identity columns.
func TestCholeskyParMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(90)
		p := 1 + rng.Intn(6)
		spd := randSPD(rng, n)
		serial := spd.Clone()
		if err := Cholesky(serial); err != nil {
			return false
		}
		parallel := spd.Clone()
		if err := CholeskyPar(par.NewTeam(p), parallel); err != nil {
			return false
		}
		return serial.Equal(parallel, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random SPD systems, the Cholesky solve residual is tiny.
func TestCholeskySolveResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		spd := randSPD(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := append([]float64(nil), b...)
		l := spd.Clone()
		if err := Cholesky(l); err != nil {
			return false
		}
		CholeskySolve(l, x)
		res := make([]float64, n)
		MulVec(res, spd, x)
		SubVec(res, res, b)
		return Norm2(res) <= 1e-7*(1+Norm2(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveCholRowsPar(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	n, m := 16, 50
	spd := randSPD(rng, n)
	l := spd.Clone()
	if err := Cholesky(l); err != nil {
		t.Fatal(err)
	}
	b := randMat(rng, m, n)
	serial := b.Clone()
	SolveCholRows(l, serial)
	parallel := b.Clone()
	SolveCholRowsPar(par.NewTeam(5), l, parallel)
	if !serial.Equal(parallel, 1e-12) {
		t.Fatal("parallel multi-RHS solve mismatch")
	}
}

func BenchmarkCholesky128(b *testing.B) {
	rng := rand.New(rand.NewSource(25))
	spd := randSPD(rng, 128)
	work := New(128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		work.CopyFrom(spd)
		if err := Cholesky(work); err != nil {
			b.Fatal(err)
		}
	}
}
