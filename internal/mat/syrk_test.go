package mat

import (
	"math"
	"math/rand"
	"testing"

	"phmse/internal/par"
)

// The symmetry-aware kernels must agree exactly (not just approximately)
// with naive dense references computed in the same dot-product order, across
// random dimensions, strided views and team sizes. Exact agreement is what
// lets the filter drop the post-hoc symmetrization pass.

var teamSizes = []int{1, 2, 4, 7}

// randMat fills an r×c matrix with random values. When offset is true the
// matrix is a view into a larger allocation, so Stride != Cols and row
// slices are non-contiguous — the layout the hierarchical solver produces.
func randMatView(rng *rand.Rand, r, c int, offset bool) *Mat {
	if !offset {
		m := New(r, c)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	back := New(r+3, c+5)
	for i := range back.Data {
		back.Data[i] = rng.NormFloat64()
	}
	return back.View(2, 3, r, c)
}

// refMulNT returns A·Bᵀ with the same Dot kernel the triangular code uses,
// so the comparison is bitwise.
func refMulNT(a, b *Mat) *Mat {
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Rows; j++ {
			out.Set(i, j, Dot(a.Row(i), b.Row(j)))
		}
	}
	return out
}

func TestSyrkSubAddEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(97)
		m := 1 + rng.Intn(33)
		offset := trial%2 == 1
		team := par.NewTeam(teamSizes[trial%len(teamSizes)])

		a := randMatView(rng, n, m, offset)
		c0 := randMatView(rng, n, n, offset)
		aat := refMulNT(a, a)

		for _, sign := range []float64{-1, +1} {
			got := c0.Clone()
			if sign < 0 {
				SyrkSubPar(team, got, a)
			} else {
				SyrkAddPar(team, got, a)
			}
			serial := c0.Clone()
			if sign < 0 {
				SyrkSub(serial, a)
			} else {
				SyrkAdd(serial, a)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var want float64
					if j <= i {
						want = c0.At(i, j) + sign*aat.At(i, j)
					} else {
						want = c0.At(i, j) // strict upper untouched
					}
					if got.At(i, j) != want || serial.At(i, j) != want {
						t.Fatalf("n=%d m=%d sign=%v: (%d,%d) got %g serial %g want %g",
							n, m, sign, i, j, got.At(i, j), serial.At(i, j), want)
					}
				}
			}
		}
	}
}

func TestSyr2kSubEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(97)
		m := 1 + rng.Intn(33)
		offset := trial%2 == 0
		team := par.NewTeam(teamSizes[trial%len(teamSizes)])

		a := randMatView(rng, n, m, offset)
		b := randMatView(rng, n, m, offset)
		c0 := randMatView(rng, n, n, offset)
		abt := refMulNT(a, b)

		got := c0.Clone()
		Syr2kSubPar(team, got, a, b)
		serial := c0.Clone()
		Syr2kSub(serial, a, b)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				want := c0.At(i, j) - abt.At(i, j)
				if got.At(i, j) != want || serial.At(i, j) != want {
					t.Fatalf("n=%d: lower (%d,%d) mismatch", n, i, j)
				}
				if got.At(j, i) != want || serial.At(j, i) != want {
					t.Fatalf("n=%d: mirror (%d,%d) mismatch", n, j, i)
				}
			}
		}
	}
}

func TestSyr2kPairSubEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(97)
		m := 1 + rng.Intn(33)
		team := par.NewTeam(teamSizes[trial%len(teamSizes)])

		a := randMatView(rng, n, m, trial%2 == 1)
		b := randMatView(rng, n, m, trial%2 == 0)
		c0 := randMatView(rng, n, n, false)
		abt, bat := refMulNT(a, b), refMulNT(b, a)

		got := c0.Clone()
		Syr2kPairSubPar(team, got, a, b)
		serial := c0.Clone()
		Syr2kPairSub(serial, a, b)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				want := c0.At(i, j) - abt.At(i, j) - bat.At(i, j)
				if got.At(i, j) != want || serial.At(i, j) != want {
					t.Fatalf("n=%d: lower (%d,%d) mismatch", n, i, j)
				}
				if got.At(j, i) != want {
					t.Fatalf("n=%d: mirror (%d,%d) mismatch", n, j, i)
				}
			}
		}
	}
}

func TestMirrorLower(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, n := range []int{1, 2, 17, 64} {
		for _, p := range teamSizes {
			m := randMatView(rng, n, n, true)
			want := m.Clone()
			MirrorLowerPar(par.NewTeam(p), m)
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					if m.At(i, j) != want.At(i, j) {
						t.Fatal("lower triangle changed")
					}
					if m.At(j, i) != m.At(i, j) {
						t.Fatal("not symmetric after mirror")
					}
				}
			}
		}
	}
}

// TestSymMulVecLowerOnly poisons the strict upper triangle with NaN to prove
// the symmetric mat-vec never reads it.
func TestSymMulVecLowerOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(97)
		team := par.NewTeam(teamSizes[trial%len(teamSizes)])

		c := randMatView(rng, n, n, trial%2 == 0)
		full := c.Clone()
		MirrorLower(full) // reference: the symmetric matrix the kernel sees
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				c.Set(i, j, math.NaN())
			}
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}

		want := make([]float64, n)
		MulVec(want, full, x)
		got := make([]float64, n)
		SymMulVecPar(team, got, c, x)
		serial := make([]float64, n)
		SymMulVec(serial, c, x)
		for i := range want {
			if math.IsNaN(got[i]) || math.IsNaN(serial[i]) {
				t.Fatal("kernel read the poisoned upper triangle")
			}
			if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
				t.Fatalf("n=%d: dst[%d] = %g want %g", n, i, got[i], want[i])
			}
			if got[i] != serial[i] {
				t.Fatal("parallel and serial symmetric mat-vec disagree")
			}
		}
	}
}

func TestSyrkDimensionPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"syrk-rect":   func() { SyrkSub(New(3, 4), New(3, 2)) },
		"syrk-rows":   func() { SyrkAdd(New(3, 3), New(4, 2)) },
		"syr2k-cols":  func() { Syr2kSub(New(3, 3), New(3, 2), New(3, 5)) },
		"syr2k-rows":  func() { Syr2kPairSub(New(3, 3), New(2, 2), New(3, 2)) },
		"mirror-rect": func() { MirrorLower(New(3, 4)) },
		"symmv-rect":  func() { SymMulVec(make([]float64, 3), New(3, 4), make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
