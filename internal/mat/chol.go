package mat

import (
	"errors"
	"fmt"
	"math"
)

// Cholesky factorization ("chol" class). The paper factors the m×m innovation
// covariance S = H C Hᵀ + R of each constraint batch; m is the batch size, so
// the matrices are small and, as the evaluation shows, the factorization
// parallelizes poorly. We provide an unblocked kernel for small matrices and
// a blocked right-looking variant used above cholBlock.

// ErrNotPositiveDefinite is returned when a pivot is non-positive, meaning
// the input matrix is not (numerically) symmetric positive definite.
var ErrNotPositiveDefinite = errors.New("mat: matrix not positive definite")

// cholBlock is the panel width of the blocked factorization.
const cholBlock = 32

// Cholesky overwrites the lower triangle of a with its Cholesky factor L
// (a = L·Lᵀ) and zeroes the strict upper triangle. a must be square.
func Cholesky(a *Mat) error {
	if a.Rows != a.Cols {
		panic("mat: Cholesky of non-square matrix")
	}
	n := a.Rows
	if n <= cholBlock {
		if err := cholUnblocked(a); err != nil {
			return err
		}
		zeroUpper(a)
		return nil
	}
	for k := 0; k < n; k += cholBlock {
		w := min(cholBlock, n-k)
		diag := a.View(k, k, w, w)
		if err := cholUnblocked(diag); err != nil {
			return fmt.Errorf("block at %d: %w", k, err)
		}
		if k+w < n {
			// Panel solve: A21 ← A21·L11⁻ᵀ.
			panel := a.View(k+w, k, n-k-w, w)
			solveRightLowerT(panel, diag)
			// Trailing update: A22 ← A22 − A21·A21ᵀ (lower triangle only).
			trail := a.View(k+w, k+w, n-k-w, n-k-w)
			syrkSubLower(trail, panel, 0, trail.Rows)
		}
	}
	zeroUpper(a)
	return nil
}

// cholUnblocked is the textbook column-oriented factorization; it writes L
// into the lower triangle and leaves the upper triangle untouched.
func cholUnblocked(a *Mat) error {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		jr := a.Row(j)
		for k := 0; k < j; k++ {
			d -= jr[k] * jr[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return fmt.Errorf("%w (pivot %d = %g)", ErrNotPositiveDefinite, j, d)
		}
		d = math.Sqrt(d)
		a.Set(j, j, d)
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			ir := a.Row(i)
			for k := 0; k < j; k++ {
				s -= ir[k] * jr[k]
			}
			a.Set(i, j, s*inv)
		}
	}
	return nil
}

// solveRightLowerT computes B ← B·L⁻ᵀ for lower-triangular L, row by row.
func solveRightLowerT(b, l *Mat) {
	w := l.Rows
	for i := 0; i < b.Rows; i++ {
		br := b.Row(i)
		for j := 0; j < w; j++ {
			s := br[j]
			lr := l.Row(j)
			for k := 0; k < j; k++ {
				s -= br[k] * lr[k]
			}
			br[j] = s / lr[j]
		}
	}
}

// syrkSubLower computes the lower triangle of dst ← dst − P·Pᵀ for rows
// [r0, r1) of dst.
func syrkSubLower(dst, p *Mat, r0, r1 int) {
	for i := r0; i < r1; i++ {
		pi := p.Row(i)
		dr := dst.Row(i)
		for j := 0; j <= i; j++ {
			dr[j] -= Dot(pi, p.Row(j))
		}
	}
}

func zeroUpper(a *Mat) {
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j := i + 1; j < a.Cols; j++ {
			row[j] = 0
		}
	}
}

// CholeskySolve solves (L·Lᵀ)·x = b in place on b, given the factor L
// produced by Cholesky.
func CholeskySolve(l *Mat, b []float64) {
	ForwardSolve(l, b)
	BackwardSolveT(l, b)
}

// LogDet returns the log-determinant of the factored matrix L·Lᵀ.
func LogDet(l *Mat) float64 {
	s := 0.0
	for i := 0; i < l.Rows; i++ {
		s += math.Log(l.At(i, i))
	}
	return 2 * s
}
