package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := FromRows([][]float64{{3, 0, 0}, {0, 7, 0}, {0, 0, 1}})
	w, v, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 7 || w[1] != 3 || w[2] != 1 {
		t.Fatalf("w = %v", w)
	}
	// Eigenvector of the top eigenvalue is ±e₁ (column for 7).
	if math.Abs(math.Abs(v.At(1, 0))-1) > 1e-12 {
		t.Fatalf("top eigenvector %v", []float64{v.At(0, 0), v.At(1, 0), v.At(2, 0)})
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	w, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w[0], 3, 1e-12) || !almostEqual(w[1], 1, 1e-12) {
		t.Fatalf("w = %v", w)
	}
}

// Property: A·vᵢ = wᵢ·vᵢ, eigenvalues descending, V orthonormal, and the
// eigenvalue sum equals the trace.
func TestSymEigenProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		a := randMat(rng, n, n)
		sym := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j <= i; j++ {
				v := 0.5 * (a.At(i, j) + a.At(j, i))
				sym.Set(i, j, v)
				sym.Set(j, i, v)
			}
		}
		w, v, err := SymEigen(sym)
		if err != nil {
			return false
		}
		trace := 0.0
		for i := 0; i < n; i++ {
			trace += sym.At(i, i)
		}
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += w[i]
			if i > 0 && w[i] > w[i-1]+1e-10 {
				return false // not descending
			}
			// Residual ‖A·vᵢ − wᵢ·vᵢ‖.
			col := make([]float64, n)
			for r := 0; r < n; r++ {
				col[r] = v.At(r, i)
			}
			av := make([]float64, n)
			MulVec(av, sym, col)
			for r := 0; r < n; r++ {
				av[r] -= w[i] * col[r]
			}
			if Norm2(av) > 1e-8*(1+math.Abs(w[i])) {
				return false
			}
		}
		if math.Abs(sum-trace) > 1e-8*(1+math.Abs(trace)) {
			return false
		}
		// Orthonormality.
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				dot := 0.0
				for r := 0; r < n; r++ {
					dot += v.At(r, i) * v.At(r, j)
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(dot-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSymEigenSPDPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	spd := randSPD(rng, 12)
	w, _, err := SymEigen(spd)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range w {
		if x <= 0 {
			t.Fatalf("SPD matrix has non-positive eigenvalue %g", x)
		}
	}
}

func TestSymEigenReadsLowerTriangleOnly(t *testing.T) {
	// Garbage in the strict upper triangle must not affect the result.
	a := FromRows([][]float64{{2, 999}, {1, 2}})
	w, _, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(w[0], 3, 1e-12) {
		t.Fatalf("w = %v", w)
	}
}
