package mat

// Symmetry-aware kernels for the covariance update ("m-m" class). The exact
// measurement update C⁺ = C⁻ − K·Aᵀ (and its Joseph-form expansion) produces
// a symmetric matrix by construction, so computing all n² entries and then
// averaging away the round-off skew (Symmetrize) wastes half the flops of
// the single hottest operation class in the paper's Tables 1–6. The kernels
// here compute only the lower triangle — a SYRK/SYR2K-style formulation —
// and either leave the upper triangle untouched (SyrkSub/SyrkAdd, for
// composing several triangular updates) or mirror each entry to the upper
// triangle in the same pass (Syr2kSub/Syr2kPairSub, for the final update of
// a batch), which removes the separate O(n²) symmetrization sweep entirely.
//
// Mirroring in-pass is race-free under the triangular row partitioning of
// par.Team.ForTri: the worker owning row i writes the lower entries (i, j≤i)
// of its own rows plus the mirrored upper entries (j, i) — and an upper
// entry of row j is written only by the owner of row i, never by the owner
// of row j, so writes never overlap.

// SyrkSub computes the lower triangle of dst ← dst − A·Aᵀ. The strict upper
// triangle of dst is left untouched. dst must be square with as many rows
// as A.
func SyrkSub(dst, a *Mat) {
	checkSyrk(dst, a)
	syrkSubLower(dst, a, 0, dst.Rows)
}

// SyrkAdd computes the lower triangle of dst ← dst + A·Aᵀ, leaving the
// strict upper triangle untouched.
func SyrkAdd(dst, a *Mat) {
	checkSyrk(dst, a)
	syrkAddLower(dst, a, 0, dst.Rows)
}

// Syr2kSub computes dst ← dst − A·Bᵀ for operand pairs whose exact result
// is symmetric (such as the simple covariance update C − K·Aᵀ, where
// K·Aᵀ = A·S⁻¹·Aᵀ): only the lower-triangle entries are computed, and each
// is mirrored to the upper triangle in the same pass. This halves the flops
// of the full rectangular product and leaves dst exactly symmetric, so no
// follow-up symmetrization is needed. For operands without the symmetry
// guarantee the result is the symmetric completion of the lower triangle of
// the exact product.
func Syr2kSub(dst, a, b *Mat) {
	checkSyr2k(dst, a, b)
	syr2kSubRange(dst, a, b, 0, dst.Rows)
}

// Syr2kPairSub computes the true symmetric rank-2k update
// dst ← dst − A·Bᵀ − B·Aᵀ on the lower triangle, mirroring each entry to
// the upper triangle in the same pass. The update is exactly symmetric for
// any operands (it subtracts M + Mᵀ), so dst ends exactly symmetric
// whenever it starts symmetric on the lower triangle.
func Syr2kPairSub(dst, a, b *Mat) {
	checkSyr2k(dst, a, b)
	syr2kPairSubRange(dst, a, b, 0, dst.Rows)
}

// MirrorLower copies the strict lower triangle of the square matrix m onto
// its strict upper triangle, making m exactly symmetric. It is the closing
// pass after a sequence of lower-triangle-only kernels.
func MirrorLower(m *Mat) {
	if m.Rows != m.Cols {
		panic("mat: MirrorLower on non-square matrix")
	}
	mirrorLowerRange(m, 0, m.Rows)
}

// SymMulVec computes dst ← C·x for a symmetric matrix C, reading only the
// lower triangle of C (the upper triangle may hold garbage).
func SymMulVec(dst []float64, c *Mat, x []float64) {
	checkSymMulVec(dst, c, x)
	symMulVecRange(dst, c, x, 0, c.Rows)
}

func checkSyrk(dst, a *Mat) {
	if dst.Rows != dst.Cols || dst.Rows != a.Rows {
		panic("mat: Syrk dimension mismatch")
	}
}

func checkSyr2k(dst, a, b *Mat) {
	if dst.Rows != dst.Cols || dst.Rows != a.Rows || dst.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: Syr2k dimension mismatch")
	}
}

func checkSymMulVec(dst []float64, c *Mat, x []float64) {
	if c.Rows != c.Cols || len(dst) != c.Rows || len(x) != c.Cols {
		panic("mat: SymMulVec dimension mismatch")
	}
}

func syrkAddLower(dst, p *Mat, r0, r1 int) {
	for i := r0; i < r1; i++ {
		pi := p.Row(i)
		dr := dst.Row(i)
		for j := 0; j <= i; j++ {
			dr[j] += Dot(pi, p.Row(j))
		}
	}
}

func syr2kSubRange(dst, a, b *Mat, r0, r1 int) {
	for i := r0; i < r1; i++ {
		ai := a.Row(i)
		dr := dst.Row(i)
		for j := 0; j <= i; j++ {
			dr[j] -= Dot(ai, b.Row(j))
		}
	}
	mirrorLowerRange(dst, r0, r1)
}

func syr2kPairSubRange(dst, a, b *Mat, r0, r1 int) {
	for i := r0; i < r1; i++ {
		ai, bi := a.Row(i), b.Row(i)
		dr := dst.Row(i)
		for j := 0; j < i; j++ {
			dr[j] = dr[j] - Dot(ai, b.Row(j)) - Dot(bi, a.Row(j))
		}
		// Two sequential subtractions (not 2·d) so the diagonal rounds
		// exactly like the full rectangular computation would.
		d := Dot(ai, bi)
		dr[i] = dr[i] - d - d
	}
	mirrorLowerRange(dst, r0, r1)
}

// mirrorTile is the block size of the tiled lower→upper copy. Mirroring
// entry (i, j) to (j, i) is a transpose: done entry-at-a-time it costs one
// scattered cache line per write and dominates large-n updates. Tiling by
// blocks of source rows keeps both the strided reads and the row-segment
// writes cache-resident.
const mirrorTile = 64

// mirrorLowerRange copies lower-triangle entries (i, j), j < i, i ∈ [r0, r1)
// onto their upper-triangle mirrors (j, i). The written columns are exactly
// [r0, r1), so disjoint row ranges mirror disjoint destinations — safe under
// ForTri partitioning.
func mirrorLowerRange(m *Mat, r0, r1 int) {
	for ii := r0; ii < r1; ii += mirrorTile {
		iMax := min(ii+mirrorTile, r1)
		for j := 0; j < iMax-1; j++ {
			row := m.Data[j*m.Stride:]
			for i := max(ii, j+1); i < iMax; i++ {
				row[i] = m.Data[i*m.Stride+j]
			}
		}
	}
}

func symMulVecRange(dst []float64, c *Mat, x []float64, r0, r1 int) {
	n := c.Rows
	for i := r0; i < r1; i++ {
		ci := c.Row(i)
		s := Dot(ci[:i+1], x[:i+1])
		for j := i + 1; j < n; j++ {
			s += c.Data[j*c.Stride+i] * x[j]
		}
		dst[i] = s
	}
}
