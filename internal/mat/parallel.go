package mat

import "phmse/internal/par"

// Team-parallel variants of the dense kernels. All of them partition work by
// contiguous row blocks (static scheduling), matching the paper's intra-node
// parallelization of the update procedure. Each takes the par.Team assigned
// to the hierarchy node being computed; a team of one runs the serial path.

// MulPar computes dst ← A·B with rows of dst partitioned across the team.
func MulPar(t *par.Team, dst, a, b *Mat) {
	checkMul(dst, a, b)
	dst.Zero()
	t.For(a.Rows, func(lo, hi int) { mulAddRange(dst, a, b, lo, hi) })
}

// MulAddPar computes dst ← dst + A·B in parallel over row blocks.
func MulAddPar(t *par.Team, dst, a, b *Mat) {
	checkMul(dst, a, b)
	t.For(a.Rows, func(lo, hi int) { mulAddRange(dst, a, b, lo, hi) })
}

// MulSubPar computes dst ← dst − A·B in parallel over row blocks.
func MulSubPar(t *par.Team, dst, a, b *Mat) {
	checkMul(dst, a, b)
	t.For(a.Rows, func(lo, hi int) { mulSubRange(dst, a, b, lo, hi) })
}

// MulSubNTPar computes dst ← dst − A·Bᵀ in parallel over row blocks.
func MulSubNTPar(t *par.Team, dst, a, b *Mat) {
	t.For(a.Rows, func(lo, hi int) { mulSubNTRange(dst, a, b, lo, hi) })
}

// MulAddNTPar computes dst ← dst + A·Bᵀ in parallel over row blocks.
func MulAddNTPar(t *par.Team, dst, a, b *Mat) {
	t.For(a.Rows, func(lo, hi int) { mulAddNTRange(dst, a, b, lo, hi) })
}

// SolveCholRowsPar solves B ← B·(L·Lᵀ)⁻¹ with the independent right-hand
// side rows of B partitioned across the team ("sys" class).
func SolveCholRowsPar(t *par.Team, l, b *Mat) {
	t.For(b.Rows, func(lo, hi int) { SolveCholRowsRange(l, b, lo, hi) })
}

// CholeskyPar is a blocked right-looking Cholesky whose trailing-matrix
// updates are partitioned across the team. The panel factorization and panel
// solve are sequential, which is why — exactly as the paper observes — the
// factorization of the small per-batch innovation matrices scales poorly.
func CholeskyPar(t *par.Team, a *Mat) error {
	if a.Rows != a.Cols {
		panic("mat: CholeskyPar of non-square matrix")
	}
	n := a.Rows
	if t.Size() == 1 || n <= cholBlock {
		return Cholesky(a)
	}
	for k := 0; k < n; k += cholBlock {
		w := min(cholBlock, n-k)
		diag := a.View(k, k, w, w)
		if err := cholUnblocked(diag); err != nil {
			return err
		}
		if k+w < n {
			panel := a.View(k+w, k, n-k-w, w)
			t.For(panel.Rows, func(lo, hi int) {
				solveRightLowerT(panel.View(lo, 0, hi-lo, w), diag)
			})
			// The trailing update touches only the lower triangle, so the
			// row blocks are balanced by triangle area, not row count.
			trail := a.View(k+w, k+w, n-k-w, n-k-w)
			t.ForTri(trail.Rows, func(lo, hi int) { syrkSubLower(trail, panel, lo, hi) })
		}
	}
	zeroUpper(a)
	return nil
}

// SyrkSubPar computes the lower triangle of dst ← dst − A·Aᵀ with row
// blocks of the triangle partitioned by area across the team (ForTri).
func SyrkSubPar(t *par.Team, dst, a *Mat) {
	checkSyrk(dst, a)
	t.ForTri(dst.Rows, func(lo, hi int) { syrkSubLower(dst, a, lo, hi) })
}

// SyrkAddPar computes the lower triangle of dst ← dst + A·Aᵀ in parallel
// over area-balanced triangular row blocks.
func SyrkAddPar(t *par.Team, dst, a *Mat) {
	checkSyrk(dst, a)
	t.ForTri(dst.Rows, func(lo, hi int) { syrkAddLower(dst, a, lo, hi) })
}

// Syr2kSubPar is Syr2kSub (dst ← dst − A·Bᵀ, lower triangle computed and
// mirrored in the same pass) over area-balanced triangular row blocks. The
// mirrored writes land in upper-triangle entries owned exclusively by the
// writing worker, so the partitioning is race-free.
func Syr2kSubPar(t *par.Team, dst, a, b *Mat) {
	checkSyr2k(dst, a, b)
	t.ForTri(dst.Rows, func(lo, hi int) { syr2kSubRange(dst, a, b, lo, hi) })
}

// Syr2kPairSubPar is Syr2kPairSub (dst ← dst − A·Bᵀ − B·Aᵀ, lower triangle
// computed and mirrored) over area-balanced triangular row blocks.
func Syr2kPairSubPar(t *par.Team, dst, a, b *Mat) {
	checkSyr2k(dst, a, b)
	t.ForTri(dst.Rows, func(lo, hi int) { syr2kPairSubRange(dst, a, b, lo, hi) })
}

// MirrorLowerPar copies the strict lower triangle onto the upper triangle in
// parallel over area-balanced triangular row blocks.
func MirrorLowerPar(t *par.Team, m *Mat) {
	if m.Rows != m.Cols {
		panic("mat: MirrorLowerPar on non-square matrix")
	}
	t.ForTri(m.Rows, func(lo, hi int) { mirrorLowerRange(m, lo, hi) })
}

// SymMulVecPar computes dst ← C·x for symmetric C reading only the lower
// triangle, with rows partitioned across the team. Each row costs O(n)
// regardless of its index (row part plus column part), so the plain row
// split of For is already balanced here.
func SymMulVecPar(t *par.Team, dst []float64, c *Mat, x []float64) {
	checkSymMulVec(dst, c, x)
	t.For(c.Rows, func(lo, hi int) { symMulVecRange(dst, c, x, lo, hi) })
}

// MulVecPar computes dst ← A·x with rows partitioned across the team.
func MulVecPar(t *par.Team, dst []float64, a *Mat, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic("mat: MulVecPar dimension mismatch")
	}
	t.For(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = Dot(a.Row(i), x)
		}
	})
}

// SymmetrizePar forces symmetry of a square matrix in parallel over rows by
// averaging mirrored entries. The per-batch covariance hot path no longer
// needs it — the mirrored triangular kernels (Syr2kSubPar and friends) leave
// the matrix exactly symmetric — but it remains for consumers that build a
// nearly-symmetric matrix some other way.
func SymmetrizePar(t *par.Team, m *Mat) {
	if m.Rows != m.Cols {
		panic("mat: SymmetrizePar on non-square matrix")
	}
	t.For(m.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := i + 1; j < m.Cols; j++ {
				v := 0.5 * (m.At(i, j) + m.At(j, i))
				m.Set(i, j, v)
				m.Set(j, i, v)
			}
		}
	})
}
