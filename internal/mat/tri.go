package mat

// Triangular system solves ("sys" class). The filter gain K = C Hᵀ S⁻¹ is
// obtained by two triangular solves against the Cholesky factor of S, with
// the n rows of C Hᵀ as right-hand sides. These multi-RHS solves are the
// second-largest component of the run time in the paper's evaluation and
// parallelize across right-hand sides.

// ForwardSolve solves L·x = b in place on b, for lower-triangular L.
func ForwardSolve(l *Mat, b []float64) {
	n := l.Rows
	if len(b) != n {
		panic("mat: ForwardSolve dimension mismatch")
	}
	for i := 0; i < n; i++ {
		lr := l.Row(i)
		s := b[i]
		for k := 0; k < i; k++ {
			s -= lr[k] * b[k]
		}
		b[i] = s / lr[i]
	}
}

// BackwardSolveT solves Lᵀ·x = b in place on b, for lower-triangular L.
func BackwardSolveT(l *Mat, b []float64) {
	n := l.Rows
	if len(b) != n {
		panic("mat: BackwardSolveT dimension mismatch")
	}
	for i := n - 1; i >= 0; i-- {
		s := b[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * b[k]
		}
		b[i] = s / l.At(i, i)
	}
}

// SolveCholRowsRange solves (L·Lᵀ)·xᵢ = bᵢ for each row i in [r0, r1) of b,
// treating every row of b as an independent right-hand side (so it computes
// B ← B·(L·Lᵀ)⁻¹ for the row-major layout used by the gain computation
// K = (C Hᵀ)·S⁻¹). The row range makes the multi-RHS solve trivially
// parallel across rows.
func SolveCholRowsRange(l, b *Mat, r0, r1 int) {
	if b.Cols != l.Rows {
		panic("mat: SolveCholRows dimension mismatch")
	}
	for i := r0; i < r1; i++ {
		row := b.Row(i)
		ForwardSolve(l, row)
		BackwardSolveT(l, row)
	}
}

// SolveCholRows solves every row of b against the factor L: B ← B·(L·Lᵀ)⁻¹.
func SolveCholRows(l, b *Mat) { SolveCholRowsRange(l, b, 0, b.Rows) }
