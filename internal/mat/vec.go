package mat

import "math"

// Vector operations ("vec" class in the paper's time distribution).
// All functions operate on plain []float64 slices.

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("mat: Dot length mismatch")
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y ← y + a·x.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mat: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// AddVec computes dst ← x + y.
func AddVec(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("mat: AddVec length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// SubVec computes dst ← x − y.
func SubVec(dst, x, y []float64) {
	if len(dst) != len(x) || len(x) != len(y) {
		panic("mat: SubVec length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	// Scaled accumulation avoids overflow for large elements.
	scale, ssq := 0.0, 1.0
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute element of x.
func NormInf(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// RMS returns the root-mean-square of x, or 0 for an empty slice.
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Norm2(x) / math.Sqrt(float64(len(x)))
}

// MulVec computes dst ← A·x (matrix-vector product, "m-v" class).
func MulVec(dst []float64, a *Mat, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic("mat: MulVec dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		dst[i] = Dot(a.Row(i), x)
	}
}

// MulVecT computes dst ← Aᵀ·x without forming the transpose.
func MulVecT(dst []float64, a *Mat, x []float64) {
	if len(dst) != a.Cols || len(x) != a.Rows {
		panic("mat: MulVecT dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		Axpy(x[i], a.Row(i), dst)
	}
}

// MulVecAdd computes dst ← dst + A·x.
func MulVecAdd(dst []float64, a *Mat, x []float64) {
	if len(dst) != a.Rows || len(x) != a.Cols {
		panic("mat: MulVecAdd dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		dst[i] += Dot(a.Row(i), x)
	}
}
