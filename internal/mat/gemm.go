package mat

// Dense matrix multiplication ("m-m" class). The inner kernels are written in
// the ikj loop order so the innermost loop streams rows of B and C, which the
// paper identifies (via constraint batching) as the key to cache-friendly
// tiling of the covariance update.

// gemmTile is the blocking factor for the tiled kernels. 48×48 float64 tiles
// (~18 KB for three operands) fit comfortably in a first-level cache.
const gemmTile = 48

// Mul computes dst ← A·B. dst must not alias A or B.
func Mul(dst, a, b *Mat) {
	checkMul(dst, a, b)
	dst.Zero()
	mulAddRange(dst, a, b, 0, a.Rows)
}

// MulAdd computes dst ← dst + A·B. dst must not alias A or B.
func MulAdd(dst, a, b *Mat) {
	checkMul(dst, a, b)
	mulAddRange(dst, a, b, 0, a.Rows)
}

// MulSub computes dst ← dst − A·B. dst must not alias A or B.
func MulSub(dst, a, b *Mat) {
	checkMul(dst, a, b)
	mulSubRange(dst, a, b, 0, a.Rows)
}

// MulNT computes dst ← A·Bᵀ without forming the transpose.
func MulNT(dst, a, b *Mat) {
	if dst.Rows != a.Rows || dst.Cols != b.Rows || a.Cols != b.Cols {
		panic("mat: MulNT dimension mismatch")
	}
	for i := 0; i < a.Rows; i++ {
		ar, dr := a.Row(i), dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			dr[j] = Dot(ar, b.Row(j))
		}
	}
}

// MulSubNT computes dst ← dst − A·Bᵀ without forming the transpose. It is
// the shape of the covariance update C ← C − K·(H C) with H C supplied as
// its transpose C Hᵀ (valid because C is symmetric).
func MulSubNT(dst, a, b *Mat) {
	mulSubNTRange(dst, a, b, 0, a.Rows)
}

// MulAddNT computes dst ← dst + A·Bᵀ without forming the transpose.
func MulAddNT(dst, a, b *Mat) {
	mulAddNTRange(dst, a, b, 0, a.Rows)
}

func mulAddNTRange(dst, a, b *Mat, r0, r1 int) {
	if dst.Rows != a.Rows || dst.Cols != b.Rows || a.Cols != b.Cols {
		panic("mat: MulAddNT dimension mismatch")
	}
	for i := r0; i < r1; i++ {
		ar, dr := a.Row(i), dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			dr[j] += Dot(ar, b.Row(j))
		}
	}
}

func mulSubNTRange(dst, a, b *Mat, r0, r1 int) {
	if dst.Rows != a.Rows || dst.Cols != b.Rows || a.Cols != b.Cols {
		panic("mat: MulSubNT dimension mismatch")
	}
	for i := r0; i < r1; i++ {
		ar, dr := a.Row(i), dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			dr[j] -= Dot(ar, b.Row(j))
		}
	}
}

// MulTN computes dst ← Aᵀ·B without forming the transpose.
func MulTN(dst, a, b *Mat) {
	if dst.Rows != a.Cols || dst.Cols != b.Cols || a.Rows != b.Rows {
		panic("mat: MulTN dimension mismatch")
	}
	dst.Zero()
	for k := 0; k < a.Rows; k++ {
		ak, bk := a.Row(k), b.Row(k)
		for i, av := range ak {
			if av == 0 {
				continue
			}
			Axpy(av, bk, dst.Row(i))
		}
	}
}

func checkMul(dst, a, b *Mat) {
	if dst.Rows != a.Rows || dst.Cols != b.Cols || a.Cols != b.Rows {
		panic("mat: Mul dimension mismatch")
	}
}

// mulAddRange accumulates rows [r0, r1) of A·B into dst, tiled over the inner
// and column dimensions for cache locality.
func mulAddRange(dst, a, b *Mat, r0, r1 int) {
	n, p := a.Cols, b.Cols
	for kk := 0; kk < n; kk += gemmTile {
		kMax := min(kk+gemmTile, n)
		for jj := 0; jj < p; jj += gemmTile {
			jMax := min(jj+gemmTile, p)
			for i := r0; i < r1; i++ {
				ar := a.Row(i)
				dr := dst.Row(i)
				for k := kk; k < kMax; k++ {
					av := ar[k]
					if av == 0 {
						continue
					}
					br := b.Data[k*b.Stride:]
					for j := jj; j < jMax; j++ {
						dr[j] += av * br[j]
					}
				}
			}
		}
	}
}

func mulSubRange(dst, a, b *Mat, r0, r1 int) {
	n, p := a.Cols, b.Cols
	for kk := 0; kk < n; kk += gemmTile {
		kMax := min(kk+gemmTile, n)
		for jj := 0; jj < p; jj += gemmTile {
			jMax := min(jj+gemmTile, p)
			for i := r0; i < r1; i++ {
				ar := a.Row(i)
				dr := dst.Row(i)
				for k := kk; k < kMax; k++ {
					av := ar[k]
					if av == 0 {
						continue
					}
					br := b.Data[k*b.Stride:]
					for j := jj; j < jMax; j++ {
						dr[j] -= av * br[j]
					}
				}
			}
		}
	}
}
