package mat

import (
	"fmt"
	"math"
	"sort"
)

// Symmetric eigendecomposition by the cyclic Jacobi method. The library
// needs it in three places: the per-atom covariance ellipsoids (3×3
// blocks), optimal structural superposition (the 4×4 quaternion matrix of
// Horn's method), and the distance-geometry baseline's metric-matrix
// embedding, which takes the top three eigenvectors of an n×n Gram matrix.

// maxJacobiSweeps bounds the cyclic sweeps; convergence is quadratic and
// even 1000×1000 matrices settle in well under 20 sweeps.
const maxJacobiSweeps = 60

// SymEigen computes the eigendecomposition of the symmetric matrix a
// (only its lower triangle is read): a = V·diag(w)·Vᵀ. Eigenvalues are
// returned in descending order with matching eigenvector columns in V.
func SymEigen(a *Mat) (w []float64, v *Mat, err error) {
	if a.Rows != a.Cols {
		panic("mat: SymEigen of non-square matrix")
	}
	n := a.Rows
	// Work on a symmetric copy.
	work := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			work.Set(i, j, a.At(i, j))
			work.Set(j, i, a.At(i, j))
		}
	}
	v = Identity(n)
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := offDiagNorm(work)
		if off <= 1e-14*(1+work.MaxAbs()) {
			return extractEigen(work, v), v, nil
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				jacobiRotate(work, v, p, q)
			}
		}
	}
	if off := offDiagNorm(work); off > 1e-8*(1+work.MaxAbs()) {
		return nil, nil, fmt.Errorf("mat: Jacobi did not converge (off-diagonal %g)", off)
	}
	return extractEigen(work, v), v, nil
}

func offDiagNorm(a *Mat) float64 {
	s := 0.0
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < i; j++ {
			s += math.Abs(a.At(i, j))
		}
	}
	return s
}

// jacobiRotate zeroes element (p, q) with a Givens rotation applied to the
// working matrix and accumulated into v.
func jacobiRotate(a, v *Mat, p, q int) {
	apq := a.At(p, q)
	if apq == 0 {
		return
	}
	app, aqq := a.At(p, p), a.At(q, q)
	theta := (aqq - app) / (2 * apq)
	t := 1 / (math.Abs(theta) + math.Sqrt(theta*theta+1))
	if theta < 0 {
		t = -t
	}
	c := 1 / math.Sqrt(t*t+1)
	s := t * c
	n := a.Rows
	for k := 0; k < n; k++ {
		akp, akq := a.At(k, p), a.At(k, q)
		a.Set(k, p, c*akp-s*akq)
		a.Set(k, q, s*akp+c*akq)
	}
	for k := 0; k < n; k++ {
		apk, aqk := a.At(p, k), a.At(q, k)
		a.Set(p, k, c*apk-s*aqk)
		a.Set(q, k, s*apk+c*aqk)
	}
	for k := 0; k < n; k++ {
		vkp, vkq := v.At(k, p), v.At(k, q)
		v.Set(k, p, c*vkp-s*vkq)
		v.Set(k, q, s*vkp+c*vkq)
	}
}

// extractEigen reads the diagonal and sorts eigenpairs descending.
func extractEigen(work, v *Mat) []float64 {
	n := work.Rows
	w := make([]float64, n)
	for i := range w {
		w[i] = work.At(i, i)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	sorted := make([]float64, n)
	perm := New(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = w[oldCol]
		for r := 0; r < n; r++ {
			perm.Set(r, newCol, v.At(r, oldCol))
		}
	}
	copy(w, sorted)
	v.CopyFrom(perm)
	return w
}
