package mat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phmse/internal/par"
)

func TestMulSubNT(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := randMat(rng, 9, 5)
	b := randMat(rng, 7, 5)
	base := randMat(rng, 9, 7)
	got := base.Clone()
	MulSubNT(got, a, b)
	want := base.Clone()
	prod := New(9, 7)
	MulNT(prod, a, b)
	want.Sub(prod)
	if !got.Equal(want, 1e-12) {
		t.Fatal("MulSubNT mismatch")
	}
}

func TestMulAddNT(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randMat(rng, 6, 8)
	b := randMat(rng, 11, 8)
	base := randMat(rng, 6, 11)
	got := base.Clone()
	MulAddNT(got, a, b)
	MulSubNT(got, a, b)
	if !got.Equal(base, 1e-11) {
		t.Fatal("MulAddNT then MulSubNT did not round-trip")
	}
}

func TestMulNTDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MulSubNT(New(2, 2), New(2, 3), New(2, 4))
}

// Property: the parallel NT kernels agree with the serial ones for any
// team size and shape.
func TestNTParallelMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, k := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(10)
		team := par.NewTeam(1 + rng.Intn(6))
		a := randMat(rng, n, k)
		b := randMat(rng, m, k)
		base := randMat(rng, n, m)

		s1 := base.Clone()
		MulSubNT(s1, a, b)
		p1 := base.Clone()
		MulSubNTPar(team, p1, a, b)
		if !s1.Equal(p1, 1e-12) {
			return false
		}
		s2 := base.Clone()
		MulAddNT(s2, a, b)
		p2 := base.Clone()
		MulAddNTPar(team, p2, a, b)
		return s2.Equal(p2, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrizeParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	m := randMat(rng, 17, 17)
	serial := m.Clone()
	serial.Symmetrize()
	parallel := m.Clone()
	SymmetrizePar(par.NewTeam(4), parallel)
	if !serial.Equal(parallel, 0) {
		t.Fatal("SymmetrizePar mismatch")
	}
}

func TestMulVecParMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randMat(rng, 23, 9)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	serial := make([]float64, 23)
	MulVec(serial, a, x)
	parallel := make([]float64, 23)
	MulVecPar(par.NewTeam(5), parallel, a, x)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatal("MulVecPar mismatch")
		}
	}
}

func TestCholeskyParNotPositiveDefinite(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	big := randSPD(rng, 80)
	big.Set(70, 70, -5)
	if err := CholeskyPar(par.NewTeam(4), big); err == nil {
		t.Fatal("parallel factorization accepted an indefinite matrix")
	}
}

func TestViewWritesThroughGemm(t *testing.T) {
	// Kernels must respect strides: multiply into a view of a larger
	// allocation and verify the frame is untouched.
	rng := rand.New(rand.NewSource(35))
	host := New(12, 12)
	for i := range host.Data {
		host.Data[i] = -7
	}
	dst := host.View(2, 3, 4, 5)
	a := randMat(rng, 4, 6)
	b := randMat(rng, 6, 5)
	Mul(dst, a, b)
	want := mulNaive(a, b)
	if !dst.Clone().Equal(want, 1e-12) {
		t.Fatal("view multiply wrong")
	}
	// Border stays -7.
	if host.At(0, 0) != -7 || host.At(11, 11) != -7 || host.At(2, 2) != -7 {
		t.Fatal("kernel wrote outside the view")
	}
}
