package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g", got)
	}
}

func TestDotLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1, 1}
	Axpy(2, []float64{1, 2, 3}, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("Axpy = %v", y)
		}
	}
}

func TestScaleAddSubVec(t *testing.T) {
	x := []float64{2, 4}
	ScaleVec(0.5, x)
	if x[0] != 1 || x[1] != 2 {
		t.Fatalf("ScaleVec = %v", x)
	}
	dst := make([]float64, 2)
	AddVec(dst, []float64{1, 2}, []float64{10, 20})
	if dst[0] != 11 || dst[1] != 22 {
		t.Fatalf("AddVec = %v", dst)
	}
	SubVec(dst, dst, []float64{1, 2})
	if dst[0] != 10 || dst[1] != 20 {
		t.Fatalf("SubVec = %v", dst)
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, 4}
	if !almostEqual(Norm2(x), 5, 1e-14) {
		t.Fatalf("Norm2 = %g", Norm2(x))
	}
	if NormInf([]float64{1, -9, 2}) != 9 {
		t.Fatal("NormInf")
	}
	if RMS(nil) != 0 {
		t.Fatal("RMS(nil)")
	}
	if !almostEqual(RMS([]float64{3, 4}), 5/math.Sqrt2, 1e-14) {
		t.Fatalf("RMS = %g", RMS([]float64{3, 4}))
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum of squares would overflow here; scaled accumulation must not.
	x := []float64{1e200, 1e200}
	if math.IsInf(Norm2(x), 1) {
		t.Fatal("Norm2 overflowed")
	}
	if !almostEqual(Norm2(x)/1e200, math.Sqrt2, 1e-12) {
		t.Fatalf("Norm2 = %g", Norm2(x))
	}
}

func TestMulVecVariants(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, 1, 1}
	dst := make([]float64, 2)
	MulVec(dst, a, x)
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v", dst)
	}
	MulVecAdd(dst, a, x)
	if dst[0] != 12 || dst[1] != 30 {
		t.Fatalf("MulVecAdd = %v", dst)
	}
	y := []float64{1, 2}
	dt := make([]float64, 3)
	MulVecT(dt, a, y)
	// Aᵀ·y = [1+8, 2+10, 3+12]
	if dt[0] != 9 || dt[1] != 12 || dt[2] != 15 {
		t.Fatalf("MulVecT = %v", dt)
	}
}

// Property: MulVecT agrees with forming the transpose explicitly.
func TestMulVecTProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		a := randMat(rng, r, c)
		y := make([]float64, r)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		fast := make([]float64, c)
		MulVecT(fast, a, y)
		slow := make([]float64, c)
		MulVec(slow, a.T(), y)
		SubVec(slow, slow, fast)
		return Norm2(slow) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Cauchy–Schwarz inequality holds for Dot and Norm2.
func TestCauchySchwarzProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
