package mat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"phmse/internal/par"
)

// mulNaive is the reference O(n³) triple loop the tiled kernels are checked
// against.
func mulNaive(a, b *Mat) *Mat {
	dst := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			dst.Set(i, j, s)
		}
	}
	return dst
}

func TestMulSmall(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	dst := New(2, 2)
	Mul(dst, a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !dst.Equal(want, 1e-14) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

func TestMulMatchesNaiveAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	// Cover sizes below, at, and above the tile boundary.
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {47, 48, 49}, {50, 120, 33}, {96, 96, 96}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		dst := New(dims[0], dims[2])
		Mul(dst, a, b)
		want := mulNaive(a, b)
		if !dst.Equal(want, 1e-10) {
			t.Fatalf("Mul mismatch for %v", dims)
		}
	}
}

func TestMulAddAndSub(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randMat(rng, 20, 30)
	b := randMat(rng, 30, 10)
	base := randMat(rng, 20, 10)

	dst := base.Clone()
	MulAdd(dst, a, b)
	want := mulNaive(a, b)
	want.Add(base)
	if !dst.Equal(want, 1e-10) {
		t.Fatal("MulAdd mismatch")
	}

	dst2 := dst.Clone()
	MulSub(dst2, a, b)
	if !dst2.Equal(base, 1e-9) {
		t.Fatal("MulSub did not undo MulAdd")
	}
}

func TestMulNT(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randMat(rng, 13, 21)
	b := randMat(rng, 17, 21)
	dst := New(13, 17)
	MulNT(dst, a, b)
	want := mulNaive(a, b.T())
	if !dst.Equal(want, 1e-10) {
		t.Fatal("MulNT mismatch")
	}
}

func TestMulTN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randMat(rng, 21, 13)
	b := randMat(rng, 21, 17)
	dst := New(13, 17)
	MulTN(dst, a, b)
	want := mulNaive(a.T(), b)
	if !dst.Equal(want, 1e-10) {
		t.Fatal("MulTN mismatch")
	}
}

func TestMulDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	Mul(New(2, 2), New(2, 3), New(2, 2))
}

// Property: A·(B+C) == A·B + A·C within floating-point tolerance.
func TestMulDistributiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		c := randMat(rng, k, n)
		bc := b.Clone()
		bc.Add(c)
		left := New(m, n)
		Mul(left, a, bc)
		right := New(m, n)
		Mul(right, a, b)
		MulAdd(right, a, c)
		return left.Equal(right, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: parallel multiplication agrees with the serial kernel for any
// team size.
func TestMulParMatchesSerialProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		p := 1 + rng.Intn(8)
		a := randMat(rng, m, k)
		b := randMat(rng, k, n)
		serial := New(m, n)
		Mul(serial, a, b)
		parallel := New(m, n)
		MulPar(par.NewTeam(p), parallel, a, b)
		return serial.Equal(parallel, 1e-11)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMulAddSubPar(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	team := par.NewTeam(4)
	a := randMat(rng, 33, 17)
	b := randMat(rng, 17, 29)
	base := randMat(rng, 33, 29)

	dst := base.Clone()
	MulAddPar(team, dst, a, b)
	want := base.Clone()
	MulAdd(want, a, b)
	if !dst.Equal(want, 1e-11) {
		t.Fatal("MulAddPar mismatch")
	}
	MulSubPar(team, dst, a, b)
	if !dst.Equal(base, 1e-10) {
		t.Fatal("MulSubPar did not undo MulAddPar")
	}
}

func BenchmarkGemmSerial256(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	a := randMat(rng, 256, 256)
	c := randMat(rng, 256, 256)
	dst := New(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Mul(dst, a, c)
	}
}

func BenchmarkGemmPar256(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	a := randMat(rng, 256, 256)
	c := randMat(rng, 256, 256)
	dst := New(256, 256)
	team := par.NewTeam(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MulPar(team, dst, a, c)
	}
}
