package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD returns a random symmetric positive definite n×n matrix.
func randSPD(rng *rand.Rand, n int) *Mat {
	a := randMat(rng, n, n)
	spd := New(n, n)
	MulNT(spd, a, a)
	for i := 0; i < n; i++ {
		spd.Set(i, i, spd.At(i, i)+float64(n)) // boost diagonal for conditioning
	}
	return spd
}

func TestNewAndAccessors(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Stride != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
	m.Set(1, 2, 7.5)
	if got := m.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %g, want 7.5", got)
	}
	if got := m.Row(1)[2]; got != 7.5 {
		t.Fatalf("Row(1)[2] = %g, want 7.5", got)
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape %d×%d", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %g", m.At(2, 1))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1}, {2, 3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I(%d,%d) = %g", i, j, id.At(i, j))
			}
		}
	}
}

func TestViewAliasing(t *testing.T) {
	m := New(4, 4)
	v := m.View(1, 1, 2, 2)
	v.Set(0, 0, 9)
	if m.At(1, 1) != 9 {
		t.Fatal("view does not alias parent storage")
	}
	if v.Rows != 2 || v.Cols != 2 || v.Stride != 4 {
		t.Fatalf("view shape: %+v", v)
	}
}

func TestViewBounds(t *testing.T) {
	m := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view did not panic")
		}
	}()
	m.View(2, 2, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 3, 5)
	c := m.Clone()
	c.Set(0, 0, 123)
	if m.At(0, 0) == 123 {
		t.Fatal("clone shares storage")
	}
	c.Set(0, 0, m.At(0, 0))
	if !m.Equal(c, 0) {
		t.Fatal("clone differs from original")
	}
}

func TestCloneOfView(t *testing.T) {
	m := New(4, 4)
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	v := m.View(1, 1, 2, 3)
	c := v.Clone()
	if c.Stride != 3 {
		t.Fatalf("clone stride %d, want compact 3", c.Stride)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if c.At(i, j) != v.At(i, j) {
				t.Fatalf("clone(%d,%d) = %g, want %g", i, j, c.At(i, j), v.At(i, j))
			}
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{10, 20}, {30, 40}})
	b.Add(a)
	if b.At(1, 1) != 44 {
		t.Fatalf("Add: %g", b.At(1, 1))
	}
	b.Sub(a)
	if b.At(1, 1) != 40 {
		t.Fatalf("Sub: %g", b.At(1, 1))
	}
	b.Scale(0.5)
	if b.At(0, 0) != 5 {
		t.Fatalf("Scale: %g", b.At(0, 0))
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMat(rng, 3, 5)
	tt := m.T()
	if tt.Rows != 5 || tt.Cols != 3 {
		t.Fatalf("T shape %d×%d", tt.Rows, tt.Cols)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != tt.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {4, 3}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize: %v", m)
	}
}

func TestMaxAbs(t *testing.T) {
	m := FromRows([][]float64{{1, -7}, {3, 4}})
	if m.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %g", m.MaxAbs())
	}
	if New(0, 0).MaxAbs() != 0 {
		t.Fatal("MaxAbs of empty != 0")
	}
}

func TestSetIdentityAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 4, 4)
	m.SetIdentity()
	if !m.Equal(Identity(4), 0) {
		t.Fatal("SetIdentity mismatch")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero left non-zero entries")
	}
}

// Property: (A + B) − B == A for the element-wise operations.
func TestAddSubRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randMat(rng, r, c)
		b := randMat(rng, r, c)
		sum := a.Clone()
		sum.Add(b)
		sum.Sub(b)
		return sum.Equal(a, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transposition is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randMat(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		return m.T().T().Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2), 1) {
		t.Fatal("matrices of different shapes reported equal")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	s := FromRows([][]float64{{1, 2}}).String()
	if s == "" {
		t.Fatal("empty String for small matrix")
	}
	big := New(20, 20).String()
	if big == "" {
		t.Fatal("empty String for large matrix")
	}
}

func TestNegativeDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1, 2) did not panic")
		}
	}()
	New(-1, 2)
}

func BenchmarkMatClone(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, 200, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Clone()
	}
}

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
