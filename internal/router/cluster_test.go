package router

// Two-replica control-plane tests: a pair of Routers over one shared
// backend set, gossiping membership documents at each other. Gossip and
// repair loops run in manual mode (negative intervals) so every round is
// an explicit, deterministic GossipNow/repairTick call.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/cluster"
	"phmse/internal/encode"
)

// twoRouters is a pair of router replicas ("ra", "rb") peered with each
// other over real listeners, sharing one backend set and admin token.
type twoRouters struct {
	a, b     *Router
	sa, sb   *httptest.Server
	aa, ab   *client.Admin
	backends []*backend
}

const twoRouterToken = "cluster-tok"

// newTwoRouters starts n backends and two peered routers over them. The
// peer URLs must be known before router.New, so listeners are bound
// first and the httptest servers attached to them after construction.
func newTwoRouters(t *testing.T, n int, mut func(*Config)) *twoRouters {
	t.Helper()
	tr := &twoRouters{}
	var bases []string
	for i := 0; i < n; i++ {
		b := &backend{name: fmt.Sprintf("s%d", i+1), dir: t.TempDir(), token: twoRouterToken}
		b.start(t)
		tr.backends = append(tr.backends, b)
		bases = append(bases, b.url())
	}
	la, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lb, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	urlA, urlB := "http://"+la.Addr().String(), "http://"+lb.Addr().String()
	mk := func(id, peer string) *Router {
		cfg := Config{
			Shards:         bases,
			ProbeInterval:  50 * time.Millisecond,
			ProbeTimeout:   2 * time.Second,
			AdminToken:     twoRouterToken,
			Retry:          client.RetryPolicy{MaxAttempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond},
			RepairInterval: -1,
			GossipInterval: -1, // every round is an explicit GossipNow
			ReplicaID:      id,
			Peers:          []string{peer},
		}
		if mut != nil {
			mut(&cfg)
		}
		rt, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}
	tr.a, tr.b = mk("ra", urlB), mk("rb", urlA)
	tr.sa = &httptest.Server{Listener: la, Config: &http.Server{Handler: tr.a}}
	tr.sb = &httptest.Server{Listener: lb, Config: &http.Server{Handler: tr.b}}
	tr.sa.Start()
	tr.sb.Start()
	tr.aa = client.NewAdmin(tr.sa.URL, twoRouterToken)
	tr.ab = client.NewAdmin(tr.sb.URL, twoRouterToken)
	tr.a.CheckNow(context.Background())
	tr.b.CheckNow(context.Background())
	t.Cleanup(func() {
		tr.sa.Close()
		tr.sb.Close()
		tr.a.Close()
		tr.b.Close()
		for _, b := range tr.backends {
			b.stop()
		}
	})
	return tr
}

// addBackend starts one more phmsed and registers it via the given
// replica's admin API.
func (tr *twoRouters) addBackend(t *testing.T, name string, adm *client.Admin) *backend {
	t.Helper()
	b := &backend{name: name, dir: t.TempDir(), token: twoRouterToken}
	b.start(t)
	t.Cleanup(b.stop)
	tr.backends = append(tr.backends, b)
	if _, err := adm.AddShard(context.Background(), b.url()); err != nil {
		t.Fatalf("add %s: %v", name, err)
	}
	return b
}

func findAudit(entries []encode.AuditEntry, op, origin string) *encode.AuditEntry {
	for i := range entries {
		if entries[i].Op == op && entries[i].Origin == origin {
			return &entries[i]
		}
	}
	return nil
}

// TestTwoRouterAddConverges: an /admin/v1 mutation at either replica
// reflects in both rings within one gossip round, and the peer records
// the applied document's origin in its audit trail.
func TestTwoRouterAddConverges(t *testing.T) {
	tr := newTwoRouters(t, 2, nil)
	ctx := context.Background()

	// Both replicas boot from the same -shards flag: in sync at epoch 0.
	if da, db := tr.a.cnode.Current(), tr.b.cnode.Current(); da.Hash != db.Hash || da.Epoch != 0 {
		t.Fatalf("bootstrap documents diverge: %d/%s vs %d/%s", da.Epoch, da.Hash, db.Epoch, db.Hash)
	}

	b3 := tr.addBackend(t, "s3", tr.aa)
	if got := len(tr.b.cnode.Current().Members); got != 2 {
		t.Fatalf("b learned the new member before any gossip round: %d members", got)
	}
	tr.a.GossipNow(ctx)

	da, db := tr.a.cnode.Current(), tr.b.cnode.Current()
	if da.Hash != db.Hash {
		t.Fatalf("documents did not converge in one round: %s vs %s", da.Hash, db.Hash)
	}
	if m := cluster.FindMember(&db, b3.url()); m == nil {
		t.Fatalf("b's document lacks the member added at a: %+v", db.Members)
	}
	// The apply is synchronous: by the time GossipNow returned, b probed
	// the live new member into its ring.
	sl, err := tr.ab.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, si := range sl.Shards {
		if si.Base == b3.url() {
			found = true
			if !si.InRing {
				t.Errorf("peer-applied shard %s not in b's ring: %+v", b3.url(), si)
			}
		}
	}
	if !found {
		t.Fatalf("b's shard list lacks %s: %+v", b3.url(), sl.Shards)
	}
	// The peer's audit trail attributes the apply to the origin replica.
	al, err := tr.ab.Audit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	ae := findAudit(al.Entries, "apply", "ra")
	if ae == nil {
		t.Fatalf("b's audit has no apply entry from ra: %+v", al.Entries)
	}
	if ae.Outcome != "ok" || ae.Detail != "+"+b3.url() {
		t.Errorf("apply entry = %+v, want ok / +%s", ae, b3.url())
	}

	// And the reverse direction: a drain at b fences the shard at a.
	if _, err := tr.ab.DrainShard(ctx, "s1", time.Second); err != nil {
		t.Fatalf("drain s1 via b: %v", err)
	}
	tr.b.GossipNow(ctx)
	sl, err = tr.aa.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, si := range sl.Shards {
		if si.Instance == "s1" && (si.DrainState != "drained" || si.InRing) {
			t.Errorf("a did not adopt b's drain of s1: %+v", si)
		}
	}
}

// TestTwoRouterConflictConverges: concurrent conflicting mutations at
// the same epoch converge to the one document that wins the
// deterministic tie-break, with an audit record on each side; the lost
// mutation can simply be re-issued.
func TestTwoRouterConflictConverges(t *testing.T) {
	tr := newTwoRouters(t, 2, nil)
	ctx := context.Background()

	// Same epoch, different members: a adds s3, b adds s4, no gossip yet.
	b3 := tr.addBackend(t, "s3", tr.aa)
	b4 := tr.addBackend(t, "s4", tr.ab)
	da, db := tr.a.cnode.Current(), tr.b.cnode.Current()
	if da.Epoch != db.Epoch {
		t.Fatalf("setup: epochs diverge %d vs %d", da.Epoch, db.Epoch)
	}

	// Gossip from the replica whose document wins the tie-break: it
	// observes the losing document (conflict audit) and pushes its own
	// (apply audit on the adopting side).
	winner, loser := tr.a, tr.b
	winAdm, loseAdm := tr.aa, tr.ab
	lost, lostAdm := b4, tr.ab
	if cluster.Wins(db, da) {
		winner, loser = tr.b, tr.a
		winAdm, loseAdm = tr.ab, tr.aa
		lost, lostAdm = b3, tr.aa
	}
	winner.GossipNow(ctx)

	da, db = tr.a.cnode.Current(), tr.b.cnode.Current()
	if da.Hash != db.Hash || da.Epoch != db.Epoch {
		t.Fatalf("conflicting documents did not converge: %d/%s vs %d/%s", da.Epoch, da.Hash, db.Epoch, db.Hash)
	}
	has3 := cluster.FindMember(&da, b3.url()) != nil
	has4 := cluster.FindMember(&da, b4.url()) != nil
	if has3 == has4 {
		t.Fatalf("converged document must hold exactly one of the conflicting adds: s3=%v s4=%v", has3, has4)
	}

	// One record per side: the winner rejected the loser's document, the
	// loser applied the winner's.
	wa, err := winAdm.Audit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := findAudit(wa.Entries, "conflict", loser.cfg.ReplicaID); e == nil || e.Outcome != "rejected" {
		t.Errorf("winner %s has no rejected-conflict audit from %s: %+v", winner.cfg.ReplicaID, loser.cfg.ReplicaID, wa.Entries)
	}
	la, err := loseAdm.Audit(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := findAudit(la.Entries, "apply", winner.cfg.ReplicaID); e == nil || e.Outcome != "ok" {
		t.Errorf("loser %s has no apply audit from %s: %+v", loser.cfg.ReplicaID, winner.cfg.ReplicaID, la.Entries)
	}

	// Re-issuing the lost add at its original replica converges both
	// replicas on the full four-member set.
	if _, err := lostAdm.AddShard(ctx, lost.url()); err != nil {
		t.Fatalf("re-adding %s: %v", lost.url(), err)
	}
	loser.GossipNow(ctx)
	winner.GossipNow(ctx)
	da, db = tr.a.cnode.Current(), tr.b.cnode.Current()
	if da.Hash != db.Hash || len(da.Members) != 4 {
		t.Fatalf("re-issued add did not converge: %d members, %s vs %s", len(da.Members), da.Hash, db.Hash)
	}
}

// TestTwoRouterRepairLease: exactly one replica runs the anti-entropy
// sweep per interval — the lease holder — and a peer takes over only
// after the lease expires.
func TestTwoRouterRepairLease(t *testing.T) {
	tr := newTwoRouters(t, 2, func(cfg *Config) { cfg.LeaseTTL = 250 * time.Millisecond })
	ctx := context.Background()

	tr.a.repairTick()
	if got := tr.a.repairSweeps.Load(); got != 1 {
		t.Fatalf("lease holder ran %d sweeps, want 1", got)
	}
	if !tr.a.cnode.HoldsLease(time.Now()) {
		t.Fatal("a swept without holding the lease")
	}
	tr.a.GossipNow(ctx)

	// b's tick inside the TTL observes a's live lease and skips.
	tr.b.repairTick()
	if got := tr.b.repairSweeps.Load(); got != 0 {
		t.Fatalf("two sweepers in one interval: b ran %d sweeps", got)
	}
	if got := tr.b.leaseSkips.Load(); got != 1 {
		t.Fatalf("b recorded %d lease skips, want 1", got)
	}

	// Once the lease expires un-renewed, b's next tick takes it over.
	time.Sleep(300 * time.Millisecond)
	tr.b.repairTick()
	if got := tr.b.repairSweeps.Load(); got != 1 {
		t.Fatalf("b did not sweep after lease expiry: %d sweeps", got)
	}
	if !tr.b.cnode.HoldsLease(time.Now()) {
		t.Fatal("b swept without taking the lease over")
	}
}

// TestTwoRouterE2EServe is the two-router end-to-end: a shard added via
// replica a serves jobs submitted via replica b after one gossip round.
// (CI runs this file's tests as the two-router e2e job.)
func TestTwoRouterE2EServe(t *testing.T) {
	tr := newTwoRouters(t, 2, nil)
	ctx := context.Background()

	tr.addBackend(t, "s3", tr.aa)
	tr.a.GossipNow(ctx)

	// Fence the two original shards at b so a submission via b can only
	// be served by the peer-learned member.
	for _, name := range []string{"s1", "s2"} {
		if _, err := tr.ab.DrainShard(ctx, name, time.Second); err != nil {
			t.Fatalf("drain %s via b: %v", name, err)
		}
	}
	c := client.New(tr.sb.URL)
	st, err := c.Submit(ctx, helix(6), cheapParams())
	if err != nil {
		t.Fatalf("submit via b: %v", err)
	}
	if got := encode.JobInstance(st.ID); got != "s3" {
		t.Fatalf("job landed on %q, want the peer-added shard s3", got)
	}
	wctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	if _, err := c.Wait(wctx, st.ID, 10*time.Millisecond, encode.JobDone); err != nil {
		t.Fatalf("job on peer-added shard never finished: %v", err)
	}
}

// TestShardsByLoadOrder: broadcast job lookups probe shards
// least-loaded-first by the queue_depth+running gauges, stable on ties.
func TestShardsByLoadOrder(t *testing.T) {
	rt, err := New(Config{
		Shards:         []string{"http://a.invalid", "http://b.invalid", "http://c.invalid", "http://d.invalid"},
		ProbeInterval:  time.Hour,
		RepairInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	loads := map[string][2]int{ // base suffix -> {queueDepth, running}
		"http://a.invalid": {5, 1},
		"http://b.invalid": {0, 0},
		"http://c.invalid": {0, 2},
		"http://d.invalid": {0, 0},
	}
	for _, sh := range rt.shardList() {
		l := loads[sh.base]
		sh.mu.Lock()
		sh.queueDepth, sh.running = l[0], l[1]
		sh.mu.Unlock()
	}
	var got []string
	for _, sh := range rt.shardsByLoad() {
		got = append(got, sh.base)
	}
	want := []string{"http://b.invalid", "http://d.invalid", "http://c.invalid", "http://a.invalid"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shardsByLoad order = %v, want %v", got, want)
		}
	}
}
