package router

import (
	"fmt"
	"sort"

	"phmse/internal/encode"
)

// ring is an immutable consistent-hash ring over shards. Each shard
// contributes vnodes virtual points, placed by hashing its stable name, so
// membership changes move only the keys that belonged to the departed
// shard: ejecting one shard of N remaps ~1/N of the key space and leaves
// every other shard's plan caches and posterior stores untouched. The
// router rebuilds the ring (cheap: a sort over |shards|·vnodes points) on
// every health transition instead of mutating it in place.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	sh   *shard
}

// hashPoint positions a routing key or virtual-node label on the ring.
// It delegates to encode.KeyHash — the same function the migration
// arc-diff uses — because a key the router and the diff place differently
// would migrate to (or stay on) the wrong shard.
func hashPoint(s string) uint64 { return encode.KeyHash(s) }

// buildRing places vnodes virtual points per shard. The vnode label hashes
// the shard's stable name, never its membership generation, so a shard
// that leaves and returns reclaims exactly its old arc.
func buildRing(shards []*shard, vnodes int) *ring {
	r := &ring{points: make([]ringPoint, 0, len(shards)*vnodes)}
	for _, sh := range shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hashPoint(fmt.Sprintf("%s#%d", sh.name, v)), sh})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// encodePoints exports the ring's virtual nodes in the wire-layer form
// the arc-diff helpers consume.
func (r *ring) encodePoints() []encode.RingPoint {
	pts := make([]encode.RingPoint, len(r.points))
	for i, p := range r.points {
		pts[i] = encode.RingPoint{Hash: p.hash, Owner: p.sh.name}
	}
	return pts
}

// lookup returns the shard owning key: the first point at or clockwise of
// the key's hash. Nil on an empty ring.
func (r *ring) lookup(key string) *shard {
	if len(r.points) == 0 {
		return nil
	}
	h := hashPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].sh
}

// replicas returns up to max distinct shards in ring order starting at the
// key's owner — the failover sequence for the key. The first entry equals
// lookup(key).
func (r *ring) replicas(key string, max int) []*shard {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := hashPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[*shard]bool, max)
	out := make([]*shard, 0, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.sh] {
			seen[p.sh] = true
			out = append(out, p.sh)
		}
	}
	return out
}
