package router

// Anti-entropy repair: convergence of stranded posteriors, idempotence,
// the drain fences on both sides of a sweep, and the transfer protocol's
// retry/terminal discipline (adminDo) against a scripted backend.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"phmse/internal/client"
	"phmse/internal/encode"
)

// manualRepairCluster is a cluster whose sweeps run only via RepairNow.
func manualRepairCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	return newClusterWith(t, n, "", func(cfg *Config) { cfg.RepairInterval = -1 })
}

// keepJob submits one keep-posterior job and waits it to done.
func keepJob(t *testing.T, cl *testCluster, bp int) encode.JobStatus {
	t.Helper()
	params := cheapParams()
	params.KeepPosterior = true
	ctx := context.Background()
	st, err := cl.c.Submit(ctx, helix(bp), params)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	st, err = cl.c.Wait(ctx, st.ID, 10*time.Millisecond, encode.JobDone)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	return st
}

// holdsJob reports whether the backend's posterior index lists the job.
func holdsJob(t *testing.T, b *backend, id string) bool {
	t.Helper()
	resp, err := http.Get(b.url() + "/v1/posteriors")
	if err != nil {
		t.Fatalf("indexing %s: %v", b.name, err)
	}
	defer resp.Body.Close()
	var idx encode.PosteriorIndex
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatalf("decoding %s index: %v", b.name, err)
	}
	for _, info := range idx.Posteriors {
		if info.Job == id {
			return true
		}
	}
	return false
}

// strandPosterior moves one posterior from its holder to the wrong shard
// through the raw transfer endpoints — the state an interrupted migration
// or a rejoined crashed shard leaves behind.
func strandPosterior(t *testing.T, from, to *backend, id string) {
	t.Helper()
	resp, err := http.Get(from.url() + "/v1/jobs/" + id + "/posterior?cov=full")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("exporting %s: %v (status %v)", id, err, resp)
	}
	doc, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading export: %v", err)
	}
	req, _ := http.NewRequest(http.MethodPut, to.url()+"/v1/posteriors/"+id, bytes.NewReader(doc))
	req.Header.Set("Content-Type", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("importing %s: %v", id, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("import of %s: status %d", id, resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, from.url()+"/v1/posteriors/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("deleting %s: %v", id, err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete of %s: status %d", id, resp.StatusCode)
	}
}

// other returns the cluster backend that is not b.
func other(t *testing.T, cl *testCluster, b *backend) *backend {
	t.Helper()
	for _, c := range cl.backends {
		if c != b {
			return c
		}
	}
	t.Fatal("no other backend")
	return nil
}

// TestRepairMovesStrandedPosterior: a sweep finds a posterior on a shard
// the ring does not map it to and re-drives it home; a second sweep finds
// nothing to do.
func TestRepairMovesStrandedPosterior(t *testing.T) {
	cl := manualRepairCluster(t, 2)
	ctx := context.Background()
	st := keepJob(t, cl, 6)
	owner := cl.byInstance(t, st.ID)
	wrong := other(t, cl, owner)

	strandPosterior(t, owner, wrong, st.ID)
	if holdsJob(t, owner, st.ID) || !holdsJob(t, wrong, st.ID) {
		t.Fatal("stranding failed to move the posterior off its owner")
	}

	rep := cl.rt.RepairNow(ctx)
	if rep.Repaired != 1 || rep.Failed != 0 {
		t.Fatalf("sweep = %+v, want exactly the stranded posterior repaired", rep)
	}
	if rep.Bytes == 0 {
		t.Fatalf("sweep = %+v, want repaired bytes accounted", rep)
	}
	if !holdsJob(t, owner, st.ID) || holdsJob(t, wrong, st.ID) {
		t.Fatal("posterior not back on its ring owner after the sweep")
	}

	// Idempotence: a converged cluster sweeps to zero.
	rep = cl.rt.RepairNow(ctx)
	if rep.Repaired != 0 || rep.Failed != 0 || rep.Scanned == 0 {
		t.Fatalf("second sweep = %+v, want a scan with nothing to move", rep)
	}

	m := cl.rt.Snapshot()
	if m.Repair.Sweeps != 2 || m.Repair.Repaired != 1 || m.Repair.Failed != 0 {
		t.Fatalf("repair metrics = %+v, want 2 sweeps / 1 repaired", m.Repair)
	}

	// The warm-start location path still finds the posterior at its new
	// home: the router serves the posterior through the owner.
	if _, err := cl.c.Posterior(ctx, st.ID, false); err != nil {
		t.Fatalf("posterior unreachable after repair: %v", err)
	}
}

// TestRepairFencesDrainedSource: a drained shard is never a repair
// source — its stranded holdings stay put — and reactivating it hands
// them back to the next sweep.
func TestRepairFencesDrainedSource(t *testing.T) {
	cl := manualRepairCluster(t, 2)
	ctx := context.Background()
	st := keepJob(t, cl, 6)
	owner := cl.byInstance(t, st.ID)
	wrong := other(t, cl, owner)

	// Drain the non-owner, then strand the posterior onto it: the state a
	// crash-during-decommission can leave. The copy is misplaced (the ring
	// maps it to the owner) but its holder is fenced.
	if rep := cl.rt.drainShard(ctx, cl.rt.findShard(wrong.url()), time.Second); rep.Migration.Failed != 0 {
		t.Fatalf("drain = %+v, want clean", rep)
	}
	strandPosterior(t, owner, wrong, st.ID)

	rep := cl.rt.RepairNow(ctx)
	if rep.Repaired != 0 || rep.Failed != 0 {
		t.Fatalf("sweep over fenced holder = %+v, want untouched", rep)
	}
	if !holdsJob(t, wrong, st.ID) {
		t.Fatal("repair moved a posterior off a drained shard")
	}

	// Reactivation lifts the fence; the next sweep re-drives the copy to
	// its ring owner.
	if _, err := cl.rt.addShard(ctx, wrong.url()); err != nil {
		t.Fatalf("reactivating: %v", err)
	}
	rep = cl.rt.RepairNow(ctx)
	if rep.Repaired != 1 || rep.Failed != 0 {
		t.Fatalf("post-reactivation sweep = %+v, want the copy re-driven", rep)
	}
	if !holdsJob(t, owner, st.ID) || holdsJob(t, wrong, st.ID) {
		t.Fatal("posterior not re-driven to its owner after reactivation")
	}
}

// TestRepairAfterDrainIsIdempotent: a clean drain evacuates its
// posteriors itself, so the sweep that follows finds a converged cluster
// — repair and drain never fight over the same documents.
func TestRepairAfterDrainIsIdempotent(t *testing.T) {
	cl := manualRepairCluster(t, 2)
	ctx := context.Background()
	st := keepJob(t, cl, 6)
	owner := cl.byInstance(t, st.ID)
	survivor := other(t, cl, owner)

	rep := cl.rt.drainShard(ctx, cl.rt.findShard(owner.url()), 5*time.Second)
	if rep.Migration.Migrated != 1 || rep.Migration.Failed != 0 {
		t.Fatalf("drain migration = %+v, want the posterior evacuated", rep.Migration)
	}
	if !holdsJob(t, survivor, st.ID) {
		t.Fatal("drain did not deliver the posterior to the survivor")
	}

	sweep := cl.rt.RepairNow(ctx)
	if sweep.Repaired != 0 || sweep.Failed != 0 {
		t.Fatalf("sweep after clean drain = %+v, want nothing to do", sweep)
	}
}

// TestKickRepairCoalesces: kicks arriving while one is already pending
// collapse into a single queued sweep.
func TestKickRepairCoalesces(t *testing.T) {
	cl := manualRepairCluster(t, 1)
	cl.rt.kickRepair()
	cl.rt.kickRepair()
	cl.rt.kickRepair()
	if got := len(cl.rt.repairKick); got != 1 {
		t.Fatalf("pending kicks = %d, want 1", got)
	}
}

// TestJitterIntervalBounds pins the sweep cadence spread to ±20%.
func TestJitterIntervalBounds(t *testing.T) {
	const d = time.Second
	for i := 0; i < 1000; i++ {
		j := jitterInterval(d)
		if j < 800*time.Millisecond || j > 1200*time.Millisecond {
			t.Fatalf("jitter(%v) = %v, out of [0.8d, 1.2d]", d, j)
		}
	}
	if jitterInterval(0) != 0 || jitterInterval(-time.Second) != -time.Second {
		t.Fatal("non-positive intervals must pass through unjittered")
	}
}

// scriptedShard is an httptest backend whose PUT /v1/posteriors/{id}
// responses follow a fixed script, for exercising adminDo's retry and
// terminal discipline without a real daemon.
func scriptedShard(t *testing.T, script func(attempt int64, w http.ResponseWriter)) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var puts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPut || !strings.HasPrefix(r.URL.Path, "/v1/posteriors/") {
			w.WriteHeader(http.StatusOK) // probes etc. stay green
			return
		}
		script(puts.Add(1), w)
	}))
	t.Cleanup(srv.Close)
	return srv, &puts
}

// scriptedRouter is a router whose only shard is the scripted server and
// whose background loops are inert, so adminDo is the only traffic.
func scriptedRouter(t *testing.T, base string) *Router {
	t.Helper()
	rt, err := New(Config{
		Shards:         []string{base},
		ProbeInterval:  time.Hour,
		RepairInterval: -1,
		Retry:          client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func writeEnvelope(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(encode.ErrorEnvelope{Error: encode.ErrorBody{Code: code, Message: msg}}) //nolint:errcheck
}

// TestAdminDoRetriesTransientFailures: 5xx and 429 replay under the retry
// policy; the first 2xx wins.
func TestAdminDoRetriesTransientFailures(t *testing.T) {
	srv, puts := scriptedShard(t, func(attempt int64, w http.ResponseWriter) {
		if attempt < 3 {
			writeEnvelope(w, http.StatusInternalServerError, encode.CodeInternal, "transient")
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, `{"job":"x"}`) //nolint:errcheck
	})
	rt := scriptedRouter(t, srv.URL)
	data, err := rt.adminDo(context.Background(), http.MethodPut, srv.URL+"/v1/posteriors/x", []byte(`{}`))
	if err != nil {
		t.Fatalf("adminDo: %v", err)
	}
	if puts.Load() != 3 {
		t.Fatalf("attempts = %d, want 3 (two 500s, then success)", puts.Load())
	}
	if !bytes.Contains(data, []byte(`"x"`)) {
		t.Fatalf("unexpected body %q", data)
	}
}

// TestAdminDoHonorsRetryAfter: a 429's Retry-After floors the backoff —
// the retry must not arrive before the server asked it to.
func TestAdminDoHonorsRetryAfter(t *testing.T) {
	srv, puts := scriptedShard(t, func(attempt int64, w http.ResponseWriter) {
		if attempt == 1 {
			w.Header().Set("Retry-After", "1")
			writeEnvelope(w, http.StatusTooManyRequests, encode.CodeQueueFull, "busy")
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	rt := scriptedRouter(t, srv.URL)
	start := time.Now()
	if _, err := rt.adminDo(context.Background(), http.MethodPut, srv.URL+"/v1/posteriors/x", []byte(`{}`)); err != nil {
		t.Fatalf("adminDo: %v", err)
	}
	if puts.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", puts.Load())
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry arrived after %v; Retry-After: 1 must floor the backoff near 1s", elapsed)
	}
}

// TestAdminDoTerminalStatuses: 507 posterior_budget and plain 4xx fail on
// first sight — no retries against a request that cannot succeed.
func TestAdminDoTerminalStatuses(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
		code   string
	}{
		{"posterior budget", http.StatusInsufficientStorage, encode.CodePosteriorBudget},
		{"bad request", http.StatusBadRequest, encode.CodeBadRequest},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, puts := scriptedShard(t, func(attempt int64, w http.ResponseWriter) {
				writeEnvelope(w, tc.status, tc.code, "no")
			})
			rt := scriptedRouter(t, srv.URL)
			_, err := rt.adminDo(context.Background(), http.MethodPut, srv.URL+"/v1/posteriors/x", []byte(`{}`))
			var ae *client.APIError
			if !errors.As(err, &ae) || ae.Code != tc.code || ae.HTTPStatus != tc.status {
				t.Fatalf("adminDo error = %v, want APIError %s/%d", err, tc.code, tc.status)
			}
			if puts.Load() != 1 {
				t.Fatalf("attempts = %d, want exactly 1 for a terminal status", puts.Load())
			}
		})
	}
}

// TestAdminDoExhaustsRetries: a shard that never recovers costs exactly
// MaxAttempts requests and surfaces the last error.
func TestAdminDoExhaustsRetries(t *testing.T) {
	srv, puts := scriptedShard(t, func(attempt int64, w http.ResponseWriter) {
		writeEnvelope(w, http.StatusServiceUnavailable, encode.CodeInternal, "down")
	})
	rt := scriptedRouter(t, srv.URL)
	_, err := rt.adminDo(context.Background(), http.MethodPut, srv.URL+"/v1/posteriors/x", []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("adminDo error = %v, want exhaustion after 3 attempts", err)
	}
	if puts.Load() != 3 {
		t.Fatalf("attempts = %d, want MaxAttempts", puts.Load())
	}
}

// TestAdminDoRejectsOversizeResponse: a response over the transfer limit
// is a loud terminal error, never a silently truncated document.
func TestAdminDoRejectsOversizeResponse(t *testing.T) {
	chunk := bytes.Repeat([]byte{' '}, 1<<20)
	srv, puts := scriptedShard(t, func(attempt int64, w http.ResponseWriter) {
		w.WriteHeader(http.StatusOK)
		for written := 0; written <= maxRequestBody; written += len(chunk) {
			if _, err := w.Write(chunk); err != nil {
				return
			}
		}
	})
	rt := scriptedRouter(t, srv.URL)
	_, err := rt.adminDo(context.Background(), http.MethodPut, srv.URL+"/v1/posteriors/x", []byte(`{}`))
	if !errors.Is(err, errOversizeTransfer) {
		t.Fatalf("adminDo error = %v, want the oversize sentinel", err)
	}
	if puts.Load() != 1 {
		t.Fatalf("attempts = %d, want 1 — an oversize document must not be re-downloaded", puts.Load())
	}
}

// TestTransferError pins the envelope parsing adminDo feeds the backoff.
func TestTransferError(t *testing.T) {
	err := transferError(http.StatusTooManyRequests, 2*time.Second,
		[]byte(`{"error":{"code":"queue_full","message":"busy"}}`))
	var ae *client.APIError
	if !errors.As(err, &ae) {
		t.Fatalf("transferError returned %T", err)
	}
	if ae.Code != encode.CodeQueueFull || ae.Message != "busy" || ae.RetryAfter != 2*time.Second || ae.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("parsed %+v, want envelope fields and Retry-After preserved", ae)
	}

	// A non-envelope body degrades to a truncated raw message.
	long := strings.Repeat("x", 500)
	err = transferError(http.StatusBadGateway, 0, []byte(long))
	if !errors.As(err, &ae) {
		t.Fatalf("transferError returned %T", err)
	}
	if ae.Code != encode.CodeInternal || len(ae.Message) != 200 {
		t.Fatalf("fallback = code %q, %d-byte message; want internal with a 200-byte cap", ae.Code, len(ae.Message))
	}
}
