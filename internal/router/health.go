package router

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"phmse/internal/encode"
)

// Shard health tracking. Each backend is polled on two probes: /healthz
// decides liveness (and teaches the router the shard's instance id, the
// key of the job-routing table) and /readyz decides ring membership — a
// draining or saturated daemon leaves the ring so new submissions stop
// landing on it, while its job records stay reachable through the
// broadcast path as long as it is alive. Unreachable shards are probed on
// a capped exponential backoff; a single successful probe readmits.

// probeLoop drives the periodic sweep until Close.
func (rt *Router) probeLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.sweep(context.Background(), false)
		}
	}
}

// CheckNow synchronously probes every shard once, ignoring backoff
// schedules — startup and tests use it to settle the ring without waiting
// out a probe interval.
func (rt *Router) CheckNow(ctx context.Context) {
	rt.sweep(ctx, true)
}

// sweep probes the shards that are due (all of them when force is set),
// concurrently so one black-holed backend cannot stall the others.
func (rt *Router) sweep(ctx context.Context, force bool) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, sh := range rt.shardList() {
		sh.mu.Lock()
		due := force || !now.Before(sh.nextProbe)
		sh.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			rt.probeShard(ctx, sh)
		}(sh)
	}
	wg.Wait()
}

// probeShard polls one backend and applies the health transition. A dead
// shard (healthz unreachable or non-200) accrues consecutive failures:
// after FailAfter of them it is ejected, and its probes back off
// exponentially up to MaxProbeBackoff. An alive shard that is not ready
// (draining or saturated) leaves the ring but keeps the normal probe
// cadence — saturation clears quickly, so readmission must too.
//
// Readmission is flap-suppressed: a shard that bounced back into the ring
// FlapCount times within FlapWindow is quarantined and must stay healthy
// through an escalating probation of consecutive good probes before the
// ring takes it back; any bad probe while on probation resets the
// requirement. A stable shard keeps the single-good-probe readmission.
//
// The probe also ticks the shard's circuit breaker: an open breaker whose
// cooldown elapsed half-opens here so the ring re-admits the shard for
// its trial request even when no directed traffic reaches it.
func (rt *Router) probeShard(ctx context.Context, sh *shard) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	var hs, rs encode.HealthStatus
	alive := rt.probeGet(pctx, sh, "/healthz", &hs)
	ready := false
	if alive {
		ready = rt.probeGet(pctx, sh, "/readyz", &rs)
	}
	if hs.InstanceID != "" {
		rt.learnInstance(hs.InstanceID, sh)
	}

	now := time.Now()
	sh.mu.Lock()
	wasReady := sh.ready
	wasQuarantines := sh.quarantines
	sh.alive = alive
	// Record the readiness document's load signal even when it carried a
	// 503 (a saturated daemon still reports its occupancy); a dead shard
	// reads as zero.
	sh.queueDepth = rs.QueueDepth
	sh.running = rs.Running
	switch {
	case alive && ready:
		sh.consecFails = 0
		sh.nextProbe = now.Add(rt.cfg.ProbeInterval)
		if wasReady {
			break
		}
		rt.admitProbed(sh, now)
	case alive: // draining or saturated: out of the ring, normal cadence
		sh.ready = false
		sh.consecFails = 0
		sh.nextProbe = now.Add(rt.cfg.ProbeInterval)
		rt.resetProbation(sh)
	default:
		sh.consecFails++
		if sh.consecFails >= rt.cfg.FailAfter {
			sh.ready = false
		}
		rt.resetProbation(sh)
		backoff := rt.cfg.ProbeInterval
		for i := 1; i < sh.consecFails && backoff < rt.cfg.MaxProbeBackoff; i++ {
			backoff *= 2
		}
		if backoff > rt.cfg.MaxProbeBackoff {
			backoff = rt.cfg.MaxProbeBackoff
		}
		sh.nextProbe = now.Add(backoff)
	}
	changed := sh.ready != wasReady
	quarantines := sh.quarantines
	sh.mu.Unlock()
	if quarantines != wasQuarantines {
		// A fresh quarantine is membership state peers must see: the
		// shard's probation should be served cluster-wide, not re-learned
		// by every replica separately.
		rt.publishQuarantine(sh.name, quarantines)
	}
	if sh.brk.tick(now, rt.cfg.BreakerCooldown) {
		changed = true
	}
	if changed {
		rt.rebuildRing()
	}
}

// admitProbed applies one successful probe of a currently-out shard,
// under sh.mu. The stable path readmits immediately; a flapping shard is
// quarantined under an escalating probation of consecutive good probes
// (2 << (quarantines-1), capped at 32).
func (rt *Router) admitProbed(sh *shard, now time.Time) {
	// Slide the flap window.
	if rt.cfg.FlapCount > 0 {
		keep := sh.readmits[:0]
		for _, ts := range sh.readmits {
			if now.Sub(ts) < rt.cfg.FlapWindow {
				keep = append(keep, ts)
			}
		}
		sh.readmits = keep
	}
	switch {
	case sh.probationLeft > 1:
		sh.probationLeft-- // serving probation: stay out of the ring
	case sh.probationLeft == 1:
		sh.probationLeft = 0 // probation served
		sh.ready = true
		sh.readmits = append(sh.readmits, now)
	case rt.cfg.FlapCount > 0 && len(sh.readmits) >= rt.cfg.FlapCount:
		// Flapping: quarantine instead of readmitting, with the probation
		// doubling on every repeat offence.
		sh.quarantines++
		p := 2
		for i := 1; i < sh.quarantines && p < 32; i++ {
			p *= 2
		}
		sh.probationLeft = p
	default:
		sh.ready = true
		sh.readmits = append(sh.readmits, now)
	}
}

// resetProbation restarts a quarantined shard's probation after a bad
// probe: readmission requires continuous health, not cumulative.
func (rt *Router) resetProbation(sh *shard) {
	if sh.probationLeft == 0 {
		return
	}
	p := 2
	for i := 1; i < sh.quarantines && p < 32; i++ {
		p *= 2
	}
	sh.probationLeft = p
}

// probeGet fetches one health endpoint, best-effort decoding the document.
func (rt *Router) probeGet(ctx context.Context, sh *shard, path string, out *encode.HealthStatus) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+path, nil)
	if err != nil {
		return false
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(out) //nolint:errcheck
	return resp.StatusCode == http.StatusOK
}

// eject drops a shard from the ring after a forwarding transport failure,
// without waiting for the next probe; the probe loop readmits it once it
// answers again.
func (rt *Router) eject(sh *shard) {
	sh.mu.Lock()
	changed := sh.ready || sh.alive
	sh.ready = false
	sh.alive = false
	sh.consecFails++
	sh.mu.Unlock()
	if changed {
		rt.rebuildRing()
	}
}
