package router

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"phmse/internal/encode"
)

// Shard health tracking. Each backend is polled on two probes: /healthz
// decides liveness (and teaches the router the shard's instance id, the
// key of the job-routing table) and /readyz decides ring membership — a
// draining or saturated daemon leaves the ring so new submissions stop
// landing on it, while its job records stay reachable through the
// broadcast path as long as it is alive. Unreachable shards are probed on
// a capped exponential backoff; a single successful probe readmits.

// probeLoop drives the periodic sweep until Close.
func (rt *Router) probeLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.sweep(context.Background(), false)
		}
	}
}

// CheckNow synchronously probes every shard once, ignoring backoff
// schedules — startup and tests use it to settle the ring without waiting
// out a probe interval.
func (rt *Router) CheckNow(ctx context.Context) {
	rt.sweep(ctx, true)
}

// sweep probes the shards that are due (all of them when force is set),
// concurrently so one black-holed backend cannot stall the others.
func (rt *Router) sweep(ctx context.Context, force bool) {
	now := time.Now()
	var wg sync.WaitGroup
	for _, sh := range rt.shardList() {
		sh.mu.Lock()
		due := force || !now.Before(sh.nextProbe)
		sh.mu.Unlock()
		if !due {
			continue
		}
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			rt.probeShard(ctx, sh)
		}(sh)
	}
	wg.Wait()
}

// probeShard polls one backend and applies the health transition. A dead
// shard (healthz unreachable or non-200) accrues consecutive failures:
// after FailAfter of them it is ejected, and its probes back off
// exponentially up to MaxProbeBackoff. An alive shard that is not ready
// (draining or saturated) leaves the ring but keeps the normal probe
// cadence — saturation clears quickly, so readmission must too.
func (rt *Router) probeShard(ctx context.Context, sh *shard) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	var hs, rs encode.HealthStatus
	alive := rt.probeGet(pctx, sh, "/healthz", &hs)
	ready := false
	if alive {
		ready = rt.probeGet(pctx, sh, "/readyz", &rs)
	}
	if hs.InstanceID != "" {
		rt.learnInstance(hs.InstanceID, sh)
	}

	now := time.Now()
	sh.mu.Lock()
	wasReady := sh.ready
	sh.alive = alive
	// Record the readiness document's load signal even when it carried a
	// 503 (a saturated daemon still reports its occupancy); a dead shard
	// reads as zero.
	sh.queueDepth = rs.QueueDepth
	sh.running = rs.Running
	switch {
	case alive && ready:
		sh.ready = true
		sh.consecFails = 0
		sh.nextProbe = now.Add(rt.cfg.ProbeInterval)
	case alive: // draining or saturated: out of the ring, normal cadence
		sh.ready = false
		sh.consecFails = 0
		sh.nextProbe = now.Add(rt.cfg.ProbeInterval)
	default:
		sh.consecFails++
		if sh.consecFails >= rt.cfg.FailAfter {
			sh.ready = false
		}
		backoff := rt.cfg.ProbeInterval
		for i := 1; i < sh.consecFails && backoff < rt.cfg.MaxProbeBackoff; i++ {
			backoff *= 2
		}
		if backoff > rt.cfg.MaxProbeBackoff {
			backoff = rt.cfg.MaxProbeBackoff
		}
		sh.nextProbe = now.Add(backoff)
	}
	changed := sh.ready != wasReady
	sh.mu.Unlock()
	if changed {
		rt.rebuildRing()
	}
}

// probeGet fetches one health endpoint, best-effort decoding the document.
func (rt *Router) probeGet(ctx context.Context, sh *shard, path string, out *encode.HealthStatus) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+path, nil)
	if err != nil {
		return false
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	json.NewDecoder(resp.Body).Decode(out) //nolint:errcheck
	return resp.StatusCode == http.StatusOK
}

// eject drops a shard from the ring after a forwarding transport failure,
// without waiting for the next probe; the probe loop readmits it once it
// answers again.
func (rt *Router) eject(sh *shard) {
	sh.mu.Lock()
	changed := sh.ready || sh.alive
	sh.ready = false
	sh.alive = false
	sh.consecFails++
	sh.mu.Unlock()
	if changed {
		rt.rebuildRing()
	}
}
