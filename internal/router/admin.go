package router

// The /admin/v1 control plane: runtime shard membership without a router
// restart.
//
//	GET    /admin/v1/shards               topology view
//	POST   /admin/v1/shards               add (or reactivate) a shard
//	DELETE /admin/v1/shards/{name}        remove (?mode=drain|immediate,
//	                                      ?deadline_ms= overrides the wait)
//	POST   /admin/v1/shards/{name}/drain  fence + migrate, keep membership
//
// {name} addresses a shard by its instance id or its base URL
// (URL-escaped, e.g. http%3A%2F%2Fhost%3A8080); the scheme-less host:port
// form of the base also matches. With Config.AdminToken set, every
// endpoint requires "Authorization: Bearer <token>". Membership mutations
// serialize under adminMu — including their migration passes — so
// overlapping admin calls cannot race on ring generations; the ring
// install itself goes through the same rebuildMu path health transitions
// use.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"phmse/internal/encode"
)

// adminAuth wraps an admin handler with the bearer-token check.
func (rt *Router) adminAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rt.cfg.AdminToken != "" && r.Header.Get("Authorization") != "Bearer "+rt.cfg.AdminToken {
			writeError(w, http.StatusUnauthorized, encode.CodeUnauthorized,
				"missing or invalid admin token")
			return
		}
		h(w, r)
	}
}

// findShard resolves an admin {name} to a member: instance id first, then
// the base URL, then the base with its scheme stripped.
func (rt *Router) findShard(name string) *shard {
	for _, sh := range rt.shardList() {
		sh.mu.Lock()
		instance := sh.instance
		sh.mu.Unlock()
		stripped := strings.TrimPrefix(strings.TrimPrefix(sh.name, "https://"), "http://")
		if name == instance && instance != "" || name == sh.name || name == stripped {
			return sh
		}
	}
	return nil
}

// shardInfo snapshots one member in wire form.
func (rt *Router) shardInfo(sh *shard) encode.ShardInfo {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return encode.ShardInfo{
		Base:       sh.base,
		Instance:   sh.instance,
		Alive:      sh.alive,
		Ready:      sh.ready,
		InRing:     sh.ready && sh.drain == "" && !sh.removed,
		DrainState: sh.drain,
		QueueDepth: sh.queueDepth,
		Running:    sh.running,
	}
}

func (rt *Router) handleAdminShards(w http.ResponseWriter, r *http.Request) {
	list := encode.ShardList{Shards: []encode.ShardInfo{}}
	for _, sh := range rt.shardList() {
		info := rt.shardInfo(sh)
		if info.InRing {
			list.RingShards++
		}
		list.Shards = append(list.Shards, info)
	}
	writeJSON(w, http.StatusOK, list)
}

func (rt *Router) handleAdminAddShard(w http.ResponseWriter, r *http.Request) {
	var req encode.AddShardRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("decoding request: %v", err))
		return
	}
	base := strings.TrimRight(strings.TrimSpace(req.Base), "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("base must be an http(s) URL, got %q", req.Base))
		return
	}
	resp, err := rt.addShard(r.Context(), base)
	if err != nil {
		writeError(w, http.StatusConflict, encode.CodeConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// drainDeadline resolves the effective drain wait: ?deadline_ms= when
// present, the configured default otherwise.
func (rt *Router) drainDeadline(r *http.Request) (time.Duration, error) {
	v := r.URL.Query().Get("deadline_ms")
	if v == "" {
		return rt.cfg.DrainDeadline, nil
	}
	ms, err := strconv.Atoi(v)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("deadline_ms must be a non-negative integer, got %q", v)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

func (rt *Router) handleAdminRemoveShard(w http.ResponseWriter, r *http.Request) {
	mode := r.URL.Query().Get("mode")
	if mode == "" {
		mode = "drain"
	}
	if mode != "drain" && mode != "immediate" {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
			fmt.Sprintf("mode must be drain or immediate, got %q", mode))
		return
	}
	deadline, err := rt.drainDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest, err.Error())
		return
	}
	name := r.PathValue("name")
	sh := rt.findShard(name)
	if sh == nil {
		writeError(w, http.StatusNotFound, encode.CodeNotFound,
			fmt.Sprintf("no shard named %q", name))
		return
	}
	writeJSON(w, http.StatusOK, rt.removeShard(r.Context(), sh, mode, deadline))
}

func (rt *Router) handleAdminDrainShard(w http.ResponseWriter, r *http.Request) {
	deadline, err := rt.drainDeadline(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest, err.Error())
		return
	}
	name := r.PathValue("name")
	sh := rt.findShard(name)
	if sh == nil {
		writeError(w, http.StatusNotFound, encode.CodeNotFound,
			fmt.Sprintf("no shard named %q", name))
		return
	}
	writeJSON(w, http.StatusOK, rt.drainShard(r.Context(), sh, deadline))
}
