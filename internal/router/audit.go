package router

// The admin-plane audit log: one append-only JSONL record per membership
// change (add, reactivate, drain, remove) and per effective repair sweep.
// With Config.AuditLog set the records persist to disk — the durable
// operational history of who entered and left the ring and what each
// change did to the posterior population. The most recent records are
// always also retained in memory and served at GET /admin/v1/audit, so
// the endpoint works (within the retention window) even without a file.

import (
	"encoding/json"
	"log"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"phmse/internal/encode"
)

// auditTail bounds the in-memory record retention.
const auditTail = 512

// auditor is the append-only membership audit log. A nil file is the
// memory-only mode.
type auditor struct {
	mu      sync.Mutex
	f       *os.File
	entries []encode.AuditEntry
}

// newAuditor opens (or creates) the JSONL file at path; "" selects the
// memory-only mode.
func newAuditor(path string) (*auditor, error) {
	a := &auditor{}
	if path == "" {
		return a, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	a.f = f
	return a, nil
}

// append stamps and records one entry, best-effort flushing it to the
// file — an audit write failure is logged, never fatal: auditing must not
// take the control plane down with it.
func (a *auditor) append(e encode.AuditEntry) {
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.entries = append(a.entries, e)
	if len(a.entries) > auditTail {
		a.entries = append(a.entries[:0], a.entries[len(a.entries)-auditTail:]...)
	}
	if a.f == nil {
		return
	}
	line, err := json.Marshal(e)
	if err == nil {
		line = append(line, '\n')
		_, err = a.f.Write(line)
	}
	if err != nil {
		log.Printf("phmse-router: audit log write: %v", err)
	}
}

// tail returns the most recent limit entries in chronological order.
func (a *auditor) tail(limit int) []encode.AuditEntry {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.entries)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]encode.AuditEntry, n)
	copy(out, a.entries[len(a.entries)-n:])
	return out
}

func (a *auditor) close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.f != nil {
		a.f.Close()
		a.f = nil
	}
}

// handleAdminAudit serves GET /admin/v1/audit?limit= — the in-memory tail
// of the audit log, oldest first.
func (rt *Router) handleAdminAudit(w http.ResponseWriter, r *http.Request) {
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, encode.CodeBadRequest,
				"limit must be a positive integer, got "+strconv.Quote(v))
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, encode.AuditLog{Entries: rt.aud.tail(limit)})
}
