// Package router implements phmse-router, the consistent-hash sharding
// tier that scales phmsed horizontally: a thin HTTP layer fronting N
// daemon instances. It mirrors the paper's inter-node parallel axis —
// disjoint subtrees solved on disjoint processors — lifted one level up:
// disjoint topologies served by disjoint daemons.
//
// Routing rules:
//
//   - POST /v1/solve hashes the problem's topology (encode.TopologyHash)
//     onto a consistent-hash ring of healthy shards, so identical
//     topologies always land on the same shard and its plan cache and
//     posterior store stay hot. Warm-started submissions instead follow
//     the referenced job id's instance qualifier to the shard retaining
//     the posterior.
//   - Job endpoints (/v1/jobs/{id}[...]) follow the id's instance
//     qualifier; ids the router cannot attribute are broadcast to the
//     live shards (exactly one shard owns any real job).
//   - GET /v1/jobs fans out to every live shard and merges the pages in
//     submission-time order, with a composite cursor that preserves each
//     shard's own pagination position.
//
// Shard health is tracked by polling each backend's /healthz (liveness +
// instance identity) and /readyz (accepting work), with automatic ring
// ejection and readmission and capped-backoff probing; a forwarding
// transport failure ejects the shard immediately rather than waiting for
// the next probe. Forwarding keeps the client.RetryPolicy semantics:
// backpressure responses pass through with Retry-After intact, transport
// failures and 5xx responses are retried (and failed over) only where a
// replay is safe. When no shard can serve a request the router answers
// 503 with the structured error envelope (code no_shard).
//
// Cluster membership is elastic: the /admin/v1 control plane (see
// admin.go) adds, drains, and removes shards at runtime, mutating the
// ring under the same rebuild serialization health transitions use, and
// every membership change runs a posterior migration pass (migrate.go) so
// warm-start state follows its keys to their new owners.
package router

import (
	"bytes"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"phmse/internal/client"
	"phmse/internal/cluster"
	"phmse/internal/encode"
)

// maxRequestBody bounds a forwarded solve request body, matching the
// daemon's own limit.
const maxRequestBody = 64 << 20

// Config sizes the router. The zero value of every field selects a
// default; Shards is required.
type Config struct {
	// Shards are the backend phmsed base URLs (e.g. "http://host:8080").
	Shards []string
	// VNodes is the number of virtual nodes each shard contributes to the
	// ring (default 64): more vnodes smooth the key distribution at the
	// cost of a larger ring.
	VNodes int
	// ProbeInterval is the per-shard health-poll period (default 2s).
	ProbeInterval time.Duration
	// MaxProbeBackoff caps the exponential probe backoff of an unreachable
	// shard (default 30s).
	MaxProbeBackoff time.Duration
	// ProbeTimeout bounds one health probe (default 1s).
	ProbeTimeout time.Duration
	// FailAfter is the number of consecutive failed probes that eject a
	// shard from the ring (default 1). Forwarding transport failures eject
	// immediately regardless.
	FailAfter int
	// ShardInflight caps the requests concurrently forwarded to any one
	// shard — a counting semaphore per backend, so a slow daemon
	// accumulates bounded load instead of every queued connection the
	// router holds. A submission finding all its replicas saturated, or a
	// job request whose owning shard is saturated, is answered 429 with a
	// Retry-After hint. 0 (the default) disables the limit.
	ShardInflight int
	// Retry shapes forwarded-request retries with client.RetryPolicy
	// semantics: transport failures and 5xx responses are retried for
	// idempotent GETs only, with jittered exponential backoff.
	Retry client.RetryPolicy
	// AdminToken, when set, gates the /admin/v1 control plane behind
	// "Authorization: Bearer <token>" and is presented by the router on
	// the daemons' mutating posterior-transfer endpoints during migration
	// — deploy one token cluster-wide. Empty leaves the admin API open
	// (the test and localhost default).
	AdminToken string
	// DrainDeadline bounds how long a graceful drain waits for a shard's
	// in-flight jobs before migrating and ejecting anyway (default 30s).
	// Per-request ?deadline_ms= overrides it.
	DrainDeadline time.Duration
	// MigrateTimeout bounds one posterior transfer (export + import +
	// delete) during a migration pass (default 10s).
	MigrateTimeout time.Duration

	// RepairInterval is the anti-entropy repair sweep period (default
	// 30s; negative disables the loop). Each sweep indexes every live
	// shard's posteriors, diffs holdings against current ring ownership,
	// and re-drives misplaced posteriors through the transfer protocol.
	// The actual period is jittered ±20% so multiple routers do not
	// sweep in lockstep, and a migration pass that reported failures
	// kicks an immediate sweep.
	RepairInterval time.Duration
	// RepairConcurrency bounds the posterior transfers one repair sweep
	// runs at once (default 2).
	RepairConcurrency int

	// BreakerFailures is the consecutive live-forward failures (transport
	// errors or 5xx responses) that open a shard's circuit breaker,
	// fencing it out of the ring (default 3; <= -1 disables the breaker,
	// 0 selects the default).
	BreakerFailures int
	// BreakerCooldown is how long an open breaker waits before
	// half-opening to admit one trial request (default 5s).
	BreakerCooldown time.Duration
	// FlapCount quarantines a shard readmitted to the ring this many
	// times within FlapWindow: instead of the single-success readmission,
	// it must stay healthy through an escalating probation of consecutive
	// good probes (2, 4, 8, … doubling per quarantine, capped at 32).
	// Default 3; <= -1 disables flap suppression, 0 selects the default.
	FlapCount int
	// FlapWindow is the sliding window over ring readmissions that
	// defines flapping (default 60s).
	FlapWindow time.Duration

	// AuditLog, when set, appends one JSON line per admin membership
	// change (and per effective repair sweep) to this file. The last
	// entries are always also retained in memory and served at
	// GET /admin/v1/audit regardless.
	AuditLog string

	// ReplicaID names this router replica in the replicated membership
	// document: the Origin stamp on its mutations, the holder of its
	// repair leases, and the `from` of its gossip exchanges. Default: a
	// random "r-<hex>" id minted at startup — fine for ephemeral
	// replicas, but deploy stable ids so audit origins survive restarts.
	ReplicaID string
	// Peers lists the other router replicas' base URLs
	// (e.g. "http://router-b:8090"). Replicas gossip the membership
	// document over POST /cluster/v1/state: an /admin/v1 mutation at any
	// replica propagates to every peer within one gossip round. Empty
	// (the default) runs the classic single-router control plane.
	Peers []string
	// GossipInterval is the anti-entropy exchange period (default 1s,
	// jittered; negative disables the background loop — exchanges still
	// run via GossipNow and inbound pushes, the test mode). Admin
	// mutations additionally kick an immediate round.
	GossipInterval time.Duration
	// LeaseTTL is the repair-sweeper lease duration (default 3×
	// RepairInterval): the window during which the lease-holding replica
	// owns the anti-entropy posterior sweep and every peer skips its
	// own. A holder renews on each sweep; a crashed holder's lease
	// simply expires.
	LeaseTTL time.Duration

	// HTTPClient overrides the forwarding/probing client.
	HTTPClient *http.Client
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = 30 * time.Second
	}
	if c.MaxProbeBackoff < c.ProbeInterval {
		c.MaxProbeBackoff = c.ProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 1
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.BaseDelay <= 0 {
		c.Retry.BaseDelay = 25 * time.Millisecond
	}
	if c.Retry.MaxDelay <= 0 {
		c.Retry.MaxDelay = time.Second
	}
	if c.DrainDeadline <= 0 {
		c.DrainDeadline = 30 * time.Second
	}
	if c.MigrateTimeout <= 0 {
		c.MigrateTimeout = 10 * time.Second
	}
	if c.RepairInterval == 0 {
		c.RepairInterval = 30 * time.Second
	}
	if c.RepairConcurrency <= 0 {
		c.RepairConcurrency = 2
	}
	if c.BreakerFailures == 0 {
		c.BreakerFailures = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.FlapCount == 0 {
		c.FlapCount = 3
	}
	if c.FlapWindow <= 0 {
		c.FlapWindow = time.Minute
	}
	if c.ReplicaID == "" {
		var b [4]byte
		crand.Read(b[:]) //nolint:errcheck // never fails on supported platforms
		c.ReplicaID = "r-" + hex.EncodeToString(b[:])
	}
	if c.LeaseTTL <= 0 {
		if c.RepairInterval > 0 {
			c.LeaseTTL = 3 * c.RepairInterval
		} else {
			c.LeaseTTL = 90 * time.Second
		}
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c
}

// shard is one backend daemon and its routing state. name (the base URL)
// is the stable ring identity; instance is the daemon's self-reported id,
// learned from health probes and response headers, which maps
// shard-qualified job ids back to their owner.
type shard struct {
	name string
	base string

	mu          sync.Mutex
	alive       bool // /healthz answered 200 at last contact
	ready       bool // /readyz answered 200: in the ring
	instance    string
	consecFails int
	nextProbe   time.Time
	// drain is the admin drain state machine: "" (active member),
	// "draining" (fenced from the ring, drain in progress), or "drained"
	// (a completed POST .../drain holding the member out of the ring
	// until it is removed or reactivated).
	drain string
	// removed marks a shard ejected from membership by the admin API.
	// Stale probes and relays still holding the pointer check it so a
	// removed shard can never be resurrected into the instance table or
	// the ring.
	removed bool
	// queueDepth and running mirror the shard's last /readyz document —
	// the per-probe load signal exposed as a /metrics gauge.
	queueDepth int
	running    int
	// Flap suppression (see breaker.go): readmits holds the recent probe
	// readmission times inside the flap window; quarantines is the
	// escalation level; probationLeft is the consecutive good probes
	// still owed before the ring takes the shard back (0 = no probation).
	readmits      []time.Time
	quarantines   int
	probationLeft int

	// brk is the shard's live-forward circuit breaker (its own lock).
	brk breaker

	forwarded, failed, retried atomic.Int64
	// inflight is the counting semaphore behind Config.ShardInflight;
	// rejected counts requests turned away at this shard's limit.
	inflight, rejected atomic.Int64
}

func (sh *shard) isAlive() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.alive
}

func (sh *shard) drainState() string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.drain
}

// Router is the phmse-router HTTP handler plus its health prober. Create
// with New; call Close to stop probing.
type Router struct {
	cfg   Config
	mux   *http.ServeMux
	hc    *http.Client
	start time.Time
	stop  chan struct{}
	done  chan struct{}

	mu         sync.RWMutex
	shards     []*shard
	byInstance map[string]*shard
	ring       *ring

	// rebuildMu serializes ring rebuilds end to end (shard-state snapshot
	// through install) so concurrent health transitions cannot interleave
	// and install a ring built from a stale snapshot.
	rebuildMu sync.Mutex

	// adminMu serializes admin membership operations (add, remove, drain)
	// end to end, including their migration passes: overlapping
	// membership changes would race on which ring generation a posterior
	// should move under. Never held together with rt.mu.
	adminMu sync.Mutex

	forwarded, failed, retried atomic.Int64
	noShard, listFanouts       atomic.Int64
	saturated, breakerRefused  atomic.Int64

	migrPasses, migrMigrated, migrFailed, migrSkipped, migrBytes atomic.Int64

	// Anti-entropy repair state (repair.go): the kick channel wakes the
	// sweeper early after a migration pass reported failures.
	repairKick chan struct{}
	repairDone chan struct{}

	repairSweeps, repairRepaired, repairFailed, repairSkipped atomic.Int64

	// cnode is the replicated-control-plane node (cluster.go): the
	// epoch-stamped membership document and its gossip loop.
	// clusterApplies counts peer documents that changed membership here;
	// leaseSkips counts repair ticks skipped because a peer held the
	// sweeper lease.
	cnode                      *cluster.Node
	clusterApplies, leaseSkips atomic.Int64

	// aud is the admin-plane audit log (audit.go); nil only before New
	// finishes.
	aud *auditor
}

// New builds a router over the configured shards and starts its health
// prober. Shards start optimistically in the ring; the first failed probe
// or forward ejects the dead ones.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("router: no shards configured")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		hc:         cfg.HTTPClient,
		start:      time.Now(),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		byInstance: make(map[string]*shard),
		repairKick: make(chan struct{}, 1),
		repairDone: make(chan struct{}),
	}
	aud, err := newAuditor(cfg.AuditLog)
	if err != nil {
		return nil, fmt.Errorf("router: opening audit log: %w", err)
	}
	rt.aud = aud
	seen := make(map[string]bool, len(cfg.Shards))
	for _, base := range cfg.Shards {
		base = strings.TrimRight(base, "/")
		if base == "" || seen[base] {
			return nil, fmt.Errorf("router: empty or duplicate shard %q", base)
		}
		seen[base] = true
		rt.shards = append(rt.shards, &shard{name: base, base: base, alive: true, ready: true})
	}
	rt.cnode = cluster.New(cluster.Config{
		ReplicaID:  cfg.ReplicaID,
		Peers:      cfg.Peers,
		Interval:   cfg.GossipInterval,
		AuthToken:  cfg.AdminToken,
		HTTPClient: cfg.HTTPClient,
		OnAdopt:    rt.onClusterAdopt,
		OnConflict: rt.onClusterConflict,
		Logf:       log.Printf,
	}, initialClusterDoc(rt.shards))
	rt.rebuildRing()

	rt.mux.HandleFunc("POST /v1/solve", rt.handleSolve)
	rt.mux.HandleFunc("GET /v1/jobs", rt.handleList)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJob)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/result", rt.handleJob)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/posterior", rt.handleJob)
	rt.mux.HandleFunc("POST /v1/jobs/{id}/cancel", rt.handleJob)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJob)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /readyz", rt.handleReady)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /admin/v1/shards", rt.adminAuth(rt.handleAdminShards))
	rt.mux.HandleFunc("POST /admin/v1/shards", rt.adminAuth(rt.handleAdminAddShard))
	rt.mux.HandleFunc("DELETE /admin/v1/shards/{name}", rt.adminAuth(rt.handleAdminRemoveShard))
	rt.mux.HandleFunc("POST /admin/v1/shards/{name}/drain", rt.adminAuth(rt.handleAdminDrainShard))
	rt.mux.HandleFunc("POST /admin/v1/repair", rt.adminAuth(rt.handleAdminRepair))
	rt.mux.HandleFunc("GET /admin/v1/audit", rt.adminAuth(rt.handleAdminAudit))
	rt.mux.HandleFunc("GET /cluster/v1/state", rt.adminAuth(rt.handleClusterState))
	rt.mux.HandleFunc("POST /cluster/v1/state", rt.adminAuth(rt.handleClusterExchange))

	go rt.probeLoop()
	go rt.repairLoop()
	rt.cnode.Start()
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt.mux.ServeHTTP(w, r)
}

// Close stops the health prober, the repair sweeper, and the audit log.
// In-flight forwards are unaffected.
func (rt *Router) Close() {
	select {
	case <-rt.stop:
	default:
		close(rt.stop)
	}
	<-rt.done
	<-rt.repairDone
	rt.cnode.Close()
	rt.aud.close()
}

// shardList returns a point-in-time copy of the membership slice. With
// dynamic membership the slice mutates at runtime, so every iteration —
// probing, broadcasting, metrics — goes through this copy instead of
// reading rt.shards unlocked.
func (rt *Router) shardList() []*shard {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]*shard(nil), rt.shards...)
}

// shardsByLoad returns the membership snapshot sorted least-loaded
// first by the queue_depth+running gauges the prober collects. Broadcast
// lookups (an unattributable job id, a posterior location fan-out) probe
// in this order: the answer is equally likely anywhere, so asking the
// idle shards first keeps sequential fan-outs off the busy ones — a
// first step toward load-aware ring weighting. The sort is stable, so
// equally-loaded shards keep the membership order.
func (rt *Router) shardsByLoad() []*shard {
	shards := rt.shardList()
	type loaded struct {
		sh   *shard
		load int
	}
	ranked := make([]loaded, len(shards))
	for i, sh := range shards {
		sh.mu.Lock()
		ranked[i] = loaded{sh, sh.queueDepth + sh.running}
		sh.mu.Unlock()
	}
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].load < ranked[j].load })
	for i, r := range ranked {
		shards[i] = r.sh
	}
	return shards
}

// currentRing returns the installed ring generation.
func (rt *Router) currentRing() *ring {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring
}

// rebuildRing reassembles the ring from the currently ready, undrained
// shards. rebuildMu makes snapshot-and-install atomic with respect to
// other rebuilds: every transition updates its shard's state before
// calling here, so whichever rebuild runs last reads (and installs) a
// ring that reflects all earlier transitions — a stale ring can never
// outlast the final rebuild of a burst. Draining and removed shards are
// fenced here, so a healthy probe can never readmit them.
func (rt *Router) rebuildRing() {
	rt.rebuildMu.Lock()
	defer rt.rebuildMu.Unlock()
	shards := rt.shardList()
	ready := make([]*shard, 0, len(shards))
	for _, sh := range shards {
		sh.mu.Lock()
		ok := sh.ready && sh.drain == "" && !sh.removed
		sh.mu.Unlock()
		// An open breaker fences the shard exactly like a failed probe; a
		// half-open one stays in the ring so the trial request can reach
		// it. Checked outside sh.mu — the breaker has its own lock.
		if ok && !sh.brk.isOpen() {
			ready = append(ready, sh)
		}
	}
	r := buildRing(ready, rt.cfg.VNodes)
	rt.mu.Lock()
	rt.ring = r
	rt.mu.Unlock()
}

// replicasFor returns the failover order of a routing key: every ready
// shard, nearest ring arc first.
func (rt *Router) replicasFor(key string) []*shard {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.ring.replicas(key, len(rt.shards))
}

// shardForJob maps a shard-qualified job id to the shard whose instance
// minted it, nil when the id is unqualified or the instance is unknown.
func (rt *Router) shardForJob(id string) *shard {
	instance := encode.JobInstance(id)
	if instance == "" {
		return nil
	}
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.byInstance[instance]
}

// learnInstance records a shard's self-reported instance id, keeping the
// instance → shard table current across restarts that change identity. A
// removed shard is never recorded: a probe or relay still in flight when
// the admin API ejected it must not resurrect the mapping.
func (rt *Router) learnInstance(instance string, sh *shard) {
	sh.mu.Lock()
	if sh.removed {
		sh.mu.Unlock()
		return
	}
	old := sh.instance
	sh.instance = instance
	sh.mu.Unlock()
	if old == instance {
		return
	}
	rt.mu.Lock()
	if old != "" && rt.byInstance[old] == sh {
		delete(rt.byInstance, old)
	}
	rt.byInstance[instance] = sh
	rt.mu.Unlock()
}

func writeError(w http.ResponseWriter, httpStatus int, code, message string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(httpStatus)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(encode.ErrorEnvelope{Error: encode.ErrorBody{Code: code, Message: message}}) //nolint:errcheck
}

func (rt *Router) writeNoShard(w http.ResponseWriter) {
	rt.noShard.Add(1)
	writeError(w, http.StatusServiceUnavailable, encode.CodeNoShard, "no healthy shard available")
}

// admit reserves an in-flight slot on sh under the per-shard limit; the
// caller must pair a true return with exactly one release. With no limit
// configured every request is admitted and release is a no-op counter.
func (rt *Router) admit(sh *shard) bool {
	limit := int64(rt.cfg.ShardInflight)
	if limit <= 0 {
		return true
	}
	if sh.inflight.Add(1) > limit {
		sh.inflight.Add(-1)
		sh.rejected.Add(1)
		return false
	}
	return true
}

func (rt *Router) release(sh *shard) {
	if rt.cfg.ShardInflight > 0 {
		sh.inflight.Add(-1)
	}
}

// writeSaturated answers a request the in-flight limiter refused: the
// same 429 + Retry-After contract as a daemon's full queue, so client
// retry policies treat both backpressure tiers identically.
func (rt *Router) writeSaturated(w http.ResponseWriter, message string) {
	rt.saturated.Add(1)
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests, encode.CodeQueueFull, message)
}

// send issues one forwarded request to a shard.
func (rt *Router) send(r *http.Request, sh *shard, method, pathq string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, sh.base+pathq, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	return rt.hc.Do(req)
}

// relay copies a backend response to the caller — status, the headers the
// v1 API defines, and the body — and opportunistically learns the shard's
// instance identity from the response header.
func (rt *Router) relay(w http.ResponseWriter, resp *http.Response, sh *shard) {
	defer resp.Body.Close()
	if instance := resp.Header.Get("X-Phmsed-Instance"); instance != "" {
		rt.learnInstance(instance, sh)
	}
	for _, h := range []string{"Content-Type", "Retry-After", "X-Phmsed-Instance"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body) //nolint:errcheck
	rt.forwarded.Add(1)
	sh.forwarded.Add(1)
}

// discard drains and closes a response the router decided not to relay.
func discard(resp *http.Response) {
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
}

// dialFailure reports whether a transport error happened before the
// request left the router (the dial itself failed), which makes a replay
// safe even for non-idempotent methods: no backend saw a byte of it.
func dialFailure(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// forwardTo relays a request to one specific shard under the retry
// policy. Idempotent GETs retry through transport failures and 5xx
// responses; other methods get exactly one attempt — a connection cut
// mid-POST may have already enqueued the job, and replaying it would
// duplicate work. A transport failure ejects the shard from the ring
// immediately (the probe loop readmits it when it recovers), and every
// attempt's outcome feeds the shard's circuit breaker. Reports whether a
// response was written — including the 429 when the shard is at its
// in-flight limit and the 503 when its breaker refuses the request.
func (rt *Router) forwardTo(w http.ResponseWriter, r *http.Request, sh *shard, pathq string, body []byte) bool {
	brkOK, trial := rt.breakerAllow(sh)
	if !brkOK {
		rt.writeBreakerRefused(w, sh.name)
		return true
	}
	if !rt.admit(sh) {
		rt.breakerCancel(sh, trial)
		rt.writeSaturated(w, fmt.Sprintf("shard %s at its in-flight limit", sh.name))
		return true
	}
	defer rt.release(sh)
	attempts := 1
	if r.Method == http.MethodGet {
		attempts = rt.cfg.Retry.MaxAttempts
	}
	for i := 0; i < attempts; i++ {
		if i > 0 {
			rt.retried.Add(1)
			sh.retried.Add(1)
			select {
			case <-time.After(rt.cfg.Retry.Delay(i-1, nil)):
			case <-r.Context().Done():
				rt.breakerCancel(sh, trial)
				return false
			}
		}
		resp, err := rt.send(r, sh, r.Method, pathq, body)
		if err != nil {
			rt.failed.Add(1)
			sh.failed.Add(1)
			rt.breakerRecord(sh, false, trial)
			trial = false
			rt.eject(sh)
			continue
		}
		if resp.StatusCode >= 500 && r.Method == http.MethodGet && i+1 < attempts {
			rt.breakerRecord(sh, false, trial)
			trial = false
			discard(resp)
			continue
		}
		rt.breakerRecord(sh, resp.StatusCode < 500, trial)
		rt.relay(w, resp, sh)
		return true
	}
	return false
}

// handleSolve routes a submission: parse once to extract the routing
// decision, then forward the raw body unchanged.
func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest, "reading request: "+err.Error())
		return
	}
	key, warmRef, err := encode.SolveRouting(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, encode.CodeBadRequest, err.Error())
		return
	}

	// Warm-started submissions must land on the shard retaining the
	// referenced posterior — the job id's instance qualifier names the
	// shard that minted it. Since a migration pass may have moved the
	// posterior off its minting shard (membership changed), the qualifier
	// is a hint, verified with an exact-id index query; when it fails — or
	// the qualifier names no current member — the posterior indexes of the
	// live shards locate the current holder. A still-unresolved reference
	// falls through to ring routing: identical topologies route to the
	// posterior's shard anyway, and a wrong shard answers an honest
	// 404/409.
	if warmRef != nil {
		sh := rt.shardForJob(warmRef.Job)
		if sh != nil && !rt.holdsPosterior(r.Context(), sh, warmRef.Job) {
			sh = nil
		}
		if sh == nil {
			sh = rt.locatePosterior(r.Context(), warmRef.Job)
		}
		if sh != nil {
			if sh.drainState() != "" {
				writeError(w, http.StatusServiceUnavailable, encode.CodeDraining,
					fmt.Sprintf("shard %s is draining; its posteriors are migrating — retry", sh.name))
				return
			}
			if !rt.forwardTo(w, r, sh, "/v1/solve", body) {
				rt.writeNoShard(w)
			}
			return
		}
	}

	// Ring replicas are the failover order. A POST fails over only on dial
	// failures — the request never left, so no shard could have enqueued
	// it; any later transport error is ambiguous and surfaces as 502. A
	// replica at its in-flight limit — or one whose circuit breaker
	// refuses the request — is skipped the same way a dead one is; a
	// submission finding every replica saturated gets the 429. Backend
	// responses (including 429 backpressure with its Retry-After) relay
	// verbatim: the client's own RetryPolicy honours them.
	sawSaturated := false
	for _, sh := range rt.replicasFor(key) {
		brkOK, trial := rt.breakerAllow(sh)
		if !brkOK {
			continue
		}
		if !rt.admit(sh) {
			rt.breakerCancel(sh, trial)
			sawSaturated = true
			continue
		}
		resp, err := rt.send(r, sh, http.MethodPost, "/v1/solve", body)
		if err != nil {
			rt.release(sh)
			rt.failed.Add(1)
			sh.failed.Add(1)
			rt.breakerRecord(sh, false, trial)
			rt.eject(sh)
			if dialFailure(err) {
				rt.retried.Add(1)
				sh.retried.Add(1)
				continue
			}
			writeError(w, http.StatusBadGateway, encode.CodeInternal,
				fmt.Sprintf("forwarding solve to %s: %v", sh.name, err))
			return
		}
		rt.breakerRecord(sh, resp.StatusCode < 500, trial)
		rt.relay(w, resp, sh)
		rt.release(sh)
		return
	}
	if sawSaturated {
		rt.writeSaturated(w, "all replicas at their in-flight limit")
		return
	}
	rt.writeNoShard(w)
}

// handleJob forwards a job-targeted request to its owning shard. Ids the
// router cannot attribute (unqualified, or an instance not yet learned)
// are broadcast to the live shards: exactly one shard owns any real job,
// everyone else answers 404.
func (rt *Router) handleJob(w http.ResponseWriter, r *http.Request) {
	pathq := r.URL.Path
	if r.URL.RawQuery != "" {
		pathq += "?" + r.URL.RawQuery
	}
	if sh := rt.shardForJob(r.PathValue("id")); sh != nil {
		if !rt.forwardTo(w, r, sh, pathq, nil) {
			rt.writeNoShard(w)
		}
		return
	}
	sawNotFound, sawSaturated := false, false
	for _, sh := range rt.shardsByLoad() {
		if !sh.isAlive() {
			continue
		}
		// A breaker-refused shard may still own the job, so — like the
		// saturated case below — the broadcast must answer "retry", never
		// a false "not found".
		brkOK, trial := rt.breakerAllow(sh)
		if !brkOK {
			sawSaturated = true
			continue
		}
		if !rt.admit(sh) {
			rt.breakerCancel(sh, trial)
			sawSaturated = true
			continue
		}
		resp, err := rt.send(r, sh, r.Method, pathq, nil)
		if err != nil {
			rt.release(sh)
			rt.failed.Add(1)
			sh.failed.Add(1)
			rt.breakerRecord(sh, false, trial)
			rt.eject(sh)
			continue
		}
		rt.breakerRecord(sh, resp.StatusCode < 500, trial)
		if resp.StatusCode == http.StatusNotFound {
			sawNotFound = true
			discard(resp)
			rt.release(sh)
			continue
		}
		rt.relay(w, resp, sh)
		rt.release(sh)
		return
	}
	// A saturated shard was skipped, so the job may simply live where the
	// router could not look: tell the client to retry, not that the job
	// does not exist.
	if sawSaturated {
		rt.writeSaturated(w, "shard at its in-flight limit; retry")
		return
	}
	if sawNotFound {
		writeError(w, http.StatusNotFound, encode.CodeNotFound, "unknown job")
		return
	}
	rt.writeNoShard(w)
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	total, ready := rt.shardCounts()
	writeJSON(w, http.StatusOK, RouterHealth{Status: "ok", Shards: total, ReadyShards: ready})
}

// handleReady reports whether the router can currently place new work:
// at least one shard in the ring.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	total, ready := rt.shardCounts()
	body := RouterHealth{Status: "ok", Shards: total, ReadyShards: ready}
	if ready == 0 {
		body.Status = "no_shard"
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// RouterHealth is the body of the router's /healthz and /readyz.
type RouterHealth struct {
	Status      string `json:"status"`
	Shards      int    `json:"shards"`
	ReadyShards int    `json:"ready_shards"`
}

func (rt *Router) shardCounts() (total, ready int) {
	shards := rt.shardList()
	total = len(shards)
	for _, sh := range shards {
		sh.mu.Lock()
		if sh.ready && sh.drain == "" {
			ready++
		}
		sh.mu.Unlock()
	}
	return total, ready
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck
}
